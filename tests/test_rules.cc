/**
 * @file
 * Rule-database tests: Table I construction, per-rule propagation
 * semantics, the MOVI wild-pointer rule, and default-clear
 * behaviour for unmatched operations.
 */

#include <gtest/gtest.h>

#include "tracker/rules.hh"

namespace chex
{
namespace
{

StaticUop
aluUop(AluOp op, bool use_imm = false)
{
    StaticUop u;
    u.type = UopType::IntAlu;
    u.op = op;
    u.dst = RCX;
    u.src1 = RBX;
    u.src2 = use_imm ? REG_NONE : RAX;
    u.useImm = use_imm;
    return u;
}

TEST(Rules, TableIHasElevenRules)
{
    RuleDatabase db = RuleDatabase::tableI();
    EXPECT_EQ(db.size(), 11u);
}

TEST(Rules, MovCopiesSource)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop u = aluUop(AluOp::Mov);
    EXPECT_EQ(db.propagate(u, 42, 0), 42u);
}

TEST(Rules, AddRegRegCopiesNonZero)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop u = aluUop(AluOp::Add);
    EXPECT_EQ(db.propagate(u, 42, 0), 42u);  // ptr + int
    EXPECT_EQ(db.propagate(u, 0, 42), 42u);  // int + ptr
    EXPECT_EQ(db.propagate(u, 0, 0), NoPid); // int + int
    // Both tagged: first source wins.
    EXPECT_EQ(db.propagate(u, 7, 9), 7u);
}

TEST(Rules, AddImmCopiesFirst)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop u = aluUop(AluOp::Add, true);
    u.imm = 8;
    EXPECT_EQ(db.propagate(u, 42, 0), 42u);
}

TEST(Rules, SubAlwaysCopiesMinuend)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop u = aluUop(AluOp::Sub);
    // Even when the subtrahend is tagged: ptr1 - ptr2 is a distance,
    // but Table I keeps the first operand's tag.
    EXPECT_EQ(db.propagate(u, 42, 7), 42u);
    EXPECT_EQ(db.propagate(u, 0, 7), NoPid);
}

TEST(Rules, AndMasksPropagate)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop rr = aluUop(AluOp::And);
    EXPECT_EQ(db.propagate(rr, 0, 5), 5u);
    StaticUop ri = aluUop(AluOp::And, true);
    EXPECT_EQ(db.propagate(ri, 5, 0), 5u);
}

TEST(Rules, LeaCopiesBase)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop u;
    u.type = UopType::Lea;
    u.dst = RCX;
    u.hasMem = true;
    u.mem.base = RBX;
    EXPECT_EQ(db.lookup(u), RuleAction::CopySrc1);
    EXPECT_EQ(db.propagate(u, 42, 0), 42u);
}

TEST(Rules, MoviAssignsWild)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop u;
    u.type = UopType::LoadImm;
    u.op = AluOp::Mov;
    u.dst = RAX;
    u.imm = 0x7fff1000;
    u.useImm = true;
    EXPECT_EQ(db.propagate(u, 0, 0), WildPid);
}

TEST(Rules, SyntheticImmediatesStayClean)
{
    // The CALL return-address limm must not become a wild pointer.
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop u;
    u.type = UopType::LoadImm;
    u.op = AluOp::Mov;
    u.dst = T3;
    u.useImm = true;
    u.synthetic = true;
    EXPECT_EQ(db.propagate(u, 0, 0), NoPid);
}

TEST(Rules, LoadStoreResolveThroughAliasMachinery)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop ld;
    ld.type = UopType::Load;
    ld.dst = RCX;
    ld.hasMem = true;
    EXPECT_EQ(db.lookup(ld), RuleAction::LoadAlias);
    StaticUop st;
    st.type = UopType::Store;
    st.src1 = RCX;
    st.hasMem = true;
    EXPECT_EQ(db.lookup(st), RuleAction::StoreAlias);
}

TEST(Rules, UnmatchedOpsClear)
{
    RuleDatabase db = RuleDatabase::tableI();
    // "All other operations: PID(result) <- PID(0)".
    StaticUop u = aluUop(AluOp::Xor);
    EXPECT_EQ(db.propagate(u, 42, 42), NoPid);
    StaticUop mul = aluUop(AluOp::Mul);
    mul.type = UopType::IntMult;
    EXPECT_EQ(db.propagate(mul, 42, 0), NoPid);
}

TEST(Rules, EmptyDatabaseClearsEverything)
{
    RuleDatabase db;
    StaticUop u = aluUop(AluOp::Mov);
    EXPECT_EQ(db.propagate(u, 42, 0), NoPid);
    EXPECT_EQ(db.size(), 0u);
}

TEST(Rules, InstallAndReplace)
{
    RuleDatabase db;
    StaticUop u = aluUop(AluOp::Xor);
    TrackRule rule;
    rule.key = ruleKeyFor(u);
    rule.action = RuleAction::CopySrc1;
    db.install(rule);
    EXPECT_EQ(db.propagate(u, 5, 0), 5u);
    rule.action = RuleAction::Clear;
    db.install(rule); // replace
    EXPECT_EQ(db.propagate(u, 5, 0), NoPid);
    EXPECT_EQ(db.size(), 1u);
}

TEST(Rules, KeyClassification)
{
    StaticUop rr = aluUop(AluOp::Add);
    EXPECT_EQ(ruleKeyFor(rr).form, OperandForm::RegReg);
    StaticUop ri = aluUop(AluOp::Add, true);
    EXPECT_EQ(ruleKeyFor(ri).form, OperandForm::RegImm);
    StaticUop ld;
    ld.type = UopType::Load;
    ld.hasMem = true;
    EXPECT_EQ(ruleKeyFor(ld).form, OperandForm::Mem);
}

TEST(Rules, RulesListIsDocumented)
{
    // Every Table I rule carries its micro-op and C-level examples
    // (the bench regenerating Table I prints these).
    for (const auto &rule : RuleDatabase::tableI().rules()) {
        EXPECT_FALSE(rule.example.empty());
        EXPECT_FALSE(rule.codeExample.empty());
        EXPECT_TRUE(rule.expertSeeded);
    }
}

} // namespace
} // namespace chex

/**
 * @file
 * Security evaluation tests (Section VII-A): every exploit in the
 * RIPE-style sweep, the ASan-style unit suite, and the
 * How2Heap-style suite must be flagged by the prediction-driven
 * microcode variant with the expected anchor violation — and a
 * representative set must demonstrably *succeed* (corrupt state)
 * on the insecure baseline, proving the exploits are real.
 */

#include <gtest/gtest.h>

#include "attacks/asan_suite.hh"
#include "attacks/how2heap.hh"
#include "attacks/ripe.hh"
#include "sim/system.hh"

namespace chex
{
namespace
{

RunResult
runUnder(const AttackCase &attack, VariantKind kind)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    System sys(cfg);
    sys.load(attack.program);
    return sys.run();
}

void
expectDetected(const AttackCase &attack)
{
    RunResult r = runUnder(attack, VariantKind::MicrocodePrediction);
    ASSERT_TRUE(r.violationDetected)
        << attack.suite << "/" << attack.name << " was not detected";
    EXPECT_EQ(r.violations[0].kind, attack.expected)
        << attack.suite << "/" << attack.name << ": flagged "
        << violationName(r.violations[0].kind) << ", expected "
        << violationName(attack.expected);
}

void
expectBaselineSucceeds(const AttackCase &attack)
{
    SystemConfig cfg;
    cfg.variant.kind = VariantKind::Baseline;
    System sys(cfg);
    sys.load(attack.program);
    RunResult r = sys.run();
    EXPECT_FALSE(r.violationDetected);
    if (attack.indicatorAddr != 0) {
        uint64_t got = sys.memory().read(attack.indicatorAddr, 8);
        EXPECT_EQ(got, attack.indicatorExpect)
            << attack.suite << "/" << attack.name
            << ": exploit did not succeed on the insecure baseline";
    }
}

class AsanSuiteTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(AsanSuiteTest, DetectedWithExpectedAnchor)
{
    expectDetected(asanSuite()[GetParam()]);
}

TEST_P(AsanSuiteTest, SucceedsOnBaseline)
{
    expectBaselineSucceeds(asanSuite()[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, AsanSuiteTest,
    ::testing::Range<size_t>(0, asanSuite().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return asanSuite()[info.param].name;
    });

class How2HeapTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(How2HeapTest, DetectedWithExpectedAnchor)
{
    expectDetected(how2heapSuite()[GetParam()]);
}

TEST_P(How2HeapTest, SucceedsOnBaseline)
{
    expectBaselineSucceeds(how2heapSuite()[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, How2HeapTest,
    ::testing::Range<size_t>(0, how2heapSuite().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return how2heapSuite()[info.param].name;
    });

class RipeTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RipeTest, DetectedWithExpectedAnchor)
{
    expectDetected(ripeSweep()[GetParam()]);
}

TEST_P(RipeTest, SucceedsOnBaseline)
{
    expectBaselineSucceeds(ripeSweep()[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RipeTest,
    ::testing::Range<size_t>(0, ripeSweep().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = ripeSweep()[info.param].name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Security, How2HeapHas18Cases)
{
    EXPECT_EQ(how2heapSuite().size(), 18u);
}

TEST(Security, AllVariantsOfChex86DetectFastbinDup)
{
    const AttackCase attack = how2heapSuite()[0];
    for (VariantKind kind :
         {VariantKind::HardwareOnly, VariantKind::BinaryTranslation,
          VariantKind::MicrocodeAlwaysOn,
          VariantKind::MicrocodePrediction}) {
        RunResult r = runUnder(attack, kind);
        EXPECT_TRUE(r.violationDetected) << variantName(kind);
    }
}

TEST(Security, AsanModelDetectsHeapOob)
{
    RunResult r = runUnder(asanSuite()[0], VariantKind::Asan);
    EXPECT_TRUE(r.violationDetected);
}

TEST(Security, AsanModelDetectsUafViaQuarantine)
{
    RunResult r = runUnder(asanSuite()[4], VariantKind::Asan);
    EXPECT_TRUE(r.violationDetected);
}

} // namespace
} // namespace chex

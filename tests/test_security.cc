/**
 * @file
 * Security evaluation tests (Section VII-A): every exploit in the
 * RIPE-style sweep, the ASan-style unit suite, and the
 * How2Heap-style suite must be flagged by the prediction-driven
 * microcode variant with the expected anchor violation — and a
 * representative set must demonstrably *succeed* (corrupt state)
 * on the insecure baseline, proving the exploits are real.
 *
 * The cases come through the central attack registry
 * (attacks/registry.hh), the same API the campaign driver and the
 * bench harness resolve attack IDs against.
 */

#include <gtest/gtest.h>

#include "attacks/registry.hh"
#include "sim/system.hh"

namespace chex
{
namespace
{

const std::vector<AttackCase> &
suiteCases(const std::string &token)
{
    for (const AttackSuite &suite : attackSuites())
        if (suite.name == token)
            return suite.cases;
    static const std::vector<AttackCase> none;
    ADD_FAILURE() << "registry has no suite '" << token << "'";
    return none;
}

RunResult
runUnder(const AttackCase &attack, VariantKind kind)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    System sys(cfg);
    sys.load(attack.program);
    return sys.run();
}

void
expectDetected(const AttackCase &attack)
{
    RunResult r = runUnder(attack, VariantKind::MicrocodePrediction);
    ASSERT_TRUE(r.violationDetected)
        << attack.suite << "/" << attack.name << " was not detected";
    EXPECT_EQ(r.violations[0].kind, attack.expected)
        << attack.suite << "/" << attack.name << ": flagged "
        << violationName(r.violations[0].kind) << ", expected "
        << violationName(attack.expected);
}

void
expectBaselineSucceeds(const AttackCase &attack)
{
    SystemConfig cfg;
    cfg.variant.kind = VariantKind::Baseline;
    System sys(cfg);
    sys.load(attack.program);
    RunResult r = sys.run();
    EXPECT_FALSE(r.violationDetected);
    if (attack.indicatorAddr != 0) {
        uint64_t got = sys.memory().read(attack.indicatorAddr, 8);
        EXPECT_EQ(got, attack.indicatorExpect)
            << attack.suite << "/" << attack.name
            << ": exploit did not succeed on the insecure baseline";
    }
}

class AsanSuiteTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(AsanSuiteTest, DetectedWithExpectedAnchor)
{
    expectDetected(suiteCases("asan")[GetParam()]);
}

TEST_P(AsanSuiteTest, SucceedsOnBaseline)
{
    expectBaselineSucceeds(suiteCases("asan")[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, AsanSuiteTest,
    ::testing::Range<size_t>(0, suiteCases("asan").size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return suiteCases("asan")[info.param].name;
    });

class How2HeapTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(How2HeapTest, DetectedWithExpectedAnchor)
{
    expectDetected(suiteCases("how2heap")[GetParam()]);
}

TEST_P(How2HeapTest, SucceedsOnBaseline)
{
    expectBaselineSucceeds(suiteCases("how2heap")[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, How2HeapTest,
    ::testing::Range<size_t>(0, suiteCases("how2heap").size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return suiteCases("how2heap")[info.param].name;
    });

class RipeTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(RipeTest, DetectedWithExpectedAnchor)
{
    expectDetected(suiteCases("ripe")[GetParam()]);
}

TEST_P(RipeTest, SucceedsOnBaseline)
{
    expectBaselineSucceeds(suiteCases("ripe")[GetParam()]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RipeTest,
    ::testing::Range<size_t>(0, suiteCases("ripe").size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = suiteCases("ripe")[info.param].name;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(Security, How2HeapHas18Cases)
{
    EXPECT_EQ(suiteCases("how2heap").size(), 18u);
}

TEST(Security, AllVariantsOfChex86DetectFastbinDup)
{
    const AttackCase attack = suiteCases("how2heap")[0];
    for (VariantKind kind :
         {VariantKind::HardwareOnly, VariantKind::BinaryTranslation,
          VariantKind::MicrocodeAlwaysOn,
          VariantKind::MicrocodePrediction}) {
        RunResult r = runUnder(attack, kind);
        EXPECT_TRUE(r.violationDetected) << variantName(kind);
    }
}

TEST(Security, AsanModelDetectsHeapOob)
{
    RunResult r = runUnder(suiteCases("asan")[0], VariantKind::Asan);
    EXPECT_TRUE(r.violationDetected);
}

TEST(Security, AsanModelDetectsUafViaQuarantine)
{
    RunResult r = runUnder(suiteCases("asan")[4], VariantKind::Asan);
    EXPECT_TRUE(r.violationDetected);
}

} // namespace
} // namespace chex

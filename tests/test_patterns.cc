/**
 * @file
 * Table II pattern tests: schedule generation for each pattern
 * class and round-trip classification (generate -> classify ->
 * same class), parameterized across classes and seeds.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/patterns.hh"

namespace chex
{
namespace
{

std::vector<uint64_t>
toU64(const std::vector<unsigned> &v)
{
    return {v.begin(), v.end()};
}

TEST(Patterns, ConstantSchedule)
{
    Random rng(1);
    PatternParams pp;
    pp.numBuffers = 8;
    pp.length = 64;
    auto s = generateSchedule(PatternKind::Constant, pp, rng);
    ASSERT_EQ(s.size(), 64u);
    for (unsigned v : s)
        EXPECT_EQ(v, s[0]);
}

TEST(Patterns, StrideScheduleWrapsModulo)
{
    Random rng(2);
    PatternParams pp;
    pp.numBuffers = 16;
    pp.length = 64;
    pp.stride = 3;
    auto s = generateSchedule(PatternKind::Stride, pp, rng);
    for (size_t i = 0; i + 1 < s.size(); ++i) {
        int diff = static_cast<int>(s[i + 1]) - static_cast<int>(s[i]);
        EXPECT_TRUE(diff == 3 || diff == 3 - 16) << i;
    }
}

TEST(Patterns, BatchScheduleHasRuns)
{
    Random rng(3);
    PatternParams pp;
    pp.numBuffers = 16;
    pp.length = 64;
    pp.batchLen = 4;
    auto s = generateSchedule(PatternKind::BatchStride, pp, rng);
    EXPECT_EQ(s[0], s[1]);
    EXPECT_EQ(s[1], s[2]);
    EXPECT_EQ(s[2], s[3]);
    EXPECT_NE(s[3], s[4]);
}

TEST(Patterns, RepeatScheduleIsPeriodic)
{
    Random rng(4);
    PatternParams pp;
    pp.numBuffers = 32;
    pp.length = 60;
    pp.period = 3;
    pp.stride = 1;
    auto s = generateSchedule(PatternKind::RepeatStride, pp, rng);
    for (size_t i = 0; i + 3 < s.size(); ++i)
        EXPECT_EQ(s[i], s[i + 3]);
}

TEST(Patterns, ZipfScheduleIsSkewedAndDeterministic)
{
    PatternParams pp;
    pp.numBuffers = 64;
    pp.length = 8192;

    Random rng_a(7);
    auto a = generateSchedule(PatternKind::Zipf, pp, rng_a);
    ASSERT_EQ(a.size(), pp.length);

    std::vector<unsigned> counts(pp.numBuffers, 0);
    for (unsigned v : a) {
        ASSERT_LT(v, pp.numBuffers);
        ++counts[v];
    }
    // Harmonic s=1 skew: the hottest buffer takes far more than the
    // uniform share (len/n = 128), and a large minority of buffers
    // still gets touched — hot set plus long tail.
    unsigned hottest = *std::max_element(counts.begin(), counts.end());
    EXPECT_GT(hottest, 3u * pp.length / pp.numBuffers);
    unsigned touched = 0;
    for (unsigned c : counts)
        touched += c > 0;
    EXPECT_GT(touched, pp.numBuffers / 2);

    // Same seed, same schedule; different seed, different one.
    Random rng_b(7);
    EXPECT_EQ(a, generateSchedule(PatternKind::Zipf, pp, rng_b));
    Random rng_c(8);
    EXPECT_NE(a, generateSchedule(PatternKind::Zipf, pp, rng_c));
}

TEST(Patterns, ClassifierDetectsConstant)
{
    auto cls = classifySequence({31, 31, 31, 31, 31, 31, 31});
    EXPECT_EQ(cls.kind, PatternKind::Constant);
}

TEST(Patterns, ClassifierDetectsTableIIRows)
{
    // The exact example rows from Table II.
    EXPECT_EQ(classifySequence({13, 16, 19, 22, 25, 28, 31, 34, 37,
                                40, 43, 46})
                  .kind,
              PatternKind::Stride);
    EXPECT_EQ(classifySequence({11, 11, 11, 15, 15, 15, 15, 19, 19,
                                19, 23, 23, 23, 27, 27, 27})
                  .kind,
              PatternKind::BatchStride);
    EXPECT_EQ(classifySequence({22, 22, 22, 13, 13, 13, 99, 99, 99,
                                41, 41, 41, 7, 7, 7})
                  .kind,
              PatternKind::BatchNoStride);
    EXPECT_EQ(classifySequence({26, 27, 28, 26, 27, 28, 26, 27, 28,
                                26, 27, 28})
                  .kind,
              PatternKind::RepeatStride);
    EXPECT_EQ(classifySequence({26, 57, 5, 26, 57, 5, 26, 57, 5, 26,
                                57, 5})
                  .kind,
              PatternKind::RepeatNoStride);
}

struct RoundTripCase
{
    PatternKind kind;
    const char *name;
};

class PatternRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>>
{
};

TEST_P(PatternRoundTrip, GenerateThenClassify)
{
    auto kind = static_cast<PatternKind>(std::get<0>(GetParam()));
    uint64_t seed = std::get<1>(GetParam());
    Random rng(seed);
    PatternParams pp;
    pp.numBuffers = 24;
    pp.length = 512;
    pp.batchLen = 4;
    pp.period = 3;
    pp.stride = 1;
    auto sched = generateSchedule(kind, pp, rng);
    auto cls = classifySequence(toU64(sched));

    switch (kind) {
      case PatternKind::Constant:
        EXPECT_EQ(cls.kind, PatternKind::Constant);
        break;
      case PatternKind::Stride:
        EXPECT_EQ(cls.kind, PatternKind::Stride);
        EXPECT_EQ(cls.stride, 1);
        break;
      case PatternKind::BatchStride:
        EXPECT_EQ(cls.kind, PatternKind::BatchStride);
        EXPECT_EQ(cls.batchLen, 4u);
        break;
      case PatternKind::BatchNoStride:
        EXPECT_EQ(cls.kind, PatternKind::BatchNoStride);
        break;
      case PatternKind::RepeatStride:
        EXPECT_EQ(cls.kind, PatternKind::RepeatStride);
        EXPECT_EQ(cls.period, 3u);
        break;
      case PatternKind::RepeatNoStride:
        EXPECT_EQ(cls.kind, PatternKind::RepeatNoStride);
        break;
      case PatternKind::RandomStride:
        // Local small steps may occasionally classify as repeat;
        // must at least not look strided or constant.
        EXPECT_NE(cls.kind, PatternKind::Constant);
        EXPECT_NE(cls.kind, PatternKind::Stride);
        break;
      case PatternKind::RandomNoStride:
        EXPECT_NE(cls.kind, PatternKind::Constant);
        EXPECT_NE(cls.kind, PatternKind::Stride);
        break;
      case PatternKind::Zipf:
        // The classifier never emits Zipf (the paper's taxonomy has
        // no such class); skewed reuse must fall into one of the
        // unordered classes, not a strided one.
        EXPECT_NE(cls.kind, PatternKind::Zipf);
        EXPECT_NE(cls.kind, PatternKind::Constant);
        EXPECT_NE(cls.kind, PatternKind::Stride);
        EXPECT_NE(cls.kind, PatternKind::RepeatStride);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSeeds, PatternRoundTrip,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(1u, 17u, 99u)),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>
           &info) {
        std::string name = patternName(static_cast<PatternKind>(
            std::get<0>(info.param)));
        for (char &c : name)
            if (c == ' ' || c == '+')
                c = '_';
        return name + "_s" +
               std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace chex

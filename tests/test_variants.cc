/**
 * @file
 * Enforcement-variant tests: the Figure 6 performance ordering
 * (baseline fastest; prediction-driven beats always-on, binary
 * translation, and ASan; hardware-only loses on pointer-intensive
 * code), micro-op expansion bounds, context-sensitive enforcement,
 * and the shadow-storage model of Figure 9.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

namespace chex
{
namespace
{

RunResult
runVariant(const Program &prog, VariantKind kind,
           std::vector<CodeRegion> regions = {})
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    cfg.variant.criticalRegions = std::move(regions);
    System sys(cfg);
    sys.load(prog);
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited) << variantName(kind);
    EXPECT_FALSE(r.violationDetected) << variantName(kind);
    return r;
}

Program
pointerHeavyProgram()
{
    BenchmarkProfile p = profileByName("mcf");
    p.iterations = 1200;
    return generateWorkload(p, 5);
}

TEST(Variants, Figure6PerformanceOrdering)
{
    Program prog = pointerHeavyProgram();
    RunResult base = runVariant(prog, VariantKind::Baseline);
    RunResult hw = runVariant(prog, VariantKind::HardwareOnly);
    RunResult bt = runVariant(prog, VariantKind::BinaryTranslation);
    RunResult on = runVariant(prog, VariantKind::MicrocodeAlwaysOn);
    RunResult pred =
        runVariant(prog, VariantKind::MicrocodePrediction);
    RunResult asan = runVariant(prog, VariantKind::Asan);

    // Baseline is fastest.
    EXPECT_LT(base.cycles, pred.cycles);
    // Prediction-driven beats always-on and binary translation.
    EXPECT_LE(pred.cycles, on.cycles);
    EXPECT_LT(pred.cycles, bt.cycles);
    // On pointer-intensive code it also beats hardware-only.
    EXPECT_LT(pred.cycles, hw.cycles);
    // The software mitigation is the slowest.
    EXPECT_GT(asan.cycles, pred.cycles);
    EXPECT_GT(asan.cycles, base.cycles);
}

TEST(Variants, UopExpansionShape)
{
    // Figure 6 bottom: CHEx86's expansion is modest; ASan more than
    // doubles the dynamic micro-op count on pointer-heavy code.
    Program prog = pointerHeavyProgram();
    RunResult base = runVariant(prog, VariantKind::Baseline);
    RunResult pred =
        runVariant(prog, VariantKind::MicrocodePrediction);
    RunResult on = runVariant(prog, VariantKind::MicrocodeAlwaysOn);
    RunResult asan = runVariant(prog, VariantKind::Asan);

    double pred_exp =
        static_cast<double>(pred.uops) / base.uops;
    double on_exp = static_cast<double>(on.uops) / base.uops;
    EXPECT_GT(on_exp, 1.0);
    double asan_exp =
        static_cast<double>(asan.uops) / base.uops;

    EXPECT_GT(pred_exp, 1.0);
    EXPECT_LT(pred_exp, 1.6);
    // Prediction-driven injects no more than always-on.
    EXPECT_LE(pred.uops, on.uops);
    EXPECT_GT(asan_exp, 1.8);
}

TEST(Variants, BaselineInjectsNothing)
{
    Program prog = generateSmokeProgram(4, 128);
    RunResult r = runVariant(prog, VariantKind::Baseline);
    EXPECT_EQ(r.capChecksInjected, 0u);
    EXPECT_EQ(r.injectedUops, 0u);
    EXPECT_EQ(r.shadowBytes, 0u);
}

TEST(Variants, AlwaysOnChecksEveryMemoryOp)
{
    Program prog = generateSmokeProgram(4, 128);
    RunResult on = runVariant(prog, VariantKind::MicrocodeAlwaysOn);
    RunResult pred =
        runVariant(prog, VariantKind::MicrocodePrediction);
    EXPECT_GT(on.capChecksInjected, pred.capChecksInjected);
}

TEST(Variants, HardwareOnlyChecksWithoutInjection)
{
    Program prog = generateSmokeProgram(4, 128);
    RunResult hw = runVariant(prog, VariantKind::HardwareOnly);
    EXPECT_GT(hw.capChecksInjected, 0u);
    // No capCheck micro-ops enter the pipeline (LSU-internal).
    EXPECT_LT(hw.injectedUops, hw.capChecksInjected);
}

TEST(Variants, HardwareOnlyStillDetects)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 80), 1, 8);
    as.hlt();
    Program prog = as.finalize();

    SystemConfig cfg;
    cfg.variant.kind = VariantKind::HardwareOnly;
    System sys(cfg);
    sys.load(prog);
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::OutOfBounds);
}

TEST(Variants, BinaryTranslationDetects)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 80), 1, 8);
    as.hlt();
    Program prog = as.finalize();

    SystemConfig cfg;
    cfg.variant.kind = VariantKind::BinaryTranslation;
    System sys(cfg);
    sys.load(prog);
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
}

TEST(Variants, ContextSensitiveEnforcementSkipsOutsideRegions)
{
    // Mark a region that excludes all program code: allocations are
    // still tracked, but no checks are injected and the (out of
    // bounds) access goes unflagged — the "surgical" mode of
    // Section V-C.
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 80), 1, 8);
    as.hlt();
    Program prog = as.finalize();

    SystemConfig cfg;
    cfg.variant.kind = VariantKind::MicrocodePrediction;
    cfg.variant.criticalRegions = {{0x1000, 0x2000}}; // nowhere
    System sys(cfg);
    sys.load(prog);
    RunResult r = sys.run();
    EXPECT_FALSE(r.violationDetected);
    EXPECT_EQ(r.capChecksInjected, 0u);
    // Allocations were still tracked.
    EXPECT_GE(sys.capabilityTable().totalCapabilities(), 1u);
}

TEST(Variants, ContextSensitiveEnforcementProtectsInsideRegions)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 80), 1, 8);
    as.hlt();
    Program prog = as.finalize();

    SystemConfig cfg;
    cfg.variant.kind = VariantKind::MicrocodePrediction;
    cfg.variant.criticalRegions = {
        {prog.codeBase, prog.codeBase + 0x1000}};
    System sys(cfg);
    sys.load(prog);
    RunResult r = sys.run();
    EXPECT_TRUE(r.violationDetected);
}

TEST(Variants, ContextSensitiveReducesCheckCount)
{
    Program prog = pointerHeavyProgram();
    RunResult all = runVariant(prog, VariantKind::MicrocodePrediction);
    // Protect only the first quarter of the text section.
    RunResult some = runVariant(
        prog, VariantKind::MicrocodePrediction,
        {{prog.codeBase,
          prog.codeBase + prog.numInsts() * InstSlotBytes / 4}});
    EXPECT_LT(some.capChecksInjected, all.capChecksInjected);
    EXPECT_LE(some.cycles, all.cycles);
}

TEST(Variants, ShadowStorageModel)
{
    // Allocation-heavy workload: CHEx86's shadow scales with
    // allocations + aliases, ASan's with the resident set.
    BenchmarkProfile p = profileByName("xalancbmk");
    p.iterations = 1500;
    Program prog = generateWorkload(p, 5);
    RunResult base = runVariant(prog, VariantKind::Baseline);
    RunResult pred =
        runVariant(prog, VariantKind::MicrocodePrediction);
    RunResult asan = runVariant(prog, VariantKind::Asan);

    EXPECT_EQ(base.shadowBytes, 0u);
    EXPECT_GT(pred.shadowBytes, 0u);
    EXPECT_GT(asan.shadowBytes, 0u);
    // Figure 9 top: CHEx86's shadow stays in the same ballpark as
    // ASan's. (At full SimPoint scale the paper reports CHEx86 at or
    // below ASan; at our ~1000x-scaled footprints the 4 KiB radix
    // nodes weigh relatively more, so the bound here is 2x.)
    EXPECT_LE(pred.shadowBytes, asan.shadowBytes * 2);
}

TEST(Variants, BandwidthGrowsModestly)
{
    Program prog = pointerHeavyProgram();
    RunResult base = runVariant(prog, VariantKind::Baseline);
    RunResult pred =
        runVariant(prog, VariantKind::MicrocodePrediction);
    EXPECT_GE(pred.dramBytes, base.dramBytes);
    // Figure 9 bottom: no blow-up — contained within ~2x even for
    // the pointer-intensive outlier.
    EXPECT_LT(static_cast<double>(pred.dramBytes),
              2.5 * static_cast<double>(base.dramBytes));
}

TEST(Variants, SquashTimeDeltaIsSmall)
{
    // Figure 8 bottom: alias-misprediction squashes barely move the
    // total time spent squashing.
    Program prog = pointerHeavyProgram();
    RunResult base = runVariant(prog, VariantKind::Baseline);
    RunResult pred =
        runVariant(prog, VariantKind::MicrocodePrediction);
    EXPECT_LT(pred.squashFraction, base.squashFraction + 0.05);
}

} // namespace
} // namespace chex

/**
 * @file
 * Unit tests for the base utilities: logging formatters, the
 * deterministic RNG, integer math, statistics, and table rendering.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "base/stats.hh"
#include "base/table.hh"

namespace chex
{
namespace
{

TEST(Logging, CsprintfFormats)
{
    EXPECT_EQ(csprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(csprintf("%06x", 0xabc), "000abc");
}

TEST(Random, DeterministicFromSeed)
{
    Random a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Random, UniformWithinBounds)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = r.uniform(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Random, SkewedSizeWithinBounds)
{
    Random r(7);
    uint64_t below_mid = 0;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.skewedSize(32, 65536);
        EXPECT_GE(v, 32u);
        EXPECT_LE(v, 65536u);
        if (v < 2048)
            ++below_mid;
    }
    // The log-uniform draw skews heavily toward small sizes.
    EXPECT_GT(below_mid, 800u);
}

TEST(Random, ChanceExtremes)
{
    Random r(9);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
}

TEST(Random, WeightedIndexRespectsWeights)
{
    Random r(11);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 3000; ++i)
        ++counts[r.weightedIndex({1.0, 0.0, 9.0})];
    EXPECT_EQ(counts[1], 0);
    EXPECT_GT(counts[2], counts[0] * 4);
}

TEST(IntMath, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(ceilLog2(48), 6u);
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(roundUp(17, 16), 32u);
    EXPECT_EQ(roundDown(17, 16), 16u);
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffull);
}

TEST(Stats, ScalarArithmetic)
{
    stats::StatGroup g("g");
    auto &s = g.addScalar("s", "test");
    s += 2;
    ++s;
    s++;
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    EXPECT_DOUBLE_EQ(g.get("s"), 4.0);
    s = 7;
    EXPECT_EQ(s.count(), 7u);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, ScalarCountsPastDoublePrecisionCliff)
{
    // 2^53 is the first integer a double cannot distinguish from its
    // successor: 9007199254740992.0 + 1.0 == 9007199254740992.0, so
    // a double-backed counter silently stops counting there. The
    // integer Scalar must keep exact counts across the cliff.
    constexpr uint64_t cliff = 1ull << 53;
    stats::StatGroup g("g");
    auto &s = g.addScalar("s", "test");
    s = cliff;
    ++s;
    EXPECT_EQ(s.count(), cliff + 1);
    s += 1;
    EXPECT_EQ(s.count(), cliff + 2);

    // The same arithmetic through doubles is a silent no-op — the
    // failure mode this test pins down.
    double d = static_cast<double>(cliff);
    EXPECT_EQ(d + 1.0, d);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    stats::StatGroup g("g");
    auto &a = g.addScalar("a", "");
    g.addFormula("double_a", "", [&a]() { return a.value() * 2; });
    a = 21;
    EXPECT_DOUBLE_EQ(g.get("double_a"), 42.0);
}

TEST(Stats, NestedLookup)
{
    stats::StatGroup parent("parent");
    stats::StatGroup child("child");
    auto &s = child.addScalar("x", "");
    parent.addChild(&child);
    s = 7;
    EXPECT_DOUBLE_EQ(parent.get("child.x"), 7.0);
    EXPECT_TRUE(parent.has("child.x"));
    EXPECT_FALSE(parent.has("child.y"));
}

TEST(Stats, HistogramBucketsAndMoments)
{
    stats::Histogram h(0, 100, 10);
    h.sample(5);
    h.sample(5);
    h.sample(95);
    h.sample(-1);  // underflow
    h.sample(101); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[9], 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.minSample(), -1.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 101.0);
}

TEST(Stats, ResetClearsEverything)
{
    stats::StatGroup g("g");
    auto &s = g.addScalar("s", "");
    auto &h = g.addHistogram("h", "", 0, 10, 5);
    s = 3;
    h.sample(1);
    g.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Stats, DumpContainsEntries)
{
    stats::StatGroup g("sys");
    auto &s = g.addScalar("cycles", "total cycles");
    s = 100;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("sys.cycles = 100"), std::string::npos);
}

TEST(Table, RendersAlignedRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_NE(out.find("+"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

} // namespace
} // namespace chex

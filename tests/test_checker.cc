/**
 * @file
 * Hardware-checker tests: run-time validation of tracker
 * predictions against the exhaustive capability search, and
 * automatic rule construction by consistent-vote inference
 * (Section V-A).
 */

#include <gtest/gtest.h>

#include "tracker/checker.hh"

namespace chex
{
namespace
{

StaticUop
addUopRr()
{
    StaticUop u;
    u.type = UopType::IntAlu;
    u.op = AluOp::Add;
    u.dst = RCX;
    u.src1 = RBX;
    u.src2 = RAX;
    return u;
}

class CheckerTest : public ::testing::Test
{
  protected:
    CheckerTest() : checker(caps, rules)
    {
        Violation v;
        pid = caps.beginGeneration(64, &v);
        caps.endGeneration(pid, 0x5000);
    }

    CapabilityTable caps;
    RuleDatabase rules; // intentionally empty
    CheckerConfig cfg;
    HardwareChecker checker;
    Pid pid;
};

TEST_F(CheckerTest, CorrectPredictionValidates)
{
    // Tracker predicted the PID; result points into the block.
    EXPECT_TRUE(checker.observe(addUopRr(), pid, 0, pid, 0x5010));
    EXPECT_EQ(checker.mismatches(), 0u);
    EXPECT_EQ(checker.validations(), 1u);
}

TEST_F(CheckerTest, NonPointerResultValidates)
{
    EXPECT_TRUE(checker.observe(addUopRr(), 0, 0, NoPid, 1234));
    EXPECT_EQ(checker.mismatches(), 0u);
}

TEST_F(CheckerTest, WildPredictionSkipsValidation)
{
    // PID(-1) is a deliberate over-approximation.
    EXPECT_TRUE(checker.observe(addUopRr(), 0, 0, WildPid, 1234));
}

TEST_F(CheckerTest, MismatchIsRecorded)
{
    // Tracker said "no pointer" but the result lands in the block.
    EXPECT_FALSE(checker.observe(addUopRr(), pid, 0, NoPid, 0x5010));
    EXPECT_EQ(checker.mismatches(), 1u);
    EXPECT_LT(checker.matchRate(), 1.0);
}

TEST_F(CheckerTest, ConstructsRuleAfterConsistentVotes)
{
    // With an empty database the tracker never propagates through
    // ADD; the checker must infer CopySrc1 (src1 carries the PID
    // that explains the observed result) and install it.
    StaticUop u = addUopRr();
    for (unsigned i = 0; i < 16; ++i)
        checker.observe(u, pid, 0, NoPid, 0x5008);
    ASSERT_EQ(checker.constructedRules().size(), 1u);
    const ConstructedRule &rule = checker.constructedRules()[0];
    EXPECT_EQ(rule.action, RuleAction::CopySrc1);
    EXPECT_TRUE(rules.has(rule.key));
    // The freshly installed rule now propagates.
    EXPECT_EQ(rules.propagate(u, pid, 0), pid);
    EXPECT_FALSE(rules.rules()[0].expertSeeded);
}

TEST_F(CheckerTest, InconsistentVotesDoNotInstall)
{
    StaticUop u = addUopRr();
    // Alternate which source explains the result so no action
    // reaches the consistency threshold.
    for (unsigned i = 0; i < 20; ++i) {
        if (i % 2 == 0)
            checker.observe(u, pid, 0, NoPid, 0x5008); // CopySrc1
        else
            checker.observe(u, 0, pid, NoPid, 0x5008); // CopySrc2
    }
    EXPECT_TRUE(checker.constructedRules().empty());
}

TEST_F(CheckerTest, UnexplainedMismatchEscalates)
{
    // Neither source carries the PID that the result resolves to:
    // the paper escalates this to manual rule-database updates.
    StaticUop u = addUopRr();
    checker.observe(u, 0, 0, NoPid, 0x5010);
    EXPECT_EQ(checker.manualInterventions(), 1u);
}

TEST_F(CheckerTest, FreedBlocksStillResolve)
{
    caps.beginFree(pid, 0x5000);
    caps.endFree(pid);
    // Validation uses live *and* freed blocks.
    EXPECT_TRUE(checker.observe(addUopRr(), pid, 0, pid, 0x5010));
}

} // namespace
} // namespace chex

/**
 * @file
 * Equivalence tests for the flat store-to-load forwarding table
 * against the std::unordered_map it replaced in Core. The timing
 * model's cycle assignments depend on exact hit/miss/overwrite
 * behavior, so the flat table must match the map bit-for-bit —
 * including across the core's size-triggered clear.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "base/random.hh"
#include "cpu/store_forward.hh"

namespace chex
{
namespace
{

TEST(StoreForwardTable, BasicInsertLookupOverwrite)
{
    StoreForwardTable t;
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.lookup(42), nullptr);

    t.insert(42, 100);
    ASSERT_NE(t.lookup(42), nullptr);
    EXPECT_EQ(*t.lookup(42), 100u);
    EXPECT_EQ(t.size(), 1u);

    // Overwrite does not change the distinct-word count.
    t.insert(42, 250);
    EXPECT_EQ(*t.lookup(42), 250u);
    EXPECT_EQ(t.size(), 1u);

    t.insert(43, 7);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.lookup(44), nullptr);
}

TEST(StoreForwardTable, ClearDropsEverything)
{
    StoreForwardTable t;
    for (uint64_t w = 0; w < 100; ++w)
        t.insert(w, w * 3);
    EXPECT_EQ(t.size(), 100u);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    for (uint64_t w = 0; w < 100; ++w)
        EXPECT_EQ(t.lookup(w), nullptr);

    // The table is fully usable after an epoch-based clear, and
    // repeated clears keep working.
    t.insert(5, 9);
    ASSERT_NE(t.lookup(5), nullptr);
    EXPECT_EQ(*t.lookup(5), 9u);
    t.clear();
    EXPECT_EQ(t.lookup(5), nullptr);
}

TEST(StoreForwardTable, CollidingWordsProbeCorrectly)
{
    // Words spaced by Capacity share low index bits under many hash
    // schemes; regardless of the hash, inserting many keys forces
    // probe chains. Every key must remain individually addressable.
    StoreForwardTable t;
    constexpr uint64_t stride = StoreForwardTable::Capacity;
    for (uint64_t i = 0; i < 64; ++i)
        t.insert(i * stride, i + 1);
    for (uint64_t i = 0; i < 64; ++i) {
        const uint64_t *r = t.lookup(i * stride);
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(*r, i + 1);
    }
    EXPECT_EQ(t.size(), 64u);
}

TEST(StoreForwardTable, MatchesReferenceMapUnderRandomTraffic)
{
    // Drive the flat table and a reference unordered_map with the
    // same randomized insert/lookup stream, replicating Core's
    // policy: insert on store, clear both when size exceeds the
    // core's threshold. Any divergence would shift simulated cycles.
    StoreForwardTable flat;
    std::unordered_map<uint64_t, uint64_t> ref;
    Random rng(12345);

    constexpr size_t ClearThreshold = 8192;
    unsigned clears = 0;

    for (int op = 0; op < 200000; ++op) {
        // Skewed word space: hot words collide often (overwrites),
        // cold words grow the table toward the clear threshold.
        uint64_t word = rng.chance(0.3) ? rng.uniform(0, 63)
                                        : rng.uniform(0, 1u << 20);
        if (rng.chance(0.5)) {
            uint64_t ready = rng.next();
            flat.insert(word, ready);
            ref[word] = ready;
            if (flat.size() > ClearThreshold) {
                flat.clear();
                ref.clear();
                ++clears;
            }
        } else {
            const uint64_t *got = flat.lookup(word);
            auto it = ref.find(word);
            if (it == ref.end()) {
                EXPECT_EQ(got, nullptr) << "word " << word;
            } else {
                ASSERT_NE(got, nullptr) << "word " << word;
                EXPECT_EQ(*got, it->second) << "word " << word;
            }
        }
        EXPECT_EQ(flat.size(), ref.size());
    }
    // The stream must actually cross the clear threshold for this
    // test to cover the epoch path.
    EXPECT_GT(clears, 0u);

    // Final sweep: every surviving entry agrees both ways.
    size_t visited = 0;
    flat.forEach([&](uint64_t word, uint64_t ready) {
        auto it = ref.find(word);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(it->second, ready);
        ++visited;
    });
    EXPECT_EQ(visited, ref.size());
}

} // namespace
} // namespace chex

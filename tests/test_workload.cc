/**
 * @file
 * Workload-generator tests: all 14 benchmark profiles produce
 * programs that run violation-free under full protection, and their
 * measured behaviour matches the profile (allocation counts, live
 * set, reload density, Figure 3 ordering).
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace
{

RunResult
runProfile(BenchmarkProfile p, VariantKind kind, uint64_t seed = 3)
{
    p.iterations = std::min<uint64_t>(p.iterations, 800);
    SystemConfig cfg;
    cfg.variant.kind = kind;
    cfg.inUseIntervalMacroOps = 10000;
    System sys(cfg);
    sys.load(generateWorkload(p, seed));
    return sys.run();
}

TEST(Workload, FourteenProfilesExist)
{
    EXPECT_EQ(allProfiles().size(), 14u);
    EXPECT_EQ(specProfiles().size(), 8u);
    EXPECT_EQ(parsecProfiles().size(), 6u);
}

class ProfileTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ProfileTest, RunsCleanUnderFullProtection)
{
    const BenchmarkProfile &p = allProfiles()[GetParam()];
    RunResult r = runProfile(p, VariantKind::MicrocodePrediction);
    EXPECT_TRUE(r.exited) << p.name;
    EXPECT_FALSE(r.violationDetected)
        << p.name << ": "
        << violationName(r.violations.empty()
                             ? Violation::None
                             : r.violations[0].kind);
}

TEST_P(ProfileTest, RunsCleanUnderAsan)
{
    const BenchmarkProfile &p = allProfiles()[GetParam()];
    RunResult r = runProfile(p, VariantKind::Asan);
    EXPECT_TRUE(r.exited) << p.name;
    EXPECT_FALSE(r.violationDetected) << p.name;
}

TEST_P(ProfileTest, DeterministicAcrossRuns)
{
    const BenchmarkProfile &p = allProfiles()[GetParam()];
    RunResult a = runProfile(p, VariantKind::MicrocodePrediction);
    RunResult b = runProfile(p, VariantKind::MicrocodePrediction);
    EXPECT_EQ(a.cycles, b.cycles) << p.name;
    EXPECT_EQ(a.uops, b.uops) << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    All14, ProfileTest,
    ::testing::Range<size_t>(0, allProfiles().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return allProfiles()[info.param].name;
    });

TEST(Workload, AllocationBehaviourMatchesProfileShape)
{
    // Figure 3's invariant: total allocations >= max live >>
    // allocations-in-use per interval.
    BenchmarkProfile p = profileByName("xalancbmk");
    p.iterations = 3000;
    SystemConfig cfg;
    cfg.inUseIntervalMacroOps = 20000;
    System sys(cfg);
    sys.load(generateWorkload(p, 3));
    RunResult r = sys.run();
    ASSERT_TRUE(r.exited);
    EXPECT_GE(r.totalAllocations, r.maxLiveAllocations);
    EXPECT_GT(static_cast<double>(r.maxLiveAllocations),
              r.avgAllocationsInUse);
    EXPECT_EQ(r.maxLiveAllocations, p.maxLiveBuffers);
    EXPECT_GT(r.totalAllocations, p.maxLiveBuffers);
}

TEST(Workload, AllocationHeavyProfilesAllocateMore)
{
    auto total = [](const char *name) {
        BenchmarkProfile p = profileByName(name);
        p.iterations = 2000;
        SystemConfig cfg;
        System sys(cfg);
        sys.load(generateWorkload(p, 3));
        return sys.run().totalAllocations;
    };
    uint64_t xalanc = total("xalancbmk");
    uint64_t lbm = total("lbm");
    EXPECT_GT(xalanc, lbm * 10);
}

TEST(Workload, ReloadDensityIsRealistic)
{
    // Section V-C: spilled-pointer reloads are a small fraction of
    // memory references (~2.5 % for SPEC; our pointer-chasing
    // workloads run higher but stay a clear minority).
    BenchmarkProfile p = profileByName("perlbench");
    p.iterations = 1500;
    SystemConfig cfg;
    System sys(cfg);
    sys.load(generateWorkload(p, 3));
    RunResult r = sys.run();
    ASSERT_TRUE(r.exited);
    double density =
        static_cast<double>(r.pointerReloads) / r.loads;
    EXPECT_GT(density, 0.005);
    EXPECT_LT(density, 0.35);
}

TEST(Workload, PointerIntensityDrivesCheckDensity)
{
    auto check_density = [](const char *name) {
        BenchmarkProfile p = profileByName(name);
        p.iterations = 1000;
        SystemConfig cfg;
        System sys(cfg);
        sys.load(generateWorkload(p, 3));
        RunResult r = sys.run();
        return static_cast<double>(r.capChecksInjected) / r.uops;
    };
    EXPECT_GT(check_density("mcf"), check_density("blackscholes"));
}

TEST(Workload, ChaseProfilesSpillPointersIntoHeap)
{
    BenchmarkProfile p = profileByName("mcf");
    p.iterations = 500;
    SystemConfig cfg;
    System sys(cfg);
    sys.load(generateWorkload(p, 3));
    RunResult r = sys.run();
    ASSERT_TRUE(r.exited);
    EXPECT_GT(r.pointerSpills, p.maxLiveBuffers);
    EXPECT_GT(r.pointerReloads, 100u);
}

TEST(Workload, DifferentSeedsChangeScheduleNotShape)
{
    BenchmarkProfile p = profileByName("leela");
    p.iterations = 500;
    RunResult a = runProfile(p, VariantKind::MicrocodePrediction, 1);
    RunResult b = runProfile(p, VariantKind::MicrocodePrediction, 2);
    EXPECT_TRUE(a.exited && b.exited);
    EXPECT_EQ(a.totalAllocations, b.totalAllocations);
    // Timing may differ slightly, but within the same regime.
    double ratio = static_cast<double>(a.cycles) / b.cycles;
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.4);
}

TEST(Workload, ServerFamilyIsSeparateFromPaperSet)
{
    // The server family must not leak into allProfiles(): the
    // paper's figures iterate that registry and its size is pinned
    // above.
    EXPECT_EQ(serverProfiles().size(), 3u);
    for (const auto &p : serverProfiles()) {
        EXPECT_EQ(p.dominantPattern, PatternKind::Zipf) << p.name;
        for (const auto &q : allProfiles())
            EXPECT_NE(p.name, q.name);
        // By-name lookup reaches the family anyway.
        const BenchmarkProfile *found = findProfileByName(p.name);
        ASSERT_NE(found, nullptr) << p.name;
        EXPECT_EQ(found->name, p.name);
    }
    // The family spans the scale story: lite for CI, churn at
    // hundreds of thousands live and millions of total allocations.
    const BenchmarkProfile &churn = profileByName("server-churn");
    EXPECT_GE(churn.totalAllocations, 2000000u);
    EXPECT_GE(churn.maxLiveBuffers, 200000u);
}

TEST(Workload, ServerLiteRunsCleanAndDeterministic)
{
    BenchmarkProfile p = profileByName("server-lite");
    p.maxLiveBuffers = 300; // keep the unit test quick
    p.totalAllocations = 3000;
    RunResult a = runProfile(p, VariantKind::MicrocodePrediction);
    EXPECT_TRUE(a.exited);
    EXPECT_FALSE(a.violationDetected);
    RunResult b = runProfile(p, VariantKind::MicrocodePrediction);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.uops, b.uops);
}

TEST(Workload, SmokeProgramBalancedAllocFree)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.load(generateSmokeProgram(6, 64));
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.totalAllocations, 6u);
    EXPECT_EQ(sys.heap().liveAllocations(), 0u);
}

} // namespace
} // namespace chex

/**
 * @file
 * Branch-predictor tests: TAGE direction learning on biased and
 * history-correlated branches, BTB target prediction, and RAS
 * call/return pairing.
 */

#include <gtest/gtest.h>

#include "cpu/bpred.hh"

namespace chex
{
namespace
{

TEST(Bpred, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    uint64_t pc = 0x400100;
    for (int i = 0; i < 32; ++i) {
        bp.predict(pc, false, false, false, pc + 4);
        bp.update(pc, true, 0x400800, true);
    }
    BranchPrediction p = bp.predict(pc, false, false, false, pc + 4);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x400800u);
}

TEST(Bpred, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    uint64_t pc = 0x400200;
    for (int i = 0; i < 32; ++i) {
        bp.predict(pc, false, false, false, pc + 4);
        bp.update(pc, false, 0, true);
    }
    EXPECT_FALSE(bp.predict(pc, false, false, false, pc + 4).taken);
}

TEST(Bpred, LearnsHistoryCorrelatedPattern)
{
    // Alternating T/NT is invisible to a bimodal table but trivial
    // for the tagged history tables.
    BranchPredictor bp;
    uint64_t pc = 0x400300;
    bool outcome = false;
    int wrong_late = 0;
    for (int i = 0; i < 600; ++i) {
        outcome = !outcome;
        BranchPrediction p =
            bp.predict(pc, false, false, false, pc + 4);
        if (i >= 300 && p.taken != outcome)
            ++wrong_late;
        bp.update(pc, outcome, 0x400900, true);
    }
    EXPECT_LT(wrong_late, 30);
}

TEST(Bpred, UnconditionalAlwaysTaken)
{
    BranchPredictor bp;
    BranchPrediction p =
        bp.predict(0x400400, false, false, true, 0x400404);
    EXPECT_TRUE(p.taken);
}

TEST(Bpred, RasPairsCallsAndReturns)
{
    BranchPredictor bp;
    // call at 0x400500, falls through to 0x400504.
    bp.predict(0x400500, true, false, false, 0x400504);
    // nested call.
    bp.predict(0x400600, true, false, false, 0x400604);
    BranchPrediction r1 =
        bp.predict(0x400700, false, true, false, 0x400704);
    EXPECT_TRUE(r1.targetKnown);
    EXPECT_EQ(r1.target, 0x400604u);
    BranchPrediction r2 =
        bp.predict(0x400708, false, true, false, 0x40070c);
    EXPECT_EQ(r2.target, 0x400504u);
}

TEST(Bpred, BtbTracksRetargeting)
{
    BranchPredictor bp;
    uint64_t pc = 0x400800;
    bp.update(pc, true, 0xa000, false);
    BranchPrediction p = bp.predict(pc, false, false, true, pc + 4);
    EXPECT_EQ(p.target, 0xa000u);
    bp.update(pc, true, 0xb000, false);
    p = bp.predict(pc, false, false, true, pc + 4);
    EXPECT_EQ(p.target, 0xb000u);
    EXPECT_GE(bp.targetMispredicts(), 1u);
}

TEST(Bpred, StatisticsAccumulate)
{
    BranchPredictor bp;
    uint64_t pc = 0x400900;
    for (int i = 0; i < 8; ++i) {
        bp.predict(pc, false, false, false, pc + 4);
        bp.update(pc, i % 2 == 0, 0xc000, true);
    }
    EXPECT_EQ(bp.lookups(), 8u);
    EXPECT_GT(bp.directionMispredicts(), 0u);
}

} // namespace
} // namespace chex

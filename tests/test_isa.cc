/**
 * @file
 * ISA-layer tests: macro-instruction predicates, assembler label
 * resolution and runtime-stub emission, decoder cracking rules
 * (Figure 5's micro-code sequences), and FLAGS condition encoding.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/decoder.hh"
#include "isa/program.hh"
#include "isa/uops.hh"

namespace chex
{
namespace
{

TEST(Insts, LoadStorePredicates)
{
    MacroInst mi;
    mi.opcode = MacroOpcode::MOV_RM;
    EXPECT_TRUE(mi.isLoad());
    EXPECT_FALSE(mi.isStore());
    mi.opcode = MacroOpcode::MOV_MR;
    EXPECT_TRUE(mi.isStore());
    mi.opcode = MacroOpcode::INC_M;
    EXPECT_TRUE(mi.isLoad());
    EXPECT_TRUE(mi.isStore());
    mi.opcode = MacroOpcode::CALL;
    EXPECT_TRUE(mi.isBranch());
    EXPECT_TRUE(mi.isStore()); // pushes the return address
    mi.opcode = MacroOpcode::RET;
    EXPECT_TRUE(mi.isLoad());
    EXPECT_TRUE(mi.isReturn());
}

TEST(Flags, EncodeAndTest)
{
    uint64_t f = encodeFlags(5, 5);
    EXPECT_TRUE(testCond(f, CondCode::EQ));
    EXPECT_FALSE(testCond(f, CondCode::NE));
    EXPECT_TRUE(testCond(f, CondCode::GE));
    EXPECT_TRUE(testCond(f, CondCode::LE));

    f = encodeFlags(static_cast<uint64_t>(-1), 1);
    EXPECT_TRUE(testCond(f, CondCode::LT));  // signed
    EXPECT_TRUE(testCond(f, CondCode::A));   // unsigned above

    f = encodeFlags(1, 2);
    EXPECT_TRUE(testCond(f, CondCode::B));
    EXPECT_TRUE(testCond(f, CondCode::LT));
    EXPECT_FALSE(testCond(f, CondCode::EQ));
}

TEST(Assembler, LabelsResolveForwardsAndBackwards)
{
    Assembler as;
    auto fwd = as.newLabel();
    auto back = as.newLabel();
    as.bind(back);
    as.nop();
    as.jmp(fwd);
    as.jmp(back);
    as.bind(fwd);
    as.hlt();
    Program p = as.finalize();
    // inst1 = jmp fwd (target = inst 3), inst2 = jmp back (inst 0).
    EXPECT_EQ(p.code[1].target, p.addrOf(3));
    EXPECT_EQ(p.code[2].target, p.addrOf(0));
}

TEST(Assembler, RuntimeStubsEmittedOncePerKind)
{
    Assembler as;
    as.call(IntrinsicKind::Malloc);
    as.call(IntrinsicKind::Malloc);
    as.call(IntrinsicKind::Free);
    as.hlt();
    Program p = as.finalize();
    EXPECT_EQ(p.runtimeFuncs.size(), 2u);
    const RuntimeFunc *m = p.findRuntime(IntrinsicKind::Malloc);
    ASSERT_NE(m, nullptr);
    // Stub = INTRINSIC + RET.
    EXPECT_EQ(p.fetch(m->entryAddr).opcode, MacroOpcode::INTRINSIC);
    EXPECT_EQ(p.fetch(m->exitAddr).opcode, MacroOpcode::RET);
    // Both calls resolve to the same stub.
    EXPECT_EQ(p.code[0].target, m->entryAddr);
    EXPECT_EQ(p.code[1].target, m->entryAddr);
}

TEST(Assembler, LibraryBodiesAreRealCode)
{
    Assembler as;
    as.call(IntrinsicKind::Strcpy);
    as.hlt();
    Program p = as.finalize();
    const RuntimeFunc *f = p.findRuntime(IntrinsicKind::Strcpy);
    ASSERT_NE(f, nullptr);
    // The body is a loop of real instructions, not an INTRINSIC.
    EXPECT_NE(p.fetch(f->entryAddr).opcode, MacroOpcode::INTRINSIC);
    EXPECT_EQ(p.fetch(f->exitAddr).opcode, MacroOpcode::RET);
    EXPECT_GT(f->exitAddr, f->entryAddr + 3 * InstSlotBytes);
}

TEST(Assembler, GlobalsAndPool)
{
    Assembler as;
    uint64_t a = as.addGlobal("a", 100);
    uint64_t b = as.addGlobal("b", 8);
    EXPECT_EQ(a, layout::DataBase);
    EXPECT_EQ(b, layout::DataBase + 104); // rounded to 8
    uint64_t slot = as.poolSlotFor("a");
    EXPECT_EQ(slot, layout::PoolBase);
    EXPECT_EQ(as.poolSlotFor("a"), slot); // idempotent
    as.hlt();
    Program p = as.finalize();
    ASSERT_EQ(p.pool.size(), 1u);
    EXPECT_EQ(p.pool[0].value, a);
    EXPECT_EQ(p.findSymbol("b")->size, 8u);
}

TEST(Decoder, SimpleOpsAreOneUop)
{
    MacroInst mi;
    mi.opcode = MacroOpcode::ADD_RR;
    mi.dst = RAX;
    mi.src = RBX;
    CrackedInst ci = Decoder::crack(mi, 0x400000);
    ASSERT_EQ(ci.uops.size(), 1u);
    EXPECT_EQ(ci.path, DecodePath::Simple);
    EXPECT_EQ(ci.uops[0].op, AluOp::Add);
    EXPECT_EQ(ci.uops[0].src1, RAX);
    EXPECT_EQ(ci.uops[0].src2, RBX);
}

TEST(Decoder, IncMemCracksToLdAddSt)
{
    // Figure 5(f): inc (%rax) -> ld t1,(%rax); add t1,t1,1; st t1.
    MacroInst mi;
    mi.opcode = MacroOpcode::INC_M;
    mi.mem = memAt(RAX);
    CrackedInst ci = Decoder::crack(mi, 0x400000);
    ASSERT_EQ(ci.uops.size(), 3u);
    EXPECT_EQ(ci.path, DecodePath::Complex);
    EXPECT_EQ(ci.uops[0].type, UopType::Load);
    EXPECT_EQ(ci.uops[1].type, UopType::IntAlu);
    EXPECT_TRUE(ci.uops[1].useImm);
    EXPECT_EQ(ci.uops[2].type, UopType::Store);
}

TEST(Decoder, CallCracksWithReturnAddress)
{
    MacroInst mi;
    mi.opcode = MacroOpcode::CALL;
    mi.target = 0x400100;
    CrackedInst ci = Decoder::crack(mi, 0x400010);
    ASSERT_EQ(ci.uops.size(), 4u);
    // limm of the return address is decoder-internal (synthetic).
    EXPECT_EQ(ci.uops[0].type, UopType::LoadImm);
    EXPECT_TRUE(ci.uops[0].synthetic);
    EXPECT_EQ(ci.uops[0].imm, 0x400014);
    EXPECT_TRUE(ci.uops[3].isBranch());
}

TEST(Decoder, RetCracksToLoadAddBranch)
{
    MacroInst mi;
    mi.opcode = MacroOpcode::RET;
    CrackedInst ci = Decoder::crack(mi, 0x400000);
    ASSERT_EQ(ci.uops.size(), 3u);
    EXPECT_EQ(ci.uops[0].type, UopType::Load);
    EXPECT_TRUE(ci.uops[2].indirect);
}

TEST(Decoder, MovImmediateIsNotSynthetic)
{
    // The programmer-visible load-immediate must be eligible for the
    // MOVI wild-pointer rule.
    MacroInst mi;
    mi.opcode = MacroOpcode::MOV_RI;
    mi.dst = RAX;
    mi.imm = 0x7fff1000;
    CrackedInst ci = Decoder::crack(mi, 0x400000);
    ASSERT_EQ(ci.uops.size(), 1u);
    EXPECT_EQ(ci.uops[0].type, UopType::LoadImm);
    EXPECT_FALSE(ci.uops[0].synthetic);
}

TEST(Decoder, IntrinsicUsesMsrom)
{
    MacroInst mi;
    mi.opcode = MacroOpcode::INTRINSIC;
    mi.intrinsic = IntrinsicKind::Malloc;
    CrackedInst ci = Decoder::crack(mi, 0x400000);
    EXPECT_EQ(ci.path, DecodePath::Msrom);
    EXPECT_EQ(ci.uops.size(),
              Decoder::intrinsicUopCount(IntrinsicKind::Malloc));
    // The final micro-op deposits the result into %rax.
    EXPECT_EQ(ci.uops.back().dst, RAX);
}

TEST(Decoder, AllOpcodesCrack)
{
    // Property: every opcode (except NUM_OPCODES) cracks without
    // panicking and yields at least one micro-op.
    for (int op = 0;
         op < static_cast<int>(MacroOpcode::NUM_OPCODES); ++op) {
        MacroInst mi;
        mi.opcode = static_cast<MacroOpcode>(op);
        mi.dst = RAX;
        mi.src = RBX;
        mi.mem = memAt(RCX, 8);
        mi.intrinsic = IntrinsicKind::Malloc;
        CrackedInst ci = Decoder::crack(mi, 0x400000);
        EXPECT_GE(ci.uops.size(), 1u) << opcodeName(mi.opcode);
    }
}

TEST(Program, FetchAndIndex)
{
    Assembler as;
    as.nop();
    as.hlt();
    Program p = as.finalize();
    EXPECT_EQ(p.indexOf(p.codeBase), 0u);
    EXPECT_EQ(p.indexOf(p.codeBase + 4), 1u);
    EXPECT_EQ(p.indexOf(p.codeBase + 2), SIZE_MAX);     // misaligned
    EXPECT_EQ(p.indexOf(p.codeBase + 4000), SIZE_MAX);  // outside
    EXPECT_TRUE(p.inText(p.codeBase));
    EXPECT_FALSE(p.inText(p.codeBase - 4));
}

TEST(Insts, ToStringProducesReadableText)
{
    MacroInst mi;
    mi.opcode = MacroOpcode::MOV_RM;
    mi.dst = RAX;
    mi.mem = memAt(RBX, 16);
    std::string s = mi.toString();
    EXPECT_NE(s.find("%rax"), std::string::npos);
    EXPECT_NE(s.find("%rbx"), std::string::npos);
}

} // namespace
} // namespace chex

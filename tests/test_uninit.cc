/**
 * @file
 * Uninitialized-read detection tests (extension, opt-in): the
 * paper's Section I lists uninitialized reads among the protected
 * classes; this reproduction implements them via per-capability
 * initialization bitmaps in the shadow table, enabled with
 * SystemConfig::detectUninitializedReads.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

namespace chex
{
namespace
{

SystemConfig
uninitConfig(VariantKind kind = VariantKind::MicrocodePrediction)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    cfg.detectUninitializedReads = true;
    return cfg;
}

TEST(UninitRead, ReadBeforeWriteIsFlagged)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrm(RBX, memAt(RAX, 16)); // never written
    as.hlt();

    System sys(uninitConfig());
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::UninitializedRead);
}

TEST(UninitRead, WriteThenReadIsClean)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 16), 7, 8);
    as.movrm(RBX, memAt(RAX, 16));
    as.hlt();

    System sys(uninitConfig());
    sys.load(as.finalize());
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
    EXPECT_EQ(sys.machine().reg(RBX), 7u);
}

TEST(UninitRead, NeighbouringWordStaysUninitialized)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 16), 7, 8);
    as.movrm(RBX, memAt(RAX, 24)); // adjacent, never written
    as.hlt();

    System sys(uninitConfig());
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::UninitializedRead);
}

TEST(UninitRead, CallocIsFullyInitialized)
{
    Assembler as;
    as.movri(RDI, 8);
    as.movri(RSI, 8);
    as.call(IntrinsicKind::Calloc);
    as.movrm(RBX, memAt(RAX, 56)); // last word: zeroed by calloc
    as.hlt();

    System sys(uninitConfig());
    sys.load(as.finalize());
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
}

TEST(UninitRead, PartialWordWriteInitializesTheWord)
{
    // Word-granular approximation (documented): writing any byte of
    // an 8-byte word marks the whole word initialized.
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 16), 7, 1); // one byte
    as.movrm(RBX, memAt(RAX, 16));  // full word read
    as.hlt();

    System sys(uninitConfig());
    sys.load(as.finalize());
    RunResult r = sys.run();
    EXPECT_FALSE(r.violationDetected);
}

TEST(UninitRead, MultiWordReadRequiresAllWords)
{
    CapabilityTable t;
    t.setTrackInitialization(true);
    Violation v;
    Pid pid = t.beginGeneration(64, &v);
    t.endGeneration(pid, 0x5000);
    t.markInitialized(pid, 0x5000, 8);
    EXPECT_TRUE(t.isInitialized(pid, 0x5000, 8));
    EXPECT_FALSE(t.isInitialized(pid, 0x5000, 16));
    t.markInitialized(pid, 0x5008, 8);
    EXPECT_TRUE(t.isInitialized(pid, 0x5000, 16));
}

TEST(UninitRead, DisabledByDefault)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrm(RBX, memAt(RAX, 16));
    as.hlt();

    SystemConfig cfg; // extension off
    System sys(cfg);
    sys.load(as.finalize());
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
}

TEST(UninitRead, WorksUnderHardwareOnly)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrm(RBX, memAt(RAX, 16));
    as.hlt();

    System sys(uninitConfig(VariantKind::HardwareOnly));
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::UninitializedRead);
}

TEST(UninitRead, WorkloadsRunCleanWithDetectionOn)
{
    // The generated workloads write before reading (calloc or
    // store-first access patterns), so full-suite runs stay clean.
    BenchmarkProfile p = profileByName("deepsjeng");
    p.iterations = 300;
    System sys(uninitConfig());
    sys.load(generateWorkload(p, 3));
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited)
        << (r.violations.empty()
                ? "no violation"
                : violationName(r.violations[0].kind));
}

} // namespace
} // namespace chex

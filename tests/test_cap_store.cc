/**
 * @file
 * Store-equivalence suite for the capability table's rebuilt backing
 * stores (paged capability array, pooled interval indices, interval
 * init shadow). RefCapTable below is a faithful reimplementation of
 * the table as it was before the rebuild — std::map<Pid, Capability>
 * plus two std::map<uint64_t, Pid> indices plus per-PID word
 * bitmaps — and the randomized run drives both through the same
 * hundreds of thousands of operations, asserting identical return
 * values at every step and byte-identical chex-snapshot-v1 documents
 * at checkpoints, including a save/restore of the real table
 * mid-stream. Also pins clear()/restoreState() consistency of
 * nextPid/liveCount across clear-then-reuse, and restores an
 * old-format fixture document.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/random.hh"
#include "cap/cap_table.hh"

namespace chex
{
namespace
{

/**
 * The capability table exactly as the std::map-backed implementation
 * behaved. Kept deliberately dumb and literal — this is the oracle.
 */
class RefCapTable
{
  public:
    Pid
    beginGeneration(uint64_t request_size, Violation *violation)
    {
        if (violation)
            *violation = Violation::None;
        if (request_size > maxAllocSize) {
            if (violation)
                *violation = Violation::OversizeAlloc;
            return NoPid;
        }
        Pid pid = nextPid++;
        Capability cap;
        cap.bounds = static_cast<uint32_t>(request_size);
        cap.perms = CapBusy | CapRead | CapWrite | CapHeap;
        caps[pid] = cap;
        return pid;
    }

    void
    endGeneration(Pid pid, uint64_t base)
    {
        auto it = caps.find(pid);
        if (it == caps.end())
            return;
        it->second.base = base;
        it->second.perms &= ~CapBusy;
        if (base != 0) {
            it->second.perms |= CapValid;
            liveByBase[base] = pid;
            ++liveCount;
        }
    }

    Violation
    beginFree(Pid pid, uint64_t addr)
    {
        if (pid == NoPid || pid == WildPid)
            return Violation::InvalidFree;
        auto it = caps.find(pid);
        if (it == caps.end())
            return Violation::InvalidFree;
        if (!(it->second.perms & CapHeap))
            return Violation::InvalidFree;
        if (!it->second.valid())
            return Violation::DoubleFree;
        if (addr != it->second.base)
            return Violation::InvalidFree;
        it->second.perms |= CapBusy;
        return Violation::None;
    }

    void
    endFree(Pid pid)
    {
        auto it = caps.find(pid);
        if (it == caps.end())
            return;
        bool was_valid = it->second.valid();
        it->second.perms &= ~(CapValid | CapBusy);
        if (was_valid) {
            liveByBase.erase(it->second.base);
            freedByBase[it->second.base] = pid;
            --liveCount;
        }
    }

    Pid
    addGlobal(uint64_t base, uint64_t size)
    {
        Pid pid = nextPid++;
        Capability cap;
        cap.base = base;
        cap.bounds = static_cast<uint32_t>(size);
        cap.perms = CapValid | CapRead | CapWrite;
        caps[pid] = cap;
        liveByBase[base] = pid;
        ++liveCount;
        return pid;
    }

    Violation
    check(Pid pid, uint64_t addr, uint64_t size, bool is_write) const
    {
        if (pid == NoPid)
            return Violation::None;
        if (pid == WildPid)
            return Violation::WildPointer;
        auto it = caps.find(pid);
        if (it == caps.end())
            return Violation::WildPointer;
        const Capability &cap = it->second;
        if (!cap.valid())
            return Violation::UseAfterFree;
        if (!cap.contains(addr, size))
            return Violation::OutOfBounds;
        if (is_write && !cap.writable())
            return Violation::PermissionDenied;
        if (!is_write && !cap.readable())
            return Violation::PermissionDenied;
        return Violation::None;
    }

    Pid
    pidForAddress(uint64_t addr) const
    {
        if (Pid pid = searchByBase(liveByBase, addr))
            return pid;
        return searchByBase(freedByBase, addr);
    }

    void
    markInitialized(Pid pid, uint64_t addr, uint64_t size)
    {
        if (!trackInit || pid == NoPid || pid == WildPid)
            return;
        auto it = caps.find(pid);
        if (it == caps.end() || !it->second.valid())
            return;
        const Capability &cap = it->second;
        if (addr < cap.base || addr >= cap.base + cap.bounds)
            return;
        uint64_t first_word = (addr - cap.base) / 8;
        uint64_t last_word =
            (addr + std::max<uint64_t>(size, 1) - 1 - cap.base) / 8;
        std::vector<uint64_t> &bits = initBits[pid];
        uint64_t need = (cap.bounds + 63) / 64 + 1;
        if (bits.size() < need)
            bits.resize(need, 0);
        for (uint64_t w = first_word; w <= last_word; ++w)
            bits[w / 64] |= 1ull << (w % 64);
    }

    void
    markAllInitialized(Pid pid)
    {
        if (!trackInit)
            return;
        auto it = caps.find(pid);
        if (it == caps.end())
            return;
        uint64_t need = (it->second.bounds + 63) / 64 + 1;
        initBits[pid].assign(need, ~0ull);
    }

    bool
    isInitialized(Pid pid, uint64_t addr, uint64_t size) const
    {
        auto it = caps.find(pid);
        if (it == caps.end())
            return true;
        auto bit = initBits.find(pid);
        if (bit == initBits.end())
            return false;
        const std::vector<uint64_t> &bits = bit->second;
        const Capability &cap = it->second;
        uint64_t first_word = (addr - cap.base) / 8;
        uint64_t last_word =
            (addr + std::max<uint64_t>(size, 1) - 1 - cap.base) / 8;
        if (first_word > last_word || last_word >= bits.size() * 64)
            return false;
        for (uint64_t w = first_word; w <= last_word; ++w)
            if (!(bits[w / 64] & (1ull << (w % 64))))
                return false;
        return true;
    }

    uint64_t totalCapabilities() const { return caps.size(); }
    uint64_t liveCapabilities() const { return liveCount; }

    json::Value
    saveState() const
    {
        json::Value jcaps = json::Value::array();
        for (const auto &[pid, cap] : caps) {
            jcaps.push(json::Value::object()
                           .set("pid", pid)
                           .set("base", cap.base)
                           .set("bounds", cap.bounds)
                           .set("perms", cap.perms));
        }
        auto index_json = [](const std::map<uint64_t, Pid> &index) {
            json::Value out = json::Value::array();
            for (const auto &[base, pid] : index) {
                json::Value pair = json::Value::array();
                pair.push(base);
                pair.push(pid);
                out.push(std::move(pair));
            }
            return out;
        };
        json::Value jinit = json::Value::array();
        for (const auto &[pid, bits] : initBits) {
            json::Value jwords = json::Value::array();
            for (uint64_t w : bits)
                jwords.push(w);
            jinit.push(json::Value::object()
                           .set("pid", pid)
                           .set("words", std::move(jwords)));
        }
        return json::Value::object()
            .set("caps", std::move(jcaps))
            .set("liveByBase", index_json(liveByBase))
            .set("freedByBase", index_json(freedByBase))
            .set("initBits", std::move(jinit))
            .set("nextPid", nextPid)
            .set("liveCount", liveCount);
    }

    bool trackInit = false;

  private:
    Pid
    searchByBase(const std::map<uint64_t, Pid> &index,
                 uint64_t addr) const
    {
        auto it = index.upper_bound(addr);
        if (it == index.begin())
            return NoPid;
        --it;
        auto cit = caps.find(it->second);
        if (cit == caps.end())
            return NoPid;
        const Capability &cap = cit->second;
        if (addr >= cap.base && addr < cap.base + cap.bounds)
            return it->second;
        return NoPid;
    }

    std::map<Pid, Capability> caps;
    std::map<uint64_t, Pid> liveByBase;
    std::map<uint64_t, Pid> freedByBase;
    std::map<Pid, std::vector<uint64_t>> initBits;
    Pid nextPid = 1;
    uint64_t liveCount = 0;
    uint64_t maxAllocSize = 1ull << 30;
};

struct Block
{
    Pid pid;
    uint64_t base;
    uint64_t size;
};

/**
 * Drive the real table and the oracle through the same randomized op
 * stream; every return value must match and the snapshot documents
 * must be byte-identical at checkpoints. At the midpoint the real
 * table is torn down and rebuilt from its own snapshot (through a
 * dump/parse round trip), then the stream continues — a restored
 * table must be indistinguishable from one that lived the history.
 */
TEST(CapStoreEquivalence, RandomizedVsMapReference)
{
    constexpr int Ops = 250000;
    constexpr int SnapshotEvery = 32768;
    constexpr int RestoreAt = Ops / 2;

    Random rng(0x5EED);
    CapabilityTable real;
    RefCapTable ref;
    real.setTrackInitialization(true);
    ref.trackInit = true;

    std::vector<Block> live;
    std::vector<Block> freed;
    uint64_t bump = 0x1000;

    auto some_block = [&](const std::vector<Block> &v) -> Block {
        return v[rng.uniform(0, v.size() - 1)];
    };
    auto probe_addr = [&](const Block &b) -> uint64_t {
        // On-base, interior, one-past-end, or just-below probes.
        switch (rng.uniform(0, 3)) {
          case 0: return b.base;
          case 1: return b.base + rng.uniform(0, b.size);
          case 2: return b.base + b.size;
          default: return b.base ? b.base - 1 : 0;
        }
    };

    for (int op = 0; op < Ops; ++op) {
        switch (rng.uniform(0, 12)) {
          case 0: case 1: case 2: { // allocate
            uint64_t size = rng.skewedSize(1, 4096);
            uint64_t base;
            if (!freed.empty() && rng.chance(0.3)) {
                base = some_block(freed).base; // same-base collision
            } else {
                base = bump;
                bump += (size + 15) & ~uint64_t(15);
            }
            if (rng.chance(0.02))
                base = 0; // failed allocation
            Violation vr, vf;
            Pid pr = real.beginGeneration(size, &vr);
            Pid pf = ref.beginGeneration(size, &vf);
            ASSERT_EQ(pr, pf) << "op " << op;
            ASSERT_EQ(vr, vf);
            real.endGeneration(pr, base);
            ref.endGeneration(pf, base);
            if (base != 0)
                live.push_back({pr, base, size});
            break;
          }
          case 3: case 4: { // free (mostly valid, sometimes not)
            if (live.empty())
                break;
            size_t idx = rng.uniform(0, live.size() - 1);
            Block b = live[idx];
            uint64_t addr = b.base;
            if (rng.chance(0.05))
                addr += 1 + rng.uniform(0, 7); // interior pointer
            Violation vr = real.beginFree(b.pid, addr);
            Violation vf = ref.beginFree(b.pid, addr);
            ASSERT_EQ(vr, vf) << "op " << op;
            if (vr == Violation::None) {
                real.endFree(b.pid);
                ref.endFree(b.pid);
                live[idx] = live.back();
                live.pop_back();
                freed.push_back(b);
                if (freed.size() > 512) {
                    freed[rng.uniform(0, freed.size() - 1)] =
                        freed.back();
                    freed.pop_back();
                }
            }
            break;
          }
          case 5: { // bogus frees: double, unknown, wild
            Pid pid = NoPid;
            uint64_t addr = 0;
            switch (rng.uniform(0, 2)) {
              case 0:
                if (freed.empty())
                    break;
                pid = some_block(freed).pid; // double free
                addr = some_block(freed).base;
                break;
              case 1:
                pid = static_cast<Pid>(rng.uniform(1, 1 << 20));
                break;
              default:
                pid = rng.chance(0.5) ? WildPid : NoPid;
                break;
            }
            ASSERT_EQ(real.beginFree(pid, addr),
                      ref.beginFree(pid, addr))
                << "op " << op;
            break;
          }
          case 6: case 7: { // check
            Pid pid;
            uint64_t addr, size = 1ull << rng.uniform(0, 4);
            if (!live.empty() && rng.chance(0.7)) {
                Block b = some_block(live);
                pid = b.pid;
                addr = probe_addr(b);
            } else if (!freed.empty() && rng.chance(0.5)) {
                Block b = some_block(freed);
                pid = b.pid;
                addr = b.base;
            } else {
                pid = static_cast<Pid>(rng.uniform(0, 1 << 20));
                addr = rng.uniform(0, bump);
            }
            bool is_write = rng.chance(0.5);
            ASSERT_EQ(real.check(pid, addr, size, is_write).violation,
                      ref.check(pid, addr, size, is_write))
                << "op " << op;
            break;
          }
          case 8: { // exhaustive search
            uint64_t addr;
            if (!live.empty() && rng.chance(0.45))
                addr = probe_addr(some_block(live));
            else if (!freed.empty() && rng.chance(0.5))
                addr = probe_addr(some_block(freed));
            else
                addr = rng.uniform(0, bump + 64);
            ASSERT_EQ(real.pidForAddress(addr),
                      ref.pidForAddress(addr))
                << "op " << op << " addr " << addr;
            break;
          }
          case 9: { // init-shadow writes
            if (live.empty())
                break;
            Block b = some_block(live);
            if (rng.chance(0.15)) {
                real.markAllInitialized(b.pid);
                ref.markAllInitialized(b.pid);
            } else {
                uint64_t addr = b.base + rng.uniform(0, b.size);
                uint64_t size = 1ull << rng.uniform(0, 4);
                real.markInitialized(b.pid, addr, size);
                ref.markInitialized(b.pid, addr, size);
            }
            break;
          }
          case 10: case 11: { // init-shadow reads
            if (live.empty())
                break;
            Block b = some_block(live);
            uint64_t addr = probe_addr(b);
            uint64_t size = 1ull << rng.uniform(0, 4);
            ASSERT_EQ(real.isInitialized(b.pid, addr, size),
                      ref.isInitialized(b.pid, addr, size))
                << "op " << op;
            break;
          }
          default: { // occasional global registration
            if (rng.chance(0.05)) {
                uint64_t size = rng.uniform(8, 4096);
                uint64_t base = bump;
                bump += (size + 15) & ~uint64_t(15);
                Pid pr = real.addGlobal("g", base, size);
                Pid pf = ref.addGlobal(base, size);
                ASSERT_EQ(pr, pf);
                live.push_back({pr, base, size});
            }
            break;
          }
        }

        ASSERT_EQ(real.totalCapabilities(), ref.totalCapabilities());
        ASSERT_EQ(real.liveCapabilities(), ref.liveCapabilities());

        if ((op % SnapshotEvery) == 0 || op + 1 == Ops) {
            ASSERT_EQ(real.saveState().dump(2),
                      ref.saveState().dump(2))
                << "snapshot diverged at op " << op;
        }

        if (op == RestoreAt) {
            // Round-trip the real table through its own serialized
            // document mid-stream and keep going.
            std::string blob = real.saveState().dump(2);
            json::Value parsed;
            std::string err;
            ASSERT_TRUE(json::Value::parse(blob, parsed, &err)) << err;
            real.clear();
            ASSERT_TRUE(real.restoreState(parsed));
            ASSERT_EQ(real.saveState().dump(2), blob);
        }
    }
}

/**
 * An old-format fixture — written against the std::map-backed
 * serialization by hand — must restore into the rebuilt table and
 * answer exactly as the old implementation did, including continuing
 * the PID sequence. Guards the chex-snapshot-v1 compatibility
 * promise from the store side.
 */
TEST(CapStoreEquivalence, RestoresOldFormatFixture)
{
    // pid 1: live [0x1000, 0x1040); pid 2: freed [0x2000, 0x2020);
    // pid 1 has its first 8 words marked initialized.
    const char *fixture = R"({
      "caps": [
        {"pid": 1, "base": 4096, "bounds": 64, "perms": 51},
        {"pid": 2, "base": 8192, "bounds": 32, "perms": 35}
      ],
      "liveByBase": [[4096, 1]],
      "freedByBase": [[8192, 2]],
      "initBits": [{"pid": 1, "words": [255, 0]}],
      "nextPid": 3,
      "liveCount": 1
    })";

    json::Value parsed;
    std::string err;
    ASSERT_TRUE(json::Value::parse(fixture, parsed, &err)) << err;

    CapabilityTable t;
    t.setTrackInitialization(true);
    ASSERT_TRUE(t.restoreState(parsed));

    EXPECT_EQ(t.totalCapabilities(), 2u);
    EXPECT_EQ(t.liveCapabilities(), 1u);
    EXPECT_TRUE(t.check(1, 4096, 8, true).ok());
    EXPECT_EQ(t.check(2, 8192, 8, false).violation,
              Violation::UseAfterFree);
    EXPECT_EQ(t.pidForAddress(4096 + 10), 1u);
    EXPECT_EQ(t.pidForAddress(8192 + 10), 2u);
    EXPECT_EQ(t.pidForAddress(4096 + 64), NoPid);
    // Words 0..7 initialized, word 8 not.
    EXPECT_TRUE(t.isInitialized(1, 4096, 64));
    EXPECT_FALSE(t.isInitialized(1, 4096 + 64, 8));

    // The PID sequence continues from the restored nextPid.
    Violation v;
    EXPECT_EQ(t.beginGeneration(16, &v), 3u);

    // And the re-serialized document is identical modulo the new
    // capability just created.
    t.endGeneration(3, 0); // failed alloc: caps entry, no index entry
    json::Value out = t.saveState();
    EXPECT_EQ(json::getUint(out, "nextPid", 0), 4u);
    EXPECT_EQ(json::getUint(out, "liveCount", 99), 1u);
}

/** Satellite: clear-then-reuse must fully reset the PID allocator
 * and live count, and a snapshot taken after reuse must restore. */
TEST(CapStoreEquivalence, ClearThenReuseResetsAllocatorState)
{
    CapabilityTable t;
    Violation v;
    for (int i = 0; i < 100; ++i) {
        Pid pid = t.beginGeneration(64, &v);
        t.endGeneration(pid, 0x1000 + i * 0x100);
    }
    EXPECT_EQ(t.totalCapabilities(), 100u);
    EXPECT_EQ(t.liveCapabilities(), 100u);

    t.clear();
    EXPECT_EQ(t.totalCapabilities(), 0u);
    EXPECT_EQ(t.liveCapabilities(), 0u);
    EXPECT_EQ(t.pidForAddress(0x1000), NoPid);
    EXPECT_EQ(t.storageBytes(), 0u);

    // PID numbering restarts at 1 and the table is fully usable.
    Pid pid = t.beginGeneration(32, &v);
    EXPECT_EQ(pid, 1u);
    t.endGeneration(pid, 0x5000);
    EXPECT_EQ(t.liveCapabilities(), 1u);
    EXPECT_EQ(t.pidForAddress(0x5000), 1u);

    // Snapshot after clear-then-reuse round-trips with the same
    // nextPid/liveCount.
    json::Value snap = t.saveState();
    CapabilityTable u;
    ASSERT_TRUE(u.restoreState(snap));
    EXPECT_EQ(u.saveState().dump(2), snap.dump(2));
    EXPECT_EQ(u.beginGeneration(8, &v), 2u);
    EXPECT_EQ(u.liveCapabilities(), 1u);

    // restoreState clears pre-existing contents before loading.
    CapabilityTable w;
    for (int i = 0; i < 50; ++i) {
        Pid p = w.beginGeneration(16, &v);
        w.endGeneration(p, 0x9000 + i * 0x40);
    }
    ASSERT_TRUE(w.restoreState(snap));
    EXPECT_EQ(w.totalCapabilities(), 1u);
    EXPECT_EQ(w.liveCapabilities(), 1u);
    EXPECT_EQ(w.pidForAddress(0x9000), NoPid);
}

} // anonymous namespace
} // namespace chex

/**
 * @file
 * RangeSet correctness: directed edge cases for the canonical-form
 * invariants, then a randomized equivalence run against a per-point
 * reference model (a plain std::set of member points) over a small
 * universe — every add/subtract interleaving must answer
 * overlaps/covers/contains/totalLength exactly like per-point
 * bookkeeping, and the flat representation must stay canonical
 * (sorted, disjoint, non-adjacent, non-empty) after every mutation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "base/random.hh"
#include "base/range_set.hh"

namespace chex
{
namespace
{

void
expectCanonical(const RangeSet &s)
{
    const auto &v = s.items();
    for (size_t i = 0; i < v.size(); ++i) {
        ASSERT_LT(v[i].first, v[i].second) << "empty range held";
        if (i) {
            // Strictly after the previous range, with a gap (touching
            // ranges must have been coalesced).
            ASSERT_GT(v[i].first, v[i - 1].second)
                << "ranges overlap or touch";
        }
    }
}

TEST(RangeSet, AddMergesOverlappingAndAdjacent)
{
    RangeSet s;
    s.add(10, 20);
    s.add(30, 40);
    EXPECT_EQ(s.size(), 2u);

    // Adjacent on the left edge: [20,30) bridges both.
    s.add(20, 30);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.covers(10, 40));
    EXPECT_FALSE(s.contains(9));
    EXPECT_FALSE(s.contains(40));
    expectCanonical(s);

    // Contained add is a no-op.
    s.add(15, 25);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.totalLength(), 30u);

    // Empty adds are ignored.
    s.add(50, 50);
    s.add(60, 55);
    EXPECT_EQ(s.size(), 1u);
}

TEST(RangeSet, SubtractSplitsStraddlingRange)
{
    RangeSet s;
    s.add(0, 100);
    s.subtract(40, 60);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.covers(0, 40));
    EXPECT_TRUE(s.covers(60, 100));
    EXPECT_FALSE(s.overlaps(40, 60));
    EXPECT_FALSE(s.covers(30, 70));
    expectCanonical(s);

    // Subtract across both pieces and beyond.
    s.subtract(20, 80);
    EXPECT_TRUE(s.covers(0, 20));
    EXPECT_TRUE(s.covers(80, 100));
    EXPECT_EQ(s.totalLength(), 40u);

    // Subtracting everything empties the set.
    s.subtract(0, 200);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.totalLength(), 0u);
}

TEST(RangeSet, QueriesOnEmptySet)
{
    RangeSet s;
    EXPECT_FALSE(s.overlaps(0, 100));
    EXPECT_FALSE(s.covers(0, 1));
    EXPECT_FALSE(s.contains(0));
    s.subtract(10, 20); // no-op, no crash
    EXPECT_TRUE(s.empty());
}

TEST(RangeSet, CoversIsExactOnBoundaries)
{
    RangeSet s;
    s.add(8, 16);
    EXPECT_TRUE(s.covers(8, 16));
    EXPECT_FALSE(s.covers(7, 16));
    EXPECT_FALSE(s.covers(8, 17));
    EXPECT_TRUE(s.covers(15, 16));
    EXPECT_FALSE(s.covers(16, 17));
    // covers of an empty query range is vacuous but overlaps is not:
    // keep the documented behaviour stable.
    EXPECT_FALSE(s.overlaps(16, 16));
}

TEST(RangeSet, NearUint64Max)
{
    // The allocator poisons real address ranges; the top of the
    // address space must not overflow the binary search.
    RangeSet s;
    const uint64_t top = ~0ull;
    s.add(top - 16, top);
    EXPECT_TRUE(s.contains(top - 1));
    EXPECT_FALSE(s.contains(top - 17));
    s.subtract(top - 8, top);
    EXPECT_TRUE(s.covers(top - 16, top - 8));
    EXPECT_FALSE(s.overlaps(top - 8, top));
    expectCanonical(s);
}

/**
 * Randomized equivalence vs a per-point std::set over [0, Universe).
 * This is the same merge semantics the heap allocator's poison map
 * relied on (std::map-based before, RangeSet now): any interleaving
 * of poison (add) / unpoison (subtract) must answer point and range
 * queries identically.
 */
TEST(RangeSet, RandomizedEquivalenceVsPointSet)
{
    constexpr uint64_t Universe = 1500;
    constexpr int Ops = 20000;

    Random rng(0xC0FFEE);
    RangeSet s;
    std::set<uint64_t> model;

    for (int op = 0; op < Ops; ++op) {
        uint64_t a = rng.uniform(0, Universe - 1);
        uint64_t len = rng.uniform(0, 64);
        uint64_t b = std::min(Universe, a + len);
        switch (rng.uniform(0, 3)) {
          case 0:
            s.add(a, b);
            for (uint64_t p = a; p < b; ++p)
                model.insert(p);
            break;
          case 1:
            s.subtract(a, b);
            for (uint64_t p = a; p < b; ++p)
                model.erase(p);
            break;
          case 2: {
            // covers() of an empty query is vacuously true,
            // overlaps() vacuously false.
            bool any = false, all = true;
            for (uint64_t p = a; p < b; ++p) {
                if (model.count(p))
                    any = true;
                else
                    all = false;
            }
            ASSERT_EQ(s.overlaps(a, b), any)
                << "overlaps(" << a << "," << b << ") at op " << op;
            ASSERT_EQ(s.covers(a, b), all)
                << "covers(" << a << "," << b << ") at op " << op;
            break;
          }
          default:
            ASSERT_EQ(s.contains(a), model.count(a) != 0)
                << "contains(" << a << ") at op " << op;
            break;
        }
        if ((op & 255) == 0) {
            expectCanonical(s);
            ASSERT_EQ(s.totalLength(), model.size());
        }
    }
    expectCanonical(s);
    ASSERT_EQ(s.totalLength(), model.size());
}

} // anonymous namespace
} // namespace chex

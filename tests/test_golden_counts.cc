/**
 * @file
 * Golden retired-work counts for every enforcement variant on the
 * pinned throughput workload (xalancbmk profile, scale 1, seed 1 —
 * the same cell BENCH_throughput.json tracks). The hot-path
 * optimizations (flat shadow-structure lookups, integer stat
 * counters, translation/walk memos) are host-side only: simulated
 * macro-ops, µops, and cycles must not move by even one. Any drift
 * here means an "optimization" changed simulated semantics, which is
 * a correctness bug regardless of how much wall clock it saves.
 *
 * If a deliberate model change shifts these numbers, re-derive the
 * goldens with `micro_throughput` (scale 1) and update both this
 * table and the committed BENCH_throughput.json in the same commit.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/system.hh"
#include "ucode/variant.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace
{

struct GoldenRow
{
    VariantKind kind;
    uint64_t macroOps;
    uint64_t uops;
    uint64_t cycles;
};

// From micro_throughput at scale 1, seed 1 (xalancbmk profile).
constexpr GoldenRow kGoldens[] = {
    {VariantKind::Baseline, 478975, 743341, 340500},
    {VariantKind::HardwareOnly, 478975, 753241, 449997},
    {VariantKind::BinaryTranslation, 673430, 1142151, 503308},
    {VariantKind::MicrocodeAlwaysOn, 478975, 963696, 459719},
    {VariantKind::MicrocodePrediction, 478975, 911791, 443655},
    {VariantKind::Asan, 1256795, 1885630, 843086},
};

TEST(GoldenCounts, ThroughputWorkloadRetiresExactCounts)
{
    // Deliberately NOT scaled by CHEX_BENCH_SCALE: the goldens are
    // only valid for the exact scale-1 workload.
    BenchmarkProfile profile = profileByName("xalancbmk");
    for (const GoldenRow &g : kGoldens) {
        SystemConfig cfg;
        cfg.variant.kind = g.kind;
        System sys(cfg);
        sys.load(generateWorkload(profile, 1));
        RunResult r = sys.run();
        ASSERT_TRUE(r.exited) << variantName(g.kind);
        EXPECT_EQ(r.macroOps, g.macroOps) << variantName(g.kind);
        EXPECT_EQ(r.uops, g.uops) << variantName(g.kind);
        EXPECT_EQ(r.cycles, g.cycles) << variantName(g.kind);
    }
}

} // namespace
} // namespace chex

/**
 * @file
 * Multithreaded coherence tests (Sections IV-C, V-C): capability
 * frees broadcast exactly one invalidation per remote core; alias
 * stores keep remote alias caches coherent; coherence misses are
 * attributed correctly.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "sim/coherence.hh"

namespace chex
{
namespace
{

TEST(Coherence, FreeBroadcastsOncePerRemoteCore)
{
    CoherenceFabric fabric(4);
    fabric.capLookup(0, 7); // core 0 caches PID 7
    fabric.capLookup(1, 7);
    fabric.onFree(2, 7);
    // 3 remote invalidations for a 4-core system.
    EXPECT_EQ(fabric.capInvalidationsSent(), 3u);
    // Both caching cores must re-fill (stale valid bit purged).
    EXPECT_FALSE(fabric.capLookup(0, 7));
    EXPECT_FALSE(fabric.capLookup(1, 7));
    EXPECT_EQ(fabric.capCoherenceMisses(), 2u);
}

TEST(Coherence, UnforgeabilityMeansOneInvalidationPerFree)
{
    CoherenceFabric fabric(2);
    fabric.onFree(0, 5);
    fabric.onFree(0, 6);
    EXPECT_EQ(fabric.capInvalidationsSent(), 2u); // one per free
}

TEST(Coherence, AliasStoreInvalidatesRemoteCopies)
{
    CoherenceFabric fabric(2);
    fabric.aliasLookup(1, 0x7000); // core 1 caches the line
    EXPECT_TRUE(fabric.aliasLookup(1, 0x7000));
    fabric.aliasStore(0, 0x7000);  // core 0 rewrites the alias
    EXPECT_EQ(fabric.aliasInvalidationsSent(), 1u);
    EXPECT_FALSE(fabric.aliasLookup(1, 0x7000)); // coherence miss
    EXPECT_EQ(fabric.aliasCoherenceMisses(), 1u);
}

TEST(Coherence, LocalCoreKeepsItsOwnAliasLine)
{
    CoherenceFabric fabric(2);
    fabric.aliasStore(0, 0x7000);
    EXPECT_TRUE(fabric.aliasLookup(0, 0x7000));
}

TEST(Coherence, MissesWithoutInvalidationAreNotCoherenceMisses)
{
    CoherenceFabric fabric(2);
    EXPECT_FALSE(fabric.capLookup(0, 42)); // cold miss
    EXPECT_EQ(fabric.capCoherenceMisses(), 0u);
    EXPECT_FALSE(fabric.aliasLookup(0, 0x9000));
    EXPECT_EQ(fabric.aliasCoherenceMisses(), 0u);
}

TEST(Coherence, SharedWorkingSetStress)
{
    // Four cores ping-pong a shared pool of pointers: frees and
    // alias rewrites interleave with lookups. Invariants: traffic
    // counts are exact multiples of (cores-1), and coherence misses
    // never exceed invalidations sent.
    constexpr unsigned Cores = 4;
    CoherenceFabric fabric(Cores);
    Random rng(99);
    uint64_t frees = 0, stores = 0;
    for (int step = 0; step < 20000; ++step) {
        unsigned core = static_cast<unsigned>(rng.uniform(0, Cores - 1));
        Pid pid = static_cast<Pid>(rng.uniform(1, 48));
        uint64_t addr = 0x10000 + rng.uniform(0, 256) * 8;
        switch (rng.uniform(0, 9)) {
          case 0:
            fabric.onFree(core, pid);
            ++frees;
            break;
          case 1:
          case 2:
            fabric.aliasStore(core, addr);
            ++stores;
            break;
          default:
            fabric.capLookup(core, pid);
            fabric.aliasLookup(core, addr);
            break;
        }
    }
    EXPECT_EQ(fabric.capInvalidationsSent(), frees * (Cores - 1));
    EXPECT_EQ(fabric.aliasInvalidationsSent(), stores * (Cores - 1));
    EXPECT_LE(fabric.capCoherenceMisses(),
              fabric.capInvalidationsSent());
    EXPECT_LE(fabric.aliasCoherenceMisses(),
              fabric.aliasInvalidationsSent());
    EXPECT_GT(fabric.capCoherenceMisses(), 0u);
    EXPECT_GT(fabric.aliasCoherenceMisses(), 0u);
    // Coherence misses stay a bounded fraction of all lookups (this
    // stress shares aggressively; real sharing is far sparser).
    EXPECT_LT(fabric.capCoherenceMissFraction(), 0.5);
}

} // namespace
} // namespace chex

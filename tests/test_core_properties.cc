/**
 * @file
 * Randomized timing-model property tests: drive the out-of-order
 * core with random micro-op streams and assert causality and
 * resource invariants that must hold for any schedule —
 * dependences respected, commit frontier monotone, throughput
 * bounded by machine width, and squash accounting consistent.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "mem/hierarchy.hh"

namespace chex
{
namespace
{

class CorePropertyTest : public ::testing::TestWithParam<uint64_t>
{
  protected:
    CorePropertyTest() : core(CoreConfig{}, hier) {}

    MemoryHierarchy hier;
    Core core;
};

TEST_P(CorePropertyTest, DependencesAndMonotonicityHold)
{
    Random rng(GetParam());
    uint64_t reg_ready[NumArchRegs] = {};
    uint64_t last_cycles = 0;
    uint64_t pc = 0x400000;

    for (int m = 0; m < 400; ++m) {
        core.beginMacro(pc, DecodePath::Simple, MacroBranchInfo{});
        unsigned uops = 1 + static_cast<unsigned>(rng.uniform(0, 2));
        for (unsigned i = 0; i < uops; ++i) {
            StaticUop u;
            switch (rng.uniform(0, 3)) {
              case 0:
                u.type = UopType::IntAlu;
                u.op = AluOp::Add;
                break;
              case 1:
                u.type = UopType::Load;
                u.hasMem = true;
                break;
              case 2:
                u.type = UopType::Store;
                u.hasMem = true;
                break;
              default:
                u.type = UopType::IntMult;
                u.op = AluOp::Mul;
                break;
            }
            u.dst = static_cast<RegId>(rng.uniform(0, 11));
            u.src1 = static_cast<RegId>(rng.uniform(0, 11));
            u.src2 = static_cast<RegId>(rng.uniform(0, 11));
            if (u.isStore())
                u.dst = REG_NONE;
            if (u.hasMem)
                u.mem = memAt(u.src1, 0);

            UopTimingIn in;
            in.uop = &u;
            in.effAddr = 0x10000 + rng.uniform(0, 64) * 64;
            uint64_t complete = core.addUop(in);

            // Causality: the result cannot be ready before any
            // register source it consumed.
            EXPECT_GE(complete, reg_ready[u.src1]);
            if (!u.useImm && u.src2 != REG_NONE) {
                EXPECT_GE(complete, reg_ready[u.src2]);
            }
            if (u.dst != REG_NONE)
                reg_ready[u.dst] = complete;

            // The commit frontier never moves backwards.
            EXPECT_GE(core.cycles(), last_cycles);
            last_cycles = core.cycles();
        }
        core.endMacro(false, 0);
        pc += InstSlotBytes;
    }

    // Throughput bound: cannot exceed issue width.
    EXPECT_GE(core.cycles() * core.config().issueWidth, core.uops());
    // No branches were resolved: no squash cycles charged.
    EXPECT_EQ(core.squashCyclesBranch(), 0u);
}

TEST_P(CorePropertyTest, SquashAccountingIsConsistent)
{
    Random rng(GetParam() ^ 0xabcdef);
    StaticUop br;
    br.type = UopType::Branch;
    br.cc = CondCode::NE;
    br.src1 = FLAGS;

    uint64_t mispredicts_possible = 0;
    for (int m = 0; m < 300; ++m) {
        MacroBranchInfo bi;
        bi.isBranch = true;
        bi.isConditional = true;
        bi.fallthrough = 0x400004;
        core.beginMacro(0x400000 + (m % 7) * 4, DecodePath::Simple,
                        bi);
        UopTimingIn in;
        in.uop = &br;
        core.addUop(in);
        core.endMacro(rng.chance(0.5), 0x401000);
        ++mispredicts_possible;
    }
    EXPECT_LE(core.branchMispredicts(), mispredicts_possible);
    // Each mispredict charges at most resolve-to-refetch; the total
    // must stay bounded by mispredicts x (penalty + window).
    EXPECT_LE(core.squashCyclesBranch(),
              core.branchMispredicts() *
                  (core.config().redirectPenalty + 600));
    if (core.branchMispredicts() > 0) {
        EXPECT_GT(core.squashCyclesBranch(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorePropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
} // namespace chex

/**
 * @file
 * Stats-dump and Spectre-v1-structural tests.
 *
 * The stats dump exposes a gem5-style tree of the run's counters.
 *
 * The Spectre tests document the property of Section III: CHEx86's
 * capability check is part of the same macro-op as the dereference
 * (injected into its micro-op crack), so a Spectre-v1 gadget cannot
 * bypass it the way it bypasses a software bounds check — the check
 * travels with the access itself.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "isa/assembler.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

namespace chex
{
namespace
{

TEST(StatsDump, ContainsAllSubsystems)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.load(generateSmokeProgram(4, 128));
    sys.run();

    std::ostringstream os;
    sys.dumpStats(os);
    std::string out = os.str();
    for (const char *key :
         {"system.core.cycles", "system.core.ipc",
          "system.capabilities.total", "system.heap.totalAllocs",
          "system.tracker.loads", "system.l1d.hits",
          "system.l2.misses"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(StatsDump, ValuesMatchRunResult)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.load(generateSmokeProgram(4, 128));
    RunResult r = sys.run();

    std::ostringstream os;
    sys.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("system.core.cycles = " +
                       std::to_string(r.cycles)),
              std::string::npos);
    EXPECT_NE(out.find("system.heap.totalAllocs = 4"),
              std::string::npos);
}

/**
 * A Spectre-v1-shaped gadget:
 *   if (idx < 8) y = buf[idx];   // idx attacker-controlled, = 100
 *
 * With a software bounds check, the access executes speculatively
 * under a mispredicted branch. In CHEx86 the capCheck micro-op is
 * injected into the *access's own* macro-op crack, so wherever the
 * access goes, the check goes.
 */
Program
spectreGadget(bool guarded, int64_t idx)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrr(R12, RAX);
    as.movri(RBX, idx);
    auto skip = as.newLabel();
    if (guarded) {
        as.cmpri(RBX, 8);
        as.jcc(CondCode::AE, skip);
    }
    as.movrm(RCX, memAt(R12, 0, RBX, 8)); // buf[idx]
    as.bind(skip);
    as.hlt();
    return as.finalize();
}

TEST(Spectre, InBoundsGuardedAccessIsClean)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.load(spectreGadget(true, 3));
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
}

TEST(Spectre, ArchitecturallyDeadOobAccessDoesNotExecute)
{
    // The guard architecturally kills the access: nothing to flag.
    SystemConfig cfg;
    System sys(cfg);
    sys.load(spectreGadget(true, 100));
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
}

TEST(Spectre, CheckTravelsWithTheAccess)
{
    // Without the guard, the access executes and the injected
    // capCheck — part of the same macro-op — flags it. There is no
    // separate check instruction whose outcome the access could run
    // ahead of (the contrast with Spectre-v1 against software
    // checks, Section III).
    SystemConfig cfg;
    System sys(cfg);
    sys.load(spectreGadget(false, 100));
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::OutOfBounds);
    EXPECT_GE(r.capChecksInjected, 1u);
}

TEST(Spectre, EveryTaggedDerefCarriesItsCheck)
{
    // Structural invariant behind the Spectre-v1 argument: under the
    // prediction-driven variant, checks injected == tagged
    // dereferences seen by the tracker (plus zero-idioms) — no
    // tagged access travels unchecked.
    SystemConfig cfg;
    System sys(cfg);
    sys.load(generateSmokeProgram(6, 128));
    RunResult r = sys.run();
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.capChecksInjected, sys.tracker().taggedDerefs());
}

} // namespace
} // namespace chex

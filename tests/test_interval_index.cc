/**
 * @file
 * Equivalence tests for the pooled-chunk IntervalIndex against the
 * std::map<uint64_t, Pid> it replaced in the capability table. The
 * exhaustive-search semantics (floor = upper_bound-then-decrement,
 * assign overwrites on equal base, exact erase) must match the map
 * bit-for-bit across chunk splits, drain-merges, and clear-reuse —
 * the use-after-free detector resolves freed PIDs through exactly
 * these lookups.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "base/random.hh"
#include "cap/interval_index.hh"

namespace chex
{
namespace
{

/** floor() computed the way cap_table did it on std::map. */
bool
mapFloor(const std::map<uint64_t, Pid> &m, uint64_t addr,
         uint64_t *base, Pid *pid)
{
    auto it = m.upper_bound(addr);
    if (it == m.begin())
        return false;
    --it;
    *base = it->first;
    *pid = it->second;
    return true;
}

void
expectSameForEach(const IntervalIndex &idx,
                  const std::map<uint64_t, Pid> &m)
{
    std::vector<std::pair<uint64_t, Pid>> got;
    idx.forEach([&](uint64_t b, Pid p) { got.push_back({b, p}); });
    ASSERT_EQ(got.size(), m.size());
    size_t i = 0;
    for (const auto &[b, p] : m) {
        ASSERT_EQ(got[i].first, b) << "order diverged at " << i;
        ASSERT_EQ(got[i].second, p);
        ++i;
    }
}

TEST(IntervalIndex, BasicAssignLookupErase)
{
    IntervalIndex idx;
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.lookup(10), nullptr);

    idx.assign(10, 1);
    idx.assign(30, 2);
    idx.assign(20, 3);
    EXPECT_EQ(idx.size(), 3u);
    ASSERT_NE(idx.lookup(20), nullptr);
    EXPECT_EQ(*idx.lookup(20), 3u);

    // Equal base overwrites: a freed block re-allocated at the same
    // address must resolve to the newest PID.
    idx.assign(20, 9);
    EXPECT_EQ(idx.size(), 3u);
    EXPECT_EQ(*idx.lookup(20), 9u);

    EXPECT_TRUE(idx.erase(20));
    EXPECT_FALSE(idx.erase(20));
    EXPECT_EQ(idx.lookup(20), nullptr);
    EXPECT_EQ(idx.size(), 2u);
}

TEST(IntervalIndex, FloorMatchesMapIdiom)
{
    IntervalIndex idx;
    idx.assign(100, 1);
    idx.assign(200, 2);

    uint64_t base;
    Pid pid;
    // Below every entry: no floor.
    EXPECT_FALSE(idx.floor(99, &base, &pid));
    // Exact hit.
    ASSERT_TRUE(idx.floor(100, &base, &pid));
    EXPECT_EQ(base, 100u);
    EXPECT_EQ(pid, 1u);
    // Between entries: the lower one.
    ASSERT_TRUE(idx.floor(199, &base, &pid));
    EXPECT_EQ(base, 100u);
    // Past the top.
    ASSERT_TRUE(idx.floor(~0ull, &base, &pid));
    EXPECT_EQ(base, 200u);
    EXPECT_EQ(pid, 2u);
}

TEST(IntervalIndex, SplitsPreserveOrderAndChunksAreAccounted)
{
    // Enough ascending entries to force several chunk splits.
    IntervalIndex idx;
    std::map<uint64_t, Pid> model;
    for (uint64_t i = 0; i < 1000; ++i) {
        idx.assign(i * 64, static_cast<Pid>(i + 1));
        model[i * 64] = static_cast<Pid>(i + 1);
    }
    EXPECT_EQ(idx.size(), 1000u);
    EXPECT_GT(idx.chunkCount(), 1u);
    EXPECT_EQ(idx.storageBytes(),
              idx.chunkCount() * IntervalIndex::ChunkBytes);
    expectSameForEach(idx, model);

    // Erase back down: chunks drain, merge, and are released.
    for (uint64_t i = 0; i < 1000; ++i)
        EXPECT_TRUE(idx.erase(i * 64));
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.chunkCount(), 0u);
    EXPECT_EQ(idx.storageBytes(), 0u);
}

TEST(IntervalIndex, ClearRetainsPoolAndStaysUsable)
{
    IntervalIndex idx;
    for (uint64_t i = 0; i < 500; ++i)
        idx.assign(i * 8, static_cast<Pid>(i + 1));
    idx.clear();
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.storageBytes(), 0u);

    // Fully usable after clear (pooled chunks recycled).
    idx.assign(42, 7);
    ASSERT_NE(idx.lookup(42), nullptr);
    EXPECT_EQ(*idx.lookup(42), 7u);
    uint64_t base;
    Pid pid;
    ASSERT_TRUE(idx.floor(100, &base, &pid));
    EXPECT_EQ(base, 42u);
}

/**
 * Randomized equivalence vs std::map: every mutation step answers
 * lookup/floor/size identically, and the sorted iteration matches
 * after bursts. Keys are drawn from a smallish space so erases and
 * same-base overwrites actually collide, and insertion order is
 * random so chunks split at interior positions, not just the tail.
 */
TEST(IntervalIndex, RandomizedEquivalenceVsStdMap)
{
    constexpr int Ops = 200000;
    constexpr uint64_t KeySpace = 1 << 14;

    Random rng(0xBADF00D);
    IntervalIndex idx;
    std::map<uint64_t, Pid> model;

    for (int op = 0; op < Ops; ++op) {
        uint64_t key = rng.uniform(0, KeySpace - 1) * 16;
        switch (rng.uniform(0, 9)) {
          case 0: case 1: case 2: case 3: {
            Pid pid = static_cast<Pid>(rng.uniform(1, 1u << 30));
            idx.assign(key, pid);
            model[key] = pid;
            break;
          }
          case 4: case 5: {
            bool had = model.erase(key) != 0;
            ASSERT_EQ(idx.erase(key), had) << "erase at op " << op;
            break;
          }
          case 6: {
            auto it = model.find(key);
            const Pid *got = idx.lookup(key);
            if (it == model.end()) {
                ASSERT_EQ(got, nullptr) << "lookup at op " << op;
            } else {
                ASSERT_NE(got, nullptr) << "lookup at op " << op;
                ASSERT_EQ(*got, it->second);
            }
            break;
          }
          default: {
            uint64_t addr =
                key + rng.uniform(0, 31); // probe off-key too
            uint64_t wb = 0, gb = 0;
            Pid wp = 0, gp = 0;
            bool want = mapFloor(model, addr, &wb, &wp);
            bool got = idx.floor(addr, &gb, &gp);
            ASSERT_EQ(got, want) << "floor at op " << op;
            if (want) {
                ASSERT_EQ(gb, wb) << "floor base at op " << op;
                ASSERT_EQ(gp, wp) << "floor pid at op " << op;
            }
            break;
          }
        }
        ASSERT_EQ(idx.size(), model.size());
        if ((op & 8191) == 0)
            expectSameForEach(idx, model);
    }
    expectSameForEach(idx, model);
}

} // anonymous namespace
} // namespace chex

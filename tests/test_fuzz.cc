/**
 * @file
 * Randomized property tests: sample random-but-valid workload
 * parameterizations and assert cross-cutting invariants — clean
 * runs under full protection, functional equivalence across all
 * capability variants, micro-op monotonicity (prediction-driven
 * never injects more than always-on), determinism, and uniform
 * violation classification for randomized out-of-bounds distances.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "isa/assembler.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

namespace chex
{
namespace
{

BenchmarkProfile
randomProfile(uint64_t seed)
{
    Random rng(seed * 7919 + 13);
    BenchmarkProfile p;
    p.name = "fuzz" + std::to_string(seed);
    p.maxLiveBuffers = rng.uniform(2, 120);
    p.buffersInUse = static_cast<unsigned>(
        rng.uniform(1, p.maxLiveBuffers));
    p.totalAllocations =
        p.maxLiveBuffers + rng.uniform(0, 400);
    p.allocSizeMin = 32ull << rng.uniform(0, 3);
    p.allocSizeMax = p.allocSizeMin << rng.uniform(1, 4);
    p.dominantPattern = static_cast<PatternKind>(rng.uniform(0, 7));
    p.pointerIntensity = rng.uniformReal();
    p.chaseDepth = static_cast<unsigned>(rng.uniform(0, 2));
    p.accessesPerVisit = static_cast<unsigned>(rng.uniform(1, 8));
    p.fpFraction = rng.uniformReal() * 0.7;
    p.branchiness = rng.uniformReal() * 0.5;
    p.iterations = 300 + rng.uniform(0, 500);
    p.scheduleLength = 512;
    return p;
}

RunResult
runUnder(const Program &prog, VariantKind kind)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    System sys(cfg);
    sys.load(prog);
    return sys.run();
}

class FuzzTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzTest, CleanUnderFullProtection)
{
    BenchmarkProfile p = randomProfile(GetParam());
    Program prog = generateWorkload(p, GetParam());
    RunResult r = runUnder(prog, VariantKind::MicrocodePrediction);
    EXPECT_TRUE(r.exited) << p.name;
    EXPECT_FALSE(r.violationDetected)
        << p.name << " flagged "
        << violationName(r.violations.empty() ? Violation::None
                                              : r.violations[0].kind);
}

TEST_P(FuzzTest, FunctionalEquivalenceAcrossCapVariants)
{
    // Protection must never change architectural results: the final
    // accumulator (sunk through print_val into %rax) and the heap
    // allocation totals must match the insecure baseline for every
    // capability variant. (ASan is excluded: its allocator changes
    // block placement and reuse order by design.)
    BenchmarkProfile p = randomProfile(GetParam());
    Program prog = generateWorkload(p, GetParam());

    SystemConfig base_cfg;
    base_cfg.variant.kind = VariantKind::Baseline;
    System base_sys(base_cfg);
    base_sys.load(prog);
    RunResult base = base_sys.run();
    ASSERT_TRUE(base.exited);
    uint64_t base_acc = base_sys.machine().reg(RAX);

    for (VariantKind kind :
         {VariantKind::HardwareOnly, VariantKind::BinaryTranslation,
          VariantKind::MicrocodeAlwaysOn,
          VariantKind::MicrocodePrediction}) {
        SystemConfig cfg;
        cfg.variant.kind = kind;
        System sys(cfg);
        sys.load(prog);
        RunResult r = sys.run();
        ASSERT_TRUE(r.exited) << variantName(kind);
        EXPECT_FALSE(r.violationDetected) << variantName(kind);
        EXPECT_EQ(sys.machine().reg(RAX), base_acc)
            << variantName(kind);
        EXPECT_EQ(r.totalAllocations, base.totalAllocations)
            << variantName(kind);
        // BT inserts synthetic check macro-instructions; all other
        // variants fetch exactly the program's macro stream.
        if (kind != VariantKind::BinaryTranslation) {
            EXPECT_EQ(r.macroOps, base.macroOps) << variantName(kind);
        }
    }
}

TEST_P(FuzzTest, PredictionNeverInjectsMoreThanAlwaysOn)
{
    BenchmarkProfile p = randomProfile(GetParam());
    Program prog = generateWorkload(p, GetParam());
    RunResult on = runUnder(prog, VariantKind::MicrocodeAlwaysOn);
    RunResult pred =
        runUnder(prog, VariantKind::MicrocodePrediction);
    ASSERT_TRUE(on.exited && pred.exited);
    EXPECT_LE(pred.capChecksInjected, on.capChecksInjected);
    EXPECT_LE(pred.uops, on.uops);
}

TEST_P(FuzzTest, Deterministic)
{
    BenchmarkProfile p = randomProfile(GetParam());
    Program prog = generateWorkload(p, GetParam());
    RunResult a = runUnder(prog, VariantKind::MicrocodePrediction);
    RunResult b = runUnder(prog, VariantKind::MicrocodePrediction);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.capChecksInjected, b.capChecksInjected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

class OobDistanceTest : public ::testing::TestWithParam<int>
{
};

TEST_P(OobDistanceTest, AnyDistancePastBoundsIsFlagged)
{
    // Property: an access any number of bytes past a block's bounds
    // (1 B to far beyond the chunk) is flagged as out-of-bounds by
    // every capability variant.
    int delta = GetParam();
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrm(RBX, memAt(RAX, 64 + delta - 1), 1); // 1-byte read
    as.hlt();
    Program prog = as.finalize();

    for (VariantKind kind :
         {VariantKind::HardwareOnly, VariantKind::BinaryTranslation,
          VariantKind::MicrocodeAlwaysOn,
          VariantKind::MicrocodePrediction}) {
        SystemConfig cfg;
        cfg.variant.kind = kind;
        System sys(cfg);
        sys.load(prog);
        RunResult r = sys.run();
        ASSERT_TRUE(r.violationDetected)
            << variantName(kind) << " delta=" << delta;
        EXPECT_EQ(r.violations[0].kind, Violation::OutOfBounds)
            << variantName(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(Distances, OobDistanceTest,
                         ::testing::Values(1, 2, 8, 17, 64, 1000,
                                           1 << 20));

} // namespace
} // namespace chex

/**
 * @file
 * Timing-core tests: dataflow-limited latency, structural limits
 * (ROB/issue width), cache-latency exposure, branch-mispredict
 * redirects, zero-idiom handling, and alias-flush charging.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "mem/hierarchy.hh"

namespace chex
{
namespace
{

StaticUop
aluUop(RegId dst, RegId src1, RegId src2)
{
    StaticUop u;
    u.type = UopType::IntAlu;
    u.op = AluOp::Add;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = src2;
    return u;
}

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : hier(), core(CoreConfig{}, hier) {}

    uint64_t
    add(const StaticUop &u, uint64_t ea = 0, unsigned extra = 0,
        bool zero_idiom = false)
    {
        UopTimingIn in;
        in.uop = &u;
        in.effAddr = ea;
        in.extraLatency = extra;
        in.zeroIdiom = zero_idiom;
        return core.addUop(in);
    }

    void
    macro(uint64_t pc)
    {
        core.beginMacro(pc, DecodePath::Simple, MacroBranchInfo{});
    }

    MemoryHierarchy hier;
    Core core;
};

TEST_F(CoreTest, DependentChainSerializes)
{
    macro(0x400000);
    StaticUop u = aluUop(RAX, RAX, RAX);
    uint64_t c1 = add(u);
    uint64_t c2 = add(u);
    uint64_t c3 = add(u);
    EXPECT_GT(c2, c1);
    EXPECT_GT(c3, c2);
    core.endMacro(false, 0);
    EXPECT_EQ(core.uops(), 3u);
}

TEST_F(CoreTest, IndependentUopsOverlap)
{
    macro(0x400000);
    uint64_t done[4];
    RegId dsts[4] = {RAX, RBX, RCX, RDX};
    for (int i = 0; i < 4; ++i)
        done[i] = add(aluUop(dsts[i], RSI, RDI));
    // All four issue in the same window: completions within 1 cycle.
    EXPECT_LE(done[3] - done[0], 1u);
    core.endMacro(false, 0);
}

TEST_F(CoreTest, IssueWidthLimitsThroughput)
{
    // 60 independent single-cycle uops through a 6-wide issue:
    // at least 10 cycles of issue are needed.
    macro(0x400000);
    uint64_t first = 0, last = 0;
    for (int i = 0; i < 60; ++i) {
        uint64_t c = add(aluUop(static_cast<RegId>(i % 8), RSI, RDI));
        if (i == 0)
            first = c;
        last = c;
    }
    EXPECT_GE(last - first, 9u);
    core.endMacro(false, 0);
}

TEST_F(CoreTest, ExtraLatencyDelaysCompletion)
{
    macro(0x400000);
    StaticUop u = aluUop(RAX, RBX, RCX);
    uint64_t base = add(u);
    macro(0x400004);
    uint64_t slowed = add(aluUop(RDX, RBX, RCX), 0, 50);
    EXPECT_GE(slowed, base + 50);
    core.endMacro(false, 0);
}

TEST_F(CoreTest, LoadLatencyIncludesCache)
{
    macro(0x400000);
    StaticUop ld;
    ld.type = UopType::Load;
    ld.dst = RAX;
    ld.mem = memAt(RBX, 0);
    ld.hasMem = true;
    uint64_t miss = add(ld, 0x10000);
    macro(0x400004);
    uint64_t hit = add(ld, 0x10000);
    EXPECT_GT(miss, hit); // first access pays the DRAM fill
    core.endMacro(false, 0);
}

TEST_F(CoreTest, StoreToLoadForwarding)
{
    macro(0x400000);
    StaticUop st;
    st.type = UopType::Store;
    st.src1 = RCX;
    st.mem = memAt(RBX, 0);
    st.hasMem = true;
    uint64_t store_done = add(st, 0x20000);
    StaticUop ld;
    ld.type = UopType::Load;
    ld.dst = RAX;
    ld.mem = memAt(RBX, 0);
    ld.hasMem = true;
    uint64_t fwd = add(ld, 0x20000);
    // Forwarded out of the store queue: completes right after the
    // store's data is ready, far cheaper than the cold DRAM fill.
    EXPECT_LE(fwd, store_done + 3);
    macro(0x400004);
    uint64_t unrelated = add(ld, 0x80000); // cold line: full fill
    EXPECT_GT(unrelated, fwd + 100);
    core.endMacro(false, 0);
}

TEST_F(CoreTest, ZeroIdiomSkipsExecution)
{
    macro(0x400000);
    StaticUop chk;
    chk.type = UopType::CapCheck;
    add(chk, 0, 0, true);
    EXPECT_EQ(core.zeroIdiomUops(), 1u);
    core.endMacro(false, 0);
}

TEST_F(CoreTest, BranchMispredictChargesSquash)
{
    // Train: a conditional branch alternating taken/not-taken with
    // no warmup is guaranteed to mispredict sometimes.
    StaticUop br;
    br.type = UopType::Branch;
    br.cc = CondCode::NE;
    br.src1 = FLAGS;

    for (int i = 0; i < 40; ++i) {
        MacroBranchInfo bi;
        bi.isBranch = true;
        bi.isConditional = true;
        bi.fallthrough = 0x400004;
        core.beginMacro(0x400000, DecodePath::Simple, bi);
        add(br);
        bool taken = (i / 3) % 2 == 0; // irregular-ish
        core.endMacro(taken, 0x400800);
    }
    EXPECT_GT(core.branchMispredicts(), 0u);
    EXPECT_GT(core.squashCyclesBranch(), 0u);
    EXPECT_EQ(core.squashCyclesAlias(), 0u);
}

TEST_F(CoreTest, AliasFlushChargesSeparateBucket)
{
    macro(0x400000);
    uint64_t c = add(aluUop(RAX, RBX, RCX));
    core.chargeAliasFlush(c);
    core.endMacro(false, 0);
    EXPECT_GT(core.squashCyclesAlias(), 0u);
    EXPECT_EQ(core.squashCyclesBranch(), 0u);
}

TEST_F(CoreTest, RobLimitsInFlightWindow)
{
    // A very long latency uop at the head plus > ROB-size younger
    // uops: the younger ones cannot commit past the window.
    CoreConfig small;
    small.robEntries = 16;
    Core tiny(small, hier);
    auto addTo = [&](Core &c, const StaticUop &u, unsigned extra) {
        UopTimingIn in;
        in.uop = &u;
        in.extraLatency = extra;
        return c.addUop(in);
    };
    tiny.beginMacro(0x400000, DecodePath::Simple, MacroBranchInfo{});
    StaticUop slow = aluUop(RAX, RBX, RCX);
    addTo(tiny, slow, 500);
    StaticUop fast = aluUop(RDX, RSI, RDI);
    uint64_t last = 0;
    for (int i = 0; i < 40; ++i)
        last = addTo(tiny, fast, 0);
    // uop 17+ must wait for ROB entries freed after the slow head
    // commits (cycle > 500).
    EXPECT_GT(last, 500u);
}

TEST_F(CoreTest, MsromPathStallsFetch)
{
    macro(0x400000);
    add(aluUop(RAX, RBX, RCX));
    core.endMacro(false, 0);
    uint64_t before = core.cycles();

    core.beginMacro(0x400004, DecodePath::Msrom, MacroBranchInfo{});
    add(aluUop(RDX, RBX, RCX));
    core.endMacro(false, 0);
    EXPECT_GT(core.cycles(), before);
}

TEST_F(CoreTest, StallFetchDelaysNextMacro)
{
    macro(0x400000);
    add(aluUop(RAX, RBX, RCX));
    core.endMacro(false, 0);
    core.stallFetch(1000);
    macro(0x400004);
    uint64_t c = add(aluUop(RDX, RBX, RCX));
    EXPECT_GT(c, 1000u);
    core.endMacro(false, 0);
}

TEST_F(CoreTest, IpcWithinPhysicalLimits)
{
    // A stream of independent ALU work cannot exceed issue width.
    for (int m = 0; m < 200; ++m) {
        macro(0x400000 + m * 4);
        for (int u = 0; u < 3; ++u)
            add(aluUop(static_cast<RegId>((m * 3 + u) % 12), RSI,
                       RDI));
        core.endMacro(false, 0);
    }
    EXPECT_GT(core.ipc(), 0.5);
    EXPECT_LE(core.ipc(), 6.0);
}

} // namespace
} // namespace chex

/**
 * @file
 * Checkpoint/restore subsystem tests: snapshot round-trips, the
 * restore-then-run bit-identity guarantee across variants, and the
 * strict rejection of mismatched or corrupt snapshots.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/system.hh"
#include "snapshot/codec.hh"
#include "snapshot/snapshot.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

using namespace chex;

namespace
{

constexpr uint64_t TestSeed = 12345;
constexpr uint64_t Warmup = 2000;

BenchmarkProfile
testProfile()
{
    // Allocation-heavy and pointer-intensive, so the warm-up state
    // exercises the capability table, tracker, and alias machinery.
    return profileByName("xalancbmk").scaledBy(40);
}

SystemConfig
configFor(VariantKind kind)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    return cfg;
}

/** Fields of RunResult that must survive a pause bit-identically. */
void
expectIdenticalResults(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.exited, b.exited);
    EXPECT_EQ(a.violationDetected, b.violationDetected);
    EXPECT_EQ(a.hijackedControlFlow, b.hijackedControlFlow);
    EXPECT_EQ(a.hitMacroCap, b.hitMacroCap);
    EXPECT_EQ(a.violations.size(), b.violations.size());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.macroOps, b.macroOps);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.squashCyclesBranch, b.squashCyclesBranch);
    EXPECT_EQ(a.squashCyclesAlias, b.squashCyclesAlias);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.capChecksInjected, b.capChecksInjected);
    EXPECT_EQ(a.zeroIdiomChecks, b.zeroIdiomChecks);
    EXPECT_EQ(a.injectedUops, b.injectedUops);
    EXPECT_EQ(a.capCacheMissRate, b.capCacheMissRate);
    EXPECT_EQ(a.capCacheAccesses, b.capCacheAccesses);
    EXPECT_EQ(a.aliasCacheMissRate, b.aliasCacheMissRate);
    EXPECT_EQ(a.aliasCacheAccesses, b.aliasCacheAccesses);
    EXPECT_EQ(a.aliasPredAccuracy, b.aliasPredAccuracy);
    EXPECT_EQ(a.p0anFlushes, b.p0anFlushes);
    EXPECT_EQ(a.pmanForwards, b.pmanForwards);
    EXPECT_EQ(a.pna0ZeroIdioms, b.pna0ZeroIdioms);
    EXPECT_EQ(a.pointerSpills, b.pointerSpills);
    EXPECT_EQ(a.pointerReloads, b.pointerReloads);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.dramBytes, b.dramBytes);
    EXPECT_EQ(a.residentBytes, b.residentBytes);
    EXPECT_EQ(a.shadowBytes, b.shadowBytes);
    EXPECT_EQ(a.footprintBytes, b.footprintBytes);
    EXPECT_EQ(a.totalAllocations, b.totalAllocations);
    EXPECT_EQ(a.maxLiveAllocations, b.maxLiveAllocations);
    EXPECT_EQ(a.avgAllocationsInUse, b.avgAllocationsInUse);
}

} // anonymous namespace

TEST(Snapshot, PauseResumeMatchesUninterrupted)
{
    BenchmarkProfile p = testProfile();
    for (VariantKind kind :
         {VariantKind::Baseline, VariantKind::MicrocodePrediction,
          VariantKind::MicrocodeAlwaysOn, VariantKind::Asan}) {
        SystemConfig cfg = configFor(kind);

        System plain(cfg);
        plain.load(generateWorkload(p, TestSeed));
        RunResult a = plain.run();

        System paused(cfg);
        paused.load(generateWorkload(p, TestSeed));
        ASSERT_TRUE(paused.runMacros(Warmup)) << variantName(kind);
        EXPECT_TRUE(paused.paused());
        RunResult b = paused.run();

        SCOPED_TRACE(variantName(kind));
        expectIdenticalResults(a, b);
    }
}

TEST(Snapshot, RestoreRunsBitIdentically)
{
    BenchmarkProfile p = testProfile();
    for (VariantKind kind :
         {VariantKind::MicrocodePrediction, VariantKind::HardwareOnly,
          VariantKind::Baseline}) {
        SCOPED_TRACE(variantName(kind));
        SystemConfig cfg = configFor(kind);

        System plain(cfg);
        plain.load(generateWorkload(p, TestSeed));
        RunResult a = plain.run();

        snapshot::MachineEntry entry;
        std::string err;
        ASSERT_TRUE(snapshot::buildEntry(p, cfg, TestSeed, Warmup, 1,
                                         &entry, &err))
            << err;
        EXPECT_EQ(entry.warmupMacros, Warmup);
        EXPECT_NE(entry.stateHash, 0u);

        System restored(cfg);
        ASSERT_TRUE(
            snapshot::restoreEntry(entry, p, cfg, &restored, &err))
            << err;
        ASSERT_TRUE(restored.paused());
        RunResult b = restored.run();

        expectIdenticalResults(a, b);
    }
}

TEST(Snapshot, SaveRestoreSaveIsStable)
{
    // Restoring a snapshot and snapshotting again must reproduce the
    // exact serialized document: proof that no state is dropped or
    // reordered on the way through.
    BenchmarkProfile p = testProfile();
    SystemConfig cfg = configFor(VariantKind::MicrocodePrediction);

    snapshot::MachineEntry entry;
    std::string err;
    ASSERT_TRUE(
        snapshot::buildEntry(p, cfg, TestSeed, Warmup, 1, &entry, &err))
        << err;

    System restored(cfg);
    ASSERT_TRUE(snapshot::restoreEntry(entry, p, cfg, &restored, &err))
        << err;
    json::Value again = restored.saveSnapshot(&err);
    ASSERT_FALSE(again.isNull()) << err;
    EXPECT_EQ(entry.state.dump(0), again.dump(0));
    EXPECT_EQ(entry.stateHash, snapshot::jsonStateHash(again));
}

TEST(Snapshot, BundleFileRoundTrip)
{
    BenchmarkProfile p = testProfile();
    SystemConfig cfg = configFor(VariantKind::MicrocodePrediction);

    snapshot::Bundle bundle;
    bundle.campaignSeed = 7;
    bundle.warmupMacros = Warmup;
    snapshot::MachineEntry entry;
    std::string err;
    ASSERT_TRUE(snapshot::buildEntry(p, cfg, TestSeed, Warmup, 0xabcd,
                                     &entry, &err))
        << err;
    bundle.entries.push_back(std::move(entry));

    std::string path = testing::TempDir() + "/chex_snapshot_rt.json";
    ASSERT_TRUE(snapshot::writeBundleFile(path, bundle, &err)) << err;

    snapshot::Bundle loaded;
    ASSERT_TRUE(snapshot::loadBundleFile(path, &loaded, &err)) << err;
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.campaignSeed, 7u);
    EXPECT_EQ(loaded.warmupMacros, Warmup);
    const snapshot::MachineEntry &e = loaded.entries[0];
    EXPECT_EQ(e.profileName, p.name);
    EXPECT_EQ(e.variant,
              std::string(variantName(VariantKind::MicrocodePrediction)));
    EXPECT_EQ(e.seed, TestSeed);
    EXPECT_EQ(e.specKey, 0xabcdu);
    EXPECT_EQ(e.stateHash, bundle.entries[0].stateHash);
    EXPECT_EQ(e.state.dump(0), bundle.entries[0].state.dump(0));
    EXPECT_NE(loaded.findBySpecKey(0xabcd), nullptr);
    EXPECT_EQ(loaded.findBySpecKey(0x9999), nullptr);
    EXPECT_EQ(loaded.findBySpecKey(0), nullptr);
    std::remove(path.c_str());
}

TEST(Snapshot, CorruptBundleRejected)
{
    BenchmarkProfile p = testProfile();
    SystemConfig cfg = configFor(VariantKind::Baseline);

    snapshot::Bundle bundle;
    snapshot::MachineEntry entry;
    std::string err;
    ASSERT_TRUE(
        snapshot::buildEntry(p, cfg, TestSeed, Warmup, 1, &entry, &err))
        << err;
    bundle.entries.push_back(std::move(entry));

    json::Value doc = snapshot::toJson(bundle);

    // Wrong bundle format tag.
    {
        json::Value bad = doc;
        bad.set("format", "chex-snapshot-bundle-v999");
        snapshot::Bundle out;
        EXPECT_FALSE(snapshot::fromJson(bad, &out, &err));
        EXPECT_NE(err.find("format"), std::string::npos) << err;
    }

    // Tampered state (hash mismatch): flip the saved macro count.
    {
        json::Value bad = doc;
        json::Value state = bundle.entries[0].state;
        json::Value machine = state.at("machine");
        machine.set("macroCount", uint64_t{999999});
        state.set("machine", std::move(machine));
        json::Value jentries = json::Value::array();
        json::Value je = bad.at("entries").at(size_t{0});
        je.set("state", std::move(state));
        jentries.push(std::move(je));
        bad.set("entries", std::move(jentries));
        snapshot::Bundle out;
        EXPECT_FALSE(snapshot::fromJson(bad, &out, &err));
        EXPECT_NE(err.find("corrupt"), std::string::npos) << err;
    }
}

TEST(Snapshot, MismatchedRestoreRejected)
{
    BenchmarkProfile p = testProfile();
    SystemConfig cfg = configFor(VariantKind::MicrocodePrediction);

    snapshot::MachineEntry entry;
    std::string err;
    ASSERT_TRUE(
        snapshot::buildEntry(p, cfg, TestSeed, Warmup, 1, &entry, &err))
        << err;

    // Different config (variant changed) -> configHash mismatch.
    {
        SystemConfig other = configFor(VariantKind::MicrocodeAlwaysOn);
        System sys(other);
        EXPECT_FALSE(
            snapshot::restoreEntry(entry, p, other, &sys, &err));
        EXPECT_NE(err.find("configuration mismatch"),
                  std::string::npos)
            << err;
    }

    // Different config (cache geometry changed) -> rejected too.
    {
        SystemConfig other = cfg;
        other.capCacheEntries = 16;
        System sys(other);
        EXPECT_FALSE(
            snapshot::restoreEntry(entry, p, other, &sys, &err));
        EXPECT_NE(err.find("configuration mismatch"),
                  std::string::npos)
            << err;
    }

    // Different program (other seed) -> programHash mismatch.
    {
        System sys(cfg);
        sys.load(generateWorkload(p, TestSeed + 1));
        EXPECT_FALSE(sys.restoreSnapshot(entry.state, &err));
        EXPECT_NE(err.find("program mismatch"), std::string::npos)
            << err;
    }

    // Wrong snapshot format tag.
    {
        json::Value bad = entry.state;
        bad.set("format", "chex-snapshot-v999");
        System sys(cfg);
        sys.load(generateWorkload(p, TestSeed));
        EXPECT_FALSE(sys.restoreSnapshot(bad, &err));
        EXPECT_NE(err.find("format"), std::string::npos) << err;
    }

    // No program loaded at all.
    {
        System sys(cfg);
        EXPECT_FALSE(sys.restoreSnapshot(entry.state, &err));
        EXPECT_NE(err.find("no program"), std::string::npos) << err;
    }
}

TEST(Snapshot, CheckerConfigNotSnapshottable)
{
    SystemConfig cfg = configFor(VariantKind::MicrocodePrediction);
    cfg.enableChecker = true;
    cfg.useTableIRules = false;
    BenchmarkProfile p = testProfile();
    snapshot::MachineEntry entry;
    std::string err;
    EXPECT_FALSE(snapshot::buildEntry(p, cfg, TestSeed, Warmup, 1,
                                      &entry, &err));
    EXPECT_NE(err.find("checker"), std::string::npos) << err;
}

TEST(Snapshot, WarmupPastEndOfRunRejected)
{
    BenchmarkProfile p = testProfile();
    SystemConfig cfg = configFor(VariantKind::Baseline);
    snapshot::MachineEntry entry;
    std::string err;
    EXPECT_FALSE(snapshot::buildEntry(p, cfg, TestSeed,
                                      uint64_t{1} << 62, 1, &entry,
                                      &err));
    EXPECT_NE(err.find("terminated before"), std::string::npos) << err;
}

/**
 * @file
 * Campaign-driver tests: scheduling-independent determinism (an
 * N-thread campaign reproduces the 1-thread campaign bit for bit),
 * per-job failure isolation and bounded retry, fork-isolated workers
 * (panic/SIGKILL/timeout capture, cross-process result streaming),
 * seed derivation, the result cache (spec hashing, hit/miss on
 * spec/seed/scale changes, failed jobs never satisfying, cached
 * bit-identity), campaign sharding (the union of K shards is
 * bit-identical to the unsharded run) and report merging (seed /
 * option / coverage validation), the JSON value type (writer +
 * parser round trip), the campaign report / single-run stats
 * serialization in both directions (v1-v5 parse), snapshot-fanned
 * campaigns (bit-identity vs from-scratch, folded spec hashes
 * keeping cache modes apart), record/replay of report rows
 * (reproduced failure causes, refusal of unreconstructible rows),
 * and the bench env-knob validation.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "base/json.hh"
#include "base/logging.hh"
#include "driver/campaign.hh"
#include "driver/env.hh"
#include "driver/merge.hh"
#include "driver/replay.hh"
#include "driver/report.hh"
#include "driver/spec_hash.hh"
#include "sim/system.hh"
#include "snapshot/snapshot.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

#include "../bench/common.hh"

namespace chex
{
namespace
{

/** A tiny profile so each job runs in milliseconds. */
BenchmarkProfile
tinyProfile(const char *name = "tiny")
{
    BenchmarkProfile p;
    p.name = name;
    p.totalAllocations = 40;
    p.maxLiveBuffers = 16;
    p.buffersInUse = 4;
    p.iterations = 400;
    p.scheduleLength = 128;
    return p;
}

/** An 8-job campaign mixing variants and repetitions. */
std::vector<driver::JobSpec>
eightJobs()
{
    const VariantKind kinds[] = {
        VariantKind::Baseline,
        VariantKind::MicrocodePrediction,
        VariantKind::MicrocodeAlwaysOn,
        VariantKind::Asan,
    };
    std::vector<driver::JobSpec> jobs;
    for (unsigned rep = 0; rep < 2; ++rep) {
        for (VariantKind kind : kinds) {
            driver::JobSpec spec;
            spec.label = std::string(variantName(kind)) + "#" +
                         std::to_string(rep);
            spec.profile = tinyProfile();
            spec.config.variant.kind = kind;
            spec.repetition = rep;
            // No pinned seed: derived from (campaign seed, index).
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

TEST(JobSeed, DeterministicNonZeroAndSpread)
{
    EXPECT_EQ(driver::jobSeed(1, 0), driver::jobSeed(1, 0));
    std::set<uint64_t> seen;
    for (size_t i = 0; i < 100; ++i) {
        uint64_t s = driver::jobSeed(42, i);
        EXPECT_NE(s, 0u);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 100u); // no collisions in a small sweep
    EXPECT_NE(driver::jobSeed(1, 0), driver::jobSeed(2, 0));
}

TEST(Campaign, ParallelMatchesSerial)
{
    std::vector<driver::JobSpec> jobs = eightJobs();

    driver::CampaignOptions serial;
    serial.workers = 1;
    serial.seed = 7;
    driver::CampaignReport a = driver::runCampaign(jobs, serial);

    driver::CampaignOptions parallel;
    parallel.workers = 4;
    parallel.seed = 7;
    driver::CampaignReport b = driver::runCampaign(jobs, parallel);

    ASSERT_EQ(a.jobs.size(), jobs.size());
    ASSERT_EQ(b.jobs.size(), jobs.size());
    EXPECT_EQ(a.jobsFailed, 0u);
    EXPECT_EQ(b.jobsFailed, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(a.jobs[i].label);
        EXPECT_EQ(a.jobs[i].seed, b.jobs[i].seed);
        EXPECT_EQ(a.jobs[i].run.cycles, b.jobs[i].run.cycles);
        EXPECT_EQ(a.jobs[i].run.macroOps, b.jobs[i].run.macroOps);
        EXPECT_EQ(a.jobs[i].run.uops, b.jobs[i].run.uops);
        EXPECT_EQ(a.jobs[i].run.violations.size(),
                  b.jobs[i].run.violations.size());
        EXPECT_EQ(a.jobs[i].run.capChecksInjected,
                  b.jobs[i].run.capChecksInjected);
    }
}

TEST(Campaign, DerivedSeedsDifferAcrossRepetitions)
{
    driver::CampaignReport r =
        driver::runCampaign(eightJobs(), {});
    ASSERT_EQ(r.jobs.size(), 8u);
    // Same (profile, variant) point, different repetition => the
    // derived seeds differ, so the generated workloads are
    // statistically independent. (Cycle counts may still coincide
    // on a workload this small, so only the seeds are asserted.)
    EXPECT_NE(r.jobs[0].seed, r.jobs[4].seed);
}

TEST(Campaign, ThrowingJobIsIsolated)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs[3].body = [](const driver::JobSpec &, uint64_t) -> RunResult {
        throw std::runtime_error("injected fault");
    };

    driver::CampaignOptions opts;
    opts.workers = 2;
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    EXPECT_EQ(r.jobsRun, jobs.size());
    EXPECT_EQ(r.jobsFailed, 1u);
    EXPECT_TRUE(r.jobs[3].failed);
    EXPECT_EQ(r.jobs[3].error, "injected fault");
    EXPECT_EQ(r.jobs[3].attempts, 1u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i == 3)
            continue;
        EXPECT_FALSE(r.jobs[i].failed) << i;
        EXPECT_TRUE(r.jobs[i].run.exited) << i;
    }
}

TEST(Campaign, BoundedRetryRecovers)
{
    auto flaky_failures = std::make_shared<std::atomic<int>>(2);
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs[1].body = [flaky_failures](const driver::JobSpec &spec,
                                    uint64_t seed) -> RunResult {
        if (flaky_failures->fetch_sub(1) > 0)
            throw std::runtime_error("transient");
        System sys(spec.config);
        sys.load(generateWorkload(spec.profile, seed));
        return sys.run();
    };

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.maxAttempts = 3;
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    EXPECT_EQ(r.jobsFailed, 0u);
    EXPECT_EQ(r.jobs[1].attempts, 3u);
    EXPECT_TRUE(r.jobs[1].run.exited);
    EXPECT_EQ(r.jobs[0].attempts, 1u);
}

TEST(Campaign, WallSecondsAccumulateAcrossAttempts)
{
    auto failures = std::make_shared<std::atomic<int>>(2);
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs.resize(2);
    jobs[1].body = [failures](const driver::JobSpec &spec,
                              uint64_t seed) -> RunResult {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (failures->fetch_sub(1) > 0)
            throw std::runtime_error("transient");
        System sys(spec.config);
        sys.load(generateWorkload(spec.profile, seed));
        return sys.run();
    };

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.maxAttempts = 3;
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    ASSERT_FALSE(r.jobs[1].failed);
    EXPECT_EQ(r.jobs[1].attempts, 3u);
    ASSERT_EQ(r.jobs[1].attemptSeconds.size(), 3u);
    // The reported wall time is the whole cost of the job — the sum
    // of every attempt, not just the final (successful) one.
    double sum = 0.0;
    for (double s : r.jobs[1].attemptSeconds) {
        EXPECT_GE(s, 0.01);
        sum += s;
    }
    EXPECT_DOUBLE_EQ(r.jobs[1].wallSeconds, sum);
    EXPECT_GE(r.jobs[1].wallSeconds, 0.03);
    ASSERT_EQ(r.jobs[0].attemptSeconds.size(), 1u);
    EXPECT_DOUBLE_EQ(r.jobs[0].wallSeconds,
                     r.jobs[0].attemptSeconds[0]);
}

TEST(Campaign, SummaryAggregates)
{
    driver::CampaignReport r =
        driver::runCampaign(eightJobs(), {});
    EXPECT_EQ(r.jobsRun, 8u);
    EXPECT_EQ(r.jobsFailed, 0u);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.totalUops, 0u);
    EXPECT_GT(r.aggregateIpc, 0.0);
    EXPECT_GT(r.wallSeconds, 0.0);
    EXPECT_GE(r.serialSeconds, 0.0);
}

TEST(Isolation, PanicIsCapturedAsSignalWhileSiblingsComplete)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs[2].body = [](const driver::JobSpec &,
                      uint64_t) -> RunResult {
        chex_panic("deliberate test panic"); // aborts the child
    };

    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.isolation = true;
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    EXPECT_EQ(r.jobsRun, jobs.size());
    EXPECT_EQ(r.jobsFailed, 1u);
    ASSERT_TRUE(r.jobs[2].failed);
    EXPECT_EQ(r.jobs[2].cause, driver::FailureCause::Signal);
    EXPECT_EQ(r.jobs[2].exitStatus, SIGABRT);
    EXPECT_EQ(r.jobs[2].termSignal, SIGABRT);
    EXPECT_EQ(r.jobs[2].exitCode, 0);
    EXPECT_NE(r.jobs[2].error.find("signal"), std::string::npos)
        << r.jobs[2].error;
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i == 2)
            continue;
        EXPECT_FALSE(r.jobs[i].failed) << i;
        EXPECT_TRUE(r.jobs[i].run.exited) << i;
    }
}

TEST(Isolation, WatchdogKillsStuckJobAndRetries)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs.resize(3);
    jobs[0].body = [](const driver::JobSpec &,
                      uint64_t) -> RunResult {
        for (;;) // never hits any cap; only the watchdog ends this
            std::this_thread::sleep_for(std::chrono::seconds(1));
    };

    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.isolation = true;
    opts.timeoutSeconds = 0.2;
    opts.maxAttempts = 2; // timeouts participate in bounded retry
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    ASSERT_TRUE(r.jobs[0].failed);
    EXPECT_EQ(r.jobs[0].cause, driver::FailureCause::Timeout);
    EXPECT_EQ(r.jobs[0].exitStatus, SIGKILL);
    EXPECT_EQ(r.jobs[0].termSignal, SIGKILL);
    EXPECT_EQ(r.jobs[0].exitCode, 0);
    EXPECT_EQ(r.jobs[0].attempts, 2u);
    ASSERT_EQ(r.jobs[0].attemptSeconds.size(), 2u);
    for (double s : r.jobs[0].attemptSeconds)
        EXPECT_GE(s, 0.2);
    EXPECT_FALSE(r.jobs[1].failed);
    EXPECT_FALSE(r.jobs[2].failed);
}

TEST(Isolation, PanicAndHangInOneCampaignMatchInProcessElsewhere)
{
    // The acceptance scenario: one campaign holding a panicking job
    // AND a never-terminating job completes under isolation, marks
    // exactly those two failed with causes signal and timeout, and
    // every other job is bit-identical to an in-process run of the
    // same campaign seed.
    std::vector<driver::JobSpec> jobs = eightJobs();

    driver::CampaignOptions in_process;
    in_process.workers = 1;
    in_process.seed = 21;
    driver::CampaignReport ref = driver::runCampaign(jobs, in_process);
    ASSERT_EQ(ref.jobsFailed, 0u);

    jobs[1].body = [](const driver::JobSpec &,
                      uint64_t) -> RunResult {
        chex_panic("deliberate test panic");
    };
    jobs[5].body = [](const driver::JobSpec &,
                      uint64_t) -> RunResult {
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(1));
    };

    driver::CampaignOptions isolated;
    isolated.workers = 3;
    isolated.seed = 21;
    isolated.isolation = true;
    isolated.timeoutSeconds = 0.3;
    driver::CampaignReport r = driver::runCampaign(jobs, isolated);

    EXPECT_EQ(r.jobsRun, jobs.size());
    EXPECT_EQ(r.jobsFailed, 2u);
    ASSERT_TRUE(r.jobs[1].failed);
    EXPECT_EQ(r.jobs[1].cause, driver::FailureCause::Signal);
    ASSERT_TRUE(r.jobs[5].failed);
    EXPECT_EQ(r.jobs[5].cause, driver::FailureCause::Timeout);
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i == 1 || i == 5)
            continue;
        SCOPED_TRACE(ref.jobs[i].label);
        EXPECT_FALSE(r.jobs[i].failed);
        EXPECT_EQ(r.jobs[i].seed, ref.jobs[i].seed);
        EXPECT_EQ(r.jobs[i].run.cycles, ref.jobs[i].run.cycles);
        EXPECT_EQ(r.jobs[i].run.uops, ref.jobs[i].run.uops);
        EXPECT_EQ(r.jobs[i].run.macroOps, ref.jobs[i].run.macroOps);
        EXPECT_DOUBLE_EQ(r.jobs[i].run.ipc, ref.jobs[i].run.ipc);
    }
}

TEST(Isolation, ExceptionCrossesTheProcessBoundary)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs.resize(2);
    jobs[1].body = [](const driver::JobSpec &,
                      uint64_t) -> RunResult {
        throw std::runtime_error("thrown in the child");
    };

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.isolation = true;
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    ASSERT_TRUE(r.jobs[1].failed);
    EXPECT_EQ(r.jobs[1].cause, driver::FailureCause::Exception);
    EXPECT_EQ(r.jobs[1].error, "thrown in the child");
    EXPECT_EQ(r.jobs[1].exitStatus, 0);
    EXPECT_FALSE(r.jobs[0].failed);
}

TEST(Isolation, NonzeroExitIsCaptured)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs.resize(2);
    jobs[0].body = [](const driver::JobSpec &,
                      uint64_t) -> RunResult {
        ::_exit(7); // child vanishes without reporting a result
    };

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.isolation = true;
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    ASSERT_TRUE(r.jobs[0].failed);
    EXPECT_EQ(r.jobs[0].cause, driver::FailureCause::NonzeroExit);
    EXPECT_EQ(r.jobs[0].exitStatus, 7);
    EXPECT_EQ(r.jobs[0].exitCode, 7);
    EXPECT_EQ(r.jobs[0].termSignal, 0);
    EXPECT_FALSE(r.jobs[1].failed);
}

TEST(Isolation, MatchesInProcessBitForBit)
{
    std::vector<driver::JobSpec> jobs = eightJobs();

    driver::CampaignOptions in_process;
    in_process.workers = 1;
    in_process.seed = 7;
    driver::CampaignReport a = driver::runCampaign(jobs, in_process);

    driver::CampaignOptions isolated;
    isolated.workers = 3;
    isolated.seed = 7;
    isolated.isolation = true;
    isolated.timeoutSeconds = 120.0;
    driver::CampaignReport b = driver::runCampaign(jobs, isolated);

    EXPECT_EQ(a.jobsFailed, 0u);
    EXPECT_EQ(b.jobsFailed, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(a.jobs[i].label);
        EXPECT_EQ(a.jobs[i].seed, b.jobs[i].seed);
        EXPECT_EQ(a.jobs[i].run.cycles, b.jobs[i].run.cycles);
        EXPECT_EQ(a.jobs[i].run.macroOps, b.jobs[i].run.macroOps);
        EXPECT_EQ(a.jobs[i].run.uops, b.jobs[i].run.uops);
        EXPECT_DOUBLE_EQ(a.jobs[i].run.ipc, b.jobs[i].run.ipc);
        EXPECT_EQ(a.jobs[i].run.capChecksInjected,
                  b.jobs[i].run.capChecksInjected);
        EXPECT_EQ(a.jobs[i].run.violations.size(),
                  b.jobs[i].run.violations.size());
        EXPECT_EQ(a.jobs[i].run.dramBytes, b.jobs[i].run.dramBytes);
        EXPECT_DOUBLE_EQ(a.jobs[i].run.capCacheMissRate,
                         b.jobs[i].run.capCacheMissRate);
    }
}

TEST(Json, WriteParseRoundTrip)
{
    json::Value v = json::Value::object()
                        .set("int", uint64_t(1234567890123ull))
                        .set("neg", -3.5)
                        .set("flag", true)
                        .set("none", json::Value())
                        .set("text", "line\n\"quoted\"\ttab")
                        .set("arr", json::Value::array()
                                        .push(1)
                                        .push("two")
                                        .push(false));
    std::string text = v.dump(2);

    json::Value back;
    std::string err;
    ASSERT_TRUE(json::Value::parse(text, back, &err)) << err;
    EXPECT_EQ(back.at("int").number(), 1234567890123.0);
    EXPECT_EQ(back.at("neg").number(), -3.5);
    EXPECT_TRUE(back.at("flag").boolean());
    EXPECT_TRUE(back.at("none").isNull());
    EXPECT_EQ(back.at("text").str(), "line\n\"quoted\"\ttab");
    ASSERT_EQ(back.at("arr").size(), 3u);
    EXPECT_EQ(back.at("arr").at(size_t(1)).str(), "two");
    // Canonical re-dump is stable.
    EXPECT_EQ(back.dump(2), text);
}

TEST(Json, Uint64RoundTripsExactly)
{
    // Values above 2^53 (e.g. derived seeds) must not be flattened
    // through a double on the way to disk or back.
    const uint64_t big = 10451216379200823296ull;
    json::Value v = json::Value::object().set("seed", big);
    std::string text = v.dump();
    EXPECT_NE(text.find("10451216379200823296"), std::string::npos)
        << text;

    json::Value back;
    ASSERT_TRUE(json::Value::parse(text, back, nullptr));
    EXPECT_EQ(back.at("seed").asUint64(), big);
}

TEST(Json, IntConstructionIsExact)
{
    // int-constructed non-negative numbers carry the exact-uint flag
    // just like uint64_t-constructed ones, so asUint64() never
    // detours through the double approximation.
    EXPECT_EQ(json::Value(42).dump(), "42");
    EXPECT_EQ(json::Value(42).asUint64(), 42u);
    EXPECT_EQ(json::Value(0).asUint64(), 0u);
    EXPECT_EQ(json::Value(int64_t(99)).asUint64(), 99u);
    EXPECT_EQ(json::Value(-3).dump(), "-3");
    EXPECT_EQ(json::Value(-3).number(), -3.0);
}

TEST(Json, Uint64MaxRoundTrips)
{
    const uint64_t max = UINT64_MAX;
    json::Value v = json::Value::object().set("m", max);
    std::string text = v.dump();
    EXPECT_NE(text.find("18446744073709551615"), std::string::npos)
        << text;

    json::Value back;
    ASSERT_TRUE(json::Value::parse(text, back, nullptr));
    EXPECT_EQ(back.at("m").asUint64(), max);
    // And the canonical re-dump keeps the exact digits.
    EXPECT_EQ(back.dump(), text);
}

TEST(Json, ObjectGetterHelpersApplyDefaults)
{
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::Value::parse(
        "{\"b\": true, \"u\": 9, \"d\": 1.5, \"s\": \"x\"}", v, &err))
        << err;
    EXPECT_TRUE(json::getBool(v, "b", false));
    EXPECT_EQ(json::getUint(v, "u", 0), 9u);
    EXPECT_EQ(json::getDouble(v, "d", 0.0), 1.5);
    EXPECT_EQ(json::getString(v, "s", ""), "x");
    // Absent or wrong-kind members fall back to the default.
    EXPECT_TRUE(json::getBool(v, "missing", true));
    EXPECT_EQ(json::getUint(v, "s", 5), 5u);
    EXPECT_EQ(json::getString(v, "u", "dflt"), "dflt");
    EXPECT_EQ(json::getUint(json::Value(3.0), "u", 2), 2u);
}

TEST(Json, ParserRejectsMalformed)
{
    json::Value out;
    EXPECT_FALSE(json::Value::parse("{", out));
    EXPECT_FALSE(json::Value::parse("[1,]", out));
    EXPECT_FALSE(json::Value::parse("{\"a\":1} trailing", out));
    EXPECT_FALSE(json::Value::parse("\"unterminated", out));
    EXPECT_TRUE(json::Value::parse(" [ ] ", out));
    EXPECT_TRUE(json::Value::parse("{\"u\":\"\\u0041\"}", out));
    EXPECT_EQ(out.at("u").str(), "A");
}

TEST(Report, CampaignJsonRoundTrips)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs[5].body = [](const driver::JobSpec &, uint64_t) -> RunResult {
        throw std::runtime_error("boom");
    };
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 11;
    driver::CampaignReport report = driver::runCampaign(jobs, opts);

    std::ostringstream ss;
    driver::writeReport(report, ss);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;

    EXPECT_EQ(doc.at("schema").str(), "chex-campaign-report-v6");
    EXPECT_EQ(doc.at("seed").number(), 11.0);
    // An unsharded campaign is shard 0 of 1 with nothing skipped.
    EXPECT_EQ(doc.at("shard").at("index").number(), 0.0);
    EXPECT_EQ(doc.at("shard").at("count").number(), 1.0);
    const json::Value &summary = doc.at("summary");
    EXPECT_EQ(summary.at("jobsRun").number(), 8.0);
    EXPECT_EQ(summary.at("jobsFailed").number(), 1.0);
    EXPECT_EQ(summary.at("jobsCached").number(), 0.0);
    EXPECT_EQ(summary.at("jobsSkipped").number(), 0.0);

    const json::Value &jarr = doc.at("jobs");
    ASSERT_EQ(jarr.size(), 8u);
    for (size_t i = 0; i < jarr.size(); ++i) {
        const json::Value &job = jarr.at(i);
        EXPECT_EQ(job.at("index").number(), double(i));
        EXPECT_FALSE(job.at("cached").boolean());
        // Body-override jobs (index 5) are uncacheable: specHash 0.
        EXPECT_EQ(job.at("specHash").str(),
                  i == 5 ? "0000000000000000"
                         : driver::specHashHex(report.jobs[i].specHash));
        if (i == 5) {
            EXPECT_EQ(job.at("status").str(), "failed");
            EXPECT_EQ(job.at("error").str(), "boom");
            EXPECT_EQ(job.find("result"), nullptr);
            // The v3 split fields ride along with the legacy
            // conflated exitStatus.
            EXPECT_EQ(job.at("exitCode").number(), 0.0);
            EXPECT_EQ(job.at("signal").number(), 0.0);
        } else {
            EXPECT_EQ(job.at("status").str(), "ok");
            const json::Value &res = job.at("result");
            EXPECT_EQ(res.at("cycles").number(),
                      double(report.jobs[i].run.cycles));
            EXPECT_EQ(res.at("uops").number(),
                      double(report.jobs[i].run.uops));
            EXPECT_TRUE(res.at("exited").boolean());
            EXPECT_TRUE(res.at("violations").isArray());
        }
    }
}

TEST(Report, V5RoundTripsThroughFromJson)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs.resize(4);
    jobs[2].body = [](const driver::JobSpec &,
                      uint64_t) -> RunResult {
        throw std::runtime_error("boom");
    };
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 13;
    driver::CampaignReport report = driver::runCampaign(jobs, opts);

    std::ostringstream ss;
    driver::writeReport(report, ss);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;
    EXPECT_EQ(doc.at("schema").str(), "chex-campaign-report-v6");

    driver::CampaignReport back;
    ASSERT_TRUE(driver::fromJson(doc, back, &err)) << err;
    EXPECT_EQ(back.seed, report.seed);
    EXPECT_EQ(back.workers, report.workers);
    EXPECT_EQ(back.shardIndex, 0u);
    EXPECT_EQ(back.shardCount, 1u);
    EXPECT_EQ(back.jobsSkipped, 0u);
    EXPECT_EQ(back.jobsRun, report.jobsRun);
    EXPECT_EQ(back.jobsFailed, 1u);
    EXPECT_EQ(back.jobsCached, 0u);
    EXPECT_EQ(back.totalCycles, report.totalCycles);
    EXPECT_EQ(back.totalUops, report.totalUops);
    ASSERT_EQ(back.jobs.size(), report.jobs.size());
    for (size_t i = 0; i < back.jobs.size(); ++i) {
        SCOPED_TRACE(report.jobs[i].label);
        EXPECT_EQ(back.jobs[i].label, report.jobs[i].label);
        EXPECT_EQ(back.jobs[i].seed, report.jobs[i].seed);
        EXPECT_EQ(back.jobs[i].specHash, report.jobs[i].specHash);
        EXPECT_EQ(back.jobs[i].cached, report.jobs[i].cached);
        EXPECT_EQ(back.jobs[i].skipped, report.jobs[i].skipped);
        EXPECT_EQ(back.jobs[i].failed, report.jobs[i].failed);
        EXPECT_EQ(back.jobs[i].cause, report.jobs[i].cause);
        EXPECT_EQ(back.jobs[i].exitCode, report.jobs[i].exitCode);
        EXPECT_EQ(back.jobs[i].termSignal,
                  report.jobs[i].termSignal);
        EXPECT_EQ(back.jobs[i].attempts, report.jobs[i].attempts);
        EXPECT_EQ(back.jobs[i].attemptSeconds.size(),
                  report.jobs[i].attemptSeconds.size());
        if (report.jobs[i].failed) {
            EXPECT_EQ(back.jobs[i].error, report.jobs[i].error);
        } else {
            EXPECT_EQ(back.jobs[i].run.cycles,
                      report.jobs[i].run.cycles);
            EXPECT_EQ(back.jobs[i].run.uops, report.jobs[i].run.uops);
            EXPECT_DOUBLE_EQ(back.jobs[i].run.ipc,
                             report.jobs[i].run.ipc);
            EXPECT_EQ(back.jobs[i].run.exited,
                      report.jobs[i].run.exited);
        }
    }
}

TEST(Report, V1StillParses)
{
    // A hand-written schema-v1 document: no cause/exitStatus/
    // attemptSeconds members anywhere.
    const char *v1 = R"({
      "schema": "chex-campaign-report-v1",
      "seed": 7,
      "workers": 2,
      "summary": {
        "jobsRun": 2, "jobsFailed": 1,
        "wallSeconds": 1.5, "serialSeconds": 2.0,
        "speedupVsSerial": 1.33,
        "totalCycles": 100, "totalUops": 150, "aggregateIpc": 1.5
      },
      "jobs": [
        {"index": 0, "label": "mcf/baseline", "profile": "mcf",
         "variant": "baseline", "seed": 9, "repetition": 0,
         "status": "ok", "attempts": 1, "wallSeconds": 1.0,
         "result": {"exited": true, "cycles": 100, "uops": 150,
                    "ipc": 1.5}},
        {"index": 1, "label": "lbm/baseline", "profile": "lbm",
         "variant": "baseline", "seed": 10, "repetition": 0,
         "status": "failed", "attempts": 2, "wallSeconds": 0.5,
         "error": "boom"}
      ]
    })";

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(v1, doc, &err)) << err;

    driver::CampaignReport report;
    ASSERT_TRUE(driver::fromJson(doc, report, &err)) << err;
    EXPECT_EQ(report.seed, 7u);
    EXPECT_EQ(report.workers, 2u);
    EXPECT_EQ(report.jobsRun, 2u);
    EXPECT_EQ(report.jobsFailed, 1u);
    ASSERT_EQ(report.jobs.size(), 2u);

    EXPECT_FALSE(report.jobs[0].failed);
    EXPECT_EQ(report.jobs[0].label, "mcf/baseline");
    EXPECT_EQ(report.jobs[0].run.cycles, 100u);
    EXPECT_TRUE(report.jobs[0].run.exited);
    EXPECT_TRUE(report.jobs[0].attemptSeconds.empty());

    EXPECT_TRUE(report.jobs[1].failed);
    EXPECT_EQ(report.jobs[1].error, "boom");
    // v1 could only record exceptions, so that is the backfill.
    EXPECT_EQ(report.jobs[1].cause, driver::FailureCause::Exception);
    EXPECT_EQ(report.jobs[1].exitStatus, 0);
    EXPECT_EQ(report.jobs[1].exitCode, 0);
    EXPECT_EQ(report.jobs[1].termSignal, 0);
    // Pre-v3 reports carry no specHash: the jobs load fine but can
    // never satisfy a cache lookup.
    EXPECT_EQ(report.jobs[0].specHash, 0u);
    EXPECT_FALSE(report.jobs[0].cached);
}

TEST(Report, V2SplitsLegacyExitStatusByCause)
{
    // Hand-written schema-v2 jobs carry only the conflated
    // exitStatus member; parsing must split it into termSignal or
    // exitCode depending on the recorded cause.
    const char *v2 = R"({
      "schema": "chex-campaign-report-v2",
      "seed": 3,
      "workers": 1,
      "summary": {
        "jobsRun": 3, "jobsFailed": 3,
        "wallSeconds": 1.0, "serialSeconds": 1.0,
        "speedupVsSerial": 1.0,
        "totalCycles": 0, "totalUops": 0, "aggregateIpc": 0.0
      },
      "jobs": [
        {"index": 0, "label": "a/baseline", "profile": "a",
         "variant": "baseline", "seed": 1, "repetition": 0,
         "status": "failed", "attempts": 1, "wallSeconds": 0.1,
         "error": "killed by signal 6", "cause": "signal",
         "exitStatus": 6},
        {"index": 1, "label": "b/baseline", "profile": "b",
         "variant": "baseline", "seed": 2, "repetition": 0,
         "status": "failed", "attempts": 1, "wallSeconds": 0.1,
         "error": "timed out", "cause": "timeout",
         "exitStatus": 9},
        {"index": 2, "label": "c/baseline", "profile": "c",
         "variant": "baseline", "seed": 3, "repetition": 0,
         "status": "failed", "attempts": 1, "wallSeconds": 0.1,
         "error": "exited with status 7", "cause": "nonzero-exit",
         "exitStatus": 7}
      ]
    })";

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(v2, doc, &err)) << err;

    driver::CampaignReport report;
    ASSERT_TRUE(driver::fromJson(doc, report, &err)) << err;
    ASSERT_EQ(report.jobs.size(), 3u);

    EXPECT_EQ(report.jobs[0].cause, driver::FailureCause::Signal);
    EXPECT_EQ(report.jobs[0].exitStatus, 6);
    EXPECT_EQ(report.jobs[0].termSignal, 6);
    EXPECT_EQ(report.jobs[0].exitCode, 0);

    EXPECT_EQ(report.jobs[1].cause, driver::FailureCause::Timeout);
    EXPECT_EQ(report.jobs[1].termSignal, 9);
    EXPECT_EQ(report.jobs[1].exitCode, 0);

    EXPECT_EQ(report.jobs[2].cause,
              driver::FailureCause::NonzeroExit);
    EXPECT_EQ(report.jobs[2].exitCode, 7);
    EXPECT_EQ(report.jobs[2].termSignal, 0);
}

TEST(Report, V3StillParsesWithShardBackfill)
{
    // A hand-written schema-v3 document: specHash/cached/exitCode/
    // signal are present, but no shard block and no jobsSkipped —
    // parsing must backfill shard 0 of 1 with nothing skipped.
    const char *v3 = R"({
      "schema": "chex-campaign-report-v3",
      "seed": 5,
      "workers": 2,
      "summary": {
        "jobsRun": 2, "jobsFailed": 1, "jobsCached": 1,
        "wallSeconds": 1.0, "serialSeconds": 1.5,
        "speedupVsSerial": 1.5,
        "totalCycles": 200, "totalUops": 300, "aggregateIpc": 1.5
      },
      "jobs": [
        {"index": 0, "label": "mcf/baseline", "profile": "mcf",
         "variant": "baseline", "seed": 9, "repetition": 0,
         "specHash": "00000000deadbeef", "status": "ok",
         "cached": true, "attempts": 0, "wallSeconds": 0.0,
         "result": {"exited": true, "cycles": 200, "uops": 300,
                    "ipc": 1.5}},
        {"index": 1, "label": "lbm/baseline", "profile": "lbm",
         "variant": "baseline", "seed": 10, "repetition": 0,
         "specHash": "0000000000001234", "status": "failed",
         "cached": false, "attempts": 1, "wallSeconds": 0.5,
         "attemptSeconds": [0.5], "error": "exited with status 7",
         "cause": "nonzero-exit", "exitStatus": 7, "exitCode": 7,
         "signal": 0}
      ]
    })";

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(v3, doc, &err)) << err;

    driver::CampaignReport report;
    ASSERT_TRUE(driver::fromJson(doc, report, &err)) << err;
    EXPECT_EQ(report.shardIndex, 0u);
    EXPECT_EQ(report.shardCount, 1u);
    EXPECT_EQ(report.jobsSkipped, 0u);
    ASSERT_EQ(report.jobs.size(), 2u);

    EXPECT_FALSE(report.jobs[0].skipped);
    EXPECT_TRUE(report.jobs[0].cached);
    EXPECT_EQ(report.jobs[0].specHash, 0xdeadbeefull);
    EXPECT_EQ(report.jobs[0].run.cycles, 200u);

    EXPECT_FALSE(report.jobs[1].skipped);
    EXPECT_TRUE(report.jobs[1].failed);
    EXPECT_EQ(report.jobs[1].cause,
              driver::FailureCause::NonzeroExit);
    EXPECT_EQ(report.jobs[1].exitCode, 7);
}

TEST(Report, UnknownFailureCauseFallsBackWithWarning)
{
    bool known = true;
    EXPECT_EQ(driver::failureCauseFromName("bogus-token", &known),
              driver::FailureCause::Exception);
    EXPECT_FALSE(known);
    known = false;
    EXPECT_EQ(driver::failureCauseFromName("timeout", &known),
              driver::FailureCause::Timeout);
    EXPECT_TRUE(known);
    EXPECT_EQ(driver::failureCauseFromName("nonzero-exit"),
              driver::FailureCause::NonzeroExit);
}

TEST(Report, FromJsonRejectsUnknownSchema)
{
    json::Value doc;
    ASSERT_TRUE(json::Value::parse(
        R"({"schema": "chex-campaign-report-v9", "jobs": []})", doc,
        nullptr));
    driver::CampaignReport report;
    std::string err;
    EXPECT_FALSE(driver::fromJson(doc, report, &err));
    EXPECT_NE(err.find("schema"), std::string::npos) << err;
}

TEST(SpecHash, DeterministicAndSensitiveToEveryInput)
{
    driver::JobSpec a;
    a.profile = tinyProfile();
    uint64_t h = driver::specHash(a, 42);
    EXPECT_NE(h, 0u); // 0 is the uncacheable sentinel
    EXPECT_EQ(h, driver::specHash(a, 42));
    EXPECT_NE(h, driver::specHash(a, 43)); // seed feeds the hash

    driver::JobSpec b = a;
    b.profile.iterations += 1;
    EXPECT_NE(driver::specHash(b, 42), h);

    driver::JobSpec c = a;
    c.config.variant.kind = VariantKind::Asan;
    EXPECT_NE(driver::specHash(c, 42), h);

    driver::JobSpec d = a;
    d.config.capCacheEntries *= 2;
    EXPECT_NE(driver::specHash(d, 42), h);

    driver::JobSpec e = a;
    e.config.aliasPredictor.entries *= 2;
    EXPECT_NE(driver::specHash(e, 42), h);

    // Positional/cosmetic fields do not participate: the same point
    // hashes identically no matter where it sits in the job list.
    driver::JobSpec f = a;
    f.label = "renamed";
    f.repetition = 5;
    EXPECT_EQ(driver::specHash(f, 42), h);
}

TEST(SpecHash, HexRoundTrips)
{
    const uint64_t h = 0xdeadbeef01234567ull;
    std::string hex = driver::specHashHex(h);
    EXPECT_EQ(hex.size(), 16u);
    EXPECT_EQ(driver::specHashFromHex(hex), h);
    EXPECT_EQ(driver::specHashHex(0), "0000000000000000");
    // Malformed hex parses to the uncacheable sentinel, not garbage.
    EXPECT_EQ(driver::specHashFromHex(""), 0u);
    EXPECT_EQ(driver::specHashFromHex("zz"), 0u);
    EXPECT_EQ(driver::specHashFromHex("123"), 0u);
}

TEST(Cache, SecondRunIsFullySatisfiedAndBitIdentical)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 5;
    driver::CampaignReport first = driver::runCampaign(jobs, opts);
    ASSERT_EQ(first.jobsFailed, 0u);
    EXPECT_EQ(first.jobsCached, 0u);

    // Round-trip the prior report through JSON exactly like a real
    // --cache file would travel.
    std::ostringstream ss;
    driver::writeReport(first, ss);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;
    driver::CampaignReport prior;
    ASSERT_TRUE(driver::fromJson(doc, prior, &err)) << err;

    driver::CampaignOptions cached = opts;
    cached.cacheReports.push_back(prior);
    size_t done_calls = 0;
    cached.onJobDone = [&](const driver::JobResult &jr) {
        EXPECT_TRUE(jr.cached);
        ++done_calls;
    };
    driver::CampaignReport second = driver::runCampaign(jobs, cached);

    EXPECT_EQ(second.jobsCached, jobs.size());
    EXPECT_EQ(second.jobsFailed, 0u);
    EXPECT_EQ(done_calls, jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(first.jobs[i].label);
        EXPECT_TRUE(second.jobs[i].cached);
        EXPECT_EQ(second.jobs[i].attempts, 0u);
        EXPECT_DOUBLE_EQ(second.jobs[i].wallSeconds, 0.0);
        EXPECT_EQ(second.jobs[i].seed, first.jobs[i].seed);
        EXPECT_EQ(second.jobs[i].specHash, first.jobs[i].specHash);
        EXPECT_EQ(second.jobs[i].run.cycles, first.jobs[i].run.cycles);
        EXPECT_EQ(second.jobs[i].run.uops, first.jobs[i].run.uops);
        EXPECT_EQ(second.jobs[i].run.macroOps,
                  first.jobs[i].run.macroOps);
        EXPECT_DOUBLE_EQ(second.jobs[i].run.ipc,
                         first.jobs[i].run.ipc);
        EXPECT_EQ(second.jobs[i].run.capChecksInjected,
                  first.jobs[i].run.capChecksInjected);
    }
}

TEST(Cache, MissesOnSpecSeedAndScaleChanges)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 5;
    driver::CampaignReport first = driver::runCampaign(jobs, opts);
    ASSERT_EQ(first.jobsFailed, 0u);

    driver::CampaignOptions with_cache = opts;
    with_cache.cacheReports.push_back(first);

    // A profile-parameter change invalidates every hit.
    std::vector<driver::JobSpec> tweaked = jobs;
    for (driver::JobSpec &j : tweaked)
        j.profile.iterations += 100;
    driver::CampaignReport r1 =
        driver::runCampaign(tweaked, with_cache);
    EXPECT_EQ(r1.jobsCached, 0u);

    // A different campaign seed derives different workload seeds.
    driver::CampaignOptions reseeded = with_cache;
    reseeded.seed = 6;
    driver::CampaignReport r2 = driver::runCampaign(jobs, reseeded);
    EXPECT_EQ(r2.jobsCached, 0u);

    // A scale change (what CHEX_BENCH_SCALE does to a matrix)
    // rewrites the iteration counts, so nothing matches either.
    std::vector<driver::JobSpec> scaled = jobs;
    for (driver::JobSpec &j : scaled)
        j.profile = j.profile.scaledBy(2);
    ASSERT_NE(scaled[0].profile.iterations,
              jobs[0].profile.iterations);
    driver::CampaignReport r3 =
        driver::runCampaign(scaled, with_cache);
    EXPECT_EQ(r3.jobsCached, 0u);
}

TEST(Cache, FailedPriorJobsNeverSatisfy)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs.resize(2);
    // A default-body job that fails deterministically: the macro-op
    // cap ends the run before the workload can exit, which runSpec
    // reports as an error. Its spec still hashes (no body override),
    // so this exercises the failed-entries-stay-out rule rather than
    // the uncacheable-sentinel path.
    jobs[1].config.maxMacroOps = 10;

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.seed = 9;
    driver::CampaignReport first = driver::runCampaign(jobs, opts);
    ASSERT_EQ(first.jobsFailed, 1u);
    ASSERT_TRUE(first.jobs[1].failed);
    EXPECT_NE(first.jobs[1].specHash, 0u);

    driver::CampaignOptions with_cache = opts;
    with_cache.cacheReports.push_back(first);
    driver::CampaignReport second =
        driver::runCampaign(jobs, with_cache);

    EXPECT_TRUE(second.jobs[0].cached);
    EXPECT_FALSE(second.jobs[1].cached);
    EXPECT_EQ(second.jobs[1].attempts, 1u);
    EXPECT_TRUE(second.jobs[1].failed); // re-ran, failed again
    EXPECT_EQ(second.jobsCached, 1u);
}

TEST(Cache, BodyOverrideJobsNeverHitTheCache)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs.resize(2);
    // The body computes exactly what the default would, but the
    // driver cannot know that: a std::function's content is opaque,
    // so the job must be uncacheable in both directions.
    jobs[1].body = [](const driver::JobSpec &spec,
                      uint64_t seed) -> RunResult {
        System sys(spec.config);
        sys.load(generateWorkload(spec.profile, seed));
        return sys.run();
    };

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.seed = 5;
    driver::CampaignReport first = driver::runCampaign(jobs, opts);
    ASSERT_EQ(first.jobsFailed, 0u);
    EXPECT_EQ(first.jobs[1].specHash, 0u);

    driver::CampaignOptions with_cache = opts;
    with_cache.cacheReports.push_back(first);
    driver::CampaignReport second =
        driver::runCampaign(jobs, with_cache);

    EXPECT_TRUE(second.jobs[0].cached);
    EXPECT_FALSE(second.jobs[1].cached);
    EXPECT_EQ(second.jobs[1].attempts, 1u);
    EXPECT_EQ(second.jobsCached, 1u);
}

/** Run eightJobs() as @p count shards and return the shard reports. */
std::vector<driver::CampaignReport>
runSharded(const std::vector<driver::JobSpec> &jobs, unsigned count,
           uint64_t seed)
{
    std::vector<driver::CampaignReport> shards;
    for (unsigned i = 0; i < count; ++i) {
        driver::CampaignOptions opts;
        opts.workers = 2;
        opts.seed = seed;
        opts.shardIndex = i;
        opts.shardCount = count;
        shards.push_back(driver::runCampaign(jobs, opts));
    }
    return shards;
}

TEST(Shard, OutOfShardJobsBecomeSkippedPlaceholders)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 7;
    opts.shardIndex = 1;
    opts.shardCount = 2;
    size_t done_calls = 0;
    opts.onJobDone = [&](const driver::JobResult &jr) {
        EXPECT_FALSE(jr.skipped); // placeholders never reach the hook
        ++done_calls;
    };
    driver::CampaignReport report = driver::runCampaign(jobs, opts);

    EXPECT_EQ(report.shardIndex, 1u);
    EXPECT_EQ(report.shardCount, 2u);
    EXPECT_EQ(report.jobsSkipped, 4u);
    EXPECT_EQ(report.jobsRun, 4u);
    EXPECT_EQ(done_calls, 4u);
    ASSERT_EQ(report.jobs.size(), jobs.size());
    for (size_t i = 0; i < report.jobs.size(); ++i) {
        SCOPED_TRACE(i);
        EXPECT_EQ(report.jobs[i].index, i);
        EXPECT_EQ(report.jobs[i].skipped, i % 2 != 1);
        if (report.jobs[i].skipped) {
            // Identity fields survive for merge validation; nothing
            // was simulated.
            EXPECT_EQ(report.jobs[i].label, jobs[i].label);
            EXPECT_NE(report.jobs[i].seed, 0u);
            EXPECT_EQ(report.jobs[i].attempts, 0u);
            EXPECT_FALSE(report.jobs[i].cached);
            EXPECT_EQ(report.jobs[i].run.cycles, 0u);
        }
    }
}

TEST(Shard, UnionOfShardsIsBitIdenticalToUnsharded)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 7;
    driver::CampaignReport whole = driver::runCampaign(jobs, opts);
    ASSERT_EQ(whole.jobsFailed, 0u);

    std::vector<driver::CampaignReport> shards =
        runSharded(jobs, 3, 7);

    driver::CampaignReport merged;
    std::string err;
    ASSERT_TRUE(driver::mergeReports(shards, merged, &err)) << err;

    EXPECT_EQ(merged.seed, whole.seed);
    EXPECT_EQ(merged.shardIndex, 0u);
    EXPECT_EQ(merged.shardCount, 1u);
    EXPECT_EQ(merged.jobsSkipped, 0u);
    EXPECT_EQ(merged.jobsRun, whole.jobsRun);
    EXPECT_EQ(merged.jobsFailed, whole.jobsFailed);
    EXPECT_EQ(merged.totalCycles, whole.totalCycles);
    EXPECT_EQ(merged.totalUops, whole.totalUops);
    ASSERT_EQ(merged.jobs.size(), whole.jobs.size());
    for (size_t i = 0; i < whole.jobs.size(); ++i) {
        SCOPED_TRACE(whole.jobs[i].label);
        EXPECT_FALSE(merged.jobs[i].skipped);
        EXPECT_EQ(merged.jobs[i].index, i);
        EXPECT_EQ(merged.jobs[i].seed, whole.jobs[i].seed);
        EXPECT_EQ(merged.jobs[i].specHash, whole.jobs[i].specHash);
        EXPECT_EQ(merged.jobs[i].run.cycles,
                  whole.jobs[i].run.cycles);
        EXPECT_EQ(merged.jobs[i].run.uops, whole.jobs[i].run.uops);
        EXPECT_EQ(merged.jobs[i].run.macroOps,
                  whole.jobs[i].run.macroOps);
        EXPECT_DOUBLE_EQ(merged.jobs[i].run.ipc,
                         whole.jobs[i].run.ipc);
    }
}

TEST(Shard, ShardReportJsonRoundTrips)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 3;
    opts.shardIndex = 0;
    opts.shardCount = 2;
    driver::CampaignReport report = driver::runCampaign(jobs, opts);

    std::ostringstream ss;
    driver::writeReport(report, ss);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;
    EXPECT_EQ(doc.at("schema").str(), "chex-campaign-report-v6");
    EXPECT_EQ(doc.at("shard").at("index").number(), 0.0);
    EXPECT_EQ(doc.at("shard").at("count").number(), 2.0);
    EXPECT_EQ(doc.at("summary").at("jobsSkipped").number(), 4.0);
    const json::Value &jarr = doc.at("jobs");
    ASSERT_EQ(jarr.size(), jobs.size());
    for (size_t i = 0; i < jarr.size(); ++i) {
        SCOPED_TRACE(i);
        const json::Value &job = jarr.at(i);
        EXPECT_EQ(job.at("status").str(),
                  i % 2 == 0 ? "ok" : "skipped");
        if (i % 2 != 0)
            EXPECT_EQ(job.find("result"), nullptr);
    }

    driver::CampaignReport back;
    ASSERT_TRUE(driver::fromJson(doc, back, &err)) << err;
    EXPECT_EQ(back.shardIndex, 0u);
    EXPECT_EQ(back.shardCount, 2u);
    EXPECT_EQ(back.jobsSkipped, 4u);
    ASSERT_EQ(back.jobs.size(), report.jobs.size());
    for (size_t i = 0; i < back.jobs.size(); ++i) {
        EXPECT_EQ(back.jobs[i].skipped, report.jobs[i].skipped);
        EXPECT_EQ(back.jobs[i].seed, report.jobs[i].seed);
        EXPECT_EQ(back.jobs[i].run.cycles, report.jobs[i].run.cycles);
    }
}

TEST(Shard, FromJsonRejectsBadShardGeometry)
{
    const char *base = R"({
      "schema": "chex-campaign-report-v4",
      "seed": 1, "workers": 1,
      "shard": {"index": %s, "count": %s},
      "summary": {"jobsRun": 0, "jobsFailed": 0,
                  "wallSeconds": 0, "serialSeconds": 0,
                  "speedupVsSerial": 0, "totalCycles": 0,
                  "totalUops": 0, "aggregateIpc": 0},
      "jobs": []
    })";
    for (auto [index, count] : {std::pair<const char *, const char *>
                                    {"2", "2"},
                                {"0", "0"}}) {
        char buf[512];
        std::snprintf(buf, sizeof(buf), base, index, count);
        json::Value doc;
        ASSERT_TRUE(json::Value::parse(buf, doc, nullptr));
        driver::CampaignReport report;
        std::string err;
        EXPECT_FALSE(driver::fromJson(doc, report, &err));
        EXPECT_NE(err.find("shard"), std::string::npos) << err;
    }
}

TEST(Merge, RejectsMismatchedSeeds)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    std::vector<driver::CampaignReport> shards =
        runSharded(jobs, 2, 7);
    driver::CampaignOptions other;
    other.workers = 2;
    other.seed = 8; // different campaign seed
    other.shardIndex = 1;
    other.shardCount = 2;
    shards[1] = driver::runCampaign(jobs, other);

    driver::CampaignReport merged;
    std::string err;
    EXPECT_FALSE(driver::mergeReports(shards, merged, &err));
    EXPECT_NE(err.find("seed"), std::string::npos) << err;
}

TEST(Merge, RejectsOverlappingShards)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    std::vector<driver::CampaignReport> shards =
        runSharded(jobs, 2, 7);
    shards[1] = shards[0]; // the same shard twice

    driver::CampaignReport merged;
    std::string err;
    EXPECT_FALSE(driver::mergeReports(shards, merged, &err));
    EXPECT_NE(err.find("overlap"), std::string::npos) << err;
}

TEST(Merge, RejectsIncompleteShardSet)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    std::vector<driver::CampaignReport> shards =
        runSharded(jobs, 3, 7);
    shards.pop_back(); // shard 2 of 3 missing

    driver::CampaignReport merged;
    std::string err;
    EXPECT_FALSE(driver::mergeReports(shards, merged, &err));
    EXPECT_NE(err.find("incomplete"), std::string::npos) << err;
}

TEST(Merge, RejectsDisagreeingJobIdentity)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    std::vector<driver::CampaignReport> shards =
        runSharded(jobs, 2, 7);
    // The shards were really run against different job lists: the
    // identity fields of any common index disagree.
    shards[1].jobs[0].specHash ^= 1;

    driver::CampaignReport merged;
    std::string err;
    EXPECT_FALSE(driver::mergeReports(shards, merged, &err));
    EXPECT_NE(err.find("options"), std::string::npos) << err;
}

TEST(Merge, RejectsEmptyInput)
{
    driver::CampaignReport merged;
    std::string err;
    EXPECT_FALSE(driver::mergeReports({}, merged, &err));
    EXPECT_FALSE(err.empty());
}

TEST(Merge, MergedReportSatisfiesTheCache)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    std::vector<driver::CampaignReport> shards =
        runSharded(jobs, 2, 7);

    driver::CampaignReport merged;
    std::string err;
    ASSERT_TRUE(driver::mergeReports(shards, merged, &err)) << err;

    // Round-trip through JSON exactly like `merge --out` + `run
    // --cache` would, then re-run unsharded against the cache.
    std::ostringstream ss;
    driver::writeReport(merged, ss);
    json::Value doc;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;
    driver::CampaignReport prior;
    ASSERT_TRUE(driver::fromJson(doc, prior, &err)) << err;

    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 7;
    opts.cacheReports.push_back(prior);
    driver::CampaignReport second = driver::runCampaign(jobs, opts);

    EXPECT_EQ(second.jobsCached, jobs.size());
    EXPECT_EQ(second.jobsFailed, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(second.jobs[i].label);
        EXPECT_TRUE(second.jobs[i].cached);
        EXPECT_EQ(second.jobs[i].run.cycles, merged.jobs[i].run.cycles);
    }
}

TEST(BenchEnv, GeomeanSkipsNonPositiveValues)
{
    EXPECT_DOUBLE_EQ(bench::geomean({2.0, 8.0}), 4.0);
    // Zeros and negatives have no logarithm: they are skipped, not
    // allowed to poison the mean with -inf/NaN.
    EXPECT_DOUBLE_EQ(bench::geomean({2.0, 0.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(bench::geomean({-1.0, 2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(bench::geomean({0.0, -3.0}), 0.0);
    EXPECT_DOUBLE_EQ(bench::geomean({}), 0.0);
}

TEST(BenchEnv, KnobParsingValidatesAndClamps)
{
    setenv("CHEX_BENCH_SCALE", "garbage", 1);
    EXPECT_EQ(bench::scale(), 1u);
    setenv("CHEX_BENCH_SCALE", "0", 1);
    EXPECT_EQ(bench::scale(), 1u);
    setenv("CHEX_BENCH_SCALE", "-5", 1);
    EXPECT_EQ(bench::scale(), 1u);
    setenv("CHEX_BENCH_SCALE", "7x", 1);
    EXPECT_EQ(bench::scale(), 1u);
    setenv("CHEX_BENCH_SCALE", "12", 1);
    EXPECT_EQ(bench::scale(), 12u);
    unsetenv("CHEX_BENCH_SCALE");
    EXPECT_EQ(bench::scale(), 1u);

    setenv("CHEX_BENCH_JOBS", "-2", 1);
    EXPECT_GE(bench::benchJobs(), 1u);
    setenv("CHEX_BENCH_JOBS", "0", 1);
    EXPECT_GE(bench::benchJobs(), 1u);
    setenv("CHEX_BENCH_JOBS", "3", 1);
    EXPECT_EQ(bench::benchJobs(), 3u);
    unsetenv("CHEX_BENCH_JOBS");
    EXPECT_GE(bench::benchJobs(), 1u);

    setenv("CHEX_BENCH_TIMEOUT", "abc", 1);
    EXPECT_EQ(bench::benchTimeout(), 0.0);
    setenv("CHEX_BENCH_TIMEOUT", "-1", 1);
    EXPECT_EQ(bench::benchTimeout(), 0.0);
    setenv("CHEX_BENCH_TIMEOUT", "2.5", 1);
    EXPECT_EQ(bench::benchTimeout(), 2.5);
    unsetenv("CHEX_BENCH_TIMEOUT");
    EXPECT_EQ(bench::benchTimeout(), 0.0);

    setenv("CHEX_BENCH_ISOLATE", "1", 1);
    EXPECT_TRUE(bench::benchIsolate());
    setenv("CHEX_BENCH_ISOLATE", "0", 1);
    EXPECT_FALSE(bench::benchIsolate());
    unsetenv("CHEX_BENCH_ISOLATE");
    EXPECT_FALSE(bench::benchIsolate());
}

TEST(BenchEnv, ParseShardSpec)
{
    unsigned index = 99, count = 99;
    std::string err;
    EXPECT_TRUE(driver::parseShardSpec("0/2", index, count, &err));
    EXPECT_EQ(index, 0u);
    EXPECT_EQ(count, 2u);
    EXPECT_TRUE(driver::parseShardSpec("1/2", index, count));
    EXPECT_EQ(index, 1u);
    EXPECT_EQ(count, 2u);
    EXPECT_TRUE(driver::parseShardSpec("0/1", index, count));

    // Rejections must not clobber the outputs.
    index = 1;
    count = 2;
    for (const char *bad : {"", "0", "/", "0/", "/2", "x/2", "0/y",
                            "0/2x", "-1/2", "1/-2", "0/0", "2/2",
                            "3/2", "0 /2"}) {
        SCOPED_TRACE(bad);
        err.clear();
        EXPECT_FALSE(
            driver::parseShardSpec(bad, index, count, &err));
        EXPECT_FALSE(err.empty());
        EXPECT_EQ(index, 1u);
        EXPECT_EQ(count, 2u);
    }
}

TEST(BenchEnv, ShardKnobParsesAndFallsBackUnsharded)
{
    setenv("CHEX_BENCH_SHARD", "1/3", 1);
    driver::EnvOptions env = driver::optionsFromEnv();
    EXPECT_EQ(env.shardIndex, 1u);
    EXPECT_EQ(env.shardCount, 3u);

    // Garbage and out-of-range specs warn and run unsharded rather
    // than silently simulating the wrong subset.
    for (const char *bad : {"nonsense", "3/3", "1", "0/0"}) {
        SCOPED_TRACE(bad);
        setenv("CHEX_BENCH_SHARD", bad, 1);
        env = driver::optionsFromEnv();
        EXPECT_EQ(env.shardIndex, 0u);
        EXPECT_EQ(env.shardCount, 1u);
    }

    unsetenv("CHEX_BENCH_SHARD");
    env = driver::optionsFromEnv();
    EXPECT_EQ(env.shardIndex, 0u);
    EXPECT_EQ(env.shardCount, 1u);

    // applyTo carries the env knobs onto CampaignOptions.
    setenv("CHEX_BENCH_SHARD", "2/4", 1);
    driver::CampaignOptions opts;
    driver::optionsFromEnv().applyTo(opts);
    EXPECT_EQ(opts.shardIndex, 2u);
    EXPECT_EQ(opts.shardCount, 4u);
    unsetenv("CHEX_BENCH_SHARD");
}

TEST(Report, ViolationRecordsSerialized)
{
    // An out-of-bounds workload: single run through the serializer.
    driver::JobSpec spec;
    spec.profile = tinyProfile();
    spec.body = [](const driver::JobSpec &s, uint64_t) -> RunResult {
        System sys(s.config);
        Program prog = generateSmokeProgram(2, 64);
        sys.load(prog);
        return sys.run();
    };
    driver::CampaignReport r = driver::runCampaign({spec}, {});
    ASSERT_EQ(r.jobs.size(), 1u);

    json::Value job = driver::toJson(r.jobs[0]);
    const json::Value &res = job.at("result");
    ASSERT_TRUE(res.at("violations").isArray());
    for (size_t i = 0; i < res.at("violations").size(); ++i) {
        const json::Value &v = res.at("violations").at(i);
        EXPECT_TRUE(v.find("kind"));
        EXPECT_TRUE(v.find("pc"));
        EXPECT_TRUE(v.find("addr"));
    }
}

TEST(Report, SystemDumpStatsJsonParses)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.load(generateWorkload(tinyProfile(), 5));
    RunResult r = sys.run();
    ASSERT_TRUE(r.exited);

    std::ostringstream ss;
    sys.dumpStatsJson(ss);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;
    const json::Value &system = doc.at("system");
    EXPECT_GT(system.at("core").at("cycles").number(), 0.0);
    EXPECT_EQ(system.at("core").at("cycles").number(),
              double(r.cycles));
}

// --- snapshot-fanned campaigns and record/replay -------------------

/**
 * A pinned-seed (registered-profile x variant) job list: exactly
 * what `chex-campaign run` builds for a single-rep campaign, and
 * the only shape the replay planner can reconstruct from a report.
 */
std::vector<driver::JobSpec>
pinnedMatrix(uint64_t seed, uint64_t scale)
{
    const char *names[] = {"mcf", "lbm"};
    const VariantKind kinds[] = {VariantKind::Baseline,
                                 VariantKind::MicrocodePrediction};
    std::vector<driver::JobSpec> jobs;
    for (const char *name : names) {
        for (VariantKind kind : kinds) {
            driver::JobSpec spec;
            spec.label = std::string(name) + "/" + variantName(kind);
            spec.profile = profileByName(name).scaledBy(scale);
            spec.config.variant.kind = kind;
            spec.workloadSeed = seed;
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

/** Warm every job point like `chex-campaign snapshot` does. */
std::shared_ptr<const snapshot::Bundle>
bundleFor(const std::vector<driver::JobSpec> &specs, uint64_t seed,
          uint64_t warmup)
{
    snapshot::Bundle b;
    b.campaignSeed = seed;
    b.warmupMacros = warmup;
    for (const driver::JobSpec &spec : specs) {
        snapshot::MachineEntry entry;
        std::string err;
        EXPECT_TRUE(snapshot::buildEntry(
            spec.profile, spec.config, seed, warmup,
            driver::specHash(spec, seed), &entry, &err))
            << spec.label << ": " << err;
        b.entries.push_back(std::move(entry));
    }
    return std::make_shared<const snapshot::Bundle>(std::move(b));
}

TEST(SnapshotCampaign, FanOutIsBitIdenticalAndFoldsSpecHashes)
{
    const uint64_t seed = 9;
    std::vector<driver::JobSpec> jobs = pinnedMatrix(seed, 50);

    driver::CampaignOptions scratch;
    scratch.workers = 2;
    scratch.seed = seed;
    driver::CampaignReport a = driver::runCampaign(jobs, scratch);
    ASSERT_EQ(a.jobsFailed, 0u);
    EXPECT_EQ(a.jobsFromSnapshot, 0u);

    driver::CampaignOptions fanned = scratch;
    fanned.snapshot = bundleFor(jobs, seed, 500);
    driver::CampaignReport b = driver::runCampaign(jobs, fanned);
    ASSERT_EQ(b.jobsFailed, 0u);
    EXPECT_EQ(b.jobsFromSnapshot, jobs.size());

    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (size_t i = 0; i < a.jobs.size(); ++i) {
        SCOPED_TRACE(a.jobs[i].label);
        EXPECT_FALSE(a.jobs[i].fromSnapshot);
        EXPECT_TRUE(b.jobs[i].fromSnapshot);
        // The restored warm-up prefix must not perturb anything the
        // run measures.
        EXPECT_EQ(a.jobs[i].run.cycles, b.jobs[i].run.cycles);
        EXPECT_EQ(a.jobs[i].run.uops, b.jobs[i].run.uops);
        EXPECT_EQ(a.jobs[i].run.macroOps, b.jobs[i].run.macroOps);
        EXPECT_EQ(a.jobs[i].run.ipc, b.jobs[i].run.ipc);
        EXPECT_EQ(a.jobs[i].run.capChecksInjected,
                  b.jobs[i].run.capChecksInjected);
        EXPECT_EQ(a.jobs[i].run.violationDetected,
                  b.jobs[i].run.violationDetected);
        // ... but the simulation point identity must differ: the
        // snapshot's state digest is folded into the spec hash.
        EXPECT_NE(a.jobs[i].specHash, b.jobs[i].specHash);
        EXPECT_NE(b.jobs[i].specHash, 0u);
    }
}

TEST(SnapshotCampaign, FoldedHashesKeepTheCacheModesApart)
{
    const uint64_t seed = 9;
    std::vector<driver::JobSpec> jobs = pinnedMatrix(seed, 50);
    std::shared_ptr<const snapshot::Bundle> bundle =
        bundleFor(jobs, seed, 500);

    driver::CampaignOptions scratch;
    scratch.workers = 2;
    scratch.seed = seed;
    driver::CampaignReport from_scratch =
        driver::runCampaign(jobs, scratch);

    driver::CampaignOptions fanned = scratch;
    fanned.snapshot = bundle;
    driver::CampaignReport from_snapshot =
        driver::runCampaign(jobs, fanned);

    // A from-scratch report must not satisfy a snapshot campaign...
    driver::CampaignOptions fanned_cached = fanned;
    fanned_cached.cacheReports = {from_scratch};
    driver::CampaignReport r1 =
        driver::runCampaign(jobs, fanned_cached);
    EXPECT_EQ(r1.jobsCached, 0u);
    EXPECT_EQ(r1.jobsFromSnapshot, jobs.size());

    // ... nor a snapshot report a from-scratch campaign ...
    driver::CampaignOptions scratch_cached = scratch;
    scratch_cached.cacheReports = {from_snapshot};
    driver::CampaignReport r2 =
        driver::runCampaign(jobs, scratch_cached);
    EXPECT_EQ(r2.jobsCached, 0u);

    // ... while the matching mode is a full cache hit.
    driver::CampaignOptions fanned_self = fanned;
    fanned_self.cacheReports = {from_snapshot};
    driver::CampaignReport r3 =
        driver::runCampaign(jobs, fanned_self);
    EXPECT_EQ(r3.jobsCached, jobs.size());
}

TEST(SnapshotCampaign, ReportV5RoundTripsFromSnapshotFlag)
{
    const uint64_t seed = 9;
    std::vector<driver::JobSpec> jobs = pinnedMatrix(seed, 50);
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = seed;
    opts.snapshot = bundleFor(jobs, seed, 500);
    driver::CampaignReport report = driver::runCampaign(jobs, opts);
    ASSERT_EQ(report.jobsFromSnapshot, jobs.size());

    std::ostringstream ss;
    driver::writeReport(report, ss);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;
    EXPECT_EQ(doc.at("schema").str(), "chex-campaign-report-v6");
    EXPECT_EQ(doc.at("summary").at("jobsFromSnapshot").number(),
              double(jobs.size()));
    for (size_t i = 0; i < doc.at("jobs").size(); ++i)
        EXPECT_TRUE(doc.at("jobs").at(i).at("fromSnapshot").boolean());

    driver::CampaignReport back;
    ASSERT_TRUE(driver::fromJson(doc, back, &err)) << err;
    EXPECT_EQ(back.jobsFromSnapshot, report.jobsFromSnapshot);
    for (size_t i = 0; i < back.jobs.size(); ++i) {
        EXPECT_TRUE(back.jobs[i].fromSnapshot);
        EXPECT_EQ(back.jobs[i].specHash, report.jobs[i].specHash);
    }
}

TEST(Replay, ReproducesRecordedTimeoutFailure)
{
    const uint64_t seed = 5;
    driver::JobSpec spec;
    spec.label = "mcf/CHEx86: Micro-code Prediction Driven";
    spec.profile = profileByName("mcf").scaledBy(50);
    spec.config.variant.kind = VariantKind::MicrocodePrediction;
    spec.workloadSeed = seed;

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.seed = seed;
    opts.isolation = true;
    opts.timeoutSeconds = 1e-4; // far below any real job's runtime
    driver::CampaignReport report = driver::runCampaign({spec}, opts);
    ASSERT_EQ(report.jobs.size(), 1u);
    ASSERT_TRUE(report.jobs[0].failed);
    ASSERT_EQ(report.jobs[0].cause, driver::FailureCause::Timeout);

    // Round-trip through JSON like `replay --report` does: the plan
    // is built from the written report, not in-memory state.
    std::ostringstream ss;
    driver::writeReport(report, ss);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;
    driver::CampaignReport loaded;
    ASSERT_TRUE(driver::fromJson(doc, loaded, &err)) << err;

    size_t row = 0;
    ASSERT_TRUE(driver::selectReplayRow(loaded, std::nullopt, &row,
                                        &err))
        << err;
    EXPECT_EQ(row, 0u);
    driver::ReplayPlan plan;
    ASSERT_TRUE(driver::planReplay(loaded, row, SystemConfig{}, 50,
                                   nullptr, &plan, &err))
        << err;
    EXPECT_EQ(plan.spec.label, spec.label);
    EXPECT_FALSE(plan.fromSnapshot);

    // Same watchdog → the recorded failure cause reproduces.
    driver::CampaignReport rerun =
        driver::runCampaign({plan.spec}, opts);
    ASSERT_EQ(rerun.jobs.size(), 1u);
    std::string detail;
    EXPECT_TRUE(driver::outcomeReproduced(loaded.jobs[0],
                                          rerun.jobs[0], &detail))
        << detail;
    EXPECT_EQ(rerun.jobs[0].cause, driver::FailureCause::Timeout);

    // Relaxed watchdog → the job passes and the divergence is loud.
    driver::CampaignOptions relaxed = opts;
    relaxed.timeoutSeconds = 300.0;
    driver::CampaignReport passed =
        driver::runCampaign({plan.spec}, relaxed);
    ASSERT_EQ(passed.jobsFailed, 0u);
    EXPECT_FALSE(driver::outcomeReproduced(loaded.jobs[0],
                                           passed.jobs[0], &detail));
    EXPECT_NE(detail.find("OUTCOME DIFFERS"), std::string::npos)
        << detail;
}

TEST(Replay, PlansFromSnapshotRowsOnlyWithTheirBundle)
{
    const uint64_t seed = 9;
    std::vector<driver::JobSpec> jobs = pinnedMatrix(seed, 50);
    std::shared_ptr<const snapshot::Bundle> bundle =
        bundleFor(jobs, seed, 500);

    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = seed;
    opts.snapshot = bundle;
    driver::CampaignReport report = driver::runCampaign(jobs, opts);
    ASSERT_EQ(report.jobsFromSnapshot, jobs.size());

    std::string err;
    driver::ReplayPlan plan;
    // Without the bundle the row cannot be reconstructed.
    EXPECT_FALSE(driver::planReplay(report, 0, SystemConfig{}, 50,
                                    nullptr, &plan, &err));
    EXPECT_NE(err.find("bundle"), std::string::npos) << err;
    // With it, the plan verifies against the folded hash and the
    // replayed job is bit-identical to the campaign row.
    ASSERT_TRUE(driver::planReplay(report, 0, SystemConfig{}, 50,
                                   bundle.get(), &plan, &err))
        << err;
    EXPECT_TRUE(plan.fromSnapshot);
    driver::CampaignReport rerun =
        driver::runCampaign({plan.spec}, opts);
    ASSERT_EQ(rerun.jobsFailed, 0u);
    EXPECT_EQ(rerun.jobs[0].specHash, report.jobs[0].specHash);
    EXPECT_EQ(rerun.jobs[0].run.cycles, report.jobs[0].run.cycles);
}

TEST(Replay, RefusesUnreconstructibleRows)
{
    const uint64_t seed = 9;
    std::vector<driver::JobSpec> jobs = pinnedMatrix(seed, 50);

    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = seed;
    driver::CampaignReport report = driver::runCampaign(jobs, opts);
    ASSERT_EQ(report.jobsFailed, 0u);

    std::string err;
    size_t row = 0;
    // No failed rows and no explicit index: nothing to replay.
    EXPECT_FALSE(driver::selectReplayRow(report, std::nullopt, &row,
                                         &err));
    EXPECT_NE(err.find("no failed jobs"), std::string::npos) << err;
    // Out-of-range explicit index.
    EXPECT_FALSE(driver::selectReplayRow(report, size_t{99}, &row,
                                         &err));
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;

    driver::ReplayPlan plan;
    // A wrong --scale reconstructs a different simulation point;
    // the hash check refuses it instead of silently replaying it.
    EXPECT_FALSE(driver::planReplay(report, 0, SystemConfig{}, 7,
                                    nullptr, &plan, &err));
    EXPECT_NE(err.find("does not match"), std::string::npos) << err;

    // Body-override jobs have no reconstructible spec (hash 0).
    driver::JobSpec custom;
    custom.label = "custom";
    custom.profile = tinyProfile();
    custom.body = [](const driver::JobSpec &s, uint64_t sd) {
        System sys(s.config);
        sys.load(generateWorkload(s.profile, sd));
        return sys.run();
    };
    driver::CampaignReport cr =
        driver::runCampaign({custom}, opts);
    EXPECT_FALSE(driver::planReplay(cr, 0, SystemConfig{}, 1,
                                    nullptr, &plan, &err));
    EXPECT_NE(err.find("custom job body"), std::string::npos) << err;

    // Skipped rows of a sharded report never ran here.
    driver::CampaignOptions sharded = opts;
    sharded.shardIndex = 0;
    sharded.shardCount = 2;
    driver::CampaignReport shard = driver::runCampaign(jobs, sharded);
    ASSERT_TRUE(shard.jobs[1].skipped);
    EXPECT_FALSE(driver::planReplay(shard, 1, SystemConfig{}, 50,
                                    nullptr, &plan, &err));
    EXPECT_NE(err.find("shard"), std::string::npos) << err;
}

} // namespace
} // namespace chex

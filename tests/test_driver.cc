/**
 * @file
 * Campaign-driver tests: scheduling-independent determinism (an
 * N-thread campaign reproduces the 1-thread campaign bit for bit),
 * per-job failure isolation and bounded retry, seed derivation, the
 * JSON value type (writer + parser round trip), and the campaign
 * report / single-run stats serialization.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "base/json.hh"
#include "driver/campaign.hh"
#include "driver/report.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace
{

/** A tiny profile so each job runs in milliseconds. */
BenchmarkProfile
tinyProfile(const char *name = "tiny")
{
    BenchmarkProfile p;
    p.name = name;
    p.totalAllocations = 40;
    p.maxLiveBuffers = 16;
    p.buffersInUse = 4;
    p.iterations = 400;
    p.scheduleLength = 128;
    return p;
}

/** An 8-job campaign mixing variants and repetitions. */
std::vector<driver::JobSpec>
eightJobs()
{
    const VariantKind kinds[] = {
        VariantKind::Baseline,
        VariantKind::MicrocodePrediction,
        VariantKind::MicrocodeAlwaysOn,
        VariantKind::Asan,
    };
    std::vector<driver::JobSpec> jobs;
    for (unsigned rep = 0; rep < 2; ++rep) {
        for (VariantKind kind : kinds) {
            driver::JobSpec spec;
            spec.label = std::string(variantName(kind)) + "#" +
                         std::to_string(rep);
            spec.profile = tinyProfile();
            spec.config.variant.kind = kind;
            spec.repetition = rep;
            // No pinned seed: derived from (campaign seed, index).
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

TEST(JobSeed, DeterministicNonZeroAndSpread)
{
    EXPECT_EQ(driver::jobSeed(1, 0), driver::jobSeed(1, 0));
    std::set<uint64_t> seen;
    for (size_t i = 0; i < 100; ++i) {
        uint64_t s = driver::jobSeed(42, i);
        EXPECT_NE(s, 0u);
        seen.insert(s);
    }
    EXPECT_EQ(seen.size(), 100u); // no collisions in a small sweep
    EXPECT_NE(driver::jobSeed(1, 0), driver::jobSeed(2, 0));
}

TEST(Campaign, ParallelMatchesSerial)
{
    std::vector<driver::JobSpec> jobs = eightJobs();

    driver::CampaignOptions serial;
    serial.workers = 1;
    serial.seed = 7;
    driver::CampaignReport a = driver::runCampaign(jobs, serial);

    driver::CampaignOptions parallel;
    parallel.workers = 4;
    parallel.seed = 7;
    driver::CampaignReport b = driver::runCampaign(jobs, parallel);

    ASSERT_EQ(a.jobs.size(), jobs.size());
    ASSERT_EQ(b.jobs.size(), jobs.size());
    EXPECT_EQ(a.jobsFailed, 0u);
    EXPECT_EQ(b.jobsFailed, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(a.jobs[i].label);
        EXPECT_EQ(a.jobs[i].seed, b.jobs[i].seed);
        EXPECT_EQ(a.jobs[i].run.cycles, b.jobs[i].run.cycles);
        EXPECT_EQ(a.jobs[i].run.macroOps, b.jobs[i].run.macroOps);
        EXPECT_EQ(a.jobs[i].run.uops, b.jobs[i].run.uops);
        EXPECT_EQ(a.jobs[i].run.violations.size(),
                  b.jobs[i].run.violations.size());
        EXPECT_EQ(a.jobs[i].run.capChecksInjected,
                  b.jobs[i].run.capChecksInjected);
    }
}

TEST(Campaign, DerivedSeedsDifferAcrossRepetitions)
{
    driver::CampaignReport r =
        driver::runCampaign(eightJobs(), {});
    ASSERT_EQ(r.jobs.size(), 8u);
    // Same (profile, variant) point, different repetition => the
    // derived seeds differ, so the generated workloads are
    // statistically independent. (Cycle counts may still coincide
    // on a workload this small, so only the seeds are asserted.)
    EXPECT_NE(r.jobs[0].seed, r.jobs[4].seed);
}

TEST(Campaign, ThrowingJobIsIsolated)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs[3].body = [](const driver::JobSpec &, uint64_t) -> RunResult {
        throw std::runtime_error("injected fault");
    };

    driver::CampaignOptions opts;
    opts.workers = 2;
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    EXPECT_EQ(r.jobsRun, jobs.size());
    EXPECT_EQ(r.jobsFailed, 1u);
    EXPECT_TRUE(r.jobs[3].failed);
    EXPECT_EQ(r.jobs[3].error, "injected fault");
    EXPECT_EQ(r.jobs[3].attempts, 1u);
    for (size_t i = 0; i < jobs.size(); ++i) {
        if (i == 3)
            continue;
        EXPECT_FALSE(r.jobs[i].failed) << i;
        EXPECT_TRUE(r.jobs[i].run.exited) << i;
    }
}

TEST(Campaign, BoundedRetryRecovers)
{
    auto flaky_failures = std::make_shared<std::atomic<int>>(2);
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs[1].body = [flaky_failures](const driver::JobSpec &spec,
                                    uint64_t seed) -> RunResult {
        if (flaky_failures->fetch_sub(1) > 0)
            throw std::runtime_error("transient");
        System sys(spec.config);
        sys.load(generateWorkload(spec.profile, seed));
        return sys.run();
    };

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.maxAttempts = 3;
    driver::CampaignReport r = driver::runCampaign(jobs, opts);

    EXPECT_EQ(r.jobsFailed, 0u);
    EXPECT_EQ(r.jobs[1].attempts, 3u);
    EXPECT_TRUE(r.jobs[1].run.exited);
    EXPECT_EQ(r.jobs[0].attempts, 1u);
}

TEST(Campaign, SummaryAggregates)
{
    driver::CampaignReport r =
        driver::runCampaign(eightJobs(), {});
    EXPECT_EQ(r.jobsRun, 8u);
    EXPECT_EQ(r.jobsFailed, 0u);
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.totalUops, 0u);
    EXPECT_GT(r.aggregateIpc, 0.0);
    EXPECT_GT(r.wallSeconds, 0.0);
    EXPECT_GE(r.serialSeconds, 0.0);
}

TEST(Json, WriteParseRoundTrip)
{
    json::Value v = json::Value::object()
                        .set("int", uint64_t(1234567890123ull))
                        .set("neg", -3.5)
                        .set("flag", true)
                        .set("none", json::Value())
                        .set("text", "line\n\"quoted\"\ttab")
                        .set("arr", json::Value::array()
                                        .push(1)
                                        .push("two")
                                        .push(false));
    std::string text = v.dump(2);

    json::Value back;
    std::string err;
    ASSERT_TRUE(json::Value::parse(text, back, &err)) << err;
    EXPECT_EQ(back.at("int").number(), 1234567890123.0);
    EXPECT_EQ(back.at("neg").number(), -3.5);
    EXPECT_TRUE(back.at("flag").boolean());
    EXPECT_TRUE(back.at("none").isNull());
    EXPECT_EQ(back.at("text").str(), "line\n\"quoted\"\ttab");
    ASSERT_EQ(back.at("arr").size(), 3u);
    EXPECT_EQ(back.at("arr").at(size_t(1)).str(), "two");
    // Canonical re-dump is stable.
    EXPECT_EQ(back.dump(2), text);
}

TEST(Json, Uint64RoundTripsExactly)
{
    // Values above 2^53 (e.g. derived seeds) must not be flattened
    // through a double on the way to disk or back.
    const uint64_t big = 10451216379200823296ull;
    json::Value v = json::Value::object().set("seed", big);
    std::string text = v.dump();
    EXPECT_NE(text.find("10451216379200823296"), std::string::npos)
        << text;

    json::Value back;
    ASSERT_TRUE(json::Value::parse(text, back, nullptr));
    EXPECT_EQ(back.at("seed").asUint64(), big);
}

TEST(Json, ParserRejectsMalformed)
{
    json::Value out;
    EXPECT_FALSE(json::Value::parse("{", out));
    EXPECT_FALSE(json::Value::parse("[1,]", out));
    EXPECT_FALSE(json::Value::parse("{\"a\":1} trailing", out));
    EXPECT_FALSE(json::Value::parse("\"unterminated", out));
    EXPECT_TRUE(json::Value::parse(" [ ] ", out));
    EXPECT_TRUE(json::Value::parse("{\"u\":\"\\u0041\"}", out));
    EXPECT_EQ(out.at("u").str(), "A");
}

TEST(Report, CampaignJsonRoundTrips)
{
    std::vector<driver::JobSpec> jobs = eightJobs();
    jobs[5].body = [](const driver::JobSpec &, uint64_t) -> RunResult {
        throw std::runtime_error("boom");
    };
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 11;
    driver::CampaignReport report = driver::runCampaign(jobs, opts);

    std::ostringstream ss;
    driver::writeReport(report, ss);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;

    EXPECT_EQ(doc.at("schema").str(), "chex-campaign-report-v1");
    EXPECT_EQ(doc.at("seed").number(), 11.0);
    const json::Value &summary = doc.at("summary");
    EXPECT_EQ(summary.at("jobsRun").number(), 8.0);
    EXPECT_EQ(summary.at("jobsFailed").number(), 1.0);

    const json::Value &jarr = doc.at("jobs");
    ASSERT_EQ(jarr.size(), 8u);
    for (size_t i = 0; i < jarr.size(); ++i) {
        const json::Value &job = jarr.at(i);
        EXPECT_EQ(job.at("index").number(), double(i));
        if (i == 5) {
            EXPECT_EQ(job.at("status").str(), "failed");
            EXPECT_EQ(job.at("error").str(), "boom");
            EXPECT_EQ(job.find("result"), nullptr);
        } else {
            EXPECT_EQ(job.at("status").str(), "ok");
            const json::Value &res = job.at("result");
            EXPECT_EQ(res.at("cycles").number(),
                      double(report.jobs[i].run.cycles));
            EXPECT_EQ(res.at("uops").number(),
                      double(report.jobs[i].run.uops));
            EXPECT_TRUE(res.at("exited").boolean());
            EXPECT_TRUE(res.at("violations").isArray());
        }
    }
}

TEST(Report, ViolationRecordsSerialized)
{
    // An out-of-bounds workload: single run through the serializer.
    driver::JobSpec spec;
    spec.profile = tinyProfile();
    spec.body = [](const driver::JobSpec &s, uint64_t) -> RunResult {
        System sys(s.config);
        Program prog = generateSmokeProgram(2, 64);
        sys.load(prog);
        return sys.run();
    };
    driver::CampaignReport r = driver::runCampaign({spec}, {});
    ASSERT_EQ(r.jobs.size(), 1u);

    json::Value job = driver::toJson(r.jobs[0]);
    const json::Value &res = job.at("result");
    ASSERT_TRUE(res.at("violations").isArray());
    for (size_t i = 0; i < res.at("violations").size(); ++i) {
        const json::Value &v = res.at("violations").at(i);
        EXPECT_TRUE(v.find("kind"));
        EXPECT_TRUE(v.find("pc"));
        EXPECT_TRUE(v.find("addr"));
    }
}

TEST(Report, SystemDumpStatsJsonParses)
{
    SystemConfig cfg;
    System sys(cfg);
    sys.load(generateWorkload(tinyProfile(), 5));
    RunResult r = sys.run();
    ASSERT_TRUE(r.exited);

    std::ostringstream ss;
    sys.dumpStatsJson(ss);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(ss.str(), doc, &err)) << err;
    const json::Value &system = doc.at("system");
    EXPECT_GT(system.at("core").at("cycles").number(), 0.0);
    EXPECT_EQ(system.at("core").at("cycles").number(),
              double(r.cycles));
}

} // namespace
} // namespace chex

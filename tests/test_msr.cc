/**
 * @file
 * MSR-file tests: registration of heap-function entry/exit points
 * and the model-specific registration limit (Section IV-C).
 */

#include <gtest/gtest.h>

#include "ucode/msr.hh"

namespace chex
{
namespace
{

TEST(Msr, RegisterAndLookup)
{
    MsrFile msrs;
    ASSERT_TRUE(msrs.registerFunction(IntrinsicKind::Malloc, 0x400100,
                                      0x400104));
    ASSERT_TRUE(msrs.registerFunction(IntrinsicKind::Free, 0x400200,
                                      0x400204));
    EXPECT_EQ(*msrs.entryAt(0x400100), IntrinsicKind::Malloc);
    EXPECT_EQ(*msrs.exitAt(0x400104), IntrinsicKind::Malloc);
    EXPECT_EQ(*msrs.entryAt(0x400200), IntrinsicKind::Free);
    EXPECT_FALSE(msrs.entryAt(0x400104).has_value());
    EXPECT_FALSE(msrs.exitAt(0x400100).has_value());
    EXPECT_FALSE(msrs.entryAt(0x999999).has_value());
    EXPECT_EQ(msrs.registeredCount(), 2u);
}

TEST(Msr, ModelSpecificLimit)
{
    MsrFile msrs;
    for (unsigned i = 0; i < MsrFile::MaxRegistered; ++i)
        EXPECT_TRUE(msrs.registerFunction(IntrinsicKind::Malloc,
                                          0x400000 + i * 8,
                                          0x400004 + i * 8));
    EXPECT_FALSE(msrs.registerFunction(IntrinsicKind::Free, 0x500000,
                                       0x500004));
}

TEST(Msr, ClearForgetsEverything)
{
    MsrFile msrs;
    msrs.registerFunction(IntrinsicKind::Malloc, 0x400100, 0x400104);
    msrs.clear();
    EXPECT_FALSE(msrs.entryAt(0x400100).has_value());
    EXPECT_EQ(msrs.registeredCount(), 0u);
}

} // namespace
} // namespace chex

/**
 * @file
 * Memory-substrate tests: sparse memory, the generic set-associative
 * cache + victim cache, the 5-level shadow alias table and its
 * walker, the page-granular alias-hosting filter, and the cache
 * hierarchy's latency/traffic model.
 */

#include <gtest/gtest.h>

#include "mem/alias_table.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/sparse_memory.hh"

namespace chex
{
namespace
{

TEST(SparseMemory, ReadWriteRoundTrip)
{
    SparseMemory m;
    m.write(0x1000, 0xdeadbeefcafebabe, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0xdeadbeefcafebabeull);
    EXPECT_EQ(m.read(0x1000, 4), 0xcafebabeull);
    EXPECT_EQ(m.read(0x1000, 1), 0xbeull);
}

TEST(SparseMemory, UnmappedReadsZero)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x99999000, 8), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory m;
    uint64_t addr = 4096 - 4; // straddles a page boundary
    m.write(addr, 0x1122334455667788, 8);
    EXPECT_EQ(m.read(addr, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(SparseMemory, BlockOpsAndFill)
{
    SparseMemory m;
    uint8_t out[16] = {};
    m.fill(0x2000, 0xAB, 16);
    m.readBlock(0x2000, out, 16);
    for (uint8_t b : out)
        EXPECT_EQ(b, 0xAB);
    const char msg[] = "hello";
    m.writeBlock(0x3000, msg, sizeof(msg));
    char back[sizeof(msg)];
    m.readBlock(0x3000, back, sizeof(msg));
    EXPECT_STREQ(back, "hello");
}

TEST(SparseMemory, ResidentBytesTrackTouchedPages)
{
    SparseMemory m;
    m.write(0, 1, 1);
    m.write(4096 * 10, 1, 1);
    EXPECT_EQ(m.residentBytes(), 2u * 4096);
}

TEST(Cache, HitAfterInsert)
{
    SetAssocCache c("c", 4, 2);
    EXPECT_FALSE(c.access(0x10));
    c.insert(0x10);
    EXPECT_TRUE(c.access(0x10));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionWithinSet)
{
    SetAssocCache c("c", 1, 2); // fully associative, 2 entries
    c.insert(1);
    c.insert(2);
    c.access(1);       // 2 becomes LRU
    auto ev = c.insert(3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, 2u);
    EXPECT_TRUE(c.probe(1));
    EXPECT_FALSE(c.probe(2));
}

TEST(Cache, InvalidateRemoves)
{
    SetAssocCache c("c", 2, 2);
    c.insert(5);
    EXPECT_TRUE(c.invalidate(5));
    EXPECT_FALSE(c.probe(5));
    EXPECT_FALSE(c.invalidate(5));
}

TEST(Cache, OccupancyAndClear)
{
    SetAssocCache c("c", 4, 4);
    for (uint64_t k = 0; k < 10; ++k)
        c.insert(k);
    EXPECT_GT(c.occupancy(), 0u);
    EXPECT_LE(c.occupancy(), 16u);
    c.clear();
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(VictimCache, EvictionFallsIntoVictim)
{
    VictimAugmentedCache c("vc", 1, 1, 4);
    c.insert(1);
    c.insert(2); // 1 spills to victim
    EXPECT_TRUE(c.access(1)); // victim hit, promoted back
    EXPECT_EQ(c.victimHits(), 1u);
    // 2 must have swapped into the victim.
    EXPECT_TRUE(c.access(2));
}

TEST(VictimCache, MissRate)
{
    VictimAugmentedCache c("vc", 2, 2, 2);
    for (uint64_t k = 0; k < 100; ++k) {
        c.access(k % 3);
        c.insert(k % 3);
    }
    EXPECT_LT(c.missRate(), 0.1);
}

TEST(AliasTable, SetGetClear)
{
    AliasTable t;
    t.set(0x7000, 42);
    EXPECT_EQ(t.get(0x7000), 42u);
    EXPECT_EQ(t.get(0x7008), 0u);
    // Word-aligned storage: unaligned lookups resolve to the word.
    EXPECT_EQ(t.get(0x7003), 42u);
    t.set(0x7000, 0);
    EXPECT_EQ(t.get(0x7000), 0u);
    EXPECT_EQ(t.liveEntries(), 0u);
}

TEST(AliasTable, WalkTouchesFiveLevels)
{
    AliasTable t;
    t.set(0x12345678, 9);
    AliasWalkResult r = t.walk(0x12345678);
    EXPECT_EQ(r.pid, 9u);
    EXPECT_EQ(r.levelsTouched, AliasTable::Levels);
    // A walk into an unpopulated region terminates early.
    AliasWalkResult miss = t.walk(0xffff00000000);
    EXPECT_EQ(miss.pid, 0u);
    EXPECT_LT(miss.levelsTouched, AliasTable::Levels);
}

TEST(AliasTable, PageHostingFilter)
{
    AliasTable t;
    EXPECT_FALSE(t.pageHostsAliases(0x5000));
    t.set(0x5010, 7);
    EXPECT_TRUE(t.pageHostsAliases(0x5000));
    EXPECT_TRUE(t.pageHostsAliases(0x5ff8));
    EXPECT_FALSE(t.pageHostsAliases(0x6000));
    t.set(0x5010, 0);
    EXPECT_FALSE(t.pageHostsAliases(0x5000));
}

TEST(AliasTable, StorageGrowsWithSpread)
{
    AliasTable t;
    uint64_t base_storage = t.storageBytes();
    // Entries spread across distant regions need distinct subtrees.
    t.set(0x10000000, 1);
    t.set(0x20000000, 2);
    t.set(0x7fff0000, 3);
    EXPECT_GT(t.storageBytes(), base_storage);
    EXPECT_EQ(t.liveEntries(), 3u);
    t.clear();
    EXPECT_EQ(t.liveEntries(), 0u);
    EXPECT_EQ(t.get(0x10000000), 0u);
}

TEST(AliasTable, DenseRegionSharesNodes)
{
    AliasTable t;
    t.set(0x8000, 1);
    uint64_t one = t.storageBytes();
    for (uint64_t a = 0x8000; a < 0x8100; a += 8)
        t.set(a, 2);
    // Same leaf node: no new allocations.
    EXPECT_EQ(t.storageBytes(), one);
}

TEST(Hierarchy, L1HitIsCheap)
{
    MemoryHierarchy h;
    unsigned first = h.dataAccess(0x1000, false);
    unsigned second = h.dataAccess(0x1000, false);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, h.config().l1Latency);
}

TEST(Hierarchy, MissTraffic)
{
    MemoryHierarchy h;
    h.dataAccess(0x1000, false);
    EXPECT_EQ(h.traffic().bytesRead, h.config().lineBytes);
    h.dataAccess(0x1000, false); // hit: no extra traffic
    EXPECT_EQ(h.traffic().bytesRead, h.config().lineBytes);
    h.dataAccess(0x200000, true); // write miss
    EXPECT_EQ(h.traffic().bytesWritten, h.config().lineBytes);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    MemoryHierarchy h;
    // Fill L1 far past capacity within one L2 working set.
    for (uint64_t i = 0; i < 4096; ++i)
        h.dataAccess(i * 64, false);
    // Re-access: should be L2 hits (latency below DRAM).
    unsigned lat = h.dataAccess(0, false);
    EXPECT_LE(lat, h.config().l1Latency + h.config().l2Latency);
}

TEST(Hierarchy, SeparateInstructionPath)
{
    MemoryHierarchy h;
    unsigned first = h.fetchAccess(0x400000);
    unsigned second = h.fetchAccess(0x400000);
    EXPECT_GT(first, second);
}

TEST(Hierarchy, ShadowAccessBypassesL1)
{
    MemoryHierarchy h;
    unsigned first = h.shadowAccess(0xffff800000000000ull);
    unsigned second = h.shadowAccess(0xffff800000000000ull);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, h.config().l2Latency);
}

} // namespace
} // namespace chex

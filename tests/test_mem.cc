/**
 * @file
 * Memory-substrate tests: sparse memory, the generic set-associative
 * cache + victim cache, the 5-level shadow alias table and its
 * walker, the page-granular alias-hosting filter, and the cache
 * hierarchy's latency/traffic model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/alias_table.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/sparse_memory.hh"

namespace chex
{
namespace
{

TEST(SparseMemory, ReadWriteRoundTrip)
{
    SparseMemory m;
    m.write(0x1000, 0xdeadbeefcafebabe, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0xdeadbeefcafebabeull);
    EXPECT_EQ(m.read(0x1000, 4), 0xcafebabeull);
    EXPECT_EQ(m.read(0x1000, 1), 0xbeull);
}

TEST(SparseMemory, UnmappedReadsZero)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x99999000, 8), 0u);
    EXPECT_EQ(m.residentPages(), 0u);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory m;
    uint64_t addr = 4096 - 4; // straddles a page boundary
    m.write(addr, 0x1122334455667788, 8);
    EXPECT_EQ(m.read(addr, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(SparseMemory, BlockOpsAndFill)
{
    SparseMemory m;
    uint8_t out[16] = {};
    m.fill(0x2000, 0xAB, 16);
    m.readBlock(0x2000, out, 16);
    for (uint8_t b : out)
        EXPECT_EQ(b, 0xAB);
    const char msg[] = "hello";
    m.writeBlock(0x3000, msg, sizeof(msg));
    char back[sizeof(msg)];
    m.readBlock(0x3000, back, sizeof(msg));
    EXPECT_STREQ(back, "hello");
}

TEST(SparseMemory, ResidentBytesTrackTouchedPages)
{
    SparseMemory m;
    m.write(0, 1, 1);
    m.write(4096 * 10, 1, 1);
    EXPECT_EQ(m.residentBytes(), 2u * 4096);
}

TEST(SparseMemory, ReadsNeverAllocatePages)
{
    // residentPages() counts pages allocated by writes/fills only:
    // reads of unmapped memory return zero without allocating, so a
    // read-heavy program cannot inflate the reported resident set
    // (Figure 9 depends on this).
    SparseMemory m;
    m.write(0x1000, 0xff, 1);
    ASSERT_EQ(m.residentPages(), 1u);

    EXPECT_EQ(m.read(0x200000, 8), 0u);
    uint8_t buf[64] = {};
    m.readBlock(0x300ff0, buf, sizeof(buf)); // crosses a page boundary
    EXPECT_EQ(m.residentPages(), 1u);

    // Repeated reads of the page that IS resident don't add pages
    // either (guards the last-page translation cache).
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(m.read(0x1000, 1), 0xffu);
    EXPECT_EQ(m.residentPages(), 1u);

    m.fill(0x400000, 0, 1);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(SparseMemory, PageBoundaryBlockOps)
{
    SparseMemory m;
    constexpr uint64_t PageBytes = SparseMemory::PageBytes;

    // writeBlock spanning four pages: the tail of page 0, all of
    // pages 1 and 2, and the head of page 3.
    std::vector<uint8_t> data(PageBytes * 2 + 128);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 7 + 1);
    uint64_t start = PageBytes - 64;
    m.writeBlock(start, data.data(), data.size());
    EXPECT_EQ(m.residentPages(), 4u);

    std::vector<uint8_t> back(data.size());
    m.readBlock(start, back.data(), back.size());
    EXPECT_EQ(back, data);

    // fill spanning a boundary, then read straddling it.
    m.fill(2 * PageBytes - 8, 0x5A, 16);
    uint8_t straddle[16];
    m.readBlock(2 * PageBytes - 8, straddle, sizeof(straddle));
    for (uint8_t b : straddle)
        EXPECT_EQ(b, 0x5A);

    // A cross-page read where only the first page is resident
    // zero-fills the unmapped tail.
    SparseMemory m2;
    m2.fill(PageBytes - 4, 0x11, 4); // last 4 bytes of page 0 only
    uint8_t mix[8];
    m2.readBlock(PageBytes - 4, mix, sizeof(mix));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(mix[i], 0x11);
    for (int i = 4; i < 8; ++i)
        EXPECT_EQ(mix[i], 0);
    EXPECT_EQ(m2.residentPages(), 1u);
}

TEST(SparseMemory, ClearAndRestoreInvalidateTranslationCache)
{
    SparseMemory m;
    m.write(0x5000, 0xabcd, 8);
    ASSERT_EQ(m.read(0x5000, 8), 0xabcdu); // primes the memo

    m.clear();
    EXPECT_EQ(m.read(0x5000, 8), 0u);
    EXPECT_EQ(m.residentPages(), 0u);

    m.write(0x5000, 0x1111, 8);
    ASSERT_EQ(m.read(0x5000, 8), 0x1111u); // primes the memo again
    SparseMemory other;
    other.write(0x5000, 0x2222, 8);
    ASSERT_TRUE(m.restoreState(other.saveState()));
    EXPECT_EQ(m.read(0x5000, 8), 0x2222u);
}

TEST(Cache, HitAfterInsert)
{
    SetAssocCache c("c", 4, 2);
    EXPECT_FALSE(c.access(0x10));
    c.insert(0x10);
    EXPECT_TRUE(c.access(0x10));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionWithinSet)
{
    SetAssocCache c("c", 1, 2); // fully associative, 2 entries
    c.insert(1);
    c.insert(2);
    c.access(1);       // 2 becomes LRU
    auto ev = c.insert(3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, 2u);
    EXPECT_TRUE(c.probe(1));
    EXPECT_FALSE(c.probe(2));
}

TEST(Cache, InvalidateRemoves)
{
    SetAssocCache c("c", 2, 2);
    c.insert(5);
    EXPECT_TRUE(c.invalidate(5));
    EXPECT_FALSE(c.probe(5));
    EXPECT_FALSE(c.invalidate(5));
}

TEST(Cache, OccupancyAndClear)
{
    SetAssocCache c("c", 4, 4);
    for (uint64_t k = 0; k < 10; ++k)
        c.insert(k);
    EXPECT_GT(c.occupancy(), 0u);
    EXPECT_LE(c.occupancy(), 16u);
    c.clear();
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(VictimCache, EvictionFallsIntoVictim)
{
    VictimAugmentedCache c("vc", 1, 1, 4);
    c.insert(1);
    c.insert(2); // 1 spills to victim
    EXPECT_TRUE(c.access(1)); // victim hit, promoted back
    EXPECT_EQ(c.victimHits(), 1u);
    // 2 must have swapped into the victim.
    EXPECT_TRUE(c.access(2));
}

TEST(VictimCache, MissRate)
{
    VictimAugmentedCache c("vc", 2, 2, 2);
    for (uint64_t k = 0; k < 100; ++k) {
        c.access(k % 3);
        c.insert(k % 3);
    }
    EXPECT_LT(c.missRate(), 0.1);
}

TEST(AliasTable, SetGetClear)
{
    AliasTable t;
    t.set(0x7000, 42);
    EXPECT_EQ(t.get(0x7000), 42u);
    EXPECT_EQ(t.get(0x7008), 0u);
    // Word-aligned storage: unaligned lookups resolve to the word.
    EXPECT_EQ(t.get(0x7003), 42u);
    t.set(0x7000, 0);
    EXPECT_EQ(t.get(0x7000), 0u);
    EXPECT_EQ(t.liveEntries(), 0u);
}

TEST(AliasTable, WalkTouchesFiveLevels)
{
    AliasTable t;
    t.set(0x12345678, 9);
    AliasWalkResult r = t.walk(0x12345678);
    EXPECT_EQ(r.pid, 9u);
    EXPECT_EQ(r.levelsTouched, AliasTable::Levels);
    // A walk into an unpopulated region terminates early.
    AliasWalkResult miss = t.walk(0xffff00000000);
    EXPECT_EQ(miss.pid, 0u);
    EXPECT_LT(miss.levelsTouched, AliasTable::Levels);
}

TEST(AliasTable, PageHostingFilter)
{
    AliasTable t;
    EXPECT_FALSE(t.pageHostsAliases(0x5000));
    t.set(0x5010, 7);
    EXPECT_TRUE(t.pageHostsAliases(0x5000));
    EXPECT_TRUE(t.pageHostsAliases(0x5ff8));
    EXPECT_FALSE(t.pageHostsAliases(0x6000));
    t.set(0x5010, 0);
    EXPECT_FALSE(t.pageHostsAliases(0x5000));
}

TEST(AliasTable, PageBitTracksLiveCountPrecisely)
{
    // Pins the reconciled Section V-C semantics: the page-granular
    // alias-hosting bit is *precise*, reflecting whether the page
    // currently hosts at least one alias — it is NOT sticky across
    // the erasure of the last alias. A page whose aliases have all
    // been overwritten filters lookups again, exactly as before the
    // first spill.
    AliasTable t;
    uint64_t page = 0x9000;
    t.set(page + 0x10, 1);
    t.set(page + 0x20, 2);
    t.set(page + 0x30, 3);
    EXPECT_TRUE(t.pageHostsAliases(page));

    // Erasing some but not all aliases keeps the bit set.
    t.set(page + 0x10, 0);
    t.set(page + 0x20, 0);
    EXPECT_TRUE(t.pageHostsAliases(page));

    // Erasing the last alias clears it.
    t.set(page + 0x30, 0);
    EXPECT_FALSE(t.pageHostsAliases(page));

    // And re-spilling sets it again — the count survives the
    // tombstone left by the erase.
    t.set(page + 0x40, 9);
    EXPECT_TRUE(t.pageHostsAliases(page));

    // Overwriting an alias with a different PID is count-neutral.
    t.set(page + 0x40, 5);
    EXPECT_TRUE(t.pageHostsAliases(page));
    t.set(page + 0x40, 0);
    EXPECT_FALSE(t.pageHostsAliases(page));
}

TEST(AliasTable, PageBitScalesAcrossManyPages)
{
    // Exercises the flat page-count table through growth/rehash:
    // enough distinct pages to force several table resizes, then
    // erase half and verify precision is retained for every page.
    AliasTable t;
    constexpr uint64_t N = 1000;
    for (uint64_t i = 0; i < N; ++i)
        t.set(i * 4096 + 8, static_cast<uint32_t>(i + 1));
    for (uint64_t i = 0; i < N; ++i)
        EXPECT_TRUE(t.pageHostsAliases(i * 4096));
    for (uint64_t i = 0; i < N; i += 2)
        t.set(i * 4096 + 8, 0);
    for (uint64_t i = 0; i < N; ++i)
        EXPECT_EQ(t.pageHostsAliases(i * 4096), i % 2 == 1);
    EXPECT_EQ(t.liveEntries(), N / 2);
}

TEST(AliasTable, MemoizedLookupsStayCoherent)
{
    // get()/walk() share a one-entry memo; any set() must invalidate
    // it, including interior-node allocation that deepens walks for
    // *other* words on a shared path.
    AliasTable t;
    t.set(0x7000, 4);
    EXPECT_EQ(t.get(0x7000), 4u);
    EXPECT_EQ(t.get(0x7000), 4u); // memo hit
    t.set(0x7000, 8);
    EXPECT_EQ(t.get(0x7000), 8u); // must see the update
    t.set(0x7000, 0);
    EXPECT_EQ(t.get(0x7000), 0u);

    // A walk that terminates early, then an allocation on the same
    // subtree path: the re-walk must go deeper.
    AliasWalkResult before = t.walk(0x8008);
    EXPECT_EQ(before.pid, 0u);
    t.set(0x8000, 3); // same leaf node as 0x8008
    AliasWalkResult after = t.walk(0x8008);
    EXPECT_EQ(after.pid, 0u);
    EXPECT_EQ(after.levelsTouched, AliasTable::Levels);
    EXPECT_GE(after.levelsTouched, before.levelsTouched);
}

TEST(AliasTable, StorageGrowsWithSpread)
{
    AliasTable t;
    uint64_t base_storage = t.storageBytes();
    // Entries spread across distant regions need distinct subtrees.
    t.set(0x10000000, 1);
    t.set(0x20000000, 2);
    t.set(0x7fff0000, 3);
    EXPECT_GT(t.storageBytes(), base_storage);
    EXPECT_EQ(t.liveEntries(), 3u);
    t.clear();
    EXPECT_EQ(t.liveEntries(), 0u);
    EXPECT_EQ(t.get(0x10000000), 0u);
}

TEST(AliasTable, DenseRegionSharesNodes)
{
    AliasTable t;
    t.set(0x8000, 1);
    uint64_t one = t.storageBytes();
    for (uint64_t a = 0x8000; a < 0x8100; a += 8)
        t.set(a, 2);
    // Same leaf node: no new allocations.
    EXPECT_EQ(t.storageBytes(), one);
}

TEST(Hierarchy, L1HitIsCheap)
{
    MemoryHierarchy h;
    unsigned first = h.dataAccess(0x1000, false);
    unsigned second = h.dataAccess(0x1000, false);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, h.config().l1Latency);
}

TEST(Hierarchy, MissTraffic)
{
    MemoryHierarchy h;
    h.dataAccess(0x1000, false);
    EXPECT_EQ(h.traffic().bytesRead, h.config().lineBytes);
    h.dataAccess(0x1000, false); // hit: no extra traffic
    EXPECT_EQ(h.traffic().bytesRead, h.config().lineBytes);
    h.dataAccess(0x200000, true); // write miss
    EXPECT_EQ(h.traffic().bytesWritten, h.config().lineBytes);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    MemoryHierarchy h;
    // Fill L1 far past capacity within one L2 working set.
    for (uint64_t i = 0; i < 4096; ++i)
        h.dataAccess(i * 64, false);
    // Re-access: should be L2 hits (latency below DRAM).
    unsigned lat = h.dataAccess(0, false);
    EXPECT_LE(lat, h.config().l1Latency + h.config().l2Latency);
}

TEST(Hierarchy, SeparateInstructionPath)
{
    MemoryHierarchy h;
    unsigned first = h.fetchAccess(0x400000);
    unsigned second = h.fetchAccess(0x400000);
    EXPECT_GT(first, second);
}

TEST(Hierarchy, ShadowAccessBypassesL1)
{
    MemoryHierarchy h;
    unsigned first = h.shadowAccess(0xffff800000000000ull);
    unsigned second = h.shadowAccess(0xffff800000000000ull);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, h.config().l2Latency);
}

} // namespace
} // namespace chex

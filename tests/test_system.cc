/**
 * @file
 * End-to-end System tests: program execution, allocation
 * interception, capability generation, violation detection, and
 * run-result bookkeeping under the default prediction-driven
 * microcode variant.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/system.hh"
#include "workload/generator.hh"

namespace chex
{
namespace
{

SystemConfig
variantConfig(VariantKind kind)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    return cfg;
}

TEST(System, SmokeProgramRunsToCompletion)
{
    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(generateSmokeProgram(4, 256));
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
    EXPECT_EQ(r.totalAllocations, 4u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.uops, r.macroOps);
}

TEST(System, SmokeProgramOnBaseline)
{
    System sys(variantConfig(VariantKind::Baseline));
    sys.load(generateSmokeProgram(4, 256));
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
    EXPECT_EQ(r.capChecksInjected, 0u);
}

TEST(System, CapabilitiesAreGeneratedAndFreed)
{
    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(generateSmokeProgram(3, 128));
    RunResult r = sys.run();
    ASSERT_TRUE(r.exited);
    // 3 heap capabilities + 1 global (bufs) were created; all heap
    // ones freed.
    EXPECT_EQ(sys.capabilityTable().totalCapabilities(), 4u);
    EXPECT_EQ(sys.capabilityTable().liveCapabilities(), 1u);
}

TEST(System, ChecksAreInjectedForHeapDerefs)
{
    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(generateSmokeProgram(4, 256));
    RunResult r = sys.run();
    // Each buffer is dereferenced several times (store, load,
    // inc-mem cracks to ld+st).
    EXPECT_GE(r.capChecksInjected, 4u * 3u);
}

TEST(System, OutOfBoundsStoreIsFlagged)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 64), 1, 8); // one past the end
    as.hlt();

    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::OutOfBounds);
    EXPECT_FALSE(r.exited);
}

TEST(System, InBoundsAccessesAreClean)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 0), 7, 8);
    as.movmi(memAt(RAX, 56), 9, 8); // last word
    as.movrm(RBX, memAt(RAX, 0));
    as.hlt();

    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(as.finalize());
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
    EXPECT_EQ(sys.machine().reg(RBX), 7u);
}

TEST(System, UseAfterFreeIsFlagged)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrr(R12, RAX);
    as.movrr(RDI, RAX);
    as.call(IntrinsicKind::Free);
    as.movrm(RBX, memAt(R12, 0));
    as.hlt();

    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::UseAfterFree);
}

TEST(System, PointerTransferThroughRegistersKeepsProtection)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrr(RBX, RAX);   // MOV rule
    as.addri(RBX, 16);    // ADD rule
    as.movmi(memAt(RBX, 56), 1, 8); // 16+56 = 72 > 64: OOB
    as.hlt();

    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::OutOfBounds);
}

TEST(System, SpilledPointerReloadIsTracked)
{
    Assembler as;
    uint64_t slot = as.addGlobal("slot", 8);
    (void)slot;
    uint64_t pool = as.poolSlotFor("slot");

    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrm(R13, memRip(pool));
    as.movmr(memAt(R13, 0), RAX);   // spill to global
    as.movri(RAX, 0);               // clobber the register
    as.movrm(RBX, memAt(R13, 0));   // reload the alias
    as.movmi(memAt(RBX, 72), 1, 8); // OOB through the reload
    as.hlt();

    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::OutOfBounds);
    EXPECT_GE(r.pointerSpills, 1u);
    EXPECT_GE(r.pointerReloads, 1u);
}

TEST(System, GlobalCapabilityFromSymbolTable)
{
    Assembler as;
    uint64_t g = as.addGlobal("table", 48);
    (void)g;
    uint64_t pool = as.poolSlotFor("table");
    as.movrm(R12, memRip(pool));
    as.movmi(memAt(R12, 48), 1, 8); // just past the global
    as.hlt();

    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::OutOfBounds);
}

TEST(System, WildPointerDereferenceFlagged)
{
    Assembler as;
    as.movri(RCX, 0x7fff2000);
    as.movrm(RDX, memAt(RCX, 0));
    as.hlt();

    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(as.finalize());
    RunResult r = sys.run();
    ASSERT_TRUE(r.violationDetected);
    EXPECT_EQ(r.violations[0].kind, Violation::WildPointer);
}

TEST(System, BaselineDoesNotDetectAnything)
{
    Assembler as;
    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movmi(memAt(RAX, 200), 1, 8); // far out of bounds
    as.hlt();

    System sys(variantConfig(VariantKind::Baseline));
    sys.load(as.finalize());
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited);
    EXPECT_FALSE(r.violationDetected);
}

TEST(System, WorkloadProgramRunsCleanly)
{
    BenchmarkProfile p = profileByName("deepsjeng");
    p.iterations = 400; // keep the test fast
    System sys(variantConfig(VariantKind::MicrocodePrediction));
    sys.load(generateWorkload(p, 7));
    RunResult r = sys.run();
    EXPECT_TRUE(r.exited) << "hijacked=" << r.hijackedControlFlow
                          << " cap=" << r.hitMacroCap;
    EXPECT_FALSE(r.violationDetected)
        << violationName(r.violations.empty() ? Violation::None
                                              : r.violations[0].kind);
}

} // namespace
} // namespace chex

/**
 * @file
 * Alias-predictor tests: stride learning over the Table II PID
 * patterns, the blacklist filter for data loads, the three
 * misprediction classes of Section V-C, and accuracy accounting.
 */

#include <gtest/gtest.h>

#include "tracker/alias_predictor.hh"
#include "workload/patterns.hh"

namespace chex
{
namespace
{

/** Run a PID sequence through one PC and return final accuracy. */
double
trainSequence(AliasPredictor &pred, uint64_t pc,
              const std::vector<Pid> &pids)
{
    for (Pid pid : pids) {
        AliasPrediction p = pred.predict(pc);
        pred.update(pc, p, pid);
    }
    return pred.accuracy();
}

TEST(AliasPredictor, LearnsConstantPattern)
{
    AliasPredictor pred;
    std::vector<Pid> seq(64, 31); // "31 31 31 31 ..."
    trainSequence(pred, 0x400100, seq);
    AliasPrediction p = pred.predict(0x400100);
    EXPECT_TRUE(p.isReload);
    EXPECT_EQ(p.pid, 31u);
}

TEST(AliasPredictor, LearnsStridePattern)
{
    AliasPredictor pred;
    std::vector<Pid> seq;
    for (Pid p = 13; p < 13 + 60 * 3; p += 3)
        seq.push_back(p); // "13 16 19 22 ..."
    trainSequence(pred, 0x400100, seq);
    AliasPrediction p = pred.predict(0x400100);
    EXPECT_TRUE(p.isReload);
    EXPECT_EQ(p.pid, 13u + 60u * 3u);
    EXPECT_GT(pred.accuracy(), 0.9);
}

TEST(AliasPredictor, LearnsBatchStridePattern)
{
    AliasPredictor pred;
    std::vector<Pid> seq;
    for (Pid v = 11; v < 100; v += 4)
        for (int k = 0; k < 4; ++k)
            seq.push_back(v); // "11 11 11 11 15 15 15 15 ..."
    trainSequence(pred, 0x400100, seq);
    // Within a batch the stride is 0 most of the time; accuracy must
    // be well above chance.
    EXPECT_GT(pred.accuracy(), 0.6);
}

TEST(AliasPredictor, BlacklistsDataLoads)
{
    AliasPredictor pred;
    uint64_t pc = 0x400200;
    for (int i = 0; i < 32; ++i) {
        AliasPrediction p = pred.predict(pc);
        pred.update(pc, p, NoPid); // never a pointer reload
    }
    AliasPrediction p = pred.predict(pc);
    EXPECT_FALSE(p.isReload);
    EXPECT_GT(pred.accuracy(), 0.95);
}

TEST(AliasPredictor, OutcomeClassification)
{
    AliasPredictor pred;
    AliasPrediction none;
    AliasPrediction reload7;
    reload7.isReload = true;
    reload7.pid = 7;

    EXPECT_EQ(pred.update(0x1000, none, NoPid),
              AliasOutcome::CorrectNone);
    EXPECT_EQ(pred.update(0x1004, reload7, 7),
              AliasOutcome::CorrectReload);
    EXPECT_EQ(pred.update(0x1008, reload7, NoPid),
              AliasOutcome::PNA0);
    EXPECT_EQ(pred.update(0x100c, none, 7), AliasOutcome::P0AN);
    EXPECT_EQ(pred.update(0x1010, reload7, 9), AliasOutcome::PMAN);
    EXPECT_EQ(pred.outcomeCount(AliasOutcome::PNA0), 1u);
    EXPECT_EQ(pred.outcomeCount(AliasOutcome::P0AN), 1u);
    EXPECT_EQ(pred.outcomeCount(AliasOutcome::PMAN), 1u);
}

TEST(AliasPredictor, ColdPcCausesP0anOnceThenAdapts)
{
    AliasPredictor pred;
    uint64_t pc = 0x400300;
    AliasPrediction p = pred.predict(pc);
    EXPECT_FALSE(p.isReload); // cold
    EXPECT_EQ(pred.update(pc, p, 5), AliasOutcome::P0AN);
    // Once allocated, the entry predicts a reload even at low
    // confidence, turning further mispredictions into cheap PMANs.
    p = pred.predict(pc);
    EXPECT_TRUE(p.isReload);
}

TEST(AliasPredictor, ReloadMispredictionRateDenominator)
{
    AliasPredictor pred;
    AliasPrediction none;
    // 10 correct-none (not reload events) + 1 P0AN.
    for (int i = 0; i < 10; ++i)
        pred.update(0x2000, none, NoPid);
    pred.update(0x2004, none, 5);
    EXPECT_DOUBLE_EQ(pred.reloadMispredictionRate(), 1.0);
    EXPECT_NEAR(pred.accuracy(), 10.0 / 11.0, 1e-9);
}

TEST(AliasPredictor, TableIIPatternsArePredictable)
{
    // Property sweep: each Table II pattern class, driven through
    // the predictor as PID sequences, must beat a no-predictor
    // baseline by a wide margin (the paper's ~89 % average).
    struct Case
    {
        PatternKind kind;
        double minAccuracy;
    };
    const Case cases[] = {
        {PatternKind::Constant, 0.95},
        {PatternKind::Stride, 0.90},
        {PatternKind::BatchStride, 0.60},
        {PatternKind::RepeatStride, 0.30},
    };
    Random rng(3);
    for (const Case &c : cases) {
        AliasPredictor pred;
        PatternParams pp;
        pp.numBuffers = 32;
        pp.length = 512;
        auto sched = generateSchedule(c.kind, pp, rng);
        std::vector<Pid> pids;
        for (unsigned idx : sched)
            pids.push_back(100 + idx);
        trainSequence(pred, 0x400400, pids);
        EXPECT_GT(pred.accuracy(), c.minAccuracy)
            << patternName(c.kind);
    }
}

TEST(AliasPredictor, SizeSweepImprovesConflictBehaviour)
{
    // Many distinct reload PCs: a larger table must not be worse.
    auto run = [](unsigned entries) {
        AliasPredictorConfig cfg;
        cfg.entries = entries;
        AliasPredictor pred(cfg);
        Random rng(11);
        for (int round = 0; round < 20; ++round) {
            for (uint64_t pc = 0x400000; pc < 0x400000 + 256 * 4;
                 pc += 4) {
                AliasPrediction p = pred.predict(pc);
                pred.update(pc, p, static_cast<Pid>(pc & 0xff) + 1);
            }
        }
        return pred.accuracy();
    };
    EXPECT_GE(run(1024) + 0.02, run(64));
}

TEST(AliasPredictor, ClearResetsState)
{
    AliasPredictor pred;
    AliasPrediction none;
    pred.update(0x1000, none, 5);
    pred.clear();
    EXPECT_EQ(pred.predictions(), 0u);
    EXPECT_FALSE(pred.predict(0x1000).isReload);
}

TEST(AliasPredictor, SaveRestoreRoundTrip)
{
    AliasPredictor pred;
    trainSequence(pred, 0x400100, std::vector<Pid>(32, 9));
    for (int i = 0; i < 8; ++i) {
        AliasPrediction p = pred.predict(0x400200);
        pred.update(0x400200, p, NoPid); // blacklist entry too
    }
    json::Value doc = pred.saveState();
    AliasPredictor restored;
    ASSERT_TRUE(restored.restoreState(doc));
    EXPECT_EQ(restored.saveState().dump(0), doc.dump(0));
    EXPECT_EQ(restored.predict(0x400100).pid, 9u);
    EXPECT_FALSE(restored.predict(0x400200).isReload);
}

/**
 * Build a one-entry predictor snapshot whose table entry carries the
 * given confidence, then let @p mutate poke the document further.
 */
json::Value
predictorDocWithConfidence(uint64_t confidence)
{
    AliasPredictor pred;
    trainSequence(pred, 0x400100, std::vector<Pid>(32, 9));
    json::Value doc = pred.saveState();
    const json::Value *table = doc.find("table");
    json::Value entry = table->at(size_t{0});
    entry.set("confidence", confidence);
    json::Value replaced = json::Value::array();
    replaced.push(std::move(entry));
    doc.set("table", std::move(replaced));
    return doc;
}

TEST(AliasPredictor, RestoreRejectsOverflowedConfidence)
{
    // Regression: restoreState accepted confidence counters past the
    // saturating maximum — state the training logic can never reach,
    // which the stride predictor would then take many extra
    // mispredictions to age out.
    AliasPredictorConfig cfg;
    AliasPredictor pred;
    EXPECT_TRUE(pred.restoreState(
        predictorDocWithConfidence(cfg.confidenceMax)));
    EXPECT_FALSE(pred.restoreState(
        predictorDocWithConfidence(cfg.confidenceMax + 1)));
    // The failed restore leaves a cleared, usable predictor.
    EXPECT_EQ(pred.predictions(), 0u);
    EXPECT_FALSE(pred.predict(0x400100).isReload);
}

TEST(AliasPredictor, RestoreRejectsDuplicateSlots)
{
    // Regression: a document repeating a slot index restored
    // last-writer-wins instead of being rejected as malformed.
    AliasPredictor pred;
    trainSequence(pred, 0x400100, std::vector<Pid>(32, 9));
    json::Value doc = pred.saveState();
    const json::Value *table = doc.find("table");
    json::Value first = table->at(size_t{0});
    json::Value dup = json::Value::array();
    dup.push(first);
    dup.push(std::move(first));
    doc.set("table", std::move(dup));
    EXPECT_FALSE(pred.restoreState(doc));
}

TEST(AliasPredictor, RestoreRejectsBadBlacklistEntries)
{
    AliasPredictorConfig cfg;
    AliasPredictor pred;
    for (int i = 0; i < 8; ++i) {
        AliasPrediction p = pred.predict(0x400200);
        pred.update(0x400200, p, NoPid);
    }
    json::Value good = pred.saveState();

    json::Value overflowed = good;
    const json::Value *bl = overflowed.find("blacklist");
    json::Value entry = bl->at(size_t{0});
    entry.set("confidence", uint64_t{cfg.confidenceMax} + 1);
    json::Value one = json::Value::array();
    one.push(std::move(entry));
    overflowed.set("blacklist", std::move(one));
    EXPECT_FALSE(pred.restoreState(overflowed));

    json::Value duplicated = good;
    bl = duplicated.find("blacklist");
    json::Value first = bl->at(size_t{0});
    json::Value two = json::Value::array();
    two.push(first);
    two.push(std::move(first));
    duplicated.set("blacklist", std::move(two));
    EXPECT_FALSE(pred.restoreState(duplicated));

    EXPECT_TRUE(pred.restoreState(good));
}

} // namespace
} // namespace chex

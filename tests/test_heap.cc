/**
 * @file
 * Simulated-heap tests: allocation/free mechanics, inline chunk
 * metadata, free-list behaviour (including the deliberately
 * exploitable properties the How2Heap suite relies on), and the
 * ASan-mode redzones, poisoning, and quarantine.
 */

#include <gtest/gtest.h>

#include "heap/allocator.hh"
#include "isa/program.hh"

namespace chex
{
namespace
{

class HeapTest : public ::testing::Test
{
  protected:
    HeapTest()
        : heap(mem, layout::HeapBase, layout::HeapLimit)
    {
    }

    SparseMemory mem;
    HeapAllocator heap;
};

TEST_F(HeapTest, MallocReturnsAlignedDistinctBlocks)
{
    uint64_t a = heap.malloc(64, nullptr);
    uint64_t b = heap.malloc(64, nullptr);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    EXPECT_NE(a, b);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_GE(heap.usableSize(a), 64u);
}

TEST_F(HeapTest, HeaderIsInlineInSimulatedMemory)
{
    uint64_t a = heap.malloc(64, nullptr);
    uint64_t size_field = mem.read(a - 8, 8);
    EXPECT_EQ(size_field & ~HeapAllocator::FlagMask, 80u);
    EXPECT_TRUE(size_field & HeapAllocator::FlagInUse);
}

TEST_F(HeapTest, FreeThenMallocReusesChunk)
{
    uint64_t a = heap.malloc(64, nullptr);
    heap.free(a, nullptr);
    uint64_t b = heap.malloc(64, nullptr);
    EXPECT_EQ(a, b);
}

TEST_F(HeapTest, DoubleFreeCreatesCycle)
{
    // The exploitable fastbin-dup behaviour: no double-free check.
    uint64_t a = heap.malloc(32, nullptr);
    heap.free(a, nullptr);
    heap.free(a, nullptr);
    uint64_t b = heap.malloc(32, nullptr);
    uint64_t c = heap.malloc(32, nullptr);
    EXPECT_EQ(b, a);
    EXPECT_EQ(c, a); // same block handed out twice
}

TEST_F(HeapTest, CorruptedFdLinkIsFollowed)
{
    uint64_t a = heap.malloc(32, nullptr);
    heap.free(a, nullptr);
    // Poison the fd: point it at an arbitrary "chunk".
    uint64_t fake_chunk = 0x31337000;
    mem.write(a, fake_chunk, 8);
    EXPECT_EQ(heap.malloc(32, nullptr), a);
    EXPECT_EQ(heap.malloc(32, nullptr), fake_chunk + 16);
}

TEST_F(HeapTest, CallocZeroes)
{
    uint64_t a = heap.malloc(64, nullptr);
    mem.fill(a, 0xFF, 64);
    heap.free(a, nullptr);
    uint64_t b = heap.calloc(8, 8, nullptr);
    EXPECT_EQ(b, a);
    for (unsigned i = 0; i < 64; i += 8)
        EXPECT_EQ(mem.read(b + i, 8), 0u);
}

TEST_F(HeapTest, CallocOverflowFails)
{
    EXPECT_EQ(heap.calloc(1ull << 33, 1ull << 33, nullptr), 0u);
}

TEST_F(HeapTest, ReallocCopiesAndFrees)
{
    uint64_t a = heap.malloc(32, nullptr);
    mem.write(a, 0x1234, 8);
    uint64_t b = heap.realloc(a, 512, nullptr);
    ASSERT_NE(b, 0u);
    EXPECT_NE(a, b);
    EXPECT_EQ(mem.read(b, 8), 0x1234u);
    // The old block went back to the free list.
    EXPECT_EQ(heap.malloc(32, nullptr), a);
}

TEST_F(HeapTest, ReallocEdgeCases)
{
    EXPECT_NE(heap.realloc(0, 64, nullptr), 0u); // realloc(NULL) = malloc
    uint64_t a = heap.malloc(64, nullptr);
    EXPECT_EQ(heap.realloc(a, 0, nullptr), 0u);  // realloc(p,0) = free
}

TEST_F(HeapTest, ExhaustionReturnsZero)
{
    SparseMemory small_mem;
    HeapAllocator small(small_mem, 0x1000, 0x2000); // 4 KiB heap
    uint64_t total = 0;
    while (uint64_t p = small.malloc(256, nullptr)) {
        (void)p;
        ++total;
    }
    EXPECT_GT(total, 0u);
    EXPECT_LT(total, 20u);
    EXPECT_EQ(small.malloc(256, nullptr), 0u);
}

TEST_F(HeapTest, StatsTrackLiveAndPeak)
{
    uint64_t a = heap.malloc(64, nullptr);
    uint64_t b = heap.malloc(64, nullptr);
    EXPECT_EQ(heap.totalAllocations(), 2u);
    EXPECT_EQ(heap.liveAllocations(), 2u);
    heap.free(a, nullptr);
    EXPECT_EQ(heap.liveAllocations(), 1u);
    EXPECT_EQ(heap.maxLiveAllocations(), 2u);
    heap.free(b, nullptr);
    EXPECT_EQ(heap.liveAllocations(), 0u);
}

TEST_F(HeapTest, TouchListRecordsMetadataAccesses)
{
    std::vector<MemTouch> touches;
    uint64_t a = heap.malloc(64, &touches);
    EXPECT_FALSE(touches.empty());
    bool wrote_header = false;
    for (const auto &t : touches)
        if (t.isWrite && t.addr == a - 8)
            wrote_header = true;
    EXPECT_TRUE(wrote_header);
}

TEST_F(HeapTest, IsLiveUserPtr)
{
    uint64_t a = heap.malloc(64, nullptr);
    EXPECT_TRUE(heap.isLiveUserPtr(a));
    heap.free(a, nullptr);
    EXPECT_FALSE(heap.isLiveUserPtr(a));
    EXPECT_FALSE(heap.isLiveUserPtr(0x12345));
}

class AsanHeapTest : public HeapTest
{
  protected:
    AsanHeapTest()
    {
        AsanConfig cfg;
        cfg.enabled = true;
        cfg.redzoneBytes = 16;
        cfg.quarantineBytes = 4096;
        heap.setAsan(cfg);
    }
};

TEST_F(AsanHeapTest, RedzonesArePoisoned)
{
    uint64_t a = heap.malloc(64, nullptr);
    EXPECT_FALSE(heap.isPoisoned(a, 64));
    EXPECT_TRUE(heap.isPoisoned(a - 1, 1));   // left redzone
    EXPECT_TRUE(heap.isPoisoned(a + 64, 1));  // right redzone
}

TEST_F(AsanHeapTest, FreedMemoryIsPoisonedAndQuarantined)
{
    uint64_t a = heap.malloc(64, nullptr);
    heap.free(a, nullptr);
    EXPECT_TRUE(heap.isPoisoned(a, 1));
    // Quarantine delays reuse: the next malloc gets fresh memory.
    uint64_t b = heap.malloc(64, nullptr);
    EXPECT_NE(a, b);
}

TEST_F(AsanHeapTest, QuarantineDrainsUnderPressure)
{
    uint64_t first = heap.malloc(64, nullptr);
    heap.free(first, nullptr);
    // Push enough frees through to exceed the 4 KiB quarantine cap.
    for (int i = 0; i < 80; ++i)
        heap.free(heap.malloc(64, nullptr), nullptr);
    // The first chunk must have been recycled (and unpoisoned).
    EXPECT_FALSE(heap.isPoisoned(first, 64) &&
                 heap.isLiveUserPtr(first));
}

TEST_F(AsanHeapTest, OverheadBytesTracked)
{
    heap.malloc(64, nullptr);
    EXPECT_GE(heap.asanOverheadBytes(), 32u); // two redzones
}

TEST_F(AsanHeapTest, PoisonRangeMergingAndSplitting)
{
    uint64_t a = heap.malloc(64, nullptr);
    uint64_t b = heap.malloc(64, nullptr);
    // Ranges around both allocations and between them behave
    // independently.
    EXPECT_FALSE(heap.isPoisoned(a, 64));
    EXPECT_FALSE(heap.isPoisoned(b, 64));
    EXPECT_TRUE(heap.isPoisoned(a + 64, 8));
    heap.free(a, nullptr);
    EXPECT_TRUE(heap.isPoisoned(a, 64));
    EXPECT_FALSE(heap.isPoisoned(b, 64));
}

} // namespace
} // namespace chex

/**
 * @file
 * Seeded attack generator, attack registry, and security-report
 * tests: generator determinism (same seed => byte-identical program
 * and bit-identical RunResult), the seed-sweep baseline-validity
 * invariant (every generated exploit's indicator fires under the
 * insecure baseline), detection anchors under prediction-driven
 * CHEx86, registry lookup/uniqueness over all hand-written suite
 * cases, and the attack campaign end to end — spec hashing,
 * sharding + merge, result caching, security-report derivation,
 * and row replay all composing bit-identically.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "attacks/generator.hh"
#include "attacks/registry.hh"
#include "driver/campaign.hh"
#include "driver/merge.hh"
#include "driver/replay.hh"
#include "driver/report.hh"
#include "driver/security_report.hh"
#include "driver/spec_hash.hh"
#include "isa/program.hh"
#include "sim/system.hh"

namespace chex
{
namespace
{

GenFamily
familyOf(const std::string &token)
{
    GenFamily f;
    EXPECT_TRUE(generatorFamilyFromName(token, &f)) << token;
    return f;
}

RunResult
runAttack(const AttackCase &attack, VariantKind kind,
          bool uninit = true)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    cfg.detectUninitializedReads = uninit;
    System sys(cfg);
    sys.load(attack.program);
    RunResult r = sys.run();
    if (attack.indicatorAddr != 0) {
        r.indicatorChecked = true;
        r.indicatorFired =
            sys.memory().read(attack.indicatorAddr, 8) ==
            attack.indicatorExpect;
    }
    return r;
}

TEST(AttackGenerator, SameSeedByteIdenticalProgram)
{
    for (const std::string &token : generatorFamilies()) {
        GenFamily f = familyOf(token);
        for (uint64_t seed = 1; seed <= 8; ++seed) {
            AttackCase a = generateAttack(f, seed);
            AttackCase b = generateAttack(f, seed);
            EXPECT_EQ(a.name, b.name) << token << " seed " << seed;
            EXPECT_EQ(a.expected, b.expected);
            EXPECT_EQ(a.indicatorAddr, b.indicatorAddr);
            EXPECT_EQ(programHash(a.program), programHash(b.program))
                << token << " seed " << seed;
            EXPECT_EQ(a.suite, "Generated");
            EXPECT_FALSE(a.name.empty());
            EXPECT_NE(a.indicatorAddr, 0u);
        }
    }
}

TEST(AttackGenerator, SameSeedBitIdenticalRunResult)
{
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        AttackCase attack = generateAttack(GenFamily::Mix, seed);
        RunResult a =
            runAttack(attack, VariantKind::MicrocodePrediction);
        RunResult b =
            runAttack(generateAttack(GenFamily::Mix, seed),
                      VariantKind::MicrocodePrediction);
        EXPECT_EQ(driver::toJson(a).dump(), driver::toJson(b).dump())
            << "seed " << seed;
    }
}

TEST(AttackGenerator, SeedsSpanDistinctPrograms)
{
    std::set<uint64_t> hashes;
    for (uint64_t seed = 1; seed <= 64; ++seed)
        hashes.insert(programHash(
            generateAttack(GenFamily::Mix, seed).program));
    // Mix draws from five families with several shape/size knobs
    // each; a seed sweep must not collapse onto a few programs.
    EXPECT_GT(hashes.size(), 48u);
}

TEST(AttackGenerator, BaselineValidityInvariant)
{
    // Every generated exploit must be real: under the insecure
    // baseline it runs to completion and its corruption indicator
    // fires.
    for (const std::string &token : generatorFamilies()) {
        GenFamily f = familyOf(token);
        for (uint64_t seed = 1; seed <= 24; ++seed) {
            AttackCase attack = generateAttack(f, seed);
            RunResult r = runAttack(attack, VariantKind::Baseline);
            EXPECT_TRUE(r.exited)
                << token << " seed " << seed << " (" << attack.name
                << ") did not run to completion on the baseline";
            EXPECT_FALSE(r.violationDetected)
                << token << " seed " << seed << " (" << attack.name
                << ")";
            EXPECT_TRUE(r.indicatorFired)
                << token << " seed " << seed << " (" << attack.name
                << ") did not corrupt state on the baseline";
        }
    }
}

TEST(AttackGenerator, UcodePredictionAnchorsExpectedClass)
{
    for (const std::string &token : generatorFamilies()) {
        GenFamily f = familyOf(token);
        for (uint64_t seed = 1; seed <= 12; ++seed) {
            AttackCase attack = generateAttack(f, seed);
            RunResult r = runAttack(
                attack, VariantKind::MicrocodePrediction);
            ASSERT_TRUE(r.violationDetected)
                << token << " seed " << seed << " (" << attack.name
                << ") escaped prediction-driven CHEx86";
            bool anchored = false;
            for (const ViolationRecord &v : r.violations)
                anchored |= v.kind == attack.expected;
            EXPECT_TRUE(anchored)
                << token << " seed " << seed << " (" << attack.name
                << "): expected anchor "
                << violationName(attack.expected) << ", first flag "
                << violationName(r.violations[0].kind);
        }
    }
}

TEST(AttackRegistry, SuiteCaseIdsAreUniqueAndResolvable)
{
    std::set<std::string> ids;
    size_t total = 0;
    for (const AttackSuite &suite : attackSuites()) {
        EXPECT_FALSE(suite.cases.empty()) << suite.name;
        for (const AttackCase &c : suite.cases) {
            ++total;
            const std::string id = attackCaseId(c);
            EXPECT_EQ(id.rfind(suite.name + "/", 0), 0u) << id;
            EXPECT_TRUE(ids.insert(id).second)
                << "duplicate attack ID " << id;

            const AttackCase *found = findSuiteCase(id);
            ASSERT_NE(found, nullptr) << id;
            EXPECT_EQ(found->name, c.name);

            AttackCase resolved;
            ASSERT_TRUE(findAttackByName(id, 123, &resolved)) << id;
            EXPECT_EQ(programHash(resolved.program),
                      programHash(c.program))
                << id;
            EXPECT_EQ(resolved.expected, c.expected) << id;
        }
    }
    EXPECT_EQ(ids.size(), total);
    EXPECT_GT(total, 50u); // ripe sweep + asan + how2heap
}

TEST(AttackRegistry, GeneratedIdsResolveThroughSeed)
{
    for (const std::string &token : generatorFamilies()) {
        AttackCase a;
        std::string err;
        ASSERT_TRUE(findAttackByName("gen/" + token, 7, &a, &err))
            << err;
        EXPECT_EQ(a.suite, "Generated");
        EXPECT_EQ(programHash(a.program),
                  programHash(
                      generateAttack(familyOf(token), 7).program));
    }
    AttackCase out;
    std::string err;
    EXPECT_FALSE(findAttackByName("gen/bogus", 1, &out, &err));
    EXPECT_NE(err.find("gen/bogus"), std::string::npos);
    EXPECT_FALSE(findAttackByName("nosuite/nocase", 1, &out, &err));
    EXPECT_EQ(findSuiteCase("gen/mix"), nullptr);
}

TEST(AttackSpecHash, AttackIdFoldsIntoHash)
{
    driver::JobSpec plain;
    plain.profile = attackProfile();

    driver::JobSpec gen_mix = plain;
    gen_mix.attack = "gen/mix";
    driver::JobSpec gen_uaf = plain;
    gen_uaf.attack = "gen/uaf";

    // Same seed: the attack ID alone must separate the cache
    // identities — and an empty ID must not perturb the historical
    // workload hash stream (guarded fold).
    EXPECT_NE(driver::specHash(plain, 42),
              driver::specHash(gen_mix, 42));
    EXPECT_NE(driver::specHash(gen_mix, 42),
              driver::specHash(gen_uaf, 42));
    EXPECT_EQ(driver::specHash(gen_mix, 42),
              driver::specHash(gen_mix, 42));
    EXPECT_NE(driver::specHash(gen_mix, 42),
              driver::specHash(gen_mix, 43));
}

std::vector<driver::JobSpec>
attackMatrix(unsigned instances, uint64_t campaign_seed)
{
    std::vector<driver::JobSpec> jobs;
    for (unsigned i = 0; i < instances; ++i) {
        const uint64_t seed = driver::jobSeed(campaign_seed, i);
        for (VariantKind kind : {VariantKind::Baseline,
                                 VariantKind::MicrocodePrediction}) {
            driver::JobSpec spec;
            spec.label = "gen/mix#" + std::to_string(i) + "/" +
                         variantName(kind);
            spec.profile = attackProfile();
            spec.config.variant.kind = kind;
            spec.config.detectUninitializedReads = true;
            spec.workloadSeed = seed;
            spec.attack = "gen/mix";
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

/** Per-job identity + result view, timing-free. */
std::map<std::string, std::string>
resultView(const driver::CampaignReport &report)
{
    std::map<std::string, std::string> view;
    for (const driver::JobResult &jr : report.jobs) {
        EXPECT_FALSE(jr.failed) << jr.label << ": " << jr.error;
        view[jr.label] = jr.attack + "|" +
                         driver::specHashHex(jr.specHash) + "|" +
                         std::to_string(jr.seed) + "|" +
                         driver::toJson(jr.run).dump();
    }
    return view;
}

TEST(AttackCampaign, EndToEndShardCacheAndSecurityReport)
{
    const unsigned kInstances = 6;
    std::vector<driver::JobSpec> jobs = attackMatrix(kInstances, 9);

    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 9;
    driver::CampaignReport plain = driver::runCampaign(jobs, opts);
    EXPECT_EQ(plain.jobsFailed, 0u);
    EXPECT_EQ(plain.jobsRun, jobs.size());

    // Security view of the plain run: every baseline row validates
    // its exploit, every enforcement row detects it.
    driver::SecurityReport sec;
    std::string err;
    ASSERT_TRUE(driver::buildSecurityReport(plain, &sec, &err))
        << err;
    EXPECT_EQ(sec.attackJobs, jobs.size());
    EXPECT_EQ(sec.failedJobs, 0u);
    EXPECT_EQ(sec.baselineChecked, kInstances);
    EXPECT_EQ(sec.baselineValid, kInstances);
    ASSERT_EQ(sec.variants.size(), 1u);
    EXPECT_EQ(sec.variants[0].variant,
              variantName(VariantKind::MicrocodePrediction));
    EXPECT_EQ(sec.variants[0].attacks, kInstances);
    EXPECT_EQ(sec.variants[0].detected, kInstances);
    EXPECT_EQ(sec.variants[0].anchorMatches, kInstances);
    EXPECT_TRUE(sec.escaped.empty());

    // Sharded run + merge: bit-identical job results and security
    // report vs the unsharded run.
    driver::CampaignOptions shard0 = opts;
    shard0.shardIndex = 0;
    shard0.shardCount = 2;
    driver::CampaignOptions shard1 = opts;
    shard1.shardIndex = 1;
    shard1.shardCount = 2;
    std::vector<driver::CampaignReport> shards;
    shards.push_back(driver::runCampaign(jobs, shard0));
    shards.push_back(driver::runCampaign(jobs, shard1));

    // A single shard must refuse security derivation: its rates
    // would cover only a slice of the campaign.
    driver::SecurityReport partial;
    EXPECT_FALSE(
        driver::buildSecurityReport(shards[0], &partial, &err));
    EXPECT_NE(err.find("merge"), std::string::npos);

    driver::CampaignReport merged;
    ASSERT_TRUE(driver::mergeReports(shards, merged, &err)) << err;
    EXPECT_EQ(resultView(merged), resultView(plain));

    driver::SecurityReport sec_merged;
    ASSERT_TRUE(
        driver::buildSecurityReport(merged, &sec_merged, &err))
        << err;
    EXPECT_EQ(driver::toJson(sec_merged).dump(),
              driver::toJson(sec).dump());

    // Cached re-run: nothing simulates, everything matches.
    driver::CampaignOptions cached_opts = opts;
    cached_opts.cacheReports.push_back(plain);
    driver::CampaignReport cached =
        driver::runCampaign(jobs, cached_opts);
    EXPECT_EQ(cached.jobsCached, jobs.size());
    EXPECT_EQ(resultView(cached), resultView(plain));
    driver::SecurityReport sec_cached;
    ASSERT_TRUE(
        driver::buildSecurityReport(cached, &sec_cached, &err))
        << err;
    EXPECT_EQ(driver::toJson(sec_cached).dump(),
              driver::toJson(sec).dump());
}

TEST(AttackCampaign, RowReplaysToSameOutcome)
{
    std::vector<driver::JobSpec> jobs = attackMatrix(3, 11);
    driver::CampaignOptions opts;
    opts.workers = 2;
    opts.seed = 11;
    driver::CampaignReport report = driver::runCampaign(jobs, opts);
    ASSERT_EQ(report.jobsFailed, 0u);

    SystemConfig base;
    base.detectUninitializedReads = true;
    for (size_t index : {size_t(1), size_t(4)}) {
        driver::ReplayPlan plan;
        std::string err;
        // --scale 50 on the original campaign would have been a
        // no-op on the attack profile, so any divisor must
        // reconstruct the recorded hash.
        ASSERT_TRUE(driver::planReplay(report, index, base, 50,
                                       nullptr, &plan, &err))
            << err;
        EXPECT_EQ(plan.spec.attack, "gen/mix");

        driver::CampaignOptions single;
        single.workers = 1;
        single.seed = opts.seed;
        driver::CampaignReport rerun =
            driver::runCampaign({plan.spec}, single);
        ASSERT_EQ(rerun.jobs.size(), 1u);
        std::string detail;
        EXPECT_TRUE(driver::outcomeReproduced(
            report.jobs[index], rerun.jobs[0], &detail))
            << detail;
        EXPECT_EQ(driver::toJson(rerun.jobs[0].run).dump(),
                  driver::toJson(report.jobs[index].run).dump());
    }
}

} // namespace
} // namespace chex

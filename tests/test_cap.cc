/**
 * @file
 * Capability-subsystem tests: 128-bit capability semantics, the
 * two-phase generation/free protocol of Section IV-C, capCheck
 * violation classification, the exhaustive address search used by
 * the hardware checker, and the capability cache.
 */

#include <gtest/gtest.h>

#include "cap/cap_cache.hh"
#include "cap/cap_table.hh"

namespace chex
{
namespace
{

TEST(Capability, ContainsRespectsBounds)
{
    Capability c;
    c.base = 0x1000;
    c.bounds = 64;
    EXPECT_TRUE(c.contains(0x1000, 8));
    EXPECT_TRUE(c.contains(0x1038, 8)); // last word
    EXPECT_FALSE(c.contains(0x1039, 8));
    EXPECT_FALSE(c.contains(0xfff8, 8));
}

TEST(CapTable, TwoPhaseGeneration)
{
    CapabilityTable t;
    Violation v;
    Pid pid = t.beginGeneration(128, &v);
    EXPECT_NE(pid, NoPid);
    EXPECT_EQ(v, Violation::None);
    const Capability *cap = t.find(pid);
    ASSERT_NE(cap, nullptr);
    EXPECT_TRUE(cap->busy());
    EXPECT_FALSE(cap->valid());

    t.endGeneration(pid, 0x5000);
    cap = t.find(pid);
    EXPECT_FALSE(cap->busy());
    EXPECT_TRUE(cap->valid());
    EXPECT_EQ(cap->base, 0x5000u);
    EXPECT_EQ(cap->bounds, 128u);
    EXPECT_EQ(t.liveCapabilities(), 1u);
}

TEST(CapTable, FailedAllocationNeverBecomesValid)
{
    CapabilityTable t;
    Violation v;
    Pid pid = t.beginGeneration(64, &v);
    t.endGeneration(pid, 0); // malloc returned NULL
    EXPECT_FALSE(t.find(pid)->valid());
    EXPECT_EQ(t.liveCapabilities(), 0u);
}

TEST(CapTable, OversizeAllocationFlagged)
{
    CapabilityTable t;
    t.setMaxAllocSize(1ull << 30);
    Violation v;
    Pid pid = t.beginGeneration((1ull << 30) + 1, &v);
    EXPECT_EQ(pid, NoPid);
    EXPECT_EQ(v, Violation::OversizeAlloc);
}

TEST(CapTable, CheckClassifiesViolations)
{
    CapabilityTable t;
    Violation v;
    Pid pid = t.beginGeneration(64, &v);
    t.endGeneration(pid, 0x5000);

    EXPECT_TRUE(t.check(pid, 0x5000, 8, false).ok());
    EXPECT_TRUE(t.check(pid, 0x5038, 8, true).ok());
    EXPECT_EQ(t.check(pid, 0x5040, 8, false).violation,
              Violation::OutOfBounds);
    EXPECT_EQ(t.check(pid, 0x4ff8, 8, false).violation,
              Violation::OutOfBounds);
    EXPECT_EQ(t.check(WildPid, 0x5000, 8, false).violation,
              Violation::WildPointer);
    EXPECT_EQ(t.check(9999, 0x5000, 8, false).violation,
              Violation::WildPointer);
    // PID 0 = untracked pointer: nothing to check.
    EXPECT_TRUE(t.check(NoPid, 0x5000, 8, false).ok());
}

TEST(CapTable, FreeProtocolAndUafDetection)
{
    CapabilityTable t;
    Violation v;
    Pid pid = t.beginGeneration(64, &v);
    t.endGeneration(pid, 0x5000);

    EXPECT_EQ(t.beginFree(pid, 0x5000), Violation::None);
    EXPECT_TRUE(t.find(pid)->busy());
    t.endFree(pid);
    EXPECT_FALSE(t.find(pid)->valid());
    // Use-after-free: the capability is kept, invalid.
    EXPECT_EQ(t.check(pid, 0x5000, 8, false).violation,
              Violation::UseAfterFree);
    // Double free.
    EXPECT_EQ(t.beginFree(pid, 0x5000), Violation::DoubleFree);
}

TEST(CapTable, InvalidFreeClassification)
{
    CapabilityTable t;
    Violation v;
    Pid pid = t.beginGeneration(64, &v);
    t.endGeneration(pid, 0x5000);

    EXPECT_EQ(t.beginFree(NoPid, 0x1234), Violation::InvalidFree);
    EXPECT_EQ(t.beginFree(WildPid, 0x1234), Violation::InvalidFree);
    EXPECT_EQ(t.beginFree(777, 0x1234), Violation::InvalidFree);
    // Interior pointer.
    EXPECT_EQ(t.beginFree(pid, 0x5008), Violation::InvalidFree);
    // Freeing a global capability.
    Pid g = t.addGlobal("g", 0x700000, 100);
    EXPECT_EQ(t.beginFree(g, 0x700000), Violation::InvalidFree);
}

TEST(CapTable, GlobalCapabilitiesFromSymbolTable)
{
    CapabilityTable t;
    Pid g = t.addGlobal("table", 0x700000, 256);
    EXPECT_TRUE(t.check(g, 0x700000, 8, true).ok());
    EXPECT_EQ(t.check(g, 0x700100, 8, false).violation,
              Violation::OutOfBounds);
}

TEST(CapTable, ExhaustiveAddressSearch)
{
    CapabilityTable t;
    Violation v;
    Pid a = t.beginGeneration(64, &v);
    t.endGeneration(a, 0x5000);
    Pid b = t.beginGeneration(64, &v);
    t.endGeneration(b, 0x6000);

    EXPECT_EQ(t.pidForAddress(0x5020), a);
    EXPECT_EQ(t.pidForAddress(0x6000), b);
    EXPECT_EQ(t.pidForAddress(0x7000), NoPid);
    // Freed blocks remain findable (for rule validation).
    t.beginFree(a, 0x5000);
    t.endFree(a);
    EXPECT_EQ(t.pidForAddress(0x5020), a);
}

TEST(CapTable, StorageScalesWithAllocations)
{
    CapabilityTable t;
    Violation v;
    for (int i = 0; i < 100; ++i) {
        Pid p = t.beginGeneration(64, &v);
        t.endGeneration(p, 0x10000 + 0x100 * static_cast<uint64_t>(i));
    }
    EXPECT_EQ(t.totalCapabilities(), 100u);
    // Honest accounting: one capability page plus one live-index
    // chunk (the old 16-bytes-per-capability figure ignored the
    // interval indices entirely).
    EXPECT_EQ(t.storageBytes(), PagedCapabilityStore::PageBytes +
                                    IntervalIndex::ChunkBytes);

    // Freeing moves bases to the freed index, which is now counted.
    for (int i = 0; i < 100; ++i) {
        Pid p = static_cast<Pid>(i + 1);
        t.beginFree(p, 0x10000 + 0x100 * static_cast<uint64_t>(i));
        t.endFree(p);
    }
    EXPECT_EQ(t.storageBytes(), PagedCapabilityStore::PageBytes +
                                    IntervalIndex::ChunkBytes);

    // Growth past a page boundary allocates another page.
    uint64_t one_page = t.storageBytes();
    for (uint64_t i = 0; i < PagedCapabilityStore::PageSlots; ++i) {
        Pid p = t.beginGeneration(64, &v);
        t.endGeneration(p, 0x1000000 + 0x100 * i);
    }
    EXPECT_GT(t.storageBytes(), one_page);
    EXPECT_GE(t.storageBytes(), 2 * PagedCapabilityStore::PageBytes);
}

TEST(CapTable, InitShadowCountedInStorage)
{
    CapabilityTable t;
    t.setTrackInitialization(true);
    Violation v;
    Pid p = t.beginGeneration(4096, &v);
    t.endGeneration(p, 0x5000);
    uint64_t before = t.storageBytes();
    EXPECT_EQ(t.initShadowBytes(), 0u);
    t.markAllInitialized(p); // calloc: one interval, not a bitmap
    EXPECT_GT(t.initShadowBytes(), 0u);
    EXPECT_GT(t.storageBytes(), before);
}

TEST(CapCache, HitAfterFill)
{
    CapabilityCache c(4);
    EXPECT_FALSE(c.lookup(1)); // miss fills
    EXPECT_TRUE(c.lookup(1));
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(CapCache, InvalidationOnFree)
{
    CapabilityCache c(4);
    c.lookup(1);
    c.invalidate(1);
    EXPECT_EQ(c.invalidationsSent(), 1u);
    EXPECT_FALSE(c.lookup(1)); // must re-fill after invalidation
}

TEST(CapCache, CapacityEviction)
{
    CapabilityCache c(2);
    c.lookup(1);
    c.lookup(2);
    c.lookup(3); // evicts LRU (1)
    EXPECT_FALSE(c.lookup(1));
}

TEST(Capability, ViolationNames)
{
    EXPECT_STREQ(violationName(Violation::OutOfBounds),
                 "out-of-bounds");
    EXPECT_STREQ(violationName(Violation::UseAfterFree),
                 "use-after-free");
    EXPECT_STREQ(violationName(Violation::DoubleFree), "double-free");
}

} // namespace
} // namespace chex

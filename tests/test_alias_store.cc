/**
 * @file
 * Alias-subsystem scale suite for the reclaiming shadow alias table
 * (DESIGN §11), in the style of test_cap_store: a randomized
 * equivalence run drives the radix table and a dumb
 * std::map<word, pid> oracle through the same tens of thousands of
 * operations — set/get/walk/page-filter/clear — asserting identical
 * results at every step, exact node-count accounting (storageBytes
 * must equal the oracle-derived distinct-prefix count through
 * arbitrary reclamation), and byte-identical chex-snapshot-v1
 * documents at checkpoints, including a mid-stream save/restore.
 * Also pins pooled-node recycling, the fill-then-clear reclamation
 * floor, restoration of pre-reclamation fixtures carrying dead
 * subtrees, the restore-validation bug tail (duplicate slot
 * indices, non-PID leaf payloads), the AliasPageCounts
 * tombstone-purge/shrink policy and its setCount(page, 0) fix, and
 * the clearAliasRange end-of-address-space overflow fix.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/json.hh"
#include "base/random.hh"
#include "mem/alias_table.hh"
#include "tracker/pointer_tracker.hh"
#include "tracker/rules.hh"

namespace chex
{
namespace
{

/** Word index VA[47:3], mirroring AliasTable::levelIndex. */
uint64_t
wordIndex(uint64_t addr)
{
    return (addr >> 3) & ((1ull << 45) - 1);
}

/**
 * Nodes a reclaiming table must hold for @p live: the root plus one
 * node per distinct word-index prefix at each of the four lower
 * levels (9 bits per level, leaves keyed by word >> 9).
 */
uint64_t
expectedNodes(const std::map<uint64_t, uint32_t> &live)
{
    std::set<uint64_t> l1, l2, l3, leaves;
    for (const auto &kv : live) {
        uint64_t w = wordIndex(kv.first);
        l1.insert(w >> 36);
        l2.insert(w >> 27);
        l3.insert(w >> 18);
        leaves.insert(w >> 9);
    }
    return 1 + l1.size() + l2.size() + l3.size() + leaves.size();
}

/** Rebuild a fresh table holding exactly the oracle's live set. */
void
rebuildFromModel(const std::map<uint64_t, uint32_t> &live,
                 AliasTable &out)
{
    out.clear();
    for (const auto &[addr, pid] : live)
        out.set(addr, pid);
}

/**
 * Random word-aligned address mixing dense pages (shared leaves)
 * with scattered draws across 1 TiB (distinct subtrees).
 */
uint64_t
drawAddr(Random &rng)
{
    if (rng.chance(0.6)) {
        // One of 8 dense 4 KiB pages.
        return 0x10000ull + rng.uniform(0, 7) * 4096 +
               rng.uniform(0, 511) * 8;
    }
    return 0x100000000ull + (rng.uniform(0, (1ull << 37) - 1) << 3);
}

TEST(AliasStore, RandomizedEquivalenceVsMapModel)
{
    AliasTable table;
    std::map<uint64_t, uint32_t> model;
    std::unordered_map<uint64_t, uint32_t> pageCounts;
    Random rng(0xa11a5);

    auto modelSet = [&](uint64_t addr, uint32_t pid) {
        addr &= ~7ull;
        uint64_t page = addr / 4096;
        auto it = model.find(addr);
        uint32_t was = it == model.end() ? 0 : it->second;
        if (was == pid)
            return;
        if (was == 0 && pid != 0)
            ++pageCounts[page];
        else if (was != 0 && pid == 0)
            --pageCounts[page];
        if (pid == 0)
            model.erase(addr);
        else
            model[addr] = pid;
    };
    auto modelHosts = [&](uint64_t addr) {
        auto it = pageCounts.find(addr / 4096);
        return it != pageCounts.end() && it->second != 0;
    };

    constexpr int Ops = 60000;
    constexpr int CheckpointEvery = 6000;
    for (int op = 0; op < Ops; ++op) {
        uint64_t r = rng.uniform(0, 99);
        if (r < 55) {
            // Spill, overwrite, or erase (pid 0 one time in four).
            uint64_t addr = drawAddr(rng);
            auto pid = static_cast<uint32_t>(rng.uniform(0, 3) == 0
                                                 ? 0
                                                 : rng.uniform(1, 9));
            table.set(addr, pid);
            modelSet(addr, pid);
        } else if (r < 75) {
            uint64_t addr = drawAddr(rng);
            auto it = model.find(addr & ~7ull);
            uint32_t want = it == model.end() ? 0 : it->second;
            ASSERT_EQ(table.get(addr), want) << std::hex << addr;
        } else if (r < 90) {
            uint64_t addr = drawAddr(rng);
            auto it = model.find(addr & ~7ull);
            uint32_t want = it == model.end() ? 0 : it->second;
            AliasWalkResult w = table.walk(addr);
            ASSERT_EQ(w.pid, want) << std::hex << addr;
            ASSERT_LE(w.levelsTouched, AliasTable::Levels);
            if (want != 0) {
                ASSERT_EQ(w.levelsTouched, AliasTable::Levels);
            }
        } else if (r < 99) {
            uint64_t addr = drawAddr(rng);
            ASSERT_EQ(table.pageHostsAliases(addr), modelHosts(addr))
                << std::hex << addr;
        } else {
            table.clear();
            model.clear();
            pageCounts.clear();
        }

        if ((op + 1) % CheckpointEvery == 0) {
            ASSERT_EQ(table.liveEntries(), model.size());
            // Exact node accounting: reclamation keeps the node
            // count a pure function of the live set.
            ASSERT_EQ(table.storageBytes(),
                      expectedNodes(model) * AliasTable::NodeBytes);
            ASSERT_LE(table.storageBytes(), table.retainedBytes());

            // The serialized document must equal the one a fresh
            // table rebuilt from the oracle produces: structure
            // carries no allocation-history residue anymore.
            json::Value doc = table.saveState();
            AliasTable fresh;
            rebuildFromModel(model, fresh);
            ASSERT_EQ(doc.dump(0), fresh.saveState().dump(0));

            // Mid-stream restore round-trip.
            AliasTable restored;
            ASSERT_TRUE(restored.restoreState(doc));
            ASSERT_EQ(restored.saveState().dump(0), doc.dump(0));
            ASSERT_EQ(restored.storageBytes(), table.storageBytes());
        }
    }
}

TEST(AliasStore, FillThenClearReturnsStorage)
{
    // The acceptance floor for reclamation: after a fill-then-clear
    // cycle, storageBytes() is back within 10% of its pre-churn
    // value. The reclaiming table does better — it returns exactly
    // to the root-only floor.
    AliasTable table;
    Random rng(7);
    uint64_t before = table.storageBytes();
    std::vector<uint64_t> words;
    for (int i = 0; i < 50000; ++i) {
        uint64_t addr = drawAddr(rng);
        if (table.get(addr) == 0)
            words.push_back(addr & ~7ull);
        table.set(addr, 5);
    }
    EXPECT_GT(table.storageBytes(), before * 100);
    for (uint64_t addr : words)
        table.set(addr, 0);
    EXPECT_EQ(table.liveEntries(), 0u);
    EXPECT_LE(table.storageBytes(),
              before + before / 10); // within 10% of pre-churn
    EXPECT_EQ(table.storageBytes(),
              uint64_t{AliasTable::NodeBytes}); // root only, exactly
}

TEST(AliasStore, ChurnKeepsShadowStorageBounded)
{
    // Sustained overwrite churn at a constant live size: the
    // pre-reclamation table grew monotonically (nodes were never
    // freed), so storage was proportional to *total* distinct
    // addresses ever spilled; the reclaiming table stays
    // proportional to the live set.
    AliasTable table;
    Random rng(11);
    std::vector<uint64_t> live;
    uint64_t bump = 0x200000000ull;
    for (int i = 0; i < 1000; ++i) {
        live.push_back(bump);
        table.set(bump, 3);
        bump += 1 << 20; // one leaf per word: worst-case spread
    }
    uint64_t filled = table.storageBytes();
    for (int i = 0; i < 20000; ++i) {
        size_t idx = rng.uniform(0, live.size() - 1);
        table.set(live[idx], 0);
        live[idx] = bump;
        table.set(bump, 3);
        bump += 1 << 20;
    }
    EXPECT_EQ(table.liveEntries(), 1000u);
    // 21000 distinct spill sites have passed through; bounded means
    // we stay at live-set scale, not total-history scale.
    EXPECT_LE(table.storageBytes(), 2 * filled);
    EXPECT_GT(table.pooledNodes(), 0u);
}

TEST(AliasStore, PooledNodesAreRecycled)
{
    AliasTable table;
    table.set(0x10000000, 1);
    table.set(0x20000000, 2);
    table.set(0x30000000, 3);
    uint64_t retained = table.retainedBytes();
    table.set(0x20000000, 0); // frees a subtree into the pool
    EXPECT_GT(table.pooledNodes(), 0u);
    EXPECT_EQ(table.retainedBytes(), retained);
    uint64_t pooled = table.pooledNodes();
    // Re-spilling down the reclaimed path needs exactly the nodes
    // the erase released: all of them must come from the pool.
    table.set(0x20000000, 4);
    EXPECT_LT(table.pooledNodes(), pooled);
    EXPECT_EQ(table.retainedBytes(), retained);
    EXPECT_EQ(table.get(0x20000000), 4u);
}

TEST(AliasStore, SnapshotRoundTripAfterChurnThenReclaim)
{
    AliasTable table;
    Random rng(23);
    std::vector<uint64_t> words;
    for (int i = 0; i < 20000; ++i) {
        uint64_t addr = drawAddr(rng);
        if (table.get(addr) == 0)
            words.push_back(addr & ~7ull);
        table.set(addr, static_cast<uint32_t>(rng.uniform(1, 1000)));
    }
    // Heavy reclaim: erase three quarters of everything ever set.
    for (size_t i = 0; i < words.size(); ++i)
        if (i % 4 != 0)
            table.set(words[i], 0);

    json::Value doc = table.saveState();
    AliasTable restored;
    ASSERT_TRUE(restored.restoreState(doc));
    EXPECT_EQ(restored.saveState().dump(0), doc.dump(0));
    EXPECT_EQ(restored.liveEntries(), table.liveEntries());
    EXPECT_EQ(restored.storageBytes(), table.storageBytes());
    for (size_t i = 0; i < words.size(); i += 97) {
        EXPECT_EQ(restored.get(words[i]), table.get(words[i]));
        EXPECT_EQ(restored.pageHostsAliases(words[i]),
                  table.pageHostsAliases(words[i]));
    }
}

TEST(AliasStore, PreReclamationFixtureRestores)
{
    // A chex-snapshot-v1 alias document as the pre-reclamation code
    // serialized it: set(addr, 0) never freed nodes, so the tree
    // carries dead subtrees — an emptied leaf ([5, []]) and an
    // emptied two-level chain ([6, [[7, []]]]). Restore must accept
    // the fixture, keep the live entry, and prune the dead nodes
    // rather than resurrecting them.
    const char *fixture = R"({
      "tree": [[0, [[1, [[2, [[3, [[4, 42]]]]]]]]],
               [5, []],
               [6, [[7, []]]]],
      "pages": [[263171, 1]],
      "liveEntries": 1
    })";
    // Path 0/1/2/3/4 encodes word index 0b000000000'000000001'
    // 000000010'000000011'000000100 = addr below.
    uint64_t addr = ((((((uint64_t{0} << 9 | 1) << 9 | 2) << 9 | 3)
                      << 9) |
                     4)
                     << 3);
    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::Value::parse(fixture, doc, &err)) << err;

    AliasTable table;
    ASSERT_TRUE(table.restoreState(doc));
    EXPECT_EQ(table.get(addr), 42u);
    EXPECT_EQ(table.liveEntries(), 1u);
    EXPECT_TRUE(table.pageHostsAliases(addr));
    // Root + the four nodes of the one live path; the dead leaf and
    // the dead chain are pruned on the way in.
    EXPECT_EQ(table.storageBytes(),
              5 * uint64_t{AliasTable::NodeBytes});
    // Round-trip: saving the restored table emits the pruned tree.
    AliasTable again;
    ASSERT_TRUE(again.restoreState(table.saveState()));
    EXPECT_EQ(again.get(addr), 42u);
    EXPECT_EQ(again.storageBytes(), table.storageBytes());
}

TEST(AliasStore, RestoreRejectsDuplicateSlotIndices)
{
    // Regression: a malformed snapshot repeating a slot index made
    // the pre-reclamation restoreNode overwrite the child pointer
    // with a fresh node, orphaning the first child — restoreState
    // reported success, the node count stayed inflated, and the next
    // clear() died on the "alias table leak" assert.
    const char *dup_interior = R"({
      "tree": [[0, [[1, [[2, [[3, [[4, 42]]]]]]]]],
               [0, [[1, [[2, [[3, [[5, 43]]]]]]]]]],
      "pages": [],
      "liveEntries": 2
    })";
    const char *dup_leaf = R"({
      "tree": [[0, [[1, [[2, [[3, [[4, 42], [4, 43]]]]]]]]]],
      "pages": [],
      "liveEntries": 1
    })";
    for (const char *text : {dup_interior, dup_leaf}) {
        json::Value doc;
        std::string err;
        ASSERT_TRUE(json::Value::parse(text, doc, &err)) << err;
        AliasTable table;
        table.set(0x8000, 9);
        EXPECT_FALSE(table.restoreState(doc));
        // No leak, no poisoned state: the table is empty and fully
        // usable, and clear() (inside restore and here) is safe.
        EXPECT_EQ(table.liveEntries(), 0u);
        table.set(0x9000, 4);
        EXPECT_EQ(table.get(0x9000), 4u);
        table.clear();
        EXPECT_EQ(table.storageBytes(),
                  uint64_t{AliasTable::NodeBytes});
    }
}

TEST(AliasStore, RestoreRejectsNonPidLeafPayloads)
{
    // Leaf payloads must be nonzero 32-bit PIDs: a wider value would
    // be truncated by get(), and a zero is never serialized.
    const char *too_wide = R"({
      "tree": [[0, [[1, [[2, [[3, [[4, 4294967296]]]]]]]]]],
      "pages": [],
      "liveEntries": 1
    })";
    const char *zero = R"({
      "tree": [[0, [[1, [[2, [[3, [[4, 0]]]]]]]]]],
      "pages": [],
      "liveEntries": 0
    })";
    for (const char *text : {too_wide, zero}) {
        json::Value doc;
        std::string err;
        ASSERT_TRUE(json::Value::parse(text, doc, &err)) << err;
        AliasTable table;
        EXPECT_FALSE(table.restoreState(doc));
        EXPECT_EQ(table.liveEntries(), 0u);
    }
}

TEST(AliasPageCountsTest, SetCountZeroForUnknownPageIsNoop)
{
    // Regression: the restore path used to insert a used slot with
    // count 0 — a tombstone — for a page the table had never seen.
    AliasPageCounts counts;
    counts.setCount(0x1234, 0);
    EXPECT_EQ(counts.usedSlotCount(), 0u);
    EXPECT_EQ(counts.tombstoneCount(), 0u);
    EXPECT_FALSE(counts.hosts(0x1234));

    // Zeroing a page that exists still works and is tracked as a
    // tombstone.
    counts.setCount(0x1234, 3);
    EXPECT_EQ(counts.usedSlotCount(), 1u);
    counts.setCount(0x1234, 0);
    EXPECT_FALSE(counts.hosts(0x1234));
    EXPECT_EQ(counts.tombstoneCount(), 1u);
}

TEST(AliasPageCountsTest, TombstonePurgeAndShrink)
{
    // Page-churn workload: map many pages, then unmap them all. The
    // pre-reclamation table kept every tombstone until the next
    // grow, so probe chains decayed and capacity never came back;
    // now dead slots are purged once they reach half the occupancy
    // and the slot array shrinks to match the live set.
    AliasPageCounts counts;
    constexpr uint64_t N = 10000;
    for (uint64_t p = 0; p < N; ++p)
        counts.increment(p);
    EXPECT_EQ(counts.livePages(), N);
    size_t grown = counts.capacity();
    EXPECT_GE(grown, 2 * N);

    for (uint64_t p = 0; p < N; ++p)
        counts.decrement(p);
    EXPECT_EQ(counts.livePages(), 0u);
    // Tombstones purged, capacity shrunk back to the floor.
    EXPECT_LT(counts.tombstoneCount(), 32u);
    EXPECT_EQ(counts.capacity(), 64u);

    // The table remains fully usable after shrinking.
    for (uint64_t p = 0; p < 100; ++p)
        counts.increment(p * 977);
    for (uint64_t p = 0; p < 100; ++p)
        EXPECT_TRUE(counts.hosts(p * 977));
    EXPECT_EQ(counts.livePages(), 100u);
}

TEST(AliasPageCountsTest, RandomizedChurnMatchesReferenceCounts)
{
    AliasPageCounts counts;
    std::unordered_map<uint64_t, uint32_t> model;
    Random rng(31);
    for (int op = 0; op < 50000; ++op) {
        uint64_t page = rng.uniform(0, 499);
        if (rng.chance(0.5)) {
            counts.increment(page);
            ++model[page];
        } else {
            counts.decrement(page);
            auto it = model.find(page);
            if (it != model.end() && it->second > 0)
                --it->second;
        }
        if (op % 997 == 0) {
            for (uint64_t p = 0; p < 500; p += 17) {
                auto it = model.find(p);
                bool want = it != model.end() && it->second != 0;
                ASSERT_EQ(counts.hosts(p), want) << p;
            }
        }
    }
    uint64_t live = 0;
    for (const auto &[page, count] : model)
        if (count != 0)
            ++live;
    EXPECT_EQ(counts.livePages(), live);
}

TEST(TrackerAliasRange, ClearAliasRangeSaturatesAtAddressSpaceTop)
{
    // Regression: `a < addr + len` wrapped when the range touched
    // the top of the 64-bit address space, so the loop cleared
    // nothing at all.
    AliasTable aliases;
    SpeculativePointerTracker tracker(RuleDatabase::tableI(), aliases);
    uint64_t top = ~0ull & ~7ull; // 0xfffffffffffffff8
    tracker.seedAlias(top, 7);
    tracker.seedAlias(top - 8, 8);
    ASSERT_EQ(aliases.get(top), 7u);

    tracker.clearAliasRange(top - 8, 0x100); // end wraps past zero
    EXPECT_EQ(aliases.get(top), 0u);
    EXPECT_EQ(aliases.get(top - 8), 0u);
}

TEST(TrackerAliasRange, ClearAliasRangeBoundsAreExact)
{
    AliasTable aliases;
    SpeculativePointerTracker tracker(RuleDatabase::tableI(), aliases);
    tracker.seedAlias(0x1000, 1);
    tracker.seedAlias(0x1008, 2);
    tracker.seedAlias(0x1010, 3);
    tracker.clearAliasRange(0x1000, 0x10);
    EXPECT_EQ(aliases.get(0x1000), 0u);
    EXPECT_EQ(aliases.get(0x1008), 0u);
    EXPECT_EQ(aliases.get(0x1010), 3u); // one past the range: kept

    // A zero-length range clears nothing — including the word the
    // unaligned start address rounds down into.
    tracker.clearAliasRange(0x1014, 0);
    EXPECT_EQ(aliases.get(0x1010), 3u);

    // An unaligned tail still clears the word it lands in.
    tracker.clearAliasRange(0x1010, 1);
    EXPECT_EQ(aliases.get(0x1010), 0u);
}

} // namespace
} // namespace chex

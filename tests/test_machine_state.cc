/**
 * @file
 * Functional-execution tests: micro-op semantics over the machine
 * state — ALU ops, FLAGS, effective addresses, loads/stores of all
 * widths, branches, and FP bit-cast arithmetic.
 */

#include <gtest/gtest.h>

#include <bit>

#include "cpu/machine_state.hh"
#include "isa/assembler.hh"

namespace chex
{
namespace
{

class MachineTest : public ::testing::Test
{
  protected:
    MachineTest() : ms(mem) {}

    StaticUop
    alu(AluOp op, RegId dst, RegId a, RegId b)
    {
        StaticUop u;
        u.type = UopType::IntAlu;
        u.op = op;
        u.dst = dst;
        u.src1 = a;
        u.src2 = b;
        return u;
    }

    SparseMemory mem;
    MachineState ms;
};

TEST_F(MachineTest, AluOps)
{
    ms.setReg(RBX, 6);
    ms.setReg(RCX, 3);
    ms.execute(alu(AluOp::Add, RAX, RBX, RCX), 0);
    EXPECT_EQ(ms.reg(RAX), 9u);
    ms.execute(alu(AluOp::Sub, RAX, RBX, RCX), 0);
    EXPECT_EQ(ms.reg(RAX), 3u);
    ms.execute(alu(AluOp::And, RAX, RBX, RCX), 0);
    EXPECT_EQ(ms.reg(RAX), 2u);
    ms.execute(alu(AluOp::Xor, RAX, RBX, RBX), 0);
    EXPECT_EQ(ms.reg(RAX), 0u);
    StaticUop mul = alu(AluOp::Mul, RAX, RBX, RCX);
    mul.type = UopType::IntMult;
    ms.execute(mul, 0);
    EXPECT_EQ(ms.reg(RAX), 18u);
}

TEST_F(MachineTest, ImmediateOperands)
{
    ms.setReg(RBX, 10);
    StaticUop u = alu(AluOp::Shl, RAX, RBX, REG_NONE);
    u.imm = 4;
    u.useImm = true;
    ms.execute(u, 0);
    EXPECT_EQ(ms.reg(RAX), 160u);
}

TEST_F(MachineTest, EffectiveAddressForms)
{
    ms.setReg(RBX, 0x1000);
    ms.setReg(RCX, 4);
    EXPECT_EQ(ms.effectiveAddr(memAt(RBX, 16)), 0x1010u);
    EXPECT_EQ(ms.effectiveAddr(memAt(RBX, 8, RCX, 8)), 0x1028u);
    EXPECT_EQ(ms.effectiveAddr(memAbs(0x7000)), 0x7000u);
    EXPECT_EQ(ms.effectiveAddr(memRip(0x600010)), 0x600010u);
}

TEST_F(MachineTest, LoadStoreWidths)
{
    ms.setReg(RBX, 0x2000);
    ms.setReg(RCX, 0x1122334455667788);
    for (uint8_t size : {1, 2, 4, 8}) {
        StaticUop st;
        st.type = UopType::Store;
        st.src1 = RCX;
        st.mem = memAt(RBX, size * 16);
        st.hasMem = true;
        st.memSize = size;
        ms.execute(st, 0);

        StaticUop ld;
        ld.type = UopType::Load;
        ld.dst = RDX;
        ld.mem = st.mem;
        ld.hasMem = true;
        ld.memSize = size;
        UopEffect eff = ms.execute(ld, 0);
        uint64_t mask =
            size == 8 ? ~0ull : ((1ull << (size * 8)) - 1);
        EXPECT_EQ(ms.reg(RDX), 0x1122334455667788ull & mask);
        EXPECT_TRUE(eff.hasAddr);
    }
}

TEST_F(MachineTest, CmpSetsFlagsAndBranchTests)
{
    ms.setReg(RBX, 5);
    ms.setReg(RCX, 9);
    StaticUop cmp = alu(AluOp::Cmp, FLAGS, RBX, RCX);
    ms.execute(cmp, 0);

    StaticUop br;
    br.type = UopType::Branch;
    br.cc = CondCode::LT;
    br.src1 = FLAGS;
    UopEffect eff = ms.execute(br, 0x400800);
    EXPECT_TRUE(eff.isBranch);
    EXPECT_TRUE(eff.branchTaken);
    EXPECT_EQ(eff.branchTarget, 0x400800u);

    br.cc = CondCode::GT;
    eff = ms.execute(br, 0x400800);
    EXPECT_FALSE(eff.branchTaken);
}

TEST_F(MachineTest, IndirectBranchUsesRegister)
{
    ms.setReg(RAX, 0x400c00);
    StaticUop br;
    br.type = UopType::Branch;
    br.src1 = RAX;
    br.indirect = true;
    UopEffect eff = ms.execute(br, 0);
    EXPECT_TRUE(eff.branchTaken);
    EXPECT_EQ(eff.branchTarget, 0x400c00u);
}

TEST_F(MachineTest, LeaComputesWithoutAccess)
{
    ms.setReg(RBX, 0x3000);
    StaticUop lea;
    lea.type = UopType::Lea;
    lea.dst = RAX;
    lea.mem = memAt(RBX, 0x40);
    lea.hasMem = true;
    ms.execute(lea, 0);
    EXPECT_EQ(ms.reg(RAX), 0x3040u);
    EXPECT_EQ(mem.residentPages(), 0u); // no memory touched
}

TEST_F(MachineTest, FpArithmeticViaBitcast)
{
    ms.setReg(XMM0, std::bit_cast<uint64_t>(1.5));
    ms.setReg(XMM1, std::bit_cast<uint64_t>(2.25));
    StaticUop fadd;
    fadd.type = UopType::FpAlu;
    fadd.op = AluOp::FAdd;
    fadd.dst = XMM2;
    fadd.src1 = XMM0;
    fadd.src2 = XMM1;
    ms.execute(fadd, 0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(ms.reg(XMM2)), 3.75);

    StaticUop fcvt;
    fcvt.type = UopType::FpAlu;
    fcvt.op = AluOp::FCvt;
    fcvt.dst = XMM3;
    fcvt.src1 = RBX;
    ms.setReg(RBX, 7);
    ms.execute(fcvt, 0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(ms.reg(XMM3)), 7.0);
}

TEST_F(MachineTest, FpDivideByZeroGuard)
{
    ms.setReg(XMM0, std::bit_cast<uint64_t>(8.0));
    ms.setReg(XMM1, 0);
    StaticUop fdiv;
    fdiv.type = UopType::FpDiv;
    fdiv.op = AluOp::FDiv;
    fdiv.dst = XMM2;
    fdiv.src1 = XMM0;
    fdiv.src2 = XMM1;
    ms.execute(fdiv, 0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(ms.reg(XMM2)), 8.0);
}

TEST_F(MachineTest, CapUopsHaveNoArchEffect)
{
    ms.setReg(RAX, 42);
    StaticUop cap;
    cap.type = UopType::CapCheck;
    cap.src1 = RAX;
    ms.execute(cap, 0);
    EXPECT_EQ(ms.reg(RAX), 42u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

} // namespace
} // namespace chex

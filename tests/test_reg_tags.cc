/**
 * @file
 * Register-tag-file tests: the committed + transient PID vectors of
 * Section V-D, including squash recovery by sequence number and
 * commit folding.
 */

#include <gtest/gtest.h>

#include "tracker/reg_tags.hh"

namespace chex
{
namespace
{

TEST(RegTags, FreshFileIsUntagged)
{
    RegTagFile tags;
    for (unsigned r = 0; r < NumArchRegs; ++r)
        EXPECT_EQ(tags.current(static_cast<RegId>(r)), NoPid);
}

TEST(RegTags, YoungestTransientWins)
{
    RegTagFile tags;
    tags.write(RAX, 1, 10);
    tags.write(RAX, 2, 20);
    EXPECT_EQ(tags.current(RAX), 2u);
    EXPECT_EQ(tags.committed(RAX), NoPid);
}

TEST(RegTags, CommitFoldsIntoFinalized)
{
    RegTagFile tags;
    tags.write(RAX, 1, 10);
    tags.write(RAX, 2, 20);
    tags.commitUpTo(15);
    EXPECT_EQ(tags.committed(RAX), 1u);
    EXPECT_EQ(tags.current(RAX), 2u); // transient 20 still pending
    tags.commitUpTo(20);
    EXPECT_EQ(tags.committed(RAX), 2u);
    EXPECT_EQ(tags.transientCount(), 0u);
}

TEST(RegTags, SquashDiscardsYoungerOnly)
{
    // The recovery protocol: on a squash at sequence number S, every
    // transient tag with seq > S is removed (Section V-D).
    RegTagFile tags;
    tags.write(RAX, 1, 10);
    tags.write(RAX, 2, 20);
    tags.write(RBX, 3, 25);
    tags.squashAfter(15);
    EXPECT_EQ(tags.current(RAX), 1u);
    EXPECT_EQ(tags.current(RBX), NoPid);
    EXPECT_EQ(tags.transientCount(), 1u);
}

TEST(RegTags, SquashThenRetagReplaysCorrectly)
{
    RegTagFile tags;
    tags.write(RAX, 1, 10);
    tags.write(RAX, 2, 20);
    tags.squashAfter(10);
    // Refetched path writes a different tag at a new seq.
    tags.write(RAX, 5, 21);
    EXPECT_EQ(tags.current(RAX), 5u);
    tags.commitUpTo(21);
    EXPECT_EQ(tags.committed(RAX), 5u);
}

TEST(RegTags, CommittedSurvivesSquash)
{
    RegTagFile tags;
    tags.write(RAX, 7, 5);
    tags.commitUpTo(5);
    tags.write(RAX, 9, 10);
    tags.squashAfter(6);
    EXPECT_EQ(tags.current(RAX), 7u); // falls back to finalized
}

TEST(RegTags, IndependentRegisters)
{
    RegTagFile tags;
    tags.write(RAX, 1, 1);
    tags.write(RBX, 2, 2);
    tags.write(R15, 3, 3);
    EXPECT_EQ(tags.current(RAX), 1u);
    EXPECT_EQ(tags.current(RBX), 2u);
    EXPECT_EQ(tags.current(R15), 3u);
    EXPECT_EQ(tags.current(RCX), NoPid);
}

TEST(RegTags, ClearResets)
{
    RegTagFile tags;
    tags.write(RAX, 1, 1);
    tags.commitUpTo(1);
    tags.write(RAX, 2, 2);
    tags.clear();
    EXPECT_EQ(tags.current(RAX), NoPid);
    EXPECT_EQ(tags.committed(RAX), NoPid);
    EXPECT_EQ(tags.transientCount(), 0u);
}

} // namespace
} // namespace chex

/**
 * @file
 * Tests for the CLI flag parser shared by the chex-campaign
 * subcommands: handler dispatch, positional collection, unknown and
 * valueless flags, and — the behavior that motivated the tests —
 * rejection of duplicate occurrences of non-repeatable flags
 * instead of silently taking the last value. Repeatable flags
 * (Repeat::Allowed, e.g. --cache) and boolean switches stay legal
 * to repeat.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flag_parser.hh"

namespace chex
{
namespace
{

/** argv adapter: parse() wants mutable char** like main() gets. */
cli::ParseStatus
parse(cli::FlagParser &parser, std::vector<std::string> args)
{
    std::vector<char *> argv;
    argv.push_back(const_cast<char *>("prog"));
    for (std::string &a : args)
        argv.push_back(a.data());
    return parser.parse(static_cast<int>(argv.size()), argv.data(),
                        1);
}

TEST(FlagParser, DispatchesValuesSwitchesAndPositionals)
{
    cli::FlagParser p("prog", "sub", "summary");
    std::string value;
    int hits = 0;
    p.add("--value", "V", "a value", [&](const std::string &v) {
        value = v;
        return true;
    });
    p.add("--switch", "a switch", [&]() { ++hits; });
    p.positionals("FILE...", "input files");

    EXPECT_EQ(parse(p, {"--switch", "a.json", "--value", "x",
                        "b.json"}),
              cli::ParseStatus::Ok);
    EXPECT_EQ(value, "x");
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(p.positionalArgs(),
              (std::vector<std::string>{"a.json", "b.json"}));
}

TEST(FlagParser, RejectsUnknownAndValuelessFlags)
{
    cli::FlagParser p("prog", "sub", "summary");
    p.add("--value", "V", "a value",
          [](const std::string &) { return true; });

    EXPECT_EQ(parse(p, {"--nope"}), cli::ParseStatus::ExitUsage);
    EXPECT_EQ(parse(p, {"--value"}), cli::ParseStatus::ExitUsage);
    EXPECT_EQ(parse(p, {"stray"}), cli::ParseStatus::ExitUsage);
}

TEST(FlagParser, HandlerRejectionIsAUsageError)
{
    cli::FlagParser p("prog", "sub", "summary");
    p.add("--num", "N", "a number",
          [](const std::string &v) { return v == "1"; });
    EXPECT_EQ(parse(p, {"--num", "1"}), cli::ParseStatus::Ok);
    EXPECT_EQ(parse(p, {"--num", "x"}), cli::ParseStatus::ExitUsage);
}

TEST(FlagParser, RejectsDuplicateNonRepeatableFlags)
{
    cli::FlagParser p("prog", "sub", "summary");
    std::string value;
    p.add("--seed", "S", "a seed", [&](const std::string &v) {
        value = v;
        return true;
    });

    // The duplicate is refused loudly — before it, "--seed 1
    // --seed 2" silently ran with seed 2.
    EXPECT_EQ(parse(p, {"--seed", "1", "--seed", "2"}),
              cli::ParseStatus::ExitUsage);
    // The first occurrence was consumed before the duplicate was
    // seen; the caller exits on ExitUsage, so that is harmless.
    EXPECT_EQ(value, "1");
}

TEST(FlagParser, RepeatableFlagsAccumulate)
{
    cli::FlagParser p("prog", "sub", "summary");
    std::vector<std::string> paths;
    p.add("--cache", "FILE", "a cache file",
          [&](const std::string &v) {
              paths.push_back(v);
              return true;
          },
          cli::Repeat::Allowed);

    EXPECT_EQ(parse(p, {"--cache", "a.json", "--cache", "b.json"}),
              cli::ParseStatus::Ok);
    EXPECT_EQ(paths, (std::vector<std::string>{"a.json", "b.json"}));
}

TEST(FlagParser, SwitchesMayRepeat)
{
    cli::FlagParser p("prog", "sub", "summary");
    int hits = 0;
    p.add("--quiet", "a switch", [&]() { ++hits; });
    EXPECT_EQ(parse(p, {"--quiet", "--quiet"}),
              cli::ParseStatus::Ok);
    EXPECT_EQ(hits, 2);
}

TEST(FlagParser, FreshParseForgetsPriorOccurrences)
{
    // One parser object re-parsed (as tests do) must not carry
    // duplicate-detection state across parse() calls.
    cli::FlagParser p("prog", "sub", "summary");
    p.add("--seed", "S", "a seed",
          [](const std::string &) { return true; });
    EXPECT_EQ(parse(p, {"--seed", "1"}), cli::ParseStatus::Ok);
    EXPECT_EQ(parse(p, {"--seed", "2"}), cli::ParseStatus::Ok);
}

} // namespace
} // namespace chex

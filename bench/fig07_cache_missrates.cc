/**
 * @file
 * Figure 7: capability-cache miss rate at 64 vs 128 entries (top)
 * and alias-cache miss rate at 256 vs 512 entries (bottom), per
 * benchmark under the prediction-driven variant.
 *
 * Paper targets: ~2.1 % average capability-cache miss rate at 64
 * entries; ~17.3 % average alias-cache miss rate, heavily dominated
 * by pointer-intensive outliers.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Figure 7: Capability (top) and Alias Cache (bottom) "
                "Miss Rates\n\n");

    Table t({"benchmark", "cap$ 64e (1KB)", "cap$ 128e (2KB)",
             "alias$ 256e (4KB)", "alias$ 512e (8KB)"});

    SystemConfig small;
    small.variant.kind = VariantKind::MicrocodePrediction;
    small.capCacheEntries = 64;
    small.aliasCache.sets = 128; // 256 entries, 2-way

    SystemConfig big;
    big.variant.kind = VariantKind::MicrocodePrediction;
    big.capCacheEntries = 128;
    big.aliasCache.sets = 256; // 512 entries, 2-way

    // The whole (14 profiles x 2 configs) sweep runs on the campaign
    // driver's worker pool (row-major results), so it parallelizes
    // and caches like fig06.
    const std::vector<ConfigPoint> points = {
        {"small-caches", small},
        {"big-caches", big},
    };
    const std::vector<BenchmarkProfile> &profiles = allProfiles();
    std::vector<RunResult> results = runMatrix(profiles, points);

    std::vector<double> cap64, cap128, alias256, alias512;
    for (size_t pi = 0; pi < profiles.size(); ++pi) {
        const BenchmarkProfile &p = profiles[pi];
        const RunResult &rs = results[pi * points.size() + 0];
        const RunResult &rb = results[pi * points.size() + 1];

        cap64.push_back(rs.capCacheMissRate);
        cap128.push_back(rb.capCacheMissRate);
        alias256.push_back(rs.aliasCacheMissRate);
        alias512.push_back(rb.aliasCacheMissRate);

        t.addRow({p.name, Table::pct(rs.capCacheMissRate),
                  Table::pct(rb.capCacheMissRate),
                  Table::pct(rs.aliasCacheMissRate),
                  Table::pct(rb.aliasCacheMissRate)});
    }

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    t.addRow({"average", Table::pct(mean(cap64)),
              Table::pct(mean(cap128)), Table::pct(mean(alias256)),
              Table::pct(mean(alias512))});
    t.print(std::cout);

    std::printf("\nPaper targets: 2.1%% average capability-cache miss "
                "rate (64 entries); 17.3%% average alias-cache miss "
                "rate with outliers dominating. Measured: %.1f%% and "
                "%.1f%%.\n",
                mean(cap64) * 100, mean(alias256) * 100);
    return 0;
}

/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: run a
 * benchmark profile under a variant and collect the RunResult, with
 * a process-wide scale knob (CHEX_BENCH_SCALE divides iteration
 * counts for quick smoke runs).
 */

#ifndef CHEX_BENCH_COMMON_HH
#define CHEX_BENCH_COMMON_HH

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "driver/campaign.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace bench
{

/**
 * Parse env var @p name as a positive integer. Garbage, zero, and
 * negative values are rejected with a stderr warning and replaced by
 * @p dflt (clamped to >= 1) instead of being silently misread.
 */
inline uint64_t
positiveEnv(const char *name, uint64_t dflt)
{
    uint64_t fallback = dflt ? dflt : 1;
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s, &end, 10);
    // strtoull wraps negatives around instead of failing.
    bool negative = std::strchr(s, '-') != nullptr;
    if (negative || errno != 0 || !end || *end != '\0' || v == 0) {
        std::fprintf(stderr,
                     "bench: %s='%s' is not a positive integer; "
                     "using %llu\n",
                     name, s,
                     static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

/** Iteration divisor from $CHEX_BENCH_SCALE (default 1). */
inline uint64_t
scale()
{
    return positiveEnv("CHEX_BENCH_SCALE", 1);
}

/** Run @p profile under @p cfg; returns the collected results. */
inline RunResult
runProfile(const BenchmarkProfile &profile, SystemConfig cfg,
           uint64_t seed = 1)
{
    BenchmarkProfile p = profile.scaledBy(scale());
    System sys(cfg);
    sys.load(generateWorkload(p, seed));
    RunResult r = sys.run();
    if (!r.exited) {
        std::fprintf(stderr,
                     "bench: %s did not exit cleanly (violation=%d)\n",
                     p.name.c_str(), r.violationDetected ? 1 : 0);
        std::exit(1);
    }
    return r;
}

/** Run under just a variant kind with default config. */
inline RunResult
runVariant(const BenchmarkProfile &profile, VariantKind kind,
           uint64_t seed = 1)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    return runProfile(profile, cfg, seed);
}

/** Worker threads for sweeps: $CHEX_BENCH_JOBS, default all cores. */
inline unsigned
benchJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<unsigned>(
        positiveEnv("CHEX_BENCH_JOBS", hw ? hw : 1));
}

/** Fork-isolated sweep workers: $CHEX_BENCH_ISOLATE (0/unset = off). */
inline bool
benchIsolate()
{
    const char *s = std::getenv("CHEX_BENCH_ISOLATE");
    return s && *s && std::strcmp(s, "0") != 0;
}

/**
 * Per-attempt watchdog for isolated sweeps, in seconds:
 * $CHEX_BENCH_TIMEOUT (0/unset = no watchdog; non-numbers warn and
 * disable it).
 */
inline double
benchTimeout()
{
    const char *s = std::getenv("CHEX_BENCH_TIMEOUT");
    if (!s || !*s)
        return 0.0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (!end || *end != '\0' || !(v >= 0.0)) {
        std::fprintf(stderr,
                     "bench: CHEX_BENCH_TIMEOUT='%s' is not a "
                     "non-negative number of seconds; watchdog off\n",
                     s);
        return 0.0;
    }
    return v;
}

/**
 * Run the (profile × variant) sweep on the campaign driver's worker
 * pool. Applies the same CHEX_BENCH_SCALE iteration scaling and the
 * same fixed workload seed as runProfile/runVariant, so the results
 * are identical to the serial helpers — just produced in parallel.
 * CHEX_BENCH_ISOLATE=1 forks each job into its own child (crash
 * capture) and CHEX_BENCH_TIMEOUT bounds each attempt's wall clock.
 *
 * Returns results in row-major order:
 * `results[pi * variants.size() + vi]`.
 */
inline std::vector<RunResult>
runMatrix(const std::vector<BenchmarkProfile> &profiles,
          const std::vector<VariantKind> &variants, uint64_t seed = 1)
{
    std::vector<BenchmarkProfile> scaled;
    scaled.reserve(profiles.size());
    for (const BenchmarkProfile &p : profiles)
        scaled.push_back(p.scaledBy(scale()));

    std::vector<driver::JobSpec> jobs =
        driver::buildMatrix(scaled, variants, seed);
    driver::CampaignOptions opts;
    opts.workers = benchJobs();
    opts.seed = seed;
    opts.isolation = benchIsolate();
    opts.timeoutSeconds = benchTimeout();
    driver::CampaignReport report = driver::runCampaign(jobs, opts);

    std::vector<RunResult> results;
    results.reserve(report.jobs.size());
    for (const driver::JobResult &jr : report.jobs) {
        if (jr.failed || !jr.run.exited) {
            std::fprintf(stderr,
                         "bench: %s did not complete cleanly%s%s\n",
                         jr.label.c_str(),
                         jr.failed ? ": " : " (violation)",
                         jr.failed ? jr.error.c_str() : "");
            std::exit(1);
        }
        results.push_back(jr.run);
    }
    return results;
}

/** Geometric mean helper for summary rows. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace bench
} // namespace chex

#endif // CHEX_BENCH_COMMON_HH

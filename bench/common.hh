/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: run a
 * benchmark profile under a variant and collect the RunResult, or
 * fan a (profile × variant/config) sweep out on the campaign
 * driver's worker pool. Process-wide env knobs (parsed by
 * driver::optionsFromEnv, shared with the chex-campaign CLI):
 * CHEX_BENCH_SCALE divides iteration counts for quick smoke runs,
 * CHEX_BENCH_JOBS caps the pool width, CHEX_BENCH_ISOLATE /
 * CHEX_BENCH_TIMEOUT fork and watchdog each job, CHEX_BENCH_CACHE
 * points at previous campaign reports whose matching successful jobs
 * are reused instead of re-simulated, CHEX_BENCH_SNAPSHOT points at
 * a snapshot bundle (chex-campaign snapshot) whose matching warmed
 * machine states are restored instead of re-simulating each job's
 * warm-up prefix, and CHEX_BENCH_SHARD=I/N runs
 * only every Nth sweep cell (the resulting figures are partial; the
 * complete-figure path is to shard via the CLI, merge, and feed the
 * merged report back through CHEX_BENCH_CACHE).
 */

#ifndef CHEX_BENCH_COMMON_HH
#define CHEX_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "driver/campaign.hh"
#include "driver/env.hh"
#include "driver/report.hh"
#include "sim/system.hh"
#include "snapshot/snapshot.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace bench
{

/** Iteration divisor from $CHEX_BENCH_SCALE (default 1). */
inline uint64_t
scale()
{
    return driver::optionsFromEnv().scale;
}

/** Run @p profile under @p cfg; returns the collected results. */
inline RunResult
runProfile(const BenchmarkProfile &profile, SystemConfig cfg,
           uint64_t seed = 1)
{
    BenchmarkProfile p = profile.scaledBy(scale());
    System sys(cfg);
    sys.load(generateWorkload(p, seed));
    RunResult r = sys.run();
    if (!r.exited) {
        std::fprintf(stderr,
                     "bench: %s did not exit cleanly (violation=%d)\n",
                     p.name.c_str(), r.violationDetected ? 1 : 0);
        std::exit(1);
    }
    return r;
}

/** Run under just a variant kind with default config. */
inline RunResult
runVariant(const BenchmarkProfile &profile, VariantKind kind,
           uint64_t seed = 1)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    return runProfile(profile, cfg, seed);
}

/** Worker threads for sweeps: $CHEX_BENCH_JOBS, default all cores. */
inline unsigned
benchJobs()
{
    unsigned jobs = driver::optionsFromEnv().jobs;
    if (jobs)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

/** Fork-isolated sweep workers: $CHEX_BENCH_ISOLATE (0/unset = off). */
inline bool
benchIsolate()
{
    return driver::optionsFromEnv().isolate;
}

/**
 * Per-attempt watchdog for isolated sweeps, in seconds:
 * $CHEX_BENCH_TIMEOUT (0/unset = no watchdog; non-numbers warn and
 * disable it).
 */
inline double
benchTimeout()
{
    return driver::optionsFromEnv().timeoutSeconds;
}

/**
 * Result-cache reports from $CHEX_BENCH_CACHE (colon-separated
 * report paths). Unlike the CLI — where an unreadable --cache file
 * is a hard error — a bad path here warns and is skipped, so a
 * stale environment variable cannot block figure regeneration.
 */
inline std::vector<driver::CampaignReport>
benchCacheReports()
{
    std::vector<driver::CampaignReport> reports;
    for (const std::string &path : driver::optionsFromEnv().cachePaths) {
        driver::CampaignReport rep;
        std::string err;
        if (!driver::loadReportFile(path, rep, &err)) {
            std::fprintf(stderr,
                         "bench: CHEX_BENCH_CACHE: %s; skipping\n",
                         err.c_str());
            continue;
        }
        reports.push_back(std::move(rep));
    }
    return reports;
}

/**
 * Warm-state bundle from $CHEX_BENCH_SNAPSHOT (a file written by
 * `chex-campaign snapshot`): sweep cells whose spec hash matches a
 * bundle entry restore the warmed machine instead of re-simulating
 * their warm-up prefix. Same warn-and-skip policy as
 * benchCacheReports — an unreadable or corrupt bundle degrades to
 * from-scratch simulation instead of blocking figure regeneration.
 */
inline std::shared_ptr<const snapshot::Bundle>
benchSnapshotBundle()
{
    std::string path = driver::optionsFromEnv().snapshotPath;
    if (path.empty())
        return nullptr;
    snapshot::Bundle bundle;
    std::string err;
    if (!snapshot::loadBundleFile(path, &bundle, &err)) {
        std::fprintf(stderr,
                     "bench: CHEX_BENCH_SNAPSHOT: %s; skipping\n",
                     err.c_str());
        return nullptr;
    }
    return std::make_shared<const snapshot::Bundle>(std::move(bundle));
}

/**
 * Run a prepared job list on the campaign driver with the shared
 * bench env knobs (CHEX_BENCH_JOBS/ISOLATE/TIMEOUT/CACHE/SNAPSHOT/
 * SHARD) applied, and return the per-job results in submission
 * order. Every
 * failed cell is reported before exiting — a sweep that dies on the
 * first failure hides every other broken cell, which matters when a
 * config change breaks a whole variant column at once.
 *
 * Under CHEX_BENCH_SHARD, out-of-shard cells come back as zeroed
 * RunResults with a loud note that the figures are partial; sharded
 * harness output is for smoke coverage, not publication tables.
 */
inline std::vector<RunResult>
runCampaignJobs(std::vector<driver::JobSpec> jobs, uint64_t seed)
{
    driver::EnvOptions env = driver::optionsFromEnv();
    driver::CampaignOptions opts;
    opts.seed = seed;
    env.applyTo(opts);
    if (!opts.workers)
        opts.workers = benchJobs();
    opts.cacheReports = benchCacheReports();
    opts.snapshot = benchSnapshotBundle();
    driver::CampaignReport report = driver::runCampaign(jobs, opts);

    std::vector<RunResult> results;
    results.reserve(report.jobs.size());
    size_t bad = 0;
    for (const driver::JobResult &jr : report.jobs) {
        // Attack jobs (JobSpec::attack) are *supposed* to end in a
        // detected violation (enforcement variants) or a hijack
        // (baseline): both are valid measurements, not broken cells.
        bool attack_outcome =
            jr.index < jobs.size() && !jobs[jr.index].attack.empty() &&
            (jr.run.violationDetected || jr.run.hijackedControlFlow);
        if (jr.skipped) {
            // Out-of-shard placeholder, not a failure.
        } else if (!jr.failed && attack_outcome) {
            // A concluded exploit measurement.
        } else if (jr.failed || !jr.run.exited) {
            std::fprintf(stderr,
                         "bench: %s did not complete cleanly%s%s\n",
                         jr.label.c_str(),
                         jr.failed ? ": " : " (violation)",
                         jr.failed ? jr.error.c_str() : "");
            ++bad;
        }
        results.push_back(jr.run);
    }
    if (bad) {
        std::fprintf(stderr, "bench: %zu of %zu sweep cells failed\n",
                     bad, report.jobs.size());
        std::exit(1);
    }
    if (report.jobsSkipped) {
        std::fprintf(stderr,
                     "bench: CHEX_BENCH_SHARD=%u/%u: %zu of %zu "
                     "sweep cells out of shard; figures below are "
                     "partial\n",
                     report.shardIndex, report.shardCount,
                     report.jobsSkipped, report.jobs.size());
    }
    return results;
}

/**
 * Run the (profile × variant) sweep on the campaign driver's worker
 * pool. Applies the same CHEX_BENCH_SCALE iteration scaling and the
 * same fixed workload seed as runProfile/runVariant, so the results
 * are identical to the serial helpers — just produced in parallel.
 * CHEX_BENCH_ISOLATE=1 forks each job into its own child (crash
 * capture), CHEX_BENCH_TIMEOUT bounds each attempt's wall clock,
 * and CHEX_BENCH_CACHE satisfies already-simulated cells from prior
 * reports.
 *
 * Returns results in row-major order:
 * `results[pi * variants.size() + vi]`.
 */
inline std::vector<RunResult>
runMatrix(const std::vector<BenchmarkProfile> &profiles,
          const std::vector<VariantKind> &variants, uint64_t seed = 1)
{
    std::vector<BenchmarkProfile> scaled;
    scaled.reserve(profiles.size());
    for (const BenchmarkProfile &p : profiles)
        scaled.push_back(p.scaledBy(scale()));

    return runCampaignJobs(driver::buildMatrix(scaled, variants, seed),
                           seed);
}

/** A named full-SystemConfig column for config sweeps. */
struct ConfigPoint
{
    std::string name;
    SystemConfig config;
};

/**
 * Config-sweep variant of runMatrix for harnesses whose columns
 * differ by more than the enforcement variant (cache sizes,
 * predictor entries, ... — fig07/fig08). Same scaling, seeding, env
 * knobs, and row-major order: `results[pi * configs.size() + ci]`.
 */
inline std::vector<RunResult>
runMatrix(const std::vector<BenchmarkProfile> &profiles,
          const std::vector<ConfigPoint> &configs, uint64_t seed = 1)
{
    std::vector<driver::JobSpec> jobs;
    jobs.reserve(profiles.size() * configs.size());
    for (const BenchmarkProfile &p : profiles) {
        BenchmarkProfile scaled = p.scaledBy(scale());
        for (const ConfigPoint &c : configs) {
            driver::JobSpec spec;
            spec.label = p.name + "/" + c.name;
            spec.profile = scaled;
            spec.config = c.config;
            spec.workloadSeed = seed;
            jobs.push_back(std::move(spec));
        }
    }
    return runCampaignJobs(std::move(jobs), seed);
}

/**
 * Geometric mean helper for summary rows. Zero and negative inputs
 * have no log — instead of silently poisoning the whole summary with
 * -inf/NaN they are skipped with a warning (0 if nothing remains).
 */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    size_t used = 0;
    for (double v : values) {
        if (!(v > 0.0)) { // also catches NaN
            std::fprintf(stderr,
                         "bench: geomean: skipping non-positive "
                         "value %g\n",
                         v);
            continue;
        }
        log_sum += std::log(v);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(used));
}

} // namespace bench
} // namespace chex

#endif // CHEX_BENCH_COMMON_HH

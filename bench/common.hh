/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: run a
 * benchmark profile under a variant and collect the RunResult, or
 * fan a (profile × variant/config) sweep out on the campaign
 * driver's worker pool. Process-wide env knobs: CHEX_BENCH_SCALE
 * divides iteration counts for quick smoke runs, CHEX_BENCH_JOBS
 * caps the pool width, CHEX_BENCH_ISOLATE/CHEX_BENCH_TIMEOUT fork
 * and watchdog each job, and CHEX_BENCH_CACHE points at previous
 * campaign reports whose matching successful jobs are reused
 * instead of re-simulated.
 */

#ifndef CHEX_BENCH_COMMON_HH
#define CHEX_BENCH_COMMON_HH

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/json.hh"
#include "driver/campaign.hh"
#include "driver/report.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace bench
{

/**
 * Parse env var @p name as a positive integer. Garbage, zero, and
 * negative values are rejected with a stderr warning and replaced by
 * @p dflt (clamped to >= 1) instead of being silently misread.
 */
inline uint64_t
positiveEnv(const char *name, uint64_t dflt)
{
    uint64_t fallback = dflt ? dflt : 1;
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s, &end, 10);
    // strtoull wraps negatives around instead of failing.
    bool negative = std::strchr(s, '-') != nullptr;
    if (negative || errno != 0 || !end || *end != '\0' || v == 0) {
        std::fprintf(stderr,
                     "bench: %s='%s' is not a positive integer; "
                     "using %llu\n",
                     name, s,
                     static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

/** Iteration divisor from $CHEX_BENCH_SCALE (default 1). */
inline uint64_t
scale()
{
    return positiveEnv("CHEX_BENCH_SCALE", 1);
}

/** Run @p profile under @p cfg; returns the collected results. */
inline RunResult
runProfile(const BenchmarkProfile &profile, SystemConfig cfg,
           uint64_t seed = 1)
{
    BenchmarkProfile p = profile.scaledBy(scale());
    System sys(cfg);
    sys.load(generateWorkload(p, seed));
    RunResult r = sys.run();
    if (!r.exited) {
        std::fprintf(stderr,
                     "bench: %s did not exit cleanly (violation=%d)\n",
                     p.name.c_str(), r.violationDetected ? 1 : 0);
        std::exit(1);
    }
    return r;
}

/** Run under just a variant kind with default config. */
inline RunResult
runVariant(const BenchmarkProfile &profile, VariantKind kind,
           uint64_t seed = 1)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    return runProfile(profile, cfg, seed);
}

/** Worker threads for sweeps: $CHEX_BENCH_JOBS, default all cores. */
inline unsigned
benchJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<unsigned>(
        positiveEnv("CHEX_BENCH_JOBS", hw ? hw : 1));
}

/** Fork-isolated sweep workers: $CHEX_BENCH_ISOLATE (0/unset = off). */
inline bool
benchIsolate()
{
    const char *s = std::getenv("CHEX_BENCH_ISOLATE");
    return s && *s && std::strcmp(s, "0") != 0;
}

/**
 * Per-attempt watchdog for isolated sweeps, in seconds:
 * $CHEX_BENCH_TIMEOUT (0/unset = no watchdog; non-numbers warn and
 * disable it).
 */
inline double
benchTimeout()
{
    const char *s = std::getenv("CHEX_BENCH_TIMEOUT");
    if (!s || !*s)
        return 0.0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (!end || *end != '\0' || !(v >= 0.0)) {
        std::fprintf(stderr,
                     "bench: CHEX_BENCH_TIMEOUT='%s' is not a "
                     "non-negative number of seconds; watchdog off\n",
                     s);
        return 0.0;
    }
    return v;
}

/**
 * Result-cache reports from $CHEX_BENCH_CACHE (colon-separated
 * report paths). Unlike the CLI — where an unreadable --cache file
 * is a hard error — a bad path here warns and is skipped, so a
 * stale environment variable cannot block figure regeneration.
 */
inline std::vector<driver::CampaignReport>
benchCacheReports()
{
    std::vector<driver::CampaignReport> reports;
    const char *s = std::getenv("CHEX_BENCH_CACHE");
    if (!s || !*s)
        return reports;
    std::stringstream paths(s);
    std::string path;
    while (std::getline(paths, path, ':')) {
        if (path.empty())
            continue;
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr,
                         "bench: CHEX_BENCH_CACHE: cannot read "
                         "'%s'; skipping\n",
                         path.c_str());
            continue;
        }
        std::stringstream body;
        body << in.rdbuf();
        json::Value doc;
        std::string err;
        driver::CampaignReport rep;
        if (!json::Value::parse(body.str(), doc, &err) ||
            !driver::fromJson(doc, rep, &err)) {
            std::fprintf(stderr,
                         "bench: CHEX_BENCH_CACHE: '%s' is not a "
                         "campaign report (%s); skipping\n",
                         path.c_str(), err.c_str());
            continue;
        }
        reports.push_back(std::move(rep));
    }
    return reports;
}

/**
 * Run a prepared job list on the campaign driver with the shared
 * bench env knobs (CHEX_BENCH_JOBS/ISOLATE/TIMEOUT/CACHE) applied,
 * and return the per-job results in submission order. Every failed
 * cell is reported before exiting — a sweep that dies on the first
 * failure hides every other broken cell, which matters when a config
 * change breaks a whole variant column at once.
 */
inline std::vector<RunResult>
runCampaignJobs(std::vector<driver::JobSpec> jobs, uint64_t seed)
{
    driver::CampaignOptions opts;
    opts.workers = benchJobs();
    opts.seed = seed;
    opts.isolation = benchIsolate();
    opts.timeoutSeconds = benchTimeout();
    opts.cacheReports = benchCacheReports();
    driver::CampaignReport report = driver::runCampaign(jobs, opts);

    std::vector<RunResult> results;
    results.reserve(report.jobs.size());
    size_t bad = 0;
    for (const driver::JobResult &jr : report.jobs) {
        if (jr.failed || !jr.run.exited) {
            std::fprintf(stderr,
                         "bench: %s did not complete cleanly%s%s\n",
                         jr.label.c_str(),
                         jr.failed ? ": " : " (violation)",
                         jr.failed ? jr.error.c_str() : "");
            ++bad;
        }
        results.push_back(jr.run);
    }
    if (bad) {
        std::fprintf(stderr, "bench: %zu of %zu sweep cells failed\n",
                     bad, report.jobs.size());
        std::exit(1);
    }
    return results;
}

/**
 * Run the (profile × variant) sweep on the campaign driver's worker
 * pool. Applies the same CHEX_BENCH_SCALE iteration scaling and the
 * same fixed workload seed as runProfile/runVariant, so the results
 * are identical to the serial helpers — just produced in parallel.
 * CHEX_BENCH_ISOLATE=1 forks each job into its own child (crash
 * capture), CHEX_BENCH_TIMEOUT bounds each attempt's wall clock,
 * and CHEX_BENCH_CACHE satisfies already-simulated cells from prior
 * reports.
 *
 * Returns results in row-major order:
 * `results[pi * variants.size() + vi]`.
 */
inline std::vector<RunResult>
runMatrix(const std::vector<BenchmarkProfile> &profiles,
          const std::vector<VariantKind> &variants, uint64_t seed = 1)
{
    std::vector<BenchmarkProfile> scaled;
    scaled.reserve(profiles.size());
    for (const BenchmarkProfile &p : profiles)
        scaled.push_back(p.scaledBy(scale()));

    return runCampaignJobs(driver::buildMatrix(scaled, variants, seed),
                           seed);
}

/** A named full-SystemConfig column for config sweeps. */
struct ConfigPoint
{
    std::string name;
    SystemConfig config;
};

/**
 * Config-sweep variant of runMatrix for harnesses whose columns
 * differ by more than the enforcement variant (cache sizes,
 * predictor entries, ... — fig07/fig08). Same scaling, seeding, env
 * knobs, and row-major order: `results[pi * configs.size() + ci]`.
 */
inline std::vector<RunResult>
runMatrix(const std::vector<BenchmarkProfile> &profiles,
          const std::vector<ConfigPoint> &configs, uint64_t seed = 1)
{
    std::vector<driver::JobSpec> jobs;
    jobs.reserve(profiles.size() * configs.size());
    for (const BenchmarkProfile &p : profiles) {
        BenchmarkProfile scaled = p.scaledBy(scale());
        for (const ConfigPoint &c : configs) {
            driver::JobSpec spec;
            spec.label = p.name + "/" + c.name;
            spec.profile = scaled;
            spec.config = c.config;
            spec.workloadSeed = seed;
            jobs.push_back(std::move(spec));
        }
    }
    return runCampaignJobs(std::move(jobs), seed);
}

/**
 * Geometric mean helper for summary rows. Zero and negative inputs
 * have no log — instead of silently poisoning the whole summary with
 * -inf/NaN they are skipped with a warning (0 if nothing remains).
 */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    size_t used = 0;
    for (double v : values) {
        if (!(v > 0.0)) { // also catches NaN
            std::fprintf(stderr,
                         "bench: geomean: skipping non-positive "
                         "value %g\n",
                         v);
            continue;
        }
        log_sum += std::log(v);
        ++used;
    }
    if (used == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(used));
}

} // namespace bench
} // namespace chex

#endif // CHEX_BENCH_COMMON_HH

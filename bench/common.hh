/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: run a
 * benchmark profile under a variant and collect the RunResult, with
 * a process-wide scale knob (CHEX_BENCH_SCALE divides iteration
 * counts for quick smoke runs).
 */

#ifndef CHEX_BENCH_COMMON_HH
#define CHEX_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace bench
{

/** Iteration divisor from $CHEX_BENCH_SCALE (default 1). */
inline uint64_t
scale()
{
    if (const char *s = std::getenv("CHEX_BENCH_SCALE")) {
        uint64_t v = std::strtoull(s, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 1;
}

/** Run @p profile under @p cfg; returns the collected results. */
inline RunResult
runProfile(const BenchmarkProfile &profile, SystemConfig cfg,
           uint64_t seed = 1)
{
    BenchmarkProfile p = profile;
    p.iterations = std::max<uint64_t>(200, p.iterations / scale());
    System sys(cfg);
    sys.load(generateWorkload(p, seed));
    RunResult r = sys.run();
    if (!r.exited) {
        std::fprintf(stderr,
                     "bench: %s did not exit cleanly (violation=%d)\n",
                     p.name.c_str(), r.violationDetected ? 1 : 0);
        std::exit(1);
    }
    return r;
}

/** Run under just a variant kind with default config. */
inline RunResult
runVariant(const BenchmarkProfile &profile, VariantKind kind,
           uint64_t seed = 1)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    return runProfile(profile, cfg, seed);
}

/** Geometric mean helper for summary rows. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace bench
} // namespace chex

#endif // CHEX_BENCH_COMMON_HH

/**
 * @file
 * Table IV: comparison with prior memory-safety techniques. The
 * prior-work rows are the paper's reported numbers (they are
 * literature values, not re-runs); the CHEx86 row is *measured* by
 * this harness on the SPEC-profile workloads: average/worst
 * performance overhead and average/worst storage overhead.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    // Measure the CHEx86 row: the (SPEC x {baseline, prediction})
    // sweep runs in parallel on the campaign driver.
    const std::vector<VariantKind> kinds = {
        VariantKind::Baseline, VariantKind::MicrocodePrediction};
    std::vector<BenchmarkProfile> profiles = specProfiles();
    std::vector<RunResult> results = runMatrix(profiles, kinds);

    std::vector<double> slowdowns, storage;
    std::string worst_perf_name, worst_storage_name;
    double worst_perf = 0, worst_storage = 0;
    for (size_t pi = 0; pi < profiles.size(); ++pi) {
        const BenchmarkProfile &p = profiles[pi];
        const RunResult &base = results[pi * kinds.size()];
        const RunResult &pred = results[pi * kinds.size() + 1];
        double slow =
            static_cast<double>(pred.cycles) / base.cycles - 1.0;
        double ovh = static_cast<double>(pred.footprintBytes) /
                         base.residentBytes -
                     1.0;
        slowdowns.push_back(slow);
        storage.push_back(ovh);
        if (slow > worst_perf) {
            worst_perf = slow;
            worst_perf_name = p.name;
        }
        if (ovh > worst_storage) {
            worst_storage = ovh;
            worst_storage_name = p.name;
        }
    }
    double avg_perf = 0, avg_storage = 0;
    for (double v : slowdowns)
        avg_perf += v;
    avg_perf /= static_cast<double>(slowdowns.size());
    for (double v : storage)
        avg_storage += v;
    avg_storage /= static_cast<double>(storage.size());

    std::printf("Table IV: Comparison with Prior Memory Safety "
                "Techniques\n(prior rows: values reported in the "
                "paper; CHEx86 row: measured by this harness)\n\n");

    Table t({"proposal", "temporal", "spatial", "metadata",
             "binary compat", "perf (avg)", "perf (worst)",
             "storage (avg)", "storage (worst)", "hw changes"});
    t.addRow({"Hardbound", "no", "yes", "shadow", "partial",
              "5% (Olden)", "55%", "-", "-",
              "tag cache + TLB, uop injection"});
    t.addRow({"Watchdog", "yes", "yes", "shadow", "partial",
              "24% (SPEC2000)", "56%", "-", "-",
              "renaming logic, uop injection, lock cache"});
    t.addRow({"Intel MPX", "no", "yes", "inline", "no",
              "80% (SPEC2006)", "150%", "-", "-", "N/A"});
    t.addRow({"BOGO", "yes", "yes", "inline", "no", "60% (SPEC2006)",
              "36%", "-", "-", "N/A"});
    t.addRow({"CHERI", "no", "yes", "inline", "no", "18% (Olden)",
              "90%", "-", "-", "cap coprocessor, tag cache"});
    t.addRow({"CHERIvoke", "yes", "no", "inline", "no",
              "4.7% (SPEC2006)", "12.5%", "-", "-",
              "cap coprocessor, tag controller"});
    t.addRow({"REST", "yes", "yes", "shadow", "no", "23% (SPEC2006)",
              "N/A", "-", "-", "1-8b per L1D line, comparator"});
    t.addRow({"Califorms", "yes", "yes", "shadow", "no",
              "16% (SPEC2006)", "N/A", "-", "-",
              "8b per L1D line, 1b per L2/L3 line"});
    t.addRow({"CHEx86 (measured)", "yes", "yes", "shadow", "yes",
              Table::pct(avg_perf, 0) + " (SPEC)",
              Table::pct(worst_perf, 0) + " (" + worst_perf_name + ")",
              Table::pct(avg_storage, 0),
              Table::pct(worst_storage, 0) + " (" +
                  worst_storage_name + ")",
              "uop injection, cap$, alias$, pointer tracker"});
    t.print(std::cout);

    std::printf("\nPaper's CHEx86 row: 14%% average performance "
                "(SPEC2017), 38%% storage overhead; both temporal "
                "and spatial safety with full binary "
                "compatibility.\n");
    return 0;
}

/**
 * @file
 * Figure 6: normalized performance (top) and dynamic micro-op
 * expansion (bottom) for all six design points across the 14 C/C++
 * SPEC CPU2017 and PARSEC benchmarks.
 *
 * Reported exactly as the paper plots them: performance normalized
 * to the insecure baseline (1.0 = baseline speed, lower = slower)
 * and micro-op counts normalized to the baseline's.
 *
 * Headline numbers this regenerates (Section VII-D): the
 * prediction-driven microcode variant slows execution ~14 % (SPEC) /
 * ~9 % (PARSEC) vs the insecure baseline, outperforms ASan by ~59 %
 * (SPEC), beats the binary-translation variant by ~12 %, always
 * beats always-on, and supersedes hardware-only on the
 * pointer-intensive outliers (mcf, xalancbmk, leela).
 */

#include <iostream>
#include <map>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    const std::vector<VariantKind> kinds = {
        VariantKind::Baseline,          VariantKind::HardwareOnly,
        VariantKind::BinaryTranslation, VariantKind::MicrocodeAlwaysOn,
        VariantKind::MicrocodePrediction, VariantKind::Asan,
    };

    std::printf("Figure 6 (top): Normalized Performance "
                "(baseline = 1.00, lower is slower)\n\n");

    Table perf({"benchmark", "Baseline", "HW-Only", "BinTrans",
                "ucode-AlwaysOn", "ucode-Prediction", "ASan"});
    Table uops({"benchmark", "Baseline", "HW-Only", "BinTrans",
                "ucode-AlwaysOn", "ucode-Prediction", "ASan"});

    std::map<VariantKind, std::vector<double>> spec_slow, parsec_slow;
    std::map<VariantKind, std::vector<double>> spec_exp, parsec_exp;

    // The whole (14 profiles x 6 variants) sweep runs on the
    // campaign driver's worker pool; results come back in row-major
    // submission order.
    const std::vector<BenchmarkProfile> &profiles = allProfiles();
    std::vector<RunResult> results = runMatrix(profiles, kinds);

    for (size_t pi = 0; pi < profiles.size(); ++pi) {
        const BenchmarkProfile &p = profiles[pi];
        uint64_t base_cycles = 0, base_uops = 0;
        std::vector<std::string> prow{p.name}, urow{p.name};
        for (size_t vi = 0; vi < kinds.size(); ++vi) {
            VariantKind kind = kinds[vi];
            const RunResult &r = results[pi * kinds.size() + vi];
            if (kind == VariantKind::Baseline) {
                base_cycles = r.cycles;
                base_uops = r.uops;
            }
            double norm_perf =
                static_cast<double>(base_cycles) / r.cycles;
            double expansion =
                static_cast<double>(r.uops) / base_uops;
            prow.push_back(Table::num(norm_perf, 3));
            urow.push_back(Table::num(expansion, 2));
            double slowdown =
                static_cast<double>(r.cycles) / base_cycles;
            (p.isParsec ? parsec_slow : spec_slow)[kind].push_back(
                slowdown);
            (p.isParsec ? parsec_exp : spec_exp)[kind].push_back(
                expansion);
        }
        perf.addRow(prow);
        uops.addRow(urow);
    }
    perf.print(std::cout);

    std::printf("\nFigure 6 (bottom): Normalized uop Expansion\n\n");
    uops.print(std::cout);

    std::printf("\nSummary (geometric means):\n");
    Table sum({"variant", "SPEC slowdown", "PARSEC slowdown",
               "SPEC uop exp", "PARSEC uop exp"});
    for (VariantKind kind : kinds) {
        sum.addRow({variantName(kind),
                    Table::num(geomean(spec_slow[kind]), 3),
                    Table::num(geomean(parsec_slow[kind]), 3),
                    Table::num(geomean(spec_exp[kind]), 2),
                    Table::num(geomean(parsec_exp[kind]), 2)});
    }
    sum.print(std::cout);

    double pred_spec =
        geomean(spec_slow[VariantKind::MicrocodePrediction]);
    double pred_parsec =
        geomean(parsec_slow[VariantKind::MicrocodePrediction]);
    double asan_spec = geomean(spec_slow[VariantKind::Asan]);
    double asan_parsec = geomean(parsec_slow[VariantKind::Asan]);
    double bt_spec =
        geomean(spec_slow[VariantKind::BinaryTranslation]);

    std::printf("\nPaper targets vs measured:\n");
    std::printf("  slowdown vs insecure baseline: paper 14%% SPEC / "
                "9%% PARSEC; measured %.0f%% / %.0f%%\n",
                (pred_spec - 1) * 100, (pred_parsec - 1) * 100);
    std::printf("  speedup vs ASan: paper 59%% SPEC / 2.2x PARSEC; "
                "measured %.0f%% / %.2fx\n",
                (asan_spec / pred_spec - 1) * 100,
                asan_parsec / pred_parsec);
    std::printf("  speedup vs binary translation: paper 12%%; "
                "measured %.0f%%\n",
                (bt_spec / pred_spec - 1) * 100);
    return 0;
}

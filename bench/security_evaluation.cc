/**
 * @file
 * Section VII-A: the security evaluation. Runs all three exploit
 * suites — the RIPE-style dimension sweep, the ASan-style unit
 * violations, and the 18 How2Heap-style heap-metadata exploits —
 * under prediction-driven CHEx86 and reports, per suite, how many
 * exploits were thwarted and the breakdown by anchor violation
 * class; also verifies against the insecure baseline that the
 * exploits are real (their corruption indicator fires).
 */

#include <iostream>
#include <map>

#include "attacks/asan_suite.hh"
#include "attacks/how2heap.hh"
#include "attacks/ripe.hh"
#include "base/table.hh"
#include "common.hh"

using namespace chex;

namespace
{

struct SuiteSummary
{
    unsigned total = 0;
    unsigned detected = 0;
    unsigned expectedAnchor = 0;
    unsigned baselineSucceeded = 0;
    unsigned baselineChecked = 0;
    std::map<Violation, unsigned> byClass;
};

SuiteSummary
evaluate(const std::vector<AttackCase> &cases)
{
    SuiteSummary s;
    for (const AttackCase &attack : cases) {
        ++s.total;
        SystemConfig cfg;
        cfg.variant.kind = VariantKind::MicrocodePrediction;
        System sys(cfg);
        sys.load(attack.program);
        RunResult r = sys.run();
        if (r.violationDetected) {
            ++s.detected;
            ++s.byClass[r.violations[0].kind];
            if (r.violations[0].kind == attack.expected)
                ++s.expectedAnchor;
        }

        if (attack.indicatorAddr != 0) {
            ++s.baselineChecked;
            SystemConfig bcfg;
            bcfg.variant.kind = VariantKind::Baseline;
            System bsys(bcfg);
            bsys.load(attack.program);
            bsys.run();
            if (bsys.memory().read(attack.indicatorAddr, 8) ==
                attack.indicatorExpect)
                ++s.baselineSucceeded;
        }
    }
    return s;
}

std::string
classBreakdown(const SuiteSummary &s)
{
    std::string out;
    for (const auto &[v, n] : s.byClass) {
        if (!out.empty())
            out += ", ";
        out += std::to_string(n) + " " + violationName(v);
    }
    return out;
}

} // namespace

int
main()
{
    std::printf("Security Evaluation (Section VII-A): CHEx86 "
                "prediction-driven variant vs the exploit suites\n\n");

    struct Row
    {
        const char *name;
        std::vector<AttackCase> cases;
    };
    Row rows[] = {
        {"RIPE-style sweep", ripeSweep()},
        {"ASan test suite", asanSuite()},
        {"How2Heap", how2heapSuite()},
    };

    Table t({"suite", "exploits", "thwarted", "expected anchor",
             "work on baseline", "violation classes"});
    bool all_thwarted = true;
    for (Row &row : rows) {
        SuiteSummary s = evaluate(row.cases);
        all_thwarted &= s.detected == s.total;
        t.addRow({row.name, std::to_string(s.total),
                  std::to_string(s.detected),
                  std::to_string(s.expectedAnchor),
                  std::to_string(s.baselineSucceeded) + "/" +
                      std::to_string(s.baselineChecked),
                  classBreakdown(s)});
    }
    t.print(std::cout);

    std::printf("\n%s\n",
                all_thwarted
                    ? "All exploits thwarted, matching the paper: "
                      "regardless of allocator evasion, the anchor "
                      "points remain OOB, UAF, double free, invalid "
                      "free, and oversize allocation."
                    : "WARNING: some exploits were NOT detected!");
    return all_thwarted ? 0 : 1;
}

/**
 * @file
 * Section VII-A: the security evaluation. Runs all three exploit
 * suites — the RIPE-style dimension sweep, the ASan-style unit
 * violations, and the 18 How2Heap-style heap-metadata exploits —
 * under prediction-driven CHEx86 and reports, per suite, how many
 * exploits were thwarted and the breakdown by anchor violation
 * class; also verifies against the insecure baseline that the
 * exploits are real (their corruption indicator fires).
 *
 * The cases come from the central attack registry (one stable ID
 * per case) and run as attack jobs on the campaign driver's worker
 * pool, so the usual bench env knobs (CHEX_BENCH_JOBS/ISOLATE/
 * TIMEOUT/CACHE/SHARD) apply to the security table like any other
 * figure harness.
 */

#include <iostream>
#include <map>

#include "attacks/registry.hh"
#include "base/table.hh"
#include "common.hh"

using namespace chex;

namespace
{

struct SuiteSummary
{
    unsigned total = 0;
    unsigned detected = 0;
    unsigned expectedAnchor = 0;
    unsigned baselineSucceeded = 0;
    unsigned baselineChecked = 0;
    std::map<Violation, unsigned> byClass;
};

} // namespace

int
main()
{
    std::printf("Security Evaluation (Section VII-A): CHEx86 "
                "prediction-driven variant vs the exploit suites\n\n");

    const uint64_t seed = 1;

    // One detection job per case, plus one baseline-validation job
    // for every case that carries a corruption indicator. Flat across
    // all suites so the worker pool stays full.
    std::vector<driver::JobSpec> jobs;
    for (const AttackSuite &suite : attackSuites()) {
        for (const AttackCase &attack : suite.cases) {
            std::string id = attackCaseId(attack);
            driver::JobSpec det;
            det.label = id + "/" +
                        variantName(VariantKind::MicrocodePrediction);
            det.attack = id;
            det.profile = attackProfile();
            det.config.variant.kind =
                VariantKind::MicrocodePrediction;
            det.workloadSeed = seed;
            jobs.push_back(std::move(det));

            if (attack.indicatorAddr != 0) {
                driver::JobSpec base;
                base.label = id + "/" +
                             variantName(VariantKind::Baseline);
                base.attack = id;
                base.profile = attackProfile();
                base.config.variant.kind = VariantKind::Baseline;
                base.workloadSeed = seed;
                jobs.push_back(std::move(base));
            }
        }
    }

    std::vector<RunResult> results =
        bench::runCampaignJobs(jobs, seed);

    // Walk the results in the same suite/case order the jobs were
    // enumerated in.
    std::map<std::string, SuiteSummary> summaries;
    size_t next = 0;
    for (const AttackSuite &suite : attackSuites()) {
        SuiteSummary &s = summaries[suite.name];
        for (const AttackCase &attack : suite.cases) {
            ++s.total;
            const RunResult &r = results[next++];
            if (r.violationDetected) {
                ++s.detected;
                ++s.byClass[r.violations[0].kind];
                // Anchor accounting over *all* recorded violations:
                // an incidental earlier violation must not
                // misclassify a case whose expected anchor fires
                // second.
                for (const ViolationRecord &v : r.violations) {
                    if (v.kind == attack.expected) {
                        ++s.expectedAnchor;
                        break;
                    }
                }
            }

            if (attack.indicatorAddr != 0) {
                const RunResult &b = results[next++];
                if (b.indicatorChecked) {
                    ++s.baselineChecked;
                    if (b.indicatorFired)
                        ++s.baselineSucceeded;
                }
            }
        }
    }

    Table t({"suite", "exploits", "thwarted", "expected anchor",
             "work on baseline", "violation classes"});
    bool all_thwarted = true;
    for (const AttackSuite &suite : attackSuites()) {
        const SuiteSummary &s = summaries[suite.name];
        all_thwarted &= s.detected == s.total;
        std::string breakdown;
        for (const auto &[v, n] : s.byClass) {
            if (!breakdown.empty())
                breakdown += ", ";
            breakdown += std::to_string(n) + " " + violationName(v);
        }
        t.addRow({suite.title, std::to_string(s.total),
                  std::to_string(s.detected),
                  std::to_string(s.expectedAnchor),
                  std::to_string(s.baselineSucceeded) + "/" +
                      std::to_string(s.baselineChecked),
                  breakdown});
    }
    t.print(std::cout);

    std::printf("\n%s\n",
                all_thwarted
                    ? "All exploits thwarted, matching the paper: "
                      "regardless of allocator evasion, the anchor "
                      "points remain OOB, UAF, double free, invalid "
                      "free, and oversize allocation."
                    : "WARNING: some exploits were NOT detected!");
    return all_thwarted ? 0 : 1;
}

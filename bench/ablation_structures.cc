/**
 * @file
 * Ablation: the design choices DESIGN.md calls out — the alias
 * cache's victim cache (Section V-C), the alias predictor's
 * blacklist, and capability-cache sizing — each toggled or swept
 * independently on the pointer-intensive workloads where they
 * matter.
 *
 * Each sweep is a (profile × ConfigPoint) matrix on the campaign
 * driver's worker pool, so the usual bench env knobs — scale, jobs,
 * isolate, timeout, cache, shard — all apply.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

namespace
{

std::vector<BenchmarkProfile>
profileList(std::initializer_list<const char *> names)
{
    std::vector<BenchmarkProfile> out;
    for (const char *name : names)
        out.push_back(profileByName(name));
    return out;
}

SystemConfig
predictionConfig()
{
    SystemConfig cfg;
    cfg.variant.kind = VariantKind::MicrocodePrediction;
    return cfg;
}

} // namespace

int
main()
{
    std::printf("Ablation: CHEx86 structure sizing and features\n\n");

    std::printf("(a) Alias-cache victim cache on/off:\n");
    {
        std::vector<BenchmarkProfile> profiles =
            profileList({"mcf", "canneal", "xalancbmk"});
        std::vector<ConfigPoint> points;
        for (unsigned victims : {32u, 1u}) {
            SystemConfig cfg = predictionConfig();
            cfg.aliasCache.victimEntries = victims;
            points.push_back(
                {victims > 1 ? "victim-32" : "victim-off", cfg});
        }
        std::vector<RunResult> results = runMatrix(profiles, points);
        Table va({"benchmark", "victim", "alias miss rate", "cycles"});
        for (size_t pi = 0; pi < profiles.size(); ++pi) {
            for (size_t ci = 0; ci < points.size(); ++ci) {
                const RunResult &r = results[pi * points.size() + ci];
                va.addRow({profiles[pi].name,
                           ci == 0 ? "32-entry" : "off",
                           Table::pct(r.aliasCacheMissRate),
                           std::to_string(r.cycles)});
            }
        }
        va.print(std::cout);
    }

    std::printf("\n(b) Alias-predictor blacklist sizing (the filter "
                "against destructive aliasing with data loads):\n");
    {
        std::vector<BenchmarkProfile> profiles =
            profileList({"perlbench", "canneal"});
        std::vector<ConfigPoint> points;
        for (unsigned entries : {512u, 16u}) {
            SystemConfig cfg = predictionConfig();
            cfg.aliasPredictor.blacklistEntries = entries;
            points.push_back(
                {"blacklist-" + std::to_string(entries), cfg});
        }
        std::vector<RunResult> results = runMatrix(profiles, points);
        Table bl({"benchmark", "blacklist", "accuracy",
                  "PNA0 zero-idioms"});
        const unsigned sizes[] = {512u, 16u};
        for (size_t pi = 0; pi < profiles.size(); ++pi) {
            for (size_t ci = 0; ci < points.size(); ++ci) {
                const RunResult &r = results[pi * points.size() + ci];
                bl.addRow({profiles[pi].name,
                           std::to_string(sizes[ci]) + " entries",
                           Table::pct(r.aliasPredAccuracy),
                           std::to_string(r.pna0ZeroIdioms)});
            }
        }
        bl.print(std::cout);
    }

    std::printf("\n(c) Capability-cache size sweep:\n");
    {
        std::vector<BenchmarkProfile> profiles =
            profileList({"xalancbmk", "canneal"});
        std::vector<ConfigPoint> points;
        for (unsigned entries : {16u, 32u, 64u, 128u}) {
            SystemConfig cfg = predictionConfig();
            cfg.capCacheEntries = entries;
            points.push_back(
                {"capcache-" + std::to_string(entries), cfg});
        }
        std::vector<RunResult> results = runMatrix(profiles, points);
        Table cc({"benchmark", "entries", "miss rate", "cycles"});
        const unsigned sizes[] = {16u, 32u, 64u, 128u};
        for (size_t pi = 0; pi < profiles.size(); ++pi) {
            for (size_t ci = 0; ci < points.size(); ++ci) {
                const RunResult &r = results[pi * points.size() + ci];
                cc.addRow({profiles[pi].name,
                           std::to_string(sizes[ci]),
                           Table::pct(r.capCacheMissRate),
                           std::to_string(r.cycles)});
            }
        }
        cc.print(std::cout);
    }
    return 0;
}

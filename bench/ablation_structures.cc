/**
 * @file
 * Ablation: the design choices DESIGN.md calls out — the alias
 * cache's victim cache (Section V-C), the alias predictor's
 * blacklist, and capability-cache sizing — each toggled or swept
 * independently on the pointer-intensive workloads where they
 * matter.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Ablation: CHEx86 structure sizing and features\n\n");

    std::printf("(a) Alias-cache victim cache on/off:\n");
    Table va({"benchmark", "victim", "alias miss rate", "cycles"});
    for (const char *name : {"mcf", "canneal", "xalancbmk"}) {
        const BenchmarkProfile &p = profileByName(name);
        for (unsigned victims : {32u, 1u}) {
            SystemConfig cfg;
            cfg.variant.kind = VariantKind::MicrocodePrediction;
            cfg.aliasCache.victimEntries = victims;
            RunResult r = runProfile(p, cfg);
            va.addRow({name, victims > 1 ? "32-entry" : "off",
                       Table::pct(r.aliasCacheMissRate),
                       std::to_string(r.cycles)});
        }
    }
    va.print(std::cout);

    std::printf("\n(b) Alias-predictor blacklist sizing (the filter "
                "against destructive aliasing with data loads):\n");
    Table bl({"benchmark", "blacklist", "accuracy",
              "PNA0 zero-idioms"});
    for (const char *name : {"perlbench", "canneal"}) {
        const BenchmarkProfile &p = profileByName(name);
        for (unsigned entries : {512u, 16u}) {
            SystemConfig cfg;
            cfg.variant.kind = VariantKind::MicrocodePrediction;
            cfg.aliasPredictor.blacklistEntries = entries;
            RunResult r = runProfile(p, cfg);
            bl.addRow({name, std::to_string(entries) + " entries",
                       Table::pct(r.aliasPredAccuracy),
                       std::to_string(r.pna0ZeroIdioms)});
        }
    }
    bl.print(std::cout);

    std::printf("\n(c) Capability-cache size sweep:\n");
    Table cc({"benchmark", "entries", "miss rate", "cycles"});
    for (const char *name : {"xalancbmk", "canneal"}) {
        const BenchmarkProfile &p = profileByName(name);
        for (unsigned entries : {16u, 32u, 64u, 128u}) {
            SystemConfig cfg;
            cfg.variant.kind = VariantKind::MicrocodePrediction;
            cfg.capCacheEntries = entries;
            RunResult r = runProfile(p, cfg);
            cc.addRow({name, std::to_string(entries),
                       Table::pct(r.capCacheMissRate),
                       std::to_string(r.cycles)});
        }
    }
    cc.print(std::cout);
    return 0;
}

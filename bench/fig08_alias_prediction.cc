/**
 * @file
 * Figure 8: pointer-alias misprediction rate with 1024 vs 2048
 * predictor entries (top), and the percentage of time spent
 * squashing instructions for the insecure baseline vs
 * prediction-driven CHEx86 (bottom).
 *
 * Paper targets: ~89 % average prediction accuracy; the squash-time
 * delta attributable to alias mispredictions is negligible.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Figure 8: Pointer Alias Misprediction Rate (top) "
                "and %% Time Spent Squashing (bottom)\n\n");

    Table t({"benchmark", "mispred 1024e", "mispred 2048e",
             "accuracy", "P0AN", "PMAN", "PNA0", "squash% base",
             "squash% CHEx86"});

    SystemConfig base_cfg;
    base_cfg.variant.kind = VariantKind::Baseline;

    SystemConfig c1;
    c1.variant.kind = VariantKind::MicrocodePrediction;
    c1.aliasPredictor.entries = 1024;

    SystemConfig c2 = c1;
    c2.aliasPredictor.entries = 2048;

    // (14 profiles x 3 configs) on the campaign driver's worker pool
    // (row-major results), parallel and cacheable like fig06.
    const std::vector<ConfigPoint> points = {
        {"baseline", base_cfg},
        {"pred-1024e", c1},
        {"pred-2048e", c2},
    };
    const std::vector<BenchmarkProfile> &profiles = allProfiles();
    std::vector<RunResult> results = runMatrix(profiles, points);

    std::vector<double> acc, mis1024;
    std::vector<double> squash_delta;
    for (size_t pi = 0; pi < profiles.size(); ++pi) {
        const BenchmarkProfile &p = profiles[pi];
        const RunResult &base = results[pi * points.size() + 0];
        const RunResult &r1 = results[pi * points.size() + 1];
        const RunResult &r2 = results[pi * points.size() + 2];

        acc.push_back(r1.aliasPredAccuracy);
        mis1024.push_back(r1.reloadMispredictionRate);
        squash_delta.push_back(r1.squashFraction -
                               base.squashFraction);

        t.addRow({p.name, Table::pct(r1.reloadMispredictionRate),
                  Table::pct(r2.reloadMispredictionRate),
                  Table::pct(r1.aliasPredAccuracy),
                  std::to_string(r1.p0anFlushes),
                  std::to_string(r1.pmanForwards),
                  std::to_string(r1.pna0ZeroIdioms),
                  Table::pct(base.squashFraction),
                  Table::pct(r1.squashFraction)});
    }
    t.print(std::cout);

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    std::printf("\nPaper targets: ~89%% average accuracy (measured "
                "%.0f%%); alias-squash contribution negligible "
                "(measured average squash-time delta %.2f "
                "percentage points).\n",
                mean(acc) * 100, mean(squash_delta) * 100);
    return 0;
}

/**
 * @file
 * Simulator throughput microbenchmark: host-side fetch→retire
 * micro-ops per second for each enforcement variant, on one fixed
 * workload. This is the ROADMAP's missing perf record — every
 * campaign-level optimization (worker pools, result caches,
 * snapshot fan-out) multiplies off this per-core number, so it is
 * measured directly and committed as BENCH_throughput.json to make
 * the trajectory visible across PRs.
 *
 * Methodology: each variant runs the same pinned-seed workload
 * REPS times end to end (fresh System per rep, so allocator and
 * cache state never carry over) and records the best rep —
 * best-of-N is the standard way to strip scheduler noise from a
 * short single-threaded measurement. The workload is sized by
 * CHEX_BENCH_SCALE like every other harness; the JSON records the
 * scale so records from different machines/settings are not
 * naively compared.
 *
 * Output: a chex-bench-throughput-v1 JSON document on stdout (so
 * `micro_throughput > BENCH_throughput.json` commits cleanly), one
 * row per variant with retired macro-op/µop counts, best wall
 * seconds, and the derived µops/second; the human-readable table
 * goes to stderr.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "base/json.hh"
#include "common.hh"
#include "ucode/variant.hh"

using namespace chex;

namespace
{

constexpr uint64_t Seed = 1;
constexpr int Reps = 3;

/** One end-to-end simulation, timed on the host clock. */
double
timedRun(const BenchmarkProfile &profile, VariantKind kind,
         RunResult *out)
{
    SystemConfig cfg;
    cfg.variant.kind = kind;
    System sys(cfg);
    sys.load(generateWorkload(profile, Seed));
    auto t0 = std::chrono::steady_clock::now();
    RunResult r = sys.run();
    auto t1 = std::chrono::steady_clock::now();
    if (!r.exited) {
        std::fprintf(stderr,
                     "micro_throughput: %s/%s did not exit cleanly\n",
                     profile.name.c_str(), variantName(kind));
        std::exit(1);
    }
    *out = r;
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    const std::vector<VariantKind> kinds = {
        VariantKind::Baseline,        VariantKind::HardwareOnly,
        VariantKind::BinaryTranslation,
        VariantKind::MicrocodeAlwaysOn,
        VariantKind::MicrocodePrediction,
        VariantKind::Asan,
    };

    BenchmarkProfile profile =
        profileByName("xalancbmk").scaledBy(bench::scale());

    json::Value doc = json::Value::object();
    doc.set("schema", "chex-bench-throughput-v1");
    doc.set("profile", profile.name);
    doc.set("scale", bench::scale());
    doc.set("seed", Seed);
    doc.set("reps", static_cast<uint64_t>(Reps));

    std::fprintf(stderr, "%-42s %12s %12s %10s %14s\n", "variant",
                 "macro-ops", "uops", "best s", "uops/s");

    json::Value rows = json::Value::array();
    for (VariantKind kind : kinds) {
        RunResult best{};
        double best_s = 0.0;
        for (int rep = 0; rep < Reps; ++rep) {
            RunResult r;
            double s = timedRun(profile, kind, &r);
            if (rep == 0 || s < best_s) {
                best = r;
                best_s = s;
            }
        }
        double uops_per_s =
            best_s > 0.0 ? static_cast<double>(best.uops) / best_s
                         : 0.0;

        std::fprintf(stderr, "%-42s %12llu %12llu %10.4f %14.0f\n",
                     variantName(kind),
                     static_cast<unsigned long long>(best.macroOps),
                     static_cast<unsigned long long>(best.uops),
                     best_s, uops_per_s);

        json::Value row = json::Value::object();
        row.set("variant", variantName(kind));
        row.set("macroOps", best.macroOps);
        row.set("uops", best.uops);
        row.set("cycles", best.cycles);
        row.set("bestWallSeconds", best_s);
        row.set("uopsPerSecond", uops_per_s);
        rows.push(std::move(row));
    }
    doc.set("variants", std::move(rows));

    std::printf("%s\n", doc.dump(2).c_str());
    return 0;
}

/**
 * @file
 * Capability-subsystem scale microbenchmark: drives the shadow
 * capability table directly (no pipeline) through server-style
 * allocation churn at increasing live-set sizes — 10K, 100K, and 1M
 * live capabilities — and reports capability operations per second
 * and peak shadow-storage bytes at each size. This is the committed
 * perf record (BENCH_capscale.json) that keeps the paged store and
 * the pooled interval indices honest across PRs: a structure that
 * degrades superlinearly with the live count shows up as the 1M-row
 * ops/s collapsing relative to the 10K row.
 *
 * Methodology mirrors micro_throughput: every row runs REPS times
 * from a fresh table (best-of-N wall clock); the op stream is a
 * fixed-seed mix of capCheck-style checks, exhaustive address
 * searches, and free+reallocate churn (half the reallocations reuse
 * a freed base, covering the same-base collision path). Target
 * selection follows the server-family access model rather than
 * uniform random: frees come from the young generation (the most
 * recently allocated window — request/response lifetimes), and
 * checks/searches hit a hot window 7 times out of 8 with a uniform
 * cold draw over the whole live set for the eighth. All
 * structural outputs — op counts, live/total capabilities, peak
 * shadow bytes, and a fold of every returned PID/violation — are
 * deterministic functions of the seed, so bench-compare treats any
 * drift in them as fatal while wall-clock regressions only warn.
 *
 * Output: a chex-bench-capscale-v1 JSON document on stdout (so
 * `cap_scale > BENCH_capscale.json` commits cleanly); the
 * human-readable table goes to stderr.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "base/json.hh"
#include "base/random.hh"
#include "cap/cap_table.hh"
#include "common.hh"

using namespace chex;

namespace
{

constexpr uint64_t Seed = 1;
constexpr int Reps = 3;
/** Young-generation / hot-set size for the server access model. */
constexpr uint64_t HotWindow = 4096;

struct LiveEntry
{
    Pid pid;
    uint64_t base;
    uint64_t size;
};

struct RowResult
{
    uint64_t liveTarget = 0;
    uint64_t ops = 0;        // capability-table operations executed
    uint64_t totalCaps = 0;
    uint64_t liveCaps = 0;
    uint64_t peakShadowBytes = 0;
    uint64_t checksum = 0;
    double bestWallSeconds = 0.0;
    double opsPerSecond = 0.0;
};

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

/** One full rep: ramp to @p live_target, then churn. */
RowResult
runRep(uint64_t live_target, uint64_t churn_ops)
{
    RowResult row;
    row.liveTarget = live_target;

    CapabilityTable table;
    Random rng(Seed ^ (live_target * 0x9e3779b97f4a7c15ull));

    std::vector<LiveEntry> live;
    live.reserve(live_target);
    std::vector<std::pair<uint64_t, uint64_t>> freed; // base, size

    uint64_t bump = 0x10000000ull; // synthetic address space
    uint64_t ops = 0;
    uint64_t checksum = 0;
    uint64_t peak = 0;

    auto allocate = [&]() {
        uint64_t size =
            (rng.skewedSize(32, 1024) + 15) & ~uint64_t(15);
        uint64_t base;
        if (!freed.empty() && rng.chance(0.5)) {
            // Reuse a freed base: the interval indices must keep the
            // most recent PID on the collision.
            auto &f = freed[rng.uniform(0, freed.size() - 1)];
            base = f.first;
            size = f.second;
        } else {
            base = bump;
            bump += size;
        }
        Violation v;
        Pid pid = table.beginGeneration(size, &v);
        table.endGeneration(pid, base);
        ops += 2;
        live.push_back({pid, base, size});
    };

    // Hot-set pick: the recently-allocated tail 7 times out of 8, a
    // uniform cold draw over the whole live set otherwise.
    auto pick_target = [&]() -> size_t {
        uint64_t window =
            std::min<uint64_t>(live.size(), HotWindow);
        if (rng.uniform(0, 7) != 0)
            return live.size() - 1 - rng.uniform(0, window - 1);
        return rng.uniform(0, live.size() - 1);
    };

    // Young-generation free: victims come from the recently
    // allocated window (request/response lifetimes); the long-lived
    // base set below it churns only via swap-remove displacement.
    auto free_victim = [&]() {
        uint64_t window =
            std::min<uint64_t>(live.size(), HotWindow);
        size_t idx = live.size() - 1 - rng.uniform(0, window - 1);
        LiveEntry e = live[idx];
        live[idx] = live.back();
        live.pop_back();
        checksum = mix(checksum, static_cast<uint64_t>(
                                     table.beginFree(e.pid, e.base)));
        table.endFree(e.pid);
        ops += 2;
        freed.push_back({e.base, e.size});
        if (freed.size() > 4096)
            freed[rng.uniform(0, freed.size() - 1)] = freed.back(),
                freed.pop_back();
    };

    auto t0 = std::chrono::steady_clock::now();

    // ---- Ramp to the live target ----
    while (live.size() < live_target)
        allocate();

    // ---- Churn ----
    for (uint64_t op = 0; op < churn_ops; ++op) {
        uint64_t r = rng.uniform(0, 99);
        if (r < 40) {
            const LiveEntry &e = live[pick_target()];
            uint64_t addr =
                e.base + rng.uniform(0, e.size > 8 ? e.size - 8 : 0);
            CheckResult cr =
                table.check(e.pid, addr, 8, (r & 1) != 0);
            checksum = mix(checksum,
                           static_cast<uint64_t>(cr.violation));
            ++ops;
        } else if (r < 60) {
            uint64_t addr;
            if (r & 1) {
                const LiveEntry &e = live[pick_target()];
                addr = e.base + rng.uniform(0, e.size - 1);
            } else {
                addr = 0x10000000ull +
                       rng.uniform(0, bump - 0x10000000ull);
            }
            checksum = mix(checksum, table.pidForAddress(addr));
            ++ops;
        } else {
            free_victim();
            allocate();
        }
        if ((op & 0xfff) == 0)
            peak = std::max(peak, table.storageBytes());
    }
    peak = std::max(peak, table.storageBytes());

    auto t1 = std::chrono::steady_clock::now();

    row.ops = ops;
    row.totalCaps = table.totalCapabilities();
    row.liveCaps = table.liveCapabilities();
    row.peakShadowBytes = peak;
    row.checksum = checksum;
    row.bestWallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return row;
}

} // namespace

int
main()
{
    const uint64_t scale = bench::scale();
    const uint64_t churn_ops =
        std::max<uint64_t>(100000, 2000000 / std::max<uint64_t>(
                                                 1, scale));
    const std::vector<uint64_t> targets = {10000, 100000, 1000000};

    json::Value doc = json::Value::object();
    doc.set("schema", "chex-bench-capscale-v1");
    doc.set("seed", Seed);
    doc.set("scale", scale);
    doc.set("reps", static_cast<uint64_t>(Reps));
    doc.set("churnOps", churn_ops);

    std::fprintf(stderr, "%-12s %12s %12s %16s %10s %14s\n",
                 "live", "table ops", "total caps", "peak shadow B",
                 "best s", "ops/s");

    json::Value rows = json::Value::array();
    double base_rate = 0.0;
    for (uint64_t target : targets) {
        RowResult best{};
        for (int rep = 0; rep < Reps; ++rep) {
            RowResult r = runRep(target, churn_ops);
            if (rep == 0 ||
                r.bestWallSeconds < best.bestWallSeconds) {
                best = r;
            } else {
                // Structural outputs must not depend on the rep.
                if (r.ops != best.ops ||
                    r.checksum != best.checksum) {
                    std::fprintf(stderr,
                                 "cap_scale: nondeterministic rep at "
                                 "live=%llu\n",
                                 static_cast<unsigned long long>(
                                     target));
                    return 1;
                }
            }
        }
        best.opsPerSecond =
            best.bestWallSeconds > 0.0
                ? static_cast<double>(best.ops) / best.bestWallSeconds
                : 0.0;
        if (target == targets.front())
            base_rate = best.opsPerSecond;

        std::fprintf(stderr,
                     "%-12llu %12llu %12llu %16llu %10.4f %14.0f\n",
                     static_cast<unsigned long long>(target),
                     static_cast<unsigned long long>(best.ops),
                     static_cast<unsigned long long>(best.totalCaps),
                     static_cast<unsigned long long>(
                         best.peakShadowBytes),
                     best.bestWallSeconds, best.opsPerSecond);

        json::Value row = json::Value::object();
        row.set("liveTarget", best.liveTarget);
        row.set("ops", best.ops);
        row.set("totalCapabilities", best.totalCaps);
        row.set("liveCapabilities", best.liveCaps);
        row.set("peakShadowBytes", best.peakShadowBytes);
        row.set("checksum", best.checksum);
        row.set("bestWallSeconds", best.bestWallSeconds);
        row.set("opsPerSecond", best.opsPerSecond);
        rows.push(std::move(row));
    }
    doc.set("rows", std::move(rows));
    (void)base_rate;

    std::printf("%s\n", doc.dump(2).c_str());
    return 0;
}

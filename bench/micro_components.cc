/**
 * @file
 * Component micro-benchmarks (google-benchmark): host-side
 * throughput of the structures CHEx86 adds — capability-table
 * checks, capability-cache lookups, the alias table and its walker,
 * the alias predictor, the rule engine, the decoder, and the
 * simulated allocator. These gate simulator performance and document
 * the cost of each model.
 */

#include <benchmark/benchmark.h>

#include "cap/cap_cache.hh"
#include "cap/cap_table.hh"
#include "heap/allocator.hh"
#include "isa/assembler.hh"
#include "isa/decoder.hh"
#include "mem/alias_table.hh"
#include "tracker/alias_predictor.hh"
#include "tracker/rules.hh"

using namespace chex;

namespace
{

void
BM_CapTableCheck(benchmark::State &state)
{
    CapabilityTable t;
    Violation v;
    Pid pid = t.beginGeneration(256, &v);
    t.endGeneration(pid, 0x10000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.check(pid, 0x10080, 8, true));
    }
}
BENCHMARK(BM_CapTableCheck);

void
BM_CapTableExhaustiveSearch(benchmark::State &state)
{
    CapabilityTable t;
    Violation v;
    for (int i = 0; i < state.range(0); ++i) {
        Pid p = t.beginGeneration(64, &v);
        t.endGeneration(p, 0x10000 + static_cast<uint64_t>(i) * 128);
    }
    uint64_t addr = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.pidForAddress(addr));
        addr += 128;
        if (addr > 0x10000 + static_cast<uint64_t>(state.range(0)) * 128)
            addr = 0x10000;
    }
}
BENCHMARK(BM_CapTableExhaustiveSearch)->Arg(100)->Arg(10000);

void
BM_CapCacheLookup(benchmark::State &state)
{
    CapabilityCache cache(64);
    Pid pid = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(pid));
        pid = pid % 48 + 1; // stays within capacity: mostly hits
    }
}
BENCHMARK(BM_CapCacheLookup);

void
BM_AliasTableSetGet(benchmark::State &state)
{
    AliasTable t;
    uint64_t addr = 0x10000000;
    for (auto _ : state) {
        t.set(addr, 5);
        benchmark::DoNotOptimize(t.get(addr));
        addr += 8;
    }
}
BENCHMARK(BM_AliasTableSetGet);

void
BM_AliasTableWalk(benchmark::State &state)
{
    AliasTable t;
    for (uint64_t a = 0; a < 4096; a += 8)
        t.set(0x10000000 + a, 7);
    uint64_t addr = 0x10000000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.walk(addr));
        addr = 0x10000000 + (addr + 8) % 4096;
    }
}
BENCHMARK(BM_AliasTableWalk);

void
BM_AliasPredictor(benchmark::State &state)
{
    AliasPredictor pred;
    uint64_t pc = 0x400000;
    Pid pid = 1;
    for (auto _ : state) {
        AliasPrediction p = pred.predict(pc);
        pred.update(pc, p, pid);
        pc = 0x400000 + (pc + 4) % 1024;
        pid = pid % 64 + 1;
    }
}
BENCHMARK(BM_AliasPredictor);

void
BM_RulePropagate(benchmark::State &state)
{
    RuleDatabase db = RuleDatabase::tableI();
    StaticUop u;
    u.type = UopType::IntAlu;
    u.op = AluOp::Add;
    u.dst = RCX;
    u.src1 = RBX;
    u.src2 = RAX;
    for (auto _ : state) {
        benchmark::DoNotOptimize(db.propagate(u, 5, 0));
    }
}
BENCHMARK(BM_RulePropagate);

void
BM_DecoderCrack(benchmark::State &state)
{
    MacroInst mi;
    mi.opcode = MacroOpcode::ADD_MR;
    mi.src = RBX;
    mi.mem = memAt(RAX, 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Decoder::crack(mi, 0x400000));
    }
}
BENCHMARK(BM_DecoderCrack);

void
BM_HeapMallocFree(benchmark::State &state)
{
    SparseMemory mem;
    HeapAllocator heap(mem, layout::HeapBase, layout::HeapLimit);
    for (auto _ : state) {
        uint64_t p = heap.malloc(static_cast<uint64_t>(state.range(0)),
                                 nullptr);
        heap.free(p, nullptr);
    }
}
BENCHMARK(BM_HeapMallocFree)->Arg(64)->Arg(4096);

} // namespace

BENCHMARK_MAIN();

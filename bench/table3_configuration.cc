/**
 * @file
 * Table III: hardware configuration of the simulated system. Prints
 * the model's configuration and asserts that the defaults match the
 * paper's table (Skylake-class core).
 */

#include <iostream>

#include "base/logging.hh"
#include "base/table.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "sim/system.hh"

using namespace chex;

int
main()
{
    CoreConfig c;
    HierarchyConfig h;
    SystemConfig s;

    std::printf("Table III: Hardware Configuration of the Simulated "
                "System\n\n");
    Table t({"parameter", "value", "paper"});
    auto row = [&](const char *name, const std::string &value,
                   const char *paper) {
        t.addRow({name, value, paper});
    };
    row("Frequency", Table::num(c.frequencyGHz, 1) + " GHz",
        "3.4 GHz");
    row("Fetch width", std::to_string(c.fetchWidth) + " fused uops",
        "4 fused uops");
    row("Issue width", std::to_string(c.issueWidth) + " unfused uops",
        "6 unfused uops");
    row("ROB size", std::to_string(c.robEntries) + " entries",
        "224 entries");
    row("IQ", std::to_string(c.iqEntries) + " entries", "64 entries");
    row("LQ/SQ size",
        std::to_string(c.lqEntries) + "/" + std::to_string(c.sqEntries)
            + " entries",
        "72/56 entries");
    row("INT/FP Regfile",
        std::to_string(c.intRegs) + "/" + std::to_string(c.fpRegs) +
            " regs",
        "180/168 regs");
    row("RAS size", std::to_string(c.bpred.rasEntries) + " entries",
        "64 entries");
    row("BTB size", std::to_string(c.bpred.btbEntries) + " entries",
        "4096 entries");
    row("Branch predictor", "TAGE (LTAGE-style)", "LTAGE");
    row("I cache",
        std::to_string(h.l1Sets * h.l1Ways * h.lineBytes / 1024) +
            " KB, " + std::to_string(h.l1Ways) + " way",
        "32 KB, 8 way");
    row("D cache",
        std::to_string(h.l1Sets * h.l1Ways * h.lineBytes / 1024) +
            " KB, " + std::to_string(h.l1Ways) + " way",
        "32 KB, 8 way");
    row("Functional units",
        "Int ALU (" + std::to_string(c.intAluUnits) + ") / Mult (" +
            std::to_string(c.intMultUnits) + "), FPALU (" +
            std::to_string(c.fpAluUnits) + ") / SIMD (" +
            std::to_string(c.simdUnits) + ")",
        "IntALU(6)/Mult(1), FPALU(3)/SIMD(3)");
    row("Capability cache",
        std::to_string(s.capCacheEntries) + " entries, fully assoc.",
        "64 entries");
    row("Alias cache",
        std::to_string(s.aliasCache.sets * s.aliasCache.ways) +
            " entries, " + std::to_string(s.aliasCache.ways) +
            "-way + " + std::to_string(s.aliasCache.victimEntries) +
            "-entry victim",
        "256-entry 2-way + 32-entry victim");
    row("Alias predictor",
        std::to_string(s.aliasPredictor.entries) +
            " entries, 2-bit counters + blacklist",
        "512 entries, 2-bit counters");
    row("Max allocation",
        std::to_string(s.maxAllocSize >> 30) + " GiB", "1 GiB");
    t.print(std::cout);

    // Assert the defaults stay faithful to Table III.
    chex_assert(c.fetchWidth == 4 && c.issueWidth == 6 &&
                    c.robEntries == 224 && c.iqEntries == 64 &&
                    c.lqEntries == 72 && c.sqEntries == 56 &&
                    c.intRegs == 180 && c.fpRegs == 168,
                "core defaults diverged from Table III");
    chex_assert(s.capCacheEntries == 64 &&
                    s.aliasCache.sets * s.aliasCache.ways == 256 &&
                    s.aliasPredictor.entries == 512,
                "CHEx86 structure defaults diverged from the paper");
    std::printf("\nAll defaults match Table III.\n");
    return 0;
}

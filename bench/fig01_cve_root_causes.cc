/**
 * @file
 * Figure 1: root cause of CVEs by patch year since 2006 (re-created,
 * as in the paper, from the published Microsoft/Google trend data
 * [30], [47]). This is a data figure — no simulation — included so
 * every figure in the paper has a regenerating binary. The headline
 * property the paper cites: memory-safety classes account for ~70 %
 * of patched vulnerabilities every year.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"

using namespace chex;

namespace
{

struct YearRow
{
    const char *year;
    // Percentages per class (approximate recreation of the public
    // MSRC trend chart the paper reproduces).
    double stack;
    double heapCorruption;
    double useAfterFree;
    double heapOobRead;
    double uninitializedUse;
    double typeConfusion;
    double other;
};

const YearRow kRows[] = {
    {"'06", 23, 32, 3, 5, 2, 1, 34},
    {"'07", 21, 30, 4, 6, 2, 1, 36},
    {"'08", 20, 29, 6, 6, 3, 1, 35},
    {"'09", 18, 27, 9, 7, 3, 2, 34},
    {"'10", 16, 26, 12, 7, 4, 2, 33},
    {"'11", 14, 24, 16, 8, 4, 2, 32},
    {"'12", 12, 22, 19, 9, 5, 3, 30},
    {"'13", 10, 21, 22, 9, 5, 4, 29},
    {"'14", 9, 20, 23, 10, 5, 4, 29},
    {"'15", 8, 19, 25, 10, 6, 5, 27},
    {"'16", 7, 19, 24, 11, 6, 6, 27},
    {"'17", 6, 18, 23, 12, 7, 6, 28},
    {"'18", 5, 17, 22, 13, 8, 7, 28},
};

} // namespace

int
main()
{
    std::printf("Figure 1: Root Cause of CVEs by Patch Year "
                "(re-created from [30],[47])\n");
    std::printf("The 'other' category: XSS/zone elevation, DLL "
                "planting, canonicalization/symlink issues.\n\n");

    Table t({"year", "stack", "heap-corr", "UAF", "heap-OOB-rd",
             "uninit", "type-conf", "other", "mem-safety total"});
    for (const YearRow &r : kRows) {
        double mem_safety = r.stack + r.heapCorruption +
                            r.useAfterFree + r.heapOobRead +
                            r.uninitializedUse + r.typeConfusion;
        t.addRow({r.year, Table::num(r.stack, 0) + "%",
                  Table::num(r.heapCorruption, 0) + "%",
                  Table::num(r.useAfterFree, 0) + "%",
                  Table::num(r.heapOobRead, 0) + "%",
                  Table::num(r.uninitializedUse, 0) + "%",
                  Table::num(r.typeConfusion, 0) + "%",
                  Table::num(r.other, 0) + "%",
                  Table::num(mem_safety, 0) + "%"});
    }
    t.print(std::cout);
    std::printf("\nPaper's observation: memory-safety violations "
                "consistently account for ~70%% of patched CVEs.\n");
    return 0;
}

/**
 * @file
 * Ablation: context-sensitive enforcement (Sections I and V-C). The
 * microcode variant's defining flexibility is surgical, on-demand
 * protection: allocations are always tracked, but capCheck
 * micro-ops are injected only while executing security-critical
 * code. This sweep protects a growing fraction of each program's
 * text section and reports the check count and slowdown, showing
 * overhead scaling down to near-native as the protected region
 * shrinks.
 *
 * The per-profile (baseline + five protected fractions) cells run as
 * one job list on the campaign driver's worker pool, so the usual
 * bench env knobs — scale, jobs, isolate, timeout, cache, shard —
 * all apply. Workload generation is deterministic in (profile,
 * seed), so the program generated here to size the critical regions
 * is bit-identical to the one each driver job regenerates.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Ablation: context-sensitive (surgical) "
                "enforcement\n\n");

    const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    const size_t cells = 1 + std::size(fractions);
    const char *names[] = {"mcf", "xalancbmk", "perlbench"};

    std::vector<driver::JobSpec> jobs;
    for (const char *name : names) {
        BenchmarkProfile scaled =
            profileByName(name).scaledBy(scale());
        Program prog = generateWorkload(scaled, 1);
        uint64_t text_bytes = prog.numInsts() * InstSlotBytes;

        driver::JobSpec base;
        base.label = std::string(name) + "/baseline";
        base.profile = scaled;
        base.config.variant.kind = VariantKind::Baseline;
        base.workloadSeed = 1;
        jobs.push_back(std::move(base));

        for (double f : fractions) {
            driver::JobSpec spec;
            spec.label = std::string(name) + "/protected-" +
                         std::to_string(static_cast<int>(f * 100));
            spec.profile = scaled;
            spec.config.variant.kind =
                VariantKind::MicrocodePrediction;
            if (f < 1.0) {
                spec.config.variant.criticalRegions = {
                    {prog.codeBase,
                     prog.codeBase +
                         static_cast<uint64_t>(f * text_bytes)}};
            }
            spec.workloadSeed = 1;
            jobs.push_back(std::move(spec));
        }
    }

    std::vector<RunResult> results = runCampaignJobs(std::move(jobs), 1);

    Table t({"benchmark", "protected", "slowdown", "checks",
             "uop expansion"});
    for (size_t pi = 0; pi < std::size(names); ++pi) {
        const RunResult &base = results[pi * cells];
        for (size_t fi = 0; fi < std::size(fractions); ++fi) {
            const RunResult &r = results[pi * cells + 1 + fi];
            t.addRow({names[pi], Table::pct(fractions[fi], 0),
                      Table::pct(static_cast<double>(r.cycles) /
                                         base.cycles -
                                     1,
                                 1),
                      std::to_string(r.capChecksInjected),
                      Table::num(static_cast<double>(r.uops) /
                                     base.uops,
                                 2)});
        }
    }
    t.print(std::cout);

    std::printf("\nTracking is always on (temporal safety state stays "
                "warm); check injection — and with it the overhead — "
                "scales with the protected code fraction.\n");
    return 0;
}

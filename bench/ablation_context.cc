/**
 * @file
 * Ablation: context-sensitive enforcement (Sections I and V-C). The
 * microcode variant's defining flexibility is surgical, on-demand
 * protection: allocations are always tracked, but capCheck
 * micro-ops are injected only while executing security-critical
 * code. This sweep protects a growing fraction of each program's
 * text section and reports the check count and slowdown, showing
 * overhead scaling down to near-native as the protected region
 * shrinks.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Ablation: context-sensitive (surgical) "
                "enforcement\n\n");

    const double fractions[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    Table t({"benchmark", "protected", "slowdown", "checks",
             "uop expansion"});

    for (const char *name : {"mcf", "xalancbmk", "perlbench"}) {
        const BenchmarkProfile &p = profileByName(name);
        RunResult base = runVariant(p, VariantKind::Baseline);

        BenchmarkProfile scaled = p;
        scaled.iterations =
            std::max<uint64_t>(200, p.iterations / scale());
        Program prog = generateWorkload(scaled, 1);
        uint64_t text_bytes = prog.numInsts() * InstSlotBytes;

        for (double f : fractions) {
            SystemConfig cfg;
            cfg.variant.kind = VariantKind::MicrocodePrediction;
            if (f < 1.0) {
                cfg.variant.criticalRegions = {
                    {prog.codeBase,
                     prog.codeBase +
                         static_cast<uint64_t>(f * text_bytes)}};
            }
            System sys(cfg);
            sys.load(prog);
            RunResult r = sys.run();
            if (!r.exited)
                chex_fatal("context ablation run failed");
            t.addRow({name, Table::pct(f, 0),
                      Table::pct(static_cast<double>(r.cycles) /
                                         base.cycles -
                                     1,
                                 1),
                      std::to_string(r.capChecksInjected),
                      Table::num(static_cast<double>(r.uops) /
                                     base.uops,
                                 2)});
        }
    }
    t.print(std::cout);

    std::printf("\nTracking is always on (temporal safety state stays "
                "warm); check injection — and with it the overhead — "
                "scales with the protected code fraction.\n");
    return 0;
}

/**
 * @file
 * Multithreaded invalidation-traffic study (Sections IV-C, V-C): the
 * paper models, in all multithreaded experiments, the overheads of
 * broadcasting capability-cache invalidations on frees and
 * alias-cache invalidations on remote spilled-pointer stores. This
 * bench drives the coherence fabric with per-core event streams
 * derived from the PARSEC profiles (shared buffer pool, per-core
 * schedules) and reports how invalidation traffic and coherence
 * misses scale with core count.
 */

#include <iostream>

#include "base/random.hh"
#include "base/table.hh"
#include "common.hh"
#include "sim/coherence.hh"
#include "workload/patterns.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Multithreaded coherence traffic (PARSEC-style "
                "shared-pool workloads)\n\n");

    Table t({"benchmark", "cores", "cap invals", "alias invals",
             "cap coh-miss", "alias coh-miss", "coh-miss frac"});

    for (const BenchmarkProfile &p : parsecProfiles()) {
        for (unsigned cores : {2u, 4u, 8u}) {
            CoherenceFabric fabric(cores);
            Random rng(11);

            // Per-core schedules over a shared buffer pool.
            PatternParams pp;
            pp.numBuffers = std::max(4u, p.buffersInUse);
            pp.length = 4096;
            std::vector<std::vector<unsigned>> sched;
            for (unsigned c = 0; c < cores; ++c)
                sched.push_back(
                    generateSchedule(p.dominantPattern, pp, rng));

            uint64_t steps = 50000 / scale();
            for (uint64_t i = 0; i < steps; ++i) {
                unsigned core =
                    static_cast<unsigned>(rng.uniform(0, cores - 1));
                unsigned idx = sched[core][i % sched[core].size()];
                Pid pid = idx + 1;
                uint64_t slot_addr = 0x700000 + idx * 8ull;

                // Reload + checked accesses on this core.
                fabric.aliasLookup(core, slot_addr);
                fabric.capLookup(core, pid);

                // Occasional turnover: free + respill by one core.
                if (rng.chance(static_cast<double>(
                                   p.totalAllocations) /
                               (p.iterations * 4.0))) {
                    fabric.onFree(core, pid);
                    fabric.aliasStore(core, slot_addr);
                }
            }

            t.addRow({p.name, std::to_string(cores),
                      std::to_string(fabric.capInvalidationsSent()),
                      std::to_string(fabric.aliasInvalidationsSent()),
                      std::to_string(fabric.capCoherenceMisses()),
                      std::to_string(fabric.aliasCoherenceMisses()),
                      Table::pct(fabric.capCoherenceMissFraction(),
                                 2)});
        }
    }
    t.print(std::cout);

    std::printf("\nInvalidations scale with (cores-1) per free/spill "
                "— sent once per event thanks to capability "
                "unforgeability — and the induced coherence-miss "
                "fraction stays small, consistent with the paper "
                "folding these costs into its multithreaded results "
                "without a visible bandwidth penalty (Figure 9).\n");
    return 0;
}

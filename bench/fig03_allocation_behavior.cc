/**
 * @file
 * Figure 3: benchmark memory-allocation behaviour — total
 * allocations over the run, maximum live allocations, and average
 * allocations-in-use per execution interval (the paper profiles
 * 100 M-instruction intervals with valgrind; we instrument the
 * simulated heap directly, with a proportionally scaled interval).
 *
 * The property that motivates the capability cache: totals exceed
 * live sets by an order of magnitude, and the in-use set is smaller
 * still — small enough for a 64-entry cache.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Figure 3: Benchmark Memory Allocation Behavior\n\n");

    Table t({"benchmark", "total allocs", "max live",
             "in-use / interval", "total/live", "live/in-use"});

    double worst_in_use = 0.0;
    for (const BenchmarkProfile &p : allProfiles()) {
        SystemConfig cfg;
        cfg.variant.kind = VariantKind::MicrocodePrediction;
        cfg.inUseIntervalMacroOps = 50000;
        RunResult r = runProfile(p, cfg);
        worst_in_use = std::max(worst_in_use, r.avgAllocationsInUse);
        t.addRow({p.name, std::to_string(r.totalAllocations),
                  std::to_string(r.maxLiveAllocations),
                  Table::num(r.avgAllocationsInUse, 1),
                  Table::num(static_cast<double>(r.totalAllocations) /
                                 std::max<uint64_t>(
                                     r.maxLiveAllocations, 1),
                             1),
                  Table::num(static_cast<double>(
                                 r.maxLiveAllocations) /
                                 std::max(r.avgAllocationsInUse, 1.0),
                             1)});
    }
    t.print(std::cout);
    std::printf("\nPaper's claims re-checked: total >> max-live >> "
                "in-use; the in-use working set (worst case %.0f "
                "here) motivates a small in-processor capability "
                "cache.\n",
                worst_in_use);
    return 0;
}

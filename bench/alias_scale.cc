/**
 * @file
 * Alias-subsystem scale microbenchmark: drives the shadow alias
 * table directly (no pipeline) through server-style spill/reload/
 * overwrite churn at increasing live-alias working sets — 10K, 100K,
 * and 1M live aliased words — and reports alias operations per
 * second plus live and peak shadow-storage bytes at each size. This
 * is the committed perf record (BENCH_aliasscale.json) that keeps
 * the reclaiming radix tree and the tombstone-purging page-count
 * filter honest across PRs: a structure that degrades superlinearly
 * with the live count (or that leaks nodes under overwrite churn)
 * shows up as the 1M row collapsing relative to the 10K row, or as
 * endShadowBytes drifting above the live-set floor.
 *
 * Methodology mirrors cap_scale: every row runs REPS times from a
 * fresh table (best-of-N wall clock); the op stream is a fixed-seed
 * mix of pointer spills (set), reloads through the page filter +
 * walker (pageHostsAliases/get/walk), data-store overwrite kills
 * (set 0, exercising node reclamation), and page-churn arena drops.
 * Target selection follows the server access model: reloads draw
 * their victim word Zipf-skewed over recency (rank r with density
 * 1/r — a handful of hot spill slots absorbs most traffic), kills
 * come from the young generation, and spill addresses mix dense
 * frame-like runs with scattered arena words so interior nodes see
 * both sharing and churn. All structural outputs — op counts, live
 * entries, node counts, peak/end shadow bytes, and a fold of every
 * returned PID and walk depth — are deterministic functions of the
 * seed, so bench-compare treats any drift in them as fatal while
 * wall-clock regressions only warn.
 *
 * Output: a chex-bench-aliasscale-v1 JSON document on stdout (so
 * `alias_scale > BENCH_aliasscale.json` commits cleanly); the
 * human-readable table goes to stderr.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/json.hh"
#include "base/random.hh"
#include "common.hh"
#include "mem/alias_table.hh"

using namespace chex;

namespace
{

constexpr uint64_t Seed = 1;
constexpr int Reps = 3;

struct RowResult
{
    uint64_t liveTarget = 0;
    uint64_t ops = 0;            // alias-table operations executed
    uint64_t liveEntries = 0;    // live aliases at the end of churn
    uint64_t peakShadowBytes = 0;
    uint64_t endShadowBytes = 0; // after churn — reclamation floor
    uint64_t liveNodes = 0;
    uint64_t pooledNodes = 0;
    uint64_t checksum = 0;
    double bestWallSeconds = 0.0;
    double opsPerSecond = 0.0;
};

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

/** One full rep: ramp to @p live_target live words, then churn. */
RowResult
runRep(uint64_t live_target, uint64_t churn_ops)
{
    RowResult row;
    row.liveTarget = live_target;

    AliasTable table;
    Random rng(Seed ^ (live_target * 0x9e3779b97f4a7c15ull));

    // Live spilled words, oldest first; swap-remove on kill.
    std::vector<uint64_t> live;
    live.reserve(live_target);

    // Spill addresses mix dense frame-like runs (consecutive words
    // in one leaf, like a function's spill slots) with scattered
    // arena words across a wide VA range (distinct subtrees).
    uint64_t frame_bump = 0x7f0000000000ull; // dense region cursor
    uint64_t next_pid = 1;
    uint64_t ops = 0;
    uint64_t checksum = 0;
    uint64_t peak = 0;

    // Scattered spills draw from an arena spanning 8x the live
    // target in words: leaf occupancy stays constant across rows
    // (~1/32 of each touched leaf), so the 10K/100K/1M rows compare
    // walk and reclamation cost at scale rather than just the
    // allocator's memset bandwidth on ever-sparser trees.
    const uint64_t arena_words = live_target * 8;

    auto spill = [&]() {
        uint64_t addr;
        if (rng.chance(0.75)) {
            addr = frame_bump;
            frame_bump += 8;
        } else {
            addr = 0x100000000ull +
                   (rng.uniform(0, arena_words - 1) << 3);
            if (table.get(addr) != 0) {
                // Occupied arena word: fall back to a fresh frame
                // word so the live set holds its target size.
                addr = frame_bump;
                frame_bump += 8;
            }
        }
        table.set(addr, static_cast<uint32_t>(
                            next_pid++ & 0xffffffffull));
        ++ops;
        live.push_back(addr);
    };

    // Server-model reuse pick: 7 of 8 reloads draw Zipf-skewed over
    // the hot recency window (harmonic s=1 weights — rank r drawn
    // with weight 1/(r+1), rank 0 = most recent spill, so a handful
    // of hot spill slots absorbs most traffic), and the eighth is a
    // uniform cold draw over the whole live set. The CDF is built
    // from IEEE additions/divisions only — no libm calls — so the
    // drawn ranks (and through them the structural checksum) are
    // bit-identical across hosts.
    constexpr uint64_t HotWindow = 4096;
    std::vector<double> zipf_cdf(HotWindow);
    double zipf_sum = 0.0;
    for (uint64_t r = 0; r < HotWindow; ++r) {
        zipf_sum += 1.0 / static_cast<double>(r + 1);
        zipf_cdf[r] = zipf_sum;
    }
    auto pick_zipf = [&]() -> size_t {
        if (rng.uniform(0, 7) == 0)
            return rng.uniform(0, live.size() - 1);
        uint64_t window = std::min<uint64_t>(live.size(), HotWindow);
        double u = rng.uniformReal() * zipf_cdf[window - 1];
        auto rank = static_cast<uint64_t>(
            std::lower_bound(zipf_cdf.begin(),
                             zipf_cdf.begin() + window, u) -
            zipf_cdf.begin());
        if (rank >= window)
            rank = window - 1;
        return live.size() - 1 - static_cast<size_t>(rank);
    };

    // Young-generation overwrite kill: a data store clobbers a
    // recently spilled slot (request/response lifetimes).
    auto kill_victim = [&]() {
        uint64_t window = std::min<uint64_t>(live.size(), 4096);
        size_t idx = live.size() - 1 - rng.uniform(0, window - 1);
        uint64_t addr = live[idx];
        live[idx] = live.back();
        live.pop_back();
        table.set(addr, 0);
        ++ops;
    };

    // ---- Ramp to the live target (untimed construction) ----
    while (live.size() < live_target)
        spill();

    // The reported rate is the steady-state churn rate at this live
    // size; one-time table construction would otherwise dominate the
    // large rows and mask scaling of the steady-state operations.
    ops = 0;
    auto t0 = std::chrono::steady_clock::now();

    // ---- Churn ----
    for (uint64_t op = 0; op < churn_ops; ++op) {
        uint64_t r = rng.uniform(0, 99);
        if (r < 50) {
            // Reload path: page filter, then cached get or full walk.
            uint64_t addr = live[pick_zipf()];
            if (table.pageHostsAliases(addr)) {
                if (r & 1) {
                    checksum = mix(checksum, table.get(addr));
                } else {
                    AliasWalkResult w = table.walk(addr);
                    checksum = mix(checksum,
                                   (uint64_t{w.levelsTouched} << 32) |
                                       w.pid);
                }
            }
            ++ops;
        } else if (r < 65) {
            // Filter probe on a (usually alias-free) cold page.
            uint64_t addr =
                0x510000000000ull + rng.uniform(0, (1ull << 30)) * 8;
            checksum = mix(checksum, table.pageHostsAliases(addr));
            ++ops;
        } else {
            // Overwrite churn: kill a young spill, spill a fresh one.
            kill_victim();
            spill();
        }
        if ((op & 0xfff) == 0)
            peak = std::max(peak, table.storageBytes());
    }
    peak = std::max(peak, table.storageBytes());

    auto t1 = std::chrono::steady_clock::now();

    row.ops = ops;
    row.liveEntries = table.liveEntries();
    row.peakShadowBytes = peak;
    row.endShadowBytes = table.storageBytes();
    row.liveNodes = table.liveNodes();
    row.pooledNodes = table.pooledNodes();
    row.checksum = checksum;
    row.bestWallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return row;
}

} // namespace

int
main()
{
    const uint64_t scale = bench::scale();
    const uint64_t churn_ops =
        std::max<uint64_t>(100000, 2000000 / std::max<uint64_t>(
                                                 1, scale));
    const std::vector<uint64_t> targets = {10000, 100000, 1000000};

    json::Value doc = json::Value::object();
    doc.set("schema", "chex-bench-aliasscale-v1");
    doc.set("seed", Seed);
    doc.set("scale", scale);
    doc.set("reps", static_cast<uint64_t>(Reps));
    doc.set("churnOps", churn_ops);

    std::fprintf(stderr, "%-12s %12s %12s %16s %16s %10s %14s\n",
                 "live", "table ops", "live entries", "peak shadow B",
                 "end shadow B", "best s", "ops/s");

    json::Value rows = json::Value::array();
    for (uint64_t target : targets) {
        RowResult best{};
        for (int rep = 0; rep < Reps; ++rep) {
            RowResult r = runRep(target, churn_ops);
            // Structural outputs must not depend on the rep.
            if (rep != 0 &&
                (r.ops != best.ops || r.checksum != best.checksum)) {
                std::fprintf(stderr,
                             "alias_scale: nondeterministic rep at "
                             "live=%llu\n",
                             static_cast<unsigned long long>(target));
                return 1;
            }
            if (rep == 0 || r.bestWallSeconds < best.bestWallSeconds)
                best = r;
        }
        best.opsPerSecond =
            best.bestWallSeconds > 0.0
                ? static_cast<double>(best.ops) / best.bestWallSeconds
                : 0.0;

        std::fprintf(
            stderr,
            "%-12llu %12llu %12llu %16llu %16llu %10.4f %14.0f\n",
            static_cast<unsigned long long>(target),
            static_cast<unsigned long long>(best.ops),
            static_cast<unsigned long long>(best.liveEntries),
            static_cast<unsigned long long>(best.peakShadowBytes),
            static_cast<unsigned long long>(best.endShadowBytes),
            best.bestWallSeconds, best.opsPerSecond);

        json::Value row = json::Value::object();
        row.set("liveTarget", best.liveTarget);
        row.set("ops", best.ops);
        row.set("liveEntries", best.liveEntries);
        row.set("peakShadowBytes", best.peakShadowBytes);
        row.set("endShadowBytes", best.endShadowBytes);
        row.set("liveNodes", best.liveNodes);
        row.set("pooledNodes", best.pooledNodes);
        row.set("checksum", best.checksum);
        row.set("bestWallSeconds", best.bestWallSeconds);
        row.set("opsPerSecond", best.opsPerSecond);
        rows.push(std::move(row));
    }
    doc.set("rows", std::move(rows));

    std::printf("%s\n", doc.dump(2).c_str());
    return 0;
}

/**
 * @file
 * Table II: temporal pointer access patterns. Regenerates the
 * taxonomy two ways: (1) synthesizes each pattern class and shows
 * the classifier recovering it (with example PID rows exactly in the
 * table's format), and (2) classifies the dominant reload pattern
 * each benchmark's workload actually produces, confirming the
 * paper's attribution (e.g. Constant for lbm/deepsjeng,
 * Batch+Stride strongest in perlbench).
 */

#include <iostream>
#include <sstream>

#include "base/table.hh"
#include "common.hh"
#include "workload/patterns.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Table II: Temporal Pointer Access Patterns\n\n");

    Table t({"pattern", "stride", "example PIDs",
             "classified as", "confidence"});
    Random rng(42);
    for (int k = 0; k < 8; ++k) {
        auto kind = static_cast<PatternKind>(k);
        PatternParams pp;
        pp.numBuffers = 48;
        pp.length = 256;
        pp.batchLen = 4;
        pp.period = 3;
        pp.stride = 3;
        auto sched = generateSchedule(kind, pp, rng);

        std::ostringstream example;
        for (int i = 0; i < 7; ++i)
            example << (i ? " " : "") << 10 + sched[i];

        std::vector<uint64_t> pids;
        for (unsigned idx : sched)
            pids.push_back(10 + idx);
        auto cls = classifySequence(pids);

        std::string stride = "NA";
        if (kind == PatternKind::Constant)
            stride = "0";
        else if (cls.stride != 0)
            stride = std::to_string(cls.stride);

        t.addRow({patternName(kind), stride, example.str(),
                  patternName(cls.kind), Table::num(cls.confidence, 2)});
    }
    t.print(std::cout);

    std::printf("\nDominant reload pattern per benchmark (classified "
                "from each workload's buffer-access schedule):\n\n");
    Table b({"benchmark", "profile pattern", "classified as",
             "batch", "period"});
    for (const BenchmarkProfile &p : allProfiles()) {
        Random wrng(7);
        PatternParams pp;
        pp.numBuffers = p.buffersInUse;
        pp.length = 512;
        pp.batchLen = 4;
        pp.period = std::min(4u, std::max(2u, p.buffersInUse));
        pp.stride = 1;
        auto sched = generateSchedule(p.dominantPattern, pp, wrng);
        std::vector<uint64_t> pids(sched.begin(), sched.end());
        auto cls = classifySequence(pids);
        b.addRow({p.name, patternName(p.dominantPattern),
                  patternName(cls.kind),
                  cls.batchLen ? std::to_string(cls.batchLen) : "-",
                  cls.period ? std::to_string(cls.period) : "-"});
    }
    b.print(std::cout);

    std::printf("\nPaper's observation re-checked: the patterns key "
                "on the instruction address and are predictable by a "
                "simple stride scheme; even 'random' buffer orders "
                "retain local striding.\n");
    return 0;
}

/**
 * @file
 * Ablation (Section VII-C): Watchdog-style conservative
 * instrumentation vs CHEx86's prediction-driven scheme. The paper
 * reports that conservatively instrumenting *every* 64-bit
 * load/store (what Watchdog does without compiler annotations)
 * costs ~40 % on average and up to 2x on xalancbmk, versus the
 * targeted, prediction-driven injection. The always-on microcode
 * variant is exactly that conservative scheme.
 *
 * The four variant columns run on the campaign driver's worker pool
 * (runMatrix), so the usual bench env knobs — scale, jobs, isolate,
 * timeout, cache, shard — all apply.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

int
main()
{
    std::printf("Ablation: conservative (Watchdog-style, always-on) "
                "instrumentation vs prediction-driven injection\n\n");

    const std::vector<BenchmarkProfile> profiles = specProfiles();
    const std::vector<VariantKind> variants = {
        VariantKind::Baseline,
        VariantKind::MicrocodeAlwaysOn,
        VariantKind::BinaryTranslation,
        VariantKind::MicrocodePrediction,
    };
    std::vector<RunResult> results = runMatrix(profiles, variants);

    Table t({"benchmark", "conservative (uop-level)",
             "conservative (macro-level)",
             "prediction-driven", "checks conservative",
             "checks prediction", "checks saved"});
    std::vector<double> cons_uop, cons_macro, pred;
    for (size_t pi = 0; pi < profiles.size(); ++pi) {
        const RunResult &base = results[pi * variants.size() + 0];
        const RunResult &on = results[pi * variants.size() + 1];
        const RunResult &bt = results[pi * variants.size() + 2];
        const RunResult &pr = results[pi * variants.size() + 3];
        double c = static_cast<double>(on.cycles) / base.cycles;
        double m = static_cast<double>(bt.cycles) / base.cycles;
        double d = static_cast<double>(pr.cycles) / base.cycles;
        cons_uop.push_back(c);
        cons_macro.push_back(m);
        pred.push_back(d);
        double saved = 1.0 - static_cast<double>(pr.capChecksInjected) /
                                 on.capChecksInjected;
        t.addRow({profiles[pi].name, Table::pct(c - 1, 1),
                  Table::pct(m - 1, 1), Table::pct(d - 1, 1),
                  std::to_string(on.capChecksInjected),
                  std::to_string(pr.capChecksInjected),
                  Table::pct(saved, 1)});
    }
    t.print(std::cout);

    std::printf("\nGeomean slowdown: conservative %.1f%% at the "
                "micro-op level / %.1f%% with Watchdog-style "
                "instruction-level check sequences, vs %.1f%% "
                "prediction-driven (paper: ~40%% conservative vs "
                "14%%, xalancbmk up to 2x).\n",
                (geomean(cons_uop) - 1) * 100,
                (geomean(cons_macro) - 1) * 100,
                (geomean(pred) - 1) * 100);
    return 0;
}

/**
 * @file
 * Figure 9: memory storage overhead — resident set plus shadow
 * structures — for the insecure baseline, ASan, and
 * prediction-driven CHEx86 (top), and memory bandwidth for the
 * baseline vs CHEx86 (bottom).
 *
 * Paper targets: CHEx86 allocates no more shadow memory than ASan
 * while performing better; bandwidth is essentially unchanged except
 * for the pointer-intensive outliers (xalancbmk, leela, deepsjeng),
 * and even those stay contained.
 */

#include <iostream>
#include <vector>

#include "base/table.hh"
#include "common.hh"

using namespace chex;
using namespace chex::bench;

namespace
{

std::string
mib(uint64_t bytes)
{
    return Table::num(static_cast<double>(bytes) / (1024.0 * 1024.0),
                      2) +
           " MiB";
}

} // namespace

int
main()
{
    std::printf("Figure 9: Memory Storage Overhead (top) and Memory "
                "Bandwidth (bottom)\n\n");

    Table t({"benchmark", "RSS base", "footprint ASan",
             "footprint CHEx86", "ASan ovh", "CHEx86 ovh",
             "BW base MB/s", "BW CHEx86 MB/s", "BW ratio"});

    // (14 profiles x 3 variants) on the campaign driver's worker
    // pool (row-major results), parallel and cacheable like fig06.
    const std::vector<VariantKind> kinds = {
        VariantKind::Baseline,
        VariantKind::Asan,
        VariantKind::MicrocodePrediction,
    };
    const std::vector<BenchmarkProfile> &profiles = allProfiles();
    std::vector<RunResult> results = runMatrix(profiles, kinds);

    std::vector<double> bw_ratio, chex_ovh, asan_ovh;
    for (size_t pi = 0; pi < profiles.size(); ++pi) {
        const BenchmarkProfile &p = profiles[pi];
        const RunResult &base = results[pi * kinds.size() + 0];
        const RunResult &asan = results[pi * kinds.size() + 1];
        const RunResult &pred = results[pi * kinds.size() + 2];

        double a_ovh = static_cast<double>(asan.footprintBytes) /
                           base.residentBytes -
                       1.0;
        double c_ovh = static_cast<double>(pred.footprintBytes) /
                           base.residentBytes -
                       1.0;
        double ratio = base.bandwidthMBps > 0
                           ? pred.bandwidthMBps / base.bandwidthMBps
                           : 1.0;
        asan_ovh.push_back(a_ovh);
        chex_ovh.push_back(c_ovh);
        bw_ratio.push_back(ratio);

        t.addRow({p.name, mib(base.residentBytes),
                  mib(asan.footprintBytes), mib(pred.footprintBytes),
                  Table::pct(a_ovh), Table::pct(c_ovh),
                  Table::num(base.bandwidthMBps, 1),
                  Table::num(pred.bandwidthMBps, 1),
                  Table::num(ratio, 2)});
    }
    t.print(std::cout);

    auto mean = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    std::printf("\nPaper targets: CHEx86 storage overhead ~38%% on "
                "the worst SPEC benchmarks and no more shadow than "
                "ASan; bandwidth roughly unchanged. Measured: "
                "average storage overhead %.0f%% (ASan %.0f%%), "
                "average bandwidth ratio %.2fx.\n",
                mean(chex_ovh) * 100, mean(asan_ovh) * 100,
                mean(bw_ratio));
    return 0;
}

/**
 * @file
 * Table I: the pointer-tracking rule database. Prints the
 * expert-seeded database, then *regenerates* it the way the paper
 * describes (Section V-A): starting from a minimal seed (MOV and the
 * load/store alias rules), the hardware checker co-processor
 * validates every register-writing micro-op against an exhaustive
 * shadow-table search and installs rules once a propagation action
 * consistently explains the mismatches, across the workload suite.
 */

#include <iostream>

#include "base/table.hh"
#include "common.hh"
#include "tracker/checker.hh"

using namespace chex;
using namespace chex::bench;

namespace
{

const char *
formName(OperandForm f)
{
    switch (f) {
      case OperandForm::RegReg: return "Reg-Reg";
      case OperandForm::RegImm: return "Reg-Imm";
      case OperandForm::Mem: return "Reg-Mem";
      default: return "?";
    }
}

std::string
keyName(const RuleKey &k)
{
    std::string s = uopTypeName(k.type);
    switch (k.op) {
      case AluOp::Mov: s = "MOV"; break;
      case AluOp::Add: s = "ADD"; break;
      case AluOp::Sub: s = "SUB"; break;
      case AluOp::And: s = "AND"; break;
      default: break;
    }
    if (k.type == UopType::Lea)
        s = "LEA";
    if (k.type == UopType::Load)
        s = "LD";
    if (k.type == UopType::Store)
        s = "ST";
    if (k.type == UopType::LoadImm)
        s = "MOVI";
    return s;
}

} // namespace

int
main()
{
    std::printf("Table I: Pointer Tracking Rule Database "
                "(expert-seeded)\n\n");
    Table expert({"uop", "addr. mode", "example",
                  "capability propagation", "code example"});
    for (const TrackRule &r : RuleDatabase::tableI().rules()) {
        expert.addRow({keyName(r.key), formName(r.key.form),
                       r.example, ruleActionName(r.action),
                       r.codeExample});
    }
    expert.print(std::cout);

    std::printf("\nAutomatic rule construction (Section V-A): seed = "
                "MOV + LD/ST alias rules; the hardware checker "
                "constructs the rest while running the workload "
                "suite:\n\n");

    SystemConfig cfg;
    cfg.variant.kind = VariantKind::MicrocodePrediction;
    cfg.variant.haltOnViolation = false;
    cfg.useTableIRules = false;
    cfg.enableChecker = true;

    Table constructed({"benchmark", "validations", "mismatches",
                       "match rate", "rules constructed",
                       "manual escalations"});
    std::vector<ConstructedRule> all_rules;
    for (const char *name : {"perlbench", "mcf", "xalancbmk",
                             "canneal", "freqmine"}) {
        BenchmarkProfile p = profileByName(name);
        p.iterations = std::max<uint64_t>(200, p.iterations / (4 * scale()));
        System sys(cfg);
        sys.load(generateWorkload(p, 1));
        sys.run();
        const HardwareChecker &chk = *sys.checker();
        constructed.addRow(
            {name, std::to_string(chk.validations()),
             std::to_string(chk.mismatches()),
             Table::pct(chk.matchRate()),
             std::to_string(chk.constructedRules().size()),
             std::to_string(chk.manualInterventions())});
        for (const auto &r : chk.constructedRules()) {
            bool seen = false;
            for (const auto &existing : all_rules)
                if (existing.key == r.key)
                    seen = true;
            if (!seen)
                all_rules.push_back(r);
        }
    }
    constructed.print(std::cout);

    std::printf("\nRules the checker installed (union across "
                "workloads):\n\n");
    Table rules({"uop", "addr. mode", "inferred action", "votes",
                 "example"});
    for (const auto &r : all_rules) {
        rules.addRow({keyName(r.key), formName(r.key.form),
                      ruleActionName(r.action),
                      std::to_string(r.votes), r.exampleUop});
    }
    rules.print(std::cout);

    std::printf("\nPaper's claim re-checked: pointer activity is "
                "trackable with a small number of distinct micro-op "
                "rules, constructible automatically at run time.\n");
    return 0;
}

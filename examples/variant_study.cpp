/**
 * @file
 * Variant study: run one benchmark workload (default: mcf, the
 * pointer-chasing outlier; pass another profile name as argv[1])
 * under all six enforcement designs and print a miniature Figure 6
 * row — cycles, slowdown, micro-op expansion, check counts, and the
 * capability/alias machinery statistics behind them.
 */

#include <cstdio>
#include <iostream>

#include "base/table.hh"
#include "sim/system.hh"
#include "workload/generator.hh"
#include "workload/profiles.hh"

using namespace chex;

int
main(int argc, char **argv)
{
    const char *name = argc > 1 ? argv[1] : "mcf";
    BenchmarkProfile profile = profileByName(name);
    profile.iterations /= 2;
    Program prog = generateWorkload(profile, 1);

    std::printf("Variant study on '%s' (%lu iterations, chase depth "
                "%u, pattern %s)\n\n",
                profile.name.c_str(),
                static_cast<unsigned long>(profile.iterations),
                profile.chaseDepth,
                patternName(profile.dominantPattern));

    const VariantKind kinds[] = {
        VariantKind::Baseline,          VariantKind::HardwareOnly,
        VariantKind::BinaryTranslation, VariantKind::MicrocodeAlwaysOn,
        VariantKind::MicrocodePrediction, VariantKind::Asan,
    };

    Table t({"variant", "cycles", "slowdown", "uop exp", "checks",
             "cap$ miss", "alias$ miss", "pred acc"});
    uint64_t base_cycles = 0, base_uops = 0;
    for (VariantKind kind : kinds) {
        SystemConfig cfg;
        cfg.variant.kind = kind;
        System sys(cfg);
        sys.load(prog);
        RunResult r = sys.run();
        if (!r.exited) {
            std::printf("run failed under %s\n", variantName(kind));
            return 1;
        }
        if (kind == VariantKind::Baseline) {
            base_cycles = r.cycles;
            base_uops = r.uops;
        }
        bool caps = usesCapabilities(kind);
        t.addRow({variantName(kind), std::to_string(r.cycles),
                  Table::num(static_cast<double>(r.cycles) /
                                 base_cycles,
                             3),
                  Table::num(static_cast<double>(r.uops) / base_uops,
                             2),
                  std::to_string(r.capChecksInjected),
                  caps ? Table::pct(r.capCacheMissRate) : "-",
                  caps ? Table::pct(r.aliasCacheMissRate) : "-",
                  caps ? Table::pct(r.aliasPredAccuracy) : "-"});
    }
    t.print(std::cout);

    std::printf("\nReading the row shapes (cf. Figure 6): the "
                "prediction-driven microcode variant injects the "
                "fewest checks, avoids the LSU latency of the "
                "hardware-only scheme, and sidesteps the fetch "
                "bandwidth cost of macro-level instrumentation.\n");
    return 0;
}

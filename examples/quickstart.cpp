/**
 * @file
 * Quickstart: the five-minute tour of the CHEx86 library.
 *
 * Builds a tiny program with the in-memory assembler, runs it on a
 * simulated CHEx86 core under the default prediction-driven
 * microcode variant, and shows (1) a clean run with its timing
 * statistics and (2) the same program with an off-by-one heap write,
 * flagged as an out-of-bounds violation — with zero changes to the
 * "binary".
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/system.hh"

using namespace chex;

namespace
{

/**
 * The C program this assembles by hand:
 *
 *   long *buf = malloc(64);
 *   for (int i = 0; i < n; i++) buf[i] = i;   // n = 8 or 9 (oops)
 *   long sum = 0;
 *   for (int i = 0; i < 8; i++) sum += buf[i];
 *   free(buf);
 */
Program
buildProgram(int64_t words_written)
{
    Assembler as;

    as.movri(RDI, 64);
    as.call(IntrinsicKind::Malloc);
    as.movrr(R12, RAX); // buf

    auto fill = as.newLabel();
    as.movri(RBX, 0);
    as.bind(fill);
    as.movmr(memAt(R12, 0, RBX, 8), RBX); // buf[i] = i
    as.addri(RBX, 1);
    as.cmpri(RBX, words_written);
    as.jcc(CondCode::LT, fill);

    auto sum = as.newLabel();
    as.movri(RBX, 0);
    as.movri(RDX, 0);
    as.bind(sum);
    as.addrm(RDX, memAt(R12, 0, RBX, 8)); // sum += buf[i]
    as.addri(RBX, 1);
    as.cmpri(RBX, 8);
    as.jcc(CondCode::LT, sum);

    as.movrr(RDI, R12);
    as.call(IntrinsicKind::Free);
    as.movrr(RDI, RDX);
    as.call(IntrinsicKind::PrintVal);
    as.hlt();
    return as.finalize();
}

} // namespace

int
main()
{
    // 1. Configure a system. Defaults reproduce the paper's setup:
    //    Skylake-class core (Table III), 64-entry capability cache,
    //    256-entry alias cache + victim cache, 512-entry alias
    //    predictor, prediction-driven microcode enforcement.
    SystemConfig cfg;
    cfg.variant.kind = VariantKind::MicrocodePrediction;

    std::printf("=== clean run (writes exactly 8 words) ===\n");
    {
        System sys(cfg);
        sys.load(buildProgram(8));
        RunResult r = sys.run();
        std::printf("exited cleanly : %s\n", r.exited ? "yes" : "no");
        std::printf("violations     : %zu\n", r.violations.size());
        std::printf("cycles         : %lu (IPC %.2f)\n",
                    static_cast<unsigned long>(r.cycles), r.ipc);
        std::printf("macro-ops/uops : %lu / %lu\n",
                    static_cast<unsigned long>(r.macroOps),
                    static_cast<unsigned long>(r.uops));
        std::printf("capability checks injected: %lu\n",
                    static_cast<unsigned long>(r.capChecksInjected));
        std::printf("sum computed   : %lu (expect 28)\n",
                    static_cast<unsigned long>(
                        sys.machine().reg(RDX)));
    }

    std::printf("\n=== buggy run (writes 9 words into a 64-byte "
                "buffer) ===\n");
    {
        System sys(cfg);
        sys.load(buildProgram(9));
        RunResult r = sys.run();
        if (r.violationDetected) {
            const ViolationRecord &v = r.violations[0];
            std::printf("CHEx86 flagged : %s\n",
                        violationName(v.kind));
            std::printf("  at pc 0x%lx, address 0x%lx, PID %u\n",
                        static_cast<unsigned long>(v.pc),
                        static_cast<unsigned long>(v.addr), v.pid);
            std::printf("the program was stopped before the "
                        "corrupting store committed.\n");
        } else {
            std::printf("UNEXPECTED: violation missed!\n");
            return 1;
        }
    }

    std::printf("\n=== same buggy binary on the insecure baseline "
                "===\n");
    {
        SystemConfig base = cfg;
        base.variant.kind = VariantKind::Baseline;
        System sys(base);
        sys.load(buildProgram(9));
        RunResult r = sys.run();
        std::printf("exited 'cleanly': %s — the overflow silently "
                    "corrupted the neighbouring heap chunk.\n",
                    r.exited ? "yes" : "no");
    }
    return 0;
}

/**
 * @file
 * Pattern zoo: a tour of the temporal pointer-access patterns of
 * Table II. For each class, generates a PID schedule, prints the
 * first few identifiers the way the paper's table does, classifies
 * the sequence back, and then feeds it through a fresh 512-entry
 * alias predictor to show how predictable (or not) each class is —
 * the empirical basis for CHEx86's spilled-pointer reload
 * prediction.
 */

#include <cstdio>
#include <iostream>
#include <sstream>

#include "base/table.hh"
#include "tracker/alias_predictor.hh"
#include "workload/patterns.hh"

using namespace chex;

int
main()
{
    std::printf("The temporal pointer access pattern zoo "
                "(Table II)\n\n");

    Random rng(2026);
    Table t({"pattern", "first PIDs", "classified", "stride/period",
             "predictor accuracy"});

    for (int k = 0; k < 8; ++k) {
        auto kind = static_cast<PatternKind>(k);

        PatternParams pp;
        pp.numBuffers = 40;
        pp.length = 2048;
        pp.batchLen = 3;
        pp.period = 3;
        pp.stride = 3;
        auto sched = generateSchedule(kind, pp, rng);

        std::ostringstream head;
        for (int i = 0; i < 7; ++i)
            head << (i ? " " : "") << 10 + sched[i];

        std::vector<uint64_t> ids;
        for (unsigned s : sched)
            ids.push_back(10 + s);
        auto cls = classifySequence(ids);

        std::string param = "-";
        if (cls.stride != 0)
            param = "stride " + std::to_string(cls.stride);
        else if (cls.period != 0)
            param = "period " + std::to_string(cls.period);

        // Teach a fresh predictor this one PC's reload stream.
        AliasPredictor pred;
        for (uint64_t id : ids) {
            AliasPrediction p = pred.predict(0x401000);
            pred.update(0x401000, p, static_cast<Pid>(id));
        }

        t.addRow({patternName(kind), head.str(),
                  patternName(cls.kind), param,
                  Table::pct(pred.accuracy())});
    }
    t.print(std::cout);

    std::printf(
        "\nTakeaways (Section V-B):\n"
        " - patterns key on the *instruction* address, not the "
        "effective address;\n"
        " - constant and strided reload streams predict almost "
        "perfectly;\n"
        " - batched and strided-repeat classes remain largely "
        "predictable;\n"
        " - non-strided repeats and random orders defeat a pure "
        "stride predictor,\n"
        "   but their mispredictions become cheap PID forwards "
        "(PMAN, Figure 5e)\n"
        "   rather than pipeline flushes, so the performance cost "
        "stays negligible.\n");
    return 0;
}

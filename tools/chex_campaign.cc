/**
 * @file
 * chex-campaign: the command-line front end of the campaign driver.
 * Runs a named set of paper profiles across enforcement variants on
 * the worker pool and writes the JSON campaign report.
 *
 *   chex-campaign --profiles spec --variants baseline,ucode-pred \
 *                 --jobs 8 --seed 7 --reps 3 --out report.json
 *
 * Incremental re-runs pass previous reports as a result cache:
 *
 *   chex-campaign ... --cache report.json --out report2.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "driver/campaign.hh"
#include "driver/report.hh"
#include "workload/profiles.hh"

using namespace chex;

namespace
{

/** Short CLI tokens for the six variants. */
const std::map<std::string, VariantKind> &
variantTokens()
{
    static const std::map<std::string, VariantKind> tokens = {
        {"baseline", VariantKind::Baseline},
        {"hw-only", VariantKind::HardwareOnly},
        {"bintrans", VariantKind::BinaryTranslation},
        {"ucode-always", VariantKind::MicrocodeAlwaysOn},
        {"ucode-pred", VariantKind::MicrocodePrediction},
        {"asan", VariantKind::Asan},
    };
    return tokens;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Run a simulation campaign (profiles x variants x reps) on a\n"
        "worker thread pool and emit a JSON report.\n"
        "\n"
        "  --profiles LIST  comma-separated profile names, or one of\n"
        "                   'spec', 'parsec', 'all' (default: spec)\n"
        "  --variants LIST  comma-separated variant tokens, or 'all'\n"
        "                   (default: baseline,ucode-pred)\n"
        "  --jobs N         worker threads (default: all cores)\n"
        "  --seed S         campaign seed (default: 1)\n"
        "  --reps R         repetitions per point, each with a seed\n"
        "                   derived from (seed, job index) (default: 1)\n"
        "  --scale K        divide workload iteration counts by K\n"
        "                   (default: $CHEX_BENCH_SCALE or 1)\n"
        "  --retries N      attempts per job before it is recorded\n"
        "                   as failed (default: 1)\n"
        "  --isolate        fork each job into its own child process\n"
        "                   so a simulator panic/crash is recorded as\n"
        "                   a failed job (cause: signal) instead of\n"
        "                   killing the campaign\n"
        "  --timeout SECS   per-attempt wall-clock watchdog; a stuck\n"
        "                   child is killed and recorded as failed\n"
        "                   (cause: timeout). Implies --isolate\n"
        "  --cache FILE     load a previous campaign report as a\n"
        "                   result cache (repeatable; also seeded\n"
        "                   from $CHEX_BENCH_CACHE, colon-separated).\n"
        "                   Jobs whose spec hash and seed match a\n"
        "                   successful prior job are not re-simulated\n"
        "  --no-cache       ignore --cache and $CHEX_BENCH_CACHE\n"
        "  --out FILE       write the JSON report to FILE\n"
        "  --quiet          suppress per-job progress lines\n"
        "  --list           list profiles and variant tokens, exit\n",
        argv0);
}

void
listChoices()
{
    std::printf("profiles:\n");
    for (const BenchmarkProfile &p : allProfiles())
        std::printf("  %-12s (%s)\n", p.name.c_str(),
                    p.isParsec ? "PARSEC" : "SPEC");
    std::printf("variants:\n");
    for (const auto &[token, kind] : variantTokens())
        std::printf("  %-12s = %s\n", token.c_str(),
                    variantName(kind));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string profiles_arg = "spec";
    std::string variants_arg = "baseline,ucode-pred";
    std::string out_path;
    unsigned jobs = 0;
    uint64_t seed = 1;
    unsigned reps = 1;
    uint64_t scale = 1;
    unsigned retries = 1;
    bool isolate = false;
    double timeout = 0.0;
    bool quiet = false;
    std::vector<std::string> cache_paths;
    bool no_cache = false;

    if (const char *s = std::getenv("CHEX_BENCH_SCALE")) {
        uint64_t v = std::strtoull(s, nullptr, 10);
        if (v > 0)
            scale = v;
    }
    // The bench harness env knobs double as CLI defaults.
    if (const char *s = std::getenv("CHEX_BENCH_ISOLATE"))
        isolate = *s && std::strcmp(s, "0") != 0;
    if (const char *s = std::getenv("CHEX_BENCH_TIMEOUT")) {
        double v = std::strtod(s, nullptr);
        if (v > 0.0)
            timeout = v;
    }
    if (const char *s = std::getenv("CHEX_BENCH_CACHE")) {
        std::stringstream ss(s);
        std::string path;
        while (std::getline(ss, path, ':'))
            if (!path.empty())
                cache_paths.push_back(path);
    }

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *opt) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             opt);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--profiles") {
            profiles_arg = next("--profiles");
        } else if (arg == "--variants") {
            variants_arg = next("--variants");
        } else if (arg == "--jobs") {
            jobs = std::strtoul(next("--jobs"), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next("--seed"), nullptr, 10);
        } else if (arg == "--reps") {
            reps = std::strtoul(next("--reps"), nullptr, 10);
        } else if (arg == "--scale") {
            scale = std::strtoull(next("--scale"), nullptr, 10);
        } else if (arg == "--retries") {
            retries = std::strtoul(next("--retries"), nullptr, 10);
        } else if (arg == "--isolate") {
            isolate = true;
        } else if (arg == "--timeout") {
            const char *val = next("--timeout");
            char *end = nullptr;
            timeout = std::strtod(val, &end);
            if (!end || *end != '\0' || !(timeout >= 0.0)) {
                std::fprintf(stderr,
                             "%s: --timeout needs a non-negative "
                             "number of seconds, got '%s'\n",
                             argv[0], val);
                return 2;
            }
        } else if (arg == "--cache") {
            cache_paths.push_back(next("--cache"));
        } else if (arg == "--no-cache") {
            no_cache = true;
        } else if (arg == "--out") {
            out_path = next("--out");
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            listChoices();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }
    if (reps == 0)
        reps = 1;
    if (scale == 0)
        scale = 1;
    if (timeout > 0.0 && !isolate) {
        std::fprintf(stderr,
                     "%s: --timeout requires process isolation; "
                     "enabling --isolate\n",
                     argv[0]);
        isolate = true;
    }

    // Resolve profiles.
    std::vector<BenchmarkProfile> profiles;
    if (profiles_arg == "spec") {
        profiles = specProfiles();
    } else if (profiles_arg == "parsec") {
        profiles = parsecProfiles();
    } else if (profiles_arg == "all") {
        profiles = allProfiles();
    } else {
        for (const std::string &name : splitCommas(profiles_arg))
            profiles.push_back(profileByName(name)); // fatal if unknown
    }
    for (BenchmarkProfile &p : profiles)
        p = p.scaledBy(scale);

    // Resolve variants.
    std::vector<VariantKind> variants;
    if (variants_arg == "all") {
        for (const auto &[token, kind] : variantTokens())
            variants.push_back(kind);
    } else {
        for (const std::string &token : splitCommas(variants_arg)) {
            auto it = variantTokens().find(token);
            if (it == variantTokens().end()) {
                std::fprintf(stderr,
                             "%s: unknown variant '%s' (see --list)\n",
                             argv[0], token.c_str());
                return 2;
            }
            variants.push_back(it->second);
        }
    }
    if (profiles.empty() || variants.empty()) {
        std::fprintf(stderr, "%s: nothing to run\n", argv[0]);
        return 2;
    }

    // Build the job list: (profile x variant) x reps. A single rep
    // pins the workload seed so every variant sees the identical
    // program; with reps the driver derives per-job seeds instead.
    std::vector<driver::JobSpec> specs;
    for (const BenchmarkProfile &p : profiles) {
        for (VariantKind kind : variants) {
            for (unsigned r = 0; r < reps; ++r) {
                driver::JobSpec spec;
                spec.label = p.name + std::string("/") +
                             variantName(kind);
                if (reps > 1)
                    spec.label += csprintf("#%u", r);
                spec.profile = p;
                spec.config.variant.kind = kind;
                spec.repetition = r;
                if (reps == 1)
                    spec.workloadSeed = seed;
                specs.push_back(std::move(spec));
            }
        }
    }

    // Open the report file before burning simulation time on the
    // campaign, so a bad path fails fast.
    std::ofstream out;
    if (!out_path.empty()) {
        out.open(out_path);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", argv[0],
                         out_path.c_str());
            return 1;
        }
    }

    driver::CampaignOptions opts;
    opts.workers = jobs;
    opts.seed = seed;
    opts.maxAttempts = retries;
    opts.isolation = isolate;
    opts.timeoutSeconds = timeout;

    // Load the result cache: every prior report is parsed with the
    // same fromJson path the isolated workers use, so v1/v2/v3 files
    // all load (only v3 carries spec hashes and can produce hits).
    // An unreadable cache file is a hard error — the user explicitly
    // asked for it, and silently re-simulating everything would be
    // the costliest possible way to honor that request.
    if (no_cache)
        cache_paths.clear();
    for (const std::string &path : cache_paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "%s: cannot read cache '%s'\n",
                         argv[0], path.c_str());
            return 2;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        json::Value doc;
        std::string err;
        driver::CampaignReport prior;
        if (!json::Value::parse(ss.str(), doc, &err) ||
            !driver::fromJson(doc, prior, &err)) {
            std::fprintf(stderr, "%s: cache '%s' is not a campaign "
                         "report: %s\n",
                         argv[0], path.c_str(), err.c_str());
            return 2;
        }
        opts.cacheReports.push_back(std::move(prior));
    }

    size_t done = 0;
    if (!quiet) {
        opts.onJobDone = [&](const driver::JobResult &jr) {
            ++done;
            if (jr.failed) {
                std::printf("[%3zu/%zu] %-40s FAILED [%s] (%s)\n",
                            done, specs.size(), jr.label.c_str(),
                            driver::failureCauseName(jr.cause),
                            jr.error.c_str());
            } else if (jr.cached) {
                std::printf("[%3zu/%zu] %-40s %10lu cycles  ipc %.2f"
                            "  (cached)\n",
                            done, specs.size(), jr.label.c_str(),
                            static_cast<unsigned long>(jr.run.cycles),
                            jr.run.ipc);
            } else {
                std::printf("[%3zu/%zu] %-40s %10lu cycles  ipc %.2f"
                            "  %.2fs\n",
                            done, specs.size(), jr.label.c_str(),
                            static_cast<unsigned long>(jr.run.cycles),
                            jr.run.ipc, jr.wallSeconds);
            }
            std::fflush(stdout);
        };
    }

    driver::CampaignReport report = driver::runCampaign(specs, opts);

    std::printf("\ncampaign: %zu jobs (%zu cached, %zu failed) on "
                "%u workers, %.2fs wall (serial %.2fs, speedup "
                "%.2fx), aggregate ipc %.2f\n",
                report.jobsRun, report.jobsCached, report.jobsFailed,
                report.workers, report.wallSeconds,
                report.serialSeconds, report.speedup,
                report.aggregateIpc);

    if (out.is_open()) {
        driver::writeReport(report, out);
        std::printf("report: %s\n", out_path.c_str());
    }

    return report.jobsFailed ? 1 : 0;
}

/**
 * @file
 * chex-campaign: the command-line front end of the campaign driver,
 * as two subcommands sharing one flag parser (flag_parser.hh):
 *
 *   chex-campaign run      — execute a campaign (or one shard of
 *                            it) and write the JSON report
 *   chex-campaign attack   — sweep generated/suite exploit cases
 *                            across variants and distill the
 *                            security report
 *   chex-campaign merge    — recombine shard reports into the one
 *                            report an unsharded run would produce
 *   chex-campaign snapshot — warm every (profile, variant) point
 *                            and write a snapshot bundle
 *   chex-campaign replay   — re-run one (failed) report row by
 *                            itself, bit-identically
 *
 * A bare invocation (flags with no subcommand) keeps meaning `run`,
 * so every pre-subcommand command line still works.
 *
 *   chex-campaign run --profiles spec --variants baseline,ucode-pred \
 *                     --jobs 8 --seed 7 --reps 3 --out report.json
 *
 * Scale-out across machines shards by job index and merges:
 *
 *   chex-campaign run ... --shard 0/2 --out shard0.json   # machine A
 *   chex-campaign run ... --shard 1/2 --out shard1.json   # machine B
 *   chex-campaign merge --out report.json shard0.json shard1.json
 *
 * Incremental re-runs pass previous reports (merged ones included)
 * as a result cache:
 *
 *   chex-campaign run ... --cache report.json --out report2.json
 *
 * Checkpoint once, sweep many: warm each job point past the
 * workload's warm-up prefix, then fan campaigns out from the
 * checkpoint instead of re-simulating the prefix per job:
 *
 *   chex-campaign snapshot --profiles spec --warmup 50000 \
 *                          --out warm.chexsnap
 *   chex-campaign run ... --from-snapshot warm.chexsnap
 *
 * Crash triage re-runs a single failed row from the report (plus
 * the bundle, when the campaign fanned out of one):
 *
 *   chex-campaign replay --report report.json --isolate
 *
 * Security campaigns sweep seeded generated exploits (and/or the
 * hand-written suites) against enforcement variants, validate each
 * exploit against the insecure baseline, and emit the distilled
 * chex-security-report-v1 alongside the raw campaign report:
 *
 *   chex-campaign attack --attacks gen/mix --seeds 500 \
 *                        --variants baseline,ucode-pred \
 *                        --out attacks.json --security-out sec.json
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/generator.hh"
#include "attacks/registry.hh"
#include "base/logging.hh"
#include "driver/campaign.hh"
#include "driver/env.hh"
#include "driver/merge.hh"
#include "driver/replay.hh"
#include "driver/report.hh"
#include "driver/security_report.hh"
#include "driver/spec_hash.hh"
#include "flag_parser.hh"
#include "snapshot/codec.hh"
#include "snapshot/snapshot.hh"
#include "workload/profiles.hh"

using namespace chex;

namespace
{

/** Short CLI tokens for the six variants. */
const std::map<std::string, VariantKind> &
variantTokens()
{
    static const std::map<std::string, VariantKind> tokens = {
        {"baseline", VariantKind::Baseline},
        {"hw-only", VariantKind::HardwareOnly},
        {"bintrans", VariantKind::BinaryTranslation},
        {"ucode-always", VariantKind::MicrocodeAlwaysOn},
        {"ucode-pred", VariantKind::MicrocodePrediction},
        {"asan", VariantKind::Asan},
    };
    return tokens;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Strict positive/non-negative integer parses for flag handlers. */
bool
parseUint(const std::string &s, uint64_t &out)
{
    if (s.empty() || s.find('-') != std::string::npos)
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || !end || *end != '\0')
        return false;
    out = v;
    return true;
}

void
listChoices()
{
    std::printf("profiles:\n");
    for (const BenchmarkProfile &p : allProfiles())
        std::printf("  %-12s (%s)\n", p.name.c_str(),
                    p.isParsec ? "PARSEC" : "SPEC");
    for (const BenchmarkProfile &p : serverProfiles())
        std::printf("  %-12s (server)\n", p.name.c_str());
    std::printf("variants:\n");
    for (const auto &[token, kind] : variantTokens())
        std::printf("  %-12s = %s\n", token.c_str(),
                    variantName(kind));
}

/**
 * Resolve a --profiles argument ('spec'/'parsec'/'all'/'server' or
 * a comma-separated name list) into --scale-adjusted profiles.
 * Shared by run and snapshot so both subcommands see the identical
 * job points — a prerequisite for their spec hashes to line up.
 */
bool
resolveProfiles(const char *ctx, const std::string &arg,
                uint64_t scale, std::vector<BenchmarkProfile> *out)
{
    if (arg == "spec") {
        *out = specProfiles();
    } else if (arg == "parsec") {
        *out = parsecProfiles();
    } else if (arg == "all") {
        *out = allProfiles();
    } else if (arg == "server") {
        *out = serverProfiles();
    } else {
        for (const std::string &name : splitCommas(arg)) {
            const BenchmarkProfile *p = findProfileByName(name);
            if (!p) {
                std::fprintf(stderr,
                             "%s: unknown profile '%s' (see "
                             "--list)\n",
                             ctx, name.c_str());
                return false;
            }
            out->push_back(*p);
        }
    }
    for (BenchmarkProfile &p : *out)
        p = p.scaledBy(scale);
    return true;
}

/** Resolve a --variants argument ('all' or comma-separated CLI
 * tokens); shared by run and snapshot like resolveProfiles. */
bool
resolveVariants(const char *ctx, const std::string &arg,
                std::vector<VariantKind> *out)
{
    if (arg == "all") {
        for (const auto &[token, kind] : variantTokens())
            out->push_back(kind);
        return true;
    }
    for (const std::string &token : splitCommas(arg)) {
        auto it = variantTokens().find(token);
        if (it == variantTokens().end()) {
            std::fprintf(stderr,
                         "%s: unknown variant '%s' (see --list)\n",
                         ctx, token.c_str());
            return false;
        }
        out->push_back(it->second);
    }
    return true;
}

/**
 * Resolve one --attacks token into stable attack-case IDs. Accepts
 * 'suites' (every hand-written case), a suite token ('ripe', 'asan',
 * 'how2heap'), 'gen' (every generator family), 'gen/<family>', or an
 * explicit "<suite>/<case>" ID.
 */
bool
resolveAttackToken(const char *ctx, const std::string &token,
                   std::vector<std::string> *out)
{
    if (token == "suites") {
        for (const AttackSuite &suite : attackSuites())
            for (const AttackCase &c : suite.cases)
                out->push_back(attackCaseId(c));
        return true;
    }
    for (const AttackSuite &suite : attackSuites()) {
        if (token == suite.name) {
            for (const AttackCase &c : suite.cases)
                out->push_back(attackCaseId(c));
            return true;
        }
    }
    if (token == "gen") {
        for (const std::string &family : generatorFamilies())
            out->push_back("gen/" + family);
        return true;
    }
    if (isGeneratedAttackId(token) || findSuiteCase(token)) {
        out->push_back(token);
        return true;
    }
    std::fprintf(stderr,
                 "%s: unknown attack '%s' (see --list)\n", ctx,
                 token.c_str());
    return false;
}

/** Resolve a full --attacks argument, deduplicating repeats. */
bool
resolveAttacks(const char *ctx, const std::string &arg,
               std::vector<std::string> *out)
{
    for (const std::string &token : splitCommas(arg))
        if (!resolveAttackToken(ctx, token, out))
            return false;
    std::vector<std::string> unique;
    for (std::string &id : *out)
        if (std::find(unique.begin(), unique.end(), id) ==
            unique.end())
            unique.push_back(std::move(id));
    *out = std::move(unique);
    return true;
}

void
listAttackChoices()
{
    std::printf("attacks:\n");
    std::printf("  %-12s every hand-written suite case\n", "suites");
    for (const AttackSuite &suite : attackSuites())
        std::printf("  %-12s %s (%zu cases)\n", suite.name.c_str(),
                    suite.title.c_str(), suite.cases.size());
    std::printf("  %-12s every generator family\n", "gen");
    for (const std::string &family : generatorFamilies())
        std::printf("  gen/%-8s seeded generated attacks\n",
                    family.c_str());
    std::printf("  (or an explicit \"<suite>/<case>\" ID)\n");
    std::printf("variants:\n");
    for (const auto &[token, kind] : variantTokens())
        std::printf("  %-12s = %s\n", token.c_str(),
                    variantName(kind));
}

/**
 * The (profile x variant) x reps job list both run and snapshot
 * enumerate. A single rep pins the workload seed so every variant
 * sees the identical program; with reps the driver derives per-job
 * seeds instead.
 */
std::vector<driver::JobSpec>
buildSpecs(const std::vector<BenchmarkProfile> &profiles,
           const std::vector<VariantKind> &variants, uint64_t reps,
           uint64_t seed)
{
    std::vector<driver::JobSpec> specs;
    for (const BenchmarkProfile &p : profiles) {
        for (VariantKind kind : variants) {
            for (uint64_t r = 0; r < reps; ++r) {
                driver::JobSpec spec;
                spec.label = p.name + std::string("/") +
                             variantName(kind);
                if (reps > 1)
                    spec.label += csprintf("#%llu",
                                           static_cast<unsigned long
                                                       long>(r));
                spec.profile = p;
                spec.config.variant.kind = kind;
                spec.repetition = static_cast<unsigned>(r);
                if (reps == 1)
                    spec.workloadSeed = seed;
                specs.push_back(std::move(spec));
            }
        }
    }
    return specs;
}

int
runMain(const char *argv0, int argc, char **argv, int begin,
        bool bare)
{
    // The bench harness env knobs double as CLI defaults.
    driver::EnvOptions env = driver::optionsFromEnv();

    std::string profiles_arg = "spec";
    std::string variants_arg = "baseline,ucode-pred";
    std::string out_path;
    uint64_t jobs = env.jobs;
    uint64_t seed = 1;
    uint64_t reps = 1;
    uint64_t scale = env.scale;
    uint64_t retries = 1;
    bool isolate = env.isolate;
    double timeout = env.timeoutSeconds;
    unsigned shard_index = env.shardIndex;
    unsigned shard_count = env.shardCount;
    bool quiet = false;
    std::vector<std::string> cache_paths = env.cachePaths;
    bool no_cache = false;
    std::string snapshot_path = env.snapshotPath;
    bool list_only = false;

    cli::FlagParser parser(
        argv0, bare ? "" : "run",
        "Run a simulation campaign (profiles x variants x reps) on "
        "a\nworker thread pool and emit a JSON report "
        "(chex-campaign-report-v6).");
    parser.add("--profiles", "LIST",
               "comma-separated profile names, or one of\n"
               "'spec', 'parsec', 'all', 'server' (default: spec)",
               [&](const std::string &v) {
                   profiles_arg = v;
                   return true;
               });
    parser.add("--variants", "LIST",
               "comma-separated variant tokens, or 'all'\n"
               "(default: baseline,ucode-pred)",
               [&](const std::string &v) {
                   variants_arg = v;
                   return true;
               });
    parser.add("--jobs", "N",
               "worker threads (default: $CHEX_BENCH_JOBS or all "
               "cores)",
               [&](const std::string &v) {
                   return parseUint(v, jobs);
               });
    parser.add("--seed", "S", "campaign seed (default: 1)",
               [&](const std::string &v) {
                   return parseUint(v, seed);
               });
    parser.add("--reps", "R",
               "repetitions per point, each with a seed\n"
               "derived from (seed, job index) (default: 1)",
               [&](const std::string &v) {
                   return parseUint(v, reps);
               });
    parser.add("--scale", "K",
               "divide workload iteration counts by K\n"
               "(default: $CHEX_BENCH_SCALE or 1)",
               [&](const std::string &v) {
                   return parseUint(v, scale);
               });
    parser.add("--retries", "N",
               "attempts per job before it is recorded\n"
               "as failed (default: 1)",
               [&](const std::string &v) {
                   return parseUint(v, retries);
               });
    parser.add("--isolate",
               "fork each job into its own child process\n"
               "so a simulator panic/crash is recorded as\n"
               "a failed job (cause: signal) instead of\n"
               "killing the campaign",
               [&]() { isolate = true; });
    parser.add("--timeout", "SECS",
               "per-attempt wall-clock watchdog; a stuck\n"
               "child is killed and recorded as failed\n"
               "(cause: timeout). Implies --isolate",
               [&](const std::string &v) {
                   char *end = nullptr;
                   double t = std::strtod(v.c_str(), &end);
                   if (!end || *end != '\0' || !(t >= 0.0))
                       return false;
                   timeout = t;
                   return true;
               });
    parser.add("--shard", "I/N",
               "run only shard I of N (jobs with\n"
               "index % N == I); other jobs appear in the\n"
               "report as 'skipped' placeholders for the\n"
               "merge subcommand (default: $CHEX_BENCH_SHARD\n"
               "or 0/1)",
               [&](const std::string &v) {
                   std::string err;
                   if (!driver::parseShardSpec(v, shard_index,
                                               shard_count, &err)) {
                       std::fprintf(stderr, "%s: --shard %s: %s\n",
                                    argv0, v.c_str(), err.c_str());
                       return false;
                   }
                   return true;
               });
    parser.add("--cache", "FILE",
               "load a previous campaign report as a\n"
               "result cache (repeatable; also seeded\n"
               "from $CHEX_BENCH_CACHE, colon-separated).\n"
               "Jobs whose spec hash and seed match a\n"
               "successful prior job are not re-simulated",
               [&](const std::string &v) {
                   cache_paths.push_back(v);
                   return true;
               },
               cli::Repeat::Allowed);
    parser.add("--no-cache",
               "ignore --cache and $CHEX_BENCH_CACHE",
               [&]() { no_cache = true; });
    parser.add("--from-snapshot", "FILE",
               "fan the campaign out from the warmed machine\n"
               "states in a snapshot bundle written by the\n"
               "`snapshot` subcommand (also seeded from\n"
               "$CHEX_BENCH_SNAPSHOT). Jobs with a matching\n"
               "bundle entry restore it instead of running\n"
               "the warm-up prefix from scratch",
               [&](const std::string &v) {
                   snapshot_path = v;
                   return true;
               });
    parser.add("--out", "FILE", "write the JSON report to FILE",
               [&](const std::string &v) {
                   out_path = v;
                   return true;
               });
    parser.add("--quiet", "suppress per-job progress lines",
               [&]() { quiet = true; });
    parser.add("--list", "list profiles and variant tokens, exit",
               [&]() { list_only = true; });

    switch (parser.parse(argc, argv, begin)) {
      case cli::ParseStatus::Ok: break;
      case cli::ParseStatus::ExitOk: return 0;
      case cli::ParseStatus::ExitUsage: return 2;
    }
    if (list_only) {
        listChoices();
        return 0;
    }

    if (reps == 0)
        reps = 1;
    if (scale == 0)
        scale = 1;
    if (timeout > 0.0 && !isolate) {
        std::fprintf(stderr,
                     "%s: --timeout requires process isolation; "
                     "enabling --isolate\n",
                     argv0);
        isolate = true;
    }

    std::vector<BenchmarkProfile> profiles;
    std::vector<VariantKind> variants;
    if (!resolveProfiles(argv0, profiles_arg, scale, &profiles) ||
        !resolveVariants(argv0, variants_arg, &variants)) {
        return 2;
    }
    if (profiles.empty() || variants.empty()) {
        std::fprintf(stderr, "%s: nothing to run\n", argv0);
        return 2;
    }

    std::vector<driver::JobSpec> specs =
        buildSpecs(profiles, variants, reps, seed);

    // Open the report file before burning simulation time on the
    // campaign, so a bad path fails fast.
    std::ofstream out;
    if (!out_path.empty()) {
        out.open(out_path);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n", argv0,
                         out_path.c_str());
            return 1;
        }
    }

    driver::CampaignOptions opts;
    opts.workers = static_cast<unsigned>(jobs);
    opts.seed = seed;
    opts.maxAttempts = static_cast<unsigned>(retries ? retries : 1);
    opts.isolation = isolate;
    opts.timeoutSeconds = timeout;
    opts.shardIndex = shard_index;
    opts.shardCount = shard_count;

    // Load the result cache through the shared loader. An
    // unreadable cache file is a hard error — the user explicitly
    // asked for it, and silently re-simulating everything would be
    // the costliest possible way to honor that request.
    if (no_cache)
        cache_paths.clear();
    for (const std::string &path : cache_paths) {
        driver::CampaignReport prior;
        std::string err;
        if (!driver::loadReportFile(path, prior, &err)) {
            std::fprintf(stderr, "%s: cache %s\n", argv0,
                         err.c_str());
            return 2;
        }
        opts.cacheReports.push_back(std::move(prior));
    }

    // The snapshot bundle gets the same hard-error policy as the
    // cache: an explicit --from-snapshot that cannot be honored must
    // not silently degrade into re-simulating every warm-up prefix.
    if (!snapshot_path.empty()) {
        snapshot::Bundle bundle;
        std::string err;
        if (!snapshot::loadBundleFile(snapshot_path, &bundle, &err)) {
            std::fprintf(stderr, "%s: snapshot %s\n", argv0,
                         err.c_str());
            return 2;
        }
        opts.snapshot = std::make_shared<const snapshot::Bundle>(
            std::move(bundle));
    }

    size_t in_shard = 0;
    for (size_t i = 0; i < specs.size(); ++i)
        if (i % shard_count == shard_index)
            ++in_shard;
    if (shard_count > 1) {
        std::printf("shard %u/%u: %zu of %zu jobs in shard\n",
                    shard_index, shard_count, in_shard,
                    specs.size());
    }

    size_t done = 0;
    if (!quiet) {
        opts.onJobDone = [&](const driver::JobResult &jr) {
            ++done;
            if (jr.failed) {
                std::printf("[%3zu/%zu] %-40s FAILED [%s] (%s)\n",
                            done, in_shard, jr.label.c_str(),
                            driver::failureCauseName(jr.cause),
                            jr.error.c_str());
            } else if (jr.cached) {
                std::printf("[%3zu/%zu] %-40s %10lu cycles  ipc %.2f"
                            "  (cached)\n",
                            done, in_shard, jr.label.c_str(),
                            static_cast<unsigned long>(jr.run.cycles),
                            jr.run.ipc);
            } else {
                std::printf("[%3zu/%zu] %-40s %10lu cycles  ipc %.2f"
                            "  %.2fs\n",
                            done, in_shard, jr.label.c_str(),
                            static_cast<unsigned long>(jr.run.cycles),
                            jr.run.ipc, jr.wallSeconds);
            }
            std::fflush(stdout);
        };
    }

    driver::CampaignReport report = driver::runCampaign(specs, opts);

    std::printf("\ncampaign: %zu jobs (%zu cached, %zu from "
                "snapshot, %zu failed, %zu out of shard) on %u "
                "workers, %.2fs wall (serial %.2fs, speedup "
                "%.2fx), aggregate ipc %.2f\n",
                report.jobsRun, report.jobsCached,
                report.jobsFromSnapshot, report.jobsFailed,
                report.jobsSkipped, report.workers,
                report.wallSeconds, report.serialSeconds,
                report.speedup, report.aggregateIpc);

    if (out.is_open()) {
        driver::writeReport(report, out);
        std::printf("report: %s\n", out_path.c_str());
    }

    return report.jobsFailed ? 1 : 0;
}

/** Print the human-readable summary of a distilled security report. */
void
printSecuritySummary(const driver::SecurityReport &sec)
{
    std::printf("\nsecurity: %zu attack jobs (%zu failed), baseline "
                "validity %zu/%zu\n",
                sec.attackJobs, sec.failedJobs, sec.baselineValid,
                sec.baselineChecked);
    for (const driver::SecurityVariantSummary &s : sec.variants) {
        std::printf("  %-16s detected %zu/%zu (%.1f%%), anchor "
                    "matches %zu\n",
                    s.variant.c_str(), s.detected, s.attacks,
                    s.attacks ? 100.0 * static_cast<double>(
                                            s.detected) /
                                    static_cast<double>(s.attacks)
                              : 0.0,
                    s.anchorMatches);
    }
    for (const driver::SecurityEscape &e : sec.escaped) {
        std::printf("  ESCAPED job %zu: %s seed %llu under %s "
                    "(expected %s%s)\n",
                    e.index, e.attack.c_str(),
                    static_cast<unsigned long long>(e.seed),
                    e.variant.c_str(), e.expected.c_str(),
                    e.baselineValid ? ", baseline-valid exploit"
                                    : "");
    }
}

int
attackMain(const char *argv0, int argc, char **argv, int begin)
{
    driver::EnvOptions env = driver::optionsFromEnv();

    std::string attacks_arg = "gen/mix";
    std::string variants_arg = "baseline,ucode-pred";
    std::string out_path;
    std::string security_out_path;
    std::string from_report_path;
    uint64_t seeds = 64;
    uint64_t jobs = env.jobs;
    uint64_t seed = 1;
    uint64_t retries = 1;
    bool isolate = env.isolate;
    double timeout = env.timeoutSeconds;
    unsigned shard_index = env.shardIndex;
    unsigned shard_count = env.shardCount;
    bool quiet = false;
    std::vector<std::string> cache_paths = env.cachePaths;
    bool no_cache = false;
    bool no_uninit = false;
    bool list_only = false;

    cli::FlagParser parser(
        argv0, "attack",
        "Run a security campaign: every attack case (seeded "
        "generated\nexploits and/or the hand-written suites) "
        "against every variant,\nwith the baseline rows doubling "
        "as exploit validity checks\n(indicator fired => the "
        "corruption really landed). Emits the\nusual campaign "
        "report (chex-campaign-report-v6) plus the "
        "distilled\nchex-security-report-v1 (per-variant detection "
        "rate, anchor-class\nbreakdown, baseline validity, escaped "
        "attacks keyed for replay).");
    parser.add("--attacks", "LIST",
               "comma-separated attack tokens: 'suites', a\n"
               "suite ('ripe', 'asan', 'how2heap'), 'gen',\n"
               "'gen/<family>', or an explicit case ID\n"
               "(default: gen/mix)",
               [&](const std::string &v) {
                   attacks_arg = v;
                   return true;
               });
    parser.add("--seeds", "N",
               "generated-attack instances per gen/<family>\n"
               "token, seeded from (campaign seed, instance\n"
               "index); hand-written cases always run once\n"
               "(default: 64)",
               [&](const std::string &v) {
                   return parseUint(v, seeds);
               });
    parser.add("--variants", "LIST",
               "comma-separated variant tokens, or 'all';\n"
               "'baseline' is force-included for exploit\n"
               "validation (default: baseline,ucode-pred)",
               [&](const std::string &v) {
                   variants_arg = v;
                   return true;
               });
    parser.add("--jobs", "N",
               "worker threads (default: $CHEX_BENCH_JOBS or all "
               "cores)",
               [&](const std::string &v) {
                   return parseUint(v, jobs);
               });
    parser.add("--seed", "S", "campaign seed (default: 1)",
               [&](const std::string &v) {
                   return parseUint(v, seed);
               });
    parser.add("--retries", "N",
               "attempts per job before it is recorded\n"
               "as failed (default: 1)",
               [&](const std::string &v) {
                   return parseUint(v, retries);
               });
    parser.add("--isolate",
               "fork each job into its own child process",
               [&]() { isolate = true; });
    parser.add("--timeout", "SECS",
               "per-attempt wall-clock watchdog; implies\n"
               "--isolate",
               [&](const std::string &v) {
                   char *end = nullptr;
                   double t = std::strtod(v.c_str(), &end);
                   if (!end || *end != '\0' || !(t >= 0.0))
                       return false;
                   timeout = t;
                   return true;
               });
    parser.add("--shard", "I/N",
               "run only shard I of N; shards merge with\n"
               "`merge`, then distill with `attack\n"
               "--from-report` (default: $CHEX_BENCH_SHARD\n"
               "or 0/1)",
               [&](const std::string &v) {
                   std::string err;
                   if (!driver::parseShardSpec(v, shard_index,
                                               shard_count, &err)) {
                       std::fprintf(stderr, "%s: --shard %s: %s\n",
                                    argv0, v.c_str(), err.c_str());
                       return false;
                   }
                   return true;
               });
    parser.add("--cache", "FILE",
               "load a previous campaign report as a result\n"
               "cache (repeatable; also seeded from\n"
               "$CHEX_BENCH_CACHE)",
               [&](const std::string &v) {
                   cache_paths.push_back(v);
                   return true;
               },
               cli::Repeat::Allowed);
    parser.add("--no-cache",
               "ignore --cache and $CHEX_BENCH_CACHE",
               [&]() { no_cache = true; });
    parser.add("--out", "FILE",
               "write the raw campaign report to FILE",
               [&](const std::string &v) {
                   out_path = v;
                   return true;
               });
    parser.add("--security-out", "FILE",
               "write the distilled chex-security-report-v1\n"
               "to FILE (refused for sharded runs: merge the\n"
               "shards, then use --from-report)",
               [&](const std::string &v) {
                   security_out_path = v;
                   return true;
               });
    parser.add("--from-report", "FILE",
               "skip running: distill the security report\n"
               "from an existing (merged) campaign report",
               [&](const std::string &v) {
                   from_report_path = v;
                   return true;
               });
    parser.add("--no-uninit",
               "leave uninitialized-read detection off\n"
               "(default: on for every attack job, so the\n"
               "uninit family is detectable; inert under\n"
               "the baseline)",
               [&]() { no_uninit = true; });
    parser.add("--quiet", "suppress per-job progress lines",
               [&]() { quiet = true; });
    parser.add("--list", "list attack tokens and variants, exit",
               [&]() { list_only = true; });

    switch (parser.parse(argc, argv, begin)) {
      case cli::ParseStatus::Ok: break;
      case cli::ParseStatus::ExitOk: return 0;
      case cli::ParseStatus::ExitUsage: return 2;
    }
    if (list_only) {
        listAttackChoices();
        return 0;
    }

    std::string ctx = std::string(argv0) + " attack";

    // --from-report is the distill-only mode: load, derive, write.
    if (!from_report_path.empty()) {
        driver::CampaignReport prior;
        std::string err;
        if (!driver::loadReportFile(from_report_path, prior, &err)) {
            std::fprintf(stderr, "%s: %s\n", ctx.c_str(),
                         err.c_str());
            return 2;
        }
        driver::SecurityReport sec;
        if (!driver::buildSecurityReport(prior, &sec, &err)) {
            std::fprintf(stderr, "%s: %s\n", ctx.c_str(),
                         err.c_str());
            return 2;
        }
        if (!security_out_path.empty()) {
            std::ofstream sout(security_out_path);
            if (!sout) {
                std::fprintf(stderr, "%s: cannot write '%s'\n",
                             ctx.c_str(),
                             security_out_path.c_str());
                return 1;
            }
            driver::writeSecurityReport(sec, sout);
        } else {
            driver::writeSecurityReport(sec, std::cout);
        }
        if (!quiet)
            printSecuritySummary(sec);
        return 0;
    }

    if (seeds == 0)
        seeds = 1;
    if (timeout > 0.0 && !isolate)
        isolate = true;
    if (shard_count > 1 && !security_out_path.empty()) {
        std::fprintf(stderr,
                     "%s: --security-out on a sharded run would "
                     "distill a slice of the campaign; merge the "
                     "shards, then `attack --from-report`\n",
                     ctx.c_str());
        return 2;
    }

    std::vector<std::string> attack_ids;
    std::vector<VariantKind> variants;
    if (!resolveAttacks(ctx.c_str(), attacks_arg, &attack_ids) ||
        !resolveVariants(ctx.c_str(), variants_arg, &variants)) {
        return 2;
    }
    if (attack_ids.empty() || variants.empty()) {
        std::fprintf(stderr, "%s: nothing to run\n", ctx.c_str());
        return 2;
    }
    // The baseline rows are the exploit-validity ground truth; a
    // security campaign without them cannot tell a thwarted exploit
    // from a dud, so force the baseline in.
    if (std::find(variants.begin(), variants.end(),
                  VariantKind::Baseline) == variants.end()) {
        variants.insert(variants.begin(), VariantKind::Baseline);
        if (!quiet) {
            std::printf("note: including baseline for exploit "
                        "validation\n");
        }
    }

    // One instance = one (attack ID, derived seed) pair, pinned
    // across every variant so baseline validity and enforcement
    // rows describe the identical synthesized program.
    std::vector<driver::JobSpec> specs;
    size_t instance = 0;
    for (const std::string &id : attack_ids) {
        uint64_t count = isGeneratedAttackId(id) ? seeds : 1;
        for (uint64_t i = 0; i < count; ++i, ++instance) {
            uint64_t instance_seed = driver::jobSeed(seed, instance);
            for (VariantKind kind : variants) {
                driver::JobSpec spec;
                spec.label = id +
                             csprintf("#%llu/",
                                      static_cast<unsigned long long>(
                                          i)) +
                             variantName(kind);
                spec.attack = id;
                spec.profile = attackProfile();
                spec.config.variant.kind = kind;
                spec.config.detectUninitializedReads = !no_uninit;
                spec.workloadSeed = instance_seed;
                specs.push_back(std::move(spec));
            }
        }
    }

    std::ofstream out;
    if (!out_path.empty()) {
        out.open(out_path);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n",
                         ctx.c_str(), out_path.c_str());
            return 1;
        }
    }
    std::ofstream security_out;
    if (!security_out_path.empty()) {
        security_out.open(security_out_path);
        if (!security_out) {
            std::fprintf(stderr, "%s: cannot write '%s'\n",
                         ctx.c_str(), security_out_path.c_str());
            return 1;
        }
    }

    driver::CampaignOptions opts;
    opts.workers = static_cast<unsigned>(jobs);
    opts.seed = seed;
    opts.maxAttempts = static_cast<unsigned>(retries ? retries : 1);
    opts.isolation = isolate;
    opts.timeoutSeconds = timeout;
    opts.shardIndex = shard_index;
    opts.shardCount = shard_count;

    if (no_cache)
        cache_paths.clear();
    for (const std::string &path : cache_paths) {
        driver::CampaignReport prior;
        std::string err;
        if (!driver::loadReportFile(path, prior, &err)) {
            std::fprintf(stderr, "%s: cache %s\n", ctx.c_str(),
                         err.c_str());
            return 2;
        }
        opts.cacheReports.push_back(std::move(prior));
    }

    size_t in_shard = 0;
    for (size_t i = 0; i < specs.size(); ++i)
        if (i % shard_count == shard_index)
            ++in_shard;
    if (shard_count > 1) {
        std::printf("shard %u/%u: %zu of %zu attack jobs in shard\n",
                    shard_index, shard_count, in_shard,
                    specs.size());
    }

    size_t done = 0;
    if (!quiet) {
        opts.onJobDone = [&](const driver::JobResult &jr) {
            ++done;
            if (jr.failed) {
                std::printf("[%3zu/%zu] %-44s FAILED [%s] (%s)\n",
                            done, in_shard, jr.label.c_str(),
                            driver::failureCauseName(jr.cause),
                            jr.error.c_str());
            } else {
                const char *verdict =
                    jr.run.violationDetected
                        ? "DETECTED"
                        : (jr.run.indicatorChecked
                               ? (jr.run.indicatorFired
                                      ? "exploit landed"
                                      : "exploit dud")
                               : "escaped");
                std::printf("[%3zu/%zu] %-44s %s%s\n", done,
                            in_shard, jr.label.c_str(), verdict,
                            jr.cached ? "  (cached)" : "");
            }
            std::fflush(stdout);
        };
    }

    driver::CampaignReport report = driver::runCampaign(specs, opts);

    std::printf("\nattack campaign: %zu jobs (%zu cached, %zu "
                "failed, %zu out of shard) on %u workers, %.2fs "
                "wall\n",
                report.jobsRun, report.jobsCached,
                report.jobsFailed, report.jobsSkipped,
                report.workers, report.wallSeconds);

    if (out.is_open()) {
        driver::writeReport(report, out);
        std::printf("report: %s\n", out_path.c_str());
    }

    // Distill unless this run is one shard of a larger campaign (a
    // slice's rates would misrepresent it — the builder refuses).
    if (std::max(1u, report.shardCount) == 1) {
        driver::SecurityReport sec;
        std::string err;
        if (!driver::buildSecurityReport(report, &sec, &err)) {
            std::fprintf(stderr, "%s: %s\n", ctx.c_str(),
                         err.c_str());
            return 1;
        }
        if (security_out.is_open()) {
            driver::writeSecurityReport(sec, security_out);
            std::printf("security report: %s\n",
                        security_out_path.c_str());
        }
        printSecuritySummary(sec);
    }

    return report.jobsFailed ? 1 : 0;
}

int
snapshotMain(const char *argv0, int argc, char **argv, int begin)
{
    driver::EnvOptions env = driver::optionsFromEnv();

    std::string profiles_arg = "spec";
    std::string variants_arg = "baseline,ucode-pred";
    std::string out_path;
    uint64_t seed = 1;
    uint64_t scale = env.scale;
    uint64_t warmup = 2000;
    bool quiet = false;
    bool list_only = false;

    cli::FlagParser parser(
        argv0, "snapshot",
        "Warm every (profile x variant) job point to --warmup "
        "macro-ops\nand write the paused machine states as a "
        "snapshot bundle\n(chex-snapshot-bundle-v1). `run "
        "--from-snapshot` then fans its\njobs out from the bundle "
        "instead of re-simulating each job's\nwarm-up prefix. The "
        "bundle matches only campaigns with the\nidentical "
        "profiles/variants/seed/scale (single-rep), because\nentries "
        "are keyed by the driver's canonical spec hash.");
    parser.add("--profiles", "LIST",
               "comma-separated profile names, or one of\n"
               "'spec', 'parsec', 'all', 'server' (default: spec)",
               [&](const std::string &v) {
                   profiles_arg = v;
                   return true;
               });
    parser.add("--variants", "LIST",
               "comma-separated variant tokens, or 'all'\n"
               "(default: baseline,ucode-pred)",
               [&](const std::string &v) {
                   variants_arg = v;
                   return true;
               });
    parser.add("--seed", "S", "campaign seed (default: 1)",
               [&](const std::string &v) {
                   return parseUint(v, seed);
               });
    parser.add("--scale", "K",
               "divide workload iteration counts by K\n"
               "(default: $CHEX_BENCH_SCALE or 1)",
               [&](const std::string &v) {
                   return parseUint(v, scale);
               });
    parser.add("--warmup", "N",
               "macro-ops to execute before checkpointing\n"
               "each machine (default: 2000)",
               [&](const std::string &v) {
                   return parseUint(v, warmup);
               });
    parser.add("--out", "FILE",
               "write the snapshot bundle to FILE (required)",
               [&](const std::string &v) {
                   out_path = v;
                   return true;
               });
    parser.add("--quiet", "suppress per-machine progress lines",
               [&]() { quiet = true; });
    parser.add("--list", "list profiles and variant tokens, exit",
               [&]() { list_only = true; });

    switch (parser.parse(argc, argv, begin)) {
      case cli::ParseStatus::Ok: break;
      case cli::ParseStatus::ExitOk: return 0;
      case cli::ParseStatus::ExitUsage: return 2;
    }
    if (list_only) {
        listChoices();
        return 0;
    }

    std::string ctx = std::string(argv0) + " snapshot";
    if (out_path.empty()) {
        std::fprintf(stderr, "%s: --out is required\n", ctx.c_str());
        return 2;
    }
    if (scale == 0)
        scale = 1;
    if (warmup == 0) {
        std::fprintf(stderr,
                     "%s: --warmup must be at least 1 macro-op\n",
                     ctx.c_str());
        return 2;
    }

    std::vector<BenchmarkProfile> profiles;
    std::vector<VariantKind> variants;
    if (!resolveProfiles(ctx.c_str(), profiles_arg, scale,
                         &profiles) ||
        !resolveVariants(ctx.c_str(), variants_arg, &variants)) {
        return 2;
    }
    if (profiles.empty() || variants.empty()) {
        std::fprintf(stderr, "%s: nothing to snapshot\n",
                     ctx.c_str());
        return 2;
    }

    // Enumerate exactly the single-rep job list `run` would build:
    // the per-entry specKey must equal the spec hash the driver
    // computes for the matching job, or the fan-out finds nothing.
    std::vector<driver::JobSpec> specs =
        buildSpecs(profiles, variants, /*reps=*/1, seed);

    snapshot::Bundle bundle;
    bundle.campaignSeed = seed;
    bundle.warmupMacros = warmup;
    bundle.entries.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        const driver::JobSpec &spec = specs[i];
        snapshot::MachineEntry entry;
        std::string err;
        if (!snapshot::buildEntry(spec.profile, spec.config, seed,
                                  warmup,
                                  driver::specHash(spec, seed),
                                  &entry, &err)) {
            std::fprintf(stderr, "%s: %s: %s\n", ctx.c_str(),
                         spec.label.c_str(), err.c_str());
            return 1;
        }
        if (!quiet) {
            std::printf("[%3zu/%zu] %-40s warmed %llu macro-ops  "
                        "state %s\n",
                        i + 1, specs.size(), spec.label.c_str(),
                        static_cast<unsigned long long>(
                            entry.warmupMacros),
                        snapshot::stateHashHex(entry.stateHash)
                            .c_str());
            std::fflush(stdout);
        }
        bundle.entries.push_back(std::move(entry));
    }

    std::string err;
    if (!snapshot::writeBundleFile(out_path, bundle, &err)) {
        std::fprintf(stderr, "%s: %s\n", ctx.c_str(), err.c_str());
        return 1;
    }
    std::printf("bundle: %s (%zu machine states, warm-up %llu "
                "macro-ops, seed %llu)\n",
                out_path.c_str(), bundle.entries.size(),
                static_cast<unsigned long long>(warmup),
                static_cast<unsigned long long>(seed));
    return 0;
}

int
replayMain(const char *argv0, int argc, char **argv, int begin)
{
    driver::EnvOptions env = driver::optionsFromEnv();

    std::string report_path;
    std::string snapshot_path = env.snapshotPath;
    std::optional<size_t> index;
    uint64_t scale = env.scale;
    bool isolate = env.isolate;
    double timeout = env.timeoutSeconds;
    bool uninit = false;
    bool quiet = false;

    cli::FlagParser parser(
        argv0, "replay",
        "Re-run one row of a campaign report as a single job, "
        "pinned to\nthe recorded profile/variant/seed (and, for "
        "from-snapshot rows,\nthe recorded checkpoint). The "
        "reconstructed spec must hash to\nexactly what the report "
        "recorded, so a replay of a different\nsimulation point is "
        "refused rather than run. Exits 0 when the\nreplayed "
        "outcome matches the recorded one (same failure cause\nor "
        "same success), 1 when it differs.");
    parser.add("--report", "FILE",
               "the campaign report to replay from (required)",
               [&](const std::string &v) {
                   report_path = v;
                   return true;
               });
    parser.add("--index", "N",
               "report row to replay (default: the first\n"
               "failed row)",
               [&](const std::string &v) {
                   uint64_t n;
                   if (!parseUint(v, n))
                       return false;
                   index = static_cast<size_t>(n);
                   return true;
               });
    parser.add("--from-snapshot", "FILE",
               "the snapshot bundle the campaign fanned out\n"
               "from; required to replay from-snapshot rows\n"
               "(also seeded from $CHEX_BENCH_SNAPSHOT)",
               [&](const std::string &v) {
                   snapshot_path = v;
                   return true;
               });
    parser.add("--scale", "K",
               "the --scale the original campaign ran with\n"
               "(default: $CHEX_BENCH_SCALE or 1)",
               [&](const std::string &v) {
                   return parseUint(v, scale);
               });
    parser.add("--isolate",
               "fork the replayed job into its own child\n"
               "process, so a crash reproduces as a failed\n"
               "job (cause: signal) instead of killing the\n"
               "replay",
               [&]() { isolate = true; });
    parser.add("--timeout", "SECS",
               "per-attempt wall-clock watchdog for the\n"
               "replayed job. Implies --isolate",
               [&](const std::string &v) {
                   char *end = nullptr;
                   double t = std::strtod(v.c_str(), &end);
                   if (!end || *end != '\0' || !(t >= 0.0))
                       return false;
                   timeout = t;
                   return true;
               });
    parser.add("--uninit",
               "the original campaign ran with\n"
               "uninitialized-read detection on (the\n"
               "`attack` subcommand's default); required\n"
               "for such rows, or the reconstructed spec\n"
               "hash will not match the recorded one",
               [&]() { uninit = true; });
    parser.add("--quiet", "suppress the replay progress line",
               [&]() { quiet = true; });

    switch (parser.parse(argc, argv, begin)) {
      case cli::ParseStatus::Ok: break;
      case cli::ParseStatus::ExitOk: return 0;
      case cli::ParseStatus::ExitUsage: return 2;
    }

    std::string ctx = std::string(argv0) + " replay";
    if (report_path.empty()) {
        std::fprintf(stderr, "%s: --report is required\n",
                     ctx.c_str());
        return 2;
    }
    if (scale == 0)
        scale = 1;
    if (timeout > 0.0 && !isolate)
        isolate = true;

    driver::CampaignReport report;
    std::string err;
    if (!driver::loadReportFile(report_path, report, &err)) {
        std::fprintf(stderr, "%s: %s\n", ctx.c_str(), err.c_str());
        return 2;
    }

    std::shared_ptr<const snapshot::Bundle> bundle;
    if (!snapshot_path.empty()) {
        snapshot::Bundle b;
        if (!snapshot::loadBundleFile(snapshot_path, &b, &err)) {
            std::fprintf(stderr, "%s: snapshot %s\n", ctx.c_str(),
                         err.c_str());
            return 2;
        }
        bundle =
            std::make_shared<const snapshot::Bundle>(std::move(b));
    }

    size_t row = 0;
    if (!driver::selectReplayRow(report, index, &row, &err)) {
        std::fprintf(stderr, "%s: %s\n", ctx.c_str(), err.c_str());
        return 2;
    }

    SystemConfig base;
    base.detectUninitializedReads = uninit;

    driver::ReplayPlan plan;
    if (!driver::planReplay(report, row, base, scale,
                            bundle.get(), &plan, &err)) {
        std::fprintf(stderr, "%s: %s\n", ctx.c_str(), err.c_str());
        return 2;
    }
    const driver::JobResult &recorded = report.jobs[plan.index];

    if (!quiet) {
        std::printf("replaying job %zu: %-40s seed %llu  spec %s%s\n",
                    plan.index, recorded.label.c_str(),
                    static_cast<unsigned long long>(recorded.seed),
                    driver::specHashHex(recorded.specHash).c_str(),
                    plan.fromSnapshot ? "  (from snapshot)" : "");
        std::fflush(stdout);
    }

    driver::CampaignOptions opts;
    opts.workers = 1;
    opts.seed = report.seed;
    opts.isolation = isolate;
    opts.timeoutSeconds = timeout;
    opts.snapshot = bundle;

    driver::CampaignReport rerun =
        driver::runCampaign({plan.spec}, opts);
    if (rerun.jobs.size() != 1) {
        std::fprintf(stderr, "%s: replay produced %zu jobs\n",
                     ctx.c_str(), rerun.jobs.size());
        return 2;
    }
    const driver::JobResult &replayed = rerun.jobs[0];

    std::string detail;
    bool same = driver::outcomeReproduced(recorded, replayed,
                                          &detail);
    std::printf("replay: %s\n", detail.c_str());
    if (!replayed.failed) {
        std::printf("replay: %lu cycles, ipc %.2f, %.2fs\n",
                    static_cast<unsigned long>(replayed.run.cycles),
                    replayed.run.ipc, replayed.wallSeconds);
    }
    return same ? 0 : 1;
}

int
mergeMain(const char *argv0, int argc, char **argv, int begin)
{
    std::string out_path;
    bool quiet = false;

    cli::FlagParser parser(
        argv0, "merge",
        "Merge the per-shard reports of one sharded campaign into "
        "the\ncomplete report an unsharded run would have produced."
        "\nThe shards must agree on campaign seed and options, and "
        "must\ncover every job index exactly once.");
    parser.positionals("SHARD-REPORT...",
                       "shard report files written by `run --shard` "
                       "(any order)");
    parser.add("--out", "FILE",
               "write the merged JSON report to FILE\n"
               "(default: stdout)",
               [&](const std::string &v) {
                   out_path = v;
                   return true;
               });
    parser.add("--quiet", "suppress the merge summary line",
               [&]() { quiet = true; });

    switch (parser.parse(argc, argv, begin)) {
      case cli::ParseStatus::Ok: break;
      case cli::ParseStatus::ExitOk: return 0;
      case cli::ParseStatus::ExitUsage: return 2;
    }

    const std::vector<std::string> &paths = parser.positionalArgs();
    if (paths.empty()) {
        std::fprintf(stderr, "%s merge: no shard reports given\n",
                     argv0);
        parser.usage(stderr);
        return 2;
    }

    std::vector<driver::CampaignReport> shards;
    shards.reserve(paths.size());
    for (const std::string &path : paths) {
        driver::CampaignReport shard;
        std::string err;
        if (!driver::loadReportFile(path, shard, &err)) {
            std::fprintf(stderr, "%s merge: %s\n", argv0,
                         err.c_str());
            return 2;
        }
        shards.push_back(std::move(shard));
    }

    driver::CampaignReport merged;
    std::string err;
    if (!driver::mergeReports(shards, merged, &err)) {
        std::fprintf(stderr, "%s merge: %s\n", argv0, err.c_str());
        return 2;
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "%s merge: cannot write '%s'\n",
                         argv0, out_path.c_str());
            return 1;
        }
        driver::writeReport(merged, out);
    } else {
        driver::writeReport(merged, std::cout);
    }

    if (!quiet) {
        // When the JSON itself goes to stdout, keep it parseable and
        // put the human summary on stderr.
        FILE *info = out_path.empty() ? stderr : stdout;
        std::fprintf(info,
                     "merged %zu shard reports: %zu jobs (%zu "
                     "cached, %zu failed), %.2fs wall (serial "
                     "%.2fs), aggregate ipc %.2f\n",
                     shards.size(), merged.jobsRun,
                     merged.jobsCached, merged.jobsFailed,
                     merged.wallSeconds, merged.serialSeconds,
                     merged.aggregateIpc);
        if (!out_path.empty())
            std::fprintf(info, "report: %s\n", out_path.c_str());
    }

    return merged.jobsFailed ? 1 : 0;
}

void
globalUsage(const char *argv0, FILE *out)
{
    std::fprintf(
        out,
        "usage: %s <command> [options]\n"
        "\n"
        "commands:\n"
        "  run       run a simulation campaign (the default: a bare\n"
        "            `%s [options]` invocation means `run`)\n"
        "  attack    sweep seeded generated exploits (and the\n"
        "            hand-written suites) across variants and emit\n"
        "            the distilled security report\n"
        "  merge     merge shard reports from `run --shard I/N`\n"
        "  snapshot  warm every job point and write a snapshot\n"
        "            bundle for `run --from-snapshot`\n"
        "  replay    re-run one (failed) report row by itself,\n"
        "            bit-identically to its campaign run\n"
        "\n"
        "run '%s <command> --help' for per-command options\n",
        argv0, argv0, argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        std::string first = argv[1];
        if (first == "run")
            return runMain(argv[0], argc, argv, 2, false);
        if (first == "attack")
            return attackMain(argv[0], argc, argv, 2);
        if (first == "merge")
            return mergeMain(argv[0], argc, argv, 2);
        if (first == "snapshot")
            return snapshotMain(argv[0], argc, argv, 2);
        if (first == "replay")
            return replayMain(argv[0], argc, argv, 2);
        if (first == "help" || first == "--help" || first == "-h") {
            globalUsage(argv[0], stdout);
            return 0;
        }
        if (!first.empty() && first[0] != '-') {
            std::fprintf(stderr, "%s: unknown command '%s'\n",
                         argv[0], first.c_str());
            globalUsage(argv[0], stderr);
            return 2;
        }
    }
    // Back-compat: flags with no subcommand mean `run`.
    return runMain(argv[0], argc, argv, 1, true);
}

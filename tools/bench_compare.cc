/**
 * @file
 * Perf-record comparator for CI: `bench-compare BASELINE NEW` diffs
 * two committed benchmark documents of the same schema. Supported
 * schemas:
 *
 *  - chex-bench-throughput-v1 (micro_throughput → the committed
 *    BENCH_throughput.json): per-variant retired-work counts and
 *    host µops/second.
 *  - chex-bench-capscale-v1 (cap_scale → the committed
 *    BENCH_capscale.json): per-live-target capability-table op
 *    counts, peak shadow bytes, result checksum, and host ops/second.
 *  - chex-bench-aliasscale-v1 (alias_scale → the committed
 *    BENCH_aliasscale.json): per-live-target alias-table op counts,
 *    live entries, node counts, peak/end shadow bytes, result
 *    checksum, and host ops/second.
 *  - chex-security-report-v1 (chex-campaign attack → the committed
 *    BENCH_security.json): per-variant attack/detected/anchor
 *    counts, violation-class breakdown, baseline validity, and
 *    escape count. Everything is deterministic-output drift here —
 *    there are no wall-clock fields — and a detection-rate drop is
 *    flagged by name as the headline regression.
 *
 * Two classes of divergence, with different severities:
 *
 *  - Deterministic-output drift (macroOps/uops/cycles for
 *    throughput; ops/totalCapabilities/liveCapabilities/
 *    peakShadowBytes/checksum for capscale; ops/liveEntries/
 *    liveNodes/peakShadowBytes/endShadowBytes/checksum for
 *    aliasscale): FATAL. These are pure
 *    functions of (schema inputs, seed, scale); host-side
 *    optimizations must not move them. A mismatch means semantics
 *    changed — either a bug, or a deliberate model change that
 *    forgot to regenerate the committed record.
 *
 *  - Wall-clock regression (uopsPerSecond / opsPerSecond): WARNING
 *    only. Host throughput depends on the machine running the
 *    comparison, so a shared-runner CI cannot gate on it — but a
 *    drop past the threshold (default 25%, override with
 *    --tolerance) is loud in the log so a perf cliff does not land
 *    silently.
 *
 * Exit status: 0 on match (warnings included), 1 on fatal drift or
 * unreadable/mismatched inputs.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/json.hh"

namespace
{

using chex::json::Value;

double g_tolerance = 0.25;
int g_fatal = 0;
int g_warnings = 0;

bool
readDoc(const char *path, Value &doc)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench-compare: cannot open %s\n", path);
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!Value::parse(ss.str(), doc, &err)) {
        std::fprintf(stderr, "bench-compare: %s: %s\n", path,
                     err.c_str());
        return false;
    }
    return true;
}

/**
 * Compare one deterministic uint cell; fatal on drift. Returns true
 * when the cell matched.
 */
bool
checkUint(const std::string &row, const char *field, uint64_t b,
          uint64_t n)
{
    if (b == n)
        return true;
    std::fprintf(stderr, "FATAL: %s: %s drifted: %llu -> %llu\n",
                 row.c_str(), field,
                 static_cast<unsigned long long>(b),
                 static_cast<unsigned long long>(n));
    ++g_fatal;
    return false;
}

/** Warn when a wall-clock rate dropped past the tolerance. */
void
checkRate(const std::string &row, const char *field, double b,
          double n)
{
    if (b > 0.0 && n < b * (1.0 - g_tolerance)) {
        std::fprintf(stderr,
                     "WARNING: %s: %s dropped %.0f -> %.0f "
                     "(-%.1f%%, tolerance %.0f%%)\n",
                     row.c_str(), field, b, n,
                     100.0 * (1.0 - n / b), 100.0 * g_tolerance);
        ++g_warnings;
    }
}

// ---------------------------------------------------------------
// chex-bench-throughput-v1
// ---------------------------------------------------------------

struct ThroughputRow
{
    uint64_t macroOps = 0;
    uint64_t uops = 0;
    uint64_t cycles = 0;
    double uopsPerSecond = 0.0;
};

bool
loadThroughput(const char *path, const Value &doc,
               std::map<std::string, ThroughputRow> &rows)
{
    const Value *variants = doc.find("variants");
    if (!variants || !variants->isArray()) {
        std::fprintf(stderr, "bench-compare: %s: missing variants[]\n",
                     path);
        return false;
    }
    for (const Value &v : variants->items()) {
        ThroughputRow r;
        r.macroOps = chex::json::getUint(v, "macroOps", 0);
        r.uops = chex::json::getUint(v, "uops", 0);
        r.cycles = chex::json::getUint(v, "cycles", 0);
        r.uopsPerSecond = chex::json::getDouble(v, "uopsPerSecond", 0);
        rows[chex::json::getString(v, "variant", "?")] = r;
    }
    return true;
}

int
compareThroughput(const char *paths[2], const Value &base_doc,
                  const Value &new_doc)
{
    // The measurement cell (profile/scale/seed) must match exactly.
    if (chex::json::getString(base_doc, "profile", "") !=
            chex::json::getString(new_doc, "profile", "") ||
        chex::json::getUint(base_doc, "scale", 0) !=
            chex::json::getUint(new_doc, "scale", 0) ||
        chex::json::getUint(base_doc, "seed", 0) !=
            chex::json::getUint(new_doc, "seed", 0)) {
        std::fprintf(stderr,
                     "bench-compare: profile/scale/seed differ — the "
                     "records measure different cells\n");
        return 1;
    }

    std::map<std::string, ThroughputRow> base_rows, new_rows;
    if (!loadThroughput(paths[0], base_doc, base_rows) ||
        !loadThroughput(paths[1], new_doc, new_rows)) {
        return 1;
    }

    for (const auto &[name, b] : base_rows) {
        auto it = new_rows.find(name);
        if (it == new_rows.end()) {
            std::fprintf(stderr,
                         "FATAL: variant '%s' missing from %s\n",
                         name.c_str(), paths[1]);
            ++g_fatal;
            continue;
        }
        const ThroughputRow &n = it->second;
        checkUint(name, "macroOps", b.macroOps, n.macroOps);
        checkUint(name, "uops", b.uops, n.uops);
        checkUint(name, "cycles", b.cycles, n.cycles);
        checkRate(name, "uops/s", b.uopsPerSecond, n.uopsPerSecond);
    }
    for (const auto &[name, r] : new_rows) {
        (void)r;
        if (!base_rows.count(name))
            std::fprintf(stderr,
                         "note: new variant '%s' not in baseline\n",
                         name.c_str());
    }

    if (g_fatal)
        return 1;
    std::fprintf(stderr,
                 "bench-compare: simulated counts match for all %zu "
                 "variants (%d wall-clock warning(s))\n",
                 base_rows.size(), g_warnings);
    return 0;
}

// ---------------------------------------------------------------
// chex-bench-capscale-v1
// ---------------------------------------------------------------

struct CapScaleRow
{
    uint64_t ops = 0;
    uint64_t totalCaps = 0;
    uint64_t liveCaps = 0;
    uint64_t peakShadowBytes = 0;
    uint64_t checksum = 0;
    double opsPerSecond = 0.0;
};

bool
loadCapScale(const char *path, const Value &doc,
             std::map<uint64_t, CapScaleRow> &rows)
{
    const Value *arr = doc.find("rows");
    if (!arr || !arr->isArray()) {
        std::fprintf(stderr, "bench-compare: %s: missing rows[]\n",
                     path);
        return false;
    }
    for (const Value &v : arr->items()) {
        CapScaleRow r;
        r.ops = chex::json::getUint(v, "ops", 0);
        r.totalCaps = chex::json::getUint(v, "totalCapabilities", 0);
        r.liveCaps = chex::json::getUint(v, "liveCapabilities", 0);
        r.peakShadowBytes =
            chex::json::getUint(v, "peakShadowBytes", 0);
        r.checksum = chex::json::getUint(v, "checksum", 0);
        r.opsPerSecond = chex::json::getDouble(v, "opsPerSecond", 0);
        rows[chex::json::getUint(v, "liveTarget", 0)] = r;
    }
    return true;
}

int
compareCapScale(const char *paths[2], const Value &base_doc,
                const Value &new_doc)
{
    // The measurement cell (seed/scale/churnOps) must match exactly.
    if (chex::json::getUint(base_doc, "seed", 0) !=
            chex::json::getUint(new_doc, "seed", 0) ||
        chex::json::getUint(base_doc, "scale", 0) !=
            chex::json::getUint(new_doc, "scale", 0) ||
        chex::json::getUint(base_doc, "churnOps", 0) !=
            chex::json::getUint(new_doc, "churnOps", 0)) {
        std::fprintf(stderr,
                     "bench-compare: seed/scale/churnOps differ — "
                     "the records measure different cells\n");
        return 1;
    }

    std::map<uint64_t, CapScaleRow> base_rows, new_rows;
    if (!loadCapScale(paths[0], base_doc, base_rows) ||
        !loadCapScale(paths[1], new_doc, new_rows)) {
        return 1;
    }

    for (const auto &[target, b] : base_rows) {
        auto it = new_rows.find(target);
        if (it == new_rows.end()) {
            std::fprintf(
                stderr,
                "FATAL: live target %llu missing from %s\n",
                static_cast<unsigned long long>(target), paths[1]);
            ++g_fatal;
            continue;
        }
        const CapScaleRow &n = it->second;
        std::string name =
            "live=" + std::to_string(target);
        checkUint(name, "ops", b.ops, n.ops);
        checkUint(name, "totalCapabilities", b.totalCaps,
                  n.totalCaps);
        checkUint(name, "liveCapabilities", b.liveCaps, n.liveCaps);
        checkUint(name, "peakShadowBytes", b.peakShadowBytes,
                  n.peakShadowBytes);
        checkUint(name, "checksum", b.checksum, n.checksum);
        checkRate(name, "ops/s", b.opsPerSecond, n.opsPerSecond);
    }
    for (const auto &[target, r] : new_rows) {
        (void)r;
        if (!base_rows.count(target))
            std::fprintf(
                stderr,
                "note: new live target %llu not in baseline\n",
                static_cast<unsigned long long>(target));
    }

    if (g_fatal)
        return 1;
    std::fprintf(stderr,
                 "bench-compare: deterministic counts match for all "
                 "%zu live targets (%d wall-clock warning(s))\n",
                 base_rows.size(), g_warnings);
    return 0;
}

// ---------------------------------------------------------------
// chex-bench-aliasscale-v1
// ---------------------------------------------------------------

struct AliasScaleRow
{
    uint64_t ops = 0;
    uint64_t liveEntries = 0;
    uint64_t peakShadowBytes = 0;
    uint64_t endShadowBytes = 0;
    uint64_t liveNodes = 0;
    uint64_t checksum = 0;
    double opsPerSecond = 0.0;
};

bool
loadAliasScale(const char *path, const Value &doc,
               std::map<uint64_t, AliasScaleRow> &rows)
{
    const Value *arr = doc.find("rows");
    if (!arr || !arr->isArray()) {
        std::fprintf(stderr, "bench-compare: %s: missing rows[]\n",
                     path);
        return false;
    }
    for (const Value &v : arr->items()) {
        AliasScaleRow r;
        r.ops = chex::json::getUint(v, "ops", 0);
        r.liveEntries = chex::json::getUint(v, "liveEntries", 0);
        r.peakShadowBytes =
            chex::json::getUint(v, "peakShadowBytes", 0);
        r.endShadowBytes =
            chex::json::getUint(v, "endShadowBytes", 0);
        r.liveNodes = chex::json::getUint(v, "liveNodes", 0);
        r.checksum = chex::json::getUint(v, "checksum", 0);
        r.opsPerSecond = chex::json::getDouble(v, "opsPerSecond", 0);
        rows[chex::json::getUint(v, "liveTarget", 0)] = r;
    }
    return true;
}

int
compareAliasScale(const char *paths[2], const Value &base_doc,
                  const Value &new_doc)
{
    // The measurement cell (seed/scale/churnOps) must match exactly.
    if (chex::json::getUint(base_doc, "seed", 0) !=
            chex::json::getUint(new_doc, "seed", 0) ||
        chex::json::getUint(base_doc, "scale", 0) !=
            chex::json::getUint(new_doc, "scale", 0) ||
        chex::json::getUint(base_doc, "churnOps", 0) !=
            chex::json::getUint(new_doc, "churnOps", 0)) {
        std::fprintf(stderr,
                     "bench-compare: seed/scale/churnOps differ — "
                     "the records measure different cells\n");
        return 1;
    }

    std::map<uint64_t, AliasScaleRow> base_rows, new_rows;
    if (!loadAliasScale(paths[0], base_doc, base_rows) ||
        !loadAliasScale(paths[1], new_doc, new_rows)) {
        return 1;
    }

    for (const auto &[target, b] : base_rows) {
        auto it = new_rows.find(target);
        if (it == new_rows.end()) {
            std::fprintf(
                stderr,
                "FATAL: live target %llu missing from %s\n",
                static_cast<unsigned long long>(target), paths[1]);
            ++g_fatal;
            continue;
        }
        const AliasScaleRow &n = it->second;
        std::string name = "live=" + std::to_string(target);
        checkUint(name, "ops", b.ops, n.ops);
        checkUint(name, "liveEntries", b.liveEntries, n.liveEntries);
        checkUint(name, "peakShadowBytes", b.peakShadowBytes,
                  n.peakShadowBytes);
        checkUint(name, "endShadowBytes", b.endShadowBytes,
                  n.endShadowBytes);
        checkUint(name, "liveNodes", b.liveNodes, n.liveNodes);
        checkUint(name, "checksum", b.checksum, n.checksum);
        checkRate(name, "ops/s", b.opsPerSecond, n.opsPerSecond);
    }
    for (const auto &[target, r] : new_rows) {
        (void)r;
        if (!base_rows.count(target))
            std::fprintf(
                stderr,
                "note: new live target %llu not in baseline\n",
                static_cast<unsigned long long>(target));
    }

    if (g_fatal)
        return 1;
    std::fprintf(stderr,
                 "bench-compare: deterministic counts match for all "
                 "%zu live targets (%d wall-clock warning(s))\n",
                 base_rows.size(), g_warnings);
    return 0;
}

// ---------------------------------------------------------------
// chex-security-report-v1
// ---------------------------------------------------------------

struct SecurityVariantRow
{
    uint64_t attacks = 0;
    uint64_t detected = 0;
    uint64_t anchorMatches = 0;
    double detectionRate = 0.0;
    std::map<std::string, uint64_t> byClass;
};

bool
loadSecurity(const char *path, const Value &doc,
             std::map<std::string, SecurityVariantRow> &rows)
{
    const Value *variants = doc.find("variants");
    if (!variants || !variants->isArray()) {
        std::fprintf(stderr, "bench-compare: %s: missing variants[]\n",
                     path);
        return false;
    }
    for (const Value &v : variants->items()) {
        SecurityVariantRow r;
        r.attacks = chex::json::getUint(v, "attacks", 0);
        r.detected = chex::json::getUint(v, "detected", 0);
        r.anchorMatches = chex::json::getUint(v, "anchorMatches", 0);
        r.detectionRate = chex::json::getDouble(v, "detectionRate", 0);
        if (const Value *by_class = v.find("byClass")) {
            for (const auto &[cls, n] : by_class->members())
                r.byClass[cls] = n.isNumber() ? n.asUint64() : 0;
        }
        rows[chex::json::getString(v, "variant", "?")] = r;
    }
    return true;
}

int
compareSecurity(const char *paths[2], const Value &base_doc,
                const Value &new_doc)
{
    // Same campaign seed, or the reports sweep different exploit
    // populations entirely.
    if (chex::json::getUint(base_doc, "campaignSeed", 0) !=
        chex::json::getUint(new_doc, "campaignSeed", 0)) {
        std::fprintf(stderr,
                     "bench-compare: campaignSeed differs — the "
                     "reports sweep different attack populations\n");
        return 1;
    }

    checkUint("campaign", "attackJobs",
              chex::json::getUint(base_doc, "attackJobs", 0),
              chex::json::getUint(new_doc, "attackJobs", 0));
    checkUint("campaign", "failedJobs",
              chex::json::getUint(base_doc, "failedJobs", 0),
              chex::json::getUint(new_doc, "failedJobs", 0));

    const Value *base_bl = base_doc.find("baseline");
    const Value *new_bl = new_doc.find("baseline");
    if (base_bl && new_bl) {
        checkUint("baseline", "checked",
                  chex::json::getUint(*base_bl, "checked", 0),
                  chex::json::getUint(*new_bl, "checked", 0));
        checkUint("baseline", "valid",
                  chex::json::getUint(*base_bl, "valid", 0),
                  chex::json::getUint(*new_bl, "valid", 0));
    }

    std::map<std::string, SecurityVariantRow> base_rows, new_rows;
    if (!loadSecurity(paths[0], base_doc, base_rows) ||
        !loadSecurity(paths[1], new_doc, new_rows)) {
        return 1;
    }

    for (const auto &[name, b] : base_rows) {
        auto it = new_rows.find(name);
        if (it == new_rows.end()) {
            std::fprintf(stderr,
                         "FATAL: variant '%s' missing from %s\n",
                         name.c_str(), paths[1]);
            ++g_fatal;
            continue;
        }
        const SecurityVariantRow &n = it->second;
        // A detection-rate drop is THE regression this comparator
        // exists to catch: an enforcement variant newly missing
        // exploits it used to stop. Call it out by name before the
        // raw count diffs.
        if (n.detectionRate < b.detectionRate) {
            std::fprintf(stderr,
                         "FATAL: %s: detection rate dropped %.4f -> "
                         "%.4f\n",
                         name.c_str(), b.detectionRate,
                         n.detectionRate);
            ++g_fatal;
        }
        checkUint(name, "attacks", b.attacks, n.attacks);
        checkUint(name, "detected", b.detected, n.detected);
        checkUint(name, "anchorMatches", b.anchorMatches,
                  n.anchorMatches);
        for (const auto &[cls, count] : b.byClass) {
            auto cit = n.byClass.find(cls);
            checkUint(name, ("byClass." + cls).c_str(), count,
                      cit == n.byClass.end() ? 0 : cit->second);
        }
        for (const auto &[cls, count] : n.byClass) {
            if (!b.byClass.count(cls))
                checkUint(name, ("byClass." + cls).c_str(), 0,
                          count);
        }
    }
    for (const auto &[name, r] : new_rows) {
        (void)r;
        if (!base_rows.count(name))
            std::fprintf(stderr,
                         "note: new variant '%s' not in baseline\n",
                         name.c_str());
    }

    const Value *base_esc = base_doc.find("escaped");
    const Value *new_esc = new_doc.find("escaped");
    checkUint("campaign", "escaped",
              base_esc && base_esc->isArray()
                  ? base_esc->items().size() : 0,
              new_esc && new_esc->isArray()
                  ? new_esc->items().size() : 0);

    if (g_fatal)
        return 1;
    std::fprintf(stderr,
                 "bench-compare: security outcomes match for all %zu "
                 "variants\n",
                 base_rows.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *paths[2] = {nullptr, nullptr};
    int npaths = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            g_tolerance = std::atof(argv[++i]);
        } else if (npaths < 2) {
            paths[npaths++] = argv[i];
        } else {
            npaths = 3; // too many
            break;
        }
    }
    if (npaths != 2) {
        std::fprintf(stderr,
                     "usage: bench-compare [--tolerance F] "
                     "BASELINE.json NEW.json\n");
        return 1;
    }

    Value base_doc, new_doc;
    if (!readDoc(paths[0], base_doc) || !readDoc(paths[1], new_doc))
        return 1;

    std::string base_schema =
        chex::json::getString(base_doc, "schema", "");
    std::string new_schema =
        chex::json::getString(new_doc, "schema", "");
    if (base_schema != new_schema) {
        std::fprintf(stderr,
                     "bench-compare: schema mismatch: %s is '%s', "
                     "%s is '%s'\n",
                     paths[0], base_schema.c_str(), paths[1],
                     new_schema.c_str());
        return 1;
    }
    if (base_schema == "chex-bench-throughput-v1")
        return compareThroughput(paths, base_doc, new_doc);
    if (base_schema == "chex-bench-capscale-v1")
        return compareCapScale(paths, base_doc, new_doc);
    if (base_schema == "chex-bench-aliasscale-v1")
        return compareAliasScale(paths, base_doc, new_doc);
    if (base_schema == "chex-security-report-v1")
        return compareSecurity(paths, base_doc, new_doc);

    std::fprintf(stderr,
                 "bench-compare: unsupported schema '%s' (expected "
                 "chex-bench-throughput-v1, chex-bench-capscale-v1, "
                 "chex-bench-aliasscale-v1, or "
                 "chex-security-report-v1)\n",
                 base_schema.c_str());
    return 1;
}

/**
 * @file
 * Throughput-record comparator for CI: `bench-compare BASELINE NEW`
 * diffs two chex-bench-throughput-v1 documents (the committed
 * BENCH_throughput.json vs a fresh micro_throughput run).
 *
 * Two classes of divergence, with different severities:
 *
 *  - Simulated-work drift (macroOps/uops/cycles): FATAL. The
 *    simulator's retired-work counts are deterministic functions of
 *    (profile, scale, seed, variant); host-side optimizations must
 *    not move them. A mismatch means semantics changed — either a
 *    bug, or a deliberate model change that forgot to regenerate the
 *    committed record.
 *
 *  - Wall-clock regression (uopsPerSecond): WARNING only. Host
 *    throughput depends on the machine running the comparison, so a
 *    shared-runner CI cannot gate on it — but a drop past the
 *    threshold (default 25%, override with --tolerance) is loud in
 *    the log so a perf cliff does not land silently.
 *
 * Exit status: 0 on match (warnings included), 1 on fatal drift or
 * unreadable/mismatched inputs.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "base/json.hh"

namespace
{

using chex::json::Value;

struct Row
{
    uint64_t macroOps = 0;
    uint64_t uops = 0;
    uint64_t cycles = 0;
    double uopsPerSecond = 0.0;
};

bool
loadDoc(const char *path, Value &doc, std::map<std::string, Row> &rows)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench-compare: cannot open %s\n", path);
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!Value::parse(ss.str(), doc, &err)) {
        std::fprintf(stderr, "bench-compare: %s: %s\n", path,
                     err.c_str());
        return false;
    }
    if (chex::json::getString(doc, "schema", "") !=
        "chex-bench-throughput-v1") {
        std::fprintf(stderr,
                     "bench-compare: %s: not a "
                     "chex-bench-throughput-v1 document\n",
                     path);
        return false;
    }
    const Value *variants = doc.find("variants");
    if (!variants || !variants->isArray()) {
        std::fprintf(stderr, "bench-compare: %s: missing variants[]\n",
                     path);
        return false;
    }
    for (const Value &v : variants->items()) {
        Row r;
        r.macroOps = chex::json::getUint(v, "macroOps", 0);
        r.uops = chex::json::getUint(v, "uops", 0);
        r.cycles = chex::json::getUint(v, "cycles", 0);
        r.uopsPerSecond = chex::json::getDouble(v, "uopsPerSecond", 0);
        rows[chex::json::getString(v, "variant", "?")] = r;
    }
    return true;
}

/** The measurement cell (profile/scale/seed) must match exactly. */
bool
sameCell(const Value &a, const Value &b)
{
    return chex::json::getString(a, "profile", "") ==
               chex::json::getString(b, "profile", "") &&
           chex::json::getUint(a, "scale", 0) ==
               chex::json::getUint(b, "scale", 0) &&
           chex::json::getUint(a, "seed", 0) ==
               chex::json::getUint(b, "seed", 0);
}

} // namespace

int
main(int argc, char **argv)
{
    double tolerance = 0.25;
    const char *paths[2] = {nullptr, nullptr};
    int npaths = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
        } else if (npaths < 2) {
            paths[npaths++] = argv[i];
        } else {
            npaths = 3; // too many
            break;
        }
    }
    if (npaths != 2) {
        std::fprintf(stderr,
                     "usage: bench-compare [--tolerance F] "
                     "BASELINE.json NEW.json\n");
        return 1;
    }

    Value base_doc, new_doc;
    std::map<std::string, Row> base_rows, new_rows;
    if (!loadDoc(paths[0], base_doc, base_rows) ||
        !loadDoc(paths[1], new_doc, new_rows)) {
        return 1;
    }
    if (!sameCell(base_doc, new_doc)) {
        std::fprintf(stderr,
                     "bench-compare: profile/scale/seed differ — the "
                     "records measure different cells\n");
        return 1;
    }

    int fatal = 0, warnings = 0;
    for (const auto &[name, b] : base_rows) {
        auto it = new_rows.find(name);
        if (it == new_rows.end()) {
            std::fprintf(stderr,
                         "FATAL: variant '%s' missing from %s\n",
                         name.c_str(), paths[1]);
            ++fatal;
            continue;
        }
        const Row &n = it->second;
        if (n.macroOps != b.macroOps || n.uops != b.uops ||
            n.cycles != b.cycles) {
            std::fprintf(
                stderr,
                "FATAL: %s: simulated counts drifted: "
                "macroOps %llu->%llu uops %llu->%llu "
                "cycles %llu->%llu\n",
                name.c_str(),
                static_cast<unsigned long long>(b.macroOps),
                static_cast<unsigned long long>(n.macroOps),
                static_cast<unsigned long long>(b.uops),
                static_cast<unsigned long long>(n.uops),
                static_cast<unsigned long long>(b.cycles),
                static_cast<unsigned long long>(n.cycles));
            ++fatal;
        }
        if (b.uopsPerSecond > 0.0 &&
            n.uopsPerSecond < b.uopsPerSecond * (1.0 - tolerance)) {
            std::fprintf(stderr,
                         "WARNING: %s: uops/s dropped %.0f -> %.0f "
                         "(-%.1f%%, tolerance %.0f%%)\n",
                         name.c_str(), b.uopsPerSecond,
                         n.uopsPerSecond,
                         100.0 * (1.0 - n.uopsPerSecond /
                                            b.uopsPerSecond),
                         100.0 * tolerance);
            ++warnings;
        }
    }
    for (const auto &[name, r] : new_rows) {
        (void)r;
        if (!base_rows.count(name))
            std::fprintf(stderr,
                         "note: new variant '%s' not in baseline\n",
                         name.c_str());
    }

    if (fatal) {
        std::fprintf(stderr,
                     "bench-compare: %d fatal mismatch(es) — "
                     "simulated semantics changed\n",
                     fatal);
        return 1;
    }
    std::fprintf(stderr,
                 "bench-compare: simulated counts match for all %zu "
                 "variants (%d wall-clock warning(s))\n",
                 base_rows.size(), warnings);
    return 0;
}

/**
 * @file
 * A small declarative flag parser for the chex command-line tools,
 * shared by the chex-campaign `run` and `merge` subcommands. Each
 * subcommand registers its flags (name, metavar, help, handler) and
 * gets argv parsing, `--help`, auto-generated per-subcommand usage
 * text, and positional-argument collection — replacing the
 * hand-rolled argv loop that grew a branch per flag across three
 * PRs.
 *
 * Handlers validate their value and return false to reject it; the
 * parser owns all error reporting, so every bad invocation prints
 * the same "tool subcommand: message" shape followed by a usage
 * pointer.
 *
 * Flags are single-occurrence by default: a duplicate is rejected
 * with a clear error instead of silently taking the last value
 * (where "--shard 0/2 ... --shard 1/2" pasted across shell history
 * would quietly run the wrong shard). Flags that genuinely
 * accumulate (the run subcommand's --cache) opt in via
 * Repeat::Allowed.
 */

#ifndef CHEX_TOOLS_FLAG_PARSER_HH
#define CHEX_TOOLS_FLAG_PARSER_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace chex
{
namespace cli
{

/** Outcome of FlagParser::parse, mapped straight to main(). */
enum class ParseStatus
{
    Ok,       // flags consumed; proceed with the subcommand
    ExitOk,   // --help was handled; exit 0
    ExitUsage // bad invocation (already reported); exit 2
};

/** Whether a flag may appear more than once on one command line. */
enum class Repeat
{
    Once,   // duplicate occurrences are a usage error (the default)
    Allowed // each occurrence invokes the handler (e.g. --cache)
};

class FlagParser
{
  public:
    /**
     * @p prog is argv[0]; @p subcommand names the usage ("run",
     * "merge", or "" for the bare-invocation alias of run);
     * @p summary is the one-paragraph description printed by
     * --help.
     */
    FlagParser(std::string prog, std::string subcommand,
               std::string summary)
        : _prog(std::move(prog)), _subcommand(std::move(subcommand)),
          _summary(std::move(summary))
    {
    }

    /**
     * A value-taking flag: `--name METAVAR`. The handler returns
     * false to reject the value (the parser reports the error).
     * Multi-line @p help continues with aligned indentation.
     */
    void
    add(const std::string &name, const std::string &metavar,
        const std::string &help,
        std::function<bool(const std::string &)> handler,
        Repeat repeat = Repeat::Once)
    {
        _flags.push_back({name, metavar, help, std::move(handler),
                          nullptr, repeat});
    }

    /** A boolean switch: `--name` with no value. Switches are
     * idempotent, so repeating one is harmless and allowed. */
    void
    add(const std::string &name, const std::string &help,
        std::function<void()> handler)
    {
        _flags.push_back({name, "", help, nullptr,
                          std::move(handler), Repeat::Allowed});
    }

    /**
     * Accept positional (non-flag) arguments, described as
     * @p metavar in the usage. Without this, positionals are
     * rejected as unknown arguments.
     */
    void
    positionals(const std::string &metavar, const std::string &help)
    {
        _positionalMeta = metavar;
        _positionalHelp = help;
    }

    /**
     * Parse argv[@p begin..). `--help`/`-h` prints the usage and
     * returns ExitOk; anything invalid is reported on stderr and
     * returns ExitUsage. Collected positionals land in
     * positionalArgs().
     */
    ParseStatus
    parse(int argc, char **argv, int begin)
    {
        std::vector<bool> seen(_flags.size(), false);
        for (int i = begin; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                usage(stdout);
                return ParseStatus::ExitOk;
            }
            if (arg.empty() || arg[0] != '-') {
                if (_positionalMeta.empty())
                    return unknown(arg);
                _positionalArgs.push_back(arg);
                continue;
            }
            const Flag *flag = find(arg);
            if (!flag)
                return unknown(arg);
            size_t slot = static_cast<size_t>(flag - _flags.data());
            if (flag->repeat == Repeat::Once && seen[slot]) {
                std::fprintf(stderr,
                             "%s: %s given more than once\n",
                             context().c_str(), arg.c_str());
                return ParseStatus::ExitUsage;
            }
            seen[slot] = true;
            if (flag->onSwitch) {
                flag->onSwitch();
                continue;
            }
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             context().c_str(), arg.c_str());
                return ParseStatus::ExitUsage;
            }
            std::string value = argv[++i];
            if (!flag->onValue(value)) {
                std::fprintf(stderr,
                             "%s: invalid value '%s' for %s\n",
                             context().c_str(), value.c_str(),
                             arg.c_str());
                return ParseStatus::ExitUsage;
            }
        }
        return ParseStatus::Ok;
    }

    const std::vector<std::string> &
    positionalArgs() const
    {
        return _positionalArgs;
    }

    /** The auto-generated per-subcommand usage text. */
    void
    usage(FILE *out) const
    {
        std::fprintf(out, "usage: %s%s%s [options]%s%s\n",
                     _prog.c_str(), _subcommand.empty() ? "" : " ",
                     _subcommand.c_str(),
                     _positionalMeta.empty() ? "" : " ",
                     _positionalMeta.c_str());
        std::fprintf(out, "\n%s\n\n", _summary.c_str());
        if (!_positionalMeta.empty()) {
            printEntry(out, _positionalMeta, _positionalHelp);
        }
        for (const Flag &f : _flags) {
            std::string head = f.name;
            if (!f.metavar.empty())
                head += " " + f.metavar;
            printEntry(out, head, f.help);
        }
    }

  private:
    struct Flag
    {
        std::string name;
        std::string metavar;
        std::string help;
        std::function<bool(const std::string &)> onValue;
        std::function<void()> onSwitch;
        Repeat repeat = Repeat::Once;
    };

    std::string
    context() const
    {
        return _subcommand.empty() ? _prog
                                   : _prog + " " + _subcommand;
    }

    const Flag *
    find(const std::string &name) const
    {
        for (const Flag &f : _flags)
            if (f.name == name)
                return &f;
        return nullptr;
    }

    ParseStatus
    unknown(const std::string &arg) const
    {
        std::fprintf(stderr, "%s: unknown %s '%s'\n",
                     context().c_str(),
                     arg.empty() || arg[0] != '-' ? "argument"
                                                  : "option",
                     arg.c_str());
        std::fprintf(stderr, "run '%s%s%s --help' for usage\n",
                     _prog.c_str(), _subcommand.empty() ? "" : " ",
                     _subcommand.c_str());
        return ParseStatus::ExitUsage;
    }

    /** "  --flag VALUE     first help line" + indented follow-ons. */
    static void
    printEntry(FILE *out, const std::string &head,
               const std::string &help)
    {
        const int column = 19;
        std::fprintf(out, "  %-*s", column - 2, head.c_str());
        if (static_cast<int>(head.size()) > column - 3)
            std::fprintf(out, "\n%*s", column, "");
        size_t start = 0;
        bool first = true;
        while (start <= help.size()) {
            size_t nl = help.find('\n', start);
            std::string line =
                help.substr(start, nl == std::string::npos
                                       ? std::string::npos
                                       : nl - start);
            if (first) {
                std::fprintf(out, "%s\n", line.c_str());
                first = false;
            } else {
                std::fprintf(out, "%*s%s\n", column, "",
                             line.c_str());
            }
            if (nl == std::string::npos)
                break;
            start = nl + 1;
        }
    }

    std::string _prog;
    std::string _subcommand;
    std::string _summary;
    std::string _positionalMeta;
    std::string _positionalHelp;
    std::vector<Flag> _flags;
    std::vector<std::string> _positionalArgs;
};

} // namespace cli
} // namespace chex

#endif // CHEX_TOOLS_FLAG_PARSER_HH

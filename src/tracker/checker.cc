#include "checker.hh"

#include "base/logging.hh"

namespace chex
{

HardwareChecker::HardwareChecker(const CapabilityTable &caps_in,
                                 RuleDatabase &rules_in,
                                 const CheckerConfig &cfg_in)
    : caps(caps_in), rules(rules_in), cfg(cfg_in)
{
}

bool
HardwareChecker::observe(const StaticUop &uop, Pid src1_pid,
                         Pid src2_pid, Pid predicted_dst,
                         uint64_t result_value)
{
    ++numValidations;

    // Exhaustive search: does the result value point into any block
    // we track (live or freed)?
    Pid actual = caps.pidForAddress(result_value);

    // The wild tag is a deliberate over-approximation, not an error:
    // the exhaustive search cannot confirm it, so skip validation.
    if (predicted_dst == WildPid)
        return true;

    if (predicted_dst == actual)
        return true;

    ++numMismatches;

    // Candidate-action inference: which propagation action would
    // have produced the observed PID?
    RuleAction candidates[] = {
        RuleAction::CopySrc1,
        RuleAction::CopySrc2,
        RuleAction::CopyNonZero,
        RuleAction::Clear,
    };
    RuleAction explaining = RuleAction::Clear;
    bool found = false;
    for (RuleAction action : candidates) {
        Pid produced = NoPid;
        switch (action) {
          case RuleAction::CopySrc1:
            produced = src1_pid;
            break;
          case RuleAction::CopySrc2:
            produced = src2_pid;
            break;
          case RuleAction::CopyNonZero:
            produced = src1_pid != NoPid ? src1_pid : src2_pid;
            break;
          default:
            produced = NoPid;
            break;
        }
        if (produced == actual) {
            explaining = action;
            found = true;
            break;
        }
    }
    if (!found) {
        // Nothing explains it: the paper dumps the offending
        // instruction and requests manual rule-database updates.
        ++numUnexplained;
        return false;
    }

    RuleKey key = ruleKeyFor(uop);
    VoteRecord &record = voteRecords[key];
    if (record.installedAlready)
        return false;
    ++record.votes[explaining];
    ++record.total;
    if (record.example.empty())
        record.example = uop.toString();

    if (record.total >= cfg.installThreshold) {
        // Install the winning action if it is sufficiently dominant.
        RuleAction best = RuleAction::Clear;
        uint64_t best_votes = 0;
        for (const auto &[action, count] : record.votes) {
            if (count > best_votes) {
                best = action;
                best_votes = count;
            }
        }
        if (static_cast<double>(best_votes) / record.total >=
            cfg.consistency) {
            TrackRule rule;
            rule.key = key;
            rule.action = best;
            rule.example = record.example;
            rule.codeExample = "(checker-constructed)";
            rule.expertSeeded = false;
            rules.install(rule);
            installed.push_back({key, best, best_votes, record.example});
            record.installedAlready = true;
        }
    }
    return false;
}

} // namespace chex

/**
 * @file
 * Speculative register PID tags (Section V-D): each architectural
 * register carries (1) the finalized PID propagated by the last
 * committed instruction and (2) a vector of transient PIDs written
 * by in-flight instructions, ordered by sequence number. Reads
 * return the youngest transient tag (the fetch stage runs ahead of
 * the pipe); squashes discard all transient tags younger than the
 * offending instruction; commits fold tags into the finalized field.
 */

#ifndef CHEX_TRACKER_REG_TAGS_HH
#define CHEX_TRACKER_REG_TAGS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "base/json.hh"
#include "cap/capability.hh"
#include "isa/regs.hh"

namespace chex
{

/** The per-register committed + transient PID tag file. */
class RegTagFile
{
  public:
    RegTagFile();

    /** Youngest (speculative) PID tag of @p reg. */
    Pid current(RegId reg) const;

    /** Finalized (committed) PID tag of @p reg. */
    Pid committed(RegId reg) const;

    /** Record a transient write of @p pid to @p reg at @p seq. */
    void write(RegId reg, Pid pid, uint64_t seq);

    /** Commit every transient write with sequence number <= @p seq. */
    void commitUpTo(uint64_t seq);

    /** Discard every transient write with sequence number > @p seq. */
    void squashAfter(uint64_t seq);

    /** Total transient entries currently held (for tests). */
    size_t transientCount() const;

    /** Reset to all-zero tags. */
    void clear();

    /** @{ @name Snapshot serialization (chex-snapshot-v1) */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    struct TransientTag
    {
        uint64_t seq;
        Pid pid;
    };
    struct RegTag
    {
        Pid finalized = NoPid;
        std::vector<TransientTag> transients; // ascending seq
    };

    RegTag tags[NumArchRegs];

    // Bit r set iff tags[r].transients is nonempty. commitUpTo()
    // runs once per micro-op and almost every register has no
    // in-flight writes, so the walk visits only set bits instead of
    // scanning all NumArchRegs vectors (NumArchRegs <= 64 by the
    // static_assert in regs.hh usage here).
    uint64_t nonEmpty = 0;

    static_assert(NumArchRegs <= 64, "nonEmpty bitmask too narrow");
};

} // namespace chex

#endif // CHEX_TRACKER_REG_TAGS_HH

#include "rules.hh"

#include "base/logging.hh"

namespace chex
{

const char *
ruleActionName(RuleAction action)
{
    switch (action) {
      case RuleAction::Clear: return "PID(result) <- PID(0)";
      case RuleAction::CopySrc1: return "PID(dst) <- PID(src1)";
      case RuleAction::CopySrc2: return "PID(dst) <- PID(src2)";
      case RuleAction::CopyNonZero:
        return "if one source PID is zero, copy the other";
      case RuleAction::LoadAlias: return "PID(dst) <- PID(Mem[EA])";
      case RuleAction::StoreAlias: return "PID(Mem[EA]) <- PID(src)";
      case RuleAction::AssignWild: return "PID(dst) <- PID(-1)";
      default: return "???";
    }
}

RuleKey
ruleKeyFor(const StaticUop &uop)
{
    // LEA carries a memory *operand* (whose base the rule follows)
    // without performing an access; it classifies as Mem form.
    bool mem_form = uop.isMemRef() || uop.type == UopType::Lea;
    OperandForm form = OperandForm::RegReg;
    if (mem_form)
        form = OperandForm::Mem;
    else if (uop.useImm)
        form = OperandForm::RegImm;
    return {uop.type, mem_form ? AluOp::None : uop.op, form};
}

void
RuleDatabase::install(const TrackRule &rule)
{
    byKey[rule.key] = rule;
    actions[flatIndex(rule.key)] = rule.action;
}

RuleAction
RuleDatabase::lookup(const StaticUop &uop) const
{
    return actions[flatIndex(ruleKeyFor(uop))];
}

bool
RuleDatabase::has(const RuleKey &key) const
{
    return byKey.count(key) != 0;
}

Pid
RuleDatabase::propagate(const StaticUop &uop, Pid src1_pid,
                        Pid src2_pid, RuleAction *action_out) const
{
    RuleAction action = lookup(uop);
    if (action_out)
        *action_out = action;
    switch (action) {
      case RuleAction::Clear:
        return NoPid;
      case RuleAction::CopySrc1:
        return src1_pid;
      case RuleAction::CopySrc2:
        return src2_pid;
      case RuleAction::CopyNonZero:
        if (src1_pid == NoPid)
            return src2_pid;
        if (src2_pid == NoPid)
            return src1_pid;
        return src1_pid; // both tagged: favour the first source
      case RuleAction::AssignWild: {
        // Synthetic (decoder-internal) immediates never create wild
        // pointers. Of the programmer-visible load-immediates, only
        // values that could plausibly be virtual addresses are
        // tagged — small constants (loop counts, masks) stay
        // untracked so that storing and reloading ordinary integers
        // does not pollute the alias table with PID(-1) entries.
        if (uop.synthetic)
            return NoPid;
        auto imm = static_cast<uint64_t>(uop.imm);
        bool address_like = imm >= 0x10000 && imm < (1ull << 48);
        return address_like ? WildPid : NoPid;
      }
      case RuleAction::LoadAlias:
      case RuleAction::StoreAlias:
        // Resolved by the alias machinery; no register-side result
        // computable here.
        return NoPid;
      default:
        chex_panic("unknown rule action");
    }
}

std::vector<TrackRule>
RuleDatabase::rules() const
{
    std::vector<TrackRule> out;
    out.reserve(byKey.size());
    for (const auto &[key, rule] : byKey)
        out.push_back(rule);
    return out;
}

RuleDatabase
RuleDatabase::tableI()
{
    RuleDatabase db;
    auto add = [&](UopType type, AluOp op, OperandForm form,
                   RuleAction action, const char *example,
                   const char *code) {
        db.install({{type, op, form}, action, example, code, true});
    };

    // MOV Reg-Reg: PID(rcx) <- PID(rbx)
    add(UopType::IntAlu, AluOp::Mov, OperandForm::RegReg,
        RuleAction::CopySrc1, "mov %rcx, %rbx", "ptr1 = ptr2;");
    // AND Reg-Reg: copy the non-zero-PID source
    add(UopType::IntAlu, AluOp::And, OperandForm::RegReg,
        RuleAction::CopyNonZero, "and %rcx, %rbx, %rax",
        "ptr2 = ptr1 & mask;");
    // AND Reg-Imm: PID(rcx) <- PID(rbx)
    add(UopType::IntAlu, AluOp::And, OperandForm::RegImm,
        RuleAction::CopySrc1, "andi %rcx, %rbx, $imm",
        "ptr2 = ptr1 & 0xffff0000;");
    // LEA: PID(rcx) <- PID(rbx) (base register)
    add(UopType::Lea, AluOp::None, OperandForm::Mem,
        RuleAction::CopySrc1, "lea %rcx, (%rbx, %idx, scl)",
        "ptr = &a[50];");
    // ADD Reg-Reg: copy the non-zero-PID source
    add(UopType::IntAlu, AluOp::Add, OperandForm::RegReg,
        RuleAction::CopyNonZero, "add %rcx, %rbx, %rax",
        "ptr2 = ptr1 + const;");
    // ADD Reg-Imm
    add(UopType::IntAlu, AluOp::Add, OperandForm::RegImm,
        RuleAction::CopySrc1, "addi %rcx, %rbx, $imm",
        "ptr2 = ptr1 + 4;");
    // SUB Reg-Reg: always the first source (the minuend)
    add(UopType::IntAlu, AluOp::Sub, OperandForm::RegReg,
        RuleAction::CopySrc1, "sub %rcx, %rbx, %rax",
        "ptr2 = ptr1 - const;");
    // SUB Reg-Imm
    add(UopType::IntAlu, AluOp::Sub, OperandForm::RegImm,
        RuleAction::CopySrc1, "subi %rcx, %rbx, $imm",
        "ptr2 = ptr1 - 4;");
    // LD Reg-Mem: PID(rcx) <- PID(Mem[EA])
    add(UopType::Load, AluOp::None, OperandForm::Mem,
        RuleAction::LoadAlias, "ldq %rcx, [EA]",
        "int *ptr2 = ptr1[100];");
    // ST Reg-Mem: PID(Mem[EA]) <- PID(rcx)
    add(UopType::Store, AluOp::None, OperandForm::Mem,
        RuleAction::StoreAlias, "stq %rcx, [EA]", "*ptr1 = ptr2;");
    // MOVI Reg-Imm: PID(rax) <- PID(-1)
    add(UopType::LoadImm, AluOp::Mov, OperandForm::RegImm,
        RuleAction::AssignWild, "limm %rax, $imm",
        "int *p = (int *)0x7fff1000;");
    return db;
}

} // namespace chex

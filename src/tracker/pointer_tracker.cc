#include "pointer_tracker.hh"

#include "base/logging.hh"

namespace chex
{

SpeculativePointerTracker::SpeculativePointerTracker(
    RuleDatabase rules_in, AliasTable &aliases_in,
    const AliasPredictorConfig &pred_cfg,
    const AliasCacheConfig &cache_cfg)
    : rules(std::move(rules_in)),
      pred(pred_cfg),
      cache("aliasCache", cache_cfg.sets, cache_cfg.ways,
            cache_cfg.victimEntries),
      aliases(aliases_in),
      statsGroup("tracker"),
      statLoads(statsGroup.addScalar("loads", "load micro-ops seen")),
      statStores(statsGroup.addScalar("stores", "store micro-ops seen")),
      statTaggedDerefs(statsGroup.addScalar(
          "taggedDerefs", "memory micro-ops via tagged base registers")),
      statSpills(statsGroup.addScalar(
          "pointerSpills", "stores that spilled a tagged pointer")),
      statReloads(statsGroup.addScalar(
          "pointerReloads", "loads that reloaded a spilled pointer")),
      statAliasKills(statsGroup.addScalar(
          "aliasKills", "alias entries overwritten by data stores")),
      statPageFilterSkips(statsGroup.addScalar(
          "pageFilterSkips",
          "alias lookups skipped by the TLB alias-hosting bit")),
      statRemoteInvalidations(statsGroup.addScalar(
          "remoteInvalidations",
          "cross-core alias-cache invalidations received"))
{
}

TrackResult
SpeculativePointerTracker::processUop(const StaticUop &uop, uint64_t pc,
                                      uint64_t seq, uint64_t eff_addr)
{
    TrackResult result;

    // Tags of the register sources.
    Pid src1_pid =
        uop.src1 != REG_NONE ? tags.current(uop.src1) : NoPid;
    Pid src2_pid =
        (uop.src2 != REG_NONE && !uop.useImm) ? tags.current(uop.src2)
                                              : NoPid;

    // Base-register tag for dereferences and LEA: the capability the
    // access occurs through.
    if (uop.hasMem && uop.mem.hasBase() && !uop.mem.ripRelative)
        result.basePid = tags.current(uop.mem.base);

    switch (uop.type) {
      case UopType::Load: {
        ++statLoads;
        result.taggedDeref = result.basePid != NoPid;
        if (result.taggedDeref)
            ++statTaggedDerefs;

        // Alias detection: predict at decode, verify at execute.
        AliasPrediction prediction = pred.predict(pc);
        Pid actual = NoPid;
        bool page_hosts = aliases.pageHostsAliases(eff_addr);
        if (page_hosts) {
            result.aliasLookupPerformed = true;
            result.aliasCacheHit = cache.access(eff_addr >> 6);
            if (result.aliasCacheHit) {
                actual = aliases.get(eff_addr);
            } else {
                AliasWalkResult walk = aliases.walk(eff_addr);
                actual = walk.pid;
                result.walkLevels = walk.levelsTouched;
                if (actual != NoPid)
                    cache.insert(eff_addr >> 6);
            }
        } else {
            ++statPageFilterSkips;
        }
        result.aliasOutcome = pred.update(pc, prediction, actual);
        if (actual != NoPid)
            ++statReloads;

        result.dstPid = actual;
        result.action = RuleAction::LoadAlias;
        if (uop.dst != REG_NONE)
            tags.write(uop.dst, actual, seq);
        break;
      }

      case UopType::Store: {
        ++statStores;
        result.taggedDeref = result.basePid != NoPid;
        if (result.taggedDeref)
            ++statTaggedDerefs;

        result.action = RuleAction::StoreAlias;
        if (src1_pid != NoPid) {
            // Spilled-pointer alias: the store buffer carries the PID
            // until commit; committed stores update the alias cache
            // and shadow table.
            result.spillsPointer = true;
            ++statSpills;
            aliases.set(eff_addr, src1_pid);
            cache.insert(eff_addr >> 6);
        } else if (aliases.pageHostsAliases(eff_addr) &&
                   aliases.get(eff_addr) != NoPid) {
            // A data value overwrote a spilled pointer: kill the
            // stale alias so later loads are not mis-tagged.
            aliases.set(eff_addr, NoPid);
            cache.invalidate(eff_addr >> 6);
            ++statAliasKills;
        }
        break;
      }

      case UopType::Lea: {
        // The LEA rule propagates the base register's tag.
        result.dstPid =
            rules.propagate(uop, result.basePid, NoPid, &result.action);
        if (uop.dst != REG_NONE)
            tags.write(uop.dst, result.dstPid, seq);
        break;
      }

      case UopType::IntAlu:
      case UopType::IntMult:
      case UopType::IntDiv:
      case UopType::FpAlu:
      case UopType::FpMult:
      case UopType::FpDiv:
      case UopType::LoadImm: {
        result.dstPid =
            rules.propagate(uop, src1_pid, src2_pid, &result.action);
        if (uop.dst != REG_NONE)
            tags.write(uop.dst, result.dstPid, seq);
        break;
      }

      case UopType::Branch:
      case UopType::Nop:
      default:
        break;
    }

    return result;
}

void
SpeculativePointerTracker::tagRegister(RegId reg, Pid pid, uint64_t seq)
{
    tags.write(reg, pid, seq);
}

void
SpeculativePointerTracker::invalidateAlias(uint64_t addr)
{
    cache.invalidate(addr >> 6);
    ++statRemoteInvalidations;
}

void
SpeculativePointerTracker::clearAliasRange(uint64_t addr, uint64_t len)
{
    if (len == 0)
        return;
    uint64_t first = addr & ~7ull;
    // addr + len can wrap past the top of the address space, which
    // would make a naive `a < addr + len` bound silently clear
    // nothing. Saturate the exclusive end, then iterate over word
    // addresses with an inclusive last-word bound so the increment
    // itself cannot wrap either.
    uint64_t end = len > ~addr ? ~0ull : addr + len;
    uint64_t last = (end - 1) & ~7ull;
    for (uint64_t a = first;; a += 8) {
        if (aliases.pageHostsAliases(a) && aliases.get(a) != NoPid) {
            aliases.set(a, NoPid);
            cache.invalidate(a >> 6);
        }
        if (a == last)
            break;
    }
}

void
SpeculativePointerTracker::seedAlias(uint64_t addr, Pid pid)
{
    aliases.set(addr, pid);
}

json::Value
SpeculativePointerTracker::saveState() const
{
    return json::Value::object()
        .set("tags", tags.saveState())
        .set("predictor", pred.saveState())
        .set("aliasCache", cache.saveState())
        .set("loads", statLoads.count())
        .set("stores", statStores.count())
        .set("taggedDerefs", statTaggedDerefs.count())
        .set("spills", statSpills.count())
        .set("reloads", statReloads.count())
        .set("aliasKills", statAliasKills.count())
        .set("pageFilterSkips", statPageFilterSkips.count())
        .set("remoteInvalidations", statRemoteInvalidations.count());
}

bool
SpeculativePointerTracker::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    const json::Value *jt = v.find("tags");
    const json::Value *jp = v.find("predictor");
    const json::Value *jc = v.find("aliasCache");
    if (!jt || !jp || !jc || !tags.restoreState(*jt) ||
        !pred.restoreState(*jp) || !cache.restoreState(*jc)) {
        return false;
    }
    statLoads = json::getUint(v, "loads", 0);
    statStores = json::getUint(v, "stores", 0);
    statTaggedDerefs = json::getUint(v, "taggedDerefs", 0);
    statSpills = json::getUint(v, "spills", 0);
    statReloads = json::getUint(v, "reloads", 0);
    statAliasKills = json::getUint(v, "aliasKills", 0);
    statPageFilterSkips = json::getUint(v, "pageFilterSkips", 0);
    statRemoteInvalidations =
        json::getUint(v, "remoteInvalidations", 0);
    return true;
}

} // namespace chex

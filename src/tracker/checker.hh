/**
 * @file
 * The hardware checker co-processor (Section V-A): validates the
 * rule-based tracker at run time by exhaustively resolving each
 * micro-op's result value against the shadow capability table, and
 * *constructs* pointer-tracking rules automatically — when a rule is
 * missing for a micro-op class whose results consistently resolve to
 * tracked blocks, the checker infers which propagation action
 * explains the observations and installs it after enough votes.
 */

#ifndef CHEX_TRACKER_CHECKER_HH
#define CHEX_TRACKER_CHECKER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cap/cap_table.hh"
#include "tracker/rules.hh"

namespace chex
{

/** A rule the checker constructed, with its supporting evidence. */
struct ConstructedRule
{
    RuleKey key;
    RuleAction action;
    uint64_t votes = 0;
    std::string exampleUop;
};

/** Configuration of the rule-construction vote machinery. */
struct CheckerConfig
{
    uint64_t installThreshold = 16;  // votes needed to install
    double consistency = 0.9;        // fraction that must agree
};

/** The hardware checker co-processor. */
class HardwareChecker
{
  public:
    HardwareChecker(const CapabilityTable &caps, RuleDatabase &rules,
                    const CheckerConfig &cfg = {});

    /**
     * Observe one executed register-writing micro-op.
     * @param uop The micro-op.
     * @param src1_pid PID tag of the first register source.
     * @param src2_pid PID tag of the second register source.
     * @param predicted_dst The tracker's predicted destination PID.
     * @param result_value The architected result value.
     * @return true if the prediction matched the exhaustive search.
     */
    bool observe(const StaticUop &uop, Pid src1_pid, Pid src2_pid,
                 Pid predicted_dst, uint64_t result_value);

    uint64_t validations() const { return numValidations; }
    uint64_t mismatches() const { return numMismatches; }
    double
    matchRate() const
    {
        return numValidations
                   ? 1.0 - static_cast<double>(numMismatches) /
                               numValidations
                   : 1.0;
    }

    /** Rules installed by this checker (for Table I regeneration). */
    const std::vector<ConstructedRule> &constructedRules() const
    {
        return installed;
    }

    /**
     * Mismatches that no candidate action could explain: the cases
     * the paper escalates to manual intervention.
     */
    uint64_t manualInterventions() const { return numUnexplained; }

  private:
    struct VoteRecord
    {
        std::map<RuleAction, uint64_t> votes;
        uint64_t total = 0;
        std::string example;
        bool installedAlready = false;
    };

    const CapabilityTable &caps;
    RuleDatabase &rules;
    CheckerConfig cfg;
    std::map<RuleKey, VoteRecord> voteRecords;
    std::vector<ConstructedRule> installed;

    uint64_t numValidations = 0;
    uint64_t numMismatches = 0;
    uint64_t numUnexplained = 0;
};

} // namespace chex

#endif // CHEX_TRACKER_CHECKER_HH

#include "alias_predictor.hh"

#include "base/logging.hh"
#include "isa/insts.hh"

namespace chex
{

const char *
aliasOutcomeName(AliasOutcome outcome)
{
    switch (outcome) {
      case AliasOutcome::CorrectNone: return "correct-none";
      case AliasOutcome::CorrectReload: return "correct-reload";
      case AliasOutcome::PNA0: return "PNA0";
      case AliasOutcome::P0AN: return "P0AN";
      case AliasOutcome::PMAN: return "PMAN";
      default: return "???";
    }
}

AliasPredictor::AliasPredictor(const AliasPredictorConfig &cfg_in)
    : cfg(cfg_in),
      table(cfg.entries),
      blacklist(cfg.blacklistEntries)
{
    chex_assert(cfg.entries > 0 && cfg.blacklistEntries > 0,
                "bad predictor geometry");
}

unsigned
AliasPredictor::indexOf(uint64_t pc, unsigned size) const
{
    uint64_t word = pc / InstSlotBytes;
    // Multiplicative hash spreads loop bodies across the table.
    return static_cast<unsigned>((word * 0x9e3779b97f4a7c15ull) >> 32) %
           size;
}

AliasPrediction
AliasPredictor::predict(uint64_t pc) const
{
    AliasPrediction pred;

    const BlacklistEntry &bl = blacklist[indexOf(pc, cfg.blacklistEntries)];
    if (bl.valid && bl.tag == pc && bl.confidence >= cfg.predictThreshold)
        return pred; // confidently a data load

    // A matching entry always predicts a reload: even when the
    // stride confidence is low, predicting *some* PID turns a
    // would-be P0AN pipeline flush into a cheap PMAN forward
    // (Figure 5e). Low confidence just falls back to the last PID.
    const Entry &e = table[indexOf(pc, cfg.entries)];
    if (e.valid && e.tag == pc) {
        pred.isReload = true;
        pred.pid = e.confidence >= cfg.predictThreshold
                       ? static_cast<Pid>(
                             static_cast<int64_t>(e.lastPid) + e.stride)
                       : e.lastPid;
    }
    return pred;
}

AliasOutcome
AliasPredictor::update(uint64_t pc, const AliasPrediction &predicted,
                       Pid actual)
{
    ++numPredictions;

    // Classify.
    AliasOutcome outcome;
    if (!predicted.isReload && actual == NoPid)
        outcome = AliasOutcome::CorrectNone;
    else if (predicted.isReload && predicted.pid == actual)
        outcome = AliasOutcome::CorrectReload;
    else if (predicted.isReload && actual == NoPid)
        outcome = AliasOutcome::PNA0;
    else if (!predicted.isReload)
        outcome = AliasOutcome::P0AN;
    else
        outcome = AliasOutcome::PMAN;

    if (outcome == AliasOutcome::CorrectNone ||
        outcome == AliasOutcome::CorrectReload)
        ++numCorrect;
    ++outcomes[static_cast<unsigned>(outcome)];

    // Train the blacklist.
    BlacklistEntry &bl = blacklist[indexOf(pc, cfg.blacklistEntries)];
    if (actual == NoPid) {
        if (bl.valid && bl.tag == pc) {
            if (bl.confidence < cfg.confidenceMax)
                ++bl.confidence;
        } else if (!bl.valid || bl.confidence == 0) {
            bl.valid = true;
            bl.tag = pc;
            bl.confidence = 1;
        } else {
            --bl.confidence; // aging of the resident entry
        }
    } else if (bl.valid && bl.tag == pc) {
        if (bl.confidence > 0)
            --bl.confidence;
        else
            bl.valid = false;
    }

    // Train the stride table.
    Entry &e = table[indexOf(pc, cfg.entries)];
    if (actual != NoPid) {
        if (!e.valid || e.tag != pc) {
            e.valid = true;
            e.tag = pc;
            e.lastPid = actual;
            e.stride = 0;
            e.confidence = 1;
        } else {
            int64_t observed = static_cast<int64_t>(actual) -
                               static_cast<int64_t>(e.lastPid);
            if (observed == e.stride) {
                if (e.confidence < cfg.confidenceMax)
                    ++e.confidence;
            } else if (e.confidence > 0) {
                --e.confidence;
            } else {
                e.stride = observed;
                e.confidence = 1;
            }
            e.lastPid = actual;
        }
    } else if (e.valid && e.tag == pc && e.confidence > 0) {
        --e.confidence;
    }

    return outcome;
}

double
AliasPredictor::reloadMispredictionRate() const
{
    uint64_t reload_events =
        outcomes[static_cast<unsigned>(AliasOutcome::CorrectReload)] +
        outcomes[static_cast<unsigned>(AliasOutcome::PNA0)] +
        outcomes[static_cast<unsigned>(AliasOutcome::P0AN)] +
        outcomes[static_cast<unsigned>(AliasOutcome::PMAN)];
    if (reload_events == 0)
        return 0.0;
    uint64_t wrong =
        outcomes[static_cast<unsigned>(AliasOutcome::PNA0)] +
        outcomes[static_cast<unsigned>(AliasOutcome::P0AN)] +
        outcomes[static_cast<unsigned>(AliasOutcome::PMAN)];
    return static_cast<double>(wrong) / reload_events;
}

void
AliasPredictor::clear()
{
    for (auto &e : table)
        e = Entry{};
    for (auto &bl : blacklist)
        bl = BlacklistEntry{};
    numPredictions = 0;
    numCorrect = 0;
    for (auto &o : outcomes)
        o = 0;
}

json::Value
AliasPredictor::saveState() const
{
    json::Value jtable = json::Value::array();
    for (size_t i = 0; i < table.size(); ++i) {
        const Entry &e = table[i];
        if (!e.valid)
            continue;
        jtable.push(json::Value::object()
                        .set("slot", static_cast<uint64_t>(i))
                        .set("tag", e.tag)
                        .set("lastPid", e.lastPid)
                        .set("stride", static_cast<uint64_t>(e.stride))
                        .set("confidence", e.confidence));
    }
    json::Value jbl = json::Value::array();
    for (size_t i = 0; i < blacklist.size(); ++i) {
        const BlacklistEntry &e = blacklist[i];
        if (!e.valid)
            continue;
        jbl.push(json::Value::object()
                     .set("slot", static_cast<uint64_t>(i))
                     .set("tag", e.tag)
                     .set("confidence", e.confidence));
    }
    json::Value jout = json::Value::array();
    for (uint64_t o : outcomes)
        jout.push(o);
    return json::Value::object()
        .set("entries", cfg.entries)
        .set("blacklistEntries", cfg.blacklistEntries)
        .set("table", std::move(jtable))
        .set("blacklist", std::move(jbl))
        .set("numPredictions", numPredictions)
        .set("numCorrect", numCorrect)
        .set("outcomes", std::move(jout));
}

bool
AliasPredictor::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    if (json::getUint(v, "entries", 0) != cfg.entries ||
        json::getUint(v, "blacklistEntries", 0) != cfg.blacklistEntries) {
        return false;
    }
    const json::Value *jtable = v.find("table");
    const json::Value *jbl = v.find("blacklist");
    const json::Value *jout = v.find("outcomes");
    if (!jtable || !jtable->isArray() || !jbl || !jbl->isArray() ||
        !jout || !jout->isArray() || jout->size() != 5) {
        return false;
    }
    clear();
    for (const json::Value &je : jtable->items()) {
        uint64_t slot = json::getUint(je, "slot", UINT64_MAX);
        uint64_t confidence = json::getUint(je, "confidence", 0);
        // A confidence past the saturating maximum or a slot already
        // restored cannot have come from saveState(); accepting
        // either would bake impossible predictor state (counters the
        // training logic can never reach, last-writer-wins entries)
        // into the restored machine.
        if (slot >= table.size() || confidence > cfg.confidenceMax ||
            table[slot].valid) {
            clear();
            return false;
        }
        Entry &e = table[slot];
        e.tag = json::getUint(je, "tag", 0);
        e.lastPid = static_cast<Pid>(json::getUint(je, "lastPid", 0));
        e.stride = static_cast<int64_t>(json::getUint(je, "stride", 0));
        e.confidence = static_cast<uint8_t>(confidence);
        e.valid = true;
    }
    for (const json::Value &je : jbl->items()) {
        uint64_t slot = json::getUint(je, "slot", UINT64_MAX);
        uint64_t confidence = json::getUint(je, "confidence", 0);
        if (slot >= blacklist.size() ||
            confidence > cfg.confidenceMax || blacklist[slot].valid) {
            clear();
            return false;
        }
        BlacklistEntry &e = blacklist[slot];
        e.tag = json::getUint(je, "tag", 0);
        e.confidence = static_cast<uint8_t>(confidence);
        e.valid = true;
    }
    numPredictions = json::getUint(v, "numPredictions", 0);
    numCorrect = json::getUint(v, "numCorrect", 0);
    for (size_t i = 0; i < 5; ++i)
        outcomes[i] = jout->at(i).asUint64();
    return true;
}

} // namespace chex

#include "alias_predictor.hh"

#include "base/logging.hh"
#include "isa/insts.hh"

namespace chex
{

const char *
aliasOutcomeName(AliasOutcome outcome)
{
    switch (outcome) {
      case AliasOutcome::CorrectNone: return "correct-none";
      case AliasOutcome::CorrectReload: return "correct-reload";
      case AliasOutcome::PNA0: return "PNA0";
      case AliasOutcome::P0AN: return "P0AN";
      case AliasOutcome::PMAN: return "PMAN";
      default: return "???";
    }
}

AliasPredictor::AliasPredictor(const AliasPredictorConfig &cfg_in)
    : cfg(cfg_in),
      table(cfg.entries),
      blacklist(cfg.blacklistEntries)
{
    chex_assert(cfg.entries > 0 && cfg.blacklistEntries > 0,
                "bad predictor geometry");
}

unsigned
AliasPredictor::indexOf(uint64_t pc, unsigned size) const
{
    uint64_t word = pc / InstSlotBytes;
    // Multiplicative hash spreads loop bodies across the table.
    return static_cast<unsigned>((word * 0x9e3779b97f4a7c15ull) >> 32) %
           size;
}

AliasPrediction
AliasPredictor::predict(uint64_t pc) const
{
    AliasPrediction pred;

    const BlacklistEntry &bl = blacklist[indexOf(pc, cfg.blacklistEntries)];
    if (bl.valid && bl.tag == pc && bl.confidence >= cfg.predictThreshold)
        return pred; // confidently a data load

    // A matching entry always predicts a reload: even when the
    // stride confidence is low, predicting *some* PID turns a
    // would-be P0AN pipeline flush into a cheap PMAN forward
    // (Figure 5e). Low confidence just falls back to the last PID.
    const Entry &e = table[indexOf(pc, cfg.entries)];
    if (e.valid && e.tag == pc) {
        pred.isReload = true;
        pred.pid = e.confidence >= cfg.predictThreshold
                       ? static_cast<Pid>(
                             static_cast<int64_t>(e.lastPid) + e.stride)
                       : e.lastPid;
    }
    return pred;
}

AliasOutcome
AliasPredictor::update(uint64_t pc, const AliasPrediction &predicted,
                       Pid actual)
{
    ++numPredictions;

    // Classify.
    AliasOutcome outcome;
    if (!predicted.isReload && actual == NoPid)
        outcome = AliasOutcome::CorrectNone;
    else if (predicted.isReload && predicted.pid == actual)
        outcome = AliasOutcome::CorrectReload;
    else if (predicted.isReload && actual == NoPid)
        outcome = AliasOutcome::PNA0;
    else if (!predicted.isReload)
        outcome = AliasOutcome::P0AN;
    else
        outcome = AliasOutcome::PMAN;

    if (outcome == AliasOutcome::CorrectNone ||
        outcome == AliasOutcome::CorrectReload)
        ++numCorrect;
    ++outcomes[static_cast<unsigned>(outcome)];

    // Train the blacklist.
    BlacklistEntry &bl = blacklist[indexOf(pc, cfg.blacklistEntries)];
    if (actual == NoPid) {
        if (bl.valid && bl.tag == pc) {
            if (bl.confidence < cfg.confidenceMax)
                ++bl.confidence;
        } else if (!bl.valid || bl.confidence == 0) {
            bl.valid = true;
            bl.tag = pc;
            bl.confidence = 1;
        } else {
            --bl.confidence; // aging of the resident entry
        }
    } else if (bl.valid && bl.tag == pc) {
        if (bl.confidence > 0)
            --bl.confidence;
        else
            bl.valid = false;
    }

    // Train the stride table.
    Entry &e = table[indexOf(pc, cfg.entries)];
    if (actual != NoPid) {
        if (!e.valid || e.tag != pc) {
            e.valid = true;
            e.tag = pc;
            e.lastPid = actual;
            e.stride = 0;
            e.confidence = 1;
        } else {
            int64_t observed = static_cast<int64_t>(actual) -
                               static_cast<int64_t>(e.lastPid);
            if (observed == e.stride) {
                if (e.confidence < cfg.confidenceMax)
                    ++e.confidence;
            } else if (e.confidence > 0) {
                --e.confidence;
            } else {
                e.stride = observed;
                e.confidence = 1;
            }
            e.lastPid = actual;
        }
    } else if (e.valid && e.tag == pc && e.confidence > 0) {
        --e.confidence;
    }

    return outcome;
}

double
AliasPredictor::reloadMispredictionRate() const
{
    uint64_t reload_events =
        outcomes[static_cast<unsigned>(AliasOutcome::CorrectReload)] +
        outcomes[static_cast<unsigned>(AliasOutcome::PNA0)] +
        outcomes[static_cast<unsigned>(AliasOutcome::P0AN)] +
        outcomes[static_cast<unsigned>(AliasOutcome::PMAN)];
    if (reload_events == 0)
        return 0.0;
    uint64_t wrong =
        outcomes[static_cast<unsigned>(AliasOutcome::PNA0)] +
        outcomes[static_cast<unsigned>(AliasOutcome::P0AN)] +
        outcomes[static_cast<unsigned>(AliasOutcome::PMAN)];
    return static_cast<double>(wrong) / reload_events;
}

void
AliasPredictor::clear()
{
    for (auto &e : table)
        e = Entry{};
    for (auto &bl : blacklist)
        bl = BlacklistEntry{};
    numPredictions = 0;
    numCorrect = 0;
    for (auto &o : outcomes)
        o = 0;
}

} // namespace chex

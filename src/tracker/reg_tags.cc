#include "reg_tags.hh"

#include <bit>

#include "base/logging.hh"

namespace chex
{

RegTagFile::RegTagFile() = default;

Pid
RegTagFile::current(RegId reg) const
{
    chex_assert(reg < NumArchRegs, "bad register");
    const RegTag &t = tags[reg];
    if (!t.transients.empty())
        return t.transients.back().pid;
    return t.finalized;
}

Pid
RegTagFile::committed(RegId reg) const
{
    chex_assert(reg < NumArchRegs, "bad register");
    return tags[reg].finalized;
}

void
RegTagFile::write(RegId reg, Pid pid, uint64_t seq)
{
    chex_assert(reg < NumArchRegs, "bad register");
    RegTag &t = tags[reg];
    chex_assert(t.transients.empty() || t.transients.back().seq < seq,
                "out-of-order transient write");
    t.transients.push_back({seq, pid});
    nonEmpty |= 1ull << reg;
}

void
RegTagFile::commitUpTo(uint64_t seq)
{
    for (uint64_t m = nonEmpty; m; m &= m - 1) {
        RegTag &t = tags[std::countr_zero(m)];
        size_t n = 0;
        while (n < t.transients.size() && t.transients[n].seq <= seq)
            ++n;
        if (n > 0) {
            t.finalized = t.transients[n - 1].pid;
            t.transients.erase(t.transients.begin(),
                               t.transients.begin() + n);
            if (t.transients.empty())
                nonEmpty &= ~(1ull << std::countr_zero(m));
        }
    }
}

void
RegTagFile::squashAfter(uint64_t seq)
{
    for (uint64_t m = nonEmpty; m; m &= m - 1) {
        RegTag &t = tags[std::countr_zero(m)];
        while (!t.transients.empty() && t.transients.back().seq > seq)
            t.transients.pop_back();
        if (t.transients.empty())
            nonEmpty &= ~(1ull << std::countr_zero(m));
    }
}

size_t
RegTagFile::transientCount() const
{
    size_t n = 0;
    for (uint64_t m = nonEmpty; m; m &= m - 1)
        n += tags[std::countr_zero(m)].transients.size();
    return n;
}

void
RegTagFile::clear()
{
    for (auto &t : tags) {
        t.finalized = NoPid;
        t.transients.clear();
    }
    nonEmpty = 0;
}

json::Value
RegTagFile::saveState() const
{
    json::Value out = json::Value::array();
    for (const RegTag &t : tags) {
        json::Value jt = json::Value::object();
        jt.set("finalized", t.finalized);
        json::Value jtr = json::Value::array();
        for (const TransientTag &tt : t.transients) {
            json::Value pair = json::Value::array();
            pair.push(tt.seq);
            pair.push(tt.pid);
            jtr.push(std::move(pair));
        }
        jt.set("transients", std::move(jtr));
        out.push(std::move(jt));
    }
    return out;
}

bool
RegTagFile::restoreState(const json::Value &v)
{
    if (!v.isArray() || v.size() != NumArchRegs)
        return false;
    nonEmpty = 0;
    for (size_t r = 0; r < NumArchRegs; ++r) {
        const json::Value &jt = v.at(r);
        if (!jt.isObject())
            return false;
        const json::Value *jtr = jt.find("transients");
        if (!jtr || !jtr->isArray())
            return false;
        RegTag &t = tags[r];
        t.finalized =
            static_cast<Pid>(json::getUint(jt, "finalized", NoPid));
        t.transients.clear();
        for (const json::Value &pair : jtr->items()) {
            if (!pair.isArray() || pair.size() != 2)
                return false;
            t.transients.push_back(
                {pair.at(size_t(0)).asUint64(),
                 static_cast<Pid>(pair.at(size_t(1)).asUint64())});
        }
        if (!t.transients.empty())
            nonEmpty |= 1ull << r;
    }
    return true;
}

} // namespace chex

#include "reg_tags.hh"

#include "base/logging.hh"

namespace chex
{

RegTagFile::RegTagFile() = default;

Pid
RegTagFile::current(RegId reg) const
{
    chex_assert(reg < NumArchRegs, "bad register");
    const RegTag &t = tags[reg];
    if (!t.transients.empty())
        return t.transients.back().pid;
    return t.finalized;
}

Pid
RegTagFile::committed(RegId reg) const
{
    chex_assert(reg < NumArchRegs, "bad register");
    return tags[reg].finalized;
}

void
RegTagFile::write(RegId reg, Pid pid, uint64_t seq)
{
    chex_assert(reg < NumArchRegs, "bad register");
    RegTag &t = tags[reg];
    chex_assert(t.transients.empty() || t.transients.back().seq < seq,
                "out-of-order transient write");
    t.transients.push_back({seq, pid});
}

void
RegTagFile::commitUpTo(uint64_t seq)
{
    for (auto &t : tags) {
        size_t n = 0;
        while (n < t.transients.size() && t.transients[n].seq <= seq)
            ++n;
        if (n > 0) {
            t.finalized = t.transients[n - 1].pid;
            t.transients.erase(t.transients.begin(),
                               t.transients.begin() + n);
        }
    }
}

void
RegTagFile::squashAfter(uint64_t seq)
{
    for (auto &t : tags) {
        while (!t.transients.empty() && t.transients.back().seq > seq)
            t.transients.pop_back();
    }
}

size_t
RegTagFile::transientCount() const
{
    size_t n = 0;
    for (const auto &t : tags)
        n += t.transients.size();
    return n;
}

void
RegTagFile::clear()
{
    for (auto &t : tags) {
        t.finalized = NoPid;
        t.transients.clear();
    }
}

} // namespace chex

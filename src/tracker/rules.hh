/**
 * @file
 * The pointer-tracking rule database (Table I): a small configurable
 * set of peephole rules, keyed by micro-op opcode and addressing
 * mode, that decide how PIDs propagate from a micro-op's sources to
 * its destination. The database ships with the expert-seeded rules
 * of Table I and can be extended at run time by the hardware checker
 * co-processor (automatic rule construction, Section V-A).
 */

#ifndef CHEX_TRACKER_RULES_HH
#define CHEX_TRACKER_RULES_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cap/capability.hh"
#include "isa/uops.hh"

namespace chex
{

/** Operand form a rule matches on. */
enum class OperandForm : uint8_t
{
    RegReg,
    RegImm,
    Mem,     // load/store
};

/** How a matched rule propagates PIDs. */
enum class RuleAction : uint8_t
{
    Clear,        // PID(result) <- 0 (the default for unmatched ops)
    CopySrc1,     // PID(dst) <- PID(src1)
    CopySrc2,     // PID(dst) <- PID(src2)
    CopyNonZero,  // if exactly one source has a PID, copy it (ADD/AND)
    LoadAlias,    // PID(dst) <- PID(Mem[EA])   (rule LD)
    StoreAlias,   // PID(Mem[EA]) <- PID(src)   (rule ST)
    AssignWild,   // PID(dst) <- PID(-1)        (rule MOVI)
};

/** Printable action description. */
const char *ruleActionName(RuleAction action);

/** Lookup key: micro-op class + ALU sub-op + operand form. */
struct RuleKey
{
    UopType type;
    AluOp op;
    OperandForm form;

    auto operator<=>(const RuleKey &) const = default;
};

/** One rule with its Table-I-style documentation fields. */
struct TrackRule
{
    RuleKey key;
    RuleAction action;
    std::string example;      // micro-op example text
    std::string codeExample;  // C-level code example
    bool expertSeeded = true; // false if checker-constructed
};

/** Classify a micro-op into a rule key. */
RuleKey ruleKeyFor(const StaticUop &uop);

/** The configurable rule database. */
class RuleDatabase
{
  public:
    /** Empty database: every op falls through to Clear. */
    RuleDatabase() = default;

    /** The expert-seeded Table I database. */
    static RuleDatabase tableI();

    /** Install (or replace) a rule. */
    void install(const TrackRule &rule);

    /** Action for @p uop (Clear when no rule matches). */
    RuleAction lookup(const StaticUop &uop) const;

    /** True if a rule exists for @p key. */
    bool has(const RuleKey &key) const;

    /**
     * Apply the matched rule to compute the destination PID from the
     * source PIDs. Mem actions are resolved by the caller (alias
     * machinery); this returns the register-side result and reports
     * the action taken via @p action_out.
     */
    Pid propagate(const StaticUop &uop, Pid src1_pid, Pid src2_pid,
                  RuleAction *action_out = nullptr) const;

    /** All installed rules, in deterministic order. */
    std::vector<TrackRule> rules() const;

    size_t size() const { return byKey.size(); }

  private:
    // Key-space extents for the dense action table. The tracker
    // calls lookup() on every ALU/LEA micro-op, so the hot path
    // indexes a flat array instead of walking the rule map; byKey
    // remains the source of truth for documentation fields and
    // deterministic enumeration.
    static constexpr size_t NumUopTypes =
        static_cast<size_t>(UopType::NUM_TYPES);
    static constexpr size_t NumAluOps =
        static_cast<size_t>(AluOp::FCvt) + 1;
    static constexpr size_t NumForms = 3; // OperandForm values

    static size_t
    flatIndex(const RuleKey &key)
    {
        return (static_cast<size_t>(key.type) * NumAluOps +
                static_cast<size_t>(key.op)) *
                   NumForms +
               static_cast<size_t>(key.form);
    }

    std::map<RuleKey, TrackRule> byKey;
    std::array<RuleAction, NumUopTypes * NumAluOps * NumForms>
        actions{}; // zero-init == RuleAction::Clear
};

} // namespace chex

#endif // CHEX_TRACKER_RULES_HH

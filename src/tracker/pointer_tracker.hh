/**
 * @file
 * The speculative pointer tracker (Section V): the front-end unit
 * that propagates PIDs between registers via the rule database,
 * detects spilled-pointer aliases with the alias predictor + alias
 * cache + shadow alias table, and tells the microcode customization
 * unit which dereferences need capability checks.
 *
 * The simulator executes the correct path functionally in program
 * order (oracle execution), so the tracker is fed architecturally
 * correct effective addresses; prediction structures still operate
 * exactly as in hardware and their outcomes drive the timing model
 * (zero-idiom squashes for PNA0, pipeline flushes for P0AN, PID
 * forwarding for PMAN).
 */

#ifndef CHEX_TRACKER_POINTER_TRACKER_HH
#define CHEX_TRACKER_POINTER_TRACKER_HH

#include <cstdint>

#include "base/stats.hh"
#include "mem/alias_table.hh"
#include "mem/cache.hh"
#include "tracker/alias_predictor.hh"
#include "tracker/reg_tags.hh"
#include "tracker/rules.hh"

namespace chex
{

/** Alias-cache geometry (Section V-C defaults). */
struct AliasCacheConfig
{
    unsigned sets = 128; // 256 entries, 2-way
    unsigned ways = 2;
    unsigned victimEntries = 32;
};

/** What the tracker decided about one micro-op. */
struct TrackResult
{
    /** PID of the dereference base register (memory micro-ops). */
    Pid basePid = NoPid;
    /** True when a load/store dereferences a tagged base. */
    bool taggedDeref = false;
    /** PID written to the destination register, if any. */
    Pid dstPid = NoPid;
    /** Rule that fired. */
    RuleAction action = RuleAction::Clear;

    /** @{ @name Load-only alias-detection outputs */
    AliasOutcome aliasOutcome = AliasOutcome::CorrectNone;
    bool aliasLookupPerformed = false; // page filter let it through
    bool aliasCacheHit = false;
    unsigned walkLevels = 0;           // table-walk accesses on miss
    /** @} */

    /** True when a store spilled a tagged pointer to memory. */
    bool spillsPointer = false;
};

/** The speculative pointer tracker. */
class SpeculativePointerTracker
{
  public:
    SpeculativePointerTracker(RuleDatabase rules, AliasTable &aliases,
                              const AliasPredictorConfig &pred_cfg = {},
                              const AliasCacheConfig &cache_cfg = {});

    /**
     * Process one decoded micro-op in program order.
     * @param uop The cracked micro-op.
     * @param pc Address of the parent macro-instruction.
     * @param seq Global micro-op sequence number.
     * @param eff_addr Architected effective address (memory ops).
     */
    TrackResult processUop(const StaticUop &uop, uint64_t pc,
                           uint64_t seq, uint64_t eff_addr);

    /** Directly tag a register (capGen.End tags %rax, etc.). */
    void tagRegister(RegId reg, Pid pid, uint64_t seq);

    /** Current speculative tag of a register. */
    Pid regPid(RegId reg) const { return tags.current(reg); }

    /** Commit/squash plumbing (Section V-D). */
    void commitUpTo(uint64_t seq) { tags.commitUpTo(seq); }
    void squashAfter(uint64_t seq) { tags.squashAfter(seq); }

    /**
     * Cross-core alias-cache invalidation for a remote store to a
     * spilled-pointer word (multithreaded coherence, Section V-C).
     */
    void invalidateAlias(uint64_t addr);

    /**
     * Clear alias entries in [addr, addr+len): used when runtime
     * routines (allocator metadata writes, memset/memcpy) overwrite
     * words that previously held spilled pointers.
     */
    void clearAliasRange(uint64_t addr, uint64_t len);

    /** Seed an alias entry (constant-pool slots for globals). */
    void seedAlias(uint64_t addr, Pid pid);

    AliasPredictor &predictor() { return pred; }
    const AliasPredictor &predictor() const { return pred; }
    VictimAugmentedCache &aliasCache() { return cache; }
    RuleDatabase &ruleDatabase() { return rules; }
    RegTagFile &regTags() { return tags; }
    AliasTable &aliasTable() { return aliases; }

    stats::StatGroup &statGroup() { return statsGroup; }

    /** @{ @name Counters the harness reads directly */
    uint64_t taggedDerefs() const { return statTaggedDerefs.count(); }
    uint64_t pointerSpills() const { return statSpills.count(); }
    uint64_t pointerReloads() const { return statReloads.count(); }
    uint64_t loadsSeen() const { return statLoads.count(); }
    /** @} */

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Covers the tag file, predictor, alias cache, and counters.
     * The rule database is config-derived (rebuilt by the System
     * constructor) and the shadow alias table is owned by the
     * System, which serializes it separately. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    RuleDatabase rules;
    RegTagFile tags;
    AliasPredictor pred;
    VictimAugmentedCache cache;
    AliasTable &aliases;

    stats::StatGroup statsGroup;
    stats::Scalar &statLoads;
    stats::Scalar &statStores;
    stats::Scalar &statTaggedDerefs;
    stats::Scalar &statSpills;
    stats::Scalar &statReloads;
    stats::Scalar &statAliasKills;
    stats::Scalar &statPageFilterSkips;
    stats::Scalar &statRemoteInvalidations;
};

} // namespace chex

#endif // CHEX_TRACKER_POINTER_TRACKER_HH

/**
 * @file
 * The pointer-alias (spilled-pointer reload) predictor of Figure 4:
 * a PC-indexed stride predictor over PIDs with 2-bit saturating
 * confidence counters, plus a blacklist of loads known to fetch data
 * values rather than spilled pointers. Exploits the temporal pointer
 * access patterns of Table II — constant, strided, batch, and
 * repeating PID sequences keyed by the *instruction* address.
 */

#ifndef CHEX_TRACKER_ALIAS_PREDICTOR_HH
#define CHEX_TRACKER_ALIAS_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "base/json.hh"
#include "cap/capability.hh"

namespace chex
{

/** Geometry of the alias predictor. */
struct AliasPredictorConfig
{
    unsigned entries = 512;          // main stride table
    unsigned blacklistEntries = 512; // non-reload filter
    uint8_t confidenceMax = 3;       // 2-bit counters
    uint8_t predictThreshold = 2;    // confidence needed to predict
};

/** The prediction issued at decode for one load. */
struct AliasPrediction
{
    bool isReload = false; // predicted to reload a spilled pointer
    Pid pid = NoPid;       // predicted PID when isReload
};

/** Misprediction classes of Section V-C / Figure 5. */
enum class AliasOutcome : uint8_t
{
    CorrectNone,   // predicted no reload, was no reload
    CorrectReload, // predicted right PID
    PNA0,          // predicted PID(N), actually untracked -> zero-idiom
    P0AN,          // missed a reload -> pipeline flush + re-inject
    PMAN,          // wrong PID -> forward the right one
};

/** Printable outcome name. */
const char *aliasOutcomeName(AliasOutcome outcome);

/** PC-indexed stride-over-PID predictor with blacklist. */
class AliasPredictor
{
  public:
    explicit AliasPredictor(const AliasPredictorConfig &cfg = {});

    /** Predict at decode for the load at @p pc. */
    AliasPrediction predict(uint64_t pc) const;

    /**
     * Train with the architecturally correct PID for the load at
     * @p pc (NoPid when the load fetched a non-pointer), and
     * classify the earlier prediction.
     */
    AliasOutcome update(uint64_t pc, const AliasPrediction &predicted,
                        Pid actual);

    /** @{ @name Statistics */
    uint64_t predictions() const { return numPredictions; }
    uint64_t correct() const { return numCorrect; }
    uint64_t mispredictions() const
    {
        return numPredictions - numCorrect;
    }
    double
    accuracy() const
    {
        return numPredictions
                   ? static_cast<double>(numCorrect) / numPredictions
                   : 1.0;
    }
    /**
     * Misprediction rate over *reload events* (loads whose actual or
     * predicted PID was nonzero), the denominator Figure 8 uses.
     */
    double reloadMispredictionRate() const;
    uint64_t outcomeCount(AliasOutcome outcome) const
    {
        return outcomes[static_cast<unsigned>(outcome)];
    }
    /** @} */

    void clear();

    const AliasPredictorConfig &config() const { return cfg; }

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Valid entries only, indexed; strides are emitted as their
     * two's-complement bit pattern so negative strides round-trip
     * exactly. Restore rejects a geometry mismatch. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    struct Entry
    {
        uint64_t tag = 0;
        Pid lastPid = NoPid;
        int64_t stride = 0;
        uint8_t confidence = 0;
        bool valid = false;
    };
    struct BlacklistEntry
    {
        uint64_t tag = 0;
        uint8_t confidence = 0;
        bool valid = false;
    };

    unsigned indexOf(uint64_t pc, unsigned size) const;

    AliasPredictorConfig cfg;
    std::vector<Entry> table;
    std::vector<BlacklistEntry> blacklist;

    uint64_t numPredictions = 0;
    uint64_t numCorrect = 0;
    uint64_t outcomes[5] = {};
};

} // namespace chex

#endif // CHEX_TRACKER_ALIAS_PREDICTOR_HH

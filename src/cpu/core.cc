#include "core.hh"

#include <algorithm>

#include "base/logging.hh"

namespace chex
{

Core::Core(const CoreConfig &cfg_in, MemoryHierarchy &hierarchy)
    : cfg(cfg_in),
      hier(hierarchy),
      bpred(cfg.bpred),
      issueCal(cfg.issueWidth),
      commitCal(cfg.commitWidth),
      intAlu(cfg.intAluUnits),
      intMult(cfg.intMultUnits),
      fpAlu(cfg.fpAluUnits),
      simd(cfg.simdUnits),
      loadPort(cfg.loadPorts),
      storePort(cfg.storePorts),
      capUnit(cfg.capUnits),
      rob(cfg.robEntries),
      iq(cfg.iqEntries),
      lq(cfg.lqEntries),
      sq(cfg.sqEntries),
      intRegWindow(cfg.intRegs),
      fpRegWindow(cfg.fpRegs)
{
}

unsigned
Core::uopLatency(const StaticUop &uop) const
{
    switch (uop.type) {
      case UopType::Nop: return 1;
      case UopType::IntAlu: return 1;
      case UopType::IntMult: return 3;
      case UopType::IntDiv: return 20;
      case UopType::FpAlu: return 4;
      case UopType::FpMult: return 4;
      case UopType::FpDiv: return 13;
      case UopType::Lea: return 1;
      case UopType::LoadImm: return 1;
      case UopType::Load: return 1;   // + cache latency
      case UopType::Store: return 1;
      case UopType::Branch: return 1;
      case UopType::CapGenBegin: return 2;
      case UopType::CapGenEnd: return 2;
      case UopType::CapCheck: return 1; // + capability-cache latency
      case UopType::CapFreeBegin: return 2;
      case UopType::CapFreeEnd: return 2;
      default: return 1;
    }
}

ResourceCalendar &
Core::fuFor(const StaticUop &uop)
{
    switch (uop.type) {
      case UopType::IntMult:
      case UopType::IntDiv:
        return intMult;
      case UopType::FpAlu:
        return fpAlu;
      case UopType::FpMult:
      case UopType::FpDiv:
        return simd;
      case UopType::Load:
        return loadPort;
      case UopType::Store:
        return storePort;
      case UopType::CapGenBegin:
      case UopType::CapGenEnd:
      case UopType::CapCheck:
      case UopType::CapFreeBegin:
      case UopType::CapFreeEnd:
        return capUnit;
      default:
        return intAlu;
    }
}

void
Core::beginMacro(uint64_t pc, DecodePath path,
                 const MacroBranchInfo &branch)
{
    ++numMacros;
    curPc = pc;
    curBranch = branch;
    branchUopComplete = 0;

    // Fetch bandwidth: fetchWidth macro-ops per cycle.
    if (fetchCycle < fetchAvail) {
        fetchCycle = fetchAvail;
        macrosThisCycle = 0;
    }
    if (macrosThisCycle >= cfg.fetchWidth) {
        ++fetchCycle;
        macrosThisCycle = 0;
    }
    ++macrosThisCycle;

    // Instruction-cache effects on fetch-line transitions.
    uint64_t line = pc / hier.config().lineBytes;
    if (line != lastFetchLine) {
        lastFetchLine = line;
        unsigned lat = hier.fetchAccess(pc);
        if (lat > hier.config().l1Latency) {
            fetchCycle += lat - hier.config().l1Latency;
            macrosThisCycle = 1;
        }
    }

    // Engaging the microcode sequencer stalls the simple decoders.
    if (path == DecodePath::Msrom) {
        fetchCycle += cfg.msromSwitchPenalty;
        macrosThisCycle = 1;
    }

    // Branch prediction happens at fetch.
    if (branch.isBranch) {
        curPrediction =
            bpred.predict(pc, branch.isCall, branch.isReturn,
                          branch.isUncondDirect, branch.fallthrough);
    }
}

uint64_t
Core::addUop(const UopTimingIn &in)
{
    const StaticUop &uop = *in.uop;
    ++numUops;

    uint64_t dispatch = fetchCycle + cfg.frontendDepth;
    dispatch = std::max(dispatch, rob.allocBound());
    dispatch = std::max(dispatch, iq.allocBound());
    bool is_load = uop.isLoad();
    bool is_store = uop.isStore();
    if (is_load)
        dispatch = std::max(dispatch, lq.allocBound());
    if (is_store)
        dispatch = std::max(dispatch, sq.allocBound());
    bool writes_int = uop.dst != REG_NONE && !isFpReg(uop.dst);
    bool writes_fp = uop.dst != REG_NONE && isFpReg(uop.dst);
    if (writes_int)
        dispatch = std::max(dispatch, intRegWindow.allocBound());
    if (writes_fp)
        dispatch = std::max(dispatch, fpRegWindow.allocBound());
    // Backpressure: when dispatch stalls on a full ROB/IQ/LQ/SQ or
    // exhausted physical registers, the front end stalls with it —
    // fetch cannot run further ahead of the machine than the
    // in-flight window allows.
    if (dispatch > fetchCycle + cfg.frontendDepth)
        fetchCycle = dispatch - cfg.frontendDepth;

    uint64_t complete;
    uint64_t issue = dispatch;
    if (in.zeroIdiom) {
        // Squashed at the instruction queue before dispatch to a
        // functional unit (x86 zero-idiom treatment of PNA0 checks).
        ++_zeroIdioms;
        complete = dispatch + 1;
    } else {
        // Operand readiness.
        uint64_t ready = dispatch + 1;
        auto need = [&](RegId r) {
            if (r != REG_NONE && r < NumArchRegs)
                ready = std::max(ready, regReady[r]);
        };
        need(uop.src1);
        if (!uop.useImm)
            need(uop.src2);
        if (uop.hasMem) {
            if (uop.mem.hasBase())
                need(uop.mem.base);
            if (uop.mem.hasIndex())
                need(uop.mem.index);
        }

        issue = issueCal.reserve(ready);
        issue = fuFor(uop).reserve(issue);

        unsigned lat = uopLatency(uop) + in.extraLatency;
        complete = issue + lat;

        if (is_load) {
            const uint64_t *fwd = storeForward.lookup(in.effAddr >> 3);
            if (fwd && *fwd + 256 > issue) {
                // Store-to-load forwarding out of the store queue.
                complete = std::max(issue + 2, *fwd + 1);
            } else {
                complete = issue + lat +
                           hier.dataAccess(in.effAddr, false) - 1;
            }
        } else if (is_store) {
            // Data is forwardable once the store executes; the cache
            // write is post-commit and charged for traffic only.
            storeForward.insert(in.effAddr >> 3, complete);
            if (storeForward.size() > 8192)
                storeForward.clear();
            hier.dataAccess(in.effAddr, true);
        }
    }

    if (uop.dst != REG_NONE && uop.dst < NumArchRegs)
        regReady[uop.dst] = complete;

    // In-order commit.
    uint64_t commit = commitCal.reserve(
        std::max(complete + 1, lastCommitCycle));
    lastCommitCycle = commit;
    maxCommitCycle = std::max(maxCommitCycle, commit);

    // Structure release bookkeeping.
    rob.push(commit);
    iq.push(in.zeroIdiom ? dispatch + 1 : issue + 1);
    if (is_load)
        lq.push(commit);
    if (is_store)
        sq.push(commit);
    if (writes_int)
        intRegWindow.push(commit);
    if (writes_fp)
        fpRegWindow.push(commit);

    if (uop.isBranch())
        branchUopComplete = complete;

    return complete;
}

void
Core::redirect(uint64_t resolve_cycle, uint64_t *squash_bucket)
{
    uint64_t new_avail = resolve_cycle + cfg.redirectPenalty;
    uint64_t frontier = std::max(fetchCycle, fetchAvail);
    if (new_avail > frontier) {
        *squash_bucket += new_avail - frontier;
        fetchAvail = new_avail;
    }
}

void
Core::endMacro(bool taken, uint64_t target)
{
    if (!curBranch.isBranch)
        return;

    bool mispredicted =
        curPrediction.taken != taken ||
        (taken && (!curPrediction.targetKnown ||
                   curPrediction.target != target));

    bpred.update(curPc, taken, target, curBranch.isConditional);

    if (mispredicted) {
        ++_branchMispredicts;
        redirect(branchUopComplete, &_squashBranch);
    } else if (taken) {
        // A correctly predicted taken branch still ends the current
        // fetch group.
        macrosThisCycle = cfg.fetchWidth;
    }
}

void
Core::chargeAliasFlush(uint64_t at_cycle)
{
    redirect(at_cycle, &_squashAlias);
}

void
Core::stallFetch(uint64_t cycles)
{
    uint64_t frontier = std::max(fetchCycle, fetchAvail);
    fetchAvail = frontier + cycles;
}

json::Value
Core::saveState() const
{
    auto cal = [](const ResourceCalendar &c) { return c.saveState(); };
    auto win = [](const OccupancyWindow &w) { return w.saveState(); };

    json::Value jready = json::Value::array();
    for (uint64_t r : regReady)
        jready.push(r);

    std::vector<std::pair<uint64_t, uint64_t>> fwd;
    fwd.reserve(storeForward.size());
    storeForward.forEach([&](uint64_t word, uint64_t ready) {
        fwd.emplace_back(word, ready);
    });
    std::sort(fwd.begin(), fwd.end());
    json::Value jfwd = json::Value::array();
    for (const auto &[word, ready] : fwd) {
        json::Value pair = json::Value::array();
        pair.push(word);
        pair.push(ready);
        jfwd.push(std::move(pair));
    }

    return json::Value::object()
        .set("bpred", bpred.saveState())
        .set("fetchCycle", fetchCycle)
        .set("fetchAvail", fetchAvail)
        .set("macrosThisCycle", macrosThisCycle)
        .set("lastFetchLine", lastFetchLine)
        .set("issueCal", cal(issueCal))
        .set("commitCal", cal(commitCal))
        .set("intAlu", cal(intAlu))
        .set("intMult", cal(intMult))
        .set("fpAlu", cal(fpAlu))
        .set("simd", cal(simd))
        .set("loadPort", cal(loadPort))
        .set("storePort", cal(storePort))
        .set("capUnit", cal(capUnit))
        .set("rob", win(rob))
        .set("iq", win(iq))
        .set("lq", win(lq))
        .set("sq", win(sq))
        .set("intRegWindow", win(intRegWindow))
        .set("fpRegWindow", win(fpRegWindow))
        .set("regReady", std::move(jready))
        .set("storeForward", std::move(jfwd))
        .set("curPc", curPc)
        .set("curBranch", json::Value::object()
                              .set("isBranch", curBranch.isBranch)
                              .set("isCall", curBranch.isCall)
                              .set("isReturn", curBranch.isReturn)
                              .set("isUncondDirect",
                                   curBranch.isUncondDirect)
                              .set("isConditional",
                                   curBranch.isConditional)
                              .set("isIndirect", curBranch.isIndirect)
                              .set("fallthrough", curBranch.fallthrough))
        .set("curPrediction",
             json::Value::object()
                 .set("taken", curPrediction.taken)
                 .set("target", curPrediction.target)
                 .set("targetKnown", curPrediction.targetKnown))
        .set("branchUopComplete", branchUopComplete)
        .set("lastCommitCycle", lastCommitCycle)
        .set("maxCommitCycle", maxCommitCycle)
        .set("numUops", numUops)
        .set("numMacros", numMacros)
        .set("squashBranch", _squashBranch)
        .set("squashAlias", _squashAlias)
        .set("branchMispredicts", _branchMispredicts)
        .set("zeroIdioms", _zeroIdioms);
}

bool
Core::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    const json::Value *jb = v.find("bpred");
    if (!jb || !bpred.restoreState(*jb))
        return false;

    struct CalSlot { const char *key; ResourceCalendar *cal; };
    struct WinSlot { const char *key; OccupancyWindow *win; };
    const CalSlot cals[] = {
        {"issueCal", &issueCal}, {"commitCal", &commitCal},
        {"intAlu", &intAlu},     {"intMult", &intMult},
        {"fpAlu", &fpAlu},       {"simd", &simd},
        {"loadPort", &loadPort}, {"storePort", &storePort},
        {"capUnit", &capUnit},
    };
    for (const CalSlot &slot : cals) {
        const json::Value *jc = v.find(slot.key);
        if (!jc || !slot.cal->restoreState(*jc))
            return false;
    }
    const WinSlot wins[] = {
        {"rob", &rob}, {"iq", &iq}, {"lq", &lq}, {"sq", &sq},
        {"intRegWindow", &intRegWindow}, {"fpRegWindow", &fpRegWindow},
    };
    for (const WinSlot &slot : wins) {
        const json::Value *jw = v.find(slot.key);
        if (!jw || !slot.win->restoreState(*jw))
            return false;
    }

    const json::Value *jready = v.find("regReady");
    if (!jready || !jready->isArray() || jready->size() != NumArchRegs)
        return false;
    for (size_t r = 0; r < NumArchRegs; ++r)
        regReady[r] = jready->at(r).asUint64();

    const json::Value *jfwd = v.find("storeForward");
    if (!jfwd || !jfwd->isArray())
        return false;
    storeForward.clear();
    for (const json::Value &pair : jfwd->items()) {
        if (!pair.isArray() || pair.size() != 2)
            return false;
        storeForward.insert(pair.at(size_t(0)).asUint64(),
                            pair.at(size_t(1)).asUint64());
    }

    fetchCycle = json::getUint(v, "fetchCycle", 0);
    fetchAvail = json::getUint(v, "fetchAvail", 0);
    macrosThisCycle =
        static_cast<unsigned>(json::getUint(v, "macrosThisCycle", 0));
    lastFetchLine = json::getUint(v, "lastFetchLine", ~0ull);
    curPc = json::getUint(v, "curPc", 0);
    if (const json::Value *jcb = v.find("curBranch")) {
        curBranch.isBranch = json::getBool(*jcb, "isBranch", false);
        curBranch.isCall = json::getBool(*jcb, "isCall", false);
        curBranch.isReturn = json::getBool(*jcb, "isReturn", false);
        curBranch.isUncondDirect =
            json::getBool(*jcb, "isUncondDirect", false);
        curBranch.isConditional =
            json::getBool(*jcb, "isConditional", false);
        curBranch.isIndirect = json::getBool(*jcb, "isIndirect", false);
        curBranch.fallthrough = json::getUint(*jcb, "fallthrough", 0);
    }
    if (const json::Value *jcp = v.find("curPrediction")) {
        curPrediction.taken = json::getBool(*jcp, "taken", false);
        curPrediction.target = json::getUint(*jcp, "target", 0);
        curPrediction.targetKnown =
            json::getBool(*jcp, "targetKnown", false);
    }
    branchUopComplete = json::getUint(v, "branchUopComplete", 0);
    lastCommitCycle = json::getUint(v, "lastCommitCycle", 0);
    maxCommitCycle = json::getUint(v, "maxCommitCycle", 0);
    numUops = json::getUint(v, "numUops", 0);
    numMacros = json::getUint(v, "numMacros", 0);
    _squashBranch = json::getUint(v, "squashBranch", 0);
    _squashAlias = json::getUint(v, "squashAlias", 0);
    _branchMispredicts = json::getUint(v, "branchMispredicts", 0);
    _zeroIdioms = json::getUint(v, "zeroIdioms", 0);
    return true;
}

} // namespace chex

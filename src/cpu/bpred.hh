/**
 * @file
 * Branch prediction for the simulated core (Table III: LTAGE
 * direction predictor, 4096-entry BTB, 64-entry RAS). The direction
 * predictor is a TAGE-style design: a bimodal base table plus tagged
 * tables indexed by geometrically increasing global-history lengths;
 * the longest-history hit provides the prediction, with a
 * usefulness-based allocation policy on mispredictions.
 */

#ifndef CHEX_CPU_BPRED_HH
#define CHEX_CPU_BPRED_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/json.hh"

namespace chex
{

/** Geometry of the TAGE predictor + BTB + RAS. */
struct BranchPredictorConfig
{
    unsigned bimodalEntries = 8192;
    unsigned taggedTables = 4;
    unsigned taggedEntries = 1024;     // per table
    unsigned historyLengths[4] = {8, 16, 32, 64};
    unsigned tagBits = 10;
    unsigned btbEntries = 4096;
    unsigned rasEntries = 64;
};

/** A combined direction + target prediction. */
struct BranchPrediction
{
    bool taken = false;
    uint64_t target = 0;
    bool targetKnown = false; // BTB/RAS produced a target
};

/** TAGE-style branch predictor with BTB and return-address stack. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &cfg = {});

    /**
     * Predict the branch at @p pc.
     * @param is_call Push the return address on the RAS.
     * @param is_return Pop the target from the RAS.
     * @param is_unconditional Direct unconditional (always taken).
     * @param fallthrough Address of the next sequential instruction
     *        (pushed on calls).
     */
    BranchPrediction predict(uint64_t pc, bool is_call, bool is_return,
                             bool is_unconditional,
                             uint64_t fallthrough);

    /** Train with the resolved outcome. */
    void update(uint64_t pc, bool taken, uint64_t target,
                bool is_conditional);

    uint64_t lookups() const { return numLookups; }
    uint64_t directionMispredicts() const { return numDirWrong; }
    uint64_t targetMispredicts() const { return numTargetWrong; }

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * The bimodal table goes in whole (base64); tagged/BTB entries
     * sparsely (valid only — invalid slots are never read thanks to
     * the allocation policy's short-circuit); the RAS fully (it is
     * circular, every cell is reachable). Restore rejects a
     * geometry mismatch. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    struct TaggedEntry
    {
        uint16_t tag = 0;
        int8_t ctr = 0;   // signed 3-bit counter, taken when >= 0
        uint8_t useful = 0;
        bool valid = false;
    };
    struct BtbEntry
    {
        uint64_t tag = 0;
        uint64_t target = 0;
        bool valid = false;
    };

    unsigned bimodalIndex(uint64_t pc) const;
    unsigned taggedIndex(uint64_t pc, unsigned table) const;
    uint16_t taggedTag(uint64_t pc, unsigned table) const;
    uint64_t foldedHistory(unsigned length, unsigned bits) const;

    /** Direction prediction with provider-table bookkeeping. */
    bool predictDirection(uint64_t pc, int *provider,
                          unsigned *provider_index) const;

    BranchPredictorConfig cfg;
    std::vector<uint8_t> bimodal; // 2-bit counters
    std::vector<std::vector<TaggedEntry>> tagged;
    std::vector<BtbEntry> btb;
    std::vector<uint64_t> ras;
    size_t rasTop = 0;

    uint64_t history = 0; // global history (youngest bit 0)

    /**
     * Per-table folded-history memo. predict() and update() both
     * fold the global history for every tagged table (index fold
     * plus two tag folds), but the history only changes once per
     * conditional branch — so the folds are computed lazily on the
     * first use after each history change and reused until the next
     * one. Purely a host-side cache: fold values are identical to
     * recomputing.
     */
    void refreshFolds() const;
    mutable bool foldsValid = false;
    mutable std::vector<uint64_t> foldIdx;  // bits = taggedIdxBits
    mutable std::vector<uint64_t> foldTagA; // bits = tagBits
    mutable std::vector<uint64_t> foldTagB; // bits = tagBits - 1

    unsigned taggedIdxBits = 0; // ceil(log2(taggedEntries))

    uint64_t numLookups = 0;
    uint64_t numDirWrong = 0;
    uint64_t numTargetWrong = 0;
};

} // namespace chex

#endif // CHEX_CPU_BPRED_HH

#include "machine_state.hh"

#include <bit>

#include "base/logging.hh"

namespace chex
{

uint64_t
MachineState::effectiveAddr(const MemOperand &m) const
{
    if (m.ripRelative)
        return static_cast<uint64_t>(m.disp);
    uint64_t addr = static_cast<uint64_t>(m.disp);
    if (m.hasBase())
        addr += reg(m.base);
    if (m.hasIndex())
        addr += reg(m.index) * m.scale;
    return addr;
}

namespace
{

double
asDouble(uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

uint64_t
asBits(double d)
{
    return std::bit_cast<uint64_t>(d);
}

} // anonymous namespace

UopEffect
MachineState::execute(const StaticUop &uop, uint64_t direct_target)
{
    UopEffect eff;

    uint64_t a = uop.src1 != REG_NONE ? reg(uop.src1) : 0;
    uint64_t b = uop.useImm ? static_cast<uint64_t>(uop.imm)
                            : (uop.src2 != REG_NONE ? reg(uop.src2) : 0);

    switch (uop.type) {
      case UopType::Nop:
        break;

      case UopType::IntAlu:
      case UopType::IntMult:
      case UopType::IntDiv:
        switch (uop.op) {
          case AluOp::Mov: eff.value = uop.useImm ? b : a; break;
          case AluOp::Add: eff.value = a + b; break;
          case AluOp::Sub: eff.value = a - b; break;
          case AluOp::And: eff.value = a & b; break;
          case AluOp::Or: eff.value = a | b; break;
          case AluOp::Xor: eff.value = a ^ b; break;
          case AluOp::Shl: eff.value = a << (b & 63); break;
          case AluOp::Shr: eff.value = a >> (b & 63); break;
          case AluOp::Mul: eff.value = a * b; break;
          case AluOp::Cmp: eff.value = encodeFlags(a, b); break;
          case AluOp::Test: eff.value = encodeFlags(a & b, 0); break;
          default:
            chex_panic("bad int alu op");
        }
        if (uop.dst != REG_NONE)
            setReg(uop.dst, eff.value);
        break;

      case UopType::FpAlu:
      case UopType::FpMult:
      case UopType::FpDiv:
        switch (uop.op) {
          case AluOp::Mov: eff.value = a; break;
          case AluOp::FAdd:
            eff.value = asBits(asDouble(a) + asDouble(b));
            break;
          case AluOp::FMul:
            eff.value = asBits(asDouble(a) * asDouble(b));
            break;
          case AluOp::FDiv:
            eff.value = asBits(asDouble(a) /
                               (asDouble(b) == 0.0 ? 1.0 : asDouble(b)));
            break;
          case AluOp::FCvt:
            eff.value = asBits(static_cast<double>(
                static_cast<int64_t>(a)));
            break;
          default:
            chex_panic("bad fp op");
        }
        if (uop.dst != REG_NONE)
            setReg(uop.dst, eff.value);
        break;

      case UopType::Lea:
        eff.effAddr = effectiveAddr(uop.mem);
        eff.hasAddr = true;
        eff.value = eff.effAddr;
        if (uop.dst != REG_NONE)
            setReg(uop.dst, eff.value);
        break;

      case UopType::LoadImm:
        eff.value = static_cast<uint64_t>(uop.imm);
        if (uop.dst != REG_NONE)
            setReg(uop.dst, eff.value);
        break;

      case UopType::Load:
        eff.effAddr = effectiveAddr(uop.mem);
        eff.hasAddr = true;
        eff.value = mem.read(eff.effAddr, uop.memSize);
        if (uop.dst != REG_NONE)
            setReg(uop.dst, eff.value);
        break;

      case UopType::Store:
        eff.effAddr = effectiveAddr(uop.mem);
        eff.hasAddr = true;
        eff.value = a;
        mem.write(eff.effAddr, a, uop.memSize);
        break;

      case UopType::Branch:
        eff.isBranch = true;
        if (uop.indirect) {
            eff.branchTaken = true;
            eff.branchTarget = a;
        } else if (uop.cc == CondCode::None) {
            eff.branchTaken = true;
            eff.branchTarget = direct_target;
        } else {
            eff.branchTaken = testCond(reg(FLAGS), uop.cc);
            eff.branchTarget = direct_target;
        }
        break;

      case UopType::CapGenBegin:
      case UopType::CapGenEnd:
      case UopType::CapCheck:
      case UopType::CapFreeBegin:
      case UopType::CapFreeEnd:
        // Capability micro-ops operate on shadow state; the System
        // evaluates them (they have no architectural register
        // effects).
        break;

      default:
        chex_panic("execute: unhandled uop type");
    }

    return eff;
}

} // namespace chex

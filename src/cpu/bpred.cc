#include "bpred.hh"

#include "base/base64.hh"
#include "base/logging.hh"

namespace chex
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &cfg_in)
    : cfg(cfg_in),
      bimodal(cfg.bimodalEntries, 1), // weakly not-taken
      tagged(cfg.taggedTables,
             std::vector<TaggedEntry>(cfg.taggedEntries)),
      btb(cfg.btbEntries),
      ras(cfg.rasEntries, 0),
      foldIdx(cfg.taggedTables, 0),
      foldTagA(cfg.taggedTables, 0),
      foldTagB(cfg.taggedTables, 0)
{
    while ((1u << taggedIdxBits) < cfg.taggedEntries)
        ++taggedIdxBits;
}

void
BranchPredictor::refreshFolds() const
{
    if (foldsValid)
        return;
    for (unsigned t = 0; t < cfg.taggedTables; ++t) {
        foldIdx[t] = foldedHistory(cfg.historyLengths[t], taggedIdxBits);
        foldTagA[t] = foldedHistory(cfg.historyLengths[t], cfg.tagBits);
        foldTagB[t] =
            foldedHistory(cfg.historyLengths[t], cfg.tagBits - 1);
    }
    foldsValid = true;
}

unsigned
BranchPredictor::bimodalIndex(uint64_t pc) const
{
    return static_cast<unsigned>((pc >> 2) % cfg.bimodalEntries);
}

uint64_t
BranchPredictor::foldedHistory(unsigned length, unsigned bits) const
{
    uint64_t h = history & ((length >= 64) ? ~0ull
                                           : ((1ull << length) - 1));
    uint64_t folded = 0;
    while (h) {
        folded ^= h & ((1ull << bits) - 1);
        h >>= bits;
    }
    return folded;
}

unsigned
BranchPredictor::taggedIndex(uint64_t pc, unsigned table) const
{
    refreshFolds();
    uint64_t idx = (pc >> 2) ^ (pc >> 11) ^ foldIdx[table];
    return static_cast<unsigned>(idx % cfg.taggedEntries);
}

uint16_t
BranchPredictor::taggedTag(uint64_t pc, unsigned table) const
{
    refreshFolds();
    uint64_t tag = (pc >> 2) ^ foldTagA[table] ^ (foldTagB[table] << 1);
    return static_cast<uint16_t>(tag & ((1u << cfg.tagBits) - 1));
}

bool
BranchPredictor::predictDirection(uint64_t pc, int *provider,
                                  unsigned *provider_index) const
{
    *provider = -1;
    for (int t = static_cast<int>(cfg.taggedTables) - 1; t >= 0; --t) {
        unsigned idx = taggedIndex(pc, t);
        const TaggedEntry &e = tagged[t][idx];
        if (e.valid && e.tag == taggedTag(pc, t)) {
            *provider = t;
            *provider_index = idx;
            return e.ctr >= 0;
        }
    }
    return bimodal[bimodalIndex(pc)] >= 2;
}

BranchPrediction
BranchPredictor::predict(uint64_t pc, bool is_call, bool is_return,
                         bool is_unconditional, uint64_t fallthrough)
{
    ++numLookups;
    BranchPrediction pred;

    if (is_return) {
        pred.taken = true;
        if (rasTop > 0) {
            pred.target = ras[(rasTop - 1) % cfg.rasEntries];
            pred.targetKnown = true;
            --rasTop;
        }
        return pred;
    }

    if (is_unconditional || is_call) {
        pred.taken = true;
    } else {
        int provider;
        unsigned provider_index;
        pred.taken = predictDirection(pc, &provider, &provider_index);
    }

    if (pred.taken) {
        const BtbEntry &e = btb[(pc >> 2) % cfg.btbEntries];
        if (e.valid && e.tag == pc) {
            pred.target = e.target;
            pred.targetKnown = true;
        }
    }

    if (is_call) {
        ras[rasTop % cfg.rasEntries] = fallthrough;
        ++rasTop;
    }
    return pred;
}

void
BranchPredictor::update(uint64_t pc, bool taken, uint64_t target,
                        bool is_conditional)
{
    if (is_conditional) {
        int provider;
        unsigned provider_index = 0;
        bool predicted = predictDirection(pc, &provider,
                                          &provider_index);
        bool wrong = predicted != taken;
        if (wrong)
            ++numDirWrong;

        // Update the provider (or the bimodal base).
        if (provider >= 0) {
            TaggedEntry &e = tagged[provider][provider_index];
            if (taken && e.ctr < 3)
                ++e.ctr;
            else if (!taken && e.ctr > -4)
                --e.ctr;
            if (!wrong && e.useful < 3)
                ++e.useful;
        } else {
            uint8_t &c = bimodal[bimodalIndex(pc)];
            if (taken && c < 3)
                ++c;
            else if (!taken && c > 0)
                --c;
        }

        // Allocate a longer-history entry on a misprediction.
        if (wrong) {
            unsigned start =
                provider >= 0 ? static_cast<unsigned>(provider) + 1 : 0;
            for (unsigned t = start; t < cfg.taggedTables; ++t) {
                unsigned idx = taggedIndex(pc, t);
                TaggedEntry &e = tagged[t][idx];
                if (!e.valid || e.useful == 0) {
                    e.valid = true;
                    e.tag = taggedTag(pc, t);
                    e.ctr = taken ? 0 : -1;
                    e.useful = 0;
                    break;
                }
                if (e.useful > 0)
                    --e.useful;
            }
        }

        history = (history << 1) | (taken ? 1 : 0);
        foldsValid = false;
    }

    if (taken) {
        BtbEntry &e = btb[(pc >> 2) % cfg.btbEntries];
        if (!e.valid || e.tag != pc || e.target != target) {
            if (e.valid && e.tag == pc && e.target != target)
                ++numTargetWrong;
            e.valid = true;
            e.tag = pc;
            e.target = target;
        }
    }
}

json::Value
BranchPredictor::saveState() const
{
    json::Value jtagged = json::Value::array();
    for (size_t t = 0; t < tagged.size(); ++t) {
        for (size_t i = 0; i < tagged[t].size(); ++i) {
            const TaggedEntry &e = tagged[t][i];
            if (!e.valid)
                continue;
            jtagged.push(json::Value::object()
                             .set("table", static_cast<uint64_t>(t))
                             .set("slot", static_cast<uint64_t>(i))
                             .set("tag", e.tag)
                             .set("ctr", static_cast<int64_t>(e.ctr))
                             .set("useful", e.useful));
        }
    }
    json::Value jbtb = json::Value::array();
    for (size_t i = 0; i < btb.size(); ++i) {
        const BtbEntry &e = btb[i];
        if (!e.valid)
            continue;
        jbtb.push(json::Value::object()
                      .set("slot", static_cast<uint64_t>(i))
                      .set("tag", e.tag)
                      .set("target", e.target));
    }
    json::Value jras = json::Value::array();
    for (uint64_t r : ras)
        jras.push(r);
    return json::Value::object()
        .set("bimodalEntries", cfg.bimodalEntries)
        .set("taggedTables", cfg.taggedTables)
        .set("taggedEntries", cfg.taggedEntries)
        .set("btbEntries", cfg.btbEntries)
        .set("rasEntries", cfg.rasEntries)
        .set("bimodal", base64Encode(bimodal.data(), bimodal.size()))
        .set("tagged", std::move(jtagged))
        .set("btb", std::move(jbtb))
        .set("ras", std::move(jras))
        .set("rasTop", static_cast<uint64_t>(rasTop))
        .set("history", history)
        .set("numLookups", numLookups)
        .set("numDirWrong", numDirWrong)
        .set("numTargetWrong", numTargetWrong);
}

bool
BranchPredictor::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    if (json::getUint(v, "bimodalEntries", 0) != cfg.bimodalEntries ||
        json::getUint(v, "taggedTables", 0) != cfg.taggedTables ||
        json::getUint(v, "taggedEntries", 0) != cfg.taggedEntries ||
        json::getUint(v, "btbEntries", 0) != cfg.btbEntries ||
        json::getUint(v, "rasEntries", 0) != cfg.rasEntries) {
        return false;
    }
    const json::Value *jbim = v.find("bimodal");
    const json::Value *jtagged = v.find("tagged");
    const json::Value *jbtb = v.find("btb");
    const json::Value *jras = v.find("ras");
    if (!jbim || !jbim->isString() || !jtagged || !jtagged->isArray() ||
        !jbtb || !jbtb->isArray() || !jras || !jras->isArray() ||
        jras->size() != ras.size()) {
        return false;
    }
    std::vector<uint8_t> bim;
    if (!base64Decode(jbim->str(), bim) || bim.size() != bimodal.size())
        return false;
    bimodal = std::move(bim);
    for (auto &table : tagged)
        for (auto &e : table)
            e = TaggedEntry{};
    for (const json::Value &je : jtagged->items()) {
        uint64_t t = json::getUint(je, "table", UINT64_MAX);
        uint64_t slot = json::getUint(je, "slot", UINT64_MAX);
        if (t >= tagged.size() || slot >= tagged[t].size())
            return false;
        TaggedEntry &e = tagged[t][slot];
        e.tag = static_cast<uint16_t>(json::getUint(je, "tag", 0));
        e.ctr = static_cast<int8_t>(json::getInt(je, "ctr", 0));
        e.useful = static_cast<uint8_t>(json::getUint(je, "useful", 0));
        e.valid = true;
    }
    for (auto &e : btb)
        e = BtbEntry{};
    for (const json::Value &je : jbtb->items()) {
        uint64_t slot = json::getUint(je, "slot", UINT64_MAX);
        if (slot >= btb.size())
            return false;
        BtbEntry &e = btb[slot];
        e.tag = json::getUint(je, "tag", 0);
        e.target = json::getUint(je, "target", 0);
        e.valid = true;
    }
    for (size_t i = 0; i < ras.size(); ++i)
        ras[i] = jras->at(i).asUint64();
    rasTop = json::getUint(v, "rasTop", 0);
    history = json::getUint(v, "history", 0);
    foldsValid = false;
    numLookups = json::getUint(v, "numLookups", 0);
    numDirWrong = json::getUint(v, "numDirWrong", 0);
    numTargetWrong = json::getUint(v, "numTargetWrong", 0);
    return true;
}

} // namespace chex

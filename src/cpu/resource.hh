/**
 * @file
 * A resource calendar: models a per-cycle-width-limited structural
 * resource (issue ports, functional units, commit bandwidth) for the
 * forward-only timing calculator. Reservations always move forward
 * in time, so the calendar is a sliding ring buffer.
 */

#ifndef CHEX_CPU_RESOURCE_HH
#define CHEX_CPU_RESOURCE_HH

#include <cstdint>
#include <vector>

#include "base/base64.hh"
#include "base/json.hh"
#include "base/logging.hh"

namespace chex
{

/** Sliding-window per-cycle slot reservation. */
class ResourceCalendar
{
  public:
    /**
     * @param width Slots available per cycle.
     * @param horizon Ring size in cycles; reservations further than
     *        this past the frontier trigger a slide.
     */
    explicit ResourceCalendar(unsigned width, unsigned horizon = 1024)
        : _width(width), used(horizon, 0)
    {
        chex_assert(width > 0 && horizon > 0, "bad calendar");
        // cycle % horizon == cycle & (horizon - 1) for power-of-two
        // horizons; index() runs several times per micro-op, so skip
        // the divide when the geometry allows (it always does with
        // the default horizon).
        if ((horizon & (horizon - 1)) == 0)
            _mask = horizon - 1;
    }

    /**
     * Reserve one slot at the earliest cycle >= @p earliest.
     * @return the reserved cycle.
     */
    uint64_t
    reserve(uint64_t earliest)
    {
        if (earliest < base)
            earliest = base;
        slideTo(earliest);
        uint64_t cycle = earliest;
        while (used[index(cycle)] >= _width) {
            ++cycle;
            slideTo(cycle);
        }
        ++used[index(cycle)];
        return cycle;
    }

    unsigned width() const { return _width; }

    void
    reset()
    {
        std::fill(used.begin(), used.end(), 0);
        base = 0;
    }

    /** @{ @name Snapshot serialization (chex-snapshot-v1) */
    json::Value
    saveState() const
    {
        return json::Value::object()
            .set("base", base)
            .set("used", base64Encode(used.data(), used.size()));
    }

    bool
    restoreState(const json::Value &v)
    {
        if (!v.isObject())
            return false;
        const json::Value *ju = v.find("used");
        std::vector<uint8_t> bytes;
        if (!ju || !ju->isString() || !base64Decode(ju->str(), bytes) ||
            bytes.size() != used.size()) {
            return false;
        }
        used = std::move(bytes);
        base = json::getUint(v, "base", 0);
        return true;
    }
    /** @} */

  private:
    size_t
    index(uint64_t cycle) const
    {
        return _mask ? (cycle & _mask) : (cycle % used.size());
    }

    void
    slideTo(uint64_t cycle)
    {
        // Clear slots that fall out of the window as time advances.
        if (cycle < base + used.size())
            return;
        uint64_t new_base = cycle - used.size() + 1;
        for (uint64_t c = base; c < new_base; ++c)
            used[index(c)] = 0;
        base = new_base;
    }

    unsigned _width;
    uint64_t _mask = 0; // horizon-1 when horizon is a power of two
    std::vector<uint8_t> used;
    uint64_t base = 0;
};

/**
 * A sliding history of per-entry cycles used to model a finite
 * in-order-allocated structure (ROB, IQ, LQ, SQ): entry i is freed
 * when record(i - capacity) releases; dispatch must wait for it.
 */
class OccupancyWindow
{
  public:
    explicit OccupancyWindow(unsigned capacity)
        : cap(capacity), releaseCycles(capacity, 0)
    {
        chex_assert(capacity > 0, "bad occupancy window");
    }

    /**
     * Allocate the next entry; returns the earliest cycle at which a
     * slot is free (the release cycle of the entry `capacity` ago).
     * Call release() afterwards with this entry's own release cycle.
     */
    uint64_t
    allocBound() const
    {
        return releaseCycles[headIdx];
    }

    /** Record the release cycle of the entry just allocated. */
    void
    push(uint64_t release_cycle)
    {
        // headIdx tracks head % cap incrementally: the capacities
        // (224/64/72/56/180/168) are not powers of two, and six of
        // these run per micro-op, so the wrapped counter replaces an
        // integer divide with a compare.
        releaseCycles[headIdx] = release_cycle;
        ++head;
        if (++headIdx == cap)
            headIdx = 0;
    }

    unsigned capacity() const { return cap; }

    void
    reset()
    {
        std::fill(releaseCycles.begin(), releaseCycles.end(), 0);
        head = 0;
        headIdx = 0;
    }

    /** @{ @name Snapshot serialization (chex-snapshot-v1) */
    json::Value
    saveState() const
    {
        json::Value jr = json::Value::array();
        for (uint64_t c : releaseCycles)
            jr.push(c);
        return json::Value::object()
            .set("head", head)
            .set("release", std::move(jr));
    }

    bool
    restoreState(const json::Value &v)
    {
        if (!v.isObject())
            return false;
        const json::Value *jr = v.find("release");
        if (!jr || !jr->isArray() || jr->size() != releaseCycles.size())
            return false;
        for (size_t i = 0; i < releaseCycles.size(); ++i)
            releaseCycles[i] = jr->at(i).asUint64();
        head = json::getUint(v, "head", 0);
        // Snapshots store the monotone allocation count; rebuild the
        // wrapped index so old snapshots restore correctly.
        headIdx = static_cast<unsigned>(head % cap);
        return true;
    }
    /** @} */

  private:
    unsigned cap;
    std::vector<uint64_t> releaseCycles;
    uint64_t head = 0;    // monotone allocation count (serialized)
    unsigned headIdx = 0; // head % cap, maintained incrementally
};

} // namespace chex

#endif // CHEX_CPU_RESOURCE_HH

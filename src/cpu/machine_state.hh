/**
 * @file
 * Architectural machine state and functional micro-op execution.
 * The simulator executes the correct path in program order here
 * (oracle execution); the timing core models the out-of-order
 * pipeline over the resulting micro-op stream.
 */

#ifndef CHEX_CPU_MACHINE_STATE_HH
#define CHEX_CPU_MACHINE_STATE_HH

#include <cstdint>

#include "base/json.hh"
#include "isa/uops.hh"
#include "mem/sparse_memory.hh"

namespace chex
{

/** Side effects of functionally executing one micro-op. */
struct UopEffect
{
    uint64_t value = 0;       // result written to dst (if any)
    uint64_t effAddr = 0;     // effective address (memory ops / LEA)
    bool hasAddr = false;
    bool isBranch = false;
    bool branchTaken = false;
    uint64_t branchTarget = 0;
};

/** Register file + simulated memory with functional execution. */
class MachineState
{
  public:
    explicit MachineState(SparseMemory &mem_in) : mem(mem_in)
    {
        for (auto &r : regs)
            r = 0;
    }

    uint64_t
    reg(RegId r) const
    {
        return r < NumArchRegs ? regs[r] : 0;
    }

    void
    setReg(RegId r, uint64_t value)
    {
        if (r < NumArchRegs)
            regs[r] = value;
    }

    /** Compute the effective address of a memory operand. */
    uint64_t effectiveAddr(const MemOperand &m) const;

    /**
     * Execute @p uop, applying all register/memory effects.
     * @param direct_target Branch target for direct branches (from
     *        the parent macro-instruction).
     */
    UopEffect execute(const StaticUop &uop, uint64_t direct_target);

    SparseMemory &memory() { return mem; }

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Registers only; memory is serialized by its owner. */
    json::Value
    saveState() const
    {
        json::Value out = json::Value::array();
        for (uint64_t r : regs)
            out.push(r);
        return out;
    }

    bool
    restoreState(const json::Value &v)
    {
        if (!v.isArray() || v.size() != NumArchRegs)
            return false;
        for (size_t r = 0; r < NumArchRegs; ++r)
            regs[r] = v.at(r).asUint64();
        return true;
    }
    /** @} */

  private:
    uint64_t regs[NumArchRegs];
    SparseMemory &mem;
};

} // namespace chex

#endif // CHEX_CPU_MACHINE_STATE_HH

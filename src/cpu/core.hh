/**
 * @file
 * The out-of-order core timing model, configured after Table III
 * (Skylake-class: fetch 4 fused µops, issue 6 unfused µops, 224-entry
 * ROB, 64-entry IQ, 72/56 LQ/SQ, LTAGE-style branch prediction).
 *
 * The model is a forward-pass timing calculator over the in-order
 * (oracle) micro-op stream: each micro-op is assigned fetch,
 * dispatch, issue, complete, and commit cycles subject to dataflow
 * dependences (last-writer register availability), structural
 * resources (issue ports, functional units, ROB/IQ/LQ/SQ occupancy,
 * physical register files), cache latencies, and front-end redirects
 * (branch mispredictions and alias-predictor P0AN flushes).
 */

#ifndef CHEX_CPU_CORE_HH
#define CHEX_CPU_CORE_HH

#include <cstdint>

#include "base/stats.hh"
#include "cpu/bpred.hh"
#include "cpu/resource.hh"
#include "cpu/store_forward.hh"
#include "isa/decoder.hh"
#include "isa/uops.hh"
#include "mem/hierarchy.hh"

namespace chex
{

/** Core configuration (Table III defaults). */
struct CoreConfig
{
    double frequencyGHz = 3.4;
    unsigned fetchWidth = 4;     // fused (macro) ops per cycle
    unsigned issueWidth = 6;     // unfused micro-ops per cycle
    unsigned commitWidth = 8;
    unsigned robEntries = 224;
    unsigned iqEntries = 64;
    unsigned lqEntries = 72;
    unsigned sqEntries = 56;
    unsigned intRegs = 180;
    unsigned fpRegs = 168;
    unsigned frontendDepth = 5;  // fetch-to-dispatch stages
    unsigned redirectPenalty = 12;
    unsigned msromSwitchPenalty = 2;
    // Functional units (Table III)
    unsigned intAluUnits = 6;
    unsigned intMultUnits = 1;
    unsigned fpAluUnits = 3;
    unsigned simdUnits = 3;
    unsigned loadPorts = 2;
    unsigned storePorts = 1;
    unsigned capUnits = 2;       // capability-management micro-op ports
    BranchPredictorConfig bpred;
};

/** Static branch attributes the fetch stage knows. */
struct MacroBranchInfo
{
    bool isBranch = false;
    bool isCall = false;
    bool isReturn = false;
    bool isUncondDirect = false;
    bool isConditional = false;
    bool isIndirect = false;
    uint64_t fallthrough = 0;
};

/** Per-micro-op timing inputs from the orchestrator. */
struct UopTimingIn
{
    const StaticUop *uop = nullptr;
    uint64_t effAddr = 0;
    unsigned extraLatency = 0; // e.g. capability-cache miss fill
    bool zeroIdiom = false;    // squashed at the IQ, never issues
};

/** The timing core. */
class Core
{
  public:
    Core(const CoreConfig &cfg, MemoryHierarchy &hierarchy);

    /** Begin fetching one macro-instruction. */
    void beginMacro(uint64_t pc, DecodePath path,
                    const MacroBranchInfo &branch);

    /** Time one micro-op of the current macro (program order). */
    uint64_t addUop(const UopTimingIn &in);

    /** Finish the macro; resolves its branch if it had one. */
    void endMacro(bool taken, uint64_t target);

    /**
     * Charge a P0AN alias-misprediction flush: the pipeline squashes
     * younger micro-ops and refetches with the right checks injected
     * (Figure 5d). @p at_cycle is the verifying load's completion.
     */
    void chargeAliasFlush(uint64_t at_cycle);

    /**
     * Stall the front end for @p cycles (binary-translation warmup,
     * microcode-update installation, and similar whole-front-end
     * serializing events).
     */
    void stallFetch(uint64_t cycles);

    /** @{ @name Results */
    uint64_t cycles() const { return maxCommitCycle; }
    uint64_t uops() const { return numUops; }
    uint64_t macroOps() const { return numMacros; }
    uint64_t squashCyclesBranch() const { return _squashBranch; }
    uint64_t squashCyclesAlias() const { return _squashAlias; }
    uint64_t squashCyclesTotal() const
    {
        return _squashBranch + _squashAlias;
    }
    uint64_t branchMispredicts() const { return _branchMispredicts; }
    uint64_t zeroIdiomUops() const { return _zeroIdioms; }
    double
    ipc() const
    {
        return cycles() ? static_cast<double>(numUops) / cycles() : 0.0;
    }
    double
    secondsAt(double ghz) const
    {
        return static_cast<double>(cycles()) / (ghz * 1e9);
    }
    /** @} */

    BranchPredictor &branchPredictor() { return bpred; }
    const CoreConfig &config() const { return cfg; }

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Every timing-visible field: predictor, fetch frontier, all
     * resource calendars and occupancy windows, dataflow readiness,
     * store-forwarding map, per-macro bookkeeping, commit frontiers,
     * and counters. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    unsigned uopLatency(const StaticUop &uop) const;
    ResourceCalendar &fuFor(const StaticUop &uop);
    void redirect(uint64_t resolve_cycle, uint64_t *squash_bucket);

    CoreConfig cfg;
    MemoryHierarchy &hier;
    BranchPredictor bpred;

    // Fetch state
    uint64_t fetchCycle = 0;     // frontier
    uint64_t fetchAvail = 0;     // earliest fetch after redirects
    unsigned macrosThisCycle = 0;
    uint64_t lastFetchLine = ~0ull;

    // Structural resources
    ResourceCalendar issueCal;
    ResourceCalendar commitCal;
    ResourceCalendar intAlu;
    ResourceCalendar intMult;
    ResourceCalendar fpAlu;
    ResourceCalendar simd;
    ResourceCalendar loadPort;
    ResourceCalendar storePort;
    ResourceCalendar capUnit;
    OccupancyWindow rob;
    OccupancyWindow iq;
    OccupancyWindow lq;
    OccupancyWindow sq;
    OccupancyWindow intRegWindow;
    OccupancyWindow fpRegWindow;

    // Dataflow
    uint64_t regReady[NumArchRegs] = {};
    StoreForwardTable storeForward; // word->ready

    // Per-macro bookkeeping
    uint64_t curPc = 0;
    MacroBranchInfo curBranch;
    BranchPrediction curPrediction;
    uint64_t branchUopComplete = 0;

    // In-order commit frontier
    uint64_t lastCommitCycle = 0;
    uint64_t maxCommitCycle = 0;

    // Statistics
    uint64_t numUops = 0;
    uint64_t numMacros = 0;
    uint64_t _squashBranch = 0;
    uint64_t _squashAlias = 0;
    uint64_t _branchMispredicts = 0;
    uint64_t _zeroIdioms = 0;
};

} // namespace chex

#endif // CHEX_CPU_CORE_HH

/**
 * @file
 * Flat open-addressed store-to-load forwarding table. The timing
 * core consults it on every load and updates it on every store, so
 * it sits directly on the fetch->retire hot path; the previous
 * std::unordered_map spent the bulk of Core::addUop in hashing and
 * node chasing.
 *
 * Semantics are exactly those of the map it replaces:
 *  - insert() overwrites the ready cycle for an existing word and
 *    counts distinct words otherwise,
 *  - clear() drops everything (the core clears when size() exceeds
 *    its threshold, bounding the modelled store-queue history),
 * so simulated cycle assignments are bit-identical.
 *
 * Linear probing over a power-of-two slot array sized so the load
 * factor stays at or below ~0.5 before the core's clear threshold
 * fires. clear() is O(1): slots carry an epoch stamp and a slot is
 * live only when its stamp matches the current epoch.
 */

#ifndef CHEX_CPU_STORE_FORWARD_HH
#define CHEX_CPU_STORE_FORWARD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chex
{

/** Word-address -> data-ready-cycle forwarding table. */
class StoreForwardTable
{
  public:
    /** Slot count; must exceed 2x the core's clear threshold. */
    static constexpr size_t Capacity = 16384;

    StoreForwardTable() : slots(Capacity) {}

    /** Ready cycle for @p word, or nullptr when not present. */
    const uint64_t *
    lookup(uint64_t word) const
    {
        size_t idx = home(word);
        while (slots[idx].epoch == epoch) {
            if (slots[idx].word == word)
                return &slots[idx].ready;
            idx = (idx + 1) & (Capacity - 1);
        }
        return nullptr;
    }

    /** Insert or overwrite @p word's ready cycle. */
    void
    insert(uint64_t word, uint64_t ready)
    {
        size_t idx = home(word);
        while (slots[idx].epoch == epoch) {
            if (slots[idx].word == word) {
                slots[idx].ready = ready;
                return;
            }
            idx = (idx + 1) & (Capacity - 1);
        }
        slots[idx] = {word, ready, epoch};
        ++_size;
    }

    /** Number of distinct words present. */
    size_t size() const { return _size; }

    /** Drop every entry in O(1) by advancing the epoch. */
    void
    clear()
    {
        ++epoch;
        _size = 0;
    }

    /** Visit every live (word, ready) pair in unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots)
            if (s.epoch == epoch)
                fn(s.word, s.ready);
    }

  private:
    struct Slot
    {
        uint64_t word = 0;
        uint64_t ready = 0;
        uint64_t epoch = 0; // live iff == table epoch (which starts at 1)
    };

    size_t
    home(uint64_t word) const
    {
        return static_cast<size_t>(word * 0x9e3779b97f4a7c15ull >> 32) &
               (Capacity - 1);
    }

    std::vector<Slot> slots;
    uint64_t epoch = 1;
    size_t _size = 0;
};

} // namespace chex

#endif // CHEX_CPU_STORE_FORWARD_HH

#include "allocator.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace chex
{

HeapAllocator::HeapAllocator(SparseMemory &mem_in, uint64_t heap_base,
                             uint64_t heap_limit)
    : mem(mem_in),
      heapBase(heap_base),
      heapLimit(heap_limit),
      top(heap_base),
      statsGroup("heap"),
      statTotalAllocs(
          statsGroup.addScalar("totalAllocs", "successful allocations")),
      statTotalFrees(statsGroup.addScalar("totalFrees", "free calls")),
      statFailedAllocs(
          statsGroup.addScalar("failedAllocs", "failed allocations")),
      statBinReuse(
          statsGroup.addScalar("binReuse", "allocations served from bins")),
      statBumpAllocs(
          statsGroup.addScalar("bumpAllocs", "allocations from wilderness"))
{
    chex_assert(heap_base < heap_limit, "bad heap range");
}

unsigned
HeapAllocator::binIndex(uint64_t chunk_size) const
{
    // 16-byte-granular exact bins up to 512 bytes, then one bin per
    // power of two. Chunk sizes below MinChunk never occur.
    if (chunk_size <= 512)
        return static_cast<unsigned>(chunk_size / 16); // 2..32
    unsigned lg = floorLog2(chunk_size);               // >= 9
    return std::min(33u + (lg - 9), NumBins - 1);
}

uint64_t
HeapAllocator::chunkSizeFor(uint64_t user_size) const
{
    uint64_t gross = user_size + HeaderBytes;
    if (asan.enabled)
        gross += 2 * asan.redzoneBytes;
    return std::max<uint64_t>(roundUp(gross, 16), MinChunk);
}

uint64_t
HeapAllocator::readSizeField(uint64_t chunk) const
{
    return mem.read(chunk + 8, 8);
}

void
HeapAllocator::writeSizeField(uint64_t chunk, uint64_t size_and_flags,
                              std::vector<MemTouch> *touches)
{
    mem.write(chunk + 8, size_and_flags, 8);
    if (touches)
        touches->push_back({chunk + 8, true, 8});
}

void
HeapAllocator::poison(uint64_t addr, uint64_t len)
{
    poisonRanges.add(addr, addr + len);
}

void
HeapAllocator::unpoison(uint64_t addr, uint64_t len)
{
    poisonRanges.subtract(addr, addr + len);
}

bool
HeapAllocator::isPoisoned(uint64_t addr, uint64_t size) const
{
    return poisonRanges.overlaps(addr,
                                 addr + std::max<uint64_t>(size, 1));
}

uint64_t
HeapAllocator::asanOverheadBytes() const
{
    return redzoneHeld + quarantineHeld;
}

void
HeapAllocator::drainQuarantine()
{
    while (quarantineHeld > asan.quarantineBytes && !quarantine.empty()) {
        QuarantineEntry e = quarantine.front();
        quarantine.pop_front();
        quarantineHeld -= e.chunkSize;
        unpoison(e.chunk, e.chunkSize);
        // Push onto the free list for real reuse.
        unsigned bin = binIndex(e.chunkSize);
        mem.write(e.chunk + HeaderBytes, bins[bin], 8);
        bins[bin] = e.chunk;
    }
}

uint64_t
HeapAllocator::allocateChunk(uint64_t chunk_size,
                             std::vector<MemTouch> *touches)
{
    unsigned bin = binIndex(chunk_size);
    if (chunk_size <= 512) {
        // Exact-size small bins: pop the head with no validation,
        // exactly like a fastbin/tcache — the fd link lives in
        // simulated memory, so a corrupted link hands out whatever
        // the attacker wrote.
        uint64_t chunk = bins[bin];
        if (chunk != 0) {
            uint64_t fd = mem.read(chunk + HeaderBytes, 8);
            if (touches)
                touches->push_back({chunk + HeaderBytes, false, 8});
            bins[bin] = fd;
            ++statBinReuse;
            return chunk;
        }
    } else {
        // Large bins span a power-of-two size range: first-fit walk
        // with a size check, like the unsorted/small-bin path.
        uint64_t prev = 0;
        uint64_t cur = bins[bin];
        unsigned hops = 0;
        while (cur != 0 && hops++ < 64) {
            uint64_t stored = readSizeField(cur) & ~FlagMask;
            if (touches)
                touches->push_back({cur + 8, false, 8});
            uint64_t fd = mem.read(cur + HeaderBytes, 8);
            if (touches)
                touches->push_back({cur + HeaderBytes, false, 8});
            if (stored >= chunk_size) {
                if (prev == 0) {
                    bins[bin] = fd;
                } else {
                    mem.write(prev + HeaderBytes, fd, 8);
                    if (touches)
                        touches->push_back(
                            {prev + HeaderBytes, true, 8});
                }
                ++statBinReuse;
                return cur;
            }
            prev = cur;
            cur = fd;
        }
    }
    // Bump from the wilderness.
    if (top + chunk_size > heapLimit) {
        return 0;
    }
    uint64_t chunk = top;
    top += chunk_size;
    ++statBumpAllocs;
    return chunk;
}

uint64_t
HeapAllocator::malloc(uint64_t size, std::vector<MemTouch> *touches)
{
    if (size == 0)
        size = 1;
    uint64_t chunk_size = chunkSizeFor(size);
    uint64_t chunk = allocateChunk(chunk_size, touches);
    if (chunk == 0) {
        ++statFailedAllocs;
        return 0;
    }

    writeSizeField(chunk, chunk_size | FlagInUse | FlagPrevInUse,
                   touches);
    mem.write(chunk, 0, 8); // prevSize
    if (touches)
        touches->push_back({chunk, true, 8});

    uint64_t user = chunk + HeaderBytes;
    if (asan.enabled) {
        user += asan.redzoneBytes;
        unpoison(user, size);
        poison(chunk + HeaderBytes, asan.redzoneBytes);
        poison(user + size, chunk + chunk_size - (user + size));
        redzoneHeld += 2 * asan.redzoneBytes;
    }

    ++statTotalAllocs;
    ++liveCount;
    maxLiveCount = std::max(maxLiveCount, liveCount);
    liveBytes += chunk_size;
    peakLiveBytes = std::max(peakLiveBytes, liveBytes);
    return user;
}

uint64_t
HeapAllocator::calloc(uint64_t n, uint64_t size,
                      std::vector<MemTouch> *touches)
{
    uint64_t total = n * size;
    if (n != 0 && total / n != size)
        return 0; // overflow
    uint64_t user = malloc(total, touches);
    if (user != 0)
        mem.fill(user, 0, total);
    return user;
}

uint64_t
HeapAllocator::realloc(uint64_t ptr, uint64_t size,
                       std::vector<MemTouch> *touches)
{
    if (ptr == 0)
        return malloc(size, touches);
    if (size == 0) {
        free(ptr, touches);
        return 0;
    }
    uint64_t old_usable = usableSize(ptr);
    uint64_t fresh = malloc(size, touches);
    if (fresh == 0)
        return 0;
    uint64_t copy = std::min(old_usable, size);
    std::vector<uint8_t> buf(copy);
    mem.readBlock(ptr, buf.data(), copy);
    mem.writeBlock(fresh, buf.data(), copy);
    free(ptr, touches);
    return fresh;
}

void
HeapAllocator::free(uint64_t ptr, std::vector<MemTouch> *touches)
{
    ++statTotalFrees;
    if (ptr == 0)
        return;

    uint64_t chunk = ptr - HeaderBytes;
    if (asan.enabled)
        chunk -= asan.redzoneBytes;

    uint64_t size_field = readSizeField(chunk);
    if (touches)
        touches->push_back({chunk + 8, false, 8});
    uint64_t chunk_size = size_field & ~FlagMask;
    if (chunk_size < MinChunk || chunk_size > heapLimit - heapBase) {
        // Garbage header (invalid free). A classic allocator would
        // crash or corrupt; we treat it as freeing a minimum chunk so
        // the fake chunk enters the free list (house-of-spirit).
        chunk_size = MinChunk;
    }

    // NOTE: no double-free detection — flags are cleared but the
    // chunk is pushed regardless, exactly like a fastbin.
    writeSizeField(chunk, (size_field & FlagMask & ~FlagInUse) | chunk_size,
                   touches);

    if (liveCount > 0)
        --liveCount;
    liveBytes -= std::min(liveBytes, chunk_size);

    if (asan.enabled) {
        poison(chunk, chunk_size);
        quarantine.push_back({chunk, chunk_size});
        quarantineHeld += chunk_size;
        redzoneHeld -= std::min(redzoneHeld, 2 * asan.redzoneBytes);
        drainQuarantine();
        return;
    }

    unsigned bin = binIndex(chunk_size);
    mem.write(ptr, bins[bin], 8); // fd link in user area
    if (touches)
        touches->push_back({ptr, true, 8});
    bins[bin] = chunk;
}

uint64_t
HeapAllocator::usableSize(uint64_t ptr) const
{
    uint64_t chunk = ptr - HeaderBytes;
    if (asan.enabled)
        chunk -= asan.redzoneBytes;
    uint64_t chunk_size = readSizeField(chunk) & ~FlagMask;
    uint64_t overhead =
        HeaderBytes + (asan.enabled ? 2 * asan.redzoneBytes : 0);
    return chunk_size > overhead ? chunk_size - overhead : 0;
}

bool
HeapAllocator::isLiveUserPtr(uint64_t ptr) const
{
    if (ptr < heapBase + HeaderBytes || ptr >= top)
        return false;
    uint64_t chunk = ptr - HeaderBytes;
    if (asan.enabled)
        chunk -= asan.redzoneBytes;
    uint64_t size_field = readSizeField(chunk);
    return (size_field & FlagInUse) != 0;
}

json::Value
HeapAllocator::saveState() const
{
    json::Value jbins = json::Value::array();
    for (uint64_t b : bins)
        jbins.push(b);
    json::Value jpoison = json::Value::array();
    for (const auto &[start, end] : poisonRanges.items()) {
        json::Value pair = json::Value::array();
        pair.push(start);
        pair.push(end);
        jpoison.push(std::move(pair));
    }
    json::Value jquar = json::Value::array();
    for (const QuarantineEntry &q : quarantine) {
        json::Value pair = json::Value::array();
        pair.push(q.chunk);
        pair.push(q.chunkSize);
        jquar.push(std::move(pair));
    }
    return json::Value::object()
        .set("top", top)
        .set("bins", std::move(jbins))
        .set("poisonRanges", std::move(jpoison))
        .set("quarantine", std::move(jquar))
        .set("quarantineHeld", quarantineHeld)
        .set("redzoneHeld", redzoneHeld)
        .set("liveCount", liveCount)
        .set("maxLiveCount", maxLiveCount)
        .set("liveBytes", liveBytes)
        .set("peakLiveBytes", peakLiveBytes)
        .set("totalAllocs", statTotalAllocs.count())
        .set("totalFrees", statTotalFrees.count())
        .set("failedAllocs", statFailedAllocs.count())
        .set("binReuse", statBinReuse.count())
        .set("bumpAllocs", statBumpAllocs.count());
}

bool
HeapAllocator::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    const json::Value *jbins = v.find("bins");
    const json::Value *jpoison = v.find("poisonRanges");
    const json::Value *jquar = v.find("quarantine");
    if (!jbins || !jbins->isArray() || jbins->size() != NumBins ||
        !jpoison || !jpoison->isArray() || !jquar || !jquar->isArray()) {
        return false;
    }
    for (size_t i = 0; i < NumBins; ++i)
        bins[i] = jbins->at(i).asUint64();
    poisonRanges.clear();
    for (const json::Value &pair : jpoison->items()) {
        if (!pair.isArray() || pair.size() != 2)
            return false;
        poisonRanges.add(pair.at(size_t(0)).asUint64(),
                         pair.at(size_t(1)).asUint64());
    }
    quarantine.clear();
    for (const json::Value &pair : jquar->items()) {
        if (!pair.isArray() || pair.size() != 2)
            return false;
        quarantine.push_back({pair.at(size_t(0)).asUint64(),
                              pair.at(size_t(1)).asUint64()});
    }
    top = json::getUint(v, "top", top);
    quarantineHeld = json::getUint(v, "quarantineHeld", 0);
    redzoneHeld = json::getUint(v, "redzoneHeld", 0);
    liveCount = json::getUint(v, "liveCount", 0);
    maxLiveCount = json::getUint(v, "maxLiveCount", 0);
    liveBytes = json::getUint(v, "liveBytes", 0);
    peakLiveBytes = json::getUint(v, "peakLiveBytes", 0);
    statTotalAllocs = json::getUint(v, "totalAllocs", 0);
    statTotalFrees = json::getUint(v, "totalFrees", 0);
    statFailedAllocs = json::getUint(v, "failedAllocs", 0);
    statBinReuse = json::getUint(v, "binReuse", 0);
    statBumpAllocs = json::getUint(v, "bumpAllocs", 0);
    return true;
}

} // namespace chex

/**
 * @file
 * The simulated heap: a classic (deliberately unhardened) free-list
 * allocator whose chunk metadata lives inline in simulated memory,
 * exactly like ptmalloc-era allocators. Because the fd links and
 * size fields are real bytes in the simulated address space,
 * How2Heap-style metadata-corruption exploits (fastbin dup, double
 * free, overlapping chunks, house-of-spirit invalid frees) actually
 * *work* against the insecure baseline — which is what gives the
 * security evaluation teeth.
 *
 * An optional ASan mode adds redzones around allocations, poisons
 * freed memory, and quarantines freed blocks, modelling the
 * AddressSanitizer runtime the paper compares against.
 */

#ifndef CHEX_HEAP_ALLOCATOR_HH
#define CHEX_HEAP_ALLOCATOR_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "base/range_set.hh"
#include "base/stats.hh"
#include "mem/sparse_memory.hh"

namespace chex
{

/** One metadata memory access performed by the allocator. */
struct MemTouch
{
    uint64_t addr = 0;
    bool isWrite = false;
    uint8_t size = 8;
};

/** ASan-model configuration. */
struct AsanConfig
{
    bool enabled = false;
    uint64_t redzoneBytes = 16;        // on each side
    uint64_t quarantineBytes = 1 << 20; // FIFO of freed blocks
};

/**
 * Free-list heap allocator over simulated memory.
 *
 * Chunk layout (addresses in simulated memory):
 *   chunk+0   prevSize (8 B)
 *   chunk+8   size | flags (8 B; bit0 = PREV_INUSE, bit1 = IN_USE)
 *   chunk+16  user data (fd link when free)
 * User pointers are chunk+16. Sizes are multiples of 16, minimum 32.
 */
class HeapAllocator
{
  public:
    HeapAllocator(SparseMemory &mem, uint64_t heap_base,
                  uint64_t heap_limit);

    /** Enable/disable the ASan model (affects new operations). */
    void setAsan(const AsanConfig &cfg) { asan = cfg; }
    const AsanConfig &asanConfig() const { return asan; }

    /**
     * Allocate @p size bytes. Returns the user address, or 0 on
     * failure. Metadata touches are appended to @p touches if given.
     */
    uint64_t malloc(uint64_t size, std::vector<MemTouch> *touches);

    /** calloc: allocate and zero n*size bytes. */
    uint64_t calloc(uint64_t n, uint64_t size,
                    std::vector<MemTouch> *touches);

    /** realloc with copy; free(ptr) when size==0. */
    uint64_t realloc(uint64_t ptr, uint64_t size,
                     std::vector<MemTouch> *touches);

    /**
     * Free a user pointer. Performs NO validation beyond reading the
     * header (by design): double frees corrupt the free list and
     * invalid frees enqueue fake chunks, as in classic allocators.
     */
    void free(uint64_t ptr, std::vector<MemTouch> *touches);

    /** Usable size of a live user pointer (reads its header). */
    uint64_t usableSize(uint64_t ptr) const;

    /** @{ @name ASan shadow-state queries (for the ASan variant) */
    /** True if any byte of [addr, addr+size) is poisoned. */
    bool isPoisoned(uint64_t addr, uint64_t size) const;
    /** Bytes of redzone + quarantine currently held. */
    uint64_t asanOverheadBytes() const;
    /** @} */

    /** @{ @name Introspection and statistics */
    uint64_t totalAllocations() const
    {
        return statTotalAllocs.count();
    }
    uint64_t liveAllocations() const { return liveCount; }
    uint64_t maxLiveAllocations() const { return maxLiveCount; }
    uint64_t bytesInUse() const { return liveBytes; }
    uint64_t peakBytesInUse() const { return peakLiveBytes; }
    uint64_t heapBreak() const { return top; }
    /** True if @p ptr is a live user pointer from this allocator. */
    bool isLiveUserPtr(uint64_t ptr) const;
    stats::StatGroup &statGroup() { return statsGroup; }
    /** @} */

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Arena state only (bins, wilderness pointer, ASan shadow
     * ranges, counters); chunk metadata lives in simulated memory
     * and travels with the SparseMemory pages. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

    static constexpr uint64_t HeaderBytes = 16;
    static constexpr uint64_t MinChunk = 32;
    static constexpr uint64_t FlagPrevInUse = 1;
    static constexpr uint64_t FlagInUse = 2;
    static constexpr uint64_t FlagMask = 0xf;

  private:
    /** Size-class index for a chunk size. */
    unsigned binIndex(uint64_t chunk_size) const;

    uint64_t chunkSizeFor(uint64_t user_size) const;
    uint64_t readSizeField(uint64_t chunk) const;
    void writeSizeField(uint64_t chunk, uint64_t size_and_flags,
                        std::vector<MemTouch> *touches);

    void poison(uint64_t addr, uint64_t len);
    void unpoison(uint64_t addr, uint64_t len);
    void drainQuarantine();

    uint64_t allocateChunk(uint64_t chunk_size,
                           std::vector<MemTouch> *touches);

    SparseMemory &mem;
    uint64_t heapBase;
    uint64_t heapLimit;
    uint64_t top;  // wilderness pointer (bump allocation frontier)

    static constexpr unsigned NumBins = 64;
    // Bin heads live host-side (the "arena"); fd links live in
    // simulated memory where programs can corrupt them.
    uint64_t bins[NumBins] = {};

    AsanConfig asan;
    // Flat sorted poison ranges: this sits on the free path of every
    // poisoning variant, where the node-per-range std::map paid a
    // heap allocation and a pointer chase per free.
    RangeSet poisonRanges;
    struct QuarantineEntry
    {
        uint64_t chunk;
        uint64_t chunkSize;
    };
    std::deque<QuarantineEntry> quarantine;
    uint64_t quarantineHeld = 0;
    uint64_t redzoneHeld = 0;

    uint64_t liveCount = 0;
    uint64_t maxLiveCount = 0;
    uint64_t liveBytes = 0;
    uint64_t peakLiveBytes = 0;

    stats::StatGroup statsGroup;
    stats::Scalar &statTotalAllocs;
    stats::Scalar &statTotalFrees;
    stats::Scalar &statFailedAllocs;
    stats::Scalar &statBinReuse;
    stats::Scalar &statBumpAllocs;
};

} // namespace chex

#endif // CHEX_HEAP_ALLOCATOR_HH

/**
 * @file
 * Cache-hierarchy timing and traffic model: L1I + L1D (32 KiB 8-way,
 * per Table III), a unified L2, and DRAM. Produces per-access
 * latencies for the pipeline and counts DRAM traffic for the
 * bandwidth evaluation (Figure 9 bottom).
 */

#ifndef CHEX_MEM_HIERARCHY_HH
#define CHEX_MEM_HIERARCHY_HH

#include <cstdint>
#include <string>

#include "mem/cache.hh"

namespace chex
{

/** Hierarchy geometry and latencies (cycles). */
struct HierarchyConfig
{
    unsigned lineBytes = 64;
    // L1: 32 KiB, 8-way (Table III)
    unsigned l1Sets = 64;
    unsigned l1Ways = 8;
    unsigned l1Latency = 4;
    // L2: 1 MiB, 16-way
    unsigned l2Sets = 1024;
    unsigned l2Ways = 16;
    unsigned l2Latency = 14;
    unsigned dramLatency = 180;
};

/** DRAM byte counters. */
struct TrafficMeter
{
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;

    uint64_t total() const { return bytesRead + bytesWritten; }
    void reset() { bytesRead = bytesWritten = 0; }
};

/** Two-level cache + DRAM timing model for one core. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &cfg = {});

    /** Data access; returns total latency in cycles. */
    unsigned dataAccess(uint64_t addr, bool is_write);

    /** Instruction fetch access; returns latency in cycles. */
    unsigned fetchAccess(uint64_t addr);

    /**
     * A shadow-structure access issued by hardware (alias-table
     * walker, capability-table fill): touches L2 then DRAM, and is
     * charged as read traffic.
     */
    unsigned shadowAccess(uint64_t addr);

    const TrafficMeter &traffic() const { return meter; }
    TrafficMeter &traffic() { return meter; }

    SetAssocCache &l1d() { return _l1d; }
    SetAssocCache &l1i() { return _l1i; }
    SetAssocCache &l2() { return _l2; }

    const HierarchyConfig &config() const { return cfg; }

    /** @{ @name Snapshot serialization (chex-snapshot-v1) */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    uint64_t lineOf(uint64_t addr) const { return addr / cfg.lineBytes; }

    HierarchyConfig cfg;
    SetAssocCache _l1i;
    SetAssocCache _l1d;
    SetAssocCache _l2;
    TrafficMeter meter;
};

} // namespace chex

#endif // CHEX_MEM_HIERARCHY_HH

#include "sparse_memory.hh"

#include <algorithm>
#include <cstring>

#include "base/base64.hh"
#include "base/logging.hh"

namespace chex
{

SparseMemory::Page *
SparseMemory::findPage(uint64_t addr) const
{
    uint64_t num = addr / PageBytes;
    if (num == lastPageNum)
        return lastPage;
    auto it = pages.find(num);
    if (it == pages.end())
        return nullptr;
    lastPageNum = num;
    lastPage = it->second.get();
    return lastPage;
}

SparseMemory::Page &
SparseMemory::touchPage(uint64_t addr)
{
    uint64_t num = addr / PageBytes;
    if (num == lastPageNum)
        return *lastPage;
    auto &slot = pages[num];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    lastPageNum = num;
    lastPage = slot.get();
    return *slot;
}

uint64_t
SparseMemory::read(uint64_t addr, unsigned size) const
{
    chex_assert(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    uint64_t value = 0;
    readBlock(addr, &value, size);
    return value;
}

void
SparseMemory::write(uint64_t addr, uint64_t value, unsigned size)
{
    chex_assert(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    writeBlock(addr, &value, size);
}

void
SparseMemory::readBlock(uint64_t addr, void *buf, uint64_t len) const
{
    auto *out = static_cast<uint8_t *>(buf);
    // Fast path: nearly every access is a 1-8 byte read that stays
    // within one page.
    uint64_t off = addr % PageBytes;
    if (off + len <= PageBytes) {
        if (const Page *page = findPage(addr))
            std::memcpy(out, page->data() + off, len);
        else
            std::memset(out, 0, len);
        return;
    }
    while (len > 0) {
        off = addr % PageBytes;
        uint64_t chunk = std::min(len, PageBytes - off);
        if (const Page *page = findPage(addr))
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
SparseMemory::writeBlock(uint64_t addr, const void *buf, uint64_t len)
{
    auto *in = static_cast<const uint8_t *>(buf);
    uint64_t off = addr % PageBytes;
    if (off + len <= PageBytes) {
        std::memcpy(touchPage(addr).data() + off, in, len);
        return;
    }
    while (len > 0) {
        off = addr % PageBytes;
        uint64_t chunk = std::min(len, PageBytes - off);
        Page &page = touchPage(addr);
        std::memcpy(page.data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

json::Value
SparseMemory::saveState() const
{
    std::vector<uint64_t> nums;
    nums.reserve(pages.size());
    for (const auto &[num, page] : pages)
        nums.push_back(num);
    std::sort(nums.begin(), nums.end());

    json::Value out = json::Value::array();
    for (uint64_t num : nums) {
        const Page &page = *pages.at(num);
        out.push(json::Value::object()
                     .set("page", num)
                     .set("data", base64Encode(page.data(), PageBytes)));
    }
    return out;
}

bool
SparseMemory::restoreState(const json::Value &v)
{
    if (!v.isArray())
        return false;
    pages.clear();
    lastPageNum = NoPage;
    lastPage = nullptr;
    std::vector<uint8_t> bytes;
    for (const json::Value &e : v.items()) {
        if (!e.isObject())
            return false;
        const json::Value *data = e.find("data");
        if (!data || !data->isString() ||
            !base64Decode(data->str(), bytes) ||
            bytes.size() != PageBytes) {
            return false;
        }
        uint64_t num = json::getUint(e, "page", 0);
        auto &slot = pages[num];
        slot = std::make_unique<Page>();
        std::memcpy(slot->data(), bytes.data(), PageBytes);
    }
    return true;
}

void
SparseMemory::fill(uint64_t addr, uint8_t byte, uint64_t len)
{
    while (len > 0) {
        uint64_t off = addr % PageBytes;
        uint64_t chunk = std::min(len, PageBytes - off);
        Page &page = touchPage(addr);
        std::memset(page.data() + off, byte, chunk);
        addr += chunk;
        len -= chunk;
    }
}

} // namespace chex

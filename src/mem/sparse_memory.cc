#include "sparse_memory.hh"

#include <cstring>

#include "base/logging.hh"

namespace chex
{

SparseMemory::Page *
SparseMemory::findPage(uint64_t addr) const
{
    auto it = pages.find(addr / PageBytes);
    return it == pages.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::touchPage(uint64_t addr)
{
    auto &slot = pages[addr / PageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

uint64_t
SparseMemory::read(uint64_t addr, unsigned size) const
{
    chex_assert(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    uint64_t value = 0;
    readBlock(addr, &value, size);
    return value;
}

void
SparseMemory::write(uint64_t addr, uint64_t value, unsigned size)
{
    chex_assert(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size");
    writeBlock(addr, &value, size);
}

void
SparseMemory::readBlock(uint64_t addr, void *buf, uint64_t len) const
{
    auto *out = static_cast<uint8_t *>(buf);
    while (len > 0) {
        uint64_t off = addr % PageBytes;
        uint64_t chunk = std::min(len, PageBytes - off);
        if (const Page *page = findPage(addr))
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
SparseMemory::writeBlock(uint64_t addr, const void *buf, uint64_t len)
{
    auto *in = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        uint64_t off = addr % PageBytes;
        uint64_t chunk = std::min(len, PageBytes - off);
        Page &page = touchPage(addr);
        std::memcpy(page.data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

void
SparseMemory::fill(uint64_t addr, uint8_t byte, uint64_t len)
{
    while (len > 0) {
        uint64_t off = addr % PageBytes;
        uint64_t chunk = std::min(len, PageBytes - off);
        Page &page = touchPage(addr);
        std::memset(page.data() + off, byte, chunk);
        addr += chunk;
        len -= chunk;
    }
}

} // namespace chex

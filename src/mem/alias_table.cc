#include "alias_table.hh"

#include "base/logging.hh"

namespace chex
{

AliasTable::AliasTable()
{
    root = allocNode();
}

AliasTable::~AliasTable()
{
    freeSubtree(root, 0);
}

AliasTable::Node *
AliasTable::allocNode()
{
    ++_nodeCount;
    return new Node();
}

void
AliasTable::freeSubtree(Node *node, unsigned level)
{
    if (level + 1 < Levels) {
        for (uint64_t slot : node->slots)
            if (slot)
                freeSubtree(reinterpret_cast<Node *>(slot), level + 1);
    }
    delete node;
    --_nodeCount;
}

unsigned
AliasTable::levelIndex(uint64_t addr, unsigned level)
{
    // Word index = VA[47:3]; level 0 uses the top 9 bits of it.
    uint64_t word = (addr >> 3) & ((1ull << 45) - 1);
    unsigned shift = BitsPerLevel * (Levels - 1 - level);
    return static_cast<unsigned>((word >> shift) & (Fanout - 1));
}

void
AliasTable::set(uint64_t addr, uint32_t pid)
{
    addr &= ~7ull;
    Node *node = root;
    for (unsigned level = 0; level + 1 < Levels; ++level) {
        uint64_t &slot = node->slots[levelIndex(addr, level)];
        if (!slot) {
            if (pid == 0)
                return; // nothing to erase
            slot = reinterpret_cast<uint64_t>(allocNode());
        }
        node = reinterpret_cast<Node *>(slot);
    }
    uint64_t &leaf = node->slots[levelIndex(addr, Levels - 1)];
    uint64_t page = addr / 4096;
    auto was = static_cast<uint32_t>(leaf);
    if (was == pid)
        return;
    if (was == 0 && pid != 0) {
        ++_liveEntries;
        ++aliasPages[page];
    } else if (was != 0 && pid == 0) {
        --_liveEntries;
        auto it = aliasPages.find(page);
        if (it != aliasPages.end() && --it->second == 0)
            aliasPages.erase(it);
    }
    leaf = pid;
}

uint32_t
AliasTable::get(uint64_t addr) const
{
    addr &= ~7ull;
    const Node *node = root;
    for (unsigned level = 0; level + 1 < Levels; ++level) {
        uint64_t slot = node->slots[levelIndex(addr, level)];
        if (!slot)
            return 0;
        node = reinterpret_cast<const Node *>(slot);
    }
    return static_cast<uint32_t>(node->slots[levelIndex(addr, Levels - 1)]);
}

AliasWalkResult
AliasTable::walk(uint64_t addr) const
{
    addr &= ~7ull;
    AliasWalkResult result;
    const Node *node = root;
    for (unsigned level = 0; level + 1 < Levels; ++level) {
        ++result.levelsTouched;
        uint64_t slot = node->slots[levelIndex(addr, level)];
        if (!slot)
            return result;
        node = reinterpret_cast<const Node *>(slot);
    }
    ++result.levelsTouched;
    result.pid = static_cast<uint32_t>(
        node->slots[levelIndex(addr, Levels - 1)]);
    return result;
}

bool
AliasTable::pageHostsAliases(uint64_t addr) const
{
    return aliasPages.count(addr / 4096) != 0;
}

void
AliasTable::clear()
{
    freeSubtree(root, 0);
    chex_assert(_nodeCount == 0, "alias table leak");
    root = allocNode();
    _liveEntries = 0;
    aliasPages.clear();
}

} // namespace chex

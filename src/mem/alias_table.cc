#include "alias_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace chex
{

AliasTable::AliasTable()
{
    root = allocNode();
}

AliasTable::~AliasTable()
{
    freeSubtree(root, 0);
    for (Node *node : pool)
        delete node;
}

AliasTable::Node *
AliasTable::allocNode()
{
    ++_nodeCount;
    if (!pool.empty()) {
        Node *node = pool.back();
        pool.pop_back();
        node->slots.fill(0);
        node->liveSlots = 0;
        return node;
    }
    return new Node();
}

void
AliasTable::releaseNode(Node *node)
{
    --_nodeCount;
    pool.push_back(node);
}

void
AliasTable::freeSubtree(Node *node, unsigned level)
{
    if (level + 1 < Levels) {
        for (uint64_t slot : node->slots)
            if (slot)
                freeSubtree(reinterpret_cast<Node *>(slot), level + 1);
    }
    releaseNode(node);
}

unsigned
AliasTable::levelIndex(uint64_t addr, unsigned level)
{
    // Word index = VA[47:3]; level 0 uses the top 9 bits of it.
    uint64_t word = (addr >> 3) & ((1ull << 45) - 1);
    unsigned shift = BitsPerLevel * (Levels - 1 - level);
    return static_cast<unsigned>((word >> shift) & (Fanout - 1));
}

void
AliasTable::set(uint64_t addr, uint32_t pid)
{
    addr &= ~7ull;
    // Any mutation can change a memoized walk result — including
    // interior-node allocation or reclamation, which changes walk
    // depth for *other* words sharing the path — so drop the memo up
    // front.
    lastLookupWord = ~0ull;
    Node *path[Levels];
    unsigned indices[Levels];
    Node *node = root;
    for (unsigned level = 0; level + 1 < Levels; ++level) {
        path[level] = node;
        indices[level] = levelIndex(addr, level);
        uint64_t &slot = node->slots[indices[level]];
        if (!slot) {
            if (pid == 0)
                return; // nothing to erase
            slot = reinterpret_cast<uint64_t>(allocNode());
            ++node->liveSlots;
        }
        node = reinterpret_cast<Node *>(slot);
    }
    path[Levels - 1] = node;
    indices[Levels - 1] = levelIndex(addr, Levels - 1);
    uint64_t &leaf = node->slots[indices[Levels - 1]];
    uint64_t page = addr / 4096;
    auto was = static_cast<uint32_t>(leaf);
    if (was == pid)
        return;
    if (was == 0 && pid != 0) {
        ++_liveEntries;
        ++node->liveSlots;
        aliasPages.increment(page);
    } else if (was != 0 && pid == 0) {
        --_liveEntries;
        --node->liveSlots;
        aliasPages.decrement(page);
    }
    leaf = pid;
    if (pid != 0)
        return;
    // Reclaim the emptied tail of the path: a leaf whose last entry
    // was erased goes back to the pool, and the cascade walks up
    // through interior nodes emptied by that release. The root is
    // never released.
    for (unsigned level = Levels - 1;
         level > 0 && path[level]->liveSlots == 0; --level) {
        releaseNode(path[level]);
        path[level - 1]->slots[indices[level - 1]] = 0;
        --path[level - 1]->liveSlots;
    }
}

AliasWalkResult
AliasTable::lookup(uint64_t addr) const
{
    if (addr == lastLookupWord)
        return lastLookup;
    AliasWalkResult result;
    const Node *node = root;
    for (unsigned level = 0; level + 1 < Levels; ++level) {
        ++result.levelsTouched;
        uint64_t slot = node->slots[levelIndex(addr, level)];
        if (!slot) {
            lastLookupWord = addr;
            lastLookup = result;
            return result;
        }
        node = reinterpret_cast<const Node *>(slot);
    }
    ++result.levelsTouched;
    result.pid = static_cast<uint32_t>(
        node->slots[levelIndex(addr, Levels - 1)]);
    lastLookupWord = addr;
    lastLookup = result;
    return result;
}

uint32_t
AliasTable::get(uint64_t addr) const
{
    return lookup(addr & ~7ull).pid;
}

AliasWalkResult
AliasTable::walk(uint64_t addr) const
{
    return lookup(addr & ~7ull);
}

bool
AliasTable::pageHostsAliases(uint64_t addr) const
{
    return aliasPages.hosts(addr / 4096);
}

void
AliasTable::clear()
{
    freeSubtree(root, 0);
    chex_assert(_nodeCount == 0, "alias table leak");
    root = allocNode();
    _liveEntries = 0;
    aliasPages.clear();
    lastLookupWord = ~0ull;
}

namespace
{

/**
 * One node as a sorted [slot, payload] pair list; the payload is a
 * child node (interior levels) or the stored PID (leaf level). The
 * node's slot array is its first member, so the stored child pointer
 * doubles as a pointer to the child's array.
 */
json::Value
saveNode(const std::array<uint64_t, 512> &slots, unsigned level,
         unsigned levels)
{
    json::Value out = json::Value::array();
    for (size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i])
            continue;
        json::Value pair = json::Value::array();
        pair.push(static_cast<uint64_t>(i));
        if (level + 1 < levels) {
            const auto *child =
                reinterpret_cast<const std::array<uint64_t, 512> *>(
                    slots[i]);
            pair.push(saveNode(*child, level + 1, levels));
        } else {
            pair.push(slots[i]);
        }
        out.push(std::move(pair));
    }
    return out;
}

} // namespace

json::Value
AliasTable::saveState() const
{
    std::vector<std::pair<uint64_t, uint32_t>> pages;
    aliasPages.forEachNonzero([&](uint64_t page, uint32_t count) {
        pages.emplace_back(page, count);
    });
    std::sort(pages.begin(), pages.end());
    json::Value jpages = json::Value::array();
    for (const auto &[page, count] : pages) {
        json::Value pair = json::Value::array();
        pair.push(page);
        pair.push(count);
        jpages.push(std::move(pair));
    }
    return json::Value::object()
        .set("tree", saveNode(root->slots, 0, Levels))
        .set("pages", std::move(jpages))
        .set("liveEntries", _liveEntries);
}

bool
AliasTable::restoreNode(Node *node, const json::Value &v, unsigned level)
{
    if (!v.isArray())
        return false;
    for (const json::Value &pair : v.items()) {
        if (!pair.isArray() || pair.size() != 2 ||
            !pair.at(size_t(0)).isNumber()) {
            return false;
        }
        uint64_t idx = pair.at(size_t(0)).asUint64();
        if (idx >= Fanout)
            return false;
        if (node->slots[idx]) {
            // Duplicate slot index: overwriting would orphan the
            // child already hanging here (the pre-reclamation code
            // leaked it and died on the clear() leak assert later).
            return false;
        }
        if (level + 1 < Levels) {
            Node *child = allocNode();
            node->slots[idx] = reinterpret_cast<uint64_t>(child);
            ++node->liveSlots;
            if (!restoreNode(child, pair.at(size_t(1)), level + 1))
                return false;
            if (child->liveSlots == 0) {
                // Dead subtree: pre-reclamation snapshots serialized
                // interior nodes that no longer host any entry.
                // Prune instead of resurrecting them — the restored
                // table obeys the reclamation invariant.
                releaseNode(child);
                node->slots[idx] = 0;
                --node->liveSlots;
            }
        } else {
            if (!pair.at(size_t(1)).isNumber())
                return false;
            uint64_t payload = pair.at(size_t(1)).asUint64();
            // Leaf payloads are PIDs: nonzero (zero slots are never
            // serialized) and 32-bit. A wider payload would be
            // silently truncated by get().
            if (payload == 0 || payload > 0xffffffffull)
                return false;
            node->slots[idx] = payload;
            ++node->liveSlots;
        }
    }
    return true;
}

bool
AliasTable::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    const json::Value *tree = v.find("tree");
    const json::Value *pages = v.find("pages");
    if (!tree || !pages || !pages->isArray())
        return false;
    clear();
    if (!restoreNode(root, *tree, 0)) {
        // Free the partially restored tree: every allocated node is
        // still reachable (duplicate indices are rejected before
        // overwriting), so clear() reclaims them all and the table
        // stays usable.
        clear();
        return false;
    }
    for (const json::Value &pair : pages->items()) {
        if (!pair.isArray() || pair.size() != 2 ||
            !pair.at(size_t(0)).isNumber() ||
            !pair.at(size_t(1)).isNumber()) {
            clear();
            return false;
        }
        aliasPages.setCount(
            pair.at(size_t(0)).asUint64(),
            static_cast<uint32_t>(pair.at(size_t(1)).asUint64()));
    }
    _liveEntries = json::getUint(v, "liveEntries", 0);
    lastLookupWord = ~0ull;
    return true;
}

} // namespace chex

/**
 * @file
 * A generic key-based set-associative cache model with LRU
 * replacement. The same structure models the L1 instruction/data
 * caches and L2 (key = line address), the in-processor capability
 * cache (key = PID), the alias cache (key = word address), and — with
 * one set — any fully associative structure including victim caches.
 *
 * These are *presence* models: they track which keys are resident to
 * produce hit/miss timing and traffic, not data contents (contents
 * live in SparseMemory / shadow tables).
 */

#ifndef CHEX_MEM_CACHE_HH
#define CHEX_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/stats.hh"

namespace chex
{

/** Set-associative LRU cache over opaque 64-bit keys. */
class SetAssocCache
{
  public:
    /**
     * @param name Stat-group name.
     * @param num_sets Number of sets (1 = fully associative).
     * @param ways Associativity.
     */
    SetAssocCache(const std::string &name, unsigned num_sets,
                  unsigned ways);

    /**
     * Look up @p key, updating recency and hit/miss statistics.
     * @return true on hit.
     */
    bool access(uint64_t key);

    /** Look up without recording statistics or recency. */
    bool probe(uint64_t key) const;

    /**
     * Insert @p key (no-op if already present).
     * @return the evicted key, if the insertion displaced one.
     */
    std::optional<uint64_t> insert(uint64_t key);

    /** Remove @p key if present. @return true if it was resident. */
    bool invalidate(uint64_t key);

    /** Drop all entries (keeps statistics). */
    void clear();

    /** Number of resident entries. */
    unsigned occupancy() const;

    unsigned numSets() const { return _numSets; }
    unsigned ways() const { return _ways; }
    unsigned capacity() const { return _numSets * _ways; }

    uint64_t hits() const { return _hits.count(); }
    uint64_t misses() const { return _misses.count(); }
    uint64_t accesses() const { return hits() + misses(); }
    double
    missRate() const
    {
        uint64_t a = accesses();
        return a ? static_cast<double>(misses()) / a : 0.0;
    }

    stats::StatGroup &statGroup() { return _stats; }

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Valid entries only, each with its flat array index — insert()
     * prefers the first invalid slot in way order, so which slots
     * are valid (not just which keys are resident) is timing state.
     * Restore rejects a geometry mismatch. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    struct Entry
    {
        uint64_t key = 0;
        bool valid = false;
        uint64_t lastUse = 0;
    };

    unsigned setIndex(uint64_t key) const;

    unsigned _numSets;
    unsigned _ways;
    // Fast set-index path: when numSets is a power of two the modulo
    // in setIndex() reduces to this mask (bit-identical mapping);
    // zero means "not a power of two, use the divide".
    unsigned _setMask = 0;
    std::vector<Entry> entries; // numSets * ways
    uint64_t useCounter = 0;

    stats::StatGroup _stats;
    stats::Scalar &_hits;
    stats::Scalar &_misses;
    stats::Scalar &_evictions;
    stats::Scalar &_invalidations;
};

/**
 * A cache augmented with a small fully associative victim cache, as
 * used for the alias cache (256-entry 2-way + 32-entry victim,
 * Section V-C). Evictions from the main array fall into the victim;
 * a victim hit swaps the key back into the main array.
 */
class VictimAugmentedCache
{
  public:
    VictimAugmentedCache(const std::string &name, unsigned num_sets,
                         unsigned ways, unsigned victim_entries);

    /** Look up in main then victim; promotes victim hits. */
    bool access(uint64_t key);

    /** Insert into the main array; spill eviction into the victim. */
    void insert(uint64_t key);

    /** Invalidate from both arrays. */
    bool invalidate(uint64_t key);

    void clear();

    uint64_t hits() const { return _hits; }
    uint64_t misses() const { return _misses; }
    uint64_t victimHits() const { return _victimHits; }
    uint64_t accesses() const { return _hits + _misses; }
    double
    missRate() const
    {
        uint64_t a = accesses();
        return a ? static_cast<double>(_misses) / a : 0.0;
    }

    SetAssocCache &main() { return _main; }
    SetAssocCache &victim() { return _victim; }

    /** @{ @name Snapshot serialization (chex-snapshot-v1) */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    SetAssocCache _main;
    SetAssocCache _victim;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    uint64_t _victimHits = 0;
};

} // namespace chex

#endif // CHEX_MEM_CACHE_HH

/**
 * @file
 * Sparse 64-bit simulated physical/virtual memory backed by 4 KiB
 * pages allocated on first touch. Tracks the resident page count so
 * the harness can report resident-set-size growth (Figure 9 top).
 */

#ifndef CHEX_MEM_SPARSE_MEMORY_HH
#define CHEX_MEM_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "base/json.hh"

namespace chex
{

/** Byte-addressable sparse memory. Unmapped reads return zero. */
class SparseMemory
{
  public:
    static constexpr uint64_t PageBytes = 4096;

    /** Read @p size bytes (1/2/4/8) little-endian from @p addr. */
    uint64_t read(uint64_t addr, unsigned size) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    void write(uint64_t addr, uint64_t value, unsigned size);

    /** Bulk copy out of simulated memory. */
    void readBlock(uint64_t addr, void *buf, uint64_t len) const;

    /** Bulk copy into simulated memory. */
    void writeBlock(uint64_t addr, const void *buf, uint64_t len);

    /** Fill [addr, addr+len) with @p byte. */
    void fill(uint64_t addr, uint8_t byte, uint64_t len);

    /**
     * Number of distinct pages allocated by writes/fills. Reads of
     * unmapped addresses return zero without allocating, so reads
     * never grow the resident set.
     */
    uint64_t residentPages() const { return pages.size(); }

    /** Resident bytes (pages * 4 KiB). */
    uint64_t residentBytes() const { return pages.size() * PageBytes; }

    /** Drop all contents. */
    void
    clear()
    {
        pages.clear();
        lastPageNum = NoPage;
        lastPage = nullptr;
    }

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Every resident page, sorted by page number for deterministic
     * output, with contents as base64. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

  private:
    using Page = std::array<uint8_t, PageBytes>;

    Page *findPage(uint64_t addr) const;
    Page &touchPage(uint64_t addr);

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages;

    // One-entry translation cache over the page map. Nearly every
    // access in the fetch->retire loop lands on the same page as its
    // predecessor (sequential code, stack traffic), so this memo
    // turns the common-case hash lookup into a compare. Positive
    // entries only — Page objects are heap-allocated, so the pointer
    // stays valid across map rehashes; entries are only dropped by
    // clear()/restoreState(), which reset the memo.
    static constexpr uint64_t NoPage = ~0ull;
    mutable uint64_t lastPageNum = NoPage;
    mutable Page *lastPage = nullptr;
};

} // namespace chex

#endif // CHEX_MEM_SPARSE_MEMORY_HH

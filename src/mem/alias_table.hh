/**
 * @file
 * The shadow alias table (Section V-C): a 5-level hierarchical radix
 * structure — mirroring the in-memory page-table layout — that maps
 * each 8-byte-aligned virtual word holding a spilled pointer to the
 * PID of that pointer. A hardware walker traverses it on alias-cache
 * misses; the walk depth feeds the memory-traffic model. The page
 * granular "alias-hosting" filter (the paper's TLB / page-table
 * metadata bit) short-circuits lookups for pages that hold no
 * aliases at all.
 */

#ifndef CHEX_MEM_ALIAS_TABLE_HH
#define CHEX_MEM_ALIAS_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "base/json.hh"

namespace chex
{

/** Result of a hardware alias-table walk. */
struct AliasWalkResult
{
    uint32_t pid = 0;        // 0 = no alias at that word
    unsigned levelsTouched = 0; // memory accesses performed
};

/** 5-level radix shadow table: VA[47:3] -> PID. */
class AliasTable
{
  public:
    AliasTable();
    ~AliasTable();

    /**
     * Record that the word at @p addr holds a spilled pointer with
     * identifier @p pid (0 erases). @p addr is word-aligned down.
     */
    void set(uint64_t addr, uint32_t pid);

    /** PID stored for the word at @p addr (0 if none). */
    uint32_t get(uint64_t addr) const;

    /** Full walk with per-level touch accounting. */
    AliasWalkResult walk(uint64_t addr) const;

    /**
     * The TLB alias-hosting bit: true if the 4 KiB page containing
     * @p addr has ever hosted a spilled-pointer alias.
     */
    bool pageHostsAliases(uint64_t addr) const;

    /** Number of live (nonzero) alias entries. */
    uint64_t liveEntries() const { return _liveEntries; }

    /** Shadow storage consumed: allocated nodes x 4 KiB each. */
    uint64_t storageBytes() const { return _nodeCount * NodeBytes; }

    /** Remove every entry. */
    void clear();

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Serializes the radix-tree STRUCTURE, not just the live
     * entries: set(addr, 0) never frees interior nodes, so the node
     * count — and through it storageBytes()/shadow-memory stats —
     * depends on allocation history that a rebuild from live
     * entries would lose. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

    static constexpr unsigned Levels = 5;
    static constexpr unsigned NodeBytes = 4096;

  private:
    static constexpr unsigned BitsPerLevel = 9;
    static constexpr unsigned Fanout = 1u << BitsPerLevel;

    struct Node
    {
        // Interior levels hold child pointers; the leaf level holds
        // PIDs in the same storage (as integers).
        std::array<uint64_t, Fanout> slots{};
    };

    static unsigned levelIndex(uint64_t addr, unsigned level);

    Node *root;
    uint64_t _nodeCount = 0;
    uint64_t _liveEntries = 0;
    std::unordered_map<uint64_t, uint32_t> aliasPages; // page -> count

    Node *allocNode();
    void freeSubtree(Node *node, unsigned level);
    bool restoreNode(Node *node, const json::Value &v, unsigned level);
};

} // namespace chex

#endif // CHEX_MEM_ALIAS_TABLE_HH

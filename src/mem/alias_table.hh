/**
 * @file
 * The shadow alias table (Section V-C): a 5-level hierarchical radix
 * structure — mirroring the in-memory page-table layout — that maps
 * each 8-byte-aligned virtual word holding a spilled pointer to the
 * PID of that pointer. A hardware walker traverses it on alias-cache
 * misses; the walk depth feeds the memory-traffic model. The page
 * granular "alias-hosting" filter (the paper's TLB / page-table
 * metadata bit) short-circuits lookups for pages that hold no
 * aliases at all.
 *
 * Built for sustained million-word spill/overwrite churn: every node
 * carries a live-slot counter, so erasing the last entry of a leaf
 * (set(addr, 0)) releases the leaf — and any interior nodes emptied
 * by the cascade — into a pooled free list instead of retaining them
 * forever. Node count is therefore a pure function of the live entry
 * set, and storageBytes() reports exactly the nodes a hardware table
 * would keep mapped (DESIGN §11).
 */

#ifndef CHEX_MEM_ALIAS_TABLE_HH
#define CHEX_MEM_ALIAS_TABLE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/json.hh"

namespace chex
{

/** Result of a hardware alias-table walk. */
struct AliasWalkResult
{
    uint32_t pid = 0;        // 0 = no alias at that word
    unsigned levelsTouched = 0; // memory accesses performed
};

/**
 * Flat open-addressed page -> alias-count table backing the TLB
 * alias-hosting bit. pageHostsAliases() runs once per load (and once
 * per overwrite check on stores), so the lookup must be a handful of
 * cache-friendly probes rather than an unordered_map find.
 *
 * Linear probing over a power-of-two slot array. Decrementing a
 * count to zero leaves the slot in place as a tombstone (so probe
 * chains stay intact), but tombstones no longer linger until the
 * next grow: once half the occupied slots are dead the table
 * rehashes in place, dropping every tombstone and shrinking the
 * slot array when the live set no longer justifies its capacity —
 * page-churn workloads (a service mapping and unmapping request
 * arenas) keep probe chains short instead of degrading toward a
 * linear scan.
 */
class AliasPageCounts
{
  public:
    AliasPageCounts() : slots(InitialCap) {}

    /** True if @p page currently hosts at least one alias. */
    bool
    hosts(uint64_t page) const
    {
        const Slot &s = slots[findIndex(page)];
        return s.used && s.count != 0;
    }

    void
    increment(uint64_t page)
    {
        size_t idx = findIndex(page);
        if (!slots[idx].used) {
            if ((usedSlots + 1) * 2 > slots.size()) {
                rehash();
                idx = findIndex(page);
                if (slots[idx].used) { // page survived the rehash
                    ++slots[idx].count;
                    return;
                }
            }
            slots[idx].used = true;
            slots[idx].page = page;
            slots[idx].count = 0;
            ++usedSlots;
        } else if (slots[idx].count == 0) {
            --tombstoneSlots; // a dead page comes back to life
        }
        ++slots[idx].count;
    }

    void
    decrement(uint64_t page)
    {
        Slot &s = slots[findIndex(page)];
        if (!s.used || s.count == 0)
            return;
        if (--s.count == 0) {
            ++tombstoneSlots;
            maybePurge();
        }
    }

    void
    clear()
    {
        slots.assign(InitialCap, Slot{});
        usedSlots = 0;
        tombstoneSlots = 0;
    }

    /**
     * Set an exact count (snapshot restore). A zero count for a
     * never-seen page is a no-op: inserting it would plant a used
     * tombstone slot that eats probe-chain and rehash budget for a
     * page the table has no reason to know about.
     */
    void
    setCount(uint64_t page, uint32_t count)
    {
        size_t idx = findIndex(page);
        if (!slots[idx].used) {
            if (count == 0)
                return;
            if ((usedSlots + 1) * 2 > slots.size()) {
                rehash();
                idx = findIndex(page);
            }
            if (!slots[idx].used) {
                slots[idx].used = true;
                slots[idx].page = page;
                ++usedSlots;
            }
        } else if (slots[idx].count == 0 && count != 0) {
            --tombstoneSlots;
        } else if (slots[idx].count != 0 && count == 0) {
            ++tombstoneSlots;
        }
        slots[idx].count = count;
    }

    /** Number of pages with a nonzero count. */
    uint64_t
    livePages() const
    {
        uint64_t n = 0;
        for (const Slot &s : slots)
            if (s.used && s.count != 0)
                ++n;
        return n;
    }

    /** Visit every (page, count) pair with count != 0 (any order). */
    template <typename Fn>
    void
    forEachNonzero(Fn &&fn) const
    {
        for (const Slot &s : slots)
            if (s.used && s.count != 0)
                fn(s.page, s.count);
    }

    /** @{ @name Occupancy introspection (tests, accounting) */
    size_t capacity() const { return slots.size(); }
    size_t usedSlotCount() const { return usedSlots; }
    size_t tombstoneCount() const { return tombstoneSlots; }
    /** @} */

  private:
    struct Slot
    {
        uint64_t page = 0;
        uint32_t count = 0;
        bool used = false;
    };

    static constexpr size_t InitialCap = 64; // power of two
    /** Tombstone purges only fire past this many dead slots. */
    static constexpr size_t PurgeFloor = 32;

    size_t
    findIndex(uint64_t page) const
    {
        size_t mask = slots.size() - 1;
        size_t idx =
            static_cast<size_t>(page * 0x9e3779b97f4a7c15ull >> 32) &
            mask;
        while (slots[idx].used && slots[idx].page != page)
            idx = (idx + 1) & mask;
        return idx;
    }

    /**
     * Rebuild at a capacity sized for the *live* slot count —
     * tombstones die here, and a table whose live set shrank far
     * below its high-water mark shrinks back (never below
     * InitialCap). Serves as both grow (live load at 50% forces a
     * doubling) and purge/shrink.
     */
    void
    rehash()
    {
        size_t live = usedSlots - tombstoneSlots;
        size_t cap = InitialCap;
        while ((live + 1) * 2 > cap)
            cap *= 2;
        std::vector<Slot> old = std::move(slots);
        slots.assign(cap, Slot{});
        usedSlots = 0;
        tombstoneSlots = 0;
        for (const Slot &s : old) {
            if (!s.used || s.count == 0)
                continue;
            size_t idx = findIndex(s.page);
            slots[idx] = s;
            ++usedSlots;
        }
    }

    void
    maybePurge()
    {
        if (tombstoneSlots >= PurgeFloor &&
            tombstoneSlots * 2 >= usedSlots) {
            rehash();
        }
    }

    std::vector<Slot> slots;
    size_t usedSlots = 0;      // occupied slots, including tombstones
    size_t tombstoneSlots = 0; // occupied slots with count == 0
};

/** 5-level radix shadow table: VA[47:3] -> PID. */
class AliasTable
{
  public:
    AliasTable();
    ~AliasTable();

    /**
     * Record that the word at @p addr holds a spilled pointer with
     * identifier @p pid (0 erases). @p addr is word-aligned down.
     * Erasing the last entry of a leaf reclaims the leaf — and any
     * interior nodes the cascade empties — into the node pool.
     */
    void set(uint64_t addr, uint32_t pid);

    /** PID stored for the word at @p addr (0 if none). */
    uint32_t get(uint64_t addr) const;

    /** Full walk with per-level touch accounting. */
    AliasWalkResult walk(uint64_t addr) const;

    /**
     * The TLB alias-hosting bit: true if the 4 KiB page containing
     * @p addr *currently* hosts at least one spilled-pointer alias.
     * The bit is precise, not sticky: erasing the last alias on a
     * page (set(addr, 0)) clears it, so later lookups on that page
     * are filtered again — matching Section V-C, where the
     * page-table metadata bit reflects whether the page "hosts
     * aliases" and is maintained alongside the shadow table.
     */
    bool pageHostsAliases(uint64_t addr) const;

    /** Number of live (nonzero) alias entries. */
    uint64_t liveEntries() const { return _liveEntries; }

    /**
     * Modelled shadow storage: nodes currently reachable in the
     * tree x 4 KiB each. Honest under churn — reclaimed nodes are
     * not counted (they sit in the host-side pool; see
     * retainedBytes()). Every non-root node holds at least one
     * nonzero slot, so this is a pure function of the live set.
     */
    uint64_t storageBytes() const { return _nodeCount * NodeBytes; }

    /**
     * Host-side footprint: live nodes plus pool-retained nodes kept
     * for recycling. retainedBytes() - storageBytes() is the
     * reclaimed-but-not-released slack.
     */
    uint64_t
    retainedBytes() const
    {
        return (_nodeCount + pool.size()) * NodeBytes;
    }

    /** Nodes currently reachable in the tree (including the root). */
    uint64_t liveNodes() const { return _nodeCount; }

    /** Reclaimed nodes parked in the free-list pool. */
    uint64_t pooledNodes() const { return pool.size(); }

    /** Remove every entry; nodes are retained in the pool. */
    void clear();

    /** @{ @name Snapshot serialization (chex-snapshot-v1)
     * Serializes the radix tree in the original structural format.
     * Since reclamation made the structure a pure function of the
     * live entries, the document no longer carries information a
     * live-entry rebuild would lose — the format is kept for
     * byte-compatibility with existing fixtures. Restore prunes the
     * dead subtrees that pre-reclamation snapshots may contain, and
     * rejects malformed documents (duplicate slot indices, leaf
     * payloads that don't fit a PID) without leaking nodes. */
    json::Value saveState() const;
    bool restoreState(const json::Value &v);
    /** @} */

    static constexpr unsigned Levels = 5;
    static constexpr unsigned NodeBytes = 4096;

  private:
    static constexpr unsigned BitsPerLevel = 9;
    static constexpr unsigned Fanout = 1u << BitsPerLevel;

    struct Node
    {
        // Interior levels hold child pointers; the leaf level holds
        // PIDs in the same storage (as integers). liveSlots counts
        // nonzero slots — host-side bookkeeping driving reclamation,
        // not part of the modelled 4 KiB node.
        std::array<uint64_t, Fanout> slots{};
        uint32_t liveSlots = 0;
    };

    static unsigned levelIndex(uint64_t addr, unsigned level);

    /** Shared radix traversal behind get()/walk(), memoized. */
    AliasWalkResult lookup(uint64_t word_addr) const;

    Node *root;
    uint64_t _nodeCount = 0;  // nodes reachable in the tree
    uint64_t _liveEntries = 0;
    AliasPageCounts aliasPages; // page -> live alias count
    std::vector<Node *> pool;   // reclaimed nodes awaiting reuse

    // One-entry memo over lookup(): alias-cache misses walk the same
    // word the subsequent get()/re-walk touches, and loads frequently
    // revisit the last spilled slot. Invalidated by any set() —
    // conservative but cheap. ~0 is never a word-aligned address.
    mutable uint64_t lastLookupWord = ~0ull;
    mutable AliasWalkResult lastLookup;

    Node *allocNode();
    void releaseNode(Node *node);
    void freeSubtree(Node *node, unsigned level);
    bool restoreNode(Node *node, const json::Value &v, unsigned level);
};

} // namespace chex

#endif // CHEX_MEM_ALIAS_TABLE_HH

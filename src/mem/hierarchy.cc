#include "hierarchy.hh"

namespace chex
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &cfg_in)
    : cfg(cfg_in),
      _l1i("l1i", cfg.l1Sets, cfg.l1Ways),
      _l1d("l1d", cfg.l1Sets, cfg.l1Ways),
      _l2("l2", cfg.l2Sets, cfg.l2Ways)
{
}

unsigned
MemoryHierarchy::dataAccess(uint64_t addr, bool is_write)
{
    uint64_t line = lineOf(addr);
    if (_l1d.access(line))
        return cfg.l1Latency;
    if (_l2.access(line)) {
        _l1d.insert(line);
        return cfg.l1Latency + cfg.l2Latency;
    }
    // Line fill from DRAM; writebacks are folded into write traffic.
    _l2.insert(line);
    _l1d.insert(line);
    meter.bytesRead += cfg.lineBytes;
    if (is_write)
        meter.bytesWritten += cfg.lineBytes;
    return cfg.l1Latency + cfg.l2Latency + cfg.dramLatency;
}

unsigned
MemoryHierarchy::fetchAccess(uint64_t addr)
{
    uint64_t line = lineOf(addr);
    // Next-line prefetch: fetch units stream sequential lines ahead,
    // so straight-line code only pays the first cold miss.
    uint64_t next = line + 1;
    if (!_l1i.probe(next)) {
        if (!_l2.probe(next)) {
            _l2.insert(next);
            meter.bytesRead += cfg.lineBytes;
        }
        _l1i.insert(next);
    }
    if (_l1i.access(line))
        return cfg.l1Latency;
    if (_l2.access(line)) {
        _l1i.insert(line);
        return cfg.l1Latency + cfg.l2Latency;
    }
    _l2.insert(line);
    _l1i.insert(line);
    meter.bytesRead += cfg.lineBytes;
    return cfg.l1Latency + cfg.l2Latency + cfg.dramLatency;
}

json::Value
MemoryHierarchy::saveState() const
{
    return json::Value::object()
        .set("l1i", _l1i.saveState())
        .set("l1d", _l1d.saveState())
        .set("l2", _l2.saveState())
        .set("bytesRead", meter.bytesRead)
        .set("bytesWritten", meter.bytesWritten);
}

bool
MemoryHierarchy::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    const json::Value *i = v.find("l1i");
    const json::Value *d = v.find("l1d");
    const json::Value *l2 = v.find("l2");
    if (!i || !d || !l2 || !_l1i.restoreState(*i) ||
        !_l1d.restoreState(*d) || !_l2.restoreState(*l2)) {
        return false;
    }
    meter.bytesRead = json::getUint(v, "bytesRead", 0);
    meter.bytesWritten = json::getUint(v, "bytesWritten", 0);
    return true;
}

unsigned
MemoryHierarchy::shadowAccess(uint64_t addr)
{
    uint64_t line = lineOf(addr);
    if (_l2.access(line))
        return cfg.l2Latency;
    _l2.insert(line);
    meter.bytesRead += cfg.lineBytes;
    return cfg.l2Latency + cfg.dramLatency;
}

} // namespace chex

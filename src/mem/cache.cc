#include "cache.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace chex
{

SetAssocCache::SetAssocCache(const std::string &name, unsigned num_sets,
                             unsigned ways)
    : _numSets(num_sets),
      _ways(ways),
      entries(static_cast<size_t>(num_sets) * ways),
      _stats(name),
      _hits(_stats.addScalar("hits", "lookups that hit")),
      _misses(_stats.addScalar("misses", "lookups that missed")),
      _evictions(_stats.addScalar("evictions", "capacity evictions")),
      _invalidations(
          _stats.addScalar("invalidations", "explicit invalidations"))
{
    chex_assert(num_sets > 0 && ways > 0, "bad cache geometry");
    if ((num_sets & (num_sets - 1)) == 0)
        _setMask = num_sets - 1;
    _stats.addFormula("missRate", "miss fraction", [this]() {
        return missRate();
    });
}

unsigned
SetAssocCache::setIndex(uint64_t key) const
{
    if (_numSets == 1)
        return 0;
    // Mix the key so structured keys (sequential PIDs, stack
    // addresses) spread across sets.
    uint64_t h = key * 0x9e3779b97f4a7c15ull;
    unsigned mixed = static_cast<unsigned>(h >> 32);
    // x % n == x & (n-1) for power-of-two n: the mask path avoids an
    // integer divide on every lookup without changing the mapping.
    if (_setMask)
        return mixed & _setMask;
    return mixed % _numSets;
}

bool
SetAssocCache::access(uint64_t key)
{
    unsigned set = setIndex(key);
    Entry *base = &entries[static_cast<size_t>(set) * _ways];
    for (unsigned w = 0; w < _ways; ++w) {
        if (base[w].valid && base[w].key == key) {
            base[w].lastUse = ++useCounter;
            ++_hits;
            return true;
        }
    }
    ++_misses;
    return false;
}

bool
SetAssocCache::probe(uint64_t key) const
{
    unsigned set = setIndex(key);
    const Entry *base = &entries[static_cast<size_t>(set) * _ways];
    for (unsigned w = 0; w < _ways; ++w)
        if (base[w].valid && base[w].key == key)
            return true;
    return false;
}

std::optional<uint64_t>
SetAssocCache::insert(uint64_t key)
{
    unsigned set = setIndex(key);
    Entry *base = &entries[static_cast<size_t>(set) * _ways];
    Entry *lru = &base[0];
    for (unsigned w = 0; w < _ways; ++w) {
        Entry &e = base[w];
        if (e.valid && e.key == key) {
            e.lastUse = ++useCounter;
            return std::nullopt;
        }
        if (!e.valid) {
            lru = &e;
            break;
        }
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }
    std::optional<uint64_t> evicted;
    if (lru->valid) {
        evicted = lru->key;
        ++_evictions;
    }
    lru->key = key;
    lru->valid = true;
    lru->lastUse = ++useCounter;
    return evicted;
}

bool
SetAssocCache::invalidate(uint64_t key)
{
    unsigned set = setIndex(key);
    Entry *base = &entries[static_cast<size_t>(set) * _ways];
    for (unsigned w = 0; w < _ways; ++w) {
        if (base[w].valid && base[w].key == key) {
            base[w].valid = false;
            ++_invalidations;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::clear()
{
    for (auto &e : entries)
        e.valid = false;
}

unsigned
SetAssocCache::occupancy() const
{
    unsigned n = 0;
    for (const auto &e : entries)
        if (e.valid)
            ++n;
    return n;
}

json::Value
SetAssocCache::saveState() const
{
    json::Value valid = json::Value::array();
    for (size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        if (!e.valid)
            continue;
        valid.push(json::Value::object()
                       .set("slot", static_cast<uint64_t>(i))
                       .set("key", e.key)
                       .set("lastUse", e.lastUse));
    }
    return json::Value::object()
        .set("sets", _numSets)
        .set("ways", _ways)
        .set("useCounter", useCounter)
        .set("entries", std::move(valid))
        .set("hits", _hits.count())
        .set("misses", _misses.count())
        .set("evictions", _evictions.count())
        .set("invalidations", _invalidations.count());
}

bool
SetAssocCache::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    if (json::getUint(v, "sets", 0) != _numSets ||
        json::getUint(v, "ways", 0) != _ways) {
        return false;
    }
    const json::Value *list = v.find("entries");
    if (!list || !list->isArray())
        return false;
    for (auto &e : entries)
        e = Entry{};
    for (const json::Value &je : list->items()) {
        uint64_t slot = json::getUint(je, "slot", UINT64_MAX);
        if (slot >= entries.size())
            return false;
        Entry &e = entries[slot];
        e.key = json::getUint(je, "key", 0);
        e.lastUse = json::getUint(je, "lastUse", 0);
        e.valid = true;
    }
    useCounter = json::getUint(v, "useCounter", 0);
    _hits = json::getUint(v, "hits", 0);
    _misses = json::getUint(v, "misses", 0);
    _evictions = json::getUint(v, "evictions", 0);
    _invalidations = json::getUint(v, "invalidations", 0);
    return true;
}

VictimAugmentedCache::VictimAugmentedCache(const std::string &name,
                                           unsigned num_sets,
                                           unsigned ways,
                                           unsigned victim_entries)
    : _main(name + ".main", num_sets, ways),
      _victim(name + ".victim", 1, victim_entries)
{
}

bool
VictimAugmentedCache::access(uint64_t key)
{
    if (_main.access(key)) {
        ++_hits;
        return true;
    }
    if (_victim.access(key)) {
        // Promote back into the main array; any displaced key drops
        // into the victim, swapping roles.
        _victim.invalidate(key);
        if (auto spilled = _main.insert(key))
            _victim.insert(*spilled);
        ++_hits;
        ++_victimHits;
        return true;
    }
    ++_misses;
    return false;
}

void
VictimAugmentedCache::insert(uint64_t key)
{
    if (auto spilled = _main.insert(key))
        _victim.insert(*spilled);
}

bool
VictimAugmentedCache::invalidate(uint64_t key)
{
    bool a = _main.invalidate(key);
    bool b = _victim.invalidate(key);
    return a || b;
}

void
VictimAugmentedCache::clear()
{
    _main.clear();
    _victim.clear();
}

json::Value
VictimAugmentedCache::saveState() const
{
    return json::Value::object()
        .set("main", _main.saveState())
        .set("victim", _victim.saveState())
        .set("hits", _hits)
        .set("misses", _misses)
        .set("victimHits", _victimHits);
}

bool
VictimAugmentedCache::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    const json::Value *m = v.find("main");
    const json::Value *vi = v.find("victim");
    if (!m || !vi || !_main.restoreState(*m) || !_victim.restoreState(*vi))
        return false;
    _hits = json::getUint(v, "hits", 0);
    _misses = json::getUint(v, "misses", 0);
    _victimHits = json::getUint(v, "victimHits", 0);
    return true;
}

} // namespace chex

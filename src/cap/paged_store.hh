/**
 * @file
 * Paged backing store for the shadow capability table: fixed-size
 * pages of Capability slots indexed directly by PID. PIDs are
 * allocated densely from 1, so pid -> (page, slot) is two shifts and
 * a mask — no hashing, no per-entry heap node, no rehash pauses at
 * million-capability scale. Pages are recycled through a pool on
 * clear() (kremlin MemMapPool-style), so a campaign that resets the
 * table between processes never re-touches the allocator for pages
 * it already owns.
 *
 * A per-page presence bitmap distinguishes "slot never written" from
 * "capability with all-zero fields", which restoreState needs when a
 * crafted snapshot carries sparse PID sets.
 */

#ifndef CHEX_CAP_PAGED_STORE_HH
#define CHEX_CAP_PAGED_STORE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cap/capability.hh"

namespace chex
{

/** PID-indexed paged array of Capability slots with pooled pages. */
class PagedCapabilityStore
{
  public:
    /** Slots per page: 4096 x 16-byte capabilities = 64 KiB. */
    static constexpr uint64_t PageSlots = 4096;
    /** Accounted bytes per allocated page (slots + presence bits). */
    static constexpr uint64_t PageBytes =
        PageSlots * 16 + PageSlots / 8;

    /** Lookup; nullptr if @p pid has no capability. */
    const Capability *
    find(Pid pid) const
    {
        uint64_t page = pid / PageSlots;
        if (page >= pages.size() || !pages[page])
            return nullptr;
        const Page &pg = *pages[page];
        uint64_t slot = pid % PageSlots;
        if (!(pg.present[slot / 64] & (1ull << (slot % 64))))
            return nullptr;
        return &pg.slots[slot];
    }

    Capability *
    find(Pid pid)
    {
        return const_cast<Capability *>(
            static_cast<const PagedCapabilityStore *>(this)->find(
                pid));
    }

    /**
     * Insert or overwrite the capability for @p pid; returns a
     * reference to the stored slot. Slot references stay valid until
     * clear() — pages never move or deallocate while populated.
     */
    Capability &
    assign(Pid pid, const Capability &cap)
    {
        uint64_t page = pid / PageSlots;
        if (page >= pages.size())
            pages.resize(page + 1);
        if (!pages[page]) {
            if (!pool.empty()) {
                pages[page] = std::move(pool.back());
                pool.pop_back();
                pages[page]->reset();
            } else {
                pages[page] = std::make_unique<Page>();
            }
            ++pagesInUse;
        }
        Page &pg = *pages[page];
        uint64_t slot = pid % PageSlots;
        uint64_t &word = pg.present[slot / 64];
        uint64_t bit = 1ull << (slot % 64);
        if (!(word & bit)) {
            word |= bit;
            ++count;
        }
        pg.slots[slot] = cap;
        return pg.slots[slot];
    }

    /** Number of capabilities stored. */
    uint64_t size() const { return count; }

    /** Pages currently backing capabilities (excludes the pool). */
    uint64_t pageCount() const { return pagesInUse; }

    /** Bytes of page storage actually allocated for capabilities. */
    uint64_t storageBytes() const { return pagesInUse * PageBytes; }

    /** Drop every capability; pages are retained in the pool. */
    void
    clear()
    {
        for (auto &pg : pages) {
            if (pg)
                pool.push_back(std::move(pg));
        }
        pages.clear();
        count = 0;
        pagesInUse = 0;
    }

    /** Ascending-PID iteration over present capabilities. */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (uint64_t page = 0; page < pages.size(); ++page) {
            if (!pages[page])
                continue;
            const Page &pg = *pages[page];
            for (uint64_t w = 0; w < PageSlots / 64; ++w) {
                uint64_t bits = pg.present[w];
                while (bits) {
                    uint64_t slot = w * 64 +
                                    static_cast<uint64_t>(
                                        __builtin_ctzll(bits));
                    bits &= bits - 1;
                    fn(static_cast<Pid>(page * PageSlots + slot),
                       pg.slots[slot]);
                }
            }
        }
    }

  private:
    struct Page
    {
        Capability slots[PageSlots];
        uint64_t present[PageSlots / 64] = {};

        void
        reset()
        {
            for (uint64_t &w : present)
                w = 0;
        }
    };

    std::vector<std::unique_ptr<Page>> pages;
    std::vector<std::unique_ptr<Page>> pool;
    uint64_t count = 0;
    uint64_t pagesInUse = 0;
};

} // namespace chex

#endif // CHEX_CAP_PAGED_STORE_HH

#include "cap_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace chex
{

CapabilityTable::CapabilityTable() = default;

Pid
CapabilityTable::beginGeneration(uint64_t request_size,
                                 Violation *violation)
{
    if (violation)
        *violation = Violation::None;
    if (request_size > maxAllocSize) {
        if (violation)
            *violation = Violation::OversizeAlloc;
        return NoPid;
    }
    Pid pid = nextPid++;
    Capability cap;
    cap.bounds = static_cast<uint32_t>(request_size);
    cap.perms = CapBusy | CapRead | CapWrite | CapHeap;
    caps[pid] = cap;
    return pid;
}

void
CapabilityTable::endGeneration(Pid pid, uint64_t base)
{
    auto it = caps.find(pid);
    if (it == caps.end())
        return;
    Capability &cap = it->second;
    cap.base = base;
    cap.perms &= ~CapBusy;
    if (base != 0) {
        cap.perms |= CapValid;
        liveByBase[base] = pid;
        ++liveCount;
    }
}

Violation
CapabilityTable::beginFree(Pid pid, uint64_t addr)
{
    if (pid == NoPid || pid == WildPid)
        return Violation::InvalidFree;
    auto it = caps.find(pid);
    if (it == caps.end())
        return Violation::InvalidFree;
    Capability &cap = it->second;
    if (!(cap.perms & CapHeap))
        return Violation::InvalidFree; // e.g. freeing a global
    if (!cap.valid())
        return Violation::DoubleFree;
    if (addr != cap.base)
        return Violation::InvalidFree; // freeing an interior pointer
    cap.perms |= CapBusy;
    return Violation::None;
}

void
CapabilityTable::endFree(Pid pid)
{
    auto it = caps.find(pid);
    if (it == caps.end())
        return;
    Capability &cap = it->second;
    bool was_valid = cap.valid();
    cap.perms &= ~(CapValid | CapBusy);
    if (was_valid) {
        liveByBase.erase(cap.base);
        freedByBase[cap.base] = it->first;
        --liveCount;
    }
}

Pid
CapabilityTable::addGlobal(const std::string &name, uint64_t base,
                           uint64_t size)
{
    (void)name;
    Pid pid = nextPid++;
    Capability cap;
    cap.base = base;
    cap.bounds = static_cast<uint32_t>(size);
    cap.perms = CapValid | CapRead | CapWrite;
    caps[pid] = cap;
    liveByBase[base] = pid;
    ++liveCount;
    return pid;
}

CheckResult
CapabilityTable::check(Pid pid, uint64_t addr, uint64_t size,
                       bool is_write) const
{
    CheckResult result;
    if (pid == NoPid)
        return result; // untracked pointer: no check to perform
    if (pid == WildPid) {
        result.violation = Violation::WildPointer;
        return result;
    }
    auto it = caps.find(pid);
    if (it == caps.end()) {
        result.violation = Violation::WildPointer;
        return result;
    }
    const Capability &cap = it->second;
    if (!cap.valid()) {
        result.violation = Violation::UseAfterFree;
        return result;
    }
    if (!cap.contains(addr, size)) {
        result.violation = Violation::OutOfBounds;
        return result;
    }
    if (is_write && !cap.writable()) {
        result.violation = Violation::PermissionDenied;
        return result;
    }
    if (!is_write && !cap.readable()) {
        result.violation = Violation::PermissionDenied;
        return result;
    }
    return result;
}

const Capability *
CapabilityTable::find(Pid pid) const
{
    auto it = caps.find(pid);
    return it == caps.end() ? nullptr : &it->second;
}

namespace
{

Pid
searchByBase(const std::map<uint64_t, Pid> &index,
             const std::unordered_map<Pid, Capability> &caps,
             uint64_t addr)
{
    auto it = index.upper_bound(addr);
    if (it == index.begin())
        return NoPid;
    --it;
    auto cit = caps.find(it->second);
    if (cit == caps.end())
        return NoPid;
    const Capability &cap = cit->second;
    if (addr >= cap.base && addr < cap.base + cap.bounds)
        return it->second;
    return NoPid;
}

} // anonymous namespace

Pid
CapabilityTable::pidForAddress(uint64_t addr) const
{
    if (Pid pid = searchByBase(liveByBase, caps, addr))
        return pid;
    return searchByBase(freedByBase, caps, addr);
}

void
CapabilityTable::markInitialized(Pid pid, uint64_t addr, uint64_t size)
{
    if (!trackInit || pid == NoPid || pid == WildPid)
        return;
    auto cit = caps.find(pid);
    if (cit == caps.end() || !cit->second.valid())
        return;
    const Capability &cap = cit->second;
    if (addr < cap.base || addr >= cap.base + cap.bounds)
        return;
    uint64_t first_word = (addr - cap.base) / 8;
    uint64_t last_word = (addr + std::max<uint64_t>(size, 1) - 1 -
                          cap.base) / 8;
    auto &bits = initBits[pid];
    uint64_t need = (cap.bounds + 63) / 64 + 1;
    if (bits.size() < need)
        bits.resize(need, 0);
    for (uint64_t w = first_word; w <= last_word; ++w)
        bits[w / 64] |= 1ull << (w % 64);
}

void
CapabilityTable::markAllInitialized(Pid pid)
{
    if (!trackInit)
        return;
    auto cit = caps.find(pid);
    if (cit == caps.end())
        return;
    auto &bits = initBits[pid];
    bits.assign((cit->second.bounds + 63) / 64 + 1, ~0ull);
}

bool
CapabilityTable::isInitialized(Pid pid, uint64_t addr,
                               uint64_t size) const
{
    auto cit = caps.find(pid);
    if (cit == caps.end())
        return true;
    const Capability &cap = cit->second;
    auto bit = initBits.find(pid);
    if (bit == initBits.end())
        return false;
    const auto &bits = bit->second;
    uint64_t first_word = (addr - cap.base) / 8;
    uint64_t last_word =
        (addr + std::max<uint64_t>(size, 1) - 1 - cap.base) / 8;
    for (uint64_t w = first_word; w <= last_word; ++w) {
        if (w / 64 >= bits.size() ||
            !(bits[w / 64] & (1ull << (w % 64))))
            return false;
    }
    return true;
}

void
CapabilityTable::clear()
{
    caps.clear();
    liveByBase.clear();
    freedByBase.clear();
    initBits.clear();
    nextPid = 1;
    liveCount = 0;
}

json::Value
CapabilityTable::saveState() const
{
    std::vector<Pid> pids;
    pids.reserve(caps.size());
    for (const auto &[pid, cap] : caps)
        pids.push_back(pid);
    std::sort(pids.begin(), pids.end());

    json::Value jcaps = json::Value::array();
    for (Pid pid : pids) {
        const Capability &cap = caps.at(pid);
        jcaps.push(json::Value::object()
                       .set("pid", pid)
                       .set("base", cap.base)
                       .set("bounds", cap.bounds)
                       .set("perms", cap.perms));
    }

    // The interval indices are serialized verbatim rather than
    // rebuilt from the perms bits: on base collisions (e.g. a freed
    // block re-allocated at the same address) the index keeps the
    // most recent PID, which a rebuild from the unordered capability
    // map could not reproduce deterministically.
    auto index_json = [](const std::map<uint64_t, Pid> &index) {
        json::Value out = json::Value::array();
        for (const auto &[base, pid] : index) {
            json::Value pair = json::Value::array();
            pair.push(base);
            pair.push(pid);
            out.push(std::move(pair));
        }
        return out;
    };

    std::vector<Pid> init_pids;
    init_pids.reserve(initBits.size());
    for (const auto &[pid, words] : initBits)
        init_pids.push_back(pid);
    std::sort(init_pids.begin(), init_pids.end());
    json::Value jinit = json::Value::array();
    for (Pid pid : init_pids) {
        const std::vector<uint64_t> &words = initBits.at(pid);
        json::Value jwords = json::Value::array();
        for (uint64_t w : words)
            jwords.push(w);
        jinit.push(json::Value::object()
                       .set("pid", pid)
                       .set("words", std::move(jwords)));
    }

    return json::Value::object()
        .set("caps", std::move(jcaps))
        .set("liveByBase", index_json(liveByBase))
        .set("freedByBase", index_json(freedByBase))
        .set("initBits", std::move(jinit))
        .set("nextPid", nextPid)
        .set("liveCount", liveCount);
}

bool
CapabilityTable::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    const json::Value *jcaps = v.find("caps");
    const json::Value *jlive = v.find("liveByBase");
    const json::Value *jfreed = v.find("freedByBase");
    const json::Value *jinit = v.find("initBits");
    if (!jcaps || !jcaps->isArray() || !jlive || !jlive->isArray() ||
        !jfreed || !jfreed->isArray() || !jinit || !jinit->isArray()) {
        return false;
    }
    clear();
    for (const json::Value &je : jcaps->items()) {
        if (!je.isObject())
            return false;
        Capability cap;
        cap.base = json::getUint(je, "base", 0);
        cap.bounds = static_cast<uint32_t>(json::getUint(je, "bounds", 0));
        cap.perms = static_cast<uint32_t>(json::getUint(je, "perms", 0));
        caps[static_cast<Pid>(json::getUint(je, "pid", 0))] = cap;
    }
    auto restore_index = [](const json::Value &list,
                            std::map<uint64_t, Pid> &index) {
        for (const json::Value &pair : list.items()) {
            if (!pair.isArray() || pair.size() != 2)
                return false;
            index[pair.at(size_t(0)).asUint64()] =
                static_cast<Pid>(pair.at(size_t(1)).asUint64());
        }
        return true;
    };
    if (!restore_index(*jlive, liveByBase) ||
        !restore_index(*jfreed, freedByBase)) {
        return false;
    }
    for (const json::Value &je : jinit->items()) {
        if (!je.isObject())
            return false;
        const json::Value *jwords = je.find("words");
        if (!jwords || !jwords->isArray())
            return false;
        std::vector<uint64_t> words;
        words.reserve(jwords->size());
        for (const json::Value &w : jwords->items())
            words.push_back(w.asUint64());
        initBits[static_cast<Pid>(json::getUint(je, "pid", 0))] =
            std::move(words);
    }
    nextPid = static_cast<Pid>(json::getUint(v, "nextPid", 1));
    liveCount = json::getUint(v, "liveCount", 0);
    return true;
}

} // namespace chex

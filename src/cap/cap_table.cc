#include "cap_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace chex
{

CapabilityTable::CapabilityTable() = default;

Pid
CapabilityTable::beginGeneration(uint64_t request_size,
                                 Violation *violation)
{
    if (violation)
        *violation = Violation::None;
    if (request_size > maxAllocSize) {
        if (violation)
            *violation = Violation::OversizeAlloc;
        return NoPid;
    }
    Pid pid = nextPid++;
    Capability cap;
    cap.bounds = static_cast<uint32_t>(request_size);
    cap.perms = CapBusy | CapRead | CapWrite | CapHeap;
    caps[pid] = cap;
    return pid;
}

void
CapabilityTable::endGeneration(Pid pid, uint64_t base)
{
    auto it = caps.find(pid);
    if (it == caps.end())
        return;
    Capability &cap = it->second;
    cap.base = base;
    cap.perms &= ~CapBusy;
    if (base != 0) {
        cap.perms |= CapValid;
        liveByBase[base] = pid;
        ++liveCount;
    }
}

Violation
CapabilityTable::beginFree(Pid pid, uint64_t addr)
{
    if (pid == NoPid || pid == WildPid)
        return Violation::InvalidFree;
    auto it = caps.find(pid);
    if (it == caps.end())
        return Violation::InvalidFree;
    Capability &cap = it->second;
    if (!(cap.perms & CapHeap))
        return Violation::InvalidFree; // e.g. freeing a global
    if (!cap.valid())
        return Violation::DoubleFree;
    if (addr != cap.base)
        return Violation::InvalidFree; // freeing an interior pointer
    cap.perms |= CapBusy;
    return Violation::None;
}

void
CapabilityTable::endFree(Pid pid)
{
    auto it = caps.find(pid);
    if (it == caps.end())
        return;
    Capability &cap = it->second;
    bool was_valid = cap.valid();
    cap.perms &= ~(CapValid | CapBusy);
    if (was_valid) {
        liveByBase.erase(cap.base);
        freedByBase[cap.base] = it->first;
        --liveCount;
    }
}

Pid
CapabilityTable::addGlobal(const std::string &name, uint64_t base,
                           uint64_t size)
{
    (void)name;
    Pid pid = nextPid++;
    Capability cap;
    cap.base = base;
    cap.bounds = static_cast<uint32_t>(size);
    cap.perms = CapValid | CapRead | CapWrite;
    caps[pid] = cap;
    liveByBase[base] = pid;
    ++liveCount;
    return pid;
}

CheckResult
CapabilityTable::check(Pid pid, uint64_t addr, uint64_t size,
                       bool is_write) const
{
    CheckResult result;
    if (pid == NoPid)
        return result; // untracked pointer: no check to perform
    if (pid == WildPid) {
        result.violation = Violation::WildPointer;
        return result;
    }
    auto it = caps.find(pid);
    if (it == caps.end()) {
        result.violation = Violation::WildPointer;
        return result;
    }
    const Capability &cap = it->second;
    if (!cap.valid()) {
        result.violation = Violation::UseAfterFree;
        return result;
    }
    if (!cap.contains(addr, size)) {
        result.violation = Violation::OutOfBounds;
        return result;
    }
    if (is_write && !cap.writable()) {
        result.violation = Violation::PermissionDenied;
        return result;
    }
    if (!is_write && !cap.readable()) {
        result.violation = Violation::PermissionDenied;
        return result;
    }
    return result;
}

const Capability *
CapabilityTable::find(Pid pid) const
{
    auto it = caps.find(pid);
    return it == caps.end() ? nullptr : &it->second;
}

namespace
{

Pid
searchByBase(const std::map<uint64_t, Pid> &index,
             const std::unordered_map<Pid, Capability> &caps,
             uint64_t addr)
{
    auto it = index.upper_bound(addr);
    if (it == index.begin())
        return NoPid;
    --it;
    auto cit = caps.find(it->second);
    if (cit == caps.end())
        return NoPid;
    const Capability &cap = cit->second;
    if (addr >= cap.base && addr < cap.base + cap.bounds)
        return it->second;
    return NoPid;
}

} // anonymous namespace

Pid
CapabilityTable::pidForAddress(uint64_t addr) const
{
    if (Pid pid = searchByBase(liveByBase, caps, addr))
        return pid;
    return searchByBase(freedByBase, caps, addr);
}

void
CapabilityTable::markInitialized(Pid pid, uint64_t addr, uint64_t size)
{
    if (!trackInit || pid == NoPid || pid == WildPid)
        return;
    auto cit = caps.find(pid);
    if (cit == caps.end() || !cit->second.valid())
        return;
    const Capability &cap = cit->second;
    if (addr < cap.base || addr >= cap.base + cap.bounds)
        return;
    uint64_t first_word = (addr - cap.base) / 8;
    uint64_t last_word = (addr + std::max<uint64_t>(size, 1) - 1 -
                          cap.base) / 8;
    auto &bits = initBits[pid];
    uint64_t need = (cap.bounds + 63) / 64 + 1;
    if (bits.size() < need)
        bits.resize(need, 0);
    for (uint64_t w = first_word; w <= last_word; ++w)
        bits[w / 64] |= 1ull << (w % 64);
}

void
CapabilityTable::markAllInitialized(Pid pid)
{
    if (!trackInit)
        return;
    auto cit = caps.find(pid);
    if (cit == caps.end())
        return;
    auto &bits = initBits[pid];
    bits.assign((cit->second.bounds + 63) / 64 + 1, ~0ull);
}

bool
CapabilityTable::isInitialized(Pid pid, uint64_t addr,
                               uint64_t size) const
{
    auto cit = caps.find(pid);
    if (cit == caps.end())
        return true;
    const Capability &cap = cit->second;
    auto bit = initBits.find(pid);
    if (bit == initBits.end())
        return false;
    const auto &bits = bit->second;
    uint64_t first_word = (addr - cap.base) / 8;
    uint64_t last_word =
        (addr + std::max<uint64_t>(size, 1) - 1 - cap.base) / 8;
    for (uint64_t w = first_word; w <= last_word; ++w) {
        if (w / 64 >= bits.size() ||
            !(bits[w / 64] & (1ull << (w % 64))))
            return false;
    }
    return true;
}

void
CapabilityTable::clear()
{
    caps.clear();
    liveByBase.clear();
    freedByBase.clear();
    initBits.clear();
    nextPid = 1;
    liveCount = 0;
}

} // namespace chex

#include "cap_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace chex
{

CapabilityTable::CapabilityTable() = default;

Pid
CapabilityTable::beginGeneration(uint64_t request_size,
                                 Violation *violation)
{
    if (violation)
        *violation = Violation::None;
    if (request_size > maxAllocSize) {
        if (violation)
            *violation = Violation::OversizeAlloc;
        return NoPid;
    }
    Pid pid = nextPid++;
    Capability cap;
    cap.bounds = static_cast<uint32_t>(request_size);
    cap.perms = CapBusy | CapRead | CapWrite | CapHeap;
    store.assign(pid, cap);
    return pid;
}

void
CapabilityTable::endGeneration(Pid pid, uint64_t base)
{
    Capability *cap = store.find(pid);
    if (!cap)
        return;
    cap->base = base;
    cap->perms &= ~CapBusy;
    if (base != 0) {
        cap->perms |= CapValid;
        liveByBase.assign(base, pid);
        ++liveCount;
    }
}

Violation
CapabilityTable::beginFree(Pid pid, uint64_t addr)
{
    if (pid == NoPid || pid == WildPid)
        return Violation::InvalidFree;
    Capability *cap = store.find(pid);
    if (!cap)
        return Violation::InvalidFree;
    if (!(cap->perms & CapHeap))
        return Violation::InvalidFree; // e.g. freeing a global
    if (!cap->valid())
        return Violation::DoubleFree;
    if (addr != cap->base)
        return Violation::InvalidFree; // freeing an interior pointer
    cap->perms |= CapBusy;
    return Violation::None;
}

void
CapabilityTable::endFree(Pid pid)
{
    Capability *cap = store.find(pid);
    if (!cap)
        return;
    bool was_valid = cap->valid();
    cap->perms &= ~(CapValid | CapBusy);
    if (was_valid) {
        liveByBase.erase(cap->base);
        freedByBase.assign(cap->base, pid);
        --liveCount;
    }
}

Pid
CapabilityTable::addGlobal(const std::string &name, uint64_t base,
                           uint64_t size)
{
    (void)name;
    Pid pid = nextPid++;
    Capability cap;
    cap.base = base;
    cap.bounds = static_cast<uint32_t>(size);
    cap.perms = CapValid | CapRead | CapWrite;
    store.assign(pid, cap);
    liveByBase.assign(base, pid);
    ++liveCount;
    return pid;
}

CheckResult
CapabilityTable::check(Pid pid, uint64_t addr, uint64_t size,
                       bool is_write) const
{
    CheckResult result;
    if (pid == NoPid)
        return result; // untracked pointer: no check to perform
    if (pid == WildPid) {
        result.violation = Violation::WildPointer;
        return result;
    }
    const Capability *cap = store.find(pid);
    if (!cap) {
        result.violation = Violation::WildPointer;
        return result;
    }
    if (!cap->valid()) {
        result.violation = Violation::UseAfterFree;
        return result;
    }
    if (!cap->contains(addr, size)) {
        result.violation = Violation::OutOfBounds;
        return result;
    }
    if (is_write && !cap->writable()) {
        result.violation = Violation::PermissionDenied;
        return result;
    }
    if (!is_write && !cap->readable()) {
        result.violation = Violation::PermissionDenied;
        return result;
    }
    return result;
}

const Capability *
CapabilityTable::find(Pid pid) const
{
    return store.find(pid);
}

namespace
{

Pid
searchByBase(const IntervalIndex &index,
             const PagedCapabilityStore &store, uint64_t addr)
{
    uint64_t base;
    Pid pid;
    if (!index.floor(addr, &base, &pid))
        return NoPid;
    const Capability *cap = store.find(pid);
    if (!cap)
        return NoPid;
    if (addr >= cap->base && addr < cap->base + cap->bounds)
        return pid;
    return NoPid;
}

} // anonymous namespace

Pid
CapabilityTable::pidForAddress(uint64_t addr) const
{
    if (Pid pid = searchByBase(liveByBase, store, addr))
        return pid;
    return searchByBase(freedByBase, store, addr);
}

void
CapabilityTable::markInitialized(Pid pid, uint64_t addr, uint64_t size)
{
    if (!trackInit || pid == NoPid || pid == WildPid)
        return;
    const Capability *cap = store.find(pid);
    if (!cap || !cap->valid())
        return;
    if (addr < cap->base || addr >= cap->base + cap->bounds)
        return;
    uint64_t first_word = (addr - cap->base) / 8;
    uint64_t last_word = (addr + std::max<uint64_t>(size, 1) - 1 -
                          cap->base) / 8;
    InitShadow &sh = initBits[pid];
    sh.words = std::max(sh.words, initWordsFor(*cap));
    sh.set.add(first_word, last_word + 1);
}

void
CapabilityTable::markAllInitialized(Pid pid)
{
    if (!trackInit)
        return;
    const Capability *cap = store.find(pid);
    if (!cap)
        return;
    // The old representation re-assigned the whole bitmap here, so
    // the shadow length snaps to the capability's size even if a
    // restored entry was longer.
    InitShadow &sh = initBits[pid];
    sh.words = initWordsFor(*cap);
    sh.set.clear();
    sh.set.add(0, sh.words * 64);
}

bool
CapabilityTable::isInitialized(Pid pid, uint64_t addr,
                               uint64_t size) const
{
    const Capability *cap = store.find(pid);
    if (!cap)
        return true;
    auto bit = initBits.find(pid);
    if (bit == initBits.end())
        return false;
    const InitShadow &sh = bit->second;
    uint64_t first_word = (addr - cap->base) / 8;
    uint64_t last_word =
        (addr + std::max<uint64_t>(size, 1) - 1 - cap->base) / 8;
    // Words past the shadow length read as uninitialized, exactly
    // like indexing past the old bitmap vector.
    if (first_word > last_word || last_word >= sh.words * 64)
        return false;
    return sh.set.covers(first_word, last_word + 1);
}

uint64_t
CapabilityTable::initShadowBytes() const
{
    uint64_t bytes = 0;
    for (const auto &[pid, sh] : initBits) {
        (void)pid;
        bytes += sizeof(InitShadow) + sh.set.storageBytes();
    }
    return bytes;
}

void
CapabilityTable::clear()
{
    store.clear();
    liveByBase.clear();
    freedByBase.clear();
    initBits.clear();
    nextPid = 1;
    liveCount = 0;
}

json::Value
CapabilityTable::saveState() const
{
    json::Value jcaps = json::Value::array();
    store.forEach([&](Pid pid, const Capability &cap) {
        jcaps.push(json::Value::object()
                       .set("pid", pid)
                       .set("base", cap.base)
                       .set("bounds", cap.bounds)
                       .set("perms", cap.perms));
    });

    // The interval indices are serialized verbatim rather than
    // rebuilt from the perms bits: on base collisions (e.g. a freed
    // block re-allocated at the same address) the index keeps the
    // most recent PID, which a rebuild from the capability store
    // could not reproduce deterministically.
    auto index_json = [](const IntervalIndex &index) {
        json::Value out = json::Value::array();
        index.forEach([&](uint64_t base, Pid pid) {
            json::Value pair = json::Value::array();
            pair.push(base);
            pair.push(pid);
            out.push(std::move(pair));
        });
        return out;
    };

    std::vector<Pid> init_pids;
    init_pids.reserve(initBits.size());
    for (const auto &[pid, sh] : initBits) {
        (void)sh;
        init_pids.push_back(pid);
    }
    std::sort(init_pids.begin(), init_pids.end());
    json::Value jinit = json::Value::array();
    for (Pid pid : init_pids) {
        const InitShadow &sh = initBits.at(pid);
        // Materialize the word bitmap the old representation held,
        // so the snapshot document stays byte-identical.
        std::vector<uint64_t> words(sh.words, 0);
        for (const auto &[lo, hi] : sh.set.items()) {
            uint64_t end = std::min<uint64_t>(hi, sh.words * 64);
            for (uint64_t w = lo; w < end; ++w)
                words[w / 64] |= 1ull << (w % 64);
        }
        json::Value jwords = json::Value::array();
        for (uint64_t w : words)
            jwords.push(w);
        jinit.push(json::Value::object()
                       .set("pid", pid)
                       .set("words", std::move(jwords)));
    }

    return json::Value::object()
        .set("caps", std::move(jcaps))
        .set("liveByBase", index_json(liveByBase))
        .set("freedByBase", index_json(freedByBase))
        .set("initBits", std::move(jinit))
        .set("nextPid", nextPid)
        .set("liveCount", liveCount);
}

bool
CapabilityTable::restoreState(const json::Value &v)
{
    if (!v.isObject())
        return false;
    const json::Value *jcaps = v.find("caps");
    const json::Value *jlive = v.find("liveByBase");
    const json::Value *jfreed = v.find("freedByBase");
    const json::Value *jinit = v.find("initBits");
    if (!jcaps || !jcaps->isArray() || !jlive || !jlive->isArray() ||
        !jfreed || !jfreed->isArray() || !jinit || !jinit->isArray()) {
        return false;
    }
    clear();
    for (const json::Value &je : jcaps->items()) {
        if (!je.isObject())
            return false;
        Capability cap;
        cap.base = json::getUint(je, "base", 0);
        cap.bounds = static_cast<uint32_t>(json::getUint(je, "bounds", 0));
        cap.perms = static_cast<uint32_t>(json::getUint(je, "perms", 0));
        store.assign(static_cast<Pid>(json::getUint(je, "pid", 0)),
                     cap);
    }
    auto restore_index = [](const json::Value &list,
                            IntervalIndex &index) {
        for (const json::Value &pair : list.items()) {
            if (!pair.isArray() || pair.size() != 2)
                return false;
            index.assign(pair.at(size_t(0)).asUint64(),
                         static_cast<Pid>(
                             pair.at(size_t(1)).asUint64()));
        }
        return true;
    };
    if (!restore_index(*jlive, liveByBase) ||
        !restore_index(*jfreed, freedByBase)) {
        return false;
    }
    for (const json::Value &je : jinit->items()) {
        if (!je.isObject())
            return false;
        const json::Value *jwords = je.find("words");
        if (!jwords || !jwords->isArray())
            return false;
        InitShadow sh;
        sh.words = jwords->size();
        // Recover merged intervals from the serialized bitmap.
        uint64_t run_start = 0;
        bool in_run = false;
        for (uint64_t wi = 0; wi < sh.words; ++wi) {
            uint64_t word = jwords->at(wi).asUint64();
            for (uint64_t b = 0; b < 64; ++b) {
                bool set = word & (1ull << b);
                uint64_t idx = wi * 64 + b;
                if (set && !in_run) {
                    run_start = idx;
                    in_run = true;
                } else if (!set && in_run) {
                    sh.set.add(run_start, idx);
                    in_run = false;
                }
            }
        }
        if (in_run)
            sh.set.add(run_start, sh.words * 64);
        initBits[static_cast<Pid>(json::getUint(je, "pid", 0))] =
            std::move(sh);
    }
    nextPid = static_cast<Pid>(json::getUint(v, "nextPid", 1));
    liveCount = json::getUint(v, "liveCount", 0);
    return true;
}

} // namespace chex

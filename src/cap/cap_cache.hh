/**
 * @file
 * The in-processor capability cache (Section IV-B): a small fully
 * associative cache of currently-in-use capabilities, exploiting the
 * observation (Figure 3) that programs actively use only a handful
 * of allocations at a time. Accessed only by capability-check
 * micro-ops, so it sits off the critical path of ordinary loads.
 */

#ifndef CHEX_CAP_CAP_CACHE_HH
#define CHEX_CAP_CAP_CACHE_HH

#include "cap/capability.hh"
#include "mem/cache.hh"

namespace chex
{

/** Fully associative PID-indexed capability cache. */
class CapabilityCache
{
  public:
    /** @param entries Capacity (paper default: 64). */
    explicit CapabilityCache(unsigned entries = 64);

    /**
     * Look up @p pid for a capCheck; on a miss the entry is filled
     * (the shadow-table walk is charged by the caller).
     * @return true on hit.
     */
    bool lookup(Pid pid);

    /**
     * Cross-core invalidation on free (Section IV-C): drop the
     * entry so the freed capability's valid bit cannot be stale.
     */
    void invalidate(Pid pid);

    uint64_t hits() const { return cache.hits(); }
    uint64_t misses() const { return cache.misses(); }
    uint64_t accesses() const { return cache.accesses(); }
    double missRate() const { return cache.missRate(); }
    uint64_t invalidationsSent() const { return _invalidationsSent; }

    unsigned capacity() const { return cache.capacity(); }

    /** Hit latency in cycles (pipelined, off the load critical path). */
    static constexpr unsigned HitLatency = 2;

    void clear() { cache.clear(); }

    /** @{ @name Snapshot serialization (chex-snapshot-v1) */
    json::Value
    saveState() const
    {
        return json::Value::object()
            .set("cache", cache.saveState())
            .set("invalidationsSent", _invalidationsSent);
    }

    bool
    restoreState(const json::Value &v)
    {
        if (!v.isObject())
            return false;
        const json::Value *c = v.find("cache");
        if (!c || !cache.restoreState(*c))
            return false;
        _invalidationsSent = json::getUint(v, "invalidationsSent", 0);
        return true;
    }
    /** @} */

  private:
    SetAssocCache cache;
    uint64_t _invalidationsSent = 0;
};

} // namespace chex

#endif // CHEX_CAP_CAP_CACHE_HH

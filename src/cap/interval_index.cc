#include "interval_index.hh"

#include <algorithm>
#include <cstring>

namespace chex
{

size_t
IntervalIndex::chunkFor(uint64_t base) const
{
    // Last chunk with minimum <= base; keys below every minimum go
    // into chunk 0 (its minimum drops on insert).
    auto it = std::upper_bound(chunkMin.begin(), chunkMin.end(), base);
    if (it == chunkMin.begin())
        return 0;
    return static_cast<size_t>(it - chunkMin.begin()) - 1;
}

unsigned
IntervalIndex::slotLowerBound(const Chunk &c, uint64_t base)
{
    return static_cast<unsigned>(
        std::lower_bound(c.bases, c.bases + c.n, base) - c.bases);
}

std::unique_ptr<IntervalIndex::Chunk>
IntervalIndex::takeChunk()
{
    if (!pool.empty()) {
        std::unique_ptr<Chunk> c = std::move(pool.back());
        pool.pop_back();
        c->n = 0;
        return c;
    }
    return std::make_unique<Chunk>();
}

void
IntervalIndex::releaseChunk(std::unique_ptr<Chunk> c)
{
    pool.push_back(std::move(c));
}

void
IntervalIndex::assign(uint64_t base, Pid pid)
{
    if (chunks.empty()) {
        chunks.push_back(takeChunk());
        chunkMin.push_back(base);
        Chunk &c = *chunks[0];
        c.bases[0] = base;
        c.pids[0] = pid;
        c.n = 1;
        count = 1;
        return;
    }
    size_t ci = chunkFor(base);
    Chunk *c = chunks[ci].get();
    unsigned slot = slotLowerBound(*c, base);
    if (slot < c->n && c->bases[slot] == base) {
        c->pids[slot] = pid; // overwrite, like map operator[]
        return;
    }
    if (c->n == ChunkCap) {
        // Split into two half-full chunks, then re-aim.
        std::unique_ptr<Chunk> right = takeChunk();
        constexpr unsigned Half = ChunkCap / 2;
        std::memcpy(right->bases, c->bases + Half, Half * sizeof(uint64_t));
        std::memcpy(right->pids, c->pids + Half, Half * sizeof(Pid));
        right->n = Half;
        c->n = Half;
        chunkMin.insert(chunkMin.begin() + ci + 1, right->bases[0]);
        chunks.insert(chunks.begin() + ci + 1, std::move(right));
        if (base >= chunkMin[ci + 1]) {
            ++ci;
            slot -= Half;
        }
        c = chunks[ci].get();
    }
    std::memmove(c->bases + slot + 1, c->bases + slot,
                 (c->n - slot) * sizeof(uint64_t));
    std::memmove(c->pids + slot + 1, c->pids + slot,
                 (c->n - slot) * sizeof(Pid));
    c->bases[slot] = base;
    c->pids[slot] = pid;
    ++c->n;
    if (slot == 0)
        chunkMin[ci] = base;
    ++count;
}

bool
IntervalIndex::erase(uint64_t base)
{
    if (chunks.empty())
        return false;
    size_t ci = chunkFor(base);
    Chunk &c = *chunks[ci];
    unsigned slot = slotLowerBound(c, base);
    if (slot >= c.n || c.bases[slot] != base)
        return false;
    std::memmove(c.bases + slot, c.bases + slot + 1,
                 (c.n - slot - 1) * sizeof(uint64_t));
    std::memmove(c.pids + slot, c.pids + slot + 1,
                 (c.n - slot - 1) * sizeof(Pid));
    --c.n;
    --count;
    if (c.n == 0) {
        releaseChunk(std::move(chunks[ci]));
        chunks.erase(chunks.begin() + ci);
        chunkMin.erase(chunkMin.begin() + ci);
        return true;
    }
    if (slot == 0)
        chunkMin[ci] = c.bases[0];
    // Keep occupancy bounded under churn: fold a drained chunk into
    // its successor when both comfortably fit in one.
    if (c.n < ChunkCap / 4 && ci + 1 < chunks.size() &&
        c.n + chunks[ci + 1]->n <= ChunkCap - ChunkCap / 4) {
        Chunk &next = *chunks[ci + 1];
        std::memcpy(c.bases + c.n, next.bases,
                    next.n * sizeof(uint64_t));
        std::memcpy(c.pids + c.n, next.pids, next.n * sizeof(Pid));
        c.n += next.n;
        releaseChunk(std::move(chunks[ci + 1]));
        chunks.erase(chunks.begin() + ci + 1);
        chunkMin.erase(chunkMin.begin() + ci + 1);
    }
    return true;
}

const Pid *
IntervalIndex::lookup(uint64_t base) const
{
    if (chunks.empty())
        return nullptr;
    const Chunk &c = *chunks[chunkFor(base)];
    unsigned slot = slotLowerBound(c, base);
    if (slot < c.n && c.bases[slot] == base)
        return &c.pids[slot];
    return nullptr;
}

bool
IntervalIndex::floor(uint64_t addr, uint64_t *base, Pid *pid) const
{
    if (chunks.empty())
        return false;
    size_t ci = chunkFor(addr);
    const Chunk &c = *chunks[ci];
    // First slot with base > addr; the floor is the one before it.
    unsigned slot = static_cast<unsigned>(
        std::upper_bound(c.bases, c.bases + c.n, addr) - c.bases);
    if (slot == 0)
        return false; // addr < every base (only possible in chunk 0)
    *base = c.bases[slot - 1];
    *pid = c.pids[slot - 1];
    return true;
}

void
IntervalIndex::clear()
{
    for (auto &c : chunks)
        pool.push_back(std::move(c));
    chunks.clear();
    chunkMin.clear();
    count = 0;
}

} // namespace chex

/**
 * @file
 * Sorted base-address -> PID index for the capability table's
 * exhaustive search, replacing the node-per-entry std::map. Entries
 * live in fixed-capacity sorted chunks (a two-level B-tree, leaves
 * only): locating a key is a binary search over the chunk-minimum
 * summary vector followed by a binary search inside one contiguous
 * chunk — two cache-friendly probes instead of a red-black pointer
 * chase — and insertion is a bounded memmove inside a chunk, with a
 * split every ~half-chunk of growth instead of a heap allocation per
 * capability. Emptied and split-off chunks are recycled through a
 * pool, kremlin MemMapPool-style.
 *
 * Semantics mirror the std::map the capability table used:
 * assign() overwrites on an equal base (a freed block re-allocated
 * at the same address keeps the most recent PID), erase() is exact,
 * and floor() matches upper_bound()-then-decrement.
 */

#ifndef CHEX_CAP_INTERVAL_INDEX_HH
#define CHEX_CAP_INTERVAL_INDEX_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cap/capability.hh"

namespace chex
{

/** Pooled-chunk sorted map: allocation base address -> PID. */
class IntervalIndex
{
  public:
    /** Entries per chunk; a chunk is ~1.5 KiB of contiguous data. */
    static constexpr unsigned ChunkCap = 128;
    /** Accounted bytes per chunk (bases + pids + occupancy). */
    static constexpr uint64_t ChunkBytes =
        ChunkCap * (8 + 4) + 8;

    /** Insert @p base -> @p pid, overwriting an equal base. */
    void assign(uint64_t base, Pid pid);

    /** Erase the entry with exactly @p base; false if absent. */
    bool erase(uint64_t base);

    /** Exact lookup; nullptr if @p base is not present. */
    const Pid *lookup(uint64_t base) const;

    /**
     * Greatest entry with base <= @p addr (the map idiom
     * upper_bound(addr) then --it). False if none.
     */
    bool floor(uint64_t addr, uint64_t *base, Pid *pid) const;

    size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Chunks currently in use (excludes the pool). */
    uint64_t chunkCount() const { return chunks.size(); }

    /** Bytes of chunk storage backing live entries. */
    uint64_t
    storageBytes() const
    {
        return chunks.size() * ChunkBytes;
    }

    /** Drop everything; chunks are retained in the pool. */
    void clear();

    /** Ascending-base iteration. */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (const auto &c : chunks)
            for (unsigned i = 0; i < c->n; ++i)
                fn(c->bases[i], c->pids[i]);
    }

  private:
    struct Chunk
    {
        uint64_t bases[ChunkCap];
        Pid pids[ChunkCap];
        unsigned n = 0;
    };

    /**
     * Index of the chunk whose key range contains @p base: the last
     * chunk with minimum <= base, clamped to 0 so keys below every
     * minimum still land in the first chunk.
     */
    size_t chunkFor(uint64_t base) const;

    /** First slot in @p c with bases[slot] >= base. */
    static unsigned slotLowerBound(const Chunk &c, uint64_t base);

    std::unique_ptr<Chunk> takeChunk();
    void releaseChunk(std::unique_ptr<Chunk> c);

    /** Ordered chunks; chunkMin[i] caches chunks[i]->bases[0]. */
    std::vector<std::unique_ptr<Chunk>> chunks;
    std::vector<uint64_t> chunkMin;
    std::vector<std::unique_ptr<Chunk>> pool;
    size_t count = 0;
};

} // namespace chex

#endif // CHEX_CAP_INTERVAL_INDEX_HH

#include "cap_cache.hh"

namespace chex
{

CapabilityCache::CapabilityCache(unsigned entries)
    : cache("capCache", 1, entries)
{
}

bool
CapabilityCache::lookup(Pid pid)
{
    if (cache.access(pid))
        return true;
    cache.insert(pid);
    return false;
}

void
CapabilityCache::invalidate(Pid pid)
{
    cache.invalidate(pid);
    ++_invalidationsSent;
}

} // namespace chex

#include "capability.hh"

namespace chex
{

const char *
violationName(Violation v)
{
    switch (v) {
      case Violation::None: return "none";
      case Violation::OutOfBounds: return "out-of-bounds";
      case Violation::UseAfterFree: return "use-after-free";
      case Violation::DoubleFree: return "double-free";
      case Violation::InvalidFree: return "invalid-free";
      case Violation::PermissionDenied: return "permission-denied";
      case Violation::WildPointer: return "wild-pointer";
      case Violation::OversizeAlloc: return "oversize-alloc";
      case Violation::UninitializedRead: return "uninitialized-read";
      default: return "???";
    }
}

} // namespace chex

/**
 * @file
 * Enforcement-variant definitions: the design points compared in
 * Figure 6 — the insecure baseline, the hardware-only scheme
 * (capability checks folded into the load/store unit), the binary
 * translation-driven scheme (macro-level instrumentation of every
 * register-memory instruction), the microcode-level always-on
 * scheme, the prediction-driven microcode scheme (the CHEx86
 * default), and a model of LLVM AddressSanitizer (the software
 * state of the art the paper compares against).
 */

#ifndef CHEX_UCODE_VARIANT_HH
#define CHEX_UCODE_VARIANT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "isa/uops.hh"

namespace chex
{

/** The six evaluated enforcement schemes. */
enum class VariantKind : uint8_t
{
    Baseline,            // insecure
    HardwareOnly,        // checks in the LSU, no instrumentation
    BinaryTranslation,   // macro-level instrumentation
    MicrocodeAlwaysOn,   // capCheck on every load/store micro-op
    MicrocodePrediction, // on-demand, prediction-driven (default)
    Asan,                // AddressSanitizer model
};

/** Printable variant name (Figure 6 legend). */
const char *variantName(VariantKind kind);

/**
 * Reverse of variantName, for reconstructing specs from report rows.
 * Returns false when @p name is not a known variant name.
 */
bool variantFromName(const std::string &name, VariantKind *out);

/** True for the variants that use capability machinery. */
constexpr bool
usesCapabilities(VariantKind kind)
{
    return kind == VariantKind::HardwareOnly ||
           kind == VariantKind::BinaryTranslation ||
           kind == VariantKind::MicrocodeAlwaysOn ||
           kind == VariantKind::MicrocodePrediction;
}

/** A half-open PC range marked security-critical. */
struct CodeRegion
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool contains(uint64_t pc) const { return pc >= lo && pc < hi; }
};

/** Variant configuration. */
struct VariantConfig
{
    VariantKind kind = VariantKind::MicrocodePrediction;

    /** Stop the simulated program at the first flagged violation. */
    bool haltOnViolation = true;

    /**
     * Context-sensitive enforcement: when non-empty, capCheck
     * micro-ops are injected only for dereferences inside these
     * regions (allocations are always tracked). Empty = protect
     * everything.
     */
    std::vector<CodeRegion> criticalRegions;

    /** Binary-translation warmup cost per new static instruction. */
    unsigned btTranslationCycles = 40;

    /** ASan model: shadow-memory base in the simulated VA space. */
    uint64_t asanShadowBase = 0x7fff8000ull << 16;

    bool
    pcIsCritical(uint64_t pc) const
    {
        if (criticalRegions.empty())
            return true;
        for (const auto &r : criticalRegions)
            if (r.contains(pc))
                return true;
        return false;
    }
};

/**
 * A synthetic macro-instruction inserted by macro-level
 * instrumentation (binary translation / ASan). Consumes a fetch
 * slot like a real instruction.
 */
struct SyntheticMacro
{
    std::vector<StaticUop> uops;
};

/**
 * The AddressSanitizer check sequence for one memory operand:
 *   lea   t1, [mem]          ; recompute the address
 *   shr   t1, 3              ; shadow index
 *   mov   t2, [t1 + shadowBase] (byte load)
 *   cmp   t2, 0 -> t2        ; poisoned? (branch folded; always
 *                              well-predicted in violation-free runs)
 * Modelled as three synthetic macros totalling four micro-ops.
 */
std::vector<SyntheticMacro> asanCheckSequence(const MemOperand &mem,
                                              uint64_t shadow_base);

/**
 * In-place asanCheckSequence: fills @p macros on first use and
 * afterwards only re-patches the fields that vary per call (the
 * memory operand and shadow base). The instrumentation loop runs
 * once per protected memory macro-op, and rebuilding the vectors
 * from scratch dominated its cost.
 */
void asanCheckSequenceInto(std::vector<SyntheticMacro> &macros,
                           const MemOperand &mem, uint64_t shadow_base);

/**
 * The binary-translation check: one extra macro-instruction using a
 * secure ISA extension —
 *   lea      t1, [mem]
 *   capcheck t1
 */
SyntheticMacro btCheckSequence(const MemOperand &mem);

/** In-place btCheckSequence (see asanCheckSequenceInto). */
void btCheckSequenceInto(SyntheticMacro &macro, const MemOperand &mem);

} // namespace chex

#endif // CHEX_UCODE_VARIANT_HH

#include "msr.hh"

namespace chex
{

void
MsrFile::upsert(std::vector<Registration> &regs, uint64_t addr,
                IntrinsicKind kind)
{
    for (Registration &r : regs) {
        if (r.addr == addr) {
            r.kind = kind;
            return;
        }
    }
    regs.push_back({addr, kind});
}

bool
MsrFile::registerFunction(IntrinsicKind kind, uint64_t entry_addr,
                          uint64_t exit_addr)
{
    if (entries.size() >= MaxRegistered)
        return false;
    upsert(entries, entry_addr, kind);
    upsert(exits, exit_addr, kind);
    return true;
}

std::optional<IntrinsicKind>
MsrFile::entryAt(uint64_t addr) const
{
    return findIn(entries, addr);
}

std::optional<IntrinsicKind>
MsrFile::exitAt(uint64_t addr) const
{
    return findIn(exits, addr);
}

void
MsrFile::clear()
{
    entries.clear();
    exits.clear();
}

} // namespace chex

#include "msr.hh"

namespace chex
{

bool
MsrFile::registerFunction(IntrinsicKind kind, uint64_t entry_addr,
                          uint64_t exit_addr)
{
    if (entries.size() >= MaxRegistered)
        return false;
    entries[entry_addr] = kind;
    exits[exit_addr] = kind;
    return true;
}

std::optional<IntrinsicKind>
MsrFile::entryAt(uint64_t addr) const
{
    auto it = entries.find(addr);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

std::optional<IntrinsicKind>
MsrFile::exitAt(uint64_t addr) const
{
    auto it = exits.find(addr);
    if (it == exits.end())
        return std::nullopt;
    return it->second;
}

void
MsrFile::clear()
{
    entries.clear();
    exits.clear();
}

} // namespace chex

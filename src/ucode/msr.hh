/**
 * @file
 * The model-specific-register file used to configure CHEx86 at
 * process scheduling time (Section IV-C): the OS kernel registers
 * the entry and exit points of the process's heap-management
 * functions (with their argument signatures implied by the function
 * kind) so the microcode customization unit can intercept
 * allocation and de-allocation events. There is a model-specific
 * limit on how many entry/exit pairs can be registered per process;
 * the MSRs are saved/restored on context switch (not modelled).
 */

#ifndef CHEX_UCODE_MSR_HH
#define CHEX_UCODE_MSR_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "isa/insts.hh"

namespace chex
{

/** Registered heap-management function interception points. */
class MsrFile
{
  public:
    /** Model-specific registration limit. */
    static constexpr unsigned MaxRegistered = 16;

    /**
     * Register a heap function's entry and exit instruction
     * addresses (privileged wrmsr). @return false if the
     * model-specific limit is exhausted.
     */
    bool registerFunction(IntrinsicKind kind, uint64_t entry_addr,
                          uint64_t exit_addr);

    /** Kind registered with entry point @p addr, if any. */
    std::optional<IntrinsicKind> entryAt(uint64_t addr) const;

    /** Kind registered with exit point @p addr, if any. */
    std::optional<IntrinsicKind> exitAt(uint64_t addr) const;

    unsigned registeredCount() const
    {
        return static_cast<unsigned>(entries.size());
    }

    void clear();

  private:
    // entryAt()/exitAt() run twice per macro-instruction; with at
    // most MaxRegistered (16) registrations, a linear scan over a
    // contiguous vector beats hashing into an unordered_map.
    struct Registration
    {
        uint64_t addr;
        IntrinsicKind kind;
    };

    static std::optional<IntrinsicKind>
    findIn(const std::vector<Registration> &regs, uint64_t addr)
    {
        for (const Registration &r : regs)
            if (r.addr == addr)
                return r.kind;
        return std::nullopt;
    }

    static void upsert(std::vector<Registration> &regs, uint64_t addr,
                       IntrinsicKind kind);

    std::vector<Registration> entries;
    std::vector<Registration> exits;
};

} // namespace chex

#endif // CHEX_UCODE_MSR_HH

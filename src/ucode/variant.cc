#include "variant.hh"

namespace chex
{

const char *
variantName(VariantKind kind)
{
    switch (kind) {
      case VariantKind::Baseline: return "Insecure BaseLine";
      case VariantKind::HardwareOnly: return "CHEx86: Hardware Only";
      case VariantKind::BinaryTranslation:
        return "CHEx86: Binary Translation";
      case VariantKind::MicrocodeAlwaysOn:
        return "CHEx86: Micro-code Level - Always On";
      case VariantKind::MicrocodePrediction:
        return "CHEx86: Micro-code Prediction Driven";
      case VariantKind::Asan: return "ASan";
      default: return "???";
    }
}

bool
variantFromName(const std::string &name, VariantKind *out)
{
    static const VariantKind all[] = {
        VariantKind::Baseline,          VariantKind::HardwareOnly,
        VariantKind::BinaryTranslation, VariantKind::MicrocodeAlwaysOn,
        VariantKind::MicrocodePrediction, VariantKind::Asan,
    };
    for (VariantKind kind : all) {
        if (name == variantName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

std::vector<SyntheticMacro>
asanCheckSequence(const MemOperand &mem, uint64_t shadow_base)
{
    std::vector<SyntheticMacro> macros;
    asanCheckSequenceInto(macros, mem, shadow_base);
    return macros;
}

void
asanCheckSequenceInto(std::vector<SyntheticMacro> &macros,
                      const MemOperand &mem, uint64_t shadow_base)
{
    if (!macros.empty()) {
        // Structure already built: only the memory operand and the
        // shadow displacement vary between calls.
        macros[0].uops[0].mem = mem;
        macros[2].uops[0].mem.disp = static_cast<int64_t>(shadow_base);
        return;
    }
    macros.resize(4);

    // lea t1, [mem]
    StaticUop lea;
    lea.type = UopType::Lea;
    lea.dst = T1;
    lea.mem = mem;
    lea.hasMem = true;
    lea.synthetic = true;
    macros[0].uops.push_back(lea);

    // shr t1, 3
    StaticUop shr;
    shr.type = UopType::IntAlu;
    shr.op = AluOp::Shr;
    shr.dst = T1;
    shr.src1 = T1;
    shr.imm = 3;
    shr.useImm = true;
    shr.synthetic = true;
    macros[1].uops.push_back(shr);

    // mov t2, byte [t1 + shadowBase]
    StaticUop ld;
    ld.type = UopType::Load;
    ld.dst = T2;
    ld.mem.base = T1;
    ld.mem.disp = static_cast<int64_t>(shadow_base);
    ld.hasMem = true;
    ld.memSize = 1;
    ld.synthetic = true;
    macros[2].uops.push_back(ld);

    // cmp t2, 0 (result to t2, keeping the program's FLAGS intact)
    StaticUop cmp;
    cmp.type = UopType::IntAlu;
    cmp.op = AluOp::Cmp;
    cmp.dst = T2;
    cmp.src1 = T2;
    cmp.imm = 0;
    cmp.useImm = true;
    cmp.synthetic = true;
    macros[2].uops.push_back(cmp);

    // jne __asan_report (never taken in violation-free runs, but a
    // real instruction occupying fetch/issue/BTB resources).
    StaticUop jne;
    jne.type = UopType::Branch;
    jne.cc = CondCode::NE;
    jne.src1 = T2;
    jne.synthetic = true;
    macros[3].uops.push_back(jne);
}

SyntheticMacro
btCheckSequence(const MemOperand &mem)
{
    SyntheticMacro macro;
    btCheckSequenceInto(macro, mem);
    return macro;
}

void
btCheckSequenceInto(SyntheticMacro &macro, const MemOperand &mem)
{
    if (!macro.uops.empty()) {
        macro.uops[0].mem = mem;
        return;
    }

    StaticUop lea;
    lea.type = UopType::Lea;
    lea.dst = T1;
    lea.mem = mem;
    lea.hasMem = true;
    lea.synthetic = true;
    macro.uops.push_back(lea);

    StaticUop check;
    check.type = UopType::CapCheck;
    check.src1 = T1;
    check.synthetic = true;
    macro.uops.push_back(check);
}

} // namespace chex

/**
 * @file
 * The synthetic-workload generator: builds a runnable program whose
 * allocation volume, live set, pointer intensity, spill/reload
 * behaviour, temporal pointer-access pattern, FP mix, and
 * branchiness follow a BenchmarkProfile — the simulated stand-in
 * for compiling and SimPointing the real SPEC/PARSEC binaries.
 *
 * Shape of the generated program:
 *   - a global pointer array `bufs[maxLive]` (every slot write is a
 *     spilled-pointer alias; every slot read is a reload),
 *   - a data-driven access schedule following the profile's
 *     Table II pattern,
 *   - an allocation prologue, optional pointer-chase linking,
 *   - a main loop that reloads a scheduled buffer pointer,
 *     dereferences it (checked accesses), chases links, does FP and
 *     scalar work, and periodically frees + reallocates a slot to
 *     reach the profile's total allocation count.
 */

#ifndef CHEX_WORKLOAD_GENERATOR_HH
#define CHEX_WORKLOAD_GENERATOR_HH

#include <cstdint>

#include "isa/program.hh"
#include "workload/profiles.hh"

namespace chex
{

/** Build the synthetic twin of @p profile. */
Program generateWorkload(const BenchmarkProfile &profile,
                         uint64_t seed = 1);

/**
 * A minimal pointer-workout program (used by quickstart/examples):
 * allocates @p buffers buffers, writes and reads each, frees them,
 * and exits.
 */
Program generateSmokeProgram(unsigned buffers = 4,
                             uint64_t buffer_size = 256);

} // namespace chex

#endif // CHEX_WORKLOAD_GENERATOR_HH

/**
 * @file
 * Benchmark profiles: per-benchmark parameterizations of the C/C++
 * SPEC CPU2017 and PARSEC 2.1 applications the paper evaluates.
 *
 * The paper's own characterization drives the numbers: Figure 3
 * (total allocations >> max live >> allocations-in-use, spanning
 * orders of magnitude, with xalancbmk/perlbench allocation-heavy and
 * lbm/deepsjeng allocation-light), Table II / Section V-B (dominant
 * temporal pointer-access patterns: "Constant" for sjeng and lbm,
 * "Batch + Stride" strongest in perlbench, pointer-chasing in mcf),
 * Section V-C (spilled-pointer reloads are ~2.5 % of memory
 * references), and Figure 6's identification of mcf, xalancbmk, and
 * leela as the pointer-intensive outliers. Everything is scaled
 * ~1000x down from SimPoint scale so a run takes well under a
 * minute; relative ordering across benchmarks is preserved.
 */

#ifndef CHEX_WORKLOAD_PROFILES_HH
#define CHEX_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/patterns.hh"

namespace chex
{

/** Parameterization of one benchmark's synthetic twin. */
struct BenchmarkProfile
{
    std::string name;
    bool isParsec = false;

    /** @{ @name Allocation behaviour (Figure 3, scaled) */
    uint64_t totalAllocations = 100;
    uint64_t maxLiveBuffers = 50;    // initial working set
    unsigned buffersInUse = 8;       // schedule breadth per phase
    uint64_t allocSizeMin = 64;
    uint64_t allocSizeMax = 4096;
    /** @} */

    /** @{ @name Pointer behaviour */
    PatternKind dominantPattern = PatternKind::Stride;
    /** Fraction of iterations doing heap-pointer work (vs scalar). */
    double pointerIntensity = 0.5;
    /** Pointer-chasing links per buffer visit (mcf/canneal style). */
    unsigned chaseDepth = 0;
    /** Heap accesses per buffer visit. */
    unsigned accessesPerVisit = 6;
    /** @} */

    /** @{ @name Compute mix */
    double fpFraction = 0.1;        // FP ops per iteration fraction
    double branchiness = 0.3;       // data-dependent branch density
    /** @} */

    /** Outer loop iterations (controls run length). */
    uint64_t iterations = 20000;

    /** Schedule length before it repeats. */
    unsigned scheduleLength = 2048;

    /**
     * Copy with the outer iteration count divided by @p divisor,
     * clamped to the 200-iteration floor every harness uses for
     * smoke runs (CHEX_BENCH_SCALE, chex-campaign --scale).
     */
    BenchmarkProfile scaledBy(uint64_t divisor) const;
};

/** All 14 profiles (8 SPEC + 6 PARSEC), Figure 6 order. */
const std::vector<BenchmarkProfile> &allProfiles();

/**
 * The server profile family (beyond the paper): request/response
 * heap churn like a heavy-traffic service, with Zipf-skewed reuse
 * and live sets far past SPEC scale. Not part of allProfiles(), so
 * the paper's figures and the default campaign set are unchanged;
 * selectable by name or via the CLI's `server` family token.
 *
 *  - server-lite:  CI/smoke-sized churn (thousands live).
 *  - server-cache: in-memory-cache shape — a quarter-million live
 *    allocations, read-mostly, light turnover.
 *  - server-churn: the flagship — hundreds of thousands live,
 *    millions of total allocations over the full run.
 */
const std::vector<BenchmarkProfile> &serverProfiles();

/**
 * Sentinel profile carried by attack jobs (JobSpec::attack): the
 * exploit program replaces the synthetic workload, but replay and
 * spec hashing still need a named, reconstructible profile. Its
 * iteration count sits at the scaledBy() floor, so scaling is a
 * no-op and replayed attack specs hash identically. Not part of
 * allProfiles(); findProfileByName() resolves "attack" to it.
 */
const BenchmarkProfile &attackProfile();

/** Profile lookup by name; fatal if unknown. */
const BenchmarkProfile &profileByName(const std::string &name);

/**
 * Non-fatal profile lookup for reconstructing specs from external
 * input (report rows, CLI tokens); nullptr when unknown. Searches
 * the paper set and the server family.
 */
const BenchmarkProfile *findProfileByName(const std::string &name);

/** Just the SPEC (or PARSEC) subset. */
std::vector<BenchmarkProfile> specProfiles();
std::vector<BenchmarkProfile> parsecProfiles();

} // namespace chex

#endif // CHEX_WORKLOAD_PROFILES_HH

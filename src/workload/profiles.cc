#include "profiles.hh"

#include <algorithm>

#include "base/logging.hh"

namespace chex
{

namespace
{

std::vector<BenchmarkProfile>
buildProfiles()
{
    std::vector<BenchmarkProfile> v;

    auto add = [&](const char *name, bool parsec, uint64_t total_allocs,
                   uint64_t max_live, unsigned in_use,
                   PatternKind pattern, double ptr_intensity,
                   unsigned chase, unsigned accesses, double fp,
                   double branchy, uint64_t iters, uint64_t sz_min,
                   uint64_t sz_max) {
        BenchmarkProfile p;
        p.name = name;
        p.isParsec = parsec;
        p.totalAllocations = total_allocs;
        p.maxLiveBuffers = max_live;
        p.buffersInUse = in_use;
        p.dominantPattern = pattern;
        p.pointerIntensity = ptr_intensity;
        p.chaseDepth = chase;
        p.accessesPerVisit = accesses;
        p.fpFraction = fp;
        p.branchiness = branchy;
        p.iterations = iters;
        p.allocSizeMin = sz_min;
        p.allocSizeMax = sz_max;
        v.push_back(p);
    };

    // SPEC CPU2017 (C/C++), Figure 6 order.
    // perlbench: allocation-heavy interpreter; the paper notes it
    // exhibits the most "Batch + Stride" reload patterns.
    add("perlbench", false, 2600, 520, 40, PatternKind::BatchStride,
        0.70, 0, 6, 0.03, 0.40, 9000, 32, 2048);
    // gcc: many short-lived allocations, repeating pass structure.
    add("gcc", false, 2200, 450, 30, PatternKind::RepeatStride,
        0.62, 0, 5, 0.03, 0.45, 9000, 32, 4096);
    // mcf: few large buffers, intense pointer chasing (the paper's
    // worst-case pointer-intensive outlier).
    add("mcf", false, 120, 80, 24, PatternKind::Stride,
        0.92, 3, 8, 0.00, 0.35, 9000, 512, 16384);
    // xalancbmk: XML DOM churn — the most allocation-intensive.
    add("xalancbmk", false, 5200, 950, 56, PatternKind::BatchNoStride,
        0.85, 1, 7, 0.00, 0.40, 8000, 32, 1024);
    // deepsjeng: a few long-lived tables, repeated accesses.
    add("deepsjeng", false, 64, 40, 10, PatternKind::Constant,
        0.48, 0, 6, 0.02, 0.50, 11000, 1024, 32768);
    // leela: tree search over pooled nodes, repeating visit sets.
    add("leela", false, 340, 160, 16, PatternKind::RepeatNoStride,
        0.66, 1, 6, 0.08, 0.45, 10000, 64, 2048);
    // lbm: one big lattice, streamed — "Constant" reload pattern.
    add("lbm", false, 8, 6, 3, PatternKind::Constant,
        0.30, 0, 6, 0.60, 0.10, 12000, 16384, 65536);
    // nab: molecular dynamics, strided array-of-structs sweeps.
    add("nab", false, 380, 110, 12, PatternKind::Stride,
        0.42, 0, 6, 0.50, 0.20, 11000, 256, 8192);

    // PARSEC 2.1.
    // blackscholes: tiny allocation count, pure FP kernel.
    add("blackscholes", true, 12, 8, 4, PatternKind::Constant,
        0.22, 0, 4, 0.70, 0.10, 13000, 4096, 65536);
    // bodytrack: per-frame particle buffers, batch-strided.
    add("bodytrack", true, 620, 210, 20, PatternKind::BatchStride,
        0.40, 0, 5, 0.50, 0.25, 11000, 256, 8192);
    // fluidanimate: grid cells swept in order.
    add("fluidanimate", true, 900, 380, 28, PatternKind::Stride,
        0.45, 0, 6, 0.45, 0.20, 10000, 128, 4096);
    // freqmine: FP-tree mining, allocation-heavy, batched visits.
    add("freqmine", true, 1600, 680, 40, PatternKind::BatchStride,
        0.58, 1, 6, 0.05, 0.40, 9000, 32, 1024);
    // swaptions: small repeated simulation buffers, FP-heavy.
    add("swaptions", true, 180, 60, 10, PatternKind::RepeatStride,
        0.30, 0, 5, 0.65, 0.15, 12000, 512, 8192);
    // canneal: netlist elements accessed in random order — the
    // pointer-intensive PARSEC outlier.
    add("canneal", true, 3800, 1400, 48, PatternKind::RandomNoStride,
        0.78, 1, 7, 0.02, 0.35, 8000, 32, 512);

    return v;
}

std::vector<BenchmarkProfile>
buildServerProfiles()
{
    std::vector<BenchmarkProfile> v;

    auto add = [&](const char *name, uint64_t total_allocs,
                   uint64_t max_live, unsigned in_use,
                   unsigned accesses, double ptr_intensity,
                   uint64_t iters, uint64_t sz_min, uint64_t sz_max,
                   unsigned sched_len) {
        BenchmarkProfile p;
        p.name = name;
        p.isParsec = false;
        p.totalAllocations = total_allocs;
        p.maxLiveBuffers = max_live;
        p.buffersInUse = in_use;
        p.dominantPattern = PatternKind::Zipf;
        p.pointerIntensity = ptr_intensity;
        p.chaseDepth = 0;
        p.accessesPerVisit = accesses;
        p.fpFraction = 0.02;
        p.branchiness = 0.35;
        p.iterations = iters;
        p.allocSizeMin = sz_min;
        p.allocSizeMax = sz_max;
        p.scheduleLength = sched_len;
        v.push_back(p);
    };

    // CI/smoke-sized member: the same request/response churn shape,
    // small enough that a scaled campaign point finishes in seconds.
    add("server-lite", 30000, 3000, 64, 5, 0.75, 120000, 32, 512,
        2048);
    // In-memory cache: huge read-mostly live set, light turnover —
    // the table is dominated by live-capability lookups.
    add("server-cache", 450000, 250000, 1024, 7, 0.80, 800000, 32,
        1024, 8192);
    // The flagship: request/response churn with hundreds of
    // thousands of allocations in flight and millions created over
    // the run — the PICASSO-scale regime the paged table targets.
    add("server-churn", 2200000, 200000, 512, 5, 0.80, 8000000, 32,
        1024, 8192);

    return v;
}

} // anonymous namespace

BenchmarkProfile
BenchmarkProfile::scaledBy(uint64_t divisor) const
{
    BenchmarkProfile p = *this;
    p.iterations = std::max<uint64_t>(
        200, iterations / std::max<uint64_t>(1, divisor));
    return p;
}

const std::vector<BenchmarkProfile> &
allProfiles()
{
    static const std::vector<BenchmarkProfile> profiles =
        buildProfiles();
    return profiles;
}

const std::vector<BenchmarkProfile> &
serverProfiles()
{
    static const std::vector<BenchmarkProfile> profiles =
        buildServerProfiles();
    return profiles;
}

const BenchmarkProfile &
attackProfile()
{
    static const BenchmarkProfile profile = [] {
        BenchmarkProfile p;
        p.name = "attack";
        // The exploit program replaces the synthetic workload, so
        // none of the workload knobs matter; iterations sits at the
        // scaledBy() floor so any --scale divisor leaves the spec
        // (and therefore its hash) unchanged on replay.
        p.totalAllocations = 8;
        p.maxLiveBuffers = 8;
        p.buffersInUse = 4;
        p.allocSizeMin = 16;
        p.allocSizeMax = 512;
        p.pointerIntensity = 1.0;
        p.iterations = 200;
        p.scheduleLength = 8;
        return p;
    }();
    return profile;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    if (const BenchmarkProfile *p = findProfileByName(name))
        return *p;
    chex_fatal("unknown benchmark profile '%s'", name.c_str());
}

const BenchmarkProfile *
findProfileByName(const std::string &name)
{
    for (const auto &p : allProfiles())
        if (p.name == name)
            return &p;
    for (const auto &p : serverProfiles())
        if (p.name == name)
            return &p;
    if (name == attackProfile().name)
        return &attackProfile();
    return nullptr;
}

std::vector<BenchmarkProfile>
specProfiles()
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : allProfiles())
        if (!p.isParsec)
            out.push_back(p);
    return out;
}

std::vector<BenchmarkProfile>
parsecProfiles()
{
    std::vector<BenchmarkProfile> out;
    for (const auto &p : allProfiles())
        if (p.isParsec)
            out.push_back(p);
    return out;
}

} // namespace chex

#include "patterns.hh"

#include <algorithm>
#include <map>

#include "base/logging.hh"

namespace chex
{

const char *
patternName(PatternKind kind)
{
    switch (kind) {
      case PatternKind::Constant: return "Constant";
      case PatternKind::Stride: return "Stride";
      case PatternKind::BatchStride: return "Batch + Stride";
      case PatternKind::BatchNoStride: return "Batch + No Stride";
      case PatternKind::RepeatStride: return "Repeat + Stride";
      case PatternKind::RepeatNoStride: return "Repeat + No Stride";
      case PatternKind::RandomStride: return "Random + Stride";
      case PatternKind::RandomNoStride: return "Random + No Stride";
      case PatternKind::Zipf: return "Zipf";
      default: return "???";
    }
}

std::vector<unsigned>
generateSchedule(PatternKind kind, const PatternParams &params,
                 Random &rng)
{
    chex_assert(params.numBuffers > 0 && params.length > 0,
                "bad pattern params");
    std::vector<unsigned> out;
    out.reserve(params.length);
    unsigned n = params.numBuffers;
    unsigned start = static_cast<unsigned>(rng.uniform(0, n - 1));

    auto wrap = [&](int64_t v) {
        int64_t m = static_cast<int64_t>(n);
        return static_cast<unsigned>(((v % m) + m) % m);
    };

    switch (kind) {
      case PatternKind::Constant:
        out.assign(params.length, start);
        break;

      case PatternKind::Stride:
        for (unsigned i = 0; i < params.length; ++i)
            out.push_back(wrap(start +
                               static_cast<int64_t>(i) * params.stride));
        break;

      case PatternKind::BatchStride: {
        unsigned batches = (params.length + params.batchLen - 1) /
                           params.batchLen;
        for (unsigned b = 0; b < batches; ++b) {
            unsigned v = wrap(start +
                              static_cast<int64_t>(b) * params.stride);
            for (unsigned k = 0;
                 k < params.batchLen && out.size() < params.length; ++k)
                out.push_back(v);
        }
        break;
      }

      case PatternKind::BatchNoStride: {
        while (out.size() < params.length) {
            unsigned v = static_cast<unsigned>(rng.uniform(0, n - 1));
            for (unsigned k = 0;
                 k < params.batchLen && out.size() < params.length; ++k)
                out.push_back(v);
        }
        break;
      }

      case PatternKind::RepeatStride:
        for (unsigned i = 0; i < params.length; ++i) {
            unsigned phase = i % params.period;
            out.push_back(wrap(start + static_cast<int64_t>(phase) *
                                           params.stride));
        }
        break;

      case PatternKind::RepeatNoStride: {
        std::vector<unsigned> cycle;
        for (unsigned k = 0; k < params.period; ++k) {
            unsigned v;
            do {
                v = static_cast<unsigned>(rng.uniform(0, n - 1));
            } while (std::find(cycle.begin(), cycle.end(), v) !=
                         cycle.end() &&
                     cycle.size() < n);
            cycle.push_back(v);
        }
        for (unsigned i = 0; i < params.length; ++i)
            out.push_back(cycle[i % cycle.size()]);
        break;
      }

      case PatternKind::RandomStride: {
        int64_t v = start;
        for (unsigned i = 0; i < params.length; ++i) {
            out.push_back(wrap(v));
            // Small local steps: random order but striding locality.
            v += static_cast<int64_t>(rng.uniform(0, 6)) - 3;
        }
        break;
      }

      case PatternKind::Zipf: {
        // Harmonic (s=1) popularity weights over a random
        // rank->buffer permutation: rank r is drawn with weight
        // 1/(r+1), so a handful of hot buffers absorbs most visits
        // while the tail still gets touched — request/response reuse
        // in a heavy-traffic service.
        std::vector<double> cdf(n);
        double sum = 0.0;
        for (unsigned r = 0; r < n; ++r) {
            sum += 1.0 / static_cast<double>(r + 1);
            cdf[r] = sum;
        }
        std::vector<unsigned> slot(n);
        for (unsigned i = 0; i < n; ++i)
            slot[i] = i;
        for (unsigned i = n; i > 1; --i)
            std::swap(slot[i - 1],
                      slot[rng.uniform(0, i - 1)]);
        for (unsigned i = 0; i < params.length; ++i) {
            double u = rng.uniformReal() * sum;
            unsigned rank = static_cast<unsigned>(
                std::lower_bound(cdf.begin(), cdf.end(), u) -
                cdf.begin());
            out.push_back(slot[std::min(rank, n - 1)]);
        }
        break;
      }

      case PatternKind::RandomNoStride:
      default:
        for (unsigned i = 0; i < params.length; ++i)
            out.push_back(static_cast<unsigned>(rng.uniform(0, n - 1)));
        break;
    }
    return out;
}

namespace
{

struct Run
{
    uint64_t value;
    unsigned length;
};

std::vector<Run>
compressRuns(const std::vector<uint64_t> &seq)
{
    std::vector<Run> runs;
    for (uint64_t v : seq) {
        if (!runs.empty() && runs.back().value == v)
            ++runs.back().length;
        else
            runs.push_back({v, 1});
    }
    return runs;
}

} // anonymous namespace

PatternClassification
classifySequence(const std::vector<uint64_t> &seq)
{
    PatternClassification out;
    if (seq.size() < 4) {
        out.kind = PatternKind::Constant;
        out.confidence = 0.0;
        return out;
    }

    std::vector<Run> runs = compressRuns(seq);
    if (runs.size() == 1) {
        out.kind = PatternKind::Constant;
        out.confidence = 1.0;
        return out;
    }

    double avg_run =
        static_cast<double>(seq.size()) / static_cast<double>(runs.size());
    bool batched = avg_run >= 1.5;

    std::vector<int64_t> values;
    values.reserve(runs.size());
    for (const Run &r : runs)
        values.push_back(static_cast<int64_t>(r.value));

    // Periodicity over the run-compressed values (period 2..8).
    unsigned best_period = 0;
    double best_period_frac = 0.0;
    for (unsigned p = 2; p <= 8 && p * 2 <= values.size(); ++p) {
        unsigned match = 0, total = 0;
        for (size_t i = 0; i + p < values.size(); ++i) {
            ++total;
            if (values[i] == values[i + p])
                ++match;
        }
        double frac = total ? static_cast<double>(match) / total : 0.0;
        if (frac > best_period_frac) {
            best_period_frac = frac;
            best_period = p;
        }
        if (frac > 0.95)
            break;
    }
    bool periodic = best_period_frac > 0.9;

    // Successive-difference statistics.
    std::map<int64_t, unsigned> diff_counts;
    for (size_t i = 0; i + 1 < values.size(); ++i)
        ++diff_counts[values[i + 1] - values[i]];
    int64_t mode_diff = 0;
    unsigned mode_count = 0;
    unsigned small_diffs = 0;
    unsigned total_diffs = static_cast<unsigned>(values.size() - 1);
    for (const auto &[d, c] : diff_counts) {
        if (c > mode_count) {
            mode_count = c;
            mode_diff = d;
        }
        if (d != 0 && (d >= -8 && d <= 8))
            small_diffs += c;
    }
    double mode_frac =
        total_diffs ? static_cast<double>(mode_count) / total_diffs : 0.0;

    if (periodic) {
        // Strided within the period? Ignore the wrap position.
        unsigned consistent = 0, considered = 0;
        int64_t step = values.size() > 1 ? values[1] - values[0] : 0;
        for (size_t i = 0; i + 1 < values.size(); ++i) {
            if ((i + 1) % best_period == 0)
                continue; // wrap back to the period start
            ++considered;
            if (values[i + 1] - values[i] == step)
                ++consistent;
        }
        double frac = considered
                          ? static_cast<double>(consistent) / considered
                          : 0.0;
        out.period = best_period;
        out.confidence = best_period_frac;
        if (frac > 0.9 && step != 0) {
            out.kind = PatternKind::RepeatStride;
            out.stride = static_cast<int>(step);
        } else {
            out.kind = PatternKind::RepeatNoStride;
        }
        if (batched)
            out.batchLen = static_cast<unsigned>(avg_run + 0.5);
        return out;
    }

    if (mode_frac > 0.85 && mode_diff != 0) {
        out.stride = static_cast<int>(mode_diff);
        out.confidence = mode_frac;
        if (batched) {
            out.kind = PatternKind::BatchStride;
            out.batchLen = static_cast<unsigned>(avg_run + 0.5);
        } else {
            out.kind = PatternKind::Stride;
        }
        return out;
    }

    if (batched) {
        out.kind = PatternKind::BatchNoStride;
        out.batchLen = static_cast<unsigned>(avg_run + 0.5);
        out.confidence = avg_run / (avg_run + 1.0);
        return out;
    }

    double small_frac =
        total_diffs ? static_cast<double>(small_diffs) / total_diffs : 0.0;
    if (small_frac > 0.6) {
        out.kind = PatternKind::RandomStride;
        out.confidence = small_frac;
    } else {
        out.kind = PatternKind::RandomNoStride;
        out.confidence = 1.0 - small_frac;
    }
    return out;
}

} // namespace chex

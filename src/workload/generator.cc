#include "generator.hh"

#include <algorithm>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "isa/assembler.hh"

namespace chex
{

namespace
{

uint64_t
nameHash(const std::string &name)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : name)
        h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
    return h;
}

} // anonymous namespace

Program
generateWorkload(const BenchmarkProfile &p, uint64_t seed)
{
    Random rng(seed ^ nameHash(p.name));
    Assembler as;

    const unsigned n = static_cast<unsigned>(
        std::max<uint64_t>(p.maxLiveBuffers, 1));
    const unsigned w =
        std::min(std::max(p.buffersInUse, 1u), n);
    const unsigned sched_len = p.scheduleLength;
    const bool chase = p.chaseDepth > 0;
    const unsigned num_offsets =
        std::max<unsigned>(1, static_cast<unsigned>(p.allocSizeMin / 8) - 2);

    // Globals.
    uint64_t bufs_addr = as.addGlobal("bufs", n * 8ull);
    uint64_t sizes_addr = as.addGlobal("sizes", n * 8ull);
    uint64_t sched_addr = as.addGlobal("schedule", sched_len * 8ull);
    (void)bufs_addr;
    (void)sizes_addr;
    (void)sched_addr;
    uint64_t pool_bufs = as.poolSlotFor("bufs");
    uint64_t pool_sizes = as.poolSlotFor("sizes");
    uint64_t pool_sched = as.poolSlotFor("schedule");

    // Per-slot allocation sizes (8-aligned, heavy small-size skew).
    std::vector<uint64_t> sizes(n);
    for (auto &s : sizes) {
        s = roundUp(rng.skewedSize(p.allocSizeMin, p.allocSizeMax), 8);
        s = std::min(s, p.allocSizeMax);
    }
    as.setInitWords(sizes_addr, sizes);

    // Phase-structured schedule: each 256-entry phase dwells in a
    // w-wide window of slots and follows the dominant pattern
    // within it, so "allocations in use" per interval stays near w
    // while all n slots get touched across phases.
    std::vector<uint64_t> schedule(sched_len);
    const unsigned phase_len = std::min<unsigned>(256, sched_len);
    PatternParams pp;
    pp.numBuffers = w;
    pp.length = phase_len;
    pp.batchLen = 4;
    pp.period = std::min(4u, std::max(2u, w));
    pp.stride = 1;
    unsigned pos = 0, phase = 0;
    while (pos < sched_len) {
        unsigned base = (phase * std::max(1u, w / 2 + 1)) % n;
        auto pat = generateSchedule(p.dominantPattern, pp, rng);
        for (unsigned i = 0; i < phase_len && pos < sched_len; ++i)
            schedule[pos++] = (base + pat[i]) % n;
        ++phase;
    }
    as.setInitWords(sched_addr, schedule);

    // Turnover cadence to reach the profile's total allocations
    // (the turnover check runs once per 4x-unrolled loop trip).
    uint64_t loop_trips = std::max<uint64_t>(1, p.iterations / 4);
    uint64_t turnovers =
        p.totalAllocations > n ? p.totalAllocations - n : 0;
    uint64_t turnover_period =
        turnovers > 0 ? std::max<uint64_t>(1, loop_trips / turnovers)
                      : p.iterations + 1;

    const bool use_calloc = p.fpFraction > 0.4;
    const unsigned n_fp =
        static_cast<unsigned>(p.fpFraction * 10.0 + 0.5);
    const unsigned n_scalar =
        static_cast<unsigned>((1.0 - p.pointerIntensity) * 12.0 + 0.5);
    const unsigned n_branches =
        std::max<unsigned>(1,
                           static_cast<unsigned>(p.branchiness * 2 + 0.5));

    // ---- Prologue: pool loads ----
    as.movrm(R13, memRip(pool_sched));
    as.movrm(R14, memRip(pool_bufs));
    as.movrm(R10, memRip(pool_sizes));

    // Emits a store loop writing the first allocSizeMin bytes of the
    // buffer in RAX — programs initialize their data before use (and
    // the uninitialized-read extension relies on it).
    // Only the region the loop body actually touches needs
    // initialization (offsets up to ~8*(accessesPerVisit+2)).
    const uint64_t init_words =
        std::min<uint64_t>(p.allocSizeMin / 8,
                           p.accessesPerVisit + 4);
    auto emit_init_loop = [&]() {
        auto init = as.newLabel();
        auto init_done = as.newLabel();
        as.movri(RCX, 0);
        as.bind(init);
        as.cmpri(RCX, static_cast<int64_t>(init_words));
        as.jcc(CondCode::AE, init_done);
        as.movmr(memAt(RAX, 0, RCX, 8), RCX);
        as.addri(RCX, 1);
        as.jmp(init);
        as.bind(init_done);
    };

    // ---- Allocation loop ----
    auto alloc_loop = as.newLabel();
    as.movri(RBX, 0);
    as.bind(alloc_loop);
    if (use_calloc) {
        as.movrm(RSI, memAt(R10, 0, RBX, 8));
        as.movri(RDI, 1);
        as.call(IntrinsicKind::Calloc);
    } else {
        as.movrm(RDI, memAt(R10, 0, RBX, 8));
        as.call(IntrinsicKind::Malloc);
        emit_init_loop();
    }
    as.movmr(memAt(R14, 0, RBX, 8), RAX); // spill: alias created
    as.addri(RBX, 1);
    as.cmpri(RBX, n);
    as.jcc(CondCode::LT, alloc_loop);

    // ---- Chase-chain linking: bufs[i]->next = bufs[(i+1)%n] ----
    if (chase) {
        auto link_loop = as.newLabel();
        auto no_wrap = as.newLabel();
        as.movri(RBX, 0);
        as.bind(link_loop);
        as.movrm(RAX, memAt(R14, 0, RBX, 8));
        as.movrr(RCX, RBX);
        as.addri(RCX, 1);
        as.cmpri(RCX, n);
        as.jcc(CondCode::LT, no_wrap);
        as.movri(RCX, 0);
        as.bind(no_wrap);
        as.movrm(RDX, memAt(R14, 0, RCX, 8));
        as.movmr(memAt(RAX, 0), RDX); // heap-resident spilled pointer
        as.addri(RBX, 1);
        as.cmpri(RBX, n);
        as.jcc(CondCode::LT, link_loop);
    }

    // ---- Main loop registers ----
    // The body is unrolled (as -O3 compilers do): each unrolled copy
    // owns a distinct reload PC, so a Repeat-pattern schedule makes
    // every copy's reload near-Constant — exactly the structure of
    // the paper's Listings 1 and 2, where each call site touches its
    // own buffer.
    constexpr unsigned Unroll = 4;
    as.movri(R12, 0);                            // schedule cursor
    as.movri(R15, static_cast<int64_t>(
                      std::max<uint64_t>(1, p.iterations / Unroll)));
    as.movri(R8, static_cast<int64_t>(turnover_period));
    as.movri(R9, 0);                             // turnover victim
    as.movri(RDX, 1);                            // scalar accumulator

    auto main_loop = as.newLabel();
    as.bind(main_loop);

    for (unsigned copy = 0; copy < Unroll; ++copy) {
        // Scheduled pointer reload (the PC the predictor learns).
        as.movrm(RAX, memAt(R13, 0, R12, 8));
        as.movrm(RBX, memAt(R14, 0, RAX, 8));

        // Heap accesses through the tagged buffer pointer.
        for (unsigned k = 0; k < p.accessesPerVisit; ++k) {
            int64_t off = 8 + 8 * (k % num_offsets);
            switch (k % 4) {
              case 0:
                as.movrm(RCX, memAt(RBX, off));
                break;
              case 1:
                as.addri(RCX, static_cast<int64_t>(k) + 3);
                as.movmr(memAt(RBX, off), RCX);
                break;
              case 2:
                as.addmi(memAt(RBX, off), 1); // ld-op-st cracking
                break;
              default:
                as.addrm(RCX, memAt(RBX, off)); // ld-op cracking
                break;
            }
        }

        // Pointer chasing (mcf/canneal style): each hop reloads a
        // heap-resident spilled pointer.
        for (unsigned c = 0; c < p.chaseDepth; ++c) {
            as.movrm(RBX, memAt(RBX, 0));
            as.movrm(RCX, memAt(RBX, 8));
        }

        // Explicit pointer arithmetic: real code derives interior
        // pointers in registers (field addresses, alignment masks),
        // exercising the MOV/ADD/LEA/AND/SUB rules of Table I and
        // giving the hardware checker material to validate.
        as.movrr(RSI, RBX);            // MOV: ptr copy
        as.addri(RSI, 8);              // ADD: field pointer
        as.movrm(RCX, memAt(RSI, 0));  // deref via derived pointer
        as.lea(RSI, memAt(RBX, 16));   // LEA: &buf->field2
        as.movrm(RCX, memAt(RSI, 0));
        as.andri(RSI, -8);             // AND: alignment mask
        as.subri(RSI, 8);              // SUB: back one slot
        as.movrm(RCX, memAt(RSI, 0));

        // Data-dependent branches (on slowly varying value bits, as
        // in real mostly-predictable data-dependent control flow).
        for (unsigned b = 0; b < n_branches; ++b) {
            auto skip = as.newLabel();
            as.testri(RCX, 0x100ll << (b + copy));
            as.jcc(CondCode::EQ, skip);
            as.addri(RDX, 1);
            as.bind(skip);
        }

        // Floating-point block.
        if (n_fp > 0) {
            as.fcvtri(XMM0, RCX);
            for (unsigned f = 0; f < n_fp; ++f) {
                switch (f % 3) {
                  case 0:
                    as.faddrr(XMM1, XMM0);
                    break;
                  case 1:
                    as.fmulrr(XMM2, XMM1);
                    break;
                  default:
                    as.faddrr(XMM0, XMM2);
                    break;
                }
            }
            as.fmovmr(memAt(RBX, 8), XMM2); // FP store to the heap
        }

        // Scalar block: real programs spend most of their dynamic
        // instructions on scalar/control/stack work around the
        // pointer accesses.
        for (unsigned s = 0; s < 8 + n_scalar; ++s) {
            switch (s % 6) {
              case 0: as.addri(RDX, 3); break;
              case 1: as.imulri(RDX, 5); break;
              case 2: as.xorri(RDX, 0x5555); break;
              case 3: as.shlri(RDX, 1); break;
              case 4: as.addrr(RDX, RCX); break;
              default: as.orri(RDX, 1); break;
            }
        }
        as.pushr(RDX);
        as.movmr(memAt(RSP, -16), RCX); // spill a temp to the frame
        as.movrm(RCX, memAt(RSP, -16));
        as.addrm(RDX, memAt(RSP, 0));
        as.popr(RDX);

        // Advance the schedule cursor for the next unrolled copy.
        auto no_wrap_u = as.newLabel();
        as.addri(R12, 1);
        as.cmpri(R12, sched_len);
        as.jcc(CondCode::LT, no_wrap_u);
        as.movri(R12, 0);
        as.bind(no_wrap_u);
    }

    // ---- Turnover: free + reallocate the victim slot ----
    {
        auto skip_turn = as.newLabel();
        as.subri(R8, 1);
        as.cmpri(R8, 0);
        as.jcc(CondCode::NE, skip_turn);
        as.movri(R8, static_cast<int64_t>(turnover_period));

        as.movrm(RDI, memAt(R14, 0, R9, 8));
        as.call(IntrinsicKind::Free);
        as.movrm(RDX, memRip(pool_sizes));
        as.movrm(RDI, memAt(RDX, 0, R9, 8));
        as.call(IntrinsicKind::Malloc);
        emit_init_loop();
        as.movmr(memAt(R14, 0, R9, 8), RAX);

        if (chase) {
            // prev->next = new
            auto no_wrap_p = as.newLabel();
            as.movrr(RCX, R9);
            as.cmpri(RCX, 0);
            as.jcc(CondCode::NE, no_wrap_p);
            as.movri(RCX, static_cast<int64_t>(n));
            as.bind(no_wrap_p);
            as.subri(RCX, 1);
            as.movrm(RDX, memAt(R14, 0, RCX, 8));
            as.movmr(memAt(RDX, 0), RAX);
            // new->next = next
            auto no_wrap_n = as.newLabel();
            as.movrr(RCX, R9);
            as.addri(RCX, 1);
            as.cmpri(RCX, n);
            as.jcc(CondCode::LT, no_wrap_n);
            as.movri(RCX, 0);
            as.bind(no_wrap_n);
            as.movrm(RDX, memAt(R14, 0, RCX, 8));
            as.movmr(memAt(RAX, 0), RDX);
        }

        auto no_wrap_v = as.newLabel();
        as.addri(R9, 1);
        as.cmpri(R9, n);
        as.jcc(CondCode::LT, no_wrap_v);
        as.movri(R9, 0);
        as.bind(no_wrap_v);
        // Reset the scalar accumulator clobbered above.
        as.movri(RDX, 1);
        as.bind(skip_turn);
    }

    // ---- Iterate ----
    as.subri(R15, 1);
    as.cmpri(R15, 0);
    as.jcc(CondCode::NE, main_loop);

    // Sink the accumulator so the loop body has a live output.
    as.movrr(RDI, RDX);
    as.call(IntrinsicKind::PrintVal);
    as.hlt();

    return as.finalize();
}

Program
generateSmokeProgram(unsigned buffers, uint64_t buffer_size)
{
    Assembler as;
    uint64_t bufs = as.addGlobal("bufs", buffers * 8ull);
    (void)bufs;
    uint64_t pool_bufs = as.poolSlotFor("bufs");

    as.movrm(R14, memRip(pool_bufs));

    // Allocate.
    auto alloc_loop = as.newLabel();
    as.movri(RBX, 0);
    as.bind(alloc_loop);
    as.movri(RDI, static_cast<int64_t>(buffer_size));
    as.call(IntrinsicKind::Malloc);
    as.movmr(memAt(R14, 0, RBX, 8), RAX);
    as.addri(RBX, 1);
    as.cmpri(RBX, buffers);
    as.jcc(CondCode::LT, alloc_loop);

    // Touch each buffer.
    auto touch_loop = as.newLabel();
    as.movri(RBX, 0);
    as.bind(touch_loop);
    as.movrm(RCX, memAt(R14, 0, RBX, 8));
    as.movmi(memAt(RCX, 0), 42);
    as.movrm(RDX, memAt(RCX, 0));
    as.addmi(memAt(RCX, 8), 1);
    as.addri(RBX, 1);
    as.cmpri(RBX, buffers);
    as.jcc(CondCode::LT, touch_loop);

    // Free everything.
    auto free_loop = as.newLabel();
    as.movri(RBX, 0);
    as.bind(free_loop);
    as.movrm(RDI, memAt(R14, 0, RBX, 8));
    as.call(IntrinsicKind::Free);
    as.addri(RBX, 1);
    as.cmpri(RBX, buffers);
    as.jcc(CondCode::LT, free_loop);

    as.hlt();
    return as.finalize();
}

} // namespace chex

/**
 * @file
 * Temporal pointer-access patterns (Table II): generators that
 * produce buffer-access schedules following each pattern class, and
 * a classifier that recovers the class from an observed PID
 * sequence — used both by the workload generator (to imprint
 * realistic reload behaviour) and by the Table II bench.
 */

#ifndef CHEX_WORKLOAD_PATTERNS_HH
#define CHEX_WORKLOAD_PATTERNS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"

namespace chex
{

/**
 * The eight temporal patterns of Table II, plus Zipf — a
 * popularity-skewed draw modelling request/response reuse in a
 * heavy-traffic service (hot session objects dominate, a long tail
 * of cold ones). Zipf is generated for the server profile family
 * only; the classifier never emits it (an observed Zipf stream
 * reads as one of the paper's random classes).
 */
enum class PatternKind : uint8_t
{
    Constant,       // 31 31 31 31 ...
    Stride,         // 13 16 19 22 ... (stride s)
    BatchStride,    // 11 11 11 15 15 15 ... (batches, strided)
    BatchNoStride,  // 22 22 22 13 99 99 ... (batches, arbitrary)
    RepeatStride,   // 26 27 28 26 27 28 ... (repeating, strided)
    RepeatNoStride, // 26 57 5 26 57 5 ...  (repeating, arbitrary)
    RandomStride,   // random order, locally strided
    RandomNoStride, // fully random
    Zipf,           // popularity-ranked skew (server reuse)
};

/** Printable pattern name as in Table II. */
const char *patternName(PatternKind kind);

/** Parameters for schedule generation. */
struct PatternParams
{
    unsigned numBuffers = 16;  // distinct buffer indices available
    unsigned length = 1024;    // schedule length
    unsigned batchLen = 4;     // batch size (Batch* patterns)
    unsigned period = 3;       // repeat period (Repeat* patterns)
    int stride = 1;            // stride (strided patterns)
};

/**
 * Generate a buffer-index schedule in [0, numBuffers) following
 * @p kind.
 */
std::vector<unsigned> generateSchedule(PatternKind kind,
                                       const PatternParams &params,
                                       Random &rng);

/** Result of classifying an observed identifier sequence. */
struct PatternClassification
{
    PatternKind kind = PatternKind::RandomNoStride;
    int stride = 0;         // meaningful for strided classes
    unsigned batchLen = 0;  // for Batch*
    unsigned period = 0;    // for Repeat*
    double confidence = 0.0;
};

/**
 * Classify a sequence of identifiers (PIDs / buffer indices) into
 * one of the Table II classes.
 */
PatternClassification classifySequence(
    const std::vector<uint64_t> &seq);

} // namespace chex

#endif // CHEX_WORKLOAD_PATTERNS_HH

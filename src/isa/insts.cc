#include "insts.hh"

#include "base/logging.hh"

namespace chex
{

const char *
condName(CondCode cc)
{
    switch (cc) {
      case CondCode::EQ: return "e";
      case CondCode::NE: return "ne";
      case CondCode::LT: return "l";
      case CondCode::LE: return "le";
      case CondCode::GT: return "g";
      case CondCode::GE: return "ge";
      case CondCode::B: return "b";
      case CondCode::BE: return "be";
      case CondCode::A: return "a";
      case CondCode::AE: return "ae";
      default: return "";
    }
}

const char *
opcodeName(MacroOpcode op)
{
    switch (op) {
      case MacroOpcode::NOP: return "nop";
      case MacroOpcode::MOV_RR: return "mov";
      case MacroOpcode::MOV_RI: return "mov$i";
      case MacroOpcode::MOV_RM: return "mov(ld)";
      case MacroOpcode::MOV_MR: return "mov(st)";
      case MacroOpcode::MOV_MI: return "mov$i(st)";
      case MacroOpcode::LEA: return "lea";
      case MacroOpcode::PUSH_R: return "push";
      case MacroOpcode::POP_R: return "pop";
      case MacroOpcode::XCHG_RR: return "xchg";
      case MacroOpcode::ADD_RR: return "add";
      case MacroOpcode::ADD_RI: return "add$i";
      case MacroOpcode::ADD_RM: return "add(ld)";
      case MacroOpcode::ADD_MR: return "add(ld-st)";
      case MacroOpcode::ADD_MI: return "add$i(ld-st)";
      case MacroOpcode::SUB_RR: return "sub";
      case MacroOpcode::SUB_RI: return "sub$i";
      case MacroOpcode::AND_RR: return "and";
      case MacroOpcode::AND_RI: return "and$i";
      case MacroOpcode::OR_RR: return "or";
      case MacroOpcode::OR_RI: return "or$i";
      case MacroOpcode::XOR_RR: return "xor";
      case MacroOpcode::XOR_RI: return "xor$i";
      case MacroOpcode::SHL_RI: return "shl$i";
      case MacroOpcode::SHR_RI: return "shr$i";
      case MacroOpcode::IMUL_RR: return "imul";
      case MacroOpcode::IMUL_RI: return "imul$i";
      case MacroOpcode::INC_M: return "inc(m)";
      case MacroOpcode::DEC_M: return "dec(m)";
      case MacroOpcode::CMP_RR: return "cmp";
      case MacroOpcode::CMP_RI: return "cmp$i";
      case MacroOpcode::CMP_RM: return "cmp(ld)";
      case MacroOpcode::TEST_RR: return "test";
      case MacroOpcode::TEST_RI: return "test$i";
      case MacroOpcode::FMOV_RR: return "fmov";
      case MacroOpcode::FMOV_RM: return "fmov(ld)";
      case MacroOpcode::FMOV_MR: return "fmov(st)";
      case MacroOpcode::FADD_RR: return "fadd";
      case MacroOpcode::FMUL_RR: return "fmul";
      case MacroOpcode::FDIV_RR: return "fdiv";
      case MacroOpcode::FCVT_RI: return "fcvt";
      case MacroOpcode::JMP: return "jmp";
      case MacroOpcode::JMP_R: return "jmp*";
      case MacroOpcode::JCC: return "j";
      case MacroOpcode::CALL: return "call";
      case MacroOpcode::CALL_R: return "call*";
      case MacroOpcode::RET: return "ret";
      case MacroOpcode::HLT: return "hlt";
      case MacroOpcode::INTRINSIC: return "intrinsic";
      default: return "???";
    }
}

const char *
intrinsicName(IntrinsicKind kind)
{
    switch (kind) {
      case IntrinsicKind::Malloc: return "malloc";
      case IntrinsicKind::Calloc: return "calloc";
      case IntrinsicKind::Realloc: return "realloc";
      case IntrinsicKind::Free: return "free";
      case IntrinsicKind::Memcpy: return "memcpy";
      case IntrinsicKind::Memset: return "memset";
      case IntrinsicKind::Strcpy: return "strcpy";
      case IntrinsicKind::PrintVal: return "print_val";
      default: return "none";
    }
}

bool
MacroInst::isLoad() const
{
    switch (opcode) {
      case MacroOpcode::MOV_RM:
      case MacroOpcode::ADD_RM:
      case MacroOpcode::ADD_MR:
      case MacroOpcode::ADD_MI:
      case MacroOpcode::INC_M:
      case MacroOpcode::DEC_M:
      case MacroOpcode::CMP_RM:
      case MacroOpcode::FMOV_RM:
      case MacroOpcode::POP_R:
      case MacroOpcode::RET:
        return true;
      default:
        return false;
    }
}

bool
MacroInst::isStore() const
{
    switch (opcode) {
      case MacroOpcode::MOV_MR:
      case MacroOpcode::MOV_MI:
      case MacroOpcode::ADD_MR:
      case MacroOpcode::ADD_MI:
      case MacroOpcode::INC_M:
      case MacroOpcode::DEC_M:
      case MacroOpcode::FMOV_MR:
      case MacroOpcode::PUSH_R:
      case MacroOpcode::CALL:
      case MacroOpcode::CALL_R:
        return true;
      default:
        return false;
    }
}

bool
MacroInst::isBranch() const
{
    switch (opcode) {
      case MacroOpcode::JMP:
      case MacroOpcode::JMP_R:
      case MacroOpcode::JCC:
      case MacroOpcode::CALL:
      case MacroOpcode::CALL_R:
      case MacroOpcode::RET:
        return true;
      default:
        return false;
    }
}

bool
MacroInst::isDirectBranch() const
{
    switch (opcode) {
      case MacroOpcode::JMP:
      case MacroOpcode::JCC:
      case MacroOpcode::CALL:
        return true;
      default:
        return false;
    }
}

bool
MacroInst::writesFlags() const
{
    switch (opcode) {
      case MacroOpcode::CMP_RR:
      case MacroOpcode::CMP_RI:
      case MacroOpcode::CMP_RM:
      case MacroOpcode::TEST_RR:
      case MacroOpcode::TEST_RI:
        return true;
      default:
        return false;
    }
}

namespace
{

std::string
memString(const MemOperand &m)
{
    std::string out;
    if (m.ripRelative)
        out += "rip:";
    out += csprintf("%lld(", static_cast<long long>(m.disp));
    if (m.hasBase())
        out += regName(m.base);
    if (m.hasIndex())
        out += csprintf(",%s,%u", regName(m.index), m.scale);
    out += ")";
    return out;
}

} // anonymous namespace

std::string
MacroInst::toString() const
{
    std::string out = opcodeName(opcode);
    if (opcode == MacroOpcode::JCC)
        out += condName(cc);
    out += " ";
    if (opcode == MacroOpcode::INTRINSIC) {
        out += intrinsicName(intrinsic);
        return out;
    }
    if (isDirectBranch() || opcode == MacroOpcode::JMP) {
        out += csprintf("0x%llx", static_cast<unsigned long long>(target));
        return out;
    }
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out += ", ";
        first = false;
    };
    if (dst != REG_NONE) {
        sep();
        out += regName(dst);
    }
    if (src != REG_NONE) {
        sep();
        out += regName(src);
    }
    if (isMemRef() || opcode == MacroOpcode::LEA) {
        sep();
        out += memString(mem);
    }
    switch (opcode) {
      case MacroOpcode::MOV_RI:
      case MacroOpcode::MOV_MI:
      case MacroOpcode::ADD_RI:
      case MacroOpcode::ADD_MI:
      case MacroOpcode::SUB_RI:
      case MacroOpcode::AND_RI:
      case MacroOpcode::OR_RI:
      case MacroOpcode::XOR_RI:
      case MacroOpcode::SHL_RI:
      case MacroOpcode::SHR_RI:
      case MacroOpcode::IMUL_RI:
      case MacroOpcode::CMP_RI:
      case MacroOpcode::TEST_RI:
        sep();
        out += csprintf("$%lld", static_cast<long long>(imm));
        break;
      default:
        break;
    }
    return out;
}

} // namespace chex

/**
 * @file
 * A loaded program image: text (macro-instructions), global data
 * symbols, a PC-relative constant pool holding global addresses, and
 * the registered runtime (heap-management) functions whose entry and
 * exit points the microcode customization unit intercepts.
 */

#ifndef CHEX_ISA_PROGRAM_HH
#define CHEX_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/insts.hh"

namespace chex
{

/** Canonical virtual-address-space layout for simulated programs. */
namespace layout
{
constexpr uint64_t CodeBase = 0x400000;
constexpr uint64_t PoolBase = 0x600000;   // constant pool (text)
constexpr uint64_t DataBase = 0x700000;   // global data section
constexpr uint64_t HeapBase = 0x10000000;
constexpr uint64_t HeapLimit = 0x70000000;
constexpr uint64_t StackTop = 0x7fff0000; // grows down
constexpr uint64_t StackLimit = 0x7ff00000;
} // namespace layout

/** A global data object recorded in the (optional) symbol table. */
struct Symbol
{
    std::string name;
    uint64_t addr = 0;
    uint64_t size = 0;
};

/** One constant-pool slot holding the address of a global symbol. */
struct PoolSlot
{
    uint64_t addr = 0;      // where in the pool the value lives
    uint64_t value = 0;     // the global address it holds
    std::string refSymbol;  // which symbol the value points at
};

/**
 * A runtime function with MSR-registerable entry and exit points.
 * Heap-management kinds (malloc/calloc/realloc/free) are intercepted
 * by the MCU; the others are plain library routines used by
 * workloads and exploits.
 */
struct RuntimeFunc
{
    IntrinsicKind kind = IntrinsicKind::None;
    uint64_t entryAddr = 0;
    uint64_t exitAddr = 0;
};

/** An initialized-data blob copied into memory at load time. */
struct InitBlob
{
    uint64_t addr = 0;
    std::vector<uint8_t> bytes;
};

/** A fully assembled program ready to be loaded into a System. */
struct Program
{
    uint64_t codeBase = layout::CodeBase;
    std::vector<MacroInst> code;
    std::vector<Symbol> symbols;
    std::vector<PoolSlot> pool;
    std::vector<RuntimeFunc> runtimeFuncs;
    std::vector<InitBlob> initData;
    uint64_t entryPoint = layout::CodeBase;
    uint64_t dataSize = 0;   // bytes of global data to zero-map

    /** Total instruction count. */
    size_t numInsts() const { return code.size(); }

    /** Address of instruction @p index. */
    uint64_t
    addrOf(size_t index) const
    {
        return codeBase + index * InstSlotBytes;
    }

    /** Index of the instruction at @p addr, or SIZE_MAX if outside. */
    size_t indexOf(uint64_t addr) const;

    /** The instruction at @p addr; panics if out of range. */
    const MacroInst &fetch(uint64_t addr) const;

    /** True if @p addr falls in this program's text section. */
    bool
    inText(uint64_t addr) const
    {
        return addr >= codeBase &&
               addr < codeBase + numInsts() * InstSlotBytes;
    }

    /** Find a runtime function by kind (first match) or nullptr. */
    const RuntimeFunc *findRuntime(IntrinsicKind kind) const;

    /** Find a symbol by name or nullptr. */
    const Symbol *findSymbol(const std::string &name) const;
};

/**
 * Canonical content hash of a program image (tagged FNV-1a 64 over
 * every instruction, symbol, pool slot, runtime function, and init
 * blob). A snapshot records it so restore can verify that the
 * deterministically regenerated workload is byte-for-byte the one
 * the checkpoint was taken from. Never returns 0.
 */
uint64_t programHash(const Program &prog);

} // namespace chex

#endif // CHEX_ISA_PROGRAM_HH

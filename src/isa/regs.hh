/**
 * @file
 * Architectural register definitions for the simplified x86-64-like
 * macro ISA used throughout the simulator.
 *
 * The integer file mirrors x86-64 (RAX..R15); XMM0..XMM7 stand in for
 * the vector/FP file; FLAGS is modelled as one renameable register
 * written by CMP/TEST and read by conditional branches; T0..T3 are
 * microcode temporaries only visible to cracked micro-ops (the "tN"
 * registers of the paper's Figure 5 micro-code listings).
 */

#ifndef CHEX_ISA_REGS_HH
#define CHEX_ISA_REGS_HH

#include <cstdint>

namespace chex
{

/** Architectural register identifiers. */
enum RegId : uint8_t
{
    RAX = 0,
    RBX,
    RCX,
    RDX,
    RSI,
    RDI,
    RBP,
    RSP,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    XMM0,
    XMM1,
    XMM2,
    XMM3,
    XMM4,
    XMM5,
    XMM6,
    XMM7,
    FLAGS,
    T0, // microcode temporaries
    T1,
    T2,
    T3,
    NUM_REGS,
    REG_NONE = 0xff,
};

/** Number of integer architectural registers (RAX..R15). */
constexpr unsigned NumIntRegs = 16;

/** Total renameable register count (everything but REG_NONE). */
constexpr unsigned NumArchRegs = NUM_REGS;

/** True for XMM registers. */
constexpr bool
isFpReg(RegId r)
{
    return r >= XMM0 && r <= XMM7;
}

/** True for the integer file (incl. RSP/RBP). */
constexpr bool
isIntReg(RegId r)
{
    return r < NumIntRegs;
}

/** True for microcode temporaries. */
constexpr bool
isTempReg(RegId r)
{
    return r >= T0 && r <= T3;
}

/** Printable register name ("%rax", "%t0", ...). */
const char *regName(RegId r);

} // namespace chex

#endif // CHEX_ISA_REGS_HH

/**
 * @file
 * The CISC-to-RISC micro-op translation interface: cracks each
 * macro-instruction into 1..N micro-ops. Simple instructions use the
 * 1:1 decoders, moderately complex ones the 1:4 decoder, and long
 * flows (runtime-function bodies) the MSROM — mirroring the front
 * end of Figure 2 in the paper. Cracked sequences for static
 * instructions are cached per program index.
 */

#ifndef CHEX_ISA_DECODER_HH
#define CHEX_ISA_DECODER_HH

#include <cstdint>
#include <vector>

#include "isa/insts.hh"
#include "isa/uops.hh"

namespace chex
{

/** Which decode structure handled an instruction. */
enum class DecodePath : uint8_t
{
    Simple,   // 1:1 decoder
    Complex,  // 1:4 decoder
    Msrom,    // microcode sequencer ROM
};

/** Result of cracking one macro-instruction. */
struct CrackedInst
{
    std::vector<StaticUop> uops;
    DecodePath path = DecodePath::Simple;
};

/**
 * Stateless macro-op cracker. INTRINSIC bodies are cracked into a
 * fixed-length MSROM scaffold; the CPU's decode stage appends the
 * dynamic memory micro-ops reported by the runtime-function handler.
 */
class Decoder
{
  public:
    /**
     * Crack @p inst (at address @p addr, needed for CALL return
     * addresses) into micro-ops.
     */
    static CrackedInst crack(const MacroInst &inst, uint64_t addr);

    /** Number of scaffold micro-ops for an intrinsic of @p kind. */
    static unsigned intrinsicUopCount(IntrinsicKind kind);
};

} // namespace chex

#endif // CHEX_ISA_DECODER_HH

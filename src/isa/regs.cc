#include "regs.hh"

namespace chex
{

const char *
regName(RegId r)
{
    switch (r) {
      case RAX: return "%rax";
      case RBX: return "%rbx";
      case RCX: return "%rcx";
      case RDX: return "%rdx";
      case RSI: return "%rsi";
      case RDI: return "%rdi";
      case RBP: return "%rbp";
      case RSP: return "%rsp";
      case R8: return "%r8";
      case R9: return "%r9";
      case R10: return "%r10";
      case R11: return "%r11";
      case R12: return "%r12";
      case R13: return "%r13";
      case R14: return "%r14";
      case R15: return "%r15";
      case XMM0: return "%xmm0";
      case XMM1: return "%xmm1";
      case XMM2: return "%xmm2";
      case XMM3: return "%xmm3";
      case XMM4: return "%xmm4";
      case XMM5: return "%xmm5";
      case XMM6: return "%xmm6";
      case XMM7: return "%xmm7";
      case FLAGS: return "%flags";
      case T0: return "%t0";
      case T1: return "%t1";
      case T2: return "%t2";
      case T3: return "%t3";
      default: return "%none";
    }
}

} // namespace chex

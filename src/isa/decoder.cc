#include "decoder.hh"

#include "base/logging.hh"

namespace chex
{

namespace
{

StaticUop
alu(AluOp op, RegId dst, RegId src1, RegId src2)
{
    StaticUop u;
    u.type = UopType::IntAlu;
    u.op = op;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = src2;
    return u;
}

StaticUop
alui(AluOp op, RegId dst, RegId src1, int64_t imm)
{
    StaticUop u;
    u.type = UopType::IntAlu;
    u.op = op;
    u.dst = dst;
    u.src1 = src1;
    u.imm = imm;
    u.useImm = true;
    return u;
}

StaticUop
limm(RegId dst, int64_t imm, bool synthetic = false)
{
    StaticUop u;
    u.type = UopType::LoadImm;
    u.op = AluOp::Mov;
    u.dst = dst;
    u.imm = imm;
    u.useImm = true;
    u.synthetic = synthetic;
    return u;
}

StaticUop
load(RegId dst, const MemOperand &mem, uint8_t size)
{
    StaticUop u;
    u.type = UopType::Load;
    u.dst = dst;
    u.mem = mem;
    u.hasMem = true;
    u.memSize = size;
    return u;
}

StaticUop
store(RegId src, const MemOperand &mem, uint8_t size)
{
    StaticUop u;
    u.type = UopType::Store;
    u.src1 = src;
    u.mem = mem;
    u.hasMem = true;
    u.memSize = size;
    return u;
}

StaticUop
leaUop(RegId dst, const MemOperand &mem)
{
    StaticUop u;
    u.type = UopType::Lea;
    u.dst = dst;
    u.mem = mem;
    u.hasMem = true; // address expression only; no access
    return u;
}

StaticUop
branch(CondCode cc)
{
    StaticUop u;
    u.type = UopType::Branch;
    u.cc = cc;
    if (cc != CondCode::None)
        u.src1 = FLAGS;
    return u;
}

StaticUop
branchInd(RegId target)
{
    StaticUop u;
    u.type = UopType::Branch;
    u.src1 = target;
    u.indirect = true;
    return u;
}

StaticUop
fp(UopType type, AluOp op, RegId dst, RegId src1, RegId src2)
{
    StaticUop u;
    u.type = type;
    u.op = op;
    u.dst = dst;
    u.src1 = src1;
    u.src2 = src2;
    return u;
}

MemOperand
rspMem(int64_t disp)
{
    MemOperand m;
    m.base = RSP;
    m.disp = disp;
    return m;
}

} // anonymous namespace

unsigned
Decoder::intrinsicUopCount(IntrinsicKind kind)
{
    // MSROM scaffold lengths model the dynamic work of the runtime
    // routine bodies (allocator bookkeeping, loops). Memory traffic
    // is added dynamically by the CPU from the handler's touch list.
    switch (kind) {
      case IntrinsicKind::Malloc: return 36;
      case IntrinsicKind::Calloc: return 44;
      case IntrinsicKind::Realloc: return 52;
      case IntrinsicKind::Free: return 30;
      case IntrinsicKind::Memcpy: return 12;
      case IntrinsicKind::Memset: return 10;
      case IntrinsicKind::Strcpy: return 12;
      case IntrinsicKind::PrintVal: return 6;
      default: return 4;
    }
}

CrackedInst
Decoder::crack(const MacroInst &inst, uint64_t addr)
{
    CrackedInst out;
    auto &u = out.uops;

    switch (inst.opcode) {
      case MacroOpcode::NOP:
      case MacroOpcode::HLT:
        u.push_back(StaticUop{});
        break;

      case MacroOpcode::MOV_RR:
        u.push_back(alu(AluOp::Mov, inst.dst, inst.src, REG_NONE));
        break;
      case MacroOpcode::MOV_RI:
        u.push_back(limm(inst.dst, inst.imm));
        break;
      case MacroOpcode::MOV_RM:
        u.push_back(load(inst.dst, inst.mem, inst.size));
        break;
      case MacroOpcode::MOV_MR:
        u.push_back(store(inst.src, inst.mem, inst.size));
        break;
      case MacroOpcode::MOV_MI:
        u.push_back(limm(T0, inst.imm, true));
        u.push_back(store(T0, inst.mem, inst.size));
        break;
      case MacroOpcode::LEA:
        u.push_back(leaUop(inst.dst, inst.mem));
        break;
      case MacroOpcode::PUSH_R:
        u.push_back(alui(AluOp::Sub, RSP, RSP, 8));
        u.push_back(store(inst.src, rspMem(0), 8));
        break;
      case MacroOpcode::POP_R:
        u.push_back(load(inst.dst, rspMem(0), 8));
        u.push_back(alui(AluOp::Add, RSP, RSP, 8));
        break;
      case MacroOpcode::XCHG_RR:
        u.push_back(alu(AluOp::Mov, T0, inst.dst, REG_NONE));
        u.push_back(alu(AluOp::Mov, inst.dst, inst.src, REG_NONE));
        u.push_back(alu(AluOp::Mov, inst.src, T0, REG_NONE));
        break;

      case MacroOpcode::ADD_RR:
        u.push_back(alu(AluOp::Add, inst.dst, inst.dst, inst.src));
        break;
      case MacroOpcode::ADD_RI:
        u.push_back(alui(AluOp::Add, inst.dst, inst.dst, inst.imm));
        break;
      case MacroOpcode::ADD_RM:
        u.push_back(load(T0, inst.mem, inst.size));
        u.push_back(alu(AluOp::Add, inst.dst, inst.dst, T0));
        break;
      case MacroOpcode::ADD_MR:
        u.push_back(load(T0, inst.mem, inst.size));
        u.push_back(alu(AluOp::Add, T0, T0, inst.src));
        u.push_back(store(T0, inst.mem, inst.size));
        break;
      case MacroOpcode::ADD_MI:
        u.push_back(load(T0, inst.mem, inst.size));
        u.push_back(alui(AluOp::Add, T0, T0, inst.imm));
        u.push_back(store(T0, inst.mem, inst.size));
        break;
      case MacroOpcode::SUB_RR:
        u.push_back(alu(AluOp::Sub, inst.dst, inst.dst, inst.src));
        break;
      case MacroOpcode::SUB_RI:
        u.push_back(alui(AluOp::Sub, inst.dst, inst.dst, inst.imm));
        break;
      case MacroOpcode::AND_RR:
        u.push_back(alu(AluOp::And, inst.dst, inst.dst, inst.src));
        break;
      case MacroOpcode::AND_RI:
        u.push_back(alui(AluOp::And, inst.dst, inst.dst, inst.imm));
        break;
      case MacroOpcode::OR_RR:
        u.push_back(alu(AluOp::Or, inst.dst, inst.dst, inst.src));
        break;
      case MacroOpcode::OR_RI:
        u.push_back(alui(AluOp::Or, inst.dst, inst.dst, inst.imm));
        break;
      case MacroOpcode::XOR_RR:
        u.push_back(alu(AluOp::Xor, inst.dst, inst.dst, inst.src));
        break;
      case MacroOpcode::XOR_RI:
        u.push_back(alui(AluOp::Xor, inst.dst, inst.dst, inst.imm));
        break;
      case MacroOpcode::SHL_RI:
        u.push_back(alui(AluOp::Shl, inst.dst, inst.dst, inst.imm));
        break;
      case MacroOpcode::SHR_RI:
        u.push_back(alui(AluOp::Shr, inst.dst, inst.dst, inst.imm));
        break;
      case MacroOpcode::IMUL_RR: {
        StaticUop m = alu(AluOp::Mul, inst.dst, inst.dst, inst.src);
        m.type = UopType::IntMult;
        u.push_back(m);
        break;
      }
      case MacroOpcode::IMUL_RI: {
        StaticUop m = alui(AluOp::Mul, inst.dst, inst.dst, inst.imm);
        m.type = UopType::IntMult;
        u.push_back(m);
        break;
      }
      case MacroOpcode::INC_M:
        u.push_back(load(T0, inst.mem, inst.size));
        u.push_back(alui(AluOp::Add, T0, T0, 1));
        u.push_back(store(T0, inst.mem, inst.size));
        break;
      case MacroOpcode::DEC_M:
        u.push_back(load(T0, inst.mem, inst.size));
        u.push_back(alui(AluOp::Sub, T0, T0, 1));
        u.push_back(store(T0, inst.mem, inst.size));
        break;

      case MacroOpcode::CMP_RR:
        u.push_back(alu(AluOp::Cmp, FLAGS, inst.dst, inst.src));
        break;
      case MacroOpcode::CMP_RI:
        u.push_back(alui(AluOp::Cmp, FLAGS, inst.dst, inst.imm));
        break;
      case MacroOpcode::CMP_RM:
        u.push_back(load(T0, inst.mem, inst.size));
        u.push_back(alu(AluOp::Cmp, FLAGS, inst.dst, T0));
        break;
      case MacroOpcode::TEST_RR:
        u.push_back(alu(AluOp::Test, FLAGS, inst.dst, inst.src));
        break;
      case MacroOpcode::TEST_RI:
        u.push_back(alui(AluOp::Test, FLAGS, inst.dst, inst.imm));
        break;

      case MacroOpcode::FMOV_RR:
        u.push_back(fp(UopType::FpAlu, AluOp::Mov, inst.dst, inst.src,
                       REG_NONE));
        break;
      case MacroOpcode::FMOV_RM:
        u.push_back(load(inst.dst, inst.mem, 8));
        break;
      case MacroOpcode::FMOV_MR:
        u.push_back(store(inst.src, inst.mem, 8));
        break;
      case MacroOpcode::FADD_RR:
        u.push_back(fp(UopType::FpAlu, AluOp::FAdd, inst.dst, inst.dst,
                       inst.src));
        break;
      case MacroOpcode::FMUL_RR:
        u.push_back(fp(UopType::FpMult, AluOp::FMul, inst.dst, inst.dst,
                       inst.src));
        break;
      case MacroOpcode::FDIV_RR:
        u.push_back(fp(UopType::FpDiv, AluOp::FDiv, inst.dst, inst.dst,
                       inst.src));
        break;
      case MacroOpcode::FCVT_RI:
        u.push_back(fp(UopType::FpAlu, AluOp::FCvt, inst.dst, inst.src,
                       REG_NONE));
        break;

      case MacroOpcode::JMP:
        u.push_back(branch(CondCode::None));
        break;
      case MacroOpcode::JMP_R:
        u.push_back(branchInd(inst.src));
        break;
      case MacroOpcode::JCC:
        u.push_back(branch(inst.cc));
        break;
      case MacroOpcode::CALL:
        u.push_back(limm(T3, static_cast<int64_t>(addr + InstSlotBytes),
                         true));
        u.push_back(alui(AluOp::Sub, RSP, RSP, 8));
        u.push_back(store(T3, rspMem(0), 8));
        u.push_back(branch(CondCode::None));
        break;
      case MacroOpcode::CALL_R:
        u.push_back(limm(T3, static_cast<int64_t>(addr + InstSlotBytes),
                         true));
        u.push_back(alui(AluOp::Sub, RSP, RSP, 8));
        u.push_back(store(T3, rspMem(0), 8));
        u.push_back(branchInd(inst.src));
        break;
      case MacroOpcode::RET:
        u.push_back(load(T0, rspMem(0), 8));
        u.push_back(alui(AluOp::Add, RSP, RSP, 8));
        u.push_back(branchInd(T0));
        break;

      case MacroOpcode::INTRINSIC: {
        // MSROM scaffold: serial dependence chain standing in for the
        // routine's internal control/dataflow. The final micro-op
        // carries the architectural result into %rax.
        unsigned n = intrinsicUopCount(inst.intrinsic);
        u.push_back(alu(AluOp::Mov, T0, RDI, REG_NONE));
        for (unsigned i = 0; i + 2 < n; ++i) {
            StaticUop s = alui(AluOp::Add, T0, T0, 1);
            s.synthetic = true;
            u.push_back(s);
        }
        StaticUop fin = alu(AluOp::Mov, RAX, T0, REG_NONE);
        fin.synthetic = true;
        u.push_back(fin);
        break;
      }

      default:
        chex_panic("crack: unhandled opcode %d",
                   static_cast<int>(inst.opcode));
    }

    if (u.size() == 1)
        out.path = DecodePath::Simple;
    else if (u.size() <= 4)
        out.path = DecodePath::Complex;
    else
        out.path = DecodePath::Msrom;
    return out;
}

} // namespace chex

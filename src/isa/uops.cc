#include "uops.hh"

#include "base/logging.hh"

namespace chex
{

const char *
uopTypeName(UopType t)
{
    switch (t) {
      case UopType::Nop: return "nop";
      case UopType::IntAlu: return "alu";
      case UopType::IntMult: return "mult";
      case UopType::IntDiv: return "div";
      case UopType::FpAlu: return "falu";
      case UopType::FpMult: return "fmult";
      case UopType::FpDiv: return "fdiv";
      case UopType::Lea: return "lea";
      case UopType::LoadImm: return "limm";
      case UopType::Load: return "ld";
      case UopType::Store: return "st";
      case UopType::Branch: return "br";
      case UopType::CapGenBegin: return "capGen.Begin";
      case UopType::CapGenEnd: return "capGen.End";
      case UopType::CapCheck: return "capCheck";
      case UopType::CapFreeBegin: return "capFree.Begin";
      case UopType::CapFreeEnd: return "capFree.End";
      default: return "???";
    }
}

std::string
StaticUop::toString() const
{
    std::string out = uopTypeName(type);
    if (isBranch() && cc != CondCode::None)
        out += std::string(".") + condName(cc);
    out += " ";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out += ", ";
        first = false;
    };
    if (dst != REG_NONE) {
        sep();
        out += regName(dst);
    }
    if (src1 != REG_NONE) {
        sep();
        out += regName(src1);
    }
    if (src2 != REG_NONE) {
        sep();
        out += regName(src2);
    }
    if (useImm) {
        sep();
        out += csprintf("$%lld", static_cast<long long>(imm));
    }
    if (hasMem) {
        sep();
        out += csprintf("[%s%+lld]",
                        mem.hasBase() ? regName(mem.base) : "",
                        static_cast<long long>(mem.disp));
    }
    return out;
}

uint64_t
encodeFlags(uint64_t a, uint64_t b)
{
    auto sa = static_cast<int64_t>(a);
    auto sb = static_cast<int64_t>(b);
    uint64_t f = 0;
    auto set = [&](CondCode cc, bool v) {
        if (v)
            f |= 1ull << static_cast<unsigned>(cc);
    };
    set(CondCode::EQ, a == b);
    set(CondCode::NE, a != b);
    set(CondCode::LT, sa < sb);
    set(CondCode::LE, sa <= sb);
    set(CondCode::GT, sa > sb);
    set(CondCode::GE, sa >= sb);
    set(CondCode::B, a < b);
    set(CondCode::BE, a <= b);
    set(CondCode::A, a > b);
    set(CondCode::AE, a >= b);
    return f;
}

bool
testCond(uint64_t flags, CondCode cc)
{
    chex_assert(cc != CondCode::None, "testCond on CondCode::None");
    return (flags >> static_cast<unsigned>(cc)) & 1ull;
}

} // namespace chex

/**
 * @file
 * Macro-instruction (CISC-level) definitions: opcodes, addressing
 * modes, condition codes, and the MacroInst record the front end
 * fetches and the decoder cracks into micro-ops.
 *
 * Every instruction occupies a fixed 4-byte slot in the simulated
 * text section, so instruction i of a program lives at
 * codeBase + 4*i. Branch/call targets are absolute addresses.
 */

#ifndef CHEX_ISA_INSTS_HH
#define CHEX_ISA_INSTS_HH

#include <cstdint>
#include <string>

#include "isa/regs.hh"

namespace chex
{

/** Condition codes evaluated against the FLAGS register. */
enum class CondCode : uint8_t
{
    EQ,  // equal / zero
    NE,  // not equal
    LT,  // signed less than
    LE,  // signed less or equal
    GT,  // signed greater than
    GE,  // signed greater or equal
    B,   // unsigned below
    BE,  // unsigned below or equal
    A,   // unsigned above
    AE,  // unsigned above or equal
    None,
};

/** Printable condition suffix ("e", "ne", "l", ...). */
const char *condName(CondCode cc);

/**
 * A register-memory addressing-mode operand:
 * [base + index*scale + disp], any component optional.
 * ripRelative marks PC-relative constant-pool loads.
 */
struct MemOperand
{
    RegId base = REG_NONE;
    RegId index = REG_NONE;
    uint8_t scale = 1;       // 1, 2, 4, or 8
    int64_t disp = 0;
    bool ripRelative = false;

    bool hasBase() const { return base != REG_NONE; }
    bool hasIndex() const { return index != REG_NONE; }
};

/** Macro opcodes. Suffixes: RR reg,reg  RI reg,imm  RM reg,mem  MR mem,reg  MI mem,imm  M mem. */
enum class MacroOpcode : uint8_t
{
    NOP,
    // data movement
    MOV_RR,
    MOV_RI,     // load-immediate; rule MOVI in the paper's Table I
    MOV_RM,     // load
    MOV_MR,     // store
    MOV_MI,     // store-immediate
    LEA,
    PUSH_R,
    POP_R,
    XCHG_RR,
    // integer ALU
    ADD_RR,
    ADD_RI,
    ADD_RM,     // add reg <- reg + [mem]  (load-op)
    ADD_MR,     // add [mem] <- [mem] + reg (load-op-store)
    ADD_MI,
    SUB_RR,
    SUB_RI,
    AND_RR,
    AND_RI,
    OR_RR,
    OR_RI,
    XOR_RR,
    XOR_RI,
    SHL_RI,
    SHR_RI,
    IMUL_RR,
    IMUL_RI,
    INC_M,      // (*p)++ of Figure 5: ld, add, st
    DEC_M,
    // compare / test (write FLAGS)
    CMP_RR,
    CMP_RI,
    CMP_RM,
    TEST_RR,
    TEST_RI,
    // floating point (XMM as scalar double)
    FMOV_RR,
    FMOV_RM,
    FMOV_MR,
    FADD_RR,
    FMUL_RR,
    FDIV_RR,
    FCVT_RI,    // int reg -> fp reg convert
    // control flow
    JMP,
    JMP_R,      // indirect jump through register
    JCC,
    CALL,
    CALL_R,     // indirect call through register
    RET,
    // program termination / runtime
    HLT,
    INTRINSIC,  // body of a registered runtime function (allocator)
    NUM_OPCODES,
};

/** Printable mnemonic. */
const char *opcodeName(MacroOpcode op);

/** Runtime-function bodies implemented by the simulator host side. */
enum class IntrinsicKind : uint8_t
{
    None,
    Malloc,
    Calloc,
    Realloc,
    Free,
    Memcpy,   // abused-function model for RIPE-style exploits
    Memset,
    Strcpy,   // unbounded copy abused by overflow exploits
    PrintVal, // benign sink so generated code has live outputs
};

/** Name of an intrinsic. */
const char *intrinsicName(IntrinsicKind kind);

/**
 * One fetched macro-instruction. The fields used depend on the
 * opcode; unused fields keep their defaults. `size` is the memory
 * operand width in bytes (1/2/4/8).
 */
struct MacroInst
{
    MacroOpcode opcode = MacroOpcode::NOP;
    RegId dst = REG_NONE;
    RegId src = REG_NONE;
    MemOperand mem;
    int64_t imm = 0;
    uint8_t size = 8;
    CondCode cc = CondCode::None;
    uint64_t target = 0;          // branch/call absolute target
    IntrinsicKind intrinsic = IntrinsicKind::None;

    bool isLoad() const;
    bool isStore() const;
    bool isMemRef() const { return isLoad() || isStore(); }
    bool isBranch() const;
    bool isDirectBranch() const;
    bool isCall() const
    {
        return opcode == MacroOpcode::CALL ||
               opcode == MacroOpcode::CALL_R;
    }
    bool isReturn() const { return opcode == MacroOpcode::RET; }
    bool writesFlags() const;

    /** Disassembly for debugging and traces. */
    std::string toString() const;
};

/** Encoded instruction-slot width in the simulated text section. */
constexpr uint64_t InstSlotBytes = 4;

} // namespace chex

#endif // CHEX_ISA_INSTS_HH

#include "program.hh"

#include "base/fnv.hh"
#include "base/logging.hh"

namespace chex
{

size_t
Program::indexOf(uint64_t addr) const
{
    if (!inText(addr) || (addr - codeBase) % InstSlotBytes != 0)
        return SIZE_MAX;
    return (addr - codeBase) / InstSlotBytes;
}

const MacroInst &
Program::fetch(uint64_t addr) const
{
    size_t idx = indexOf(addr);
    chex_assert(idx != SIZE_MAX, "fetch outside text section");
    return code[idx];
}

const RuntimeFunc *
Program::findRuntime(IntrinsicKind kind) const
{
    for (const auto &f : runtimeFuncs)
        if (f.kind == kind)
            return &f;
    return nullptr;
}

const Symbol *
Program::findSymbol(const std::string &name) const
{
    for (const auto &s : symbols)
        if (s.name == name)
            return &s;
    return nullptr;
}

uint64_t
programHash(const Program &prog)
{
    TaggedHasher h;
    h.u64("codeBase", prog.codeBase);
    h.u64("entryPoint", prog.entryPoint);
    h.u64("dataSize", prog.dataSize);
    h.u64("code.count", prog.code.size());
    for (const MacroInst &mi : prog.code) {
        h.u64("inst.opcode", static_cast<uint64_t>(mi.opcode));
        h.u64("inst.dst", static_cast<uint64_t>(mi.dst));
        h.u64("inst.src", static_cast<uint64_t>(mi.src));
        h.u64("inst.mem.base", static_cast<uint64_t>(mi.mem.base));
        h.u64("inst.mem.index", static_cast<uint64_t>(mi.mem.index));
        h.u64("inst.mem.scale", mi.mem.scale);
        h.u64("inst.mem.disp", static_cast<uint64_t>(mi.mem.disp));
        h.u64("inst.mem.ripRelative", mi.mem.ripRelative);
        h.u64("inst.imm", static_cast<uint64_t>(mi.imm));
        h.u64("inst.size", mi.size);
        h.u64("inst.cc", static_cast<uint64_t>(mi.cc));
        h.u64("inst.target", mi.target);
        h.u64("inst.intrinsic", static_cast<uint64_t>(mi.intrinsic));
    }
    h.u64("symbols.count", prog.symbols.size());
    for (const Symbol &s : prog.symbols) {
        h.str("symbol.name", s.name);
        h.u64("symbol.addr", s.addr);
        h.u64("symbol.size", s.size);
    }
    h.u64("pool.count", prog.pool.size());
    for (const PoolSlot &p : prog.pool) {
        h.u64("pool.addr", p.addr);
        h.u64("pool.value", p.value);
        h.str("pool.refSymbol", p.refSymbol);
    }
    h.u64("runtimeFuncs.count", prog.runtimeFuncs.size());
    for (const RuntimeFunc &f : prog.runtimeFuncs) {
        h.u64("runtime.kind", static_cast<uint64_t>(f.kind));
        h.u64("runtime.entryAddr", f.entryAddr);
        h.u64("runtime.exitAddr", f.exitAddr);
    }
    h.u64("initData.count", prog.initData.size());
    for (const InitBlob &b : prog.initData) {
        h.u64("blob.addr", b.addr);
        h.u64("blob.len", b.bytes.size());
        h.bytes(b.bytes.data(), b.bytes.size());
    }
    return h.digest();
}

} // namespace chex

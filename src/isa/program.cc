#include "program.hh"

#include "base/logging.hh"

namespace chex
{

size_t
Program::indexOf(uint64_t addr) const
{
    if (!inText(addr) || (addr - codeBase) % InstSlotBytes != 0)
        return SIZE_MAX;
    return (addr - codeBase) / InstSlotBytes;
}

const MacroInst &
Program::fetch(uint64_t addr) const
{
    size_t idx = indexOf(addr);
    chex_assert(idx != SIZE_MAX, "fetch outside text section");
    return code[idx];
}

const RuntimeFunc *
Program::findRuntime(IntrinsicKind kind) const
{
    for (const auto &f : runtimeFuncs)
        if (f.kind == kind)
            return &f;
    return nullptr;
}

const Symbol *
Program::findSymbol(const std::string &name) const
{
    for (const auto &s : symbols)
        if (s.name == name)
            return &s;
    return nullptr;
}

} // namespace chex

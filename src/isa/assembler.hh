/**
 * @file
 * An in-memory assembler for building simulated programs: emits
 * macro-instructions, resolves forward labels, allocates global data
 * symbols and constant-pool slots, and materializes runtime-function
 * stubs (INTRINSIC + RET) for every library routine a program calls,
 * recording their entry/exit addresses for MSR registration.
 */

#ifndef CHEX_ISA_ASSEMBLER_HH
#define CHEX_ISA_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace chex
{

/** Build a [base + index*scale + disp] memory operand. */
MemOperand memAt(RegId base, int64_t disp = 0, RegId index = REG_NONE,
                 uint8_t scale = 1);

/** Build an absolute (no-register) memory operand. */
MemOperand memAbs(uint64_t addr);

/** Build a PC-relative constant-pool operand at absolute @p addr. */
MemOperand memRip(uint64_t addr);

/**
 * Macro-instruction assembler. All emit methods append one
 * instruction; finalize() resolves labels and returns the Program.
 */
class Assembler
{
  public:
    using Label = size_t;

    Assembler();

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /** Allocate a zero-initialized global; returns its address. */
    uint64_t addGlobal(const std::string &name, uint64_t size);

    /**
     * Get (or create) a constant-pool slot holding the address of
     * global @p name; returns the slot's address for memRip().
     */
    uint64_t poolSlotFor(const std::string &name);

    /** Attach initialized data to be copied to @p addr at load. */
    void setInitData(uint64_t addr, std::vector<uint8_t> bytes);

    /** Convenience: initialize a run of 64-bit words at @p addr. */
    void setInitWords(uint64_t addr, const std::vector<uint64_t> &words);

    /** @{ @name Data movement */
    void nop();
    void movrr(RegId dst, RegId src);
    void movri(RegId dst, int64_t imm);
    void movrm(RegId dst, const MemOperand &mem, uint8_t size = 8);
    void movmr(const MemOperand &mem, RegId src, uint8_t size = 8);
    void movmi(const MemOperand &mem, int64_t imm, uint8_t size = 8);
    void lea(RegId dst, const MemOperand &mem);
    void pushr(RegId src);
    void popr(RegId dst);
    void xchgrr(RegId a, RegId b);
    /** @} */

    /** @{ @name Integer ALU */
    void addrr(RegId dst, RegId src);
    void addri(RegId dst, int64_t imm);
    void addrm(RegId dst, const MemOperand &mem, uint8_t size = 8);
    void addmr(const MemOperand &mem, RegId src, uint8_t size = 8);
    void addmi(const MemOperand &mem, int64_t imm, uint8_t size = 8);
    void subrr(RegId dst, RegId src);
    void subri(RegId dst, int64_t imm);
    void andrr(RegId dst, RegId src);
    void andri(RegId dst, int64_t imm);
    void orrr(RegId dst, RegId src);
    void orri(RegId dst, int64_t imm);
    void xorrr(RegId dst, RegId src);
    void xorri(RegId dst, int64_t imm);
    void shlri(RegId dst, int64_t imm);
    void shrri(RegId dst, int64_t imm);
    void imulrr(RegId dst, RegId src);
    void imulri(RegId dst, int64_t imm);
    void incm(const MemOperand &mem, uint8_t size = 8);
    void decm(const MemOperand &mem, uint8_t size = 8);
    /** @} */

    /** @{ @name Compare / test */
    void cmprr(RegId a, RegId b);
    void cmpri(RegId a, int64_t imm);
    void cmprm(RegId a, const MemOperand &mem, uint8_t size = 8);
    void testrr(RegId a, RegId b);
    void testri(RegId a, int64_t imm);
    /** @} */

    /** @{ @name Floating point */
    void fmovrr(RegId dst, RegId src);
    void fmovrm(RegId dst, const MemOperand &mem);
    void fmovmr(const MemOperand &mem, RegId src);
    void faddrr(RegId dst, RegId src);
    void fmulrr(RegId dst, RegId src);
    void fdivrr(RegId dst, RegId src);
    void fcvtri(RegId dst, RegId intSrc);
    /** @} */

    /** @{ @name Control flow */
    void jmp(Label target);
    void jmpr(RegId target);
    void jcc(CondCode cc, Label target);
    void call(IntrinsicKind kind);
    void callLabel(Label target);
    void callr(RegId target);
    void ret();
    void hlt();
    /** @} */

    /** Number of instructions emitted so far. */
    size_t size() const { return insts.size(); }

    /** Set the program entry point to label (default: first inst). */
    void setEntry(Label label);

    /**
     * Resolve labels, emit runtime stubs, and produce the Program.
     * The assembler must not be reused afterwards.
     */
    Program finalize();

  private:
    struct Fixup
    {
        size_t instIndex;
        Label label;
    };
    struct CallFixup
    {
        size_t instIndex;
        IntrinsicKind kind;
    };

    MacroInst &emit(MacroOpcode op);
    void emitLibraryBody(IntrinsicKind kind);

    std::vector<MacroInst> insts;
    std::vector<int64_t> labelTargets;  // -1 = unbound
    std::vector<Fixup> fixups;
    std::vector<CallFixup> callFixups;
    std::vector<Symbol> symbols;
    std::map<std::string, uint64_t> poolSlots;
    std::vector<PoolSlot> pool;
    std::vector<InitBlob> initBlobs;
    uint64_t nextDataOffset = 0;
    uint64_t nextPoolOffset = 0;
    Label entryLabel = SIZE_MAX;
    bool finalized = false;
};

} // namespace chex

#endif // CHEX_ISA_ASSEMBLER_HH

/**
 * @file
 * RISC micro-op definitions: the internal instruction set the decoder
 * cracks macro-ops into, and the capability micro-ops (capGen.Begin,
 * capGen.End, capCheck, capFree.Begin, capFree.End) that the
 * microcode customization unit injects (Section IV-C of the paper).
 */

#ifndef CHEX_ISA_UOPS_HH
#define CHEX_ISA_UOPS_HH

#include <cstdint>
#include <string>

#include "isa/insts.hh"
#include "isa/regs.hh"

namespace chex
{

/** Micro-op class; drives functional-unit selection and latency. */
enum class UopType : uint8_t
{
    Nop,
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    Lea,        // address generation without memory access
    LoadImm,    // limm of Table I rule MOVI
    Load,
    Store,
    Branch,
    // Capability micro-ops (only injectable by the microcode engine)
    CapGenBegin,
    CapGenEnd,
    CapCheck,
    CapFreeBegin,
    CapFreeEnd,
    NUM_TYPES,
};

/** Printable micro-op class name. */
const char *uopTypeName(UopType t);

/** ALU sub-operation for IntAlu / FpAlu / FpMult micro-ops. */
enum class AluOp : uint8_t
{
    None,
    Mov,
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Mul,
    Cmp,   // writes FLAGS
    Test,  // writes FLAGS
    FAdd,
    FMul,
    FDiv,
    FCvt,
};

/**
 * A static micro-op produced by cracking one macro-instruction.
 * Register-to-register dataflow uses dst/src1/src2; `useImm`
 * substitutes `imm` for src2. Memory micro-ops carry the effective
 * address expression in `mem` (resolved at execute).
 */
struct StaticUop
{
    UopType type = UopType::Nop;
    AluOp op = AluOp::None;
    RegId dst = REG_NONE;
    RegId src1 = REG_NONE;
    RegId src2 = REG_NONE;
    MemOperand mem;
    bool hasMem = false;
    int64_t imm = 0;
    bool useImm = false;
    uint8_t memSize = 8;
    CondCode cc = CondCode::None;   // Branch only
    bool indirect = false;          // Branch via src1 register
    /**
     * Decoder-internal micro-op (e.g. the limm materializing a CALL
     * return address). The pointer tracker's MOVI rule ignores these:
     * only programmer-visible load-immediates can create wild
     * pointers.
     */
    bool synthetic = false;

    bool isLoad() const { return type == UopType::Load; }
    bool isStore() const { return type == UopType::Store; }
    bool isMemRef() const { return isLoad() || isStore(); }
    bool isBranch() const { return type == UopType::Branch; }

    /** True for the five capability micro-op types. */
    bool
    isCapUop() const
    {
        return type >= UopType::CapGenBegin &&
               type <= UopType::CapFreeEnd;
    }

    bool writesFlags() const
    {
        return op == AluOp::Cmp || op == AluOp::Test;
    }

    /** Disassembly for debugging. */
    std::string toString() const;
};

/**
 * FLAGS encoding: CMP/TEST compute every condition eagerly and pack
 * one bit per CondCode into the FLAGS register value; a conditional
 * branch then just tests its bit. This keeps FLAGS a single
 * renameable 64-bit value.
 */
uint64_t encodeFlags(uint64_t a, uint64_t b);

/** Evaluate a condition code against an encoded FLAGS value. */
bool testCond(uint64_t flags, CondCode cc);

} // namespace chex

#endif // CHEX_ISA_UOPS_HH

#include "assembler.hh"

#include <algorithm>
#include <cstring>

#include "base/intmath.hh"
#include "base/logging.hh"

namespace chex
{

MemOperand
memAt(RegId base, int64_t disp, RegId index, uint8_t scale)
{
    MemOperand m;
    m.base = base;
    m.disp = disp;
    m.index = index;
    m.scale = scale;
    return m;
}

MemOperand
memAbs(uint64_t addr)
{
    MemOperand m;
    m.disp = static_cast<int64_t>(addr);
    return m;
}

MemOperand
memRip(uint64_t addr)
{
    MemOperand m;
    m.disp = static_cast<int64_t>(addr);
    m.ripRelative = true;
    return m;
}

Assembler::Assembler() = default;

Assembler::Label
Assembler::newLabel()
{
    labelTargets.push_back(-1);
    return labelTargets.size() - 1;
}

void
Assembler::bind(Label label)
{
    chex_assert(label < labelTargets.size(), "unknown label");
    chex_assert(labelTargets[label] < 0, "label bound twice");
    labelTargets[label] = static_cast<int64_t>(insts.size());
}

uint64_t
Assembler::addGlobal(const std::string &name, uint64_t size)
{
    uint64_t addr = layout::DataBase + nextDataOffset;
    nextDataOffset += roundUp(std::max<uint64_t>(size, 8), 8);
    symbols.push_back({name, addr, size});
    return addr;
}

uint64_t
Assembler::poolSlotFor(const std::string &name)
{
    auto it = poolSlots.find(name);
    if (it != poolSlots.end())
        return it->second;

    const Symbol *sym = nullptr;
    for (const auto &s : symbols)
        if (s.name == name)
            sym = &s;
    chex_assert(sym, "poolSlotFor: unknown global");

    uint64_t slot_addr = layout::PoolBase + nextPoolOffset;
    nextPoolOffset += 8;
    pool.push_back({slot_addr, sym->addr, name});
    poolSlots[name] = slot_addr;
    return slot_addr;
}

void
Assembler::setInitData(uint64_t addr, std::vector<uint8_t> bytes)
{
    initBlobs.push_back({addr, std::move(bytes)});
}

void
Assembler::setInitWords(uint64_t addr, const std::vector<uint64_t> &words)
{
    std::vector<uint8_t> bytes(words.size() * 8);
    std::memcpy(bytes.data(), words.data(), bytes.size());
    setInitData(addr, std::move(bytes));
}

MacroInst &
Assembler::emit(MacroOpcode op)
{
    chex_assert(!finalized, "emit after finalize");
    insts.emplace_back();
    insts.back().opcode = op;
    return insts.back();
}

void Assembler::nop() { emit(MacroOpcode::NOP); }

void
Assembler::movrr(RegId dst, RegId src)
{
    auto &i = emit(MacroOpcode::MOV_RR);
    i.dst = dst;
    i.src = src;
}

void
Assembler::movri(RegId dst, int64_t imm)
{
    auto &i = emit(MacroOpcode::MOV_RI);
    i.dst = dst;
    i.imm = imm;
}

void
Assembler::movrm(RegId dst, const MemOperand &mem, uint8_t size)
{
    auto &i = emit(MacroOpcode::MOV_RM);
    i.dst = dst;
    i.mem = mem;
    i.size = size;
}

void
Assembler::movmr(const MemOperand &mem, RegId src, uint8_t size)
{
    auto &i = emit(MacroOpcode::MOV_MR);
    i.src = src;
    i.mem = mem;
    i.size = size;
}

void
Assembler::movmi(const MemOperand &mem, int64_t imm, uint8_t size)
{
    auto &i = emit(MacroOpcode::MOV_MI);
    i.imm = imm;
    i.mem = mem;
    i.size = size;
}

void
Assembler::lea(RegId dst, const MemOperand &mem)
{
    auto &i = emit(MacroOpcode::LEA);
    i.dst = dst;
    i.mem = mem;
}

void
Assembler::pushr(RegId src)
{
    auto &i = emit(MacroOpcode::PUSH_R);
    i.src = src;
}

void
Assembler::popr(RegId dst)
{
    auto &i = emit(MacroOpcode::POP_R);
    i.dst = dst;
}

void
Assembler::xchgrr(RegId a, RegId b)
{
    auto &i = emit(MacroOpcode::XCHG_RR);
    i.dst = a;
    i.src = b;
}

namespace
{

void
rrForm(MacroInst &i, RegId dst, RegId src)
{
    i.dst = dst;
    i.src = src;
}

void
riForm(MacroInst &i, RegId dst, int64_t imm)
{
    i.dst = dst;
    i.imm = imm;
}

} // anonymous namespace

void Assembler::addrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::ADD_RR), d, s); }
void Assembler::addri(RegId d, int64_t v) { riForm(emit(MacroOpcode::ADD_RI), d, v); }

void
Assembler::addrm(RegId dst, const MemOperand &mem, uint8_t size)
{
    auto &i = emit(MacroOpcode::ADD_RM);
    i.dst = dst;
    i.mem = mem;
    i.size = size;
}

void
Assembler::addmr(const MemOperand &mem, RegId src, uint8_t size)
{
    auto &i = emit(MacroOpcode::ADD_MR);
    i.src = src;
    i.mem = mem;
    i.size = size;
}

void
Assembler::addmi(const MemOperand &mem, int64_t imm, uint8_t size)
{
    auto &i = emit(MacroOpcode::ADD_MI);
    i.imm = imm;
    i.mem = mem;
    i.size = size;
}

void Assembler::subrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::SUB_RR), d, s); }
void Assembler::subri(RegId d, int64_t v) { riForm(emit(MacroOpcode::SUB_RI), d, v); }
void Assembler::andrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::AND_RR), d, s); }
void Assembler::andri(RegId d, int64_t v) { riForm(emit(MacroOpcode::AND_RI), d, v); }
void Assembler::orrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::OR_RR), d, s); }
void Assembler::orri(RegId d, int64_t v) { riForm(emit(MacroOpcode::OR_RI), d, v); }
void Assembler::xorrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::XOR_RR), d, s); }
void Assembler::xorri(RegId d, int64_t v) { riForm(emit(MacroOpcode::XOR_RI), d, v); }
void Assembler::shlri(RegId d, int64_t v) { riForm(emit(MacroOpcode::SHL_RI), d, v); }
void Assembler::shrri(RegId d, int64_t v) { riForm(emit(MacroOpcode::SHR_RI), d, v); }
void Assembler::imulrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::IMUL_RR), d, s); }
void Assembler::imulri(RegId d, int64_t v) { riForm(emit(MacroOpcode::IMUL_RI), d, v); }

void
Assembler::incm(const MemOperand &mem, uint8_t size)
{
    auto &i = emit(MacroOpcode::INC_M);
    i.mem = mem;
    i.size = size;
}

void
Assembler::decm(const MemOperand &mem, uint8_t size)
{
    auto &i = emit(MacroOpcode::DEC_M);
    i.mem = mem;
    i.size = size;
}

void Assembler::cmprr(RegId a, RegId b) { rrForm(emit(MacroOpcode::CMP_RR), a, b); }
void Assembler::cmpri(RegId a, int64_t v) { riForm(emit(MacroOpcode::CMP_RI), a, v); }

void
Assembler::cmprm(RegId a, const MemOperand &mem, uint8_t size)
{
    auto &i = emit(MacroOpcode::CMP_RM);
    i.dst = a;
    i.mem = mem;
    i.size = size;
}

void Assembler::testrr(RegId a, RegId b) { rrForm(emit(MacroOpcode::TEST_RR), a, b); }
void Assembler::testri(RegId a, int64_t v) { riForm(emit(MacroOpcode::TEST_RI), a, v); }

void Assembler::fmovrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::FMOV_RR), d, s); }

void
Assembler::fmovrm(RegId dst, const MemOperand &mem)
{
    auto &i = emit(MacroOpcode::FMOV_RM);
    i.dst = dst;
    i.mem = mem;
}

void
Assembler::fmovmr(const MemOperand &mem, RegId src)
{
    auto &i = emit(MacroOpcode::FMOV_MR);
    i.src = src;
    i.mem = mem;
}

void Assembler::faddrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::FADD_RR), d, s); }
void Assembler::fmulrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::FMUL_RR), d, s); }
void Assembler::fdivrr(RegId d, RegId s) { rrForm(emit(MacroOpcode::FDIV_RR), d, s); }
void Assembler::fcvtri(RegId d, RegId s) { rrForm(emit(MacroOpcode::FCVT_RI), d, s); }

void
Assembler::jmp(Label target)
{
    emit(MacroOpcode::JMP);
    fixups.push_back({insts.size() - 1, target});
}

void
Assembler::jmpr(RegId target)
{
    auto &i = emit(MacroOpcode::JMP_R);
    i.src = target;
}

void
Assembler::jcc(CondCode cc, Label target)
{
    auto &i = emit(MacroOpcode::JCC);
    i.cc = cc;
    fixups.push_back({insts.size() - 1, target});
}

void
Assembler::call(IntrinsicKind kind)
{
    emit(MacroOpcode::CALL);
    callFixups.push_back({insts.size() - 1, kind});
}

void
Assembler::callLabel(Label target)
{
    emit(MacroOpcode::CALL);
    fixups.push_back({insts.size() - 1, target});
}

void
Assembler::callr(RegId target)
{
    auto &i = emit(MacroOpcode::CALL_R);
    i.src = target;
}

void Assembler::ret() { emit(MacroOpcode::RET); }
void Assembler::hlt() { emit(MacroOpcode::HLT); }

void
Assembler::setEntry(Label label)
{
    entryLabel = label;
}

void
Assembler::emitLibraryBody(IntrinsicKind kind)
{
    // Real instruction loops for the string/memory routines, so that
    // their loads and stores flow through the normal protection
    // machinery exactly like application code (R10/R11 are the
    // library-scratch registers of our calling convention).
    switch (kind) {
      case IntrinsicKind::Strcpy: {
        Label loop = newLabel();
        movri(R10, 0);
        bind(loop);
        movrm(R11, memAt(RSI, 0, R10, 1), 1);
        movmr(memAt(RDI, 0, R10, 1), R11, 1);
        addri(R10, 1);
        cmpri(R11, 0);
        jcc(CondCode::NE, loop);
        movrr(RAX, RDI);
        ret();
        break;
      }
      case IntrinsicKind::Memcpy: {
        Label loop = newLabel();
        Label done = newLabel();
        movri(R10, 0);
        bind(loop);
        cmprr(R10, RDX);
        jcc(CondCode::AE, done);
        movrm(R11, memAt(RSI, 0, R10, 1), 1);
        movmr(memAt(RDI, 0, R10, 1), R11, 1);
        addri(R10, 1);
        jmp(loop);
        bind(done);
        movrr(RAX, RDI);
        ret();
        break;
      }
      case IntrinsicKind::Memset: {
        Label loop = newLabel();
        Label done = newLabel();
        movri(R10, 0);
        bind(loop);
        cmprr(R10, RDX);
        jcc(CondCode::AE, done);
        movmr(memAt(RDI, 0, R10, 1), RSI, 1);
        addri(R10, 1);
        jmp(loop);
        bind(done);
        movrr(RAX, RDI);
        ret();
        break;
      }
      default:
        chex_panic("no library body for this intrinsic");
    }
}

Program
Assembler::finalize()
{
    chex_assert(!finalized, "finalize called twice");

    Program prog;

    // Emit one runtime-function body per distinct routine called:
    // INTRINSIC stubs for the allocator entry points (intercepted by
    // the MCU), real instruction loops for the string routines.
    std::vector<IntrinsicKind> kinds;
    for (const auto &cf : callFixups)
        if (std::find(kinds.begin(), kinds.end(), cf.kind) == kinds.end())
            kinds.push_back(cf.kind);

    std::map<IntrinsicKind, uint64_t> stubEntry;
    for (IntrinsicKind kind : kinds) {
        size_t entry_idx = insts.size();
        bool real_body = kind == IntrinsicKind::Memcpy ||
                         kind == IntrinsicKind::Memset ||
                         kind == IntrinsicKind::Strcpy;
        if (real_body) {
            emitLibraryBody(kind);
        } else {
            auto &body = emit(MacroOpcode::INTRINSIC);
            body.intrinsic = kind;
            emit(MacroOpcode::RET);
        }
        RuntimeFunc f;
        f.kind = kind;
        f.entryAddr = prog.codeBase + entry_idx * InstSlotBytes;
        f.exitAddr =
            prog.codeBase + (insts.size() - 1) * InstSlotBytes;
        prog.runtimeFuncs.push_back(f);
        stubEntry[kind] = f.entryAddr;
    }
    finalized = true;

    for (const auto &cf : callFixups)
        insts[cf.instIndex].target = stubEntry[cf.kind];

    for (const auto &fx : fixups) {
        chex_assert(fx.label < labelTargets.size() &&
                        labelTargets[fx.label] >= 0,
                    "unresolved label");
        insts[fx.instIndex].target =
            prog.codeBase +
            static_cast<uint64_t>(labelTargets[fx.label]) * InstSlotBytes;
    }

    prog.code = std::move(insts);
    prog.symbols = std::move(symbols);
    prog.pool = std::move(pool);
    prog.initData = std::move(initBlobs);
    prog.dataSize = nextDataOffset;
    if (entryLabel != SIZE_MAX) {
        chex_assert(labelTargets[entryLabel] >= 0, "unbound entry label");
        prog.entryPoint =
            prog.codeBase +
            static_cast<uint64_t>(labelTargets[entryLabel]) * InstSlotBytes;
    }
    return prog;
}

} // namespace chex

/**
 * @file
 * The checkpoint/restore subsystem: warm a simulated System to a
 * chosen macro-op count, capture its complete machine state as a
 * `chex-snapshot-v1` document (System::saveSnapshot), and bundle one
 * such machine entry per campaign job point into a self-describing
 * snapshot-bundle file.
 *
 * A bundle holds one entry per (profile, variant, config, seed)
 * point — warm-up state is variant-dependent (different variants
 * inject different micro-ops and touch different shadow structures),
 * so a shared warm-up checkpoint could not be bit-identical for all
 * of them. Entries are keyed by a caller-provided `specKey` (the
 * campaign driver passes its canonical spec hash), which keeps this
 * library independent of the driver while letting the driver match
 * bundle entries to jobs exactly.
 *
 * Determinism contract: restoring an entry into a System built from
 * the same SystemConfig and loaded with the same regenerated program
 * (the snapshot pins both by content hash) and running to completion
 * yields bit-identical results to the uninterrupted run. The
 * per-entry `stateHash` additionally pins the serialized state
 * bytes, so a corrupted or hand-edited bundle is rejected at load.
 */

#ifndef CHEX_SNAPSHOT_SNAPSHOT_HH
#define CHEX_SNAPSHOT_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/json.hh"
#include "sim/system.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace snapshot
{

/** Bundle-file schema tag (the machine states inside carry their
 * own `chex-snapshot-v1` format tag). */
constexpr const char *BundleFormatTag = "chex-snapshot-bundle-v1";

/** One warmed machine state: a System paused mid-run. */
struct MachineEntry
{
    std::string profileName;  // workload profile the state came from
    std::string variant;      // variantName() token
    uint64_t seed = 0;        // workload seed the program was built with
    uint64_t specKey = 0;     // caller identity (driver spec hash)
    uint64_t warmupMacros = 0; // macro-ops executed before the pause
    uint64_t stateHash = 0;   // jsonStateHash(state)
    json::Value state;        // chex-snapshot-v1 machine document
};

/** A set of warmed machine states sharing one campaign identity. */
struct Bundle
{
    uint64_t campaignSeed = 0;  // seed the entry seeds derive from
    uint64_t warmupMacros = 0;  // requested warm-up length
    std::vector<MachineEntry> entries;

    /** Entry with the given spec key; nullptr when absent. */
    const MachineEntry *findBySpecKey(uint64_t key) const;
};

/**
 * Warm one machine: build a System from @p config, load the
 * deterministically regenerated workload (profile, seed), run
 * @p warmup_macros macro-ops, and capture the paused state.
 * Fails (returning false with @p err set) when the run terminates
 * before reaching the warm-up point — a checkpoint of a finished
 * run fans out nothing — or when the config is not snapshottable.
 */
bool buildEntry(const BenchmarkProfile &profile,
                const SystemConfig &config, uint64_t seed,
                uint64_t warmup_macros, uint64_t spec_key,
                MachineEntry *out, std::string *err = nullptr);

/**
 * Restore @p entry into a fresh System built from @p config: the
 * workload program is regenerated from (profile, seed) and the
 * saved machine state applied on top. Returns false with @p err
 * set on any mismatch (see System::restoreSnapshot).
 */
bool restoreEntry(const MachineEntry &entry,
                  const BenchmarkProfile &profile,
                  const SystemConfig &config, System *sys,
                  std::string *err = nullptr);

/** @{ @name Bundle (de)serialization
 * fromJson verifies the bundle format tag and every entry's
 * stateHash against its serialized state, so a truncated or edited
 * bundle fails loudly instead of restoring subtly wrong state. */
json::Value toJson(const Bundle &bundle);
bool fromJson(const json::Value &v, Bundle *out,
              std::string *err = nullptr);
/** @} */

/** @{ @name Bundle files (pretty-printed JSON) */
bool writeBundleFile(const std::string &path, const Bundle &bundle,
                     std::string *err = nullptr);
bool loadBundleFile(const std::string &path, Bundle *out,
                    std::string *err = nullptr);
/** @} */

} // namespace snapshot
} // namespace chex

#endif // CHEX_SNAPSHOT_SNAPSHOT_HH

#include "codec.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "base/fnv.hh"

namespace chex
{
namespace snapshot
{

uint64_t
jsonStateHash(const json::Value &v)
{
    TaggedHasher h;
    h.str("snapshot.state", v.dump(0));
    return h.digest();
}

std::string
stateHashHex(uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

bool
stateHashFromHex(const std::string &hex, uint64_t *out)
{
    if (hex.size() != 16)
        return false;
    for (char c : hex) {
        bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
        if (!ok)
            return false;
    }
    *out = std::strtoull(hex.c_str(), nullptr, 16);
    return true;
}

bool
readTextFile(const std::string &path, std::string *out,
             std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot open '" + path + "' for reading";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (in.bad()) {
        if (err)
            *err = "read error on '" + path + "'";
        return false;
    }
    *out = ss.str();
    return true;
}

bool
writeTextFile(const std::string &path, const std::string &text,
              std::string *err)
{
    std::ofstream outf(path, std::ios::binary | std::ios::trunc);
    if (!outf) {
        if (err)
            *err = "cannot open '" + path + "' for writing";
        return false;
    }
    outf << text;
    outf.flush();
    if (!outf) {
        if (err)
            *err = "write error on '" + path + "'";
        return false;
    }
    return true;
}

} // namespace snapshot
} // namespace chex

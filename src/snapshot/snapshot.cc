#include "snapshot.hh"

#include "snapshot/codec.hh"
#include "workload/generator.hh"

namespace chex
{
namespace snapshot
{

const MachineEntry *
Bundle::findBySpecKey(uint64_t key) const
{
    if (!key)
        return nullptr; // 0 marks unhashable jobs; never match them
    for (const MachineEntry &e : entries)
        if (e.specKey == key)
            return &e;
    return nullptr;
}

bool
buildEntry(const BenchmarkProfile &profile, const SystemConfig &config,
           uint64_t seed, uint64_t warmup_macros, uint64_t spec_key,
           MachineEntry *out, std::string *err)
{
    System sys(config);
    sys.load(generateWorkload(profile, seed));
    if (!sys.runMacros(warmup_macros)) {
        if (err) {
            *err = "workload '" + profile.name + "' terminated before " +
                   "the warm-up point; nothing to checkpoint "
                   "(shorten --warmup)";
        }
        return false;
    }
    std::string save_err;
    json::Value state = sys.saveSnapshot(&save_err);
    if (state.isNull()) {
        if (err)
            *err = save_err;
        return false;
    }
    out->profileName = profile.name;
    out->variant = variantName(config.variant.kind);
    out->seed = seed;
    out->specKey = spec_key;
    out->warmupMacros = warmup_macros;
    out->stateHash = jsonStateHash(state);
    out->state = std::move(state);
    return true;
}

bool
restoreEntry(const MachineEntry &entry, const BenchmarkProfile &profile,
             const SystemConfig &config, System *sys, std::string *err)
{
    sys->load(generateWorkload(profile, entry.seed));
    return sys->restoreSnapshot(entry.state, err);
}

json::Value
toJson(const Bundle &bundle)
{
    json::Value jentries = json::Value::array();
    for (const MachineEntry &e : bundle.entries) {
        jentries.push(json::Value::object()
                          .set("profile", e.profileName)
                          .set("variant", e.variant)
                          .set("seed", e.seed)
                          .set("specKey", stateHashHex(e.specKey))
                          .set("warmupMacros", e.warmupMacros)
                          .set("stateHash", stateHashHex(e.stateHash))
                          .set("state", e.state));
    }
    return json::Value::object()
        .set("format", BundleFormatTag)
        .set("campaignSeed", bundle.campaignSeed)
        .set("warmupMacros", bundle.warmupMacros)
        .set("entries", std::move(jentries));
}

bool
fromJson(const json::Value &v, Bundle *out, std::string *err)
{
    auto fail = [err](const std::string &why) {
        if (err)
            *err = why;
        return false;
    };
    if (!v.isObject())
        return fail("snapshot bundle is not a JSON object");
    if (json::getString(v, "format", "") != BundleFormatTag) {
        return fail("unrecognized snapshot bundle format (want " +
                    std::string(BundleFormatTag) + ")");
    }
    const json::Value *jentries = v.find("entries");
    if (!jentries || !jentries->isArray())
        return fail("snapshot bundle has no entries array");

    Bundle b;
    b.campaignSeed = json::getUint(v, "campaignSeed", 0);
    b.warmupMacros = json::getUint(v, "warmupMacros", 0);
    for (size_t i = 0; i < jentries->size(); ++i) {
        const json::Value &je = jentries->at(i);
        if (!je.isObject())
            return fail("snapshot bundle entry is not an object");
        MachineEntry e;
        e.profileName = json::getString(je, "profile", "");
        e.variant = json::getString(je, "variant", "");
        e.seed = json::getUint(je, "seed", 0);
        e.warmupMacros = json::getUint(je, "warmupMacros", 0);
        if (!stateHashFromHex(json::getString(je, "specKey", ""),
                              &e.specKey) ||
            !stateHashFromHex(json::getString(je, "stateHash", ""),
                              &e.stateHash)) {
            return fail("snapshot bundle entry '" + e.profileName +
                        "/" + e.variant + "' has a malformed key hash");
        }
        const json::Value *jstate = je.find("state");
        if (!jstate)
            return fail("snapshot bundle entry '" + e.profileName +
                        "/" + e.variant + "' has no state");
        e.state = *jstate;
        // Verify the recorded state digest against the bytes we just
        // parsed: bundles are large files that get copied between
        // machines, and a silently truncated or edited state must
        // not restore into a subtly different simulation.
        uint64_t got = jsonStateHash(e.state);
        if (got != e.stateHash) {
            return fail("snapshot bundle entry '" + e.profileName +
                        "/" + e.variant + "' is corrupt: state hash " +
                        stateHashHex(got) + " != recorded " +
                        stateHashHex(e.stateHash));
        }
        b.entries.push_back(std::move(e));
    }
    *out = std::move(b);
    return true;
}

bool
writeBundleFile(const std::string &path, const Bundle &bundle,
                std::string *err)
{
    return writeTextFile(path, toJson(bundle).dump(2) + "\n", err);
}

bool
loadBundleFile(const std::string &path, Bundle *out, std::string *err)
{
    std::string text;
    if (!readTextFile(path, &text, err))
        return false;
    json::Value v;
    std::string parse_err;
    if (!json::Value::parse(text, v, &parse_err)) {
        if (err)
            *err = "'" + path + "' is not valid JSON: " + parse_err;
        return false;
    }
    return fromJson(v, out, err);
}

} // namespace snapshot
} // namespace chex

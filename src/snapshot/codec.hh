/**
 * @file
 * Small codec helpers for the snapshot subsystem: a canonical
 * content hash over JSON state documents (what pins a restored
 * machine to the exact bytes that were saved) and whole-file
 * text I/O with caller-visible error strings.
 */

#ifndef CHEX_SNAPSHOT_CODEC_HH
#define CHEX_SNAPSHOT_CODEC_HH

#include <cstdint>
#include <string>

#include "base/json.hh"

namespace chex
{
namespace snapshot
{

/**
 * Canonical content hash of a JSON document: the FNV-1a digest of
 * its compact (indent-0) serialization. Objects preserve insertion
 * order in this JSON layer, so save → hash → write → parse → hash
 * is stable, and any single-bit change to the serialized state
 * changes the digest. Never returns 0.
 */
uint64_t jsonStateHash(const json::Value &v);

/** Digest as 16 lower-case hex digits (and back). */
std::string stateHashHex(uint64_t hash);
bool stateHashFromHex(const std::string &hex, uint64_t *out);

/**
 * Read a whole file into @p out. Returns false and fills @p err
 * (if non-null) when the file cannot be opened or read.
 */
bool readTextFile(const std::string &path, std::string *out,
                  std::string *err = nullptr);

/** Write @p text to @p path, replacing any existing content. */
bool writeTextFile(const std::string &path, const std::string &text,
                   std::string *err = nullptr);

} // namespace snapshot
} // namespace chex

#endif // CHEX_SNAPSHOT_CODEC_HH

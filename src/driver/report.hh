/**
 * @file
 * Campaign-report serialization: RunResult, JobResult, and
 * CampaignReport → JSON (schema "chex-campaign-report-v5", described
 * in DESIGN.md §8) and back. The RunResult serializer is also what
 * single runs use to emit structured stats next to
 * System::dumpStatsJson, and the fromJson direction is how
 * fork-isolated workers stream results to the campaign parent and
 * how cache sources and report consumers (the merge subcommand,
 * diff tools) load v1 through v5 files.
 */

#ifndef CHEX_DRIVER_REPORT_HH
#define CHEX_DRIVER_REPORT_HH

#include <ostream>

#include "base/json.hh"
#include "driver/campaign.hh"

namespace chex
{
namespace driver
{

/** Every RunResult field as a flat JSON object. */
json::Value toJson(const RunResult &r);

/** One violation record as {kind, pc, addr, pid}. */
json::Value toJson(const ViolationRecord &v);

/** One job outcome; includes the RunResult unless the job failed. */
json::Value toJson(const JobResult &jr);

/** The whole campaign: schema tag, summary block, per-job array. */
json::Value toJson(const CampaignReport &report);

/** Pretty-print the campaign report JSON to @p os (with newline). */
void writeReport(const CampaignReport &report, std::ostream &os);

/**
 * @{ @name JSON → struct (the parse direction)
 *
 * Rebuild the structs from parsed report documents. Unknown members
 * are ignored and absent members keep their struct defaults, so
 * schema-v1 files (no `cause`/`exitStatus`/`attemptSeconds`) load
 * cleanly: a failed v1 job maps to FailureCause::Exception, the only
 * failure v1 could record. v1/v2 files (no `specHash`/`cached`/
 * `exitCode`/`signal`) parse with specHash 0 (never a cache hit) and
 * the conflated `exitStatus` split by cause: signal/timeout failures
 * backfill `termSignal`, everything else `exitCode`. Pre-v4 files
 * (no `shard` block, no "skipped" job status) parse as complete
 * unsharded reports — shard 0 of 1, nothing skipped. Pre-v5 files
 * (no `fromSnapshot`) parse with every job from scratch. Returns false
 * and fills @p err (if non-null) when @p v is structurally wrong
 * (not an object, bad schema tag, jobs not an array, ...).
 */
bool fromJson(const json::Value &v, RunResult &out,
              std::string *err = nullptr);
bool fromJson(const json::Value &v, ViolationRecord &out,
              std::string *err = nullptr);
bool fromJson(const json::Value &v, JobResult &out,
              std::string *err = nullptr);
bool fromJson(const json::Value &v, CampaignReport &out,
              std::string *err = nullptr);
/** @} */

/**
 * Read + parse a report file in one step (the common prologue of
 * every report consumer: the CLI's --cache and merge inputs, the
 * bench harnesses' CHEX_BENCH_CACHE). Returns false and fills
 * @p err (if non-null) when the file is unreadable or not a
 * campaign report; the *policy* for that (hard error vs warn and
 * skip) stays with the caller.
 */
bool loadReportFile(const std::string &path, CampaignReport &out,
                    std::string *err = nullptr);

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_REPORT_HH

/**
 * @file
 * Campaign-report serialization: RunResult, JobResult, and
 * CampaignReport → JSON (schema "chex-campaign-report-v1", described
 * in DESIGN.md). The RunResult serializer is also what single runs
 * use to emit structured stats next to System::dumpStatsJson.
 */

#ifndef CHEX_DRIVER_REPORT_HH
#define CHEX_DRIVER_REPORT_HH

#include <ostream>

#include "base/json.hh"
#include "driver/campaign.hh"

namespace chex
{
namespace driver
{

/** Every RunResult field as a flat JSON object. */
json::Value toJson(const RunResult &r);

/** One violation record as {kind, pc, addr, pid}. */
json::Value toJson(const ViolationRecord &v);

/** One job outcome; includes the RunResult unless the job failed. */
json::Value toJson(const JobResult &jr);

/** The whole campaign: schema tag, summary block, per-job array. */
json::Value toJson(const CampaignReport &report);

/** Pretty-print the campaign report JSON to @p os (with newline). */
void writeReport(const CampaignReport &report, std::ostream &os);

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_REPORT_HH

#include "campaign.hh"

#include <chrono>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "attacks/registry.hh"
#include "base/logging.hh"
#include "driver/spec_hash.hh"
#include "driver/subprocess.hh"
#include "snapshot/snapshot.hh"
#include "workload/generator.hh"

namespace chex
{
namespace driver
{

const char *
failureCauseName(FailureCause cause)
{
    switch (cause) {
      case FailureCause::None: return "none";
      case FailureCause::Exception: return "exception";
      case FailureCause::Signal: return "signal";
      case FailureCause::Timeout: return "timeout";
      case FailureCause::NonzeroExit: return "nonzero-exit";
      default: return "???";
    }
}

FailureCause
failureCauseFromName(const std::string &name, bool *known)
{
    static const FailureCause all[] = {
        FailureCause::None, FailureCause::Exception,
        FailureCause::Signal, FailureCause::Timeout,
        FailureCause::NonzeroExit,
    };
    for (FailureCause c : all) {
        if (name == failureCauseName(c)) {
            if (known)
                *known = true;
            return c;
        }
    }
    // A token from a newer (or corrupt) report: coercing silently
    // would make a bad cache report invisible, so say what happened.
    chex_warn("report: unknown failure cause '%s'; treating as "
              "exception",
              name.c_str());
    if (known)
        *known = false;
    return FailureCause::Exception;
}

uint64_t
jobSeed(uint64_t campaign_seed, size_t index)
{
    // Decorrelate (seed, index) pairs with the splitmix64 finalizer;
    // the golden-ratio stride keeps adjacent indices far apart.
    uint64_t x = campaign_seed +
                 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(index) + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x ? x : 1;
}

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Sanity-check a finished run (stuck workloads must not pass). */
RunResult
checkedResult(const JobSpec &spec, RunResult r)
{
    if (!r.exited && !r.violationDetected && !r.hijackedControlFlow)
        throw std::runtime_error(
            csprintf("workload '%s' neither exited nor flagged a "
                     "violation (macro-op cap %s)",
                     spec.profile.name.c_str(),
                     r.hitMacroCap ? "hit" : "not hit"));
    return r;
}

/** Default job body: synthesize, simulate, sanity-check. */
RunResult
runSpec(const JobSpec &spec, uint64_t seed)
{
    System sys(spec.config);
    sys.load(generateWorkload(spec.profile, seed));
    return checkedResult(spec, sys.run());
}

/**
 * Attack job body: resolve (or synthesize, for "gen/<family>" IDs
 * with the job seed as generator input) the attack case, run it,
 * and record whether the exploit's corruption indicator fired —
 * the baseline-validity signal the security report is built on.
 */
RunResult
runAttackSpec(const JobSpec &spec, uint64_t seed)
{
    AttackCase attack;
    std::string err;
    if (!findAttackByName(spec.attack, seed, &attack, &err))
        throw std::runtime_error(err);
    System sys(spec.config);
    sys.load(attack.program);
    RunResult r = checkedResult(spec, sys.run());
    if (attack.indicatorAddr != 0) {
        r.indicatorChecked = true;
        r.indicatorFired =
            sys.memory().read(attack.indicatorAddr, 8) ==
            attack.indicatorExpect;
    }
    return r;
}

/** Snapshot job body: restore the warmed checkpoint, then run on. */
RunResult
runSpecFromSnapshot(const JobSpec &spec, uint64_t seed,
                    const snapshot::MachineEntry &entry)
{
    if (entry.seed != seed) {
        // The spec hash covers the seed, so a key match with a
        // different seed means the bundle itself is inconsistent.
        throw std::runtime_error(
            csprintf("snapshot entry for '%s' was built with seed "
                     "%llu, job wants %llu",
                     spec.label.c_str(),
                     static_cast<unsigned long long>(entry.seed),
                     static_cast<unsigned long long>(seed)));
    }
    System sys(spec.config);
    std::string err;
    if (!snapshot::restoreEntry(entry, spec.profile, spec.config,
                                &sys, &err)) {
        throw std::runtime_error(
            csprintf("cannot restore snapshot for '%s': %s",
                     spec.label.c_str(), err.c_str()));
    }
    return checkedResult(spec, sys.run());
}

/**
 * The snapshot bundle entry this job would restore from, or nullptr
 * when the job runs from scratch (no bundle, body override, or no
 * entry for its spec). Keyed by the *base* spec hash — the folded
 * hash in JobResult::specHash exists precisely so that it cannot
 * collide back onto the bundle key space.
 */
const snapshot::MachineEntry *
snapshotEntryFor(const JobSpec &spec, uint64_t seed,
                 const CampaignOptions &opts)
{
    if (!opts.snapshot || spec.body || !spec.attack.empty())
        return nullptr;
    return opts.snapshot->findBySpecKey(specHash(spec, seed));
}

/**
 * Fill the identity fields every JobResult carries, run or cached.
 * specHash stays 0 for body-override jobs: their outcome is not a
 * function of the hashed spec, so recording a hash would let a later
 * campaign wrongly satisfy a default-body job from their result.
 * Snapshot-matched jobs fold the snapshot state hash in: a job
 * resumed from a checkpoint is a different simulation point.
 */
JobResult
describeJob(const JobSpec &spec, size_t index,
            const CampaignOptions &opts)
{
    JobResult jr;
    jr.index = index;
    jr.label = spec.label;
    jr.profileName = spec.profile.name;
    jr.variant = variantName(spec.config.variant.kind);
    jr.repetition = spec.repetition;
    jr.attack = spec.attack;
    jr.seed = spec.workloadSeed ? *spec.workloadSeed
                                : jobSeed(opts.seed, index);
    jr.specHash = spec.body ? 0 : specHash(spec, jr.seed);
    if (const snapshot::MachineEntry *entry =
            snapshotEntryFor(spec, jr.seed, opts)) {
        jr.fromSnapshot = true;
        jr.specHash = foldSnapshotHash(jr.specHash, entry->stateHash);
    }
    return jr;
}

/** Execute one job, including bounded retry and failure capture. */
JobResult
executeJob(const JobSpec &spec, size_t index,
           const CampaignOptions &opts)
{
    JobResult jr = describeJob(spec, index, opts);
    const snapshot::MachineEntry *snap =
        snapshotEntryFor(spec, jr.seed, opts);
    auto run_body = [&]() {
        if (spec.body)
            return spec.body(spec, jr.seed);
        if (!spec.attack.empty())
            return runAttackSpec(spec, jr.seed);
        return snap ? runSpecFromSnapshot(spec, jr.seed, *snap)
                    : runSpec(spec, jr.seed);
    };

    // Wall time accumulates across attempts (attemptSeconds keeps
    // the per-attempt breakdown), so a job that fails twice before
    // succeeding reports what it actually cost, not just the last
    // attempt.
    auto record_attempt = [&](double seconds) {
        jr.attemptSeconds.push_back(seconds);
        jr.wallSeconds += seconds;
    };

    unsigned max_attempts = std::max(1u, opts.maxAttempts);
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        jr.attempts = attempt;

        if (opts.isolation) {
            AttemptOutcome out =
                runIsolatedAttempt(run_body, opts.timeoutSeconds);
            record_attempt(out.wallSeconds);
            if (out.ok) {
                jr.run = std::move(out.run);
                jr.failed = false;
                jr.error.clear();
                jr.cause = FailureCause::None;
                jr.exitStatus = 0;
                jr.exitCode = 0;
                jr.termSignal = 0;
                return jr;
            }
            jr.failed = true;
            jr.cause = out.cause;
            jr.error = out.error;
            jr.exitStatus = out.exitStatus;
            jr.exitCode = out.exitCode;
            jr.termSignal = out.termSignal;
            continue;
        }

        Clock::time_point start = Clock::now();
        try {
            jr.run = run_body();
            record_attempt(secondsSince(start));
            jr.failed = false;
            jr.error.clear();
            jr.cause = FailureCause::None;
            return jr;
        } catch (const std::exception &e) {
            record_attempt(secondsSince(start));
            jr.failed = true;
            jr.cause = FailureCause::Exception;
            jr.error = e.what();
        } catch (...) {
            record_attempt(secondsSince(start));
            jr.failed = true;
            jr.cause = FailureCause::Exception;
            jr.error = "unknown exception";
        }
    }
    return jr;
}

} // namespace

CampaignReport
runCampaign(const std::vector<JobSpec> &jobs,
            const CampaignOptions &opts)
{
    CampaignReport report;
    report.seed = opts.seed;
    report.jobs.resize(jobs.size());

    unsigned shard_count = std::max(1u, opts.shardCount);
    if (opts.shardIndex >= shard_count) {
        chex_fatal("campaign: shard index %u out of range for %u "
                   "shards",
                   opts.shardIndex, shard_count);
    }
    report.shardIndex = opts.shardIndex;
    report.shardCount = shard_count;

    unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    unsigned workers = opts.workers ? opts.workers : hw;
    workers = std::max(1u,
                       std::min<unsigned>(
                           workers, static_cast<unsigned>(
                                        std::max<size_t>(1, jobs.size()))));
    report.workers = workers;

    Clock::time_point campaign_start = Clock::now();

    // Result-cache index over the prior reports: specHash -> prior
    // successful job. Failed/timed-out prior jobs never enter the
    // index (their point must re-run), and specHash 0 marks
    // uncacheable entries (body overrides, pre-v3 reports). The
    // first occurrence wins when reports overlap.
    std::unordered_map<uint64_t, const JobResult *> cache;
    for (const CampaignReport &prior : opts.cacheReports)
        for (const JobResult &pjr : prior.jobs)
            if (!pjr.failed && pjr.specHash)
                cache.emplace(pjr.specHash, &pjr);

    // Emit placeholder rows for out-of-shard jobs and satisfy cache
    // hits up front (submission order, before any worker starts),
    // then queue only the remaining indices. Out-of-shard jobs never
    // consult the cache: each index must be provided by exactly one
    // shard, which is what lets mergeReports reject overlaps.
    std::vector<size_t> to_run;
    to_run.reserve(jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        JobResult jr = describeJob(jobs[i], i, opts);
        if (i % shard_count != opts.shardIndex) {
            jr.skipped = true;
            report.jobs[i] = std::move(jr);
            continue;
        }
        const JobResult *hit = nullptr;
        if (jr.specHash) {
            auto it = cache.find(jr.specHash);
            // The seed feeds the hash, so the equality check only
            // guards against hash collisions — but a wrong cache hit
            // silently corrupts a figure, so belt and braces.
            if (it != cache.end() && it->second->seed == jr.seed)
                hit = it->second;
        }
        if (!hit) {
            to_run.push_back(i);
            continue;
        }
        jr.cached = true;
        jr.attempts = 0;
        jr.run = hit->run;
        report.jobs[i] = std::move(jr);
        if (opts.onJobDone)
            opts.onJobDone(report.jobs[i]);
    }

    // Lock-guarded work queue of job indices. Results land in
    // pre-sized per-job slots (each index is popped exactly once, so
    // slot writes are unshared). The progress callback serializes on
    // its own lock: a slow onJobDone hook must not stall every other
    // worker's queue pop.
    std::mutex queue_mtx;
    std::mutex done_mtx;
    std::queue<size_t> pending;
    for (size_t i : to_run)
        pending.push(i);

    auto worker_fn = [&]() {
        for (;;) {
            size_t index;
            {
                std::lock_guard<std::mutex> lock(queue_mtx);
                if (pending.empty())
                    return;
                index = pending.front();
                pending.pop();
            }
            report.jobs[index] = executeJob(jobs[index], index, opts);
            if (opts.onJobDone) {
                std::lock_guard<std::mutex> lock(done_mtx);
                opts.onJobDone(report.jobs[index]);
            }
        }
    };

    if (workers == 1) {
        worker_fn(); // in-caller: easier to debug, nothing to join
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            pool.emplace_back(worker_fn);
        for (std::thread &t : pool)
            t.join();
    }

    report.wallSeconds = secondsSince(campaign_start);
    for (const JobResult &jr : report.jobs) {
        if (jr.skipped) {
            report.jobsSkipped++;
            continue;
        }
        report.jobsRun++;
        report.serialSeconds += jr.wallSeconds;
        if (jr.cached)
            report.jobsCached++;
        if (jr.fromSnapshot)
            report.jobsFromSnapshot++;
        if (jr.failed) {
            report.jobsFailed++;
            continue;
        }
        report.totalCycles += jr.run.cycles;
        report.totalUops += jr.run.uops;
    }
    report.speedup = report.wallSeconds > 0.0
                         ? report.serialSeconds / report.wallSeconds
                         : 0.0;
    report.aggregateIpc =
        report.totalCycles
            ? static_cast<double>(report.totalUops) / report.totalCycles
            : 0.0;
    return report;
}

std::vector<JobSpec>
buildMatrix(const std::vector<BenchmarkProfile> &profiles,
            const std::vector<VariantKind> &variants,
            uint64_t workload_seed, const SystemConfig &base)
{
    std::vector<JobSpec> jobs;
    jobs.reserve(profiles.size() * variants.size());
    for (const BenchmarkProfile &p : profiles) {
        for (VariantKind kind : variants) {
            JobSpec spec;
            spec.label = p.name + "/" + variantName(kind);
            spec.profile = p;
            spec.config = base;
            spec.config.variant.kind = kind;
            spec.workloadSeed = workload_seed;
            jobs.push_back(std::move(spec));
        }
    }
    return jobs;
}

} // namespace driver
} // namespace chex

#include "env.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "base/logging.hh"

namespace chex
{
namespace driver
{

namespace
{

/**
 * Parse @p s as a positive integer; garbage, zero, and negative
 * values yield 0 (the "invalid" sentinel — every knob using this
 * rejects 0 anyway).
 */
uint64_t
parsePositive(const char *s)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s, &end, 10);
    // strtoull wraps negatives around instead of failing.
    if (std::strchr(s, '-') || errno != 0 || !end || *end != '\0')
        return 0;
    return v;
}

/**
 * Warn-and-fall-back for a malformed positive-integer knob.
 * @p dflt_desc names the fallback in the warning when the default
 * value alone would be cryptic (e.g. 0 meaning "all cores").
 */
uint64_t
positiveEnv(const char *name, uint64_t dflt,
            const char *dflt_desc = nullptr)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return dflt;
    uint64_t v = parsePositive(s);
    if (v == 0) {
        std::fprintf(stderr,
                     "chex: %s='%s' is not a positive integer; "
                     "using %s\n",
                     name, s,
                     dflt_desc
                         ? dflt_desc
                         : csprintf("%llu",
                                    static_cast<unsigned long long>(
                                        dflt))
                               .c_str());
        return dflt;
    }
    return v;
}

} // namespace

bool
parseShardSpec(const std::string &spec, unsigned &index,
               unsigned &count, std::string *err)
{
    auto fail = [&](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };
    size_t slash = spec.find('/');
    if (slash == std::string::npos)
        return fail("expected INDEX/COUNT, e.g. 0/2");
    std::string idx_s = spec.substr(0, slash);
    std::string cnt_s = spec.substr(slash + 1);
    if (idx_s.empty() || cnt_s.empty())
        return fail("expected INDEX/COUNT, e.g. 0/2");
    // The index may legitimately be 0, so parse it separately from
    // the positive-only count.
    char *end = nullptr;
    errno = 0;
    unsigned long long idx = std::strtoull(idx_s.c_str(), &end, 10);
    if (std::strchr(idx_s.c_str(), '-') || errno != 0 || !end ||
        *end != '\0') {
        return fail(csprintf("'%s' is not a shard index",
                             idx_s.c_str()));
    }
    uint64_t cnt = parsePositive(cnt_s.c_str());
    if (cnt == 0) {
        return fail(csprintf("'%s' is not a positive shard count",
                             cnt_s.c_str()));
    }
    if (idx >= cnt) {
        return fail(csprintf("shard index %llu out of range for "
                             "%llu shards",
                             idx,
                             static_cast<unsigned long long>(cnt)));
    }
    index = static_cast<unsigned>(idx);
    count = static_cast<unsigned>(cnt);
    return true;
}

EnvOptions
optionsFromEnv()
{
    EnvOptions env;

    env.scale = positiveEnv("CHEX_BENCH_SCALE", 1);
    env.jobs = static_cast<unsigned>(
        positiveEnv("CHEX_BENCH_JOBS", 0, "all cores"));

    if (const char *s = std::getenv("CHEX_BENCH_ISOLATE"))
        env.isolate = *s && std::strcmp(s, "0") != 0;

    if (const char *s = std::getenv("CHEX_BENCH_TIMEOUT")) {
        if (*s) {
            char *end = nullptr;
            double v = std::strtod(s, &end);
            if (!end || *end != '\0' || !(v >= 0.0)) {
                std::fprintf(stderr,
                             "chex: CHEX_BENCH_TIMEOUT='%s' is not a "
                             "non-negative number of seconds; "
                             "watchdog off\n",
                             s);
            } else {
                env.timeoutSeconds = v;
            }
        }
    }

    if (const char *s = std::getenv("CHEX_BENCH_CACHE")) {
        std::stringstream paths(s);
        std::string path;
        while (std::getline(paths, path, ':'))
            if (!path.empty())
                env.cachePaths.push_back(path);
    }

    if (const char *s = std::getenv("CHEX_BENCH_SNAPSHOT"))
        env.snapshotPath = s;

    if (const char *s = std::getenv("CHEX_BENCH_SHARD")) {
        if (*s) {
            std::string err;
            if (!parseShardSpec(s, env.shardIndex, env.shardCount,
                                &err)) {
                std::fprintf(stderr,
                             "chex: CHEX_BENCH_SHARD='%s': %s; "
                             "running unsharded\n",
                             s, err.c_str());
            }
        }
    }

    return env;
}

void
EnvOptions::applyTo(CampaignOptions &opts) const
{
    opts.workers = jobs;
    opts.isolation = isolate;
    opts.timeoutSeconds = timeoutSeconds;
    opts.shardIndex = shardIndex;
    opts.shardCount = shardCount;
}

} // namespace driver
} // namespace chex

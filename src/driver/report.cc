#include "report.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "cap/capability.hh"
#include "driver/spec_hash.hh"

namespace chex
{
namespace driver
{

json::Value
toJson(const ViolationRecord &v)
{
    return json::Value::object()
        .set("kind", violationName(v.kind))
        .set("pc", v.pc)
        .set("addr", v.addr)
        .set("pid", static_cast<uint64_t>(v.pid));
}

json::Value
toJson(const RunResult &r)
{
    json::Value violations = json::Value::array();
    for (const ViolationRecord &v : r.violations)
        violations.push(toJson(v));

    return json::Value::object()
        // Outcome
        .set("exited", r.exited)
        .set("violationDetected", r.violationDetected)
        .set("hijackedControlFlow", r.hijackedControlFlow)
        .set("hitMacroCap", r.hitMacroCap)
        .set("violations", std::move(violations))
        // Timing
        .set("cycles", r.cycles)
        .set("macroOps", r.macroOps)
        .set("uops", r.uops)
        .set("ipc", r.ipc)
        .set("seconds", r.seconds)
        .set("squashCyclesBranch", r.squashCyclesBranch)
        .set("squashCyclesAlias", r.squashCyclesAlias)
        .set("squashFraction", r.squashFraction)
        .set("branchMispredicts", r.branchMispredicts)
        // Capability machinery
        .set("capChecksInjected", r.capChecksInjected)
        .set("zeroIdiomChecks", r.zeroIdiomChecks)
        .set("injectedUops", r.injectedUops)
        .set("capCacheMissRate", r.capCacheMissRate)
        .set("capCacheAccesses", r.capCacheAccesses)
        // Alias machinery
        .set("aliasCacheMissRate", r.aliasCacheMissRate)
        .set("aliasCacheAccesses", r.aliasCacheAccesses)
        .set("aliasPredAccuracy", r.aliasPredAccuracy)
        .set("reloadMispredictionRate", r.reloadMispredictionRate)
        .set("p0anFlushes", r.p0anFlushes)
        .set("pmanForwards", r.pmanForwards)
        .set("pna0ZeroIdioms", r.pna0ZeroIdioms)
        .set("pointerSpills", r.pointerSpills)
        .set("pointerReloads", r.pointerReloads)
        .set("loads", r.loads)
        // Memory
        .set("dramBytes", r.dramBytes)
        .set("bandwidthMBps", r.bandwidthMBps)
        .set("residentBytes", r.residentBytes)
        .set("shadowBytes", r.shadowBytes)
        .set("footprintBytes", r.footprintBytes)
        // Heap behaviour
        .set("totalAllocations", r.totalAllocations)
        .set("maxLiveAllocations", r.maxLiveAllocations)
        .set("avgAllocationsInUse", r.avgAllocationsInUse)
        // Attack-job indicator (new in v6; always false elsewhere)
        .set("indicatorChecked", r.indicatorChecked)
        .set("indicatorFired", r.indicatorFired);
}

json::Value
toJson(const JobResult &jr)
{
    json::Value attempt_seconds = json::Value::array();
    for (double s : jr.attemptSeconds)
        attempt_seconds.push(s);

    // A skipped row is an out-of-shard placeholder: identity only,
    // neither a result nor a failure.
    const char *status =
        jr.skipped ? "skipped" : (jr.failed ? "failed" : "ok");
    json::Value job = json::Value::object()
                          .set("index", static_cast<uint64_t>(jr.index))
                          .set("label", jr.label)
                          .set("profile", jr.profileName)
                          .set("variant", jr.variant)
                          .set("seed", jr.seed)
                          .set("repetition", jr.repetition)
                          .set("specHash", specHashHex(jr.specHash))
                          .set("cached", jr.cached)
                          .set("fromSnapshot", jr.fromSnapshot)
                          .set("status", status)
                          .set("attempts", jr.attempts)
                          .set("wallSeconds", jr.wallSeconds)
                          .set("attemptSeconds",
                               std::move(attempt_seconds));
    // Attack jobs only (new in v6): workload rows keep their shape.
    if (!jr.attack.empty())
        job.set("attack", jr.attack);
    if (jr.skipped) {
        // Placeholder rows carry nothing further.
    } else if (jr.failed) {
        job.set("error", jr.error)
            .set("cause", failureCauseName(jr.cause))
            // exitStatus is the legacy conflated field (kept so v2
            // consumers keep working); exitCode/signal disambiguate
            // a watchdog SIGKILL from an exit with code 9.
            .set("exitStatus", jr.exitStatus)
            .set("exitCode", jr.exitCode)
            .set("signal", jr.termSignal);
    } else {
        job.set("result", toJson(jr.run));
    }
    return job;
}

json::Value
toJson(const CampaignReport &report)
{
    json::Value jobs = json::Value::array();
    for (const JobResult &jr : report.jobs)
        jobs.push(toJson(jr));

    return json::Value::object()
        .set("schema", "chex-campaign-report-v6")
        .set("seed", report.seed)
        .set("workers", report.workers)
        .set("shard", json::Value::object()
                          .set("index", report.shardIndex)
                          .set("count", std::max(1u,
                                                 report.shardCount)))
        .set("summary",
             json::Value::object()
                 .set("jobsRun", static_cast<uint64_t>(report.jobsRun))
                 .set("jobsFailed",
                      static_cast<uint64_t>(report.jobsFailed))
                 .set("jobsCached",
                      static_cast<uint64_t>(report.jobsCached))
                 .set("jobsSkipped",
                      static_cast<uint64_t>(report.jobsSkipped))
                 .set("jobsFromSnapshot",
                      static_cast<uint64_t>(report.jobsFromSnapshot))
                 .set("wallSeconds", report.wallSeconds)
                 .set("serialSeconds", report.serialSeconds)
                 .set("speedupVsSerial", report.speedup)
                 .set("totalCycles", report.totalCycles)
                 .set("totalUops", report.totalUops)
                 .set("aggregateIpc", report.aggregateIpc))
        .set("jobs", std::move(jobs));
}

void
writeReport(const CampaignReport &report, std::ostream &os)
{
    toJson(report).write(os, 2);
    os << "\n";
}

namespace
{

bool
failParse(std::string *err, const char *what)
{
    if (err)
        *err = csprintf("report: %s", what);
    return false;
}

Violation
violationFromName(const std::string &name)
{
    static const Violation all[] = {
        Violation::None,           Violation::OutOfBounds,
        Violation::UseAfterFree,   Violation::DoubleFree,
        Violation::InvalidFree,    Violation::PermissionDenied,
        Violation::WildPointer,    Violation::OversizeAlloc,
        Violation::UninitializedRead,
    };
    for (Violation v : all)
        if (name == violationName(v))
            return v;
    return Violation::None;
}

} // namespace

bool
fromJson(const json::Value &v, ViolationRecord &out, std::string *err)
{
    if (!v.isObject())
        return failParse(err, "violation record is not an object");
    out.kind = violationFromName(json::getString(v, "kind", "none"));
    out.pc = json::getUint(v, "pc", 0);
    out.addr = json::getUint(v, "addr", 0);
    out.pid = static_cast<Pid>(json::getUint(v, "pid", NoPid));
    return true;
}

bool
fromJson(const json::Value &v, RunResult &out, std::string *err)
{
    if (!v.isObject())
        return failParse(err, "run result is not an object");
    out = RunResult();
    // Outcome
    out.exited = json::getBool(v, "exited", false);
    out.violationDetected = json::getBool(v, "violationDetected", false);
    out.hijackedControlFlow =
        json::getBool(v, "hijackedControlFlow", false);
    out.hitMacroCap = json::getBool(v, "hitMacroCap", false);
    if (const json::Value *violations = v.find("violations")) {
        if (!violations->isArray())
            return failParse(err, "'violations' is not an array");
        for (const json::Value &rec : violations->items()) {
            ViolationRecord vr;
            if (!fromJson(rec, vr, err))
                return false;
            out.violations.push_back(vr);
        }
    }
    // Timing
    out.cycles = json::getUint(v, "cycles", 0);
    out.macroOps = json::getUint(v, "macroOps", 0);
    out.uops = json::getUint(v, "uops", 0);
    out.ipc = json::getDouble(v, "ipc", 0.0);
    out.seconds = json::getDouble(v, "seconds", 0.0);
    out.squashCyclesBranch = json::getUint(v, "squashCyclesBranch", 0);
    out.squashCyclesAlias = json::getUint(v, "squashCyclesAlias", 0);
    out.squashFraction = json::getDouble(v, "squashFraction", 0.0);
    out.branchMispredicts = json::getUint(v, "branchMispredicts", 0);
    // Capability machinery
    out.capChecksInjected = json::getUint(v, "capChecksInjected", 0);
    out.zeroIdiomChecks = json::getUint(v, "zeroIdiomChecks", 0);
    out.injectedUops = json::getUint(v, "injectedUops", 0);
    out.capCacheMissRate = json::getDouble(v, "capCacheMissRate", 0.0);
    out.capCacheAccesses = json::getUint(v, "capCacheAccesses", 0);
    // Alias machinery
    out.aliasCacheMissRate =
        json::getDouble(v, "aliasCacheMissRate", 0.0);
    out.aliasCacheAccesses = json::getUint(v, "aliasCacheAccesses", 0);
    out.aliasPredAccuracy =
        json::getDouble(v, "aliasPredAccuracy", 1.0);
    out.reloadMispredictionRate =
        json::getDouble(v, "reloadMispredictionRate", 0.0);
    out.p0anFlushes = json::getUint(v, "p0anFlushes", 0);
    out.pmanForwards = json::getUint(v, "pmanForwards", 0);
    out.pna0ZeroIdioms = json::getUint(v, "pna0ZeroIdioms", 0);
    out.pointerSpills = json::getUint(v, "pointerSpills", 0);
    out.pointerReloads = json::getUint(v, "pointerReloads", 0);
    out.loads = json::getUint(v, "loads", 0);
    // Memory
    out.dramBytes = json::getUint(v, "dramBytes", 0);
    out.bandwidthMBps = json::getDouble(v, "bandwidthMBps", 0.0);
    out.residentBytes = json::getUint(v, "residentBytes", 0);
    out.shadowBytes = json::getUint(v, "shadowBytes", 0);
    out.footprintBytes = json::getUint(v, "footprintBytes", 0);
    // Heap behaviour
    out.totalAllocations = json::getUint(v, "totalAllocations", 0);
    out.maxLiveAllocations = json::getUint(v, "maxLiveAllocations", 0);
    out.avgAllocationsInUse =
        json::getDouble(v, "avgAllocationsInUse", 0.0);
    // Attack-job indicator: new in v6, absent (false) before.
    out.indicatorChecked = json::getBool(v, "indicatorChecked", false);
    out.indicatorFired = json::getBool(v, "indicatorFired", false);
    return true;
}

bool
fromJson(const json::Value &v, JobResult &out, std::string *err)
{
    if (!v.isObject())
        return failParse(err, "job record is not an object");
    out = JobResult();
    out.index = static_cast<size_t>(json::getUint(v, "index", 0));
    out.label = json::getString(v, "label", "");
    out.profileName = json::getString(v, "profile", "");
    out.variant = json::getString(v, "variant", "");
    out.seed = json::getUint(v, "seed", 0);
    out.repetition =
        static_cast<unsigned>(json::getUint(v, "repetition", 0));
    // Attack-case ID: new in v6, absent (workload job) before.
    out.attack = json::getString(v, "attack", "");
    // v1/v2 jobs carry no hash: they parse with specHash 0, which
    // never matches a computed hash, so pre-v3 reports load cleanly
    // as cache sources but yield no hits.
    out.specHash =
        specHashFromHex(json::getString(v, "specHash", ""));
    out.cached = json::getBool(v, "cached", false);
    // New in v5; pre-v5 jobs all ran from scratch.
    out.fromSnapshot = json::getBool(v, "fromSnapshot", false);
    std::string status = json::getString(v, "status", "ok");
    out.failed = status == "failed";
    // "skipped" is new in v4; pre-v4 reports never carry it, so
    // their jobs all parse as provided (skipped = false).
    out.skipped = status == "skipped";
    out.attempts =
        static_cast<unsigned>(json::getUint(v, "attempts", 1));
    out.wallSeconds = json::getDouble(v, "wallSeconds", 0.0);
    if (const json::Value *as = v.find("attemptSeconds")) {
        if (!as->isArray())
            return failParse(err, "'attemptSeconds' is not an array");
        for (const json::Value &s : as->items())
            out.attemptSeconds.push_back(
                s.isNumber() ? s.number() : 0.0);
    }
    if (out.failed) {
        out.error = json::getString(v, "error", "");
        // v1 has no `cause`: an exception was the only failure it
        // could record, so that is the backfill default.
        out.cause = failureCauseFromName(
            json::getString(v, "cause", "exception"));
        out.exitStatus = static_cast<int>(
            json::getInt(v, "exitStatus", 0));
        if (v.find("exitCode") || v.find("signal")) {
            out.exitCode =
                static_cast<int>(json::getInt(v, "exitCode", 0));
            out.termSignal =
                static_cast<int>(json::getInt(v, "signal", 0));
        } else {
            // v1/v2 conflate signal number and exit code in
            // exitStatus; the cause says which one it was.
            if (out.cause == FailureCause::Signal ||
                out.cause == FailureCause::Timeout) {
                out.termSignal = out.exitStatus;
            } else {
                out.exitCode = out.exitStatus;
            }
        }
    } else if (const json::Value *res = v.find("result")) {
        if (!fromJson(*res, out.run, err))
            return false;
    }
    return true;
}

bool
fromJson(const json::Value &v, CampaignReport &out, std::string *err)
{
    if (!v.isObject())
        return failParse(err, "report is not an object");
    std::string schema = json::getString(v, "schema", "");
    if (schema != "chex-campaign-report-v1" &&
        schema != "chex-campaign-report-v2" &&
        schema != "chex-campaign-report-v3" &&
        schema != "chex-campaign-report-v4" &&
        schema != "chex-campaign-report-v5" &&
        schema != "chex-campaign-report-v6") {
        return failParse(err, schema.empty()
                                  ? "missing schema tag"
                                  : "unknown schema tag");
    }
    out = CampaignReport();
    out.seed = json::getUint(v, "seed", 0);
    out.workers =
        static_cast<unsigned>(json::getUint(v, "workers", 0));
    // Pre-v4 reports have no shard block: they are complete
    // unsharded campaigns, i.e. shard 0 of 1.
    if (const json::Value *shard = v.find("shard")) {
        if (!shard->isObject())
            return failParse(err, "'shard' is not an object");
        out.shardIndex = static_cast<unsigned>(
            json::getUint(*shard, "index", 0));
        out.shardCount = static_cast<unsigned>(
            json::getUint(*shard, "count", 1));
        if (out.shardCount == 0 ||
            out.shardIndex >= out.shardCount) {
            return failParse(err, "'shard' index/count out of range");
        }
    }
    if (const json::Value *summary = v.find("summary")) {
        out.jobsRun = static_cast<size_t>(
            json::getUint(*summary, "jobsRun", 0));
        out.jobsFailed = static_cast<size_t>(
            json::getUint(*summary, "jobsFailed", 0));
        out.jobsCached = static_cast<size_t>(
            json::getUint(*summary, "jobsCached", 0));
        out.jobsSkipped = static_cast<size_t>(
            json::getUint(*summary, "jobsSkipped", 0));
        out.jobsFromSnapshot = static_cast<size_t>(
            json::getUint(*summary, "jobsFromSnapshot", 0));
        out.wallSeconds = json::getDouble(*summary, "wallSeconds", 0.0);
        out.serialSeconds =
            json::getDouble(*summary, "serialSeconds", 0.0);
        out.speedup = json::getDouble(*summary, "speedupVsSerial", 0.0);
        out.totalCycles = json::getUint(*summary, "totalCycles", 0);
        out.totalUops = json::getUint(*summary, "totalUops", 0);
        out.aggregateIpc =
            json::getDouble(*summary, "aggregateIpc", 0.0);
    }
    const json::Value *jobs = v.find("jobs");
    if (!jobs || !jobs->isArray())
        return failParse(err, "'jobs' is missing or not an array");
    for (const json::Value &job : jobs->items()) {
        JobResult jr;
        if (!fromJson(job, jr, err))
            return false;
        out.jobs.push_back(std::move(jr));
    }
    return true;
}

bool
loadReportFile(const std::string &path, CampaignReport &out,
               std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = csprintf("cannot read '%s'", path.c_str());
        return false;
    }
    std::stringstream body;
    body << in.rdbuf();
    json::Value doc;
    std::string parse_err;
    if (!json::Value::parse(body.str(), doc, &parse_err) ||
        !fromJson(doc, out, &parse_err)) {
        if (err)
            *err = csprintf("'%s' is not a campaign report: %s",
                            path.c_str(), parse_err.c_str());
        return false;
    }
    return true;
}

} // namespace driver
} // namespace chex

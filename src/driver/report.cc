#include "report.hh"

#include "cap/capability.hh"

namespace chex
{
namespace driver
{

json::Value
toJson(const ViolationRecord &v)
{
    return json::Value::object()
        .set("kind", violationName(v.kind))
        .set("pc", v.pc)
        .set("addr", v.addr)
        .set("pid", static_cast<uint64_t>(v.pid));
}

json::Value
toJson(const RunResult &r)
{
    json::Value violations = json::Value::array();
    for (const ViolationRecord &v : r.violations)
        violations.push(toJson(v));

    return json::Value::object()
        // Outcome
        .set("exited", r.exited)
        .set("violationDetected", r.violationDetected)
        .set("hijackedControlFlow", r.hijackedControlFlow)
        .set("hitMacroCap", r.hitMacroCap)
        .set("violations", std::move(violations))
        // Timing
        .set("cycles", r.cycles)
        .set("macroOps", r.macroOps)
        .set("uops", r.uops)
        .set("ipc", r.ipc)
        .set("seconds", r.seconds)
        .set("squashCyclesBranch", r.squashCyclesBranch)
        .set("squashCyclesAlias", r.squashCyclesAlias)
        .set("squashFraction", r.squashFraction)
        .set("branchMispredicts", r.branchMispredicts)
        // Capability machinery
        .set("capChecksInjected", r.capChecksInjected)
        .set("zeroIdiomChecks", r.zeroIdiomChecks)
        .set("injectedUops", r.injectedUops)
        .set("capCacheMissRate", r.capCacheMissRate)
        .set("capCacheAccesses", r.capCacheAccesses)
        // Alias machinery
        .set("aliasCacheMissRate", r.aliasCacheMissRate)
        .set("aliasCacheAccesses", r.aliasCacheAccesses)
        .set("aliasPredAccuracy", r.aliasPredAccuracy)
        .set("reloadMispredictionRate", r.reloadMispredictionRate)
        .set("p0anFlushes", r.p0anFlushes)
        .set("pmanForwards", r.pmanForwards)
        .set("pna0ZeroIdioms", r.pna0ZeroIdioms)
        .set("pointerSpills", r.pointerSpills)
        .set("pointerReloads", r.pointerReloads)
        .set("loads", r.loads)
        // Memory
        .set("dramBytes", r.dramBytes)
        .set("bandwidthMBps", r.bandwidthMBps)
        .set("residentBytes", r.residentBytes)
        .set("shadowBytes", r.shadowBytes)
        .set("footprintBytes", r.footprintBytes)
        // Heap behaviour
        .set("totalAllocations", r.totalAllocations)
        .set("maxLiveAllocations", r.maxLiveAllocations)
        .set("avgAllocationsInUse", r.avgAllocationsInUse);
}

json::Value
toJson(const JobResult &jr)
{
    json::Value job = json::Value::object()
                          .set("index", static_cast<uint64_t>(jr.index))
                          .set("label", jr.label)
                          .set("profile", jr.profileName)
                          .set("variant", jr.variant)
                          .set("seed", jr.seed)
                          .set("repetition", jr.repetition)
                          .set("status", jr.failed ? "failed" : "ok")
                          .set("attempts", jr.attempts)
                          .set("wallSeconds", jr.wallSeconds);
    if (jr.failed)
        job.set("error", jr.error);
    else
        job.set("result", toJson(jr.run));
    return job;
}

json::Value
toJson(const CampaignReport &report)
{
    json::Value jobs = json::Value::array();
    for (const JobResult &jr : report.jobs)
        jobs.push(toJson(jr));

    return json::Value::object()
        .set("schema", "chex-campaign-report-v1")
        .set("seed", report.seed)
        .set("workers", report.workers)
        .set("summary",
             json::Value::object()
                 .set("jobsRun", static_cast<uint64_t>(report.jobsRun))
                 .set("jobsFailed",
                      static_cast<uint64_t>(report.jobsFailed))
                 .set("wallSeconds", report.wallSeconds)
                 .set("serialSeconds", report.serialSeconds)
                 .set("speedupVsSerial", report.speedup)
                 .set("totalCycles", report.totalCycles)
                 .set("totalUops", report.totalUops)
                 .set("aggregateIpc", report.aggregateIpc))
        .set("jobs", std::move(jobs));
}

void
writeReport(const CampaignReport &report, std::ostream &os)
{
    toJson(report).write(os, 2);
    os << "\n";
}

} // namespace driver
} // namespace chex

/**
 * @file
 * Fork-isolated execution of one campaign-job attempt.
 *
 * The worker fork()s a child that evaluates the job body and streams
 * the RunResult back to the parent over a pipe as a single JSON
 * document (the same serializers the campaign report uses, plus the
 * fromJson direction to rebuild the struct). The parent supervises
 * the child with a per-attempt wall-clock watchdog and classifies
 * every way the attempt can end:
 *
 *  - child exits 0 with {"ok": true, "result": {...}}  -> success
 *  - child exits 0 with {"ok": false, "error": "..."}  -> Exception
 *  - child dies on a signal (chex_panic -> SIGABRT,
 *    SIGSEGV, ...)                                     -> Signal
 *  - child outlives the watchdog and is SIGKILLed      -> Timeout
 *  - child exits non-zero / garbles the result         -> NonzeroExit
 *
 * One bad (profile × variant × seed) point therefore costs exactly
 * one job, never the campaign process.
 */

#ifndef CHEX_DRIVER_SUBPROCESS_HH
#define CHEX_DRIVER_SUBPROCESS_HH

#include <functional>
#include <string>

#include "driver/campaign.hh"

namespace chex
{
namespace driver
{

/** What one fork-isolated attempt produced. */
struct AttemptOutcome
{
    bool ok = false;

    /** The child's reconstructed RunResult; valid only when ok. */
    RunResult run;

    FailureCause cause = FailureCause::None;
    std::string error; // human-readable detail when !ok

    /**
     * Legacy conflated field (v1/v2 reports): exit code, or signal
     * number for Signal/Timeout. Prefer exitCode/termSignal, which
     * can tell a watchdog SIGKILL from an exit with code 9.
     */
    int exitStatus = 0;

    /** Child exit code (cause NonzeroExit); 0 otherwise. */
    int exitCode = 0;

    /** Terminating/killing signal (cause Signal/Timeout); else 0. */
    int termSignal = 0;

    /** Parent-measured wall clock of the whole attempt. */
    double wallSeconds = 0.0;
};

/**
 * Fork a child, evaluate @p body in it, and supervise: the child
 * reports its RunResult (or exception message) over a pipe, and the
 * parent kills it once @p timeout_seconds of wall clock elapse
 * (0 = no watchdog). Safe to call concurrently from multiple worker
 * threads. Never throws; every failure mode is an AttemptOutcome.
 */
AttemptOutcome runIsolatedAttempt(
    const std::function<RunResult()> &body, double timeout_seconds);

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_SUBPROCESS_HH

/**
 * @file
 * Canonical content hashing of campaign job specs.
 *
 * The campaign result cache keys each job by a stable 64-bit hash of
 * everything that determines its outcome: every BenchmarkProfile
 * parameter (so a --scale change, which rewrites the iteration
 * count, changes the hash), the full SystemConfig including the
 * enforcement variant, and the effective workload seed. Nothing
 * positional goes in — not the job index, not the repetition
 * ordinal, not the display label, and not the shard geometry — so
 * the same (spec, seed) point hashes identically no matter where it
 * sits in which campaign. Shard independence is what lets a merged
 * shard report (merge.hh) feed the cache of any later re-run,
 * sharded differently or not at all.
 *
 * The hash is a tagged FNV-1a over a canonical little-endian byte
 * stream (each field is emitted as "name\0" + 8 value bytes), so it
 * is stable across runs, platforms, and struct-layout changes.
 * Adding a SystemConfig/BenchmarkProfile field requires extending
 * specHash(); the unit tests pin known inputs to guard the encoding.
 *
 * Jobs with a `body` override are NOT content-hashable — the
 * std::function hides arbitrary behaviour — so the driver records
 * specHash 0 for them and never satisfies them from a cache.
 * specHash() itself never returns 0.
 */

#ifndef CHEX_DRIVER_SPEC_HASH_HH
#define CHEX_DRIVER_SPEC_HASH_HH

#include <cstdint>
#include <string>

#include "driver/campaign.hh"

namespace chex
{
namespace driver
{

/**
 * Content hash of (@p spec, @p seed): profile parameters, full
 * SystemConfig, and the effective workload seed. Never returns 0
 * (0 is the "uncacheable" sentinel for body-override jobs).
 */
uint64_t specHash(const JobSpec &spec, uint64_t seed);

/**
 * Fold a snapshot's machine-state digest into a job's spec hash.
 * A job fanned out from a restored checkpoint is a different
 * simulation point than the same (spec, seed) run from scratch —
 * its warm-up prefix already happened — so its cache identity must
 * differ too, or a from-scratch cache hit would satisfy (and
 * corrupt) a snapshot campaign and vice versa. Never returns 0.
 */
uint64_t foldSnapshotHash(uint64_t spec_hash, uint64_t state_hash);

/** The hash as the 16-digit lower-case hex the report records. */
std::string specHashHex(uint64_t hash);

/**
 * Parse a report's hex specHash; malformed or empty input yields 0
 * (which never matches a computed hash).
 */
uint64_t specHashFromHex(const std::string &hex);

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_SPEC_HASH_HH

/**
 * @file
 * Security report: distills a campaign report whose rows are attack
 * jobs (JobSpec::attack) into the `chex-security-report-v1` JSON
 * block — per-variant detection rate with anchor-class breakdown,
 * baseline validity rate (did the exploit's corruption indicator
 * fire under the insecure baseline?), and the (attack, seed) of
 * every escaped attack for one-command replay triage.
 *
 * The report is a pure function of the campaign rows (no timing
 * fields), so plain, sharded-then-merged, and cache-satisfied runs
 * of the same campaign produce bit-identical security reports.
 */

#ifndef CHEX_DRIVER_SECURITY_REPORT_HH
#define CHEX_DRIVER_SECURITY_REPORT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/json.hh"
#include "driver/campaign.hh"

namespace chex
{
namespace driver
{

/** Detection statistics for one enforcement variant. */
struct SecurityVariantSummary
{
    std::string variant;
    size_t attacks = 0;       // attack jobs run under this variant
    size_t detected = 0;      // jobs that flagged any violation
    size_t anchorMatches = 0; // expected class among the violations
    /** First-flagged violation class -> count (detected jobs). */
    std::map<std::string, size_t> byClass;
};

/** One undetected attack, keyed for replay. */
struct SecurityEscape
{
    size_t index = 0;     // campaign job index (replay --index)
    std::string attack;   // attack-case ID
    uint64_t seed = 0;    // generator/job seed
    std::string variant;
    std::string expected; // the anchor class that never fired
    /**
     * True when the same (attack, seed) fired its indicator under
     * the baseline — i.e. the escape is a *real* exploit the
     * variant missed, not a dud case.
     */
    bool baselineValid = false;
};

/** The distilled security view of one attack campaign. */
struct SecurityReport
{
    uint64_t campaignSeed = 0;
    size_t attackJobs = 0;        // rows with an attack ID
    size_t failedJobs = 0;        // excluded from every rate below
    size_t baselineChecked = 0;   // baseline rows with an indicator
    size_t baselineValid = 0;     // ...whose indicator fired
    std::vector<SecurityVariantSummary> variants; // sorted by name
    std::vector<SecurityEscape> escaped;          // job-index order
};

/**
 * Build the security view of @p report. Fails (false, diagnostic in
 * @p err) when the report is still sharded (merge first: rates over
 * a slice would silently misrepresent the campaign), contains
 * skipped attack rows, or an attack ID no longer resolves.
 * Non-attack rows are ignored, so mixed campaigns work.
 */
bool buildSecurityReport(const CampaignReport &report,
                         SecurityReport *out, std::string *err);

/** Serialize as the `chex-security-report-v1` schema. */
json::Value toJson(const SecurityReport &report);

/** Write the JSON document (stable formatting, trailing newline). */
void writeSecurityReport(const SecurityReport &report,
                         std::ostream &os);

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_SECURITY_REPORT_HH

/**
 * @file
 * Recombining sharded campaign reports. A campaign run as K shards
 * (CampaignOptions::shardIndex/shardCount) produces K reports that
 * all carry the full submission-order job list — each report holds
 * real rows for its own shard and skipped placeholder rows for
 * everyone else's. mergeReports() stitches them back into the one
 * report an unsharded run would have produced: per-job results are
 * taken verbatim from the owning shard (bit-identical by the
 * driver's determinism contract) and every aggregate is recomputed
 * from the merged rows.
 *
 * Validation is strict, because a silently wrong merge corrupts
 * figures: the shards must agree on the campaign seed and job
 * count, every per-job identity (seed, specHash, label) must match
 * across shards, no job index may be provided by more than one
 * shard, and no index may be provided by none (an incomplete shard
 * set).
 *
 * A merged report is an ordinary complete report (shard 0 of 1):
 * it feeds --cache / CampaignOptions::cacheReports exactly like an
 * unsharded report, which is what makes the distribute-merge-rerun
 * workflow close the loop.
 */

#ifndef CHEX_DRIVER_MERGE_HH
#define CHEX_DRIVER_MERGE_HH

#include <string>
#include <vector>

#include "driver/campaign.hh"

namespace chex
{
namespace driver
{

/**
 * Merge @p shards (any order) into @p out. Returns false — leaving
 * @p out empty — and fills @p err (if non-null) when the shards are
 * not a complete, consistent, non-overlapping partition of one
 * campaign.
 */
bool mergeReports(const std::vector<CampaignReport> &shards,
                  CampaignReport &out, std::string *err = nullptr);

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_MERGE_HH

#include "security_report.hh"

#include <ostream>

#include "attacks/registry.hh"
#include "base/logging.hh"
#include "cap/capability.hh"
#include "ucode/variant.hh"

namespace chex
{
namespace driver
{

namespace
{

bool
failBuild(std::string *err, std::string what)
{
    if (err)
        *err = "security report: " + std::move(what);
    return false;
}

const char *BaselineName = variantName(VariantKind::Baseline);

} // anonymous namespace

bool
buildSecurityReport(const CampaignReport &report, SecurityReport *out,
                    std::string *err)
{
    if (std::max(1u, report.shardCount) != 1) {
        return failBuild(err,
                         "input report is one shard of a sharded "
                         "campaign; merge the shards first "
                         "(chex-campaign merge)");
    }

    *out = SecurityReport();
    out->campaignSeed = report.seed;

    // Pass 1: baseline validity per (attack, seed) — the ground
    // truth an enforcement-row escape is judged against.
    std::map<std::pair<std::string, uint64_t>, bool> baseline_fired;
    for (const JobResult &jr : report.jobs) {
        if (jr.attack.empty())
            continue;
        if (jr.skipped) {
            return failBuild(
                err, csprintf("attack job %zu is a skipped shard "
                              "placeholder; merge the shards first",
                              jr.index));
        }
        ++out->attackJobs;
        if (jr.failed) {
            ++out->failedJobs;
            continue;
        }
        if (jr.variant != BaselineName)
            continue;
        if (!jr.run.indicatorChecked)
            continue;
        ++out->baselineChecked;
        if (jr.run.indicatorFired)
            ++out->baselineValid;
        baseline_fired[{jr.attack, jr.seed}] = jr.run.indicatorFired;
    }

    // Pass 2: per-variant detection over the enforcement rows.
    std::map<std::string, SecurityVariantSummary> variants;
    for (const JobResult &jr : report.jobs) {
        if (jr.attack.empty() || jr.failed ||
            jr.variant == BaselineName) {
            continue;
        }

        // Re-resolve the case to recover the expected anchor class;
        // for generated attacks this re-synthesizes the identical
        // program from (ID, seed).
        AttackCase attack;
        std::string resolve_err;
        if (!findAttackByName(jr.attack, jr.seed, &attack,
                              &resolve_err)) {
            return failBuild(
                err, csprintf("job %zu: %s", jr.index,
                              resolve_err.c_str()));
        }

        SecurityVariantSummary &s = variants[jr.variant];
        s.variant = jr.variant;
        ++s.attacks;
        if (jr.run.violationDetected) {
            ++s.detected;
            if (!jr.run.violations.empty())
                ++s.byClass[violationName(
                    jr.run.violations[0].kind)];
            // Anchor accounting over *all* recorded violations: an
            // incidental earlier violation must not misclassify a
            // case whose expected anchor fires second.
            for (const ViolationRecord &v : jr.run.violations) {
                if (v.kind == attack.expected) {
                    ++s.anchorMatches;
                    break;
                }
            }
            continue;
        }

        SecurityEscape esc;
        esc.index = jr.index;
        esc.attack = jr.attack;
        esc.seed = jr.seed;
        esc.variant = jr.variant;
        esc.expected = violationName(attack.expected);
        auto it = baseline_fired.find({jr.attack, jr.seed});
        esc.baselineValid = it != baseline_fired.end() && it->second;
        out->escaped.push_back(std::move(esc));
    }

    out->variants.reserve(variants.size());
    for (auto &[name, summary] : variants)
        out->variants.push_back(std::move(summary));
    return true;
}

json::Value
toJson(const SecurityReport &report)
{
    json::Value variants = json::Value::array();
    for (const SecurityVariantSummary &s : report.variants) {
        json::Value by_class = json::Value::object();
        for (const auto &[cls, n] : s.byClass)
            by_class.set(cls, static_cast<uint64_t>(n));
        variants.push(
            json::Value::object()
                .set("variant", s.variant)
                .set("attacks", static_cast<uint64_t>(s.attacks))
                .set("detected", static_cast<uint64_t>(s.detected))
                .set("anchorMatches",
                     static_cast<uint64_t>(s.anchorMatches))
                .set("detectionRate",
                     s.attacks ? static_cast<double>(s.detected) /
                                     static_cast<double>(s.attacks)
                               : 0.0)
                .set("byClass", std::move(by_class)));
    }

    json::Value escaped = json::Value::array();
    for (const SecurityEscape &e : report.escaped) {
        escaped.push(json::Value::object()
                         .set("index",
                              static_cast<uint64_t>(e.index))
                         .set("attack", e.attack)
                         .set("seed", e.seed)
                         .set("variant", e.variant)
                         .set("expected", e.expected)
                         .set("baselineValid", e.baselineValid));
    }

    return json::Value::object()
        .set("schema", "chex-security-report-v1")
        .set("campaignSeed", report.campaignSeed)
        .set("attackJobs", static_cast<uint64_t>(report.attackJobs))
        .set("failedJobs", static_cast<uint64_t>(report.failedJobs))
        .set("baseline",
             json::Value::object()
                 .set("checked",
                      static_cast<uint64_t>(report.baselineChecked))
                 .set("valid",
                      static_cast<uint64_t>(report.baselineValid))
                 .set("validityRate",
                      report.baselineChecked
                          ? static_cast<double>(
                                report.baselineValid) /
                                static_cast<double>(
                                    report.baselineChecked)
                          : 0.0))
        .set("variants", std::move(variants))
        .set("escaped", std::move(escaped));
}

void
writeSecurityReport(const SecurityReport &report, std::ostream &os)
{
    toJson(report).write(os, 2);
    os << "\n";
}

} // namespace driver
} // namespace chex

#include "spec_hash.hh"

#include "base/fnv.hh"
#include "base/logging.hh"
#include "sim/config_hash.hh"

namespace chex
{
namespace driver
{

namespace
{

void
hashProfile(TaggedHasher &h, const BenchmarkProfile &p)
{
    h.str("profile.name", p.name);
    h.u64("profile.isParsec", p.isParsec);
    h.u64("profile.totalAllocations", p.totalAllocations);
    h.u64("profile.maxLiveBuffers", p.maxLiveBuffers);
    h.u64("profile.buffersInUse", p.buffersInUse);
    h.u64("profile.allocSizeMin", p.allocSizeMin);
    h.u64("profile.allocSizeMax", p.allocSizeMax);
    h.u64("profile.dominantPattern",
          static_cast<uint64_t>(p.dominantPattern));
    h.f64("profile.pointerIntensity", p.pointerIntensity);
    h.u64("profile.chaseDepth", p.chaseDepth);
    h.u64("profile.accessesPerVisit", p.accessesPerVisit);
    h.f64("profile.fpFraction", p.fpFraction);
    h.f64("profile.branchiness", p.branchiness);
    h.u64("profile.iterations", p.iterations);
    h.u64("profile.scheduleLength", p.scheduleLength);
}

} // namespace

uint64_t
specHash(const JobSpec &spec, uint64_t seed)
{
    TaggedHasher h;
    hashProfile(h, spec.profile);
    hashSystemConfig(h, spec.config);
    h.u64("seed", seed);
    // Guarded so every pre-existing (non-attack) spec keeps its
    // historical hash: old reports stay valid cache inputs.
    if (!spec.attack.empty())
        h.str("attack.case", spec.attack);
    return h.digest();
}

uint64_t
foldSnapshotHash(uint64_t spec_hash, uint64_t state_hash)
{
    TaggedHasher h;
    h.u64("spec", spec_hash);
    h.u64("snapshot.stateHash", state_hash);
    return h.digest();
}

std::string
specHashHex(uint64_t hash)
{
    return csprintf("%016llx",
                    static_cast<unsigned long long>(hash));
}

uint64_t
specHashFromHex(const std::string &hex)
{
    // specHashHex always writes exactly 16 digits; anything else is
    // a corrupt report member, not a shorter encoding.
    if (hex.size() != 16)
        return 0;
    uint64_t v = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return 0;
        v = (v << 4) | static_cast<uint64_t>(digit);
    }
    return v;
}

} // namespace driver
} // namespace chex

#include "spec_hash.hh"

#include <cstring>

#include "base/logging.hh"

namespace chex
{
namespace driver
{

namespace
{

/**
 * Tagged FNV-1a 64 over a canonical byte stream. Every field goes in
 * as its tag (including the terminating NUL, so "ab"+"c" cannot
 * collide with "a"+"bc") followed by the value as 8 little-endian
 * bytes; doubles contribute their IEEE-754 bit pattern. The encoding
 * is therefore independent of host endianness and struct layout.
 */
class SpecHasher
{
  public:
    void
    bytes(const void *data, size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            _hash ^= p[i];
            _hash *= 0x100000001b3ull; // FNV-1a 64 prime
        }
    }

    void
    tag(const char *name)
    {
        bytes(name, std::strlen(name) + 1);
    }

    void
    u64(const char *name, uint64_t v)
    {
        tag(name);
        unsigned char le[8];
        for (int i = 0; i < 8; ++i)
            le[i] = static_cast<unsigned char>(v >> (8 * i));
        bytes(le, sizeof(le));
    }

    void
    f64(const char *name, double v)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(name, bits);
    }

    void
    str(const char *name, const std::string &s)
    {
        tag(name);
        u64("len", s.size());
        bytes(s.data(), s.size());
    }

    uint64_t
    digest() const
    {
        return _hash ? _hash : 1;
    }

  private:
    uint64_t _hash = 0xcbf29ce484222325ull; // FNV-1a 64 offset basis
};

void
hashProfile(SpecHasher &h, const BenchmarkProfile &p)
{
    h.str("profile.name", p.name);
    h.u64("profile.isParsec", p.isParsec);
    h.u64("profile.totalAllocations", p.totalAllocations);
    h.u64("profile.maxLiveBuffers", p.maxLiveBuffers);
    h.u64("profile.buffersInUse", p.buffersInUse);
    h.u64("profile.allocSizeMin", p.allocSizeMin);
    h.u64("profile.allocSizeMax", p.allocSizeMax);
    h.u64("profile.dominantPattern",
          static_cast<uint64_t>(p.dominantPattern));
    h.f64("profile.pointerIntensity", p.pointerIntensity);
    h.u64("profile.chaseDepth", p.chaseDepth);
    h.u64("profile.accessesPerVisit", p.accessesPerVisit);
    h.f64("profile.fpFraction", p.fpFraction);
    h.f64("profile.branchiness", p.branchiness);
    h.u64("profile.iterations", p.iterations);
    h.u64("profile.scheduleLength", p.scheduleLength);
}

void
hashConfig(SpecHasher &h, const SystemConfig &cfg)
{
    const CoreConfig &core = cfg.core;
    h.f64("core.frequencyGHz", core.frequencyGHz);
    h.u64("core.fetchWidth", core.fetchWidth);
    h.u64("core.issueWidth", core.issueWidth);
    h.u64("core.commitWidth", core.commitWidth);
    h.u64("core.robEntries", core.robEntries);
    h.u64("core.iqEntries", core.iqEntries);
    h.u64("core.lqEntries", core.lqEntries);
    h.u64("core.sqEntries", core.sqEntries);
    h.u64("core.intRegs", core.intRegs);
    h.u64("core.fpRegs", core.fpRegs);
    h.u64("core.frontendDepth", core.frontendDepth);
    h.u64("core.redirectPenalty", core.redirectPenalty);
    h.u64("core.msromSwitchPenalty", core.msromSwitchPenalty);
    h.u64("core.intAluUnits", core.intAluUnits);
    h.u64("core.intMultUnits", core.intMultUnits);
    h.u64("core.fpAluUnits", core.fpAluUnits);
    h.u64("core.simdUnits", core.simdUnits);
    h.u64("core.loadPorts", core.loadPorts);
    h.u64("core.storePorts", core.storePorts);
    h.u64("core.capUnits", core.capUnits);

    const BranchPredictorConfig &bp = core.bpred;
    h.u64("bpred.bimodalEntries", bp.bimodalEntries);
    h.u64("bpred.taggedTables", bp.taggedTables);
    h.u64("bpred.taggedEntries", bp.taggedEntries);
    for (unsigned len : bp.historyLengths)
        h.u64("bpred.historyLength", len);
    h.u64("bpred.tagBits", bp.tagBits);
    h.u64("bpred.btbEntries", bp.btbEntries);
    h.u64("bpred.rasEntries", bp.rasEntries);

    const HierarchyConfig &mem = cfg.hierarchy;
    h.u64("hierarchy.lineBytes", mem.lineBytes);
    h.u64("hierarchy.l1Sets", mem.l1Sets);
    h.u64("hierarchy.l1Ways", mem.l1Ways);
    h.u64("hierarchy.l1Latency", mem.l1Latency);
    h.u64("hierarchy.l2Sets", mem.l2Sets);
    h.u64("hierarchy.l2Ways", mem.l2Ways);
    h.u64("hierarchy.l2Latency", mem.l2Latency);
    h.u64("hierarchy.dramLatency", mem.dramLatency);

    const VariantConfig &var = cfg.variant;
    h.u64("variant.kind", static_cast<uint64_t>(var.kind));
    h.u64("variant.haltOnViolation", var.haltOnViolation);
    h.u64("variant.criticalRegions", var.criticalRegions.size());
    for (const CodeRegion &r : var.criticalRegions) {
        h.u64("region.lo", r.lo);
        h.u64("region.hi", r.hi);
    }
    h.u64("variant.btTranslationCycles", var.btTranslationCycles);
    h.u64("variant.asanShadowBase", var.asanShadowBase);

    h.u64("capCacheEntries", cfg.capCacheEntries);

    const AliasPredictorConfig &ap = cfg.aliasPredictor;
    h.u64("aliasPredictor.entries", ap.entries);
    h.u64("aliasPredictor.blacklistEntries", ap.blacklistEntries);
    h.u64("aliasPredictor.confidenceMax", ap.confidenceMax);
    h.u64("aliasPredictor.predictThreshold", ap.predictThreshold);

    const AliasCacheConfig &ac = cfg.aliasCache;
    h.u64("aliasCache.sets", ac.sets);
    h.u64("aliasCache.ways", ac.ways);
    h.u64("aliasCache.victimEntries", ac.victimEntries);

    h.u64("maxAllocSize", cfg.maxAllocSize);
    h.u64("detectUninitializedReads", cfg.detectUninitializedReads);
    h.u64("enableChecker", cfg.enableChecker);
    h.u64("useTableIRules", cfg.useTableIRules);
    h.u64("maxMacroOps", cfg.maxMacroOps);
    h.u64("inUseIntervalMacroOps", cfg.inUseIntervalMacroOps);

    const AsanConfig &asan = cfg.asanAllocator;
    h.u64("asan.enabled", asan.enabled);
    h.u64("asan.redzoneBytes", asan.redzoneBytes);
    h.u64("asan.quarantineBytes", asan.quarantineBytes);
}

} // namespace

uint64_t
specHash(const JobSpec &spec, uint64_t seed)
{
    SpecHasher h;
    hashProfile(h, spec.profile);
    hashConfig(h, spec.config);
    h.u64("seed", seed);
    return h.digest();
}

std::string
specHashHex(uint64_t hash)
{
    return csprintf("%016llx",
                    static_cast<unsigned long long>(hash));
}

uint64_t
specHashFromHex(const std::string &hex)
{
    // specHashHex always writes exactly 16 digits; anything else is
    // a corrupt report member, not a shorter encoding.
    if (hex.size() != 16)
        return 0;
    uint64_t v = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return 0;
        v = (v << 4) | static_cast<uint64_t>(digit);
    }
    return v;
}

} // namespace driver
} // namespace chex

#include "merge.hh"

#include <algorithm>

#include "base/logging.hh"
#include "driver/spec_hash.hh"

namespace chex
{
namespace driver
{

namespace
{

bool
failMerge(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
    return false;
}

} // namespace

bool
mergeReports(const std::vector<CampaignReport> &shards,
             CampaignReport &out, std::string *err)
{
    out = CampaignReport();
    if (shards.empty())
        return failMerge(err, "no shard reports to merge");

    const CampaignReport &first = shards[0];
    const size_t n_jobs = first.jobs.size();

    // Cross-shard compatibility: same campaign seed and job count.
    // Deeper options differences (profiles, variants, scale, ...)
    // surface below as per-job identity mismatches, since every
    // shard computes the full submission-order identity row for
    // every index, in or out of shard.
    for (size_t s = 1; s < shards.size(); ++s) {
        if (shards[s].seed != first.seed) {
            return failMerge(
                err, csprintf("campaign seed mismatch: shard report "
                              "%zu has seed %llu, report 0 has %llu",
                              s,
                              static_cast<unsigned long long>(
                                  shards[s].seed),
                              static_cast<unsigned long long>(
                                  first.seed)));
        }
        if (shards[s].jobs.size() != n_jobs) {
            return failMerge(
                err, csprintf("job count mismatch: shard report %zu "
                              "has %zu jobs, report 0 has %zu",
                              s, shards[s].jobs.size(), n_jobs));
        }
    }

    // Index sanity and per-job identity agreement. Every shard must
    // describe the same campaign: index i's row — placeholder or
    // real — carries the same seed, spec hash, and label everywhere.
    for (size_t s = 0; s < shards.size(); ++s) {
        for (size_t i = 0; i < n_jobs; ++i) {
            const JobResult &jr = shards[s].jobs[i];
            const JobResult &ref = first.jobs[i];
            if (jr.index != i) {
                return failMerge(
                    err, csprintf("shard report %zu job %zu carries "
                                  "index %zu; reports must keep "
                                  "submission order",
                                  s, i, jr.index));
            }
            if (jr.seed != ref.seed || jr.specHash != ref.specHash ||
                jr.label != ref.label || jr.attack != ref.attack) {
                return failMerge(
                    err,
                    csprintf("shard reports disagree on job %zu "
                             "('%s' seed %llu hash %s vs '%s' seed "
                             "%llu hash %s): the shards were not "
                             "run with the same campaign options",
                             i, ref.label.c_str(),
                             static_cast<unsigned long long>(
                                 ref.seed),
                             specHashHex(ref.specHash).c_str(),
                             jr.label.c_str(),
                             static_cast<unsigned long long>(
                                 jr.seed),
                             specHashHex(jr.specHash).c_str()));
            }
        }
    }

    // Exactly one shard must provide (i.e. not skip) each index.
    std::vector<const JobResult *> provider(n_jobs, nullptr);
    for (size_t s = 0; s < shards.size(); ++s) {
        for (size_t i = 0; i < n_jobs; ++i) {
            const JobResult &jr = shards[s].jobs[i];
            if (jr.skipped)
                continue;
            if (provider[i]) {
                return failMerge(
                    err, csprintf("job %zu ('%s') is provided by "
                                  "more than one shard report; "
                                  "overlapping shards",
                                  i, jr.label.c_str()));
            }
            provider[i] = &jr;
        }
    }
    for (size_t i = 0; i < n_jobs; ++i) {
        if (!provider[i]) {
            return failMerge(
                err, csprintf("job %zu ('%s') is skipped in every "
                              "shard report; incomplete shard set",
                              i, first.jobs[i].label.c_str()));
        }
    }

    // Stitch and recompute. The merged report is a complete
    // campaign: shard 0 of 1, no skipped rows, every aggregate
    // derived from the merged jobs rather than trusted from any
    // shard's summary.
    out.seed = first.seed;
    out.shardIndex = 0;
    out.shardCount = 1;
    out.jobs.reserve(n_jobs);
    for (size_t i = 0; i < n_jobs; ++i)
        out.jobs.push_back(*provider[i]);

    for (const CampaignReport &shard : shards) {
        out.workers = std::max(out.workers, shard.workers);
        // Shards run on separate machines in parallel: the merged
        // campaign's wall clock is the slowest shard's, not the sum.
        out.wallSeconds = std::max(out.wallSeconds,
                                   shard.wallSeconds);
    }
    for (const JobResult &jr : out.jobs) {
        out.jobsRun++;
        out.serialSeconds += jr.wallSeconds;
        if (jr.cached)
            out.jobsCached++;
        if (jr.failed) {
            out.jobsFailed++;
            continue;
        }
        out.totalCycles += jr.run.cycles;
        out.totalUops += jr.run.uops;
    }
    out.speedup = out.wallSeconds > 0.0
                      ? out.serialSeconds / out.wallSeconds
                      : 0.0;
    out.aggregateIpc =
        out.totalCycles ? static_cast<double>(out.totalUops) /
                              out.totalCycles
                        : 0.0;
    return true;
}

} // namespace driver
} // namespace chex

/**
 * @file
 * The one place the CHEX_BENCH_* environment knobs are parsed. The
 * bench harnesses (bench/common.hh) and the chex-campaign CLI both
 * used to hand-roll this parsing with subtly different validation;
 * optionsFromEnv() is the shared builder with the strict behavior
 * of both: garbage, zero, and negative values warn on stderr and
 * fall back to the default instead of being silently misread.
 *
 * Knobs:
 *   CHEX_BENCH_SCALE    divide workload iteration counts (>= 1)
 *   CHEX_BENCH_JOBS     worker pool width (>= 1; unset = all cores)
 *   CHEX_BENCH_ISOLATE  fork each attempt ("0"/unset/empty = off)
 *   CHEX_BENCH_TIMEOUT  per-attempt watchdog seconds (>= 0; 0 = off)
 *   CHEX_BENCH_CACHE    colon-separated prior-report paths
 *   CHEX_BENCH_SHARD    "I/N": run shard I of N (default "0/1")
 *   CHEX_BENCH_SNAPSHOT snapshot-bundle path to fan jobs from
 *
 * Loading the cache/snapshot *files* is deliberately not done here:
 * the CLI hard-errors on an unreadable --cache/CHEX_BENCH_CACHE or
 * --from-snapshot path while the benches warn and skip, so the paths
 * are returned raw and each consumer applies its own policy.
 */

#ifndef CHEX_DRIVER_ENV_HH
#define CHEX_DRIVER_ENV_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/campaign.hh"

namespace chex
{
namespace driver
{

/** Every CHEX_BENCH_* knob, validated and defaulted. */
struct EnvOptions
{
    uint64_t scale = 1;          // CHEX_BENCH_SCALE
    unsigned jobs = 0;           // CHEX_BENCH_JOBS; 0 = all cores
    bool isolate = false;        // CHEX_BENCH_ISOLATE
    double timeoutSeconds = 0.0; // CHEX_BENCH_TIMEOUT
    std::vector<std::string> cachePaths; // CHEX_BENCH_CACHE
    unsigned shardIndex = 0;     // CHEX_BENCH_SHARD ("I/N")
    unsigned shardCount = 1;
    std::string snapshotPath;    // CHEX_BENCH_SNAPSHOT; "" = none

    /**
     * Copy the campaign-execution knobs (jobs, isolate, timeout,
     * shard) onto @p opts. Scale and the cache paths are not
     * CampaignOptions concerns and stay with the caller.
     */
    void applyTo(CampaignOptions &opts) const;
};

/**
 * Parse every CHEX_BENCH_* knob from the current environment.
 * Re-reads the environment on every call (tests mutate it), and
 * each malformed value warns on stderr and falls back to its
 * default rather than silently misreading.
 */
EnvOptions optionsFromEnv();

/**
 * Parse a shard spec of the form "I/N" (e.g. "0/2"): N >= 1 shards,
 * shard index I < N. Returns false — leaving @p index/@p count
 * untouched — and fills @p err (if non-null) for anything else.
 * Shared by --shard and CHEX_BENCH_SHARD.
 */
bool parseShardSpec(const std::string &spec, unsigned &index,
                    unsigned &count, std::string *err = nullptr);

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_ENV_HH

/**
 * @file
 * Record/replay of campaign jobs for crash triage: reconstruct the
 * exact JobSpec behind one row of a campaign report (profile,
 * variant, seed — optionally starting from the snapshot-bundle
 * entry the row originally fanned out from) and verify the
 * reconstruction against the row's recorded spec hash before
 * anything is re-run. A failed isolated job — a crash, a panic, a
 * watchdog timeout — can thus be re-executed as a single job, by
 * itself, bit-identically to its campaign run.
 *
 * The report records spec *hashes*, not specs, so reconstruction
 * needs the same inputs the original campaign had: the base
 * SystemConfig (CLI defaults unless the campaign customized it),
 * the --scale divisor, and — for from-snapshot rows — the bundle.
 * The hash check is what makes that safe: a replay whose
 * reconstructed hash does not match the recorded one is refused
 * instead of silently simulating a different point.
 */

#ifndef CHEX_DRIVER_REPLAY_HH
#define CHEX_DRIVER_REPLAY_HH

#include <cstdint>
#include <optional>
#include <string>

#include "driver/campaign.hh"
#include "snapshot/snapshot.hh"

namespace chex
{
namespace driver
{

/** A verified, replayable reconstruction of one report row. */
struct ReplayPlan
{
    size_t index = 0;   // row index into report.jobs
    JobSpec spec;       // reconstructed spec, seed pinned
    bool fromSnapshot = false; // row originally ran from a checkpoint
};

/**
 * Pick the row to replay: @p index when given (must be in range),
 * otherwise the first failed row of the report. Fails when the
 * explicit index is out of range or, with no index, when the report
 * has no failed rows.
 */
bool selectReplayRow(const CampaignReport &report,
                     std::optional<size_t> index, size_t *out,
                     std::string *err = nullptr);

/**
 * Reconstruct row @p index of @p report into a pinned-seed JobSpec
 * and verify it hashes to the row's recorded specHash. @p base
 * supplies the non-derivable configuration (the original campaign's
 * base SystemConfig), @p scale_divisor the original --scale, and
 * @p bundle the snapshot bundle for rows that ran from a
 * checkpoint (nullptr otherwise). Refuses skipped rows (they never
 * ran), body-override rows (hash 0, not reconstructible), unknown
 * profiles/variants, and any hash mismatch.
 */
bool planReplay(const CampaignReport &report, size_t index,
                const SystemConfig &base, uint64_t scale_divisor,
                const snapshot::Bundle *bundle, ReplayPlan *out,
                std::string *err = nullptr);

/**
 * Compare a replayed row against the recorded one: reproduced means
 * the same failed/succeeded outcome and, for failures, the same
 * structured cause. @p detail (if non-null) gets a one-line
 * human-readable verdict either way.
 */
bool outcomeReproduced(const JobResult &recorded,
                       const JobResult &replayed,
                       std::string *detail = nullptr);

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_REPLAY_HH

#include "subprocess.hh"

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>

#include "base/json.hh"
#include "base/logging.hh"
#include "driver/report.hh"

namespace chex
{
namespace driver
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * pipe() + fork() + parent-side close run under one lock: a worker
 * forking concurrently would otherwise capture this attempt's pipe
 * write end in its own child, deferring EOF until that unrelated
 * child exits — which the watchdog would misread as a hang.
 */
std::mutex fork_mtx;

/**
 * Child side: evaluate the body and report the outcome over @p fd
 * as one JSON document, then _exit (no atexit handlers — the child
 * carries a forked copy of the parent's state).
 */
[[noreturn]] void
childMain(int fd, const std::function<RunResult()> &body)
{
    json::Value doc = json::Value::object();
    try {
        RunResult r = body();
        doc.set("ok", true).set("result", toJson(r));
    } catch (const std::exception &e) {
        doc.set("ok", false).set("error", std::string(e.what()));
    } catch (...) {
        doc.set("ok", false).set("error", "unknown exception");
    }
    std::string payload = doc.dump();
    size_t off = 0;
    while (off < payload.size()) {
        ssize_t n = ::write(fd, payload.data() + off,
                            payload.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::_exit(3); // parent sees a truncated payload
        }
        off += static_cast<size_t>(n);
    }
    ::_exit(0);
}

AttemptOutcome
localFailure(const char *what, Clock::time_point start)
{
    AttemptOutcome out;
    out.cause = FailureCause::Exception;
    out.error = csprintf("%s failed: %s", what, std::strerror(errno));
    out.wallSeconds = secondsSince(start);
    return out;
}

} // namespace

AttemptOutcome
runIsolatedAttempt(const std::function<RunResult()> &body,
                   double timeout_seconds)
{
    Clock::time_point start = Clock::now();

    int fds[2];
    pid_t pid;
    {
        std::lock_guard<std::mutex> lock(fork_mtx);
        if (::pipe(fds) != 0)
            return localFailure("pipe()", start);
        pid = ::fork();
        if (pid == 0) {
            ::close(fds[0]);
            childMain(fds[1], body); // never returns
        }
        ::close(fds[1]);
        if (pid < 0) {
            ::close(fds[0]);
            return localFailure("fork()", start);
        }
    }

    // Drain the pipe until EOF (child exited) or the deadline. A
    // poll()/read() error is remembered separately: the child may
    // well still be alive, so falling straight into the blocking
    // waitpid below would hang the campaign forever when no watchdog
    // is set — the error path must kill the child before reaping.
    bool timed_out = false;
    const char *io_error = nullptr; // failing call, when IO broke
    int io_errno = 0;
    std::string payload;
    char buf[4096];
    for (;;) {
        int wait_ms = -1;
        if (timeout_seconds > 0.0) {
            double remaining = timeout_seconds - secondsSince(start);
            if (remaining <= 0.0) {
                timed_out = true;
                break;
            }
            wait_ms = static_cast<int>(
                std::min(std::ceil(remaining * 1000.0), 3600000.0));
            wait_ms = std::max(wait_ms, 1);
        }
        struct pollfd pfd = {fds[0], POLLIN, 0};
        int pr = ::poll(&pfd, 1, wait_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            io_error = "poll()";
            io_errno = errno;
            break;
        }
        if (pr == 0) {
            timed_out = true;
            break;
        }
        ssize_t n = ::read(fds[0], buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            io_error = "read()";
            io_errno = errno;
            break;
        }
        if (n == 0)
            break; // EOF: the only write end closed at child exit
        payload.append(buf, static_cast<size_t>(n));
    }
    ::close(fds[0]);

    if (timed_out || io_error)
        ::kill(pid, SIGKILL);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}

    AttemptOutcome out;
    out.wallSeconds = secondsSince(start);

    if (timed_out) {
        out.cause = FailureCause::Timeout;
        out.exitStatus = SIGKILL;
        out.termSignal = SIGKILL;
        out.error = csprintf(
            "killed after exceeding the %.1fs per-attempt watchdog",
            timeout_seconds);
        return out;
    }
    if (io_error) {
        // The payload is unreliable and the child was SIGKILLed by
        // the error path above, so its wait status only reflects our
        // own kill — classify by what actually went wrong here.
        out.cause = FailureCause::Exception;
        out.error = csprintf("result pipe %s failed: %s", io_error,
                             std::strerror(io_errno));
        return out;
    }
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        out.cause = FailureCause::Signal;
        out.exitStatus = sig;
        out.termSignal = sig;
        out.error = csprintf("child killed by signal %d (%s)", sig,
                             strsignal(sig));
        return out;
    }
    int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    out.exitStatus = code;
    if (code != 0) {
        out.cause = FailureCause::NonzeroExit;
        out.exitCode = code;
        out.error = csprintf(
            "child exited with status %d without a result", code);
        return out;
    }

    // Exit 0: the payload carries either the RunResult or the
    // exception message.
    json::Value doc;
    std::string perr;
    if (!json::Value::parse(payload, doc, &perr) || !doc.isObject()) {
        out.cause = FailureCause::Exception;
        out.error = csprintf("child result unreadable (%s)",
                             payload.empty() ? "empty payload"
                                             : perr.c_str());
        return out;
    }
    if (json::getBool(doc, "ok", false)) {
        const json::Value *res = doc.find("result");
        std::string ferr;
        if (res && fromJson(*res, out.run, &ferr)) {
            out.ok = true;
            return out;
        }
        out.cause = FailureCause::Exception;
        out.error = csprintf("child result unreadable (%s)",
                             ferr.empty() ? "missing 'result'"
                                          : ferr.c_str());
        return out;
    }
    out.cause = FailureCause::Exception;
    out.error = json::getString(doc, "error", "unknown exception");
    return out;
}

} // namespace driver
} // namespace chex

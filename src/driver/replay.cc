#include "replay.hh"

#include "base/logging.hh"
#include "driver/spec_hash.hh"

namespace chex
{
namespace driver
{

namespace
{

bool
failPlan(std::string *err, const std::string &why)
{
    if (err)
        *err = why;
    return false;
}

} // anonymous namespace

bool
selectReplayRow(const CampaignReport &report,
                std::optional<size_t> index, size_t *out,
                std::string *err)
{
    if (index) {
        if (*index >= report.jobs.size()) {
            return failPlan(
                err, csprintf("job index %zu out of range (report "
                              "has %zu jobs)",
                              *index, report.jobs.size()));
        }
        *out = *index;
        return true;
    }
    for (const JobResult &jr : report.jobs) {
        if (jr.failed) {
            *out = jr.index;
            return true;
        }
    }
    return failPlan(err, "report has no failed jobs; pass an "
                         "explicit --index to replay a passing one");
}

bool
planReplay(const CampaignReport &report, size_t index,
           const SystemConfig &base, uint64_t scale_divisor,
           const snapshot::Bundle *bundle, ReplayPlan *out,
           std::string *err)
{
    if (index >= report.jobs.size()) {
        return failPlan(err,
                        csprintf("job index %zu out of range (report "
                                 "has %zu jobs)",
                                 index, report.jobs.size()));
    }
    const JobResult &row = report.jobs[index];
    if (row.skipped) {
        return failPlan(
            err, csprintf("job %zu belongs to another shard of this "
                          "report and was never run here",
                          index));
    }
    if (row.specHash == 0) {
        return failPlan(
            err, csprintf("job %zu has no spec hash (custom job "
                          "body); it cannot be reconstructed from "
                          "the report",
                          index));
    }

    const BenchmarkProfile *profile =
        findProfileByName(row.profileName);
    if (!profile) {
        return failPlan(err,
                        csprintf("job %zu uses unknown profile '%s'",
                                 index, row.profileName.c_str()));
    }
    VariantKind kind;
    if (!variantFromName(row.variant, &kind)) {
        return failPlan(err,
                        csprintf("job %zu uses unknown variant '%s'",
                                 index, row.variant.c_str()));
    }

    ReplayPlan plan;
    plan.index = index;
    plan.spec.label = row.label;
    plan.spec.profile =
        profile->scaledBy(std::max<uint64_t>(1, scale_divisor));
    plan.spec.config = base;
    plan.spec.config.variant.kind = kind;
    plan.spec.workloadSeed = row.seed;
    plan.spec.repetition = row.repetition;
    // Attack rows rebuild the exploit instead of the workload; the
    // generator seed is the row seed, so the reconstruction is
    // exact (attackProfile() sits at the scaledBy floor, making any
    // --scale divisor a no-op on the hashed spec).
    plan.spec.attack = row.attack;
    plan.fromSnapshot = row.fromSnapshot;

    // Verify before anything re-runs: the reconstructed spec must
    // hash to exactly what the campaign recorded, with the
    // snapshot's state hash folded in for from-snapshot rows.
    uint64_t base_hash = specHash(plan.spec, row.seed);
    uint64_t expect = base_hash;
    if (row.fromSnapshot) {
        if (!bundle) {
            return failPlan(
                err, csprintf("job %zu ran from a snapshot; pass the "
                              "bundle it fanned out from "
                              "(--from-snapshot)",
                              index));
        }
        const snapshot::MachineEntry *entry =
            bundle->findBySpecKey(base_hash);
        if (!entry) {
            return failPlan(
                err, csprintf("job %zu: the given bundle has no "
                              "entry for this job's spec (wrong "
                              "bundle, or config/scale drift)",
                              index));
        }
        expect = foldSnapshotHash(base_hash, entry->stateHash);
    }
    if (expect != row.specHash) {
        return failPlan(
            err,
            csprintf("job %zu: reconstructed spec hash %s does not "
                     "match recorded %s — base config, --scale, or "
                     "bundle differ from the original campaign",
                     index, specHashHex(expect).c_str(),
                     specHashHex(row.specHash).c_str()));
    }
    *out = std::move(plan);
    return true;
}

bool
outcomeReproduced(const JobResult &recorded, const JobResult &replayed,
                  std::string *detail)
{
    auto describe = [](const JobResult &jr) {
        if (!jr.failed)
            return std::string("ok");
        std::string s = failureCauseName(jr.cause);
        if (!jr.error.empty())
            s += ": " + jr.error;
        return s;
    };
    bool same = recorded.failed == replayed.failed &&
                (!recorded.failed || recorded.cause == replayed.cause);
    if (detail) {
        *detail = csprintf(
            "recorded [%s] vs replayed [%s]%s",
            describe(recorded).c_str(), describe(replayed).c_str(),
            same ? "" : " — OUTCOME DIFFERS");
    }
    return same;
}

} // namespace driver
} // namespace chex

/**
 * @file
 * The simulation-campaign driver: runs a declarative list of jobs
 * (workload profile × SystemConfig/variant × seed × repetition) on a
 * fixed-size worker thread pool with a lock-guarded work queue and
 * aggregates the per-job RunResults into a campaign report.
 *
 * Determinism contract: a job's outcome depends only on its JobSpec
 * and its seed — the seed is either pinned in the spec or derived
 * from (campaign seed, job index) via a splitmix64-style hash —
 * never on scheduling. Each worker constructs the System, the
 * workload program, and everything else it touches privately, so a
 * campaign run with `workers = N` is bit-for-bit identical to the
 * same campaign run with `workers = 1`.
 *
 * Failure isolation: a job whose body throws is recorded as failed
 * (with the exception message and attempt count) and the rest of
 * the campaign completes; an optional bounded retry re-runs a
 * throwing job with the same seed up to maxAttempts times.
 *
 * Process isolation (CampaignOptions::isolation): each attempt runs
 * in a fork()ed child supervised by a per-attempt wall-clock
 * watchdog, so a chex_panic()/chex_assert() abort, a stray SIGSEGV,
 * or a stuck workload is captured as a failed job with a structured
 * FailureCause instead of taking down (or hanging) the campaign
 * process. See subprocess.hh; in-process execution remains the
 * default and is bit-for-bit unaffected.
 *
 * Result caching (CampaignOptions::cacheReports): prior campaign
 * reports act as a result cache. Every job is content-hashed (see
 * spec_hash.hh) and a job whose (specHash, seed) matches a prior
 * *successful* job is satisfied from the cache without simulating —
 * the cached RunResult is bit-identical by the determinism contract
 * above. Failed or timed-out prior jobs never satisfy the cache, and
 * jobs with a body override are never cached (their outcome is not a
 * function of the hashed spec).
 *
 * Sharding (CampaignOptions::shardIndex/shardCount): a campaign can
 * be split across machines by job index — shard I of N simulates
 * only the jobs with `index % N == I` and emits placeholder rows
 * (JobResult::skipped) for everything else, so submission-order
 * indices survive into every shard report. Because per-job seeds are
 * derived from (campaign seed, index), the in-shard jobs are
 * bit-identical to the same jobs of an unsharded run; merge.hh
 * recombines K shard reports into one complete report.
 */

#ifndef CHEX_DRIVER_CAMPAIGN_HH
#define CHEX_DRIVER_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/profiles.hh"

namespace chex
{

namespace snapshot
{
struct Bundle;
} // namespace snapshot

namespace driver
{

/** One schedulable unit of simulation work. */
struct JobSpec
{
    /** Display label, e.g. "mcf/ucode-pred". */
    std::string label;

    /** Workload to synthesize (by value: jobs share nothing). */
    BenchmarkProfile profile;

    /** Full system configuration, including the variant. */
    SystemConfig config;

    /**
     * Pinned workload seed. Unset: the driver derives one from
     * (campaign seed, job index), which keeps repetitions of the
     * same (profile, config) statistically independent while staying
     * schedule-invariant.
     */
    std::optional<uint64_t> workloadSeed;

    /** Repetition ordinal for sweeps that re-run a point. */
    unsigned repetition = 0;

    /**
     * Attack-case ID (attacks/registry.hh): "<suite>/<case>" for a
     * hand-written exploit or "gen/<family>" for a generated one.
     * Empty (the default) means a normal workload job. When set,
     * the default body ignores the synthetic workload and instead
     * resolves/synthesizes the attack program — for generated
     * attacks the job's effective seed doubles as the generator
     * seed, so one spec addresses a whole seedable family. The ID
     * is folded into the spec hash (spec_hash.hh), so attack jobs
     * cache, shard, and replay like any other job. Use
     * attackProfile() (workload/profiles.hh) as the profile so
     * replay can reconstruct the spec by name.
     */
    std::string attack;

    /**
     * Override of the job body (tests, custom campaigns). Default:
     * build a System from `config`, load `generateWorkload(profile,
     * seed)`, and run to completion; a run that neither exits nor
     * flags a violation throws (stuck workload).
     */
    std::function<RunResult(const JobSpec &, uint64_t seed)> body;
};

/** Why a job (or one attempt of it) failed. */
enum class FailureCause : uint8_t
{
    None,        // job succeeded
    Exception,   // body threw (in-process, or reported by the child)
    Signal,      // child died on a signal (SIGABRT from panic, SIGSEGV)
    Timeout,     // child exceeded the watchdog and was killed
    NonzeroExit, // child exited non-zero without reporting a result
};

/** Printable cause token ("exception", "signal", ...). */
const char *failureCauseName(FailureCause cause);

/**
 * Reverse of failureCauseName. Unknown tokens (newer or corrupt
 * reports) map to Exception after a chex_warn — silent coercion
 * would make a bad cache report invisible; @p known (if non-null)
 * additionally reports whether the token was recognized.
 */
FailureCause failureCauseFromName(const std::string &name,
                                  bool *known = nullptr);

/** Outcome of one job, failed or not. */
struct JobResult
{
    size_t index = 0;        // position in the submitted job list
    std::string label;
    std::string profileName;
    std::string variant;     // variantName() of config.variant.kind
    uint64_t seed = 0;       // effective workload seed
    unsigned repetition = 0;
    std::string attack;      // JobSpec::attack ID ("" = workload job)

    /**
     * Canonical content hash of (spec, seed) — see spec_hash.hh.
     * 0 for body-override jobs, which are not content-hashable and
     * therefore never satisfiable from a result cache.
     */
    uint64_t specHash = 0;

    /**
     * True when this job was satisfied from a prior report via
     * CampaignOptions::cacheReports instead of being simulated;
     * `run` then carries the cached result and attempts is 0.
     */
    bool cached = false;

    /**
     * True when this job started from a restored checkpoint
     * (CampaignOptions::snapshot matched its spec) instead of a
     * cold System. specHash is then the *folded* hash — the base
     * spec hash combined with the snapshot's state hash (see
     * foldSnapshotHash) — because a from-snapshot job is a
     * different simulation point than a from-scratch one and must
     * never satisfy (or be satisfied by) its cache entries.
     */
    bool fromSnapshot = false;

    /**
     * True when this job belongs to another shard of a sharded
     * campaign: the row is a pure placeholder carrying only the
     * identity fields above (label, seed, specHash, ...) so that job
     * indices keep their submission-order meaning in every shard
     * report. A skipped job was neither run nor cached (`run` is
     * empty, attempts is 0) and is exactly what mergeReports()
     * replaces with the owning shard's real row.
     */
    bool skipped = false;

    bool failed = false;
    unsigned attempts = 0;   // 1 on first-try success; 0 when cached
    std::string error;       // failure detail when failed

    /** Structured failure classification (None when !failed). */
    FailureCause cause = FailureCause::None;

    /**
     * Isolated mode: the child's exit code (cause NonzeroExit) or
     * terminating/killing signal number (cause Signal / Timeout) of
     * the final attempt. 0 otherwise. Kept for v1/v2 report
     * compatibility; prefer the unambiguous exitCode/termSignal
     * split below (a v2 report cannot distinguish a child that the
     * watchdog SIGKILLed from one that exited with code 9).
     */
    int exitStatus = 0;

    /** Child exit code of the final attempt (cause NonzeroExit). */
    int exitCode = 0;

    /**
     * Terminating (cause Signal) or killing (cause Timeout) signal
     * number of the final attempt; 0 when the child was not
     * signalled.
     */
    int termSignal = 0;

    double wallSeconds = 0.0;          // summed over all attempts
    std::vector<double> attemptSeconds; // per-attempt breakdown
    RunResult run;                      // valid only when !failed
};

/** Aggregated campaign outcome. */
struct CampaignReport
{
    std::vector<JobResult> jobs; // submission order
    unsigned workers = 0;
    uint64_t seed = 0;

    /**
     * Which slice of the campaign this report covers: shard
     * `shardIndex` of `shardCount`. An unsharded (or merged) report
     * is shard 0 of 1. Jobs outside the shard appear as skipped
     * placeholder rows and are excluded from every aggregate below.
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;

    size_t jobsRun = 0;    // in-shard jobs (run, cached, or failed)
    size_t jobsFailed = 0;
    size_t jobsCached = 0; // satisfied from cacheReports, not run
    size_t jobsSkipped = 0; // out-of-shard placeholder rows
    size_t jobsFromSnapshot = 0; // fanned out from a restored checkpoint

    double wallSeconds = 0.0;   // campaign wall clock
    double serialSeconds = 0.0; // sum of per-job wall clocks
    double speedup = 0.0;       // serialSeconds / wallSeconds

    uint64_t totalCycles = 0;   // over succeeded jobs (incl. cached)
    uint64_t totalUops = 0;
    double aggregateIpc = 0.0;  // totalUops / totalCycles
};

/** Campaign-wide execution knobs. */
struct CampaignOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned workers = 0;

    /** Campaign seed: root of all derived per-job seeds. */
    uint64_t seed = 1;

    /** Attempts per job (>= 1); retries re-use the job's seed. */
    unsigned maxAttempts = 1;

    /**
     * Run every attempt in a fork()ed child process (crash/hang
     * capture; see subprocess.hh). Off by default: in-process
     * execution stays the deterministic fast path.
     */
    bool isolation = false;

    /**
     * Per-attempt wall-clock watchdog in seconds; a child still
     * running at the deadline is SIGKILLed and the attempt recorded
     * as FailureCause::Timeout. 0 disables the watchdog. Only
     * meaningful with isolation (in-process bodies cannot be safely
     * interrupted).
     */
    double timeoutSeconds = 0.0;

    /**
     * Progress hook, invoked as each job finishes. Serialized by a
     * dedicated callback lock (completion order, not submission
     * order) so a slow hook never stalls queue pops. Cache-satisfied
     * jobs invoke it too (before the worker pool starts, in
     * submission order) with JobResult::cached set.
     */
    std::function<void(const JobResult &)> onJobDone;

    /**
     * Result cache: prior campaign reports (typically loaded from
     * disk via driver::fromJson). A job whose (specHash, seed)
     * matches a successful prior job is satisfied from the cache
     * without simulating. Only schema-v3+ reports carry spec hashes;
     * older reports load fine but yield no hits.
     */
    std::vector<CampaignReport> cacheReports;

    /**
     * Snapshot fan-out: a bundle of warmed machine states (see
     * snapshot/snapshot.hh, typically written by `chex-campaign
     * snapshot` and loaded from disk). A default-body job whose
     * spec hash matches a bundle entry restores that entry instead
     * of constructing a cold System, so every variant job of a
     * sweep resumes from its own warmed checkpoint. Jobs without a
     * matching entry run from scratch as usual. Matched jobs carry
     * JobResult::fromSnapshot and a folded specHash, which keeps
     * result caching and sharding sound (the same spec from-scratch
     * and from-snapshot are distinct cache identities).
     */
    std::shared_ptr<const snapshot::Bundle> snapshot;

    /**
     * Run only shard `shardIndex` of `shardCount`: jobs with
     * `index % shardCount != shardIndex` become skipped placeholder
     * rows — never simulated, never cache-satisfied, and never
     * reported through onJobDone. The default (0 of 1) runs
     * everything. shardIndex must be < shardCount (fatal otherwise);
     * a shardCount of 0 is treated as 1.
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
};

/**
 * Derive the workload seed for job @p index of a campaign seeded
 * with @p campaign_seed (splitmix64 finalizer; never returns 0).
 */
uint64_t jobSeed(uint64_t campaign_seed, size_t index);

/** Run @p jobs to completion on the worker pool. */
CampaignReport runCampaign(const std::vector<JobSpec> &jobs,
                           const CampaignOptions &opts = {});

/**
 * Build the (profile × variant) cross-product job list benches and
 * the CLI sweep, every job pinned to @p workload_seed so a given
 * profile sees the identical program under every variant. @p base
 * supplies all non-variant configuration.
 */
std::vector<JobSpec>
buildMatrix(const std::vector<BenchmarkProfile> &profiles,
            const std::vector<VariantKind> &variants,
            uint64_t workload_seed, const SystemConfig &base = {});

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_CAMPAIGN_HH

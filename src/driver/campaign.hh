/**
 * @file
 * The simulation-campaign driver: runs a declarative list of jobs
 * (workload profile × SystemConfig/variant × seed × repetition) on a
 * fixed-size worker thread pool with a lock-guarded work queue and
 * aggregates the per-job RunResults into a campaign report.
 *
 * Determinism contract: a job's outcome depends only on its JobSpec
 * and its seed — the seed is either pinned in the spec or derived
 * from (campaign seed, job index) via a splitmix64-style hash —
 * never on scheduling. Each worker constructs the System, the
 * workload program, and everything else it touches privately, so a
 * campaign run with `workers = N` is bit-for-bit identical to the
 * same campaign run with `workers = 1`.
 *
 * Failure isolation: a job whose body throws is recorded as failed
 * (with the exception message and attempt count) and the rest of
 * the campaign completes; an optional bounded retry re-runs a
 * throwing job with the same seed up to maxAttempts times.
 */

#ifndef CHEX_DRIVER_CAMPAIGN_HH
#define CHEX_DRIVER_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/profiles.hh"

namespace chex
{
namespace driver
{

/** One schedulable unit of simulation work. */
struct JobSpec
{
    /** Display label, e.g. "mcf/ucode-pred". */
    std::string label;

    /** Workload to synthesize (by value: jobs share nothing). */
    BenchmarkProfile profile;

    /** Full system configuration, including the variant. */
    SystemConfig config;

    /**
     * Pinned workload seed. Unset: the driver derives one from
     * (campaign seed, job index), which keeps repetitions of the
     * same (profile, config) statistically independent while staying
     * schedule-invariant.
     */
    std::optional<uint64_t> workloadSeed;

    /** Repetition ordinal for sweeps that re-run a point. */
    unsigned repetition = 0;

    /**
     * Override of the job body (tests, custom campaigns). Default:
     * build a System from `config`, load `generateWorkload(profile,
     * seed)`, and run to completion; a run that neither exits nor
     * flags a violation throws (stuck workload).
     */
    std::function<RunResult(const JobSpec &, uint64_t seed)> body;
};

/** Outcome of one job, failed or not. */
struct JobResult
{
    size_t index = 0;        // position in the submitted job list
    std::string label;
    std::string profileName;
    std::string variant;     // variantName() of config.variant.kind
    uint64_t seed = 0;       // effective workload seed
    unsigned repetition = 0;

    bool failed = false;
    unsigned attempts = 0;   // 1 on first-try success
    std::string error;       // exception message when failed

    double wallSeconds = 0.0; // of the last attempt
    RunResult run;            // valid only when !failed
};

/** Campaign-wide execution knobs. */
struct CampaignOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned workers = 0;

    /** Campaign seed: root of all derived per-job seeds. */
    uint64_t seed = 1;

    /** Attempts per job (>= 1); retries re-use the job's seed. */
    unsigned maxAttempts = 1;

    /**
     * Progress hook, invoked as each job finishes. Serialized by the
     * driver's lock (completion order, not submission order).
     */
    std::function<void(const JobResult &)> onJobDone;
};

/** Aggregated campaign outcome. */
struct CampaignReport
{
    std::vector<JobResult> jobs; // submission order
    unsigned workers = 0;
    uint64_t seed = 0;

    size_t jobsRun = 0;
    size_t jobsFailed = 0;

    double wallSeconds = 0.0;   // campaign wall clock
    double serialSeconds = 0.0; // sum of per-job wall clocks
    double speedup = 0.0;       // serialSeconds / wallSeconds

    uint64_t totalCycles = 0;   // over succeeded jobs
    uint64_t totalUops = 0;
    double aggregateIpc = 0.0;  // totalUops / totalCycles
};

/**
 * Derive the workload seed for job @p index of a campaign seeded
 * with @p campaign_seed (splitmix64 finalizer; never returns 0).
 */
uint64_t jobSeed(uint64_t campaign_seed, size_t index);

/** Run @p jobs to completion on the worker pool. */
CampaignReport runCampaign(const std::vector<JobSpec> &jobs,
                           const CampaignOptions &opts = {});

/**
 * Build the (profile × variant) cross-product job list benches and
 * the CLI sweep, every job pinned to @p workload_seed so a given
 * profile sees the identical program under every variant. @p base
 * supplies all non-variant configuration.
 */
std::vector<JobSpec>
buildMatrix(const std::vector<BenchmarkProfile> &profiles,
            const std::vector<VariantKind> &variants,
            uint64_t workload_seed, const SystemConfig &base = {});

} // namespace driver
} // namespace chex

#endif // CHEX_DRIVER_CAMPAIGN_HH
